module github.com/gpf-go/gpf

go 1.23
