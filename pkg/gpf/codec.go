package gpf

import "github.com/gpf-go/gpf/internal/compress"

// Genomic codecs (§4.2 of the paper): partition-level serializers that store
// sequences in 2-bit codes with N exceptions routed through the quality
// channel, and qualities as Huffman-coded adjacent deltas.
type (
	// GPFPairCodec serializes FASTQ pairs with the genomic codec.
	GPFPairCodec = compress.GPFPairCodec
	// GPFSAMCodec serializes SAM records with the genomic codec.
	GPFSAMCodec = compress.GPFSAMCodec
	// FieldPairCodec is the fast binary comparator without genomic modeling.
	FieldPairCodec = compress.FieldPairCodec
	// FieldSAMCodec is the fast binary comparator for SAM records.
	FieldSAMCodec = compress.FieldSAMCodec
)

// Sequence/quality block codec entry points for applications that store
// read data outside the engine.
var (
	// EncodeSeqQualBlock compresses parallel sequence/quality batches into
	// one byte block.
	EncodeSeqQualBlock = compress.EncodeSeqQualBlock
	// DecodeSeqQualBlock inverts EncodeSeqQualBlock.
	DecodeSeqQualBlock = compress.DecodeSeqQualBlock
	// CompressionRatio reports original/compressed size.
	CompressionRatio = compress.Ratio
)
