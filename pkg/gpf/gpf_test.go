package gpf_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/gpf-go/gpf/pkg/gpf"
)

// TestPublicAPIPipeline exercises the complete public surface the README
// advertises: synthesize -> simulate -> pipeline -> collect -> write VCF.
func TestPublicAPIPipeline(t *testing.T) {
	ref := gpf.SynthesizeGenome(gpf.DefaultSynthConfig(1, 30000, 2))
	donor := gpf.MutateGenome(ref, gpf.DefaultMutateConfig(2))
	reads := gpf.SimulateReads(donor, gpf.DefaultSimConfig(3, 10))
	if len(reads) == 0 {
		t.Fatal("no reads")
	}

	rt := gpf.NewRuntime(gpf.NewEngine(2), ref)
	rt.PartitionLen = 5000
	pairs := gpf.PairsToRDD(rt, reads, 4)
	wgs := gpf.BuildWGSPipeline(rt, pairs, false)
	if err := wgs.Pipeline.Run(); err != nil {
		t.Fatal(err)
	}
	calls, err := gpf.CollectVCF(rt, wgs.VCF)
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Fatal("no calls")
	}

	// Truth comparison through the public API.
	var truth []gpf.VCFRecord
	for _, v := range donor.Truth.Variants {
		truth = append(truth, gpf.VCFRecord{
			Chrom: ref.Contigs[v.Contig].Name, Pos: v.Pos,
			Ref: string(v.Ref), Alt: string(v.Alt),
		})
	}
	stats := gpf.CompareVCF(calls, truth, 2)
	if stats.Recall() < 0.4 {
		t.Fatalf("recall %.2f", stats.Recall())
	}

	// VCF round trip.
	names := make([]string, ref.NumContigs())
	for i := range names {
		names[i] = ref.Contigs[i].Name
	}
	var buf bytes.Buffer
	if err := gpf.WriteVCF(&buf, gpf.NewVCFHeader(names, ref.Lengths(), "s"), calls); err != nil {
		t.Fatal(err)
	}
	_, back, err := gpf.ReadVCF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(calls) {
		t.Fatalf("VCF round trip lost records: %d vs %d", len(back), len(calls))
	}
}

// TestPublicAPIFileLoader checks the FASTA/FASTQ file paths of the API.
func TestPublicAPIFileLoader(t *testing.T) {
	ref := gpf.SynthesizeGenome(gpf.DefaultSynthConfig(5, 5000, 1))
	var fasta bytes.Buffer
	if err := gpf.WriteFASTA(&fasta, ref); err != nil {
		t.Fatal(err)
	}
	back, err := gpf.ReadFASTA(&fasta)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalLen() != ref.TotalLen() {
		t.Fatal("FASTA round trip size mismatch")
	}

	rt := gpf.NewRuntime(gpf.NewEngine(1), ref)
	fq1 := "@a/1\nACGTACGTACGTACGTACGT\n+\nIIIIIIIIIIIIIIIIIIII\n"
	fq2 := "@a/2\nTTTTACGTACGTACGTACGT\n+\nIIIIIIIIIIIIIIIIIIII\n"
	ds, err := gpf.LoadFastqPairToRDD(rt, strings.NewReader(fq1), strings.NewReader(fq2), 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gpf.Count("count", ds)
	if err != nil || n != 1 {
		t.Fatalf("count = %d, %v", n, err)
	}
}

// TestPublicAPIEngineOps exercises the engine-operation wrappers used for
// custom Processes.
func TestPublicAPIEngineOps(t *testing.T) {
	eng := gpf.NewEngine(2)
	d := gpf.Parallelize(eng, []int{5, 3, 1, 4, 2}, 2)
	mapped, err := gpf.Map("m", d, nil, func(x int) int { return x * 2 })
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := gpf.Filter("f", mapped, func(x int) bool { return x > 4 })
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := gpf.SortPartitions("s", filtered, func(a, b int) bool { return a < b })
	if err != nil {
		t.Fatal(err)
	}
	shuffled, err := gpf.PartitionBy("p", sorted, 3, func(x int) int { return x })
	if err != nil {
		t.Fatal(err)
	}
	sum, found, err := gpf.Reduce("r", shuffled, func(a, b int) int { return a + b })
	if err != nil || !found {
		t.Fatal(err)
	}
	if sum != 10+6+8 {
		t.Fatalf("sum = %d", sum)
	}
	all, err := gpf.Collect("c", shuffled)
	if err != nil || len(all) != 3 {
		t.Fatalf("collect = %v, %v", all, err)
	}
	flat, err := gpf.FlatMap("fm", shuffled, nil, func(x int) []int { return []int{x, x} })
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := gpf.Count("c2", flat); n != 6 {
		t.Fatalf("flatmap count = %d", n)
	}
}

// TestPublicAPICodecs exercises the codec exports.
func TestPublicAPICodecs(t *testing.T) {
	seqs := [][]byte{[]byte("ACGTN")}
	quals := [][]byte{[]byte("IIII#")}
	block, err := gpf.EncodeSeqQualBlock(seqs, quals)
	if err != nil {
		t.Fatal(err)
	}
	s, q, err := gpf.DecodeSeqQualBlock(block)
	if err != nil {
		t.Fatal(err)
	}
	if string(s[0]) != "ACGTN" || string(q[0]) != "IIII#" {
		t.Fatalf("round trip: %q %q", s[0], q[0])
	}
	if gpf.CompressionRatio(100, 50) != 2 {
		t.Fatal("ratio export broken")
	}
}
