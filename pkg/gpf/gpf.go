// Package gpf is the public API of the GPF genomic analysis framework — the
// Go reproduction of "High-Performance Genomic Analysis Framework with
// In-Memory Computing" (PPoPP 2018). It re-exports the programming model
// (Pipeline, Process, Resource bundles), the data formats (FASTQ, SAM, VCF,
// reference genomes) and the execution engine entry points, so applications
// depend on one stable import path:
//
//	rt := gpf.NewRuntime(gpf.NewEngine(8), ref)
//	pairs := gpf.PairsToRDD(rt, reads, 64)
//	wgs := gpf.BuildWGSPipeline(rt, pairs, false)
//	if err := wgs.Pipeline.Run(); err != nil { ... }
//	calls, err := gpf.CollectVCF(rt, wgs.VCF)
//
// Users compose personalized pipelines exactly as in the paper's Fig 3:
// define Resources (bundles), instantiate Processes, add them to a Pipeline
// and call Run — the DAG scheduler orders execution, eliminates redundant
// partition shuffles, and runs everything on the in-memory engine.
package gpf

import (
	"io"

	"github.com/gpf-go/gpf/internal/core"
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/fastq"
	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/sam"
	"github.com/gpf-go/gpf/internal/vcf"
)

// Core programming-model types.
type (
	// Pipeline is the runtime-system driver: add Processes, then Run.
	Pipeline = core.Pipeline
	// Runtime carries the engine, reference and configuration shared by
	// Processes.
	Runtime = core.Runtime
	// Process is one execution instance in the pipeline DAG.
	Process = core.Process
	// Resource is the data abstraction connecting Processes.
	Resource = core.Resource
	// WGSPipeline bundles the standard pipeline with its terminal resources.
	WGSPipeline = core.WGSPipeline

	// FASTQPairBundle holds paired-end reads.
	FASTQPairBundle = core.FASTQPairBundle
	// SAMBundle holds alignments (flat or partition-bundled).
	SAMBundle = core.SAMBundle
	// VCFBundle holds variant calls.
	VCFBundle = core.VCFBundle
	// PartitionInfoBundle holds the dynamic partition map.
	PartitionInfoBundle = core.PartitionInfoBundle
	// PartitionInfo maps genomic positions to partition IDs.
	PartitionInfo = core.PartitionInfo

	// CodecTier selects the serializer family (GPF genomic codec, fast
	// field codec, or generic gob).
	CodecTier = core.CodecTier
)

// Serializer tiers.
const (
	TierGPF   = core.TierGPF
	TierField = core.TierField
	TierGob   = core.TierGob
)

// Data-format types.
type (
	// Reference is an in-memory reference genome.
	Reference = genome.Reference
	// Contig is one reference sequence.
	Contig = genome.Contig
	// Interval is a half-open genomic range.
	Interval = genome.Interval
	// FASTQRecord is a single read.
	FASTQRecord = fastq.Record
	// FASTQPair is a paired-end read.
	FASTQPair = fastq.Pair
	// SAMRecord is one alignment.
	SAMRecord = sam.Record
	// SAMHeader is the alignment header.
	SAMHeader = sam.Header
	// VCFRecord is one variant call.
	VCFRecord = vcf.Record
	// VCFHeader is the variant-call header.
	VCFHeader = vcf.Header
)

// Engine is the in-memory dataflow engine context.
type Engine = engine.Context

// NewEngine creates an engine context with the given worker parallelism
// (workers < 1 selects GOMAXPROCS).
func NewEngine(workers int) *Engine { return engine.NewContext(workers) }

// NewRuntime builds a pipeline runtime over an engine and a reference.
func NewRuntime(eng *Engine, ref *Reference) *Runtime { return core.NewRuntime(eng, ref) }

// NewPipeline constructs an empty pipeline (the Pipeline constructor of
// Table 2).
func NewPipeline(name string, rt *Runtime) *Pipeline { return core.NewPipeline(name, rt) }

// Resource constructors (the Bundle.defined / Bundle.undefined calls of
// Fig 3).
var (
	DefinedFASTQPair       = core.DefinedFASTQPair
	UndefinedSAM           = core.UndefinedSAM
	DefinedSAM             = core.DefinedSAM
	UndefinedVCF           = core.UndefinedVCF
	UndefinedPartitionInfo = core.UndefinedPartitionInfo
	NewPartitionInfo       = core.NewPartitionInfo
)

// Process constructors (the algorithm-specific interfaces of Table 2, plus
// the explicit sort/index steps of Fig 1's Cleaner).
var (
	NewCoordinateSortProcess    = core.NewCoordinateSortProcess
	NewIndexProcess             = core.NewIndexProcess
	UndefinedSAMIndex           = core.UndefinedSAMIndex
	NewBwaMemProcess            = core.NewBwaMemProcess
	NewMarkDuplicateProcess     = core.NewMarkDuplicateProcess
	NewReadRepartitionerProcess = core.NewReadRepartitionerProcess
	NewIndelRealignProcess      = core.NewIndelRealignProcess
	NewBaseRecalibrationProcess = core.NewBaseRecalibrationProcess
	NewHaplotypeCallerProcess   = core.NewHaplotypeCallerProcess
)

// BuildWGSPipeline assembles the paper's standard WGS pipeline (Fig 3):
// alignment, duplicate marking, dynamic repartitioning, indel realignment,
// base recalibration and haplotype calling.
func BuildWGSPipeline(rt *Runtime, pairs *Dataset[FASTQPair], useGVCF bool) *WGSPipeline {
	return core.BuildWGSPipeline(rt, pairs, useGVCF)
}

// Multi-sample pipelines (the Table 2 interfaces take SAM bundle lists).
type (
	// SAMIndex is the genomic index resource supporting region queries over a
	// coordinate-sorted bundle.
	SAMIndex = core.SAMIndex
	// SampleInput is one sample's reads for a multi-sample pipeline.
	SampleInput = core.SampleInput
	// MultiSampleWGS is a batch pipeline with per-sample VCF terminals.
	MultiSampleWGS = core.MultiSampleWGS
)

// BuildMultiSampleWGS assembles one pipeline over several samples sharing a
// single repartitioning census.
func BuildMultiSampleWGS(rt *Runtime, samples []SampleInput, useGVCF bool) (*MultiSampleWGS, error) {
	return core.BuildMultiSampleWGS(rt, samples, useGVCF)
}

// Dataset is a partitioned in-memory collection (the engine's RDD).
type Dataset[T any] = engine.Dataset[T]

// LoadFastqPairToRDD reads two mate FASTQ streams into a paired dataset
// (FileLoader.loadFastqPairToRdd in Fig 3).
func LoadFastqPairToRDD(rt *Runtime, r1, r2 io.Reader, numPartitions int) (*Dataset[FASTQPair], error) {
	return core.LoadFastqPairToRDD(rt, r1, r2, numPartitions)
}

// PairsToRDD distributes in-memory pairs over numPartitions with the
// runtime's codec tier.
func PairsToRDD(rt *Runtime, pairs []FASTQPair, numPartitions int) *Dataset[FASTQPair] {
	return core.PairsToRDD(rt, pairs, numPartitions)
}

// CollectVCF gathers, sorts and dedupes the final call set.
func CollectVCF(rt *Runtime, b *VCFBundle) ([]VCFRecord, error) { return core.CollectVCF(rt, b) }

// Genome utilities.
var (
	// SynthesizeGenome generates a synthetic reference.
	SynthesizeGenome = genome.Synthesize
	// DefaultSynthConfig sizes a synthetic genome.
	DefaultSynthConfig = genome.DefaultSynthConfig
	// MutateGenome injects a truth set of variants, producing a donor.
	MutateGenome = genome.Mutate
	// DefaultMutateConfig returns human-like variant density.
	DefaultMutateConfig = genome.DefaultMutateConfig
	// ReadFASTA parses a FASTA stream.
	ReadFASTA = genome.ReadFASTA
	// WriteFASTA serializes a reference as FASTA.
	WriteFASTA = genome.WriteFASTA
	// SimulateReads samples paired-end reads from a donor genome.
	SimulateReads = fastq.Simulate
	// DefaultSimConfig sizes a read simulation.
	DefaultSimConfig = fastq.DefaultSimConfig
	// NewVCFHeader builds a VCF header from contig names/lengths.
	NewVCFHeader = vcf.NewHeader
	// WriteVCF serializes calls as VCF text.
	WriteVCF = vcf.Write
	// ReadVCF parses VCF text.
	ReadVCF = vcf.Read
	// CompareVCF scores a call set against a truth set.
	CompareVCF = vcf.Compare
	// WriteSAM serializes alignments as SAM text.
	WriteSAM = sam.WriteText
	// ReadSAM parses SAM text.
	ReadSAM = sam.ReadText
)
