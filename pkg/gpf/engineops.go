package gpf

import "github.com/gpf-go/gpf/internal/engine"

// Engine operations for building custom Processes: the same primitives the
// built-in Processes use. Narrow operations (Map, Filter, FlatMap,
// MapPartitions) are lazy — they record lineage and execute only at a
// barrier (an action such as Collect, Reduce or Count, or a wide operation
// such as PartitionBy or SortPartitions), at which point the maximal chain
// of pending narrow ops runs as a single fused stage per partition. A fused
// chain appears in the engine metrics as one stage named by joining the op
// names with "+"; errors from narrow op functions likewise surface at the
// barrier, not at the recording call.

// Serializer is the partition codec interface (see GPFSAMCodec and friends).
type Serializer[T any] = engine.Serializer[T]

// Parallelize distributes items over numPartitions.
func Parallelize[T any](eng *Engine, items []T, numPartitions int) *Dataset[T] {
	return engine.Parallelize(eng, items, numPartitions)
}

// WithCodec attaches a serializer to a dataset.
func WithCodec[T any](d *Dataset[T], codec Serializer[T]) *Dataset[T] {
	return engine.WithCodec(d, codec)
}

// Map applies fn to every item.
func Map[T, U any](name string, d *Dataset[T], codec Serializer[U], fn func(T) U) (*Dataset[U], error) {
	return engine.Map(name, d, codec, fn)
}

// Filter keeps items for which pred is true.
func Filter[T any](name string, d *Dataset[T], pred func(T) bool) (*Dataset[T], error) {
	return engine.Filter(name, d, pred)
}

// FlatMap applies fn to every item and concatenates the results.
func FlatMap[T, U any](name string, d *Dataset[T], codec Serializer[U], fn func(T) []U) (*Dataset[U], error) {
	return engine.FlatMap(name, d, codec, fn)
}

// MapPartitions transforms whole partitions.
func MapPartitions[T, U any](name string, d *Dataset[T], codec Serializer[U], fn func(p int, items []T) ([]U, error)) (*Dataset[U], error) {
	return engine.MapPartitions(name, d, codec, fn)
}

// PartitionBy shuffles items to the partition selected by key.
func PartitionBy[T any](name string, d *Dataset[T], numPartitions int, key func(T) int) (*Dataset[T], error) {
	return engine.PartitionBy(name, d, numPartitions, key)
}

// SortPartitions sorts every partition by less.
func SortPartitions[T any](name string, d *Dataset[T], less func(a, b T) bool) (*Dataset[T], error) {
	return engine.SortPartitions(name, d, less)
}

// Collect gathers all partitions to the driver.
func Collect[T any](name string, d *Dataset[T]) ([]T, error) {
	return engine.Collect(name, d)
}

// Reduce folds all items with an associative function; found is false for
// empty datasets.
func Reduce[T any](name string, d *Dataset[T], fn func(T, T) T) (value T, found bool, err error) {
	return engine.Reduce(name, d, fn)
}

// Count returns the total number of items.
func Count[T any](name string, d *Dataset[T]) (int, error) {
	return engine.Count(name, d)
}
