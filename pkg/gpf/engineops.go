package gpf

import (
	"github.com/gpf-go/gpf/internal/colfmt"
	"github.com/gpf-go/gpf/internal/engine"
)

// Engine operations for building custom Processes: the same primitives the
// built-in Processes use. Narrow operations (Map, Filter, FlatMap,
// MapPartitions) are lazy — they record lineage and execute only at a
// barrier (an action such as Collect, Reduce or Count, or a wide operation
// such as PartitionBy or SortPartitions), at which point the maximal chain
// of pending narrow ops runs as a single fused stage per partition. A fused
// chain appears in the engine metrics as one stage named by joining the op
// names with "+"; errors from narrow op functions likewise surface at the
// barrier, not at the recording call.
//
// Every operation accepts optional StageOptions declaring its field effects
// (ReadsOnly, Rebuilds, WithEffects). The projection planner uses the
// declarations to compute, at each barrier, the minimal field set every edge
// of the plan must carry — pruning column decodes and shuffle wire bytes
// without any manual ReadingFields annotation. Undeclared ops conservatively
// read and write all fields.

// Serializer is the partition codec interface (see GPFSAMCodec and friends).
type Serializer[T any] = engine.Serializer[T]

// FieldMask selects record fields for effect declarations (bit meanings
// belong to the codec; see the colfmt Field* constants).
type FieldMask = engine.FieldMask

// FieldEffects declares which fields an operation reads and which it writes.
type FieldEffects = engine.FieldEffects

// Field bits of the SAM record codec — the columns of the columnar block
// layout. Combine with | in effect declarations. FieldCoord covers
// RefID+Pos; FieldMate covers MateRef/MatePos/TempLen.
const (
	FieldName  = colfmt.FieldName
	FieldFlag  = colfmt.FieldFlag
	FieldCoord = colfmt.FieldCoord
	FieldMapQ  = colfmt.FieldMapQ
	FieldCigar = colfmt.FieldCigar
	FieldMate  = colfmt.FieldMate
	FieldSeq   = colfmt.FieldSeq
	FieldQual  = colfmt.FieldQual
	FieldTags  = colfmt.FieldTags
)

// FieldsAll saturates a mask: the op touches every field of its record
// type, whatever the codec. Use it — not a union of the bits above — to
// declare "reads everything", so the materialized partitions satisfy any
// later demand.
const FieldsAll = engine.FieldsAll

// StageOption configures an engine operation (currently: effect declarations).
type StageOption = engine.StageOption

// WithEffects declares an op's field effects explicitly.
func WithEffects(fx FieldEffects) StageOption { return engine.WithEffects(fx) }

// ReadsOnly declares a pass-through op that reads only the given fields and
// rewrites none (output fields come from the input unchanged).
func ReadsOnly(mask FieldMask) StageOption { return engine.ReadsOnly(mask) }

// Rebuilds declares an op that reads the given fields and rewrites every
// field of its output records.
func Rebuilds(reads FieldMask) StageOption { return engine.Rebuilds(reads) }

// Parallelize distributes items over numPartitions.
func Parallelize[T any](eng *Engine, items []T, numPartitions int) *Dataset[T] {
	return engine.Parallelize(eng, items, numPartitions)
}

// WithCodec attaches a serializer to a dataset.
func WithCodec[T any](d *Dataset[T], codec Serializer[T]) *Dataset[T] {
	return engine.WithCodec(d, codec)
}

// Map applies fn to every item.
func Map[T, U any](name string, d *Dataset[T], codec Serializer[U], fn func(T) U, opts ...StageOption) (*Dataset[U], error) {
	return engine.Map(name, d, codec, fn, opts...)
}

// Filter keeps items for which pred is true.
func Filter[T any](name string, d *Dataset[T], pred func(T) bool, opts ...StageOption) (*Dataset[T], error) {
	return engine.Filter(name, d, pred, opts...)
}

// FlatMap applies fn to every item and concatenates the results.
func FlatMap[T, U any](name string, d *Dataset[T], codec Serializer[U], fn func(T) []U, opts ...StageOption) (*Dataset[U], error) {
	return engine.FlatMap(name, d, codec, fn, opts...)
}

// MapPartitions transforms whole partitions.
func MapPartitions[T, U any](name string, d *Dataset[T], codec Serializer[U], fn func(p int, items []T) ([]U, error), opts ...StageOption) (*Dataset[U], error) {
	return engine.MapPartitions(name, d, codec, fn, opts...)
}

// PartitionBy shuffles items to the partition selected by key.
func PartitionBy[T any](name string, d *Dataset[T], numPartitions int, key func(T) int, opts ...StageOption) (*Dataset[T], error) {
	return engine.PartitionBy(name, d, numPartitions, key, opts...)
}

// SortPartitions sorts every partition by less.
func SortPartitions[T any](name string, d *Dataset[T], less func(a, b T) bool, opts ...StageOption) (*Dataset[T], error) {
	return engine.SortPartitions(name, d, less, opts...)
}

// Collect gathers all partitions to the driver.
func Collect[T any](name string, d *Dataset[T]) ([]T, error) {
	return engine.Collect(name, d)
}

// Reduce folds all items with an associative function; found is false for
// empty datasets.
func Reduce[T any](name string, d *Dataset[T], fn func(T, T) T) (value T, found bool, err error) {
	return engine.Reduce(name, d, fn)
}

// Count returns the total number of items.
func Count[T any](name string, d *Dataset[T]) (int, error) {
	return engine.Count(name, d)
}

// CountByKey counts items per integer key.
func CountByKey[T any](name string, d *Dataset[T], key func(T) int, opts ...StageOption) (map[int]int, error) {
	return engine.CountByKey(name, d, key, opts...)
}
