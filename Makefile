GO ?= go

.PHONY: all build test race vet lint check bench-json clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...
	$(GO) vet -copylocks -loopclosure ./...

# lint runs the project's own analyzer suite (see DESIGN.md, "Checked
# invariants"). CI fails on any diagnostic; suppress a justified finding
# with `//lint:ignore gpflint/<name> reason`.
lint:
	$(GO) run ./cmd/gpflint ./...

check: build vet lint test

# bench-json emits the shuffle and columnar-projection benchmarks (WGS
# ablation + I/O-model micro + projection pushdown + per-column codec micro)
# as machine-readable test2json events for the experiment archive (see
# EXPERIMENTS.md).
bench-json:
	$(GO) test -json -run '^$$' -bench 'BenchmarkAblationPipelinedShuffle|BenchmarkShuffleMicro|BenchmarkProjectionPushdown' -benchtime 3x . > BENCH_6.json
	$(GO) test -json -run '^$$' -bench 'BenchmarkColumnar' -benchtime 100x ./internal/colfmt >> BENCH_6.json

clean:
	$(GO) clean ./...
