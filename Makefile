GO ?= go

.PHONY: all build test race vet lint check bench-json scaling clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...
	$(GO) vet -copylocks -loopclosure ./...

# lint runs the project's own analyzer suite (see DESIGN.md, "Checked
# invariants"). CI fails on any diagnostic; suppress a justified finding
# with `//lint:ignore gpflint/<name> reason`.
lint:
	$(GO) run ./cmd/gpflint ./...

check: build vet lint test

# bench-json emits the benchmark archive for the current PR (see
# EXPERIMENTS.md): WGS ablations (shuffle, fast kernels) + I/O-model micro +
# projection pushdown + the planner's decode/wire ablation + per-column codec
# micro + the per-kernel reference-vs-optimized pairs + the multi-process
# shuffle transport, as machine-readable test2json events. Override BENCH_N
# to write a different archive generation.
BENCH_N ?= 10
BENCH_FILE = BENCH_$(BENCH_N).json

bench-json:
	$(GO) test -json -run '^$$' -bench 'BenchmarkAblationPipelinedShuffle|BenchmarkAblationFastKernels|BenchmarkShuffleMicro|BenchmarkProjectionPushdown|BenchmarkProjectionPlanner' -benchtime 3x . > $(BENCH_FILE)
	$(GO) test -json -run '^$$' -bench 'BenchmarkColumnar' -benchtime 100x ./internal/colfmt >> $(BENCH_FILE)
	$(GO) test -json -run '^$$' -bench 'BenchmarkKernel' -benchmem -benchtime 1s ./internal/caller ./internal/align ./internal/genome ./internal/compress >> $(BENCH_FILE)
	$(GO) test -json -run '^$$' -bench 'BenchmarkShuffleTransport' -benchtime 3x ./internal/engine/exec/mproc >> $(BENCH_FILE)

# scaling regenerates the measured-vs-predicted multi-process curve quoted in
# EXPERIMENTS.md (W = 1, 2, 4, 8 worker processes over the TCP transport next
# to the simulator oracle's prediction).
scaling:
	$(GO) run ./cmd/gpf-bench -exp scaling

clean:
	$(GO) clean ./...
