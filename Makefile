GO ?= go

.PHONY: all build test race vet lint check clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...
	$(GO) vet -copylocks -loopclosure ./...

# lint runs the project's own analyzer suite (see DESIGN.md, "Checked
# invariants"). CI fails on any diagnostic; suppress a justified finding
# with `//lint:ignore gpflint/<name> reason`.
lint:
	$(GO) run ./cmd/gpflint ./...

check: build vet lint test

clean:
	$(GO) clean ./...
