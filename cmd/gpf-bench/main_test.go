package main

import (
	"testing"

	"github.com/gpf-go/gpf/internal/experiments"
)

func TestRunnersCoverEveryExperiment(t *testing.T) {
	want := map[string]bool{
		"table1": false, "fig5": false, "table3": false, "table4": false,
		"fig10": false, "fig11": false, "fig12": false, "fig13": false, "table5": false,
		"projection": false, "projection-planner": false, "kernels": false,
		"scaling": false, "wgs": false,
	}
	for _, r := range runners() {
		if _, ok := want[r.id]; !ok {
			t.Fatalf("unexpected runner %q", r.id)
		}
		want[r.id] = true
		if r.doc == "" {
			t.Fatalf("runner %q lacks documentation", r.id)
		}
	}
	for id, seen := range want {
		if !seen {
			t.Fatalf("experiment %s has no runner", id)
		}
	}
}

func TestRunnerExecutes(t *testing.T) {
	// fig5 is the cheapest runner; execute it end to end.
	for _, r := range runners() {
		if r.id != "fig5" {
			continue
		}
		lines, err := r.fn(experiments.SmallScale())
		if err != nil {
			t.Fatal(err)
		}
		if len(lines) == 0 {
			t.Fatal("no output lines")
		}
	}
}
