// Command gpf-bench regenerates the tables and figures of the paper's
// evaluation (§5). Each experiment runs the real pipeline on synthetic
// workloads and, where the paper measured a 2048-core cluster, replays the
// measured trace through the cluster simulator.
//
//	gpf-bench -exp fig10                    # one experiment
//	gpf-bench -exp all                      # everything
//	gpf-bench -exp table4 -scale default
//	gpf-bench -exp wgs -backend=mproc -procs 4   # WGS on the multi-process backend
//	gpf-bench -exp scaling                  # measured W=1..8 curve vs simulator
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/gpf-go/gpf/internal/engine/exec/mproc"
	"github.com/gpf-go/gpf/internal/experiments"
)

// Backend selection for the wgs runner (see -backend / -procs).
var (
	backendName string
	backendProc int
)

type runner struct {
	id  string
	fn  func(experiments.Scale) ([]string, error)
	doc string
}

func runners() []runner {
	return []runner{
		{"table1", func(s experiments.Scale) ([]string, error) {
			r, err := experiments.Table1(s)
			return format(r, err)
		}, "I/O vs CPU share of the file-handoff pipeline, 1 vs 30 samples, Lustre vs NFS"},
		{"fig5", func(s experiments.Scale) ([]string, error) {
			r, err := experiments.Fig5(s)
			return format(r, err)
		}, "quality-score and adjacent-delta distributions of two samples"},
		{"table3", func(s experiments.Scale) ([]string, error) {
			r, err := experiments.Table3(s)
			return format(r, err)
		}, "genomic compression per pipeline stage"},
		{"table4", func(s experiments.Scale) ([]string, error) {
			r, err := experiments.Table4(s)
			return format(r, err)
		}, "redundancy elimination on vs off"},
		{"fig10", func(s experiments.Scale) ([]string, error) {
			r, err := experiments.Fig10(s)
			return format(r, err)
		}, "cluster scalability: GPF vs Churchill, 128-2048 cores"},
		{"fig11", func(s experiments.Scale) ([]string, error) {
			r, err := experiments.Fig11(s)
			return format(r, err)
		}, "per-stage strong scaling vs ADAM/GATK4/Persona + aligner throughput"},
		{"fig12", func(s experiments.Scale) ([]string, error) {
			r, err := experiments.Fig12(s)
			return format(r, err)
		}, "blocked-time analysis: JCT bound from eliminating disk/network"},
		{"fig13", func(s experiments.Scale) ([]string, error) {
			r, err := experiments.Fig13(s)
			return format(r, err)
		}, "resource-utilization timeline at 2048 cores"},
		{"table5", func(s experiments.Scale) ([]string, error) {
			r, err := experiments.Table5(s)
			return format(r, err)
		}, "platform comparison: parallel efficiency"},
		{"projection", func(s experiments.Scale) ([]string, error) {
			r, err := experiments.Projection(s)
			return format(r, err)
		}, "columnar projection pushdown: coordinate census decode bytes, columnar vs gob"},
		{"projection-planner", func(s experiments.Scale) ([]string, error) {
			r, err := experiments.ProjectionPlanner(s)
			return format(r, err)
		}, "planner ablation: manual view vs inferred effects vs disabled, decode + wire bytes"},
		{"kernels", func(s experiments.Scale) ([]string, error) {
			r, err := experiments.Kernels(s)
			return format(r, err)
		}, "hot-kernel ablation: WGS wall fast vs reference kernels, VCF byte-identity"},
		{"scaling", func(s experiments.Scale) ([]string, error) {
			r, err := experiments.Scaling(s)
			return format(r, err)
		}, "multi-process scaling: measured W=1,2,4,8 vs simulator prediction"},
		{"wgs", func(s experiments.Scale) ([]string, error) {
			return experiments.RunWGSOn(s, backendName, backendProc)
		}, "one WGS run on the selected executor backend (-backend, -procs)"},
	}
}

type formatter interface{ Format() []string }

func format(r formatter, err error) ([]string, error) {
	if err != nil {
		return nil, err
	}
	return r.Format(), nil
}

func main() {
	// When re-exec'd as an mproc worker this never returns; it must run
	// before any flag or experiment logic.
	mproc.WorkerMaybe()

	exp := flag.String("exp", "all", "experiment id (table1|fig5|table3|table4|fig10|fig11|fig12|fig13|table5|projection|projection-planner|kernels|scaling|wgs|all)")
	scaleName := flag.String("scale", "small", "workload scale (small|default)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.StringVar(&backendName, "backend", "inproc", "executor backend for -exp wgs (inproc|sim|mproc)")
	flag.IntVar(&backendProc, "procs", 4, "worker processes for -backend=mproc")
	flag.Parse()

	if *list {
		for _, r := range runners() {
			fmt.Printf("%-8s %s\n", r.id, r.doc)
		}
		return
	}
	scale := experiments.SmallScale()
	if *scaleName == "default" {
		scale = experiments.DefaultScale()
	}
	ran := false
	for _, r := range runners() {
		if *exp != "all" && *exp != r.id {
			continue
		}
		ran = true
		start := time.Now()
		lines, err := r.fn(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gpf-bench: %s: %v\n", r.id, err)
			os.Exit(1)
		}
		fmt.Printf("== %s (%s) [%v]\n", r.id, r.doc, time.Since(start).Round(time.Millisecond))
		for _, l := range lines {
			fmt.Println(l)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "gpf-bench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(1)
	}
}
