// Command gpf-datagen synthesizes a reference genome, a donor truth set and
// paired-end reads — the laptop-scale stand-in for the paper's NA12878
// Platinum Genome inputs (§5.1). It writes ref.fa, reads_1.fastq,
// reads_2.fastq and truth.vcf under the output prefix.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/gpf-go/gpf/internal/fastq"
	"github.com/gpf-go/gpf/pkg/gpf"
)

func main() {
	genomeLen := flag.Int("genome-len", 200000, "reference length in bases")
	contigs := flag.Int("contigs", 3, "number of contigs")
	coverage := flag.Float64("coverage", 15, "mean sequencing depth")
	seed := flag.Int64("seed", 42, "random seed")
	outDir := flag.String("out", ".", "output directory")
	flag.Parse()

	if err := run(*genomeLen, *contigs, *coverage, *seed, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "gpf-datagen:", err)
		os.Exit(1)
	}
}

func run(genomeLen, contigs int, coverage float64, seed int64, outDir string) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	ref := gpf.SynthesizeGenome(gpf.DefaultSynthConfig(seed, genomeLen, contigs))
	donor := gpf.MutateGenome(ref, gpf.DefaultMutateConfig(seed+1))
	pairs := gpf.SimulateReads(donor, gpf.DefaultSimConfig(seed+2, coverage))

	refPath := filepath.Join(outDir, "ref.fa")
	f, err := os.Create(refPath)
	if err != nil {
		return err
	}
	if err := gpf.WriteFASTA(f, ref); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	for mate := 1; mate <= 2; mate++ {
		path := filepath.Join(outDir, fmt.Sprintf("reads_%d.fastq", mate))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		w := fastq.NewWriter(f)
		for i := range pairs {
			rec := &pairs[i].R1
			if mate == 2 {
				rec = &pairs[i].R2
			}
			if err := w.Write(rec); err != nil {
				f.Close()
				return err
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	truthPath := filepath.Join(outDir, "truth.vcf")
	tf, err := os.Create(truthPath)
	if err != nil {
		return err
	}
	var truth []gpf.VCFRecord
	for _, v := range donor.Truth.Variants {
		gt := gpf.VCFRecord{
			Chrom: ref.Contigs[v.Contig].Name,
			Pos:   v.Pos,
			Ref:   string(v.Ref),
			Alt:   string(v.Alt),
			Qual:  100,
		}
		truth = append(truth, gt)
	}
	names := make([]string, ref.NumContigs())
	for i := range names {
		names[i] = ref.Contigs[i].Name
	}
	if err := gpf.WriteVCF(tf, nil, truth); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	_ = names

	fmt.Printf("wrote %s (%d contigs, %d bases), %d read pairs, %d truth variants\n",
		refPath, ref.NumContigs(), ref.TotalLen(), len(pairs), len(truth))
	return nil
}
