package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/gpf-go/gpf/pkg/gpf"
)

func TestDatagenRun(t *testing.T) {
	dir := t.TempDir()
	if err := run(20000, 2, 5, 7, dir); err != nil {
		t.Fatal(err)
	}
	// Reference parses back.
	rf, err := os.Open(filepath.Join(dir, "ref.fa"))
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	ref, err := gpf.ReadFASTA(rf)
	if err != nil {
		t.Fatal(err)
	}
	if ref.NumContigs() != 2 {
		t.Fatalf("contigs = %d", ref.NumContigs())
	}
	// FASTQ mates parse and zip.
	f1, err := os.Open(filepath.Join(dir, "reads_1.fastq"))
	if err != nil {
		t.Fatal(err)
	}
	defer f1.Close()
	f2, err := os.Open(filepath.Join(dir, "reads_2.fastq"))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	rt := gpf.NewRuntime(gpf.NewEngine(1), ref)
	ds, err := gpf.LoadFastqPairToRDD(rt, f1, f2, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := gpf.Count("count", ds)
	if err != nil || n == 0 {
		t.Fatalf("pairs = %d, %v", n, err)
	}
	// Truth VCF parses.
	tf, err := os.Open(filepath.Join(dir, "truth.vcf"))
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	_, truth, err := gpf.ReadVCF(tf)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) == 0 {
		t.Fatal("no truth variants written")
	}
}

func TestDatagenRunBadDir(t *testing.T) {
	if err := run(1000, 1, 2, 1, "/proc/definitely/not/writable"); err == nil {
		t.Fatal("unwritable output dir should error")
	}
}
