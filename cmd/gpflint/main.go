// Command gpflint runs the gpflint analyzer suite (internal/lint) over
// package patterns or explicit Go files and reports diagnostics in the
// standard file:line:col format. It exits 1 when any diagnostic is reported,
// 2 on load or usage errors — so CI can gate on it directly:
//
//	go run ./cmd/gpflint ./...
//
// Run it from the module root. Explicit .go file arguments are type-checked
// as one synthetic package against the module's dependencies (used by the
// analyzer fixtures and the race-pattern smoke test):
//
//	go run ./cmd/gpflint internal/lint/testdata/racefixture/fixture.go
//
// Findings are suppressed by a comment on the offending line or the line
// above: //lint:ignore gpflint/<analyzer> <reason>. The suite and the
// invariants it guards are documented in DESIGN.md, "Checked invariants".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/gpf-go/gpf/internal/lint"
	"github.com/gpf-go/gpf/internal/lint/loader"
)

func main() {
	listOnly := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout (exit codes unchanged)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gpflint [-list] [-only name,...] [-json] <packages or .go files>\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Suite()
	if *listOnly {
		for _, a := range analyzers {
			fmt.Printf("gpflint/%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := make(map[string]bool)
		for _, n := range strings.Split(*only, ",") {
			keep[strings.TrimPrefix(strings.TrimSpace(n), "gpflint/")] = true
		}
		var filtered = analyzers[:0]
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
			}
		}
		analyzers = filtered
		if len(analyzers) == 0 {
			fmt.Fprintf(os.Stderr, "gpflint: no analyzers match -only=%s\n", *only)
			os.Exit(2)
		}
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	pkgs, err := load(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpflint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpflint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(lint.ToJSON(pkgs[0].Fset, diags)); err != nil {
			fmt.Fprintln(os.Stderr, "gpflint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(lint.Format(pkgs[0].Fset, d))
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gpflint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

// load resolves the argument list: all-.go-files mode checks them as one
// synthetic package; otherwise the arguments are go list patterns.
func load(args []string) ([]*loader.Package, error) {
	goFiles := true
	for _, a := range args {
		if !strings.HasSuffix(a, ".go") {
			goFiles = false
			break
		}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	if goFiles {
		pkg, err := loader.LoadFiles(cwd, "command-line-arguments", args)
		if err != nil {
			return nil, err
		}
		return []*loader.Package{pkg}, nil
	}
	return loader.Load(cwd, args)
}
