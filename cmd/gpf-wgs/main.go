// Command gpf-wgs runs the paper's WGS pipeline (Fig 3) end to end: FASTQ
// pairs are aligned with the BWT aligner, cleaned (duplicate marking, indel
// realignment, base recalibration over dynamically balanced partitions) and
// called into a VCF — all through the GPF in-memory engine.
//
// Run it either on files produced by gpf-datagen:
//
//	gpf-wgs -ref ref.fa -fastq1 reads_1.fastq -fastq2 reads_2.fastq -out calls.vcf
//
// or fully self-contained on a synthetic dataset:
//
//	gpf-wgs -synthetic -out calls.vcf
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/gpf-go/gpf/pkg/gpf"
)

func main() {
	refPath := flag.String("ref", "", "reference FASTA")
	fq1 := flag.String("fastq1", "", "mate-1 FASTQ")
	fq2 := flag.String("fastq2", "", "mate-2 FASTQ")
	outPath := flag.String("out", "calls.vcf", "output VCF path")
	workers := flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
	partitions := flag.Int("partitions", 16, "input partitions")
	partLen := flag.Int("partition-len", 1_000_000, "genomic partition length (bases)")
	synthetic := flag.Bool("synthetic", false, "run on a built-in synthetic dataset")
	synthLen := flag.Int("synthetic-len", 150000, "synthetic genome length")
	coverage := flag.Float64("coverage", 12, "synthetic coverage")
	noOptimize := flag.Bool("no-optimize", false, "disable Process-level redundancy elimination")
	gvcf := flag.Bool("gvcf", false, "emit gVCF-style output")
	flag.Parse()

	if err := run(*refPath, *fq1, *fq2, *outPath, *workers, *partitions, *partLen,
		*synthetic, *synthLen, *coverage, *noOptimize, *gvcf); err != nil {
		fmt.Fprintln(os.Stderr, "gpf-wgs:", err)
		os.Exit(1)
	}
}

func run(refPath, fq1, fq2, outPath string, workers, partitions, partLen int,
	synthetic bool, synthLen int, coverage float64, noOptimize, gvcf bool) error {

	eng := gpf.NewEngine(workers)
	var ref *gpf.Reference
	var pairs *gpf.Dataset[gpf.FASTQPair]
	var rt *gpf.Runtime

	switch {
	case synthetic:
		ref = gpf.SynthesizeGenome(gpf.DefaultSynthConfig(42, synthLen, 3))
		donor := gpf.MutateGenome(ref, gpf.DefaultMutateConfig(43))
		raw := gpf.SimulateReads(donor, gpf.DefaultSimConfig(44, coverage))
		rt = gpf.NewRuntime(eng, ref)
		rt.PartitionLen = clampPartLen(partLen, synthLen)
		pairs = gpf.PairsToRDD(rt, raw, partitions)
		fmt.Printf("synthetic dataset: %d bases, %d read pairs\n", ref.TotalLen(), len(raw))
	case refPath != "" && fq1 != "" && fq2 != "":
		rf, err := os.Open(refPath)
		if err != nil {
			return err
		}
		ref, err = gpf.ReadFASTA(rf)
		rf.Close()
		if err != nil {
			return err
		}
		f1, err := os.Open(fq1)
		if err != nil {
			return err
		}
		defer f1.Close()
		f2, err := os.Open(fq2)
		if err != nil {
			return err
		}
		defer f2.Close()
		rt = gpf.NewRuntime(eng, ref)
		rt.PartitionLen = clampPartLen(partLen, int(ref.TotalLen()))
		pairs, err = gpf.LoadFastqPairToRDD(rt, f1, f2, partitions)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("either -synthetic or all of -ref/-fastq1/-fastq2 are required")
	}

	start := time.Now()
	wgs := gpf.BuildWGSPipeline(rt, pairs, gvcf)
	wgs.Pipeline.Optimize = !noOptimize
	if err := wgs.Pipeline.Run(); err != nil {
		return err
	}
	calls, err := gpf.CollectVCF(rt, wgs.VCF)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer out.Close()
	names := make([]string, ref.NumContigs())
	for i := range names {
		names[i] = ref.Contigs[i].Name
	}
	header := gpf.NewVCFHeader(names, ref.Lengths(), "sample")
	if err := gpf.WriteVCF(out, header, calls); err != nil {
		return err
	}

	m := eng.Metrics()
	fmt.Printf("pipeline: %v, %d stages, %d variants -> %s\n",
		elapsed.Round(time.Millisecond), m.NumStages(), len(calls), outPath)
	fmt.Printf("execution order: %v\n", wgs.Pipeline.ExecutionOrder())
	fmt.Printf("shuffle: %.1f MB moved, %.1fs serializing\n",
		float64(m.TotalShuffleBytes())/1e6, m.TotalTaskTime().Seconds())
	return nil
}

// clampPartLen keeps the partition length sensible for tiny genomes.
func clampPartLen(partLen, genomeLen int) int {
	if partLen > genomeLen/4 && genomeLen >= 40 {
		return genomeLen / 10
	}
	return partLen
}
