package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/gpf-go/gpf/pkg/gpf"
)

func TestWGSRunSynthetic(t *testing.T) {
	out := filepath.Join(t.TempDir(), "calls.vcf")
	err := run("", "", "", out, 2, 4, 1_000_000, true, 40000, 8, false, false)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	header, calls, err := gpf.ReadVCF(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(header.Contigs) != 3 {
		t.Fatalf("header contigs = %d", len(header.Contigs))
	}
	if len(calls) == 0 {
		t.Fatal("no calls written")
	}
}

func TestWGSRunMissingInputs(t *testing.T) {
	if err := run("", "", "", "x.vcf", 1, 2, 1000, false, 0, 0, false, false); err == nil {
		t.Fatal("missing inputs should error")
	}
	if err := run("/nonexistent.fa", "a", "b", "x.vcf", 1, 2, 1000, false, 0, 0, false, false); err == nil {
		t.Fatal("bad reference path should error")
	}
}

func TestClampPartLen(t *testing.T) {
	if got := clampPartLen(1_000_000, 40000); got != 4000 {
		t.Fatalf("clamp = %d, want genome/10", got)
	}
	if got := clampPartLen(1000, 40000); got != 1000 {
		t.Fatalf("small partLen should pass through: %d", got)
	}
}
