// Command gpf-worker is a standalone mproc worker binary. A driver points
// mproc.Options.WorkerBin at it instead of re-exec'ing itself — useful when
// the driver binary is heavyweight or when workers should run a pinned build.
// It links the same job registry as gpf-bench (the experiments package
// registers its jobs in init), so every registered job name resolves here.
//
// The binary only does something when spawned by an mproc driver (the
// GPF_MPROC_WORKER handshake environment is set); run directly it exits with
// an explanation.
package main

import (
	"fmt"
	"os"

	"github.com/gpf-go/gpf/internal/engine/exec/mproc"
	_ "github.com/gpf-go/gpf/internal/experiments" // register mproc jobs
)

func main() {
	mproc.WorkerMaybe()
	fmt.Fprintln(os.Stderr, "gpf-worker: not spawned by an mproc driver (GPF_MPROC_WORKER unset); use mproc.Options.WorkerBin to point a driver here")
	os.Exit(2)
}
