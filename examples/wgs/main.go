// WGS accuracy demo: runs the full pipeline on a synthetic donor genome and
// scores the calls against the injected truth set, reporting precision and
// recall — the correctness check behind every performance number in the
// paper reproduction. It also demonstrates the optimizer by running the same
// pipeline with redundancy elimination disabled and comparing engine
// metrics (the Table 4 effect at example scale).
package main

import (
	"fmt"
	"log"

	"github.com/gpf-go/gpf/pkg/gpf"
)

func main() {
	ref := gpf.SynthesizeGenome(gpf.DefaultSynthConfig(11, 80000, 3))
	donor := gpf.MutateGenome(ref, gpf.DefaultMutateConfig(12))
	reads := gpf.SimulateReads(donor, gpf.DefaultSimConfig(13, 15))
	fmt.Printf("dataset: %d bases, %d pairs, %d truth variants\n",
		ref.TotalLen(), len(reads), len(donor.Truth.Variants))

	// Truth set in VCF form for scoring.
	var truth []gpf.VCFRecord
	for _, v := range donor.Truth.Variants {
		truth = append(truth, gpf.VCFRecord{
			Chrom: ref.Contigs[v.Contig].Name,
			Pos:   v.Pos,
			Ref:   string(v.Ref),
			Alt:   string(v.Alt),
		})
	}

	for _, optimize := range []bool{true, false} {
		rt := gpf.NewRuntime(gpf.NewEngine(4), ref)
		rt.PartitionLen = 8000
		pairs := gpf.PairsToRDD(rt, reads, 8)
		wgs := gpf.BuildWGSPipeline(rt, pairs, false)
		wgs.Pipeline.Optimize = optimize
		if err := wgs.Pipeline.Run(); err != nil {
			log.Fatal(err)
		}
		calls, err := gpf.CollectVCF(rt, wgs.VCF)
		if err != nil {
			log.Fatal(err)
		}
		stats := gpf.CompareVCF(calls, truth, 2)
		m := rt.Engine.Metrics()
		mode := "optimized"
		if !optimize {
			mode = "unoptimized"
		}
		fmt.Printf("%-12s stages=%2d shuffle=%6.2fMB calls=%3d precision=%.2f recall=%.2f\n",
			mode, m.NumStages(), float64(m.TotalShuffleBytes())/1e6, len(calls),
			stats.Precision(), stats.Recall())
	}
}
