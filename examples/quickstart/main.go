// Quickstart: the smallest complete GPF program. It synthesizes a toy
// genome, simulates reads, runs the standard WGS pipeline (Fig 3 of the
// paper) and prints the variant calls.
package main

import (
	"fmt"
	"log"

	"github.com/gpf-go/gpf/pkg/gpf"
)

func main() {
	// A 40 kb reference with 2 chromosomes, a donor with injected variants,
	// and 10x paired-end reads.
	ref := gpf.SynthesizeGenome(gpf.DefaultSynthConfig(1, 40000, 2))
	donor := gpf.MutateGenome(ref, gpf.DefaultMutateConfig(2))
	reads := gpf.SimulateReads(donor, gpf.DefaultSimConfig(3, 10))
	fmt.Printf("genome: %d bases, reads: %d pairs\n", ref.TotalLen(), len(reads))

	// Engine + runtime. Workers = local parallelism; PartitionLen is the
	// genomic partition size of the dynamic repartitioner.
	rt := gpf.NewRuntime(gpf.NewEngine(4), ref)
	rt.PartitionLen = 5000

	// Build and run the Aligner -> Cleaner -> Caller pipeline.
	pairs := gpf.PairsToRDD(rt, reads, 8)
	wgs := gpf.BuildWGSPipeline(rt, pairs, false)
	if err := wgs.Pipeline.Run(); err != nil {
		log.Fatal(err)
	}
	calls, err := gpf.CollectVCF(rt, wgs.VCF)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("called %d variants; first few:\n", len(calls))
	for i, c := range calls {
		if i == 5 {
			break
		}
		fmt.Printf("  %s:%d %s>%s %s (qual %.0f, depth %d)\n",
			c.Chrom, c.Pos+1, c.Ref, c.Alt, c.GT, c.Qual, c.Depth)
	}
	fmt.Printf("executed processes: %v\n", wgs.Pipeline.ExecutionOrder())
}
