// Custom-Process demo: the paper's programming model (§3) lets users build
// personalized pipelines by defining their own Processes over Resources.
// This example adds two user Processes to the standard pipeline:
//
//   - MapqFilterProcess drops low-confidence alignments between the Aligner
//     and the Cleaner (a common pipeline customization), and
//   - CoverageStatsProcess computes a per-contig depth summary as a side
//     output, demonstrating Processes with non-SAM outputs.
//
// Both integrate with the DAG scheduler exactly like the built-ins: declare
// inputs and outputs, implement Run, and let Pipeline.Run order everything.
package main

import (
	"fmt"
	"log"

	"github.com/gpf-go/gpf/pkg/gpf"
)

// MapqFilterProcess removes mapped records whose MAPQ is below a threshold.
type MapqFilterProcess struct {
	name    string
	minMapQ uint8
	in, out *gpf.SAMBundle
}

// ProcessName implements gpf.Process.
func (p *MapqFilterProcess) ProcessName() string { return p.name }

// Inputs implements gpf.Process.
func (p *MapqFilterProcess) Inputs() []gpf.Resource { return []gpf.Resource{p.in} }

// Outputs implements gpf.Process.
func (p *MapqFilterProcess) Outputs() []gpf.Resource { return []gpf.Resource{p.out} }

// Run filters the flat record dataset.
func (p *MapqFilterProcess) Run(rt *gpf.Runtime) error {
	flat, err := p.in.EnsureFlat(rt)
	if err != nil {
		return err
	}
	minQ := p.minMapQ
	filtered, err := gpf.Filter(p.name+"/filter", flat, func(r gpf.SAMRecord) bool {
		return r.Unmapped() || r.MapQ >= minQ
	})
	if err != nil {
		return err
	}
	p.out.Data = filtered
	p.out.Header = p.in.Header
	return nil
}

// CoverageStatsProcess is a Resource+Process pair producing per-contig mean
// depth. Its output Resource is a plain struct satisfying gpf.Resource via
// embedding of a defined SAM bundle would be overkill; instead we keep the
// result on the process and expose it after Run.
type CoverageStatsProcess struct {
	name string
	in   *gpf.SAMBundle
	out  *gpf.SAMBundle // passthrough so downstream Processes can depend on us
	// PerContig[i] is the mean depth of contig i, filled by Run.
	PerContig []float64
}

// ProcessName implements gpf.Process.
func (p *CoverageStatsProcess) ProcessName() string { return p.name }

// Inputs implements gpf.Process.
func (p *CoverageStatsProcess) Inputs() []gpf.Resource { return []gpf.Resource{p.in} }

// Outputs implements gpf.Process.
func (p *CoverageStatsProcess) Outputs() []gpf.Resource { return []gpf.Resource{p.out} }

// Run reduces per-contig aligned base counts and converts them to depth.
func (p *CoverageStatsProcess) Run(rt *gpf.Runtime) error {
	flat, err := p.in.EnsureFlat(rt)
	if err != nil {
		return err
	}
	type counts struct{ bases []int64 }
	n := rt.Ref.NumContigs()
	partials, err := gpf.MapPartitions(p.name+"/count", flat, nil,
		func(_ int, recs []gpf.SAMRecord) ([]counts, error) {
			c := counts{bases: make([]int64, n)}
			for i := range recs {
				if recs[i].Unmapped() {
					continue
				}
				c.bases[recs[i].RefID] += int64(recs[i].Cigar.RefLen())
			}
			return []counts{c}, nil
		})
	if err != nil {
		return err
	}
	total, found, err := gpf.Reduce(p.name+"/reduce", partials, func(a, b counts) counts {
		for i := range a.bases {
			a.bases[i] += b.bases[i]
		}
		return a
	})
	if err != nil {
		return err
	}
	p.PerContig = make([]float64, n)
	if found {
		for i, l := range rt.Ref.Lengths() {
			if l > 0 {
				p.PerContig[i] = float64(total.bases[i]) / float64(l)
			}
		}
	}
	// Pass the data through unchanged.
	p.out.Data = flat
	p.out.Header = p.in.Header
	return nil
}

func main() {
	ref := gpf.SynthesizeGenome(gpf.DefaultSynthConfig(31, 50000, 2))
	donor := gpf.MutateGenome(ref, gpf.DefaultMutateConfig(32))
	reads := gpf.SimulateReads(donor, gpf.DefaultSimConfig(33, 10))

	rt := gpf.NewRuntime(gpf.NewEngine(4), ref)
	rt.PartitionLen = 6000
	pipeline := gpf.NewPipeline("custom", rt)

	// Standard aligner...
	fastqBundle := gpf.DefinedFASTQPair("reads", gpf.PairsToRDD(rt, reads, 8))
	aligned := gpf.UndefinedSAM("aligned", nil)
	pipeline.AddProcess(gpf.NewBwaMemProcess("align", fastqBundle, aligned))

	// ...then the user-defined steps...
	filtered := gpf.UndefinedSAM("filtered", nil)
	pipeline.AddProcess(&MapqFilterProcess{name: "mapq-filter", minMapQ: 20, in: aligned, out: filtered})
	withStats := gpf.UndefinedSAM("withStats", nil)
	stats := &CoverageStatsProcess{name: "coverage-stats", in: filtered, out: withStats}
	pipeline.AddProcess(stats)

	// ...then the standard cleaner step, consuming the user output.
	deduped := gpf.UndefinedSAM("deduped", nil)
	pipeline.AddProcess(gpf.NewMarkDuplicateProcess("markdup", withStats, deduped))

	if err := pipeline.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: %v\n", pipeline.ExecutionOrder())
	for i, d := range stats.PerContig {
		fmt.Printf("contig %s: mean depth %.1fx\n", ref.Contigs[i].Name, d)
	}
	recs, err := gpf.Collect("final", deduped.Data)
	if err != nil {
		log.Fatal(err)
	}
	dups := 0
	for i := range recs {
		if recs[i].Duplicate() {
			dups++
		}
	}
	fmt.Printf("final records: %d (%d duplicates marked)\n", len(recs), dups)
}
