// Compression demo: shows the effect of GPF's genomic data compression
// (§4.2, Figs 4-6, Table 3 of the paper) on simulated reads — the 2-bit
// sequence packing with N exceptions and the delta+Huffman quality coding —
// against a plain field serializer.
package main

import (
	"fmt"
	"log"

	"github.com/gpf-go/gpf/pkg/gpf"
)

func main() {
	ref := gpf.SynthesizeGenome(gpf.DefaultSynthConfig(21, 50000, 1))
	donor := gpf.MutateGenome(ref, gpf.DefaultMutateConfig(22))
	pairs := gpf.SimulateReads(donor, gpf.DefaultSimConfig(23, 12))
	fmt.Printf("%d read pairs (%d bases)\n", len(pairs), 200*len(pairs))

	// Whole-partition serialization, as the engine stores and shuffles it.
	raw, err := gpf.FieldPairCodec{}.Marshal(pairs)
	if err != nil {
		log.Fatal(err)
	}
	packed, err := gpf.GPFPairCodec{}.Marshal(pairs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("field codec:   %8d bytes\n", len(raw))
	fmt.Printf("genomic codec: %8d bytes  (%.2fx smaller)\n",
		len(packed), gpf.CompressionRatio(len(raw), len(packed)))

	// Round-trip check.
	back, err := gpf.GPFPairCodec{}.Unmarshal(packed)
	if err != nil {
		log.Fatal(err)
	}
	if len(back) != len(pairs) || string(back[0].R1.Seq) != string(pairs[0].R1.Seq) {
		log.Fatal("round trip mismatch")
	}
	fmt.Println("round trip: identical")

	// The raw seq/qual block codec, usable standalone. The example read
	// below carries an N whose quality is rewritten through the marker
	// channel and restored on decode (Fig 4's worked example).
	seqs := [][]byte{[]byte("GGTTNCCTA")}
	quals := [][]byte{[]byte("CCCB#FFFF")}
	block, err := gpf.EncodeSeqQualBlock(seqs, quals)
	if err != nil {
		log.Fatal(err)
	}
	s2, q2, err := gpf.DecodeSeqQualBlock(block)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block codec: %q/%q -> %d bytes -> %q/%q\n",
		seqs[0], quals[0], len(block), s2[0], q2[0])
}
