// Package gpf_bench holds the benchmark harness regenerating the paper's
// evaluation: one testing.B benchmark per table and figure of §5. Each
// benchmark runs the corresponding experiment at the small scale and reports
// the headline quantity the paper's artifact reports, so
//
//	go test -bench=. -benchmem
//
// regenerates every result. The gpf-bench command prints the full rows.
package gpf_bench

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/gpf-go/gpf/internal/baseline"
	"github.com/gpf-go/gpf/internal/cluster"
	"github.com/gpf-go/gpf/internal/core"
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/experiments"
	"github.com/gpf-go/gpf/internal/workload"
)

func scale() experiments.Scale { return experiments.SmallScale() }

// BenchmarkTable1 regenerates Table 1: the I/O share of the file-handoff
// pipeline at 1 versus 30 concurrent samples on Lustre and NFS.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(scale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.Samples == 30 && r.Filesystem == "NFS" {
				b.ReportMetric(r.IOPercent, "NFS30-io-%")
			}
			if r.Samples == 1 && r.Filesystem == "Lustre" {
				b.ReportMetric(r.IOPercent, "Lustre1-io-%")
			}
		}
	}
}

// BenchmarkFig5 regenerates Figure 5: the concentration of adjacent
// quality-score deltas that motivates the delta+Huffman codec.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(scale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.DeltaConcentration(0), "delta<=10-%")
	}
}

// BenchmarkTable3 regenerates Table 3: per-stage genomic compression.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(scale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].Ratio, "fastq-ratio")
		b.ReportMetric(res.Rows[1].Ratio, "sam-ratio")
	}
}

// BenchmarkTable4 regenerates Table 4: the effect of Process-level
// redundancy elimination on stages and shuffle volume.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(scale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Optimized.StageNum), "stages-opt")
		b.ReportMetric(float64(res.Redundant.StageNum), "stages-redundant")
		b.ReportMetric(float64(res.Redundant.ShuffleData)/float64(res.Optimized.ShuffleData), "shuffle-reduction-x")
	}
}

// BenchmarkFig10 regenerates Figure 10: GPF versus Churchill scalability.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(scale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.GPFEfficiency, "gpf-eff-2048-%")
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.GPFTime.Minutes(), "gpf-2048-min")
	}
}

// BenchmarkFig11 regenerates Figure 11: per-stage comparisons against ADAM,
// GATK4 and Persona plus aligner throughput.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11(scale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SpeedupOverADAM["Mark Duplicate"], "markdup-vs-adam-x")
		b.ReportMetric(res.SpeedupOverGATK4["BQSR"], "bqsr-vs-gatk4-x")
		if len(res.Aligner) > 0 {
			p := res.Aligner[len(res.Aligner)-1]
			b.ReportMetric(p.GPFBWA/p.PersonaRealBWA, "align-vs-persona-x")
		}
	}
}

// BenchmarkFig12 regenerates Figure 12: the blocked-time bounds showing GPF
// is not I/O bound.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(scale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.MaxDiskImprovement(), "max-disk-gain-%")
	}
}

// BenchmarkFig13 regenerates Figure 13: the CPU-bound utilization profile.
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(scale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.MeanCPUUtil, "mean-cpu-%")
	}
}

// BenchmarkTable5 regenerates Table 5: parallel efficiency across platforms.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table5(scale())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			if r.System == "GPF" {
				b.ReportMetric(100*r.ParallelEfficiency, "gpf-eff-%")
			}
		}
	}
}

// --- Ablations of the design choices DESIGN.md calls out ---

func ablate(b *testing.B, opts baseline.WGSOptions) (makespanMin float64, shuffleGB float64) {
	b.Helper()
	run, makespanMin, shuffleGB := ablateRun(b, opts, scale().Workers)
	_ = run
	return makespanMin, shuffleGB
}

// ablateRun is ablate with a worker-count override (the pipelined-shuffle
// ablation needs real concurrency: at Workers=1 map and reduce tasks cannot
// overlap, so FetchWait and PipelineOverlap degenerate to zero) and with the
// raw run returned so callers can report engine-level metrics.
func ablateRun(b *testing.B, opts baseline.WGSOptions, workers int) (*baseline.WGSRun, float64, float64) {
	b.Helper()
	s := scale()
	d := workload.Make(func() workload.Profile {
		p := workload.DefaultProfile(workload.WGS, s.GenomeLen)
		p.Coverage = s.Coverage
		return p
	}(), s.Seed)
	rt := core.NewRuntime(engine.NewContext(workers), d.Ref)
	rt.PartitionLen = s.PartitionLen
	rt.NumPartitions = s.NumPartitions
	rt.Known = d.Known
	run, err := baseline.RunWGS(rt, d.Pairs, opts)
	if err != nil {
		b.Fatal(err)
	}
	cpuScale := experiments.PaperBases / float64(d.TotalBases())
	byteScale := experiments.PaperFASTQBytes / float64(d.FASTQBytes())
	tr := cluster.TraceFromMetrics(run.Metrics, cpuScale, byteScale).SplitTasks(256)
	sim := cluster.Simulate(tr, cluster.PaperCluster(), 2048, cluster.SparkOptions())
	return run, sim.Makespan.Minutes(), float64(run.Metrics.TotalShuffleBytes()) * byteScale / 1e9
}

// censusWriteBytes sums shuffle-write bytes over the census stages — the
// quantity the map-side-combine rewrite shrinks.
func censusWriteBytes(m engine.Metrics) int64 {
	var n int64
	for _, s := range m.Stages {
		if strings.Contains(s.Name, "/census") {
			n += s.ShuffleWriteBytes()
		}
	}
	return n
}

// BenchmarkAblationCodecTier compares the three serializer tiers end to end:
// the genomic codec versus the Kryo-like field codec versus generic gob —
// the §4.2 design choice.
func BenchmarkAblationCodecTier(b *testing.B) {
	for _, tier := range []core.CodecTier{core.TierGPF, core.TierField, core.TierGob} {
		b.Run(tier.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := baseline.GPFOptions()
				opts.Codec = tier
				mk, gb := ablate(b, opts)
				b.ReportMetric(mk, "sim-2048-min")
				b.ReportMetric(gb, "shuffle-GB")
			}
		})
	}
}

// BenchmarkAblationFusion flips the Fig 7 redundancy elimination.
func BenchmarkAblationFusion(b *testing.B) {
	for _, fuse := range []bool{true, false} {
		name := "fused"
		if !fuse {
			name = "unfused"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := baseline.GPFOptions()
				opts.Fuse = fuse
				mk, gb := ablate(b, opts)
				b.ReportMetric(mk, "sim-2048-min")
				b.ReportMetric(gb, "shuffle-GB")
			}
		})
	}
}

// BenchmarkAblationPipelinedShuffle flips the push-based shuffle against the
// classic two-barrier execution on the WGS workload, and additionally flips
// map-side combine to expose the census byte reduction. Wall time per run is
// the benchmark's own ns/op; the extra metrics report the engine's pipeline
// accounting (FetchWait > 0 and PipelineOverlap > 0 only in pipelined mode)
// and the census shuffle-write volume.
func BenchmarkAblationPipelinedShuffle(b *testing.B) {
	// SmallScale pins Workers to 1 for reproducibility of CPU accounting; the
	// shuffle ablation is about overlap, so it needs a real worker pool.
	const workers = 4
	for _, cfg := range []struct {
		name string
		mut  func(*baseline.WGSOptions)
	}{
		{"pipelined", func(*baseline.WGSOptions) {}},
		{"barrier", func(o *baseline.WGSOptions) { o.BarrierShuffle = true }},
		{"no-combine", func(o *baseline.WGSOptions) { o.NoMapSideCombine = true }},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := baseline.GPFOptions()
				cfg.mut(&opts)
				run, mk, gb := ablateRun(b, opts, workers)
				b.ReportMetric(mk, "sim-2048-min")
				b.ReportMetric(gb, "shuffle-GB")
				b.ReportMetric(float64(run.Metrics.TotalFetchWait().Milliseconds()), "fetchwait-ms")
				b.ReportMetric(float64(run.Metrics.TotalPipelineOverlap().Milliseconds()), "overlap-ms")
				b.ReportMetric(float64(censusWriteBytes(run.Metrics))/1e3, "census-KB")
			}
		})
	}
}

// BenchmarkProjectionPushdown flips columnar partition storage against the
// generic gob fallback on a coordinate-only census stage (the repartitioner's
// load-census pattern: it reads RefID/Pos and nothing else). ns/op is the
// census wall time; the extra metrics report the engine's decode accounting —
// the columnar run decodes a fraction of the stored bytes and prunes the
// rest, the gob run decodes everything.
func BenchmarkProjectionPushdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Projection(scale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Columnar.DecodedBytes)/1e6, "columnar-decoded-MB")
		b.ReportMetric(float64(res.Gob.DecodedBytes)/1e6, "gob-decoded-MB")
		b.ReportMetric(100*res.Columnar.PruningRatio, "pruned-%")
		b.ReportMetric(100*res.DecodeReduction(), "decode-reduction-%")
		b.ReportMetric(float64(res.Columnar.Wall.Milliseconds()), "columnar-census-ms")
		b.ReportMetric(float64(res.Gob.Wall.Milliseconds()), "gob-census-ms")
	}
}

// BenchmarkProjectionPlanner runs the three-mode planner ablation (manual
// ReadingFields view / planner-inferred effects / planner disabled) on a
// census plus a coordinate repartition. The headline metrics are the shuffle
// wire bytes: only the planner propagates the downstream Rebuilds demand
// backwards through the shuffle, so its map tasks encode two columns where
// the other modes put whole records on the wire. The run fails outright if
// the planner does not shuffle strictly fewer encoded bytes.
func BenchmarkProjectionPlanner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ProjectionPlanner(scale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Planner.WireBytes)/1e6, "planner-wire-MB")
		b.ReportMetric(float64(res.Manual.WireBytes)/1e6, "manual-wire-MB")
		b.ReportMetric(100*res.WireReduction(), "wire-reduction-%")
		b.ReportMetric(float64(res.Planner.CensusDecoded)/1e6, "planner-decoded-MB")
		b.ReportMetric(float64(res.Disabled.CensusDecoded)/1e6, "disabled-decoded-MB")
		b.ReportMetric(100*res.DecodeReduction(), "decode-reduction-%")
	}
}

// blockIOCodec is a string codec charging a size-proportional latency on
// both sides, modeling the disk/network transfer a shuffle block pays in a
// real deployment (Spark's shuffle always spills serialized blocks; see
// cluster.SparkOptions — perByte here plays the shared-FS bandwidth of
// Table 1). The latency is time.Sleep, not CPU, so it exposes exactly what
// push-based pipelining buys: work scheduled into wait time.
type blockIOCodec struct{ perByte time.Duration }

func (blockIOCodec) Name() string { return "block-io" }

func (c blockIOCodec) Marshal(items []string) ([]byte, error) {
	var buf bytes.Buffer
	for _, s := range items {
		fmt.Fprintf(&buf, "%d:", len(s))
		buf.WriteString(s)
	}
	time.Sleep(time.Duration(buf.Len()) * c.perByte)
	return buf.Bytes(), nil
}

func (c blockIOCodec) Unmarshal(block []byte) ([]string, error) {
	time.Sleep(time.Duration(len(block)) * c.perByte)
	var out []string
	for len(block) > 0 {
		sep := bytes.IndexByte(block, ':')
		if sep < 0 {
			return nil, fmt.Errorf("block-io: missing length separator")
		}
		n, err := strconv.Atoi(string(block[:sep]))
		if err != nil || len(block) < sep+1+n {
			return nil, fmt.Errorf("block-io: corrupt frame")
		}
		out = append(out, string(block[sep+1:sep+1+n]))
		block = block[sep+1+n:]
	}
	return out, nil
}

// BenchmarkShuffleMicro isolates the shuffle itself (the WGS ablation above
// is dominated by aligner CPU, burying the shuffle delta in run noise): a
// skewed dataset — one straggler map partition holding as much data as all
// the others combined — shuffled through a codec that charges a per-block
// I/O latency. Under the barrier, every worker idles until the straggler map
// finishes and reduce-side block fetches all queue after it; the pipelined
// execution decodes the already-pushed buckets during the straggler's
// in-flight blocks, so the fetch latency is hidden under map execution.
func BenchmarkShuffleMicro(b *testing.B) {
	const (
		workers    = 4
		small      = 7
		perSmall   = 400
		stragglerX = 10
		reduces    = 8
	)
	parts := make([][]string, small+1)
	next := 0
	fill := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = strings.Repeat("r", 200) + strconv.Itoa(next)
			next++
		}
		return out
	}
	for i := 0; i < small; i++ {
		parts[i] = fill(perSmall)
	}
	parts[small] = fill(stragglerX * perSmall)
	route := func(v string) int {
		h := 0
		for i := 0; i < len(v); i++ {
			h = h*31 + int(v[i])
		}
		return h
	}
	for _, barrier := range []bool{false, true} {
		name := "pipelined"
		if barrier {
			name = "barrier"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := engine.NewContext(workers)
				ctx.DisablePipelinedShuffle = barrier
				d := engine.WithCodec(engine.FromPartitions(ctx, parts), blockIOCodec{perByte: 120 * time.Nanosecond})
				out, err := engine.PartitionBy("micro", d, reduces, route)
				if err != nil {
					b.Fatal(err)
				}
				if n, err := engine.Count("n", out); err != nil || n != (small+stragglerX)*perSmall {
					b.Fatalf("count %d err %v", n, err)
				}
				b.ReportMetric(float64(ctx.Metrics().TotalFetchWait().Milliseconds()), "fetchwait-ms")
				b.ReportMetric(float64(ctx.Metrics().TotalPipelineOverlap().Milliseconds()), "overlap-ms")
			}
		})
	}
}

// BenchmarkAblationFastKernels flips the profile-driven hot kernels (scaled
// pair-HMM, banded alignment, table/word-parallel base ops) against their
// reference implementations on the full WGS pipeline. ns/op is the
// end-to-end wall; the call count is reported to make silent output drift
// visible (the experiments.Kernels runner additionally asserts VCF
// byte-identity between the two modes).
func BenchmarkAblationFastKernels(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		disable bool
	}{
		{"fast", false},
		{"reference", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := baseline.GPFOptions()
				opts.NoFastKernels = cfg.disable
				run, mk, _ := ablateRun(b, opts, scale().Workers)
				b.ReportMetric(mk, "sim-2048-min")
				b.ReportMetric(float64(run.NumCalls), "calls")
			}
		})
	}
}

// BenchmarkAblationDynamicRepartition flips §4.4's load balancing: without
// it, coverage hotspots stay in single partitions and the simulated
// straggler tail grows.
func BenchmarkAblationDynamicRepartition(b *testing.B) {
	for _, dyn := range []bool{true, false} {
		name := "dynamic"
		if !dyn {
			name = "static"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := baseline.GPFOptions()
				opts.DynamicRepartition = dyn
				mk, _ := ablate(b, opts)
				b.ReportMetric(mk, "sim-2048-min")
			}
		})
	}
}
