package vcf

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Read must never panic on arbitrary input.
func TestReadRobustness(t *testing.T) {
	f := func(data []byte) bool {
		_, _, err := Read(bytes.NewReader(data))
		_ = err
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReadAdversarial(t *testing.T) {
	cases := []string{
		"##contig=<>\n",
		"#CHROM\n",
		"chr1\t1\t.\tA\tG\t.\tPASS\t.\tGT\t0/1\n",
		"chr1\t1\t.\tA\tG\t10\tPASS\tEND=5;FOO\tGT:DP:XX\t0/1:3\n",
		"chr1\t1\t.\tA\t<NON_REF>\t10\tPASS\tEND=9\tGT:DP\t0/0:7\n",
	}
	for _, in := range cases {
		Read(bytes.NewReader([]byte(in)))
	}
}
