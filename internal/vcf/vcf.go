// Package vcf implements the VCF variant format: records, headers, text
// round-trip and truth-set comparison. VCF is the output format of the GPF
// Caller stage (§2.1); the paper's VCFBundle wraps datasets of these records.
package vcf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Genotype encodes a diploid call.
type Genotype int

// Diploid genotypes emitted by the caller.
const (
	HomRef Genotype = iota
	Het
	HomAlt
)

// String renders the genotype in VCF GT syntax.
func (g Genotype) String() string {
	switch g {
	case Het:
		return "0/1"
	case HomAlt:
		return "1/1"
	default:
		return "0/0"
	}
}

// ParseGenotype parses VCF GT syntax (both / and | separators).
func ParseGenotype(s string) (Genotype, error) {
	s = strings.ReplaceAll(s, "|", "/")
	switch s {
	case "0/0":
		return HomRef, nil
	case "0/1", "1/0":
		return Het, nil
	case "1/1":
		return HomAlt, nil
	default:
		return HomRef, fmt.Errorf("vcf: unsupported genotype %q", s)
	}
}

// Record is one variant call. Chrom is a contig name; Pos is 0-based
// internally (written 1-based). Qual is the Phred-scaled variant quality.
type Record struct {
	Chrom string
	Pos   int
	Ref   string
	Alt   string
	Qual  float64
	GT    Genotype
	Depth int
	Info  map[string]string
}

// IsSNV reports whether the record is a single-nucleotide variant.
func (r *Record) IsSNV() bool { return len(r.Ref) == 1 && len(r.Alt) == 1 }

// IsIndel reports whether the record is an insertion or deletion.
func (r *Record) IsIndel() bool { return len(r.Ref) != len(r.Alt) }

// Header is the VCF header: contig dictionary plus sample name. This mirrors
// VcfHeaderInfo in the paper's API (Fig 3).
type Header struct {
	Contigs []ContigInfo
	Sample  string
}

// ContigInfo is one ##contig entry.
type ContigInfo struct {
	Name   string
	Length int
}

// NewHeader builds a header from contig names/lengths.
func NewHeader(names []string, lengths []int, sample string) *Header {
	h := &Header{Sample: sample}
	for i, n := range names {
		length := 0
		if i < len(lengths) {
			length = lengths[i]
		}
		h.Contigs = append(h.Contigs, ContigInfo{Name: n, Length: length})
	}
	return h
}

// Write serializes header and records as VCF 4.2 text.
func Write(w io.Writer, h *Header, records []Record) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "##fileformat=VCFv4.2")
	fmt.Fprintln(bw, "##source=gpf-go")
	sample := "SAMPLE"
	if h != nil {
		if h.Sample != "" {
			sample = h.Sample
		}
		for _, c := range h.Contigs {
			fmt.Fprintf(bw, "##contig=<ID=%s,length=%d>\n", c.Name, c.Length)
		}
	}
	fmt.Fprintf(bw, "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\t%s\n", sample)
	for i := range records {
		r := &records[i]
		info := "."
		if len(r.Info) > 0 {
			keys := make([]string, 0, len(r.Info))
			for k := range r.Info {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys)+1)
			for _, k := range keys {
				parts = append(parts, k+"="+r.Info[k])
			}
			info = strings.Join(parts, ";")
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t.\t%s\t%s\t%.2f\tPASS\t%s\tGT:DP\t%s:%d\n",
			r.Chrom, r.Pos+1, r.Ref, r.Alt, r.Qual, info, r.GT, r.Depth); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses VCF text.
func Read(rd io.Reader) (*Header, []Record, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<24)
	h := &Header{}
	var records []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case line == "":
		case strings.HasPrefix(line, "##contig=<"):
			ci, err := parseContigLine(line)
			if err != nil {
				return nil, nil, fmt.Errorf("vcf: line %d: %w", lineNo, err)
			}
			h.Contigs = append(h.Contigs, ci)
		case strings.HasPrefix(line, "#CHROM"):
			fields := strings.Split(line, "\t")
			if len(fields) >= 10 {
				h.Sample = fields[9]
			}
		case strings.HasPrefix(line, "#"):
		default:
			rec, err := parseRecordLine(line)
			if err != nil {
				return nil, nil, fmt.Errorf("vcf: line %d: %w", lineNo, err)
			}
			records = append(records, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("vcf: scanning: %w", err)
	}
	return h, records, nil
}

func parseContigLine(line string) (ContigInfo, error) {
	body := strings.TrimSuffix(strings.TrimPrefix(line, "##contig=<"), ">")
	var ci ContigInfo
	for _, kv := range strings.Split(body, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			continue
		}
		switch parts[0] {
		case "ID":
			ci.Name = parts[1]
		case "length":
			n, err := strconv.Atoi(parts[1])
			if err != nil {
				return ci, fmt.Errorf("bad contig length %q", parts[1])
			}
			ci.Length = n
		}
	}
	if ci.Name == "" {
		return ci, fmt.Errorf("contig line without ID")
	}
	return ci, nil
}

func parseRecordLine(line string) (Record, error) {
	fields := strings.Split(line, "\t")
	if len(fields) < 8 {
		return Record{}, fmt.Errorf("only %d fields", len(fields))
	}
	pos, err := strconv.Atoi(fields[1])
	if err != nil {
		return Record{}, fmt.Errorf("bad pos %q", fields[1])
	}
	qual := 0.0
	if fields[5] != "." {
		qual, err = strconv.ParseFloat(fields[5], 64)
		if err != nil {
			return Record{}, fmt.Errorf("bad qual %q", fields[5])
		}
	}
	rec := Record{Chrom: fields[0], Pos: pos - 1, Ref: fields[3], Alt: fields[4], Qual: qual}
	if fields[7] != "." {
		rec.Info = map[string]string{}
		for _, kv := range strings.Split(fields[7], ";") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) == 2 {
				rec.Info[parts[0]] = parts[1]
			}
		}
	}
	if len(fields) >= 10 {
		fmtKeys := strings.Split(fields[8], ":")
		vals := strings.Split(fields[9], ":")
		for i, k := range fmtKeys {
			if i >= len(vals) {
				break
			}
			switch k {
			case "GT":
				gt, err := ParseGenotype(vals[i])
				if err != nil {
					return Record{}, err
				}
				rec.GT = gt
			case "DP":
				if n, err := strconv.Atoi(vals[i]); err == nil {
					rec.Depth = n
				}
			}
		}
	}
	return rec, nil
}

// SortRecords orders records by (chrom, pos, ref, alt).
func SortRecords(records []Record) {
	sort.Slice(records, func(i, j int) bool {
		a, b := &records[i], &records[j]
		if a.Chrom != b.Chrom {
			return a.Chrom < b.Chrom
		}
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		if a.Ref != b.Ref {
			return a.Ref < b.Ref
		}
		return a.Alt < b.Alt
	})
}

// CompareStats summarizes a call set against a truth set.
type CompareStats struct {
	TruePositive  int
	FalsePositive int
	FalseNegative int
}

// Precision returns TP / (TP + FP), or 0 when no calls exist.
func (s CompareStats) Precision() float64 {
	d := s.TruePositive + s.FalsePositive
	if d == 0 {
		return 0
	}
	return float64(s.TruePositive) / float64(d)
}

// Recall returns TP / (TP + FN), or 0 when the truth set is empty.
func (s CompareStats) Recall() float64 {
	d := s.TruePositive + s.FalseNegative
	if d == 0 {
		return 0
	}
	return float64(s.TruePositive) / float64(d)
}

// Compare matches called records against truth records keyed by
// (chrom, pos, ref, alt). posTolerance allows indel representation slack.
func Compare(calls, truth []Record, posTolerance int) CompareStats {
	type key struct {
		chrom    string
		ref, alt string
	}
	byKey := map[key][]int{}
	for _, tv := range truth {
		k := key{tv.Chrom, tv.Ref, tv.Alt}
		byKey[k] = append(byKey[k], tv.Pos)
	}
	for _, ps := range byKey {
		sort.Ints(ps)
	}
	matchedTruth := map[string]bool{}
	var stats CompareStats
	for _, c := range calls {
		k := key{c.Chrom, c.Ref, c.Alt}
		found := false
		for _, p := range byKey[k] {
			if abs(p-c.Pos) <= posTolerance {
				id := fmt.Sprintf("%s:%d:%s>%s", c.Chrom, p, c.Ref, c.Alt)
				if !matchedTruth[id] {
					matchedTruth[id] = true
					found = true
					break
				}
			}
		}
		if found {
			stats.TruePositive++
		} else {
			stats.FalsePositive++
		}
	}
	stats.FalseNegative = len(truth) - stats.TruePositive
	if stats.FalseNegative < 0 {
		stats.FalseNegative = 0
	}
	return stats
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
