package vcf

import (
	"bytes"
	"strings"
	"testing"
)

func TestGenotypeRoundTrip(t *testing.T) {
	for _, g := range []Genotype{HomRef, Het, HomAlt} {
		back, err := ParseGenotype(g.String())
		if err != nil {
			t.Fatal(err)
		}
		if back != g {
			t.Fatalf("round trip %v -> %v", g, back)
		}
	}
	if g, err := ParseGenotype("1|0"); err != nil || g != Het {
		t.Fatalf("phased het: %v %v", g, err)
	}
	if _, err := ParseGenotype("2/1"); err == nil {
		t.Fatal("multiallelic GT should error")
	}
}

func TestRecordClassifiers(t *testing.T) {
	snv := Record{Ref: "A", Alt: "T"}
	ins := Record{Ref: "A", Alt: "ATT"}
	del := Record{Ref: "ACC", Alt: "A"}
	if !snv.IsSNV() || snv.IsIndel() {
		t.Fatal("snv misclassified")
	}
	if ins.IsSNV() || !ins.IsIndel() {
		t.Fatal("ins misclassified")
	}
	if !del.IsIndel() {
		t.Fatal("del misclassified")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	h := NewHeader([]string{"chr1", "chr2"}, []int{1000, 500}, "NA12878")
	recs := []Record{
		{Chrom: "chr1", Pos: 99, Ref: "A", Alt: "G", Qual: 88.5, GT: Het, Depth: 30, Info: map[string]string{"AC": "1"}},
		{Chrom: "chr2", Pos: 4, Ref: "T", Alt: "TAA", Qual: 40, GT: HomAlt, Depth: 12},
	}
	var buf bytes.Buffer
	if err := Write(&buf, h, recs); err != nil {
		t.Fatal(err)
	}
	h2, recs2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Sample != "NA12878" {
		t.Fatalf("sample = %q", h2.Sample)
	}
	if len(h2.Contigs) != 2 || h2.Contigs[1].Length != 500 {
		t.Fatalf("contigs = %+v", h2.Contigs)
	}
	if len(recs2) != 2 {
		t.Fatalf("records = %d", len(recs2))
	}
	a := recs2[0]
	if a.Chrom != "chr1" || a.Pos != 99 || a.Ref != "A" || a.Alt != "G" || a.GT != Het || a.Depth != 30 {
		t.Fatalf("record 0 = %+v", a)
	}
	if a.Info["AC"] != "1" {
		t.Fatalf("info lost: %v", a.Info)
	}
	if recs2[1].GT != HomAlt {
		t.Fatalf("record 1 GT = %v", recs2[1].GT)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"short":      "chr1\t100\n",
		"bad pos":    "chr1\tx\t.\tA\tG\t10\tPASS\t.\n",
		"bad qual":   "chr1\t100\t.\tA\tG\tq\tPASS\t.\n",
		"bad contig": "##contig=<length=5>\n",
	}
	for name, in := range cases {
		if _, _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestSortRecords(t *testing.T) {
	recs := []Record{
		{Chrom: "chr2", Pos: 5},
		{Chrom: "chr1", Pos: 10},
		{Chrom: "chr1", Pos: 2},
	}
	SortRecords(recs)
	if recs[0].Pos != 2 || recs[1].Pos != 10 || recs[2].Chrom != "chr2" {
		t.Fatalf("sorted: %+v", recs)
	}
}

func TestCompare(t *testing.T) {
	truth := []Record{
		{Chrom: "chr1", Pos: 100, Ref: "A", Alt: "G"},
		{Chrom: "chr1", Pos: 200, Ref: "C", Alt: "CAT"},
		{Chrom: "chr2", Pos: 50, Ref: "T", Alt: "A"},
	}
	calls := []Record{
		{Chrom: "chr1", Pos: 100, Ref: "A", Alt: "G"},   // exact TP
		{Chrom: "chr1", Pos: 202, Ref: "C", Alt: "CAT"}, // TP within tolerance
		{Chrom: "chr2", Pos: 90, Ref: "G", Alt: "C"},    // FP
	}
	s := Compare(calls, truth, 3)
	if s.TruePositive != 2 || s.FalsePositive != 1 || s.FalseNegative != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if p := s.Precision(); p < 0.66 || p > 0.67 {
		t.Fatalf("precision = %v", p)
	}
	if r := s.Recall(); r < 0.66 || r > 0.67 {
		t.Fatalf("recall = %v", r)
	}
}

func TestCompareNoDoubleCount(t *testing.T) {
	truth := []Record{{Chrom: "chr1", Pos: 100, Ref: "A", Alt: "G"}}
	calls := []Record{
		{Chrom: "chr1", Pos: 100, Ref: "A", Alt: "G"},
		{Chrom: "chr1", Pos: 100, Ref: "A", Alt: "G"},
	}
	s := Compare(calls, truth, 0)
	if s.TruePositive != 1 || s.FalsePositive != 1 {
		t.Fatalf("duplicate call double-counted: %+v", s)
	}
}

func TestCompareEmpty(t *testing.T) {
	s := Compare(nil, nil, 0)
	if s.Precision() != 0 || s.Recall() != 0 {
		t.Fatal("empty compare should yield zeros")
	}
}
