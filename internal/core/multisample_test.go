package core

import (
	"errors"
	"strings"
	"testing"

	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/fastq"
	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/workload"
)

func TestMultiSampleWGS(t *testing.T) {
	// Two samples over one reference, distinct donors.
	p := workload.DefaultProfile(workload.WGS, 30000)
	p.Coverage = 8
	batch := workload.MultiSample(p, 2, 950)
	rt := NewRuntime(engine.NewContext(2), batch[0].Ref)
	rt.PartitionLen = 5000
	rt.Known = batch[0].Known

	var samples []SampleInput
	for _, d := range batch {
		samples = append(samples, SampleInput{Name: d.Name, Pairs: PairsToRDD(rt, d.Pairs, 4)})
	}
	multi, err := BuildMultiSampleWGS(rt, samples, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := multi.Pipeline.Run(); err != nil {
		t.Fatal(err)
	}
	if len(multi.VCFs) != 2 {
		t.Fatalf("VCFs = %d", len(multi.VCFs))
	}
	// Both samples produce calls, and the calls differ (different donors).
	callsA, err := CollectVCF(rt, multi.VCFs[0])
	if err != nil {
		t.Fatal(err)
	}
	callsB, err := CollectVCF(rt, multi.VCFs[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(callsA) == 0 || len(callsB) == 0 {
		t.Fatalf("sample calls: %d / %d", len(callsA), len(callsB))
	}
	same := 0
	for _, a := range callsA {
		for _, b := range callsB {
			if a.Chrom == b.Chrom && a.Pos == b.Pos && a.Alt == b.Alt {
				same++
			}
		}
	}
	if same == len(callsA) && same == len(callsB) {
		t.Fatal("both samples produced identical call sets; donors should differ")
	}
	// One shared census: exactly one ReadRepartitioner in the order, after
	// every MarkDuplicate and before every IndelRealign.
	order := multi.Pipeline.ExecutionOrder()
	repIdx := -1
	for i, n := range order {
		if n == "ReadRepartitioner" {
			if repIdx != -1 {
				t.Fatal("repartitioner ran twice")
			}
			repIdx = i
		}
	}
	if repIdx == -1 {
		t.Fatal("repartitioner missing")
	}
	for i, n := range order {
		if strings.Contains(n, "MarkDuplicate") && i > repIdx {
			t.Fatalf("MarkDuplicate %q after the census", n)
		}
		if strings.Contains(n, "IndelRealign") && i < repIdx {
			t.Fatalf("IndelRealign %q before the census", n)
		}
	}
}

func TestMultiSampleWGSEmpty(t *testing.T) {
	ref := genome.Synthesize(genome.DefaultSynthConfig(1, 1000, 1))
	rt := NewRuntime(engine.NewContext(1), ref)
	if _, err := BuildMultiSampleWGS(rt, nil, false); err == nil {
		t.Fatal("no samples must error")
	}
}

func TestMultiSampleDefaultNames(t *testing.T) {
	ref := genome.Synthesize(genome.DefaultSynthConfig(1, 2000, 1))
	rt := NewRuntime(engine.NewContext(1), ref)
	multi, err := BuildMultiSampleWGS(rt, []SampleInput{
		{Pairs: PairsToRDD(rt, []fastq.Pair{}, 1)},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Names[0] != "sample1" {
		t.Fatalf("default name = %q", multi.Names[0])
	}
}

func TestPipelineProcessFailurePropagates(t *testing.T) {
	rt := testRuntime(t, 1)
	var ran []string
	src := DefinedFASTQPair("src", nil)
	mid := UndefinedSAM("mid", nil)
	end := UndefinedSAM("end", nil)
	failing := newStub("boom", &ran, []Resource{src}, []Resource{mid})
	failing.fail = errors.New("executor lost")
	p := NewPipeline("fail", rt)
	p.AddProcess(failing)
	p.AddProcess(newStub("after", &ran, []Resource{mid}, []Resource{end}))
	err := p.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
	// The dependent process must not have run.
	for _, n := range ran {
		if n == "after" {
			t.Fatal("dependent process ran despite failure")
		}
	}
	// The failing process's output must stay undefined.
	if mid.State() == Defined {
		t.Fatal("failed process output marked defined")
	}
}
