package core

import (
	"testing"

	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/sam"
)

// sortedPipeline aligns reads and runs the explicit sort + index Processes.
func sortedPipeline(t *testing.T) (*Runtime, *SAMBundle, *SAMIndex) {
	t.Helper()
	rt := testRuntime(t, 2)
	pairs := simPairs(t, rt, 8)
	fq := DefinedFASTQPair("f", PairsToRDD(rt, pairs, 4))
	aligned := UndefinedSAM("aligned", unsortedHeader(rt))
	sorted := UndefinedSAM("sorted", nil)
	index := UndefinedSAMIndex("index")
	p := NewPipeline("sortindex", rt)
	p.AddProcess(NewBwaMemProcess("bwa", fq, aligned))
	p.AddProcess(NewCoordinateSortProcess("sort", aligned, sorted))
	p.AddProcess(NewIndexProcess("index", sorted, index))
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	return rt, sorted, index
}

func TestCoordinateSortGlobalOrder(t *testing.T) {
	rt, sorted, _ := sortedPipeline(t)
	recs, err := engine.Collect("all", sorted.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	for i := 1; i < len(recs); i++ {
		if sam.CoordinateLess(&recs[i], &recs[i-1]) {
			t.Fatalf("records %d/%d out of genome order: %d:%d after %d:%d",
				i-1, i, recs[i].RefID, recs[i].Pos, recs[i-1].RefID, recs[i-1].Pos)
		}
	}
	if sorted.Header == nil || sorted.Header.Sort != sam.Coordinate {
		t.Fatal("header sort order not updated")
	}
	_ = rt
}

func TestIndexSpansAndQuery(t *testing.T) {
	rt, sorted, index := sortedPipeline(t)
	if len(index.Entries) == 0 {
		t.Fatal("no index entries")
	}
	// Every mapped record is found by querying its own position.
	recs, err := engine.Collect("all", sorted.Data)
	if err != nil {
		t.Fatal(err)
	}
	var probe *sam.Record
	for i := range recs {
		if !recs[i].Unmapped() {
			probe = &recs[i]
			break
		}
	}
	if probe == nil {
		t.Fatal("no mapped records")
	}
	iv := genome.Interval{Contig: int(probe.RefID), Start: int(probe.Pos), End: int(probe.Pos) + 1}
	hits, err := index.Query(rt, iv)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range hits {
		if hits[i].Name == probe.Name && hits[i].Pos == probe.Pos {
			found = true
		}
		// Every hit must overlap the query.
		if int(hits[i].Pos) >= iv.End || int(hits[i].End()) <= iv.Start {
			t.Fatalf("hit %s at %d does not overlap query", hits[i].Name, hits[i].Pos)
		}
	}
	if !found {
		t.Fatal("probe record not returned by its own query")
	}
	// Queries beyond the genome return nothing.
	empty, err := index.Query(rt, genome.Interval{Contig: 99, Start: 0, End: 100})
	if err != nil || empty != nil {
		t.Fatalf("off-genome query = %v, %v", empty, err)
	}
}

func TestIndexQueryBeforeBuild(t *testing.T) {
	rt := testRuntime(t, 1)
	ix := UndefinedSAMIndex("ix")
	if _, err := ix.Query(rt, genome.Interval{}); err == nil {
		t.Fatal("querying an unbuilt index must error")
	}
}

func TestIndexCountsAllRecords(t *testing.T) {
	_, sorted, index := sortedPipeline(t)
	total := 0
	for _, e := range index.Entries {
		total += e.Records
	}
	n, err := engine.Count("n", sorted.Data)
	if err != nil {
		t.Fatal(err)
	}
	if total != n {
		t.Fatalf("index records %d != dataset %d", total, n)
	}
}
