package core

import (
	"io"

	"github.com/gpf-go/gpf/internal/compress"
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/fastq"
)

// FileLoader mirrors the paper's FileLoader API (Fig 3): it turns genomic
// files into engine datasets.

// LoadFastqPairToRDD reads two mate FASTQ streams and distributes the pairs
// over numPartitions, attaching the GPF pair codec when the runtime uses
// genomic compression.
func LoadFastqPairToRDD(rt *Runtime, r1, r2 io.Reader, numPartitions int) (*engine.Dataset[fastq.Pair], error) {
	pairs, err := fastq.ReadPairs(r1, r2)
	if err != nil {
		return nil, err
	}
	return PairsToRDD(rt, pairs, numPartitions), nil
}

// PairsToRDD distributes in-memory pairs over numPartitions with the
// configured codec — the entry point for simulated datasets.
func PairsToRDD(rt *Runtime, pairs []fastq.Pair, numPartitions int) *engine.Dataset[fastq.Pair] {
	ds := engine.Parallelize(rt.Engine, pairs, numPartitions)
	switch rt.Codec {
	case TierGPF:
		return engine.WithCodec[fastq.Pair](ds, compress.GPFPairCodec{})
	case TierField:
		return engine.WithCodec[fastq.Pair](ds, compress.FieldPairCodec{})
	default:
		return ds
	}
}
