// Package core implements the GPF programming model — the paper's primary
// contribution. Users describe a genomic pipeline as Processes connected by
// Resources (§3.1, Fig 2); the Pipeline driver performs the Process-level
// dependency analysis of Algorithm 1, applies the redundancy-elimination
// rewrite of Fig 7 (fusing chains of partition Processes so FASTA/VCF
// re-partitioning and join shuffles happen once), and executes everything on
// the in-memory engine. Dynamic load balance follows §4.4: a
// RepartitionInfoProducer builds the PartitionInfo structure (Figs 8-9) that
// maps genomic positions to partition IDs, splitting overloaded partitions.
package core

import (
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/fastq"
	"github.com/gpf-go/gpf/internal/sam"
	"github.com/gpf-go/gpf/internal/vcf"
)

// ResourceState is the two-state machine of Fig 2.
type ResourceState int

// Resource states: a Resource is Undefined until some Process (or the user)
// fills it, after which dependent Processes become ready.
const (
	Undefined ResourceState = iota
	Defined
)

// Resource is the abstraction of data flowing between Processes: named,
// stateful, filled exactly once.
type Resource interface {
	ResourceName() string
	State() ResourceState
	setDefined()
}

// baseResource implements the shared Resource mechanics; concrete bundles
// embed it.
type baseResource struct {
	name  string
	state ResourceState
}

// ResourceName returns the user-assigned resource name.
func (r *baseResource) ResourceName() string { return r.name }

// State returns Defined once the resource content has been filled.
func (r *baseResource) State() ResourceState { return r.state }

func (r *baseResource) setDefined() { r.state = Defined }

// FASTQPairBundle is a Resource holding paired-end reads.
type FASTQPairBundle struct {
	baseResource
	Data *engine.Dataset[fastq.Pair]
}

// DefinedFASTQPair creates an already-filled FASTQ pair bundle (the
// FASTQPairBundle.defined of Fig 3).
func DefinedFASTQPair(name string, data *engine.Dataset[fastq.Pair]) *FASTQPairBundle {
	b := &FASTQPairBundle{baseResource: baseResource{name: name, state: Defined}, Data: data}
	return b
}

// SAMBundle is a Resource holding alignments. It carries either the flat
// record dataset, the position-partitioned bundle dataset built by a
// partition Process (the Fig 7b fused form), or both.
type SAMBundle struct {
	baseResource
	Header  *sam.Header
	Data    *engine.Dataset[sam.Record]
	Bundled *engine.Dataset[Bundle]
	// Info is the PartitionInfo the bundled form was built with.
	Info *PartitionInfo
}

// UndefinedSAM creates an empty SAM bundle to be filled by a Process (the
// SAMBundle.undefined of Fig 3).
func UndefinedSAM(name string, header *sam.Header) *SAMBundle {
	return &SAMBundle{baseResource: baseResource{name: name}, Header: header}
}

// DefinedSAM creates an already-filled SAM bundle.
func DefinedSAM(name string, header *sam.Header, data *engine.Dataset[sam.Record]) *SAMBundle {
	return &SAMBundle{baseResource: baseResource{name: name, state: Defined}, Header: header, Data: data}
}

// VCFBundle is a Resource holding variant calls.
type VCFBundle struct {
	baseResource
	Header *vcf.Header
	Data   *engine.Dataset[vcf.Record]
}

// UndefinedVCF creates an empty VCF bundle to be filled by a Process.
func UndefinedVCF(name string, header *vcf.Header) *VCFBundle {
	return &VCFBundle{baseResource: baseResource{name: name}, Header: header}
}

// PartitionInfoBundle is a Resource holding the dynamic partition map.
type PartitionInfoBundle struct {
	baseResource
	Info *PartitionInfo
}

// UndefinedPartitionInfo creates an empty PartitionInfo bundle.
func UndefinedPartitionInfo(name string) *PartitionInfoBundle {
	return &PartitionInfoBundle{baseResource: baseResource{name: name}}
}
