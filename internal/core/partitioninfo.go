package core

import (
	"fmt"
	"sort"

	"github.com/gpf-go/gpf/internal/genome"
)

// PartitionInfo maps genomic positions to partition IDs (§4.4, Figs 8-9).
// The base mapping divides every contig into fixed-length segments; the
// split table refines overloaded partitions into smaller ones, renumbering
// the final ID space densely.
type PartitionInfo struct {
	// PartitionLen is the bases per base-level partition (paper: 1,000,000).
	PartitionLen int
	// CountPerContig is the number of base partitions in each contig
	// (Fig 8's "number of partitions contained in each contig").
	CountPerContig []int
	// StartID is the first base partition number of each contig (Fig 8's
	// "starting number of the partition contained in each contig").
	StartID []int
	// contigLens retains contig lengths for interval reconstruction.
	contigLens []int

	// splitCount[p] is how many final partitions base partition p maps to
	// (1 when unsplit). finalStart[p] is the first final ID of p, i.e. the
	// partition split table of Fig 9.
	splitCount []int
	finalStart []int
	total      int
}

// NewPartitionInfo builds the base mapping for the given contig lengths.
func NewPartitionInfo(contigLens []int, partitionLen int) (*PartitionInfo, error) {
	if partitionLen <= 0 {
		return nil, fmt.Errorf("core: partition length must be positive")
	}
	pi := &PartitionInfo{
		PartitionLen:   partitionLen,
		CountPerContig: make([]int, len(contigLens)),
		StartID:        make([]int, len(contigLens)),
		contigLens:     append([]int(nil), contigLens...),
	}
	id := 0
	for i, l := range contigLens {
		if l < 0 {
			return nil, fmt.Errorf("core: negative contig length %d", l)
		}
		n := (l + partitionLen - 1) / partitionLen
		if n == 0 {
			n = 1
		}
		pi.StartID[i] = id
		pi.CountPerContig[i] = n
		id += n
	}
	pi.splitCount = make([]int, id)
	pi.finalStart = make([]int, id)
	for p := range pi.splitCount {
		pi.splitCount[p] = 1
	}
	pi.renumber()
	return pi, nil
}

// renumber rebuilds the final ID space from the split counts.
func (pi *PartitionInfo) renumber() {
	id := 0
	for p := range pi.splitCount {
		pi.finalStart[p] = id
		id += pi.splitCount[p]
	}
	pi.total = id
}

// BaseID returns the base (pre-split) partition ID of a position, exactly
// the Fig 8 computation: segment base address + offset/partitionLen.
func (pi *PartitionInfo) BaseID(contig, pos int) int {
	if contig < 0 || contig >= len(pi.StartID) {
		return -1
	}
	if pos < 0 {
		pos = 0
	}
	off := pos / pi.PartitionLen
	if off >= pi.CountPerContig[contig] {
		off = pi.CountPerContig[contig] - 1
	}
	return pi.StartID[contig] + off
}

// Split registers that base partition p is divided into count final
// partitions (Fig 9's split table) and renumbers the final ID space.
func (pi *PartitionInfo) Split(p, count int) error {
	if p < 0 || p >= len(pi.splitCount) {
		return fmt.Errorf("core: split of unknown partition %d", p)
	}
	if count < 1 {
		return fmt.Errorf("core: split count %d must be >= 1", count)
	}
	pi.splitCount[p] = count
	pi.renumber()
	return nil
}

// FinalID maps a position to its final partition ID through the split table,
// exactly the Fig 9 computation.
func (pi *PartitionInfo) FinalID(contig, pos int) int {
	p := pi.BaseID(contig, pos)
	if p < 0 {
		return -1
	}
	count := pi.splitCount[p]
	if count == 1 {
		return pi.finalStart[p]
	}
	splitLen := pi.PartitionLen / count
	if splitLen == 0 {
		splitLen = 1
	}
	offsetInPartition := pos % pi.PartitionLen
	idx := offsetInPartition / splitLen
	if idx >= count {
		idx = count - 1
	}
	return pi.finalStart[p] + idx
}

// NumPartitions returns the total number of final partitions.
func (pi *PartitionInfo) NumPartitions() int { return pi.total }

// NumBasePartitions returns the number of pre-split partitions.
func (pi *PartitionInfo) NumBasePartitions() int { return len(pi.splitCount) }

// Interval reconstructs the genomic interval of a final partition ID. The
// second result is false for out-of-range IDs.
func (pi *PartitionInfo) Interval(finalID int) (genome.Interval, bool) {
	if finalID < 0 || finalID >= pi.total {
		return genome.Interval{}, false
	}
	// Locate the base partition via binary search on finalStart.
	p := sort.Search(len(pi.finalStart), func(i int) bool { return pi.finalStart[i] > finalID }) - 1
	if p < 0 {
		return genome.Interval{}, false
	}
	// Locate the contig via binary search on StartID.
	c := sort.Search(len(pi.StartID), func(i int) bool { return pi.StartID[i] > p }) - 1
	if c < 0 {
		return genome.Interval{}, false
	}
	baseStart := (p - pi.StartID[c]) * pi.PartitionLen
	count := pi.splitCount[p]
	splitLen := pi.PartitionLen / count
	if splitLen == 0 {
		splitLen = 1
	}
	idx := finalID - pi.finalStart[p]
	start := baseStart + idx*splitLen
	end := start + splitLen
	if idx == count-1 {
		end = baseStart + pi.PartitionLen
	}
	if end > pi.contigLens[c] {
		end = pi.contigLens[c]
	}
	if start > end {
		start = end
	}
	return genome.Interval{Contig: c, Start: start, End: end}, true
}
