package core

import (
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/fastq"
	"github.com/gpf-go/gpf/internal/sam"
	"github.com/gpf-go/gpf/internal/vcf"
)

// WGSPipeline bundles the constructed pipeline with handles to its terminal
// resources, so callers can collect results after Run.
type WGSPipeline struct {
	Pipeline  *Pipeline
	Aligned   *SAMBundle
	Deduped   *SAMBundle
	Realigned *SAMBundle
	Recaled   *SAMBundle
	VCF       *VCFBundle
}

// BuildWGSPipeline assembles the paper's example pipeline (Fig 3):
// BWA-MEM alignment, duplicate marking, dynamic repartitioning, indel
// realignment, base recalibration, and haplotype calling.
func BuildWGSPipeline(rt *Runtime, pairs *engine.Dataset[fastq.Pair], useGVCF bool) *WGSPipeline {
	pipeline := NewPipeline("wgs", rt)

	fastqBundle := DefinedFASTQPair("fastqPair", pairs)
	aligned := UndefinedSAM("alignedSam", unsortedHeader(rt))
	pipeline.AddProcess(NewBwaMemProcess("BwaMapping", fastqBundle, aligned))

	deduped := UndefinedSAM("dedupedSam", nil)
	pipeline.AddProcess(NewMarkDuplicateProcess("MarkDuplicate", aligned, deduped))

	partInfo := UndefinedPartitionInfo("partitionInfo")
	pipeline.AddProcess(NewReadRepartitionerProcess("ReadRepartitioner", []*SAMBundle{deduped}, partInfo))

	realigned := UndefinedSAM("realignedSam", nil)
	pipeline.AddProcess(NewIndelRealignProcess("IndelRealign", partInfo, deduped, realigned))

	recaled := UndefinedSAM("recaledSam", nil)
	pipeline.AddProcess(NewBaseRecalibrationProcess("BaseRecalibration", partInfo, realigned, recaled))

	result := UndefinedVCF("ResultVCF", vcf.NewHeader(refNames(rt), rt.Ref.Lengths(), "sample"))
	pipeline.AddProcess(NewHaplotypeCallerProcess("HaplotypeCaller", partInfo, recaled, result, useGVCF))

	return &WGSPipeline{
		Pipeline:  pipeline,
		Aligned:   aligned,
		Deduped:   deduped,
		Realigned: realigned,
		Recaled:   recaled,
		VCF:       result,
	}
}

func unsortedHeader(rt *Runtime) *sam.Header {
	h, _ := sam.NewHeader(sam.Unsorted, refNames(rt), rt.Ref.Lengths())
	return h
}
