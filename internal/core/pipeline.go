package core

import (
	"fmt"

	"github.com/gpf-go/gpf/internal/align"
	"github.com/gpf-go/gpf/internal/caller"
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/kernels"
	"github.com/gpf-go/gpf/internal/vcf"
)

// ProcessState is the three-state machine of Fig 2.
type ProcessState int

// Process states: Blocked until all input Resources are defined, Ready when
// schedulable, Running while executing; End is implicit on return.
const (
	Blocked ProcessState = iota
	Ready
	Running
	End
)

// Process is an execution instance of the pipeline: named, with declared
// input and output Resources and a body run by the scheduler.
type Process interface {
	ProcessName() string
	Inputs() []Resource
	Outputs() []Resource
	Run(rt *Runtime) error
}

// partitionProcess marks Processes that operate on position-partitioned
// bundle data (Fig 7's "partition Process"); chains of these are candidates
// for redundancy elimination.
type partitionProcess interface {
	Process
	// samInput returns the SAM resource whose bundled form the process can
	// reuse; samOutput the SAM resource it fills.
	samInput() *SAMBundle
	// setUseBundle tells the process the optimizer fused it with its
	// predecessor: consume the input's bundled dataset directly.
	setUseBundle(bool)
}

// Runtime carries the shared execution state handed to Processes.
type Runtime struct {
	Engine *engine.Context
	Ref    *genome.Reference
	// Known is the known-variant database (the dbsnp_138 role).
	Known []vcf.Record
	// NumPartitions is the default parallelism for flat shuffles.
	NumPartitions int
	// PartitionLen is the PartitionInfo segment length.
	PartitionLen int
	// Codec selects the serializer tier for dataset/shuffle serialization:
	// the genomic GPF codec, the fast field codec (Kryo-like), or the
	// generic gob codec (Java-serialization-like). Baseline pipelines use
	// the lower tiers.
	Codec CodecTier
	// SplitThresholdFactor: partitions holding more than factor × mean reads
	// are split by the repartitioner (§4.4 step 3).
	SplitThresholdFactor float64
	// AlignerConfig tunes the BWA-MEM-like aligner.
	AlignerConfig align.Config
	// CallerConfig tunes the HaplotypeCaller-like caller.
	CallerConfig caller.Config

	index *align.FMIndex
}

// NewRuntime builds a Runtime with defaults sized for the engine context.
func NewRuntime(eng *engine.Context, ref *genome.Reference) *Runtime {
	return &Runtime{
		Engine:               eng,
		Ref:                  ref,
		NumPartitions:        eng.Workers() * 4,
		PartitionLen:         1_000_000,
		Codec:                TierGPF,
		SplitThresholdFactor: 2.0,
		AlignerConfig:        align.DefaultConfig(),
		CallerConfig:         caller.DefaultConfig(),
	}
}

// Index returns the FM-index over the reference, building it on first use.
func (rt *Runtime) Index() (*align.FMIndex, error) {
	if rt.index == nil {
		idx, err := align.BuildFMIndex(rt.Ref)
		if err != nil {
			return nil, err
		}
		rt.index = idx
	}
	return rt.index, nil
}

// Pipeline is the runtime-system driver (Table 2): Processes are added one
// by one to form a dynamic DAG; Run analyzes dependencies, applies the
// redundancy-elimination rewrite, and executes Processes as their inputs
// become defined.
type Pipeline struct {
	Name string
	rt   *Runtime
	// Optimize enables Process-level redundancy elimination (§4.3); the
	// Table 4 experiment flips it.
	Optimize  bool
	processes []Process
	executed  []string
}

// NewPipeline constructs a pipeline bound to a runtime.
func NewPipeline(name string, rt *Runtime) *Pipeline {
	return &Pipeline{Name: name, rt: rt, Optimize: true}
}

// AddProcess appends a Process to the DAG under construction.
func (p *Pipeline) AddProcess(proc Process) {
	p.processes = append(p.processes, proc)
}

// ExecutionOrder returns the names of executed processes after Run.
func (p *Pipeline) ExecutionOrder() []string { return p.executed }

// Run executes the pipeline: Algorithm 1's resource-pool scheduling, with
// the Fig 7 rewrite applied first when Optimize is set.
func (p *Pipeline) Run() error {
	// The hot-kernel ablation is a process-wide switch (the kernels live in
	// leaf packages below the engine); sync it from the context flag so
	// Engine.DisableFastKernels behaves like the other per-context ablations
	// for pipeline runs.
	kernels.SetEnabled(!p.rt.Engine.DisableFastKernels)

	if p.Optimize {
		p.fusePartitionChains()
	} else {
		for _, proc := range p.processes {
			if pp, ok := proc.(partitionProcess); ok {
				pp.setUseBundle(false)
			}
		}
	}

	// Algorithm 1: pool of defined resources, iterate until all processes
	// have run or no progress is possible (circular dependency).
	unfinished := make([]Process, len(p.processes))
	copy(unfinished, p.processes)
	defined := func(r Resource) bool { return r.State() == Defined }
	for len(unfinished) > 0 {
		var runnable []Process
		var blocked []Process
		for _, proc := range unfinished {
			ready := true
			for _, in := range proc.Inputs() {
				if !defined(in) {
					ready = false
					break
				}
			}
			if ready {
				runnable = append(runnable, proc)
			} else {
				blocked = append(blocked, proc)
			}
		}
		if len(runnable) == 0 {
			names := make([]string, len(blocked))
			for i, proc := range blocked {
				names[i] = proc.ProcessName()
			}
			return fmt.Errorf("core: circular dependency among processes %v", names)
		}
		for _, proc := range runnable {
			if err := proc.Run(p.rt); err != nil {
				return fmt.Errorf("core: process %s: %w", proc.ProcessName(), err)
			}
			for _, out := range proc.Outputs() {
				out.setDefined()
			}
			p.executed = append(p.executed, proc.ProcessName())
		}
		unfinished = blocked
	}
	return nil
}

// fusePartitionChains implements the Fig 7 rewrite: walk the process list
// and mark a partition Process as bundle-consuming when its SAM input is
// produced by another partition Process whose output feeds only this one
// (interior in/out degree 1 along the chain).
func (p *Pipeline) fusePartitionChains() {
	// Count consumers of each resource and record producers.
	consumers := map[Resource]int{}
	producer := map[Resource]Process{}
	for _, proc := range p.processes {
		for _, in := range proc.Inputs() {
			consumers[in]++
		}
		for _, out := range proc.Outputs() {
			producer[out] = proc
		}
	}
	for _, proc := range p.processes {
		pp, ok := proc.(partitionProcess)
		if !ok {
			continue
		}
		in := pp.samInput()
		if in == nil {
			pp.setUseBundle(false)
			continue
		}
		prev, ok := producer[Resource(in)].(partitionProcess)
		if !ok || prev == nil {
			pp.setUseBundle(false)
			continue
		}
		// The producer's output must feed exactly this process (out-degree 1
		// of the chain edge); shared outputs force the flat form.
		if consumers[Resource(in)] != 1 {
			pp.setUseBundle(false)
			continue
		}
		pp.setUseBundle(true)
	}
}
