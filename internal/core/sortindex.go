package core

import (
	"fmt"
	"sort"

	"github.com/gpf-go/gpf/internal/colfmt"
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/sam"
)

// Fig 1's Cleaner stage begins with "Sort, Index, MarkDuplicate". The
// MarkDuplicateProcess sorts within its groups; these Processes provide the
// explicit coordinate sort and the genomic index when a pipeline needs
// globally sorted output or region queries (samtools sort/index equivalents).

// CoordinateSortProcess produces a globally coordinate-sorted SAM bundle:
// records are shuffled to position-ordered partitions and sorted within
// each, so concatenating partitions yields genome order.
type CoordinateSortProcess struct {
	baseProcess
	in, out *SAMBundle
}

// NewCoordinateSortProcess constructs the sort process.
func NewCoordinateSortProcess(name string, in, out *SAMBundle) *CoordinateSortProcess {
	return &CoordinateSortProcess{
		baseProcess: baseProcess{name: name, inputs: []Resource{in}, outputs: []Resource{out}},
		in:          in, out: out,
	}
}

// Run shuffles by base partition ID (monotone in genome position) and sorts
// each partition.
func (p *CoordinateSortProcess) Run(rt *Runtime) error {
	flat, err := p.in.EnsureFlat(rt)
	if err != nil {
		return err
	}
	info, err := NewPartitionInfo(rt.Ref.Lengths(), rt.PartitionLen)
	if err != nil {
		return err
	}
	n := info.NumPartitions() + 1 // final slot collects unmapped reads
	parted, err := engine.PartitionBy(p.name+"/partition",
		engine.WithCodec(flat, rt.samCodec()), n,
		func(r sam.Record) int {
			if r.RefID < 0 {
				return n - 1
			}
			return info.BaseID(int(r.RefID), int(r.Pos))
		},
		// Routing reads only the coordinates; records pass through whole.
		engine.ReadsOnly(colfmt.FieldCoord))
	if err != nil {
		return err
	}
	sorted, err := engine.SortPartitions(p.name+"/sort", parted, func(a, b sam.Record) bool {
		return sam.CoordinateLess(&a, &b)
	},
		// CoordinateLess orders by RefID/Pos, strand (a flag bit) and name.
		engine.ReadsOnly(colfmt.FieldCoord|colfmt.FieldFlag|colfmt.FieldName))
	if err != nil {
		return err
	}
	sorted.Retain() // later stages (index, writer) consume the published sort
	p.out.Data = sorted
	if p.out.Header == nil && p.in.Header != nil {
		p.out.Header = p.in.Header.Clone(sam.Coordinate)
	}
	return nil
}

// IndexEntry describes one partition of a sorted SAM dataset: its genomic
// span and record count — the linear-index role of a BAM .bai file.
type IndexEntry struct {
	Partition int
	Contig    int32 // -1 for the unmapped slot
	Start     int32
	End       int32 // exclusive alignment end bound
	Records   int
}

// SAMIndex is the Resource produced by IndexProcess: per-partition genomic
// spans over a coordinate-sorted bundle, supporting region queries without
// scanning unrelated partitions.
type SAMIndex struct {
	baseResource
	Entries []IndexEntry
	source  *SAMBundle
}

// UndefinedSAMIndex creates an empty index resource.
func UndefinedSAMIndex(name string) *SAMIndex {
	return &SAMIndex{baseResource: baseResource{name: name}}
}

// IndexProcess builds a SAMIndex over a coordinate-sorted bundle.
type IndexProcess struct {
	baseProcess
	in  *SAMBundle
	out *SAMIndex
}

// NewIndexProcess constructs the index process.
func NewIndexProcess(name string, in *SAMBundle, out *SAMIndex) *IndexProcess {
	return &IndexProcess{
		baseProcess: baseProcess{name: name, inputs: []Resource{in}, outputs: []Resource{out}},
		in:          in, out: out,
	}
}

// Run summarizes each partition's genomic span.
func (p *IndexProcess) Run(rt *Runtime) error {
	flat, err := p.in.EnsureFlat(rt)
	if err != nil {
		return err
	}
	summaries, err := engine.MapPartitions(p.name+"/summarize", flat, nil,
		func(part int, recs []sam.Record) ([]IndexEntry, error) {
			e := IndexEntry{Partition: part, Contig: -1, Start: -1, End: -1, Records: len(recs)}
			for i := range recs {
				r := &recs[i]
				if r.Unmapped() {
					continue
				}
				if e.Contig == -1 {
					e.Contig = r.RefID
					e.Start = r.Pos
				}
				if r.RefID != e.Contig {
					return nil, fmt.Errorf("core: partition %d spans contigs %d and %d; input not position-partitioned",
						part, e.Contig, r.RefID)
				}
				if end := r.End(); end > e.End {
					e.End = end
				}
			}
			return []IndexEntry{e}, nil
		},
		// Spans need coordinates, the unmapped flag and the CIGAR (End).
		engine.ReadsOnly(colfmt.FieldCoord|colfmt.FieldFlag|colfmt.FieldCigar))
	if err != nil {
		return err
	}
	entries, err := engine.Collect(p.name+"/collect", summaries)
	if err != nil {
		return err
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Partition < entries[j].Partition })
	p.out.Entries = entries
	p.out.source = p.in
	return nil
}

// Query returns the records of the sorted bundle overlapping iv, touching
// only the partitions whose index span intersects it.
func (ix *SAMIndex) Query(rt *Runtime, iv genome.Interval) ([]sam.Record, error) {
	if ix.source == nil {
		return nil, fmt.Errorf("core: index %q not built", ix.ResourceName())
	}
	flat, err := ix.source.EnsureFlat(rt)
	if err != nil {
		return nil, err
	}
	want := map[int]bool{}
	for _, e := range ix.Entries {
		if e.Contig != int32(iv.Contig) || e.Records == 0 || e.Contig == -1 {
			continue
		}
		if int(e.Start) < iv.End && iv.Start < int(e.End) {
			want[e.Partition] = true
		}
	}
	if len(want) == 0 {
		return nil, nil
	}
	hits, err := engine.MapPartitions(ix.ResourceName()+"/query", flat, nil,
		func(part int, recs []sam.Record) ([]sam.Record, error) {
			if !want[part] {
				return nil, nil
			}
			var out []sam.Record
			for i := range recs {
				r := &recs[i]
				if r.Unmapped() || int(r.RefID) != iv.Contig {
					continue
				}
				if int(r.Pos) < iv.End && iv.Start < int(r.End()) {
					out = append(out, *r)
				}
			}
			return out, nil
		},
		// Overlap tests read coordinates, the unmapped flag and the CIGAR;
		// matching records pass through whole.
		engine.ReadsOnly(colfmt.FieldCoord|colfmt.FieldFlag|colfmt.FieldCigar))
	if err != nil {
		return nil, err
	}
	return engine.Collect(ix.ResourceName()+"/query-collect", hits)
}
