package core

import (
	"fmt"

	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/fastq"
	"github.com/gpf-go/gpf/internal/vcf"
)

// Multi-sample pipelines: the paper's Cleaner/Caller interfaces take SAM
// bundle *lists* (Table 2: inputSAMList, outputSAMList), and the Table 1
// experiment scales from 1 to 30 concurrent samples. MultiSampleWGS builds
// one pipeline that aligns and cleans every sample, shares a single
// ReadRepartitioner census across all of them (so the partition map reflects
// the aggregate load), and calls variants per sample.

// SampleInput is one sample's reads.
type SampleInput struct {
	Name  string
	Pairs *engine.Dataset[fastq.Pair]
}

// MultiSampleWGS holds the constructed pipeline and per-sample terminals.
type MultiSampleWGS struct {
	Pipeline *Pipeline
	// VCFs[i] is sample i's result bundle.
	VCFs []*VCFBundle
	// Names[i] is sample i's name.
	Names []string
}

// BuildMultiSampleWGS assembles a pipeline over several samples. Every
// sample gets its own Aligner and Cleaner chain; the repartitioner sees all
// aligned bundles at once (its census spans the batch), and each sample's
// partition Processes share that PartitionInfo.
func BuildMultiSampleWGS(rt *Runtime, samples []SampleInput, useGVCF bool) (*MultiSampleWGS, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: no samples")
	}
	pipeline := NewPipeline("multi-wgs", rt)
	res := &MultiSampleWGS{Pipeline: pipeline}

	dedupeds := make([]*SAMBundle, len(samples))
	for i, s := range samples {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("sample%d", i+1)
		}
		fastqBundle := DefinedFASTQPair(name+"/fastq", s.Pairs)
		aligned := UndefinedSAM(name+"/aligned", unsortedHeader(rt))
		pipeline.AddProcess(NewBwaMemProcess(name+"/Bwa", fastqBundle, aligned))
		deduped := UndefinedSAM(name+"/deduped", nil)
		pipeline.AddProcess(NewMarkDuplicateProcess(name+"/MarkDuplicate", aligned, deduped))
		dedupeds[i] = deduped
		res.Names = append(res.Names, name)
	}

	// One census across the batch (the paper's ReadRepartitioner takes the
	// SAM bundle list).
	partInfo := UndefinedPartitionInfo("partitionInfo")
	pipeline.AddProcess(NewReadRepartitionerProcess("ReadRepartitioner", dedupeds, partInfo))

	for i, name := range res.Names {
		realigned := UndefinedSAM(name+"/realigned", nil)
		pipeline.AddProcess(NewIndelRealignProcess(name+"/IndelRealign", partInfo, dedupeds[i], realigned))
		recaled := UndefinedSAM(name+"/recaled", nil)
		pipeline.AddProcess(NewBaseRecalibrationProcess(name+"/BaseRecalibration", partInfo, realigned, recaled))
		result := UndefinedVCF(name+"/vcf", vcf.NewHeader(refNames(rt), rt.Ref.Lengths(), name))
		pipeline.AddProcess(NewHaplotypeCallerProcess(name+"/HaplotypeCaller", partInfo, recaled, result, useGVCF))
		res.VCFs = append(res.VCFs, result)
	}
	return res, nil
}
