package core

import (
	"testing"
	"testing/quick"

	"github.com/gpf-go/gpf/internal/caller"
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/fastq"
	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/vcf"
)

func TestPartitionInfoBaseMapping(t *testing.T) {
	// Mirrors Fig 8: partition length 1,000,000; contigs of 250, 244, 199
	// partitions...
	lens := []int{250_000_000, 243_200_000, 198_300_000}
	pi, err := NewPartitionInfo(lens, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if pi.CountPerContig[0] != 250 || pi.StartID[1] != 250 || pi.StartID[2] != 494 {
		t.Fatalf("structure: counts=%v starts=%v", pi.CountPerContig, pi.StartID)
	}
	// Fig 8's worked example: position (contig index 3 in the paper is our
	// contig 2 here); check the arithmetic start+offset.
	if got := pi.BaseID(2, 12_345_678); got != 494+12 {
		t.Fatalf("BaseID = %d, want %d", got, 494+12)
	}
	if pi.BaseID(-1, 0) != -1 || pi.BaseID(9, 0) != -1 {
		t.Fatal("bad contig should map to -1")
	}
	// Positions beyond the contig clamp into the last partition.
	if got := pi.BaseID(0, 260_000_000); got != 249 {
		t.Fatalf("clamped BaseID = %d", got)
	}
}

func TestPartitionInfoSplit(t *testing.T) {
	// Mirrors Fig 9: partition 705 split into 4.
	lens := []int{250_000_000, 244_000_000, 199_000_000, 192_000_000}
	pi, err := NewPartitionInfo(lens, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	base := pi.BaseID(3, 12_345_678) // contig 3 starts at 693: 693+12 = 705
	if base != 705 {
		t.Fatalf("base = %d, want 705", base)
	}
	if err := pi.Split(705, 4); err != nil {
		t.Fatal(err)
	}
	// After split: split length 250,000; offset 345,678/250,000 = 1.
	finalOfSplit := pi.FinalID(3, 12_345_678)
	startOfSplit := pi.FinalID(3, 12_000_000)
	if finalOfSplit != startOfSplit+1 {
		t.Fatalf("offset in split: start=%d final=%d, want +1", startOfSplit, finalOfSplit)
	}
	// Unsplit partitions before the split keep their renumbered IDs dense.
	if got := pi.FinalID(0, 0); got != 0 {
		t.Fatalf("first partition final ID = %d", got)
	}
	if pi.NumPartitions() != pi.NumBasePartitions()+3 {
		t.Fatalf("total = %d, want base+3", pi.NumPartitions())
	}
	// Split errors.
	if err := pi.Split(-1, 2); err == nil {
		t.Fatal("split of negative partition should error")
	}
	if err := pi.Split(0, 0); err == nil {
		t.Fatal("split count 0 should error")
	}
}

func TestPartitionInfoIntervalRoundTrip(t *testing.T) {
	lens := []int{2_500_000, 1_700_000}
	pi, err := NewPartitionInfo(lens, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := pi.Split(1, 3); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < pi.NumPartitions(); id++ {
		iv, ok := pi.Interval(id)
		if !ok {
			t.Fatalf("Interval(%d) failed", id)
		}
		if iv.Len() == 0 {
			continue // zero-length tail partitions are legal
		}
		// Round trip: every position in the interval maps back to id.
		for _, pos := range []int{iv.Start, (iv.Start + iv.End) / 2, iv.End - 1} {
			if got := pi.FinalID(iv.Contig, pos); got != id {
				t.Fatalf("FinalID(%d,%d) = %d, want %d (iv=%+v)", iv.Contig, pos, got, id, iv)
			}
		}
	}
	if _, ok := pi.Interval(-1); ok {
		t.Fatal("negative interval should fail")
	}
	if _, ok := pi.Interval(pi.NumPartitions()); ok {
		t.Fatal("out-of-range interval should fail")
	}
}

// Property: FinalID is monotone in position within a contig and total
// coverage is complete (every position maps to a valid partition).
func TestPartitionInfoMonotoneProperty(t *testing.T) {
	f := func(seed int64, splitSel uint8) bool {
		lens := []int{1_300_000 + int(uint16(seed)), 900_000}
		pi, err := NewPartitionInfo(lens, 500_000)
		if err != nil {
			return false
		}
		split := int(splitSel) % pi.NumBasePartitions()
		if err := pi.Split(split, 2+int(splitSel%3)); err != nil {
			return false
		}
		for c, l := range lens {
			prev := -1
			for pos := 0; pos < l; pos += 50_000 {
				id := pi.FinalID(c, pos)
				if id < 0 || id >= pi.NumPartitions() {
					return false
				}
				if id < prev {
					return false
				}
				prev = id
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPartitionInfoErrors(t *testing.T) {
	if _, err := NewPartitionInfo([]int{100}, 0); err == nil {
		t.Fatal("zero partition length should error")
	}
	if _, err := NewPartitionInfo([]int{-5}, 100); err == nil {
		t.Fatal("negative contig length should error")
	}
}

func TestResourceStateMachine(t *testing.T) {
	b := UndefinedSAM("s", nil)
	if b.State() != Undefined {
		t.Fatal("new bundle should be undefined")
	}
	b.setDefined()
	if b.State() != Defined {
		t.Fatal("setDefined failed")
	}
	f := DefinedFASTQPair("f", nil)
	if f.State() != Defined {
		t.Fatal("DefinedFASTQPair should be defined")
	}
}

// stubProcess is a minimal Process for scheduler tests.
type stubProcess struct {
	baseProcess
	ran  *[]string
	fail error
}

func newStub(name string, ran *[]string, ins []Resource, outs []Resource) *stubProcess {
	return &stubProcess{baseProcess: baseProcess{name: name, inputs: ins, outputs: outs}, ran: ran}
}

func (s *stubProcess) Run(rt *Runtime) error {
	if s.fail != nil {
		return s.fail
	}
	*s.ran = append(*s.ran, s.name)
	return nil
}

func testRuntime(t *testing.T, workers int) *Runtime {
	t.Helper()
	ref := genome.Synthesize(genome.DefaultSynthConfig(900, 30000, 1))
	rt := NewRuntime(engine.NewContext(workers), ref)
	rt.PartitionLen = 5000
	return rt
}

func TestPipelineTopologicalExecution(t *testing.T) {
	rt := testRuntime(t, 1)
	var ran []string
	a := UndefinedSAM("a", nil)
	b := UndefinedSAM("b", nil)
	c := UndefinedSAM("c", nil)
	src := DefinedFASTQPair("src", nil)
	// Add in reverse order: scheduler must still respect dependencies.
	p := NewPipeline("test", rt)
	p.AddProcess(newStub("third", &ran, []Resource{b}, []Resource{c}))
	p.AddProcess(newStub("second", &ran, []Resource{a}, []Resource{b}))
	p.AddProcess(newStub("first", &ran, []Resource{src}, []Resource{a}))
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 3 || ran[0] != "first" || ran[1] != "second" || ran[2] != "third" {
		t.Fatalf("execution order: %v", ran)
	}
}

func TestPipelineCircularDependency(t *testing.T) {
	rt := testRuntime(t, 1)
	var ran []string
	a := UndefinedSAM("a", nil)
	b := UndefinedSAM("b", nil)
	p := NewPipeline("cycle", rt)
	p.AddProcess(newStub("x", &ran, []Resource{a}, []Resource{b}))
	p.AddProcess(newStub("y", &ran, []Resource{b}, []Resource{a}))
	err := p.Run()
	if err == nil {
		t.Fatal("circular dependency must error")
	}
}

func TestPipelineDisconnectedGraph(t *testing.T) {
	// The DAG may not be connected (§4.3); both components must run.
	rt := testRuntime(t, 1)
	var ran []string
	s1 := DefinedFASTQPair("s1", nil)
	s2 := DefinedFASTQPair("s2", nil)
	o1 := UndefinedSAM("o1", nil)
	o2 := UndefinedSAM("o2", nil)
	p := NewPipeline("disconnected", rt)
	p.AddProcess(newStub("c1", &ran, []Resource{s1}, []Resource{o1}))
	p.AddProcess(newStub("c2", &ran, []Resource{s2}, []Resource{o2}))
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 2 {
		t.Fatalf("ran %v", ran)
	}
}

func simPairs(t *testing.T, rt *Runtime, coverage float64) []fastq.Pair {
	t.Helper()
	donor := genome.Mutate(rt.Ref, genome.DefaultMutateConfig(901))
	return fastq.Simulate(donor, fastq.DefaultSimConfig(902, coverage))
}

func TestWGSPipelineEndToEnd(t *testing.T) {
	rt := testRuntime(t, 2)
	pairs := simPairs(t, rt, 12)
	ds := PairsToRDD(rt, pairs, 4)
	wgs := BuildWGSPipeline(rt, ds, false)
	if err := wgs.Pipeline.Run(); err != nil {
		t.Fatal(err)
	}
	calls, err := CollectVCF(rt, wgs.VCF)
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Fatal("pipeline called no variants")
	}
	// Compare against the donor truth set.
	donor := genome.Mutate(rt.Ref, genome.DefaultMutateConfig(901))
	var truth []vcf.Record
	for _, v := range donor.Truth.Variants {
		truth = append(truth, vcf.Record{
			Chrom: rt.Ref.Contigs[v.Contig].Name, Pos: v.Pos,
			Ref: string(v.Ref), Alt: string(v.Alt),
		})
	}
	stats := vcf.Compare(calls, truth, 2)
	if stats.Recall() < 0.4 {
		t.Fatalf("WGS recall %.2f (TP=%d FN=%d)", stats.Recall(), stats.TruePositive, stats.FalseNegative)
	}
	// Execution order respects the pipeline structure.
	order := wgs.Pipeline.ExecutionOrder()
	if len(order) != 6 || order[0] != "BwaMapping" || order[5] != "HaplotypeCaller" {
		t.Fatalf("execution order: %v", order)
	}
}

func TestRedundancyEliminationReducesStages(t *testing.T) {
	// The Table 4 claim: the optimized pipeline runs fewer stages and moves
	// less shuffle data than the unoptimized one.
	run := func(optimize bool) engine.Metrics {
		rt := testRuntime(t, 2)
		pairs := simPairs(t, rt, 8)
		ds := PairsToRDD(rt, pairs, 4)
		wgs := BuildWGSPipeline(rt, ds, false)
		wgs.Pipeline.Optimize = optimize
		if err := wgs.Pipeline.Run(); err != nil {
			t.Fatal(err)
		}
		if _, err := CollectVCF(rt, wgs.VCF); err != nil {
			t.Fatal(err)
		}
		return rt.Engine.Metrics()
	}
	opt := run(true)
	unopt := run(false)
	if opt.NumStages() >= unopt.NumStages() {
		t.Fatalf("optimized stages %d should be < unoptimized %d", opt.NumStages(), unopt.NumStages())
	}
	if opt.TotalShuffleBytes() >= unopt.TotalShuffleBytes() {
		t.Fatalf("optimized shuffle %d should be < unoptimized %d",
			opt.TotalShuffleBytes(), unopt.TotalShuffleBytes())
	}
}

func TestOptimizationPreservesResults(t *testing.T) {
	run := func(optimize bool) []vcf.Record {
		rt := testRuntime(t, 2)
		pairs := simPairs(t, rt, 10)
		ds := PairsToRDD(rt, pairs, 4)
		wgs := BuildWGSPipeline(rt, ds, false)
		wgs.Pipeline.Optimize = optimize
		if err := wgs.Pipeline.Run(); err != nil {
			t.Fatal(err)
		}
		calls, err := CollectVCF(rt, wgs.VCF)
		if err != nil {
			t.Fatal(err)
		}
		return calls
	}
	opt := run(true)
	unopt := run(false)
	if len(opt) != len(unopt) {
		t.Fatalf("call counts differ: optimized %d vs unoptimized %d", len(opt), len(unopt))
	}
	for i := range opt {
		a, b := opt[i], unopt[i]
		if a.Chrom != b.Chrom || a.Pos != b.Pos || a.Ref != b.Ref || a.Alt != b.Alt || a.GT != b.GT {
			t.Fatalf("call %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestRepartitionerSplitsHotspots(t *testing.T) {
	rt := testRuntime(t, 2)
	donor := genome.Mutate(rt.Ref, genome.DefaultMutateConfig(901))
	cfg := fastq.DefaultSimConfig(903, 6)
	cfg.Hotspots = []genome.Interval{{Contig: 0, Start: 2000, End: 4000}}
	cfg.HotspotFactor = 30
	pairs := fastq.Simulate(donor, cfg)
	ds := PairsToRDD(rt, pairs, 4)

	// Align, then repartition.
	fastqBundle := DefinedFASTQPair("f", ds)
	aligned := UndefinedSAM("aligned", nil)
	info := UndefinedPartitionInfo("pi")
	p := NewPipeline("repart", rt)
	p.AddProcess(NewBwaMemProcess("bwa", fastqBundle, aligned))
	p.AddProcess(NewReadRepartitionerProcess("repart", []*SAMBundle{aligned}, info))
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	pi := info.Info
	if pi == nil {
		t.Fatal("no partition info produced")
	}
	if pi.NumPartitions() <= pi.NumBasePartitions() {
		t.Fatalf("hotspot did not trigger splits: %d final vs %d base",
			pi.NumPartitions(), pi.NumBasePartitions())
	}
	// The hotspot's partition must be among the split ones.
	hotBase := pi.BaseID(0, 3000)
	hotIv, _ := pi.Interval(pi.FinalID(0, 3000))
	if hotIv.Len() >= rt.PartitionLen {
		t.Fatalf("hotspot partition %d not split: interval %+v", hotBase, hotIv)
	}
}

func TestBundleConstruction(t *testing.T) {
	rt := testRuntime(t, 2)
	pairs := simPairs(t, rt, 6)
	ds := PairsToRDD(rt, pairs, 2)
	fastqBundle := DefinedFASTQPair("f", ds)
	aligned := UndefinedSAM("aligned", nil)
	p := NewPipeline("b", rt)
	p.AddProcess(NewBwaMemProcess("bwa", fastqBundle, aligned))
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	pi, err := NewPartitionInfo(rt.Ref.Lengths(), rt.PartitionLen)
	if err != nil {
		t.Fatal(err)
	}
	bundled, err := buildBundles(rt, "test", aligned.Data, pi)
	if err != nil {
		t.Fatal(err)
	}
	bundles, err := engine.Collect("collect", bundled)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != pi.NumPartitions() {
		t.Fatalf("bundles = %d, want %d", len(bundles), pi.NumPartitions())
	}
	totalReads := 0
	for _, b := range bundles {
		totalReads += len(b.Sams)
		// Every mapped read must belong to its bundle's partition.
		for i := range b.Sams {
			r := &b.Sams[i]
			if r.RefID < 0 {
				continue
			}
			if got := pi.FinalID(int(r.RefID), int(r.Pos)); got != b.PartID {
				t.Fatalf("read at %d:%d in partition %d, want %d", r.RefID, r.Pos, b.PartID, got)
			}
		}
		// Reference slice must cover the padded interval.
		if b.Interval.Len() > 0 && len(b.Ref) == 0 {
			t.Fatalf("bundle %d has no reference slice", b.PartID)
		}
	}
	if totalReads != 2*len(pairs) {
		t.Fatalf("bundles hold %d reads, want %d", totalReads, 2*len(pairs))
	}
}

func TestEnsureFlatErrors(t *testing.T) {
	rt := testRuntime(t, 1)
	b := UndefinedSAM("empty", nil)
	if _, err := b.EnsureFlat(rt); err == nil {
		t.Fatal("empty bundle should error")
	}
}

func TestMarkDuplicateProcessColocatesDuplicates(t *testing.T) {
	rt := testRuntime(t, 2)
	donor := genome.Mutate(rt.Ref, genome.DefaultMutateConfig(901))
	cfg := fastq.DefaultSimConfig(905, 8)
	cfg.DuplicateRate = 0.4
	pairs := fastq.Simulate(donor, cfg)
	ds := PairsToRDD(rt, pairs, 4)
	fastqBundle := DefinedFASTQPair("f", ds)
	aligned := UndefinedSAM("aligned", nil)
	deduped := UndefinedSAM("deduped", nil)
	p := NewPipeline("md", rt)
	p.AddProcess(NewBwaMemProcess("bwa", fastqBundle, aligned))
	p.AddProcess(NewMarkDuplicateProcess("markdup", aligned, deduped))
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	recs, err := engine.Collect("c", deduped.Data)
	if err != nil {
		t.Fatal(err)
	}
	marked := 0
	for i := range recs {
		if recs[i].Duplicate() {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("no duplicates marked despite 40% duplication rate")
	}
}

func TestWGSPipelineGVCFMode(t *testing.T) {
	rt := testRuntime(t, 2)
	pairs := simPairs(t, rt, 10)
	ds := PairsToRDD(rt, pairs, 4)
	wgs := BuildWGSPipeline(rt, ds, true) // gVCF on
	if err := wgs.Pipeline.Run(); err != nil {
		t.Fatal(err)
	}
	records, err := CollectVCF(rt, wgs.VCF)
	if err != nil {
		t.Fatal(err)
	}
	blocks, variants := 0, 0
	for i := range records {
		if end, ok := caller.BlockEnd(&records[i]); ok {
			blocks++
			if end <= records[i].Pos {
				t.Fatalf("block END %d not past start %d", end, records[i].Pos)
			}
		} else {
			variants++
		}
	}
	if blocks == 0 {
		t.Fatal("gVCF mode emitted no reference blocks")
	}
	if variants == 0 {
		t.Fatal("gVCF mode lost the variant calls")
	}
	// Records sorted by coordinate per contig.
	for i := 1; i < len(records); i++ {
		a, b := records[i-1], records[i]
		if a.Chrom == b.Chrom && a.Pos > b.Pos {
			t.Fatalf("gVCF stream out of order at %d", i)
		}
	}
}

func TestCodecTierShuffleBytes(t *testing.T) {
	// The engine's shuffle must move fewer bytes with the genomic codec than
	// with the generic tier — the mechanism behind Table 3 and Fig 11.
	run := func(tier CodecTier) int64 {
		rt := testRuntime(t, 2)
		rt.Codec = tier
		pairs := simPairs(t, rt, 6)
		ds := PairsToRDD(rt, pairs, 4)
		fq := DefinedFASTQPair("f", ds)
		aligned := UndefinedSAM("aligned", nil)
		deduped := UndefinedSAM("deduped", nil)
		p := NewPipeline("codec", rt)
		p.AddProcess(NewBwaMemProcess("bwa", fq, aligned))
		p.AddProcess(NewMarkDuplicateProcess("markdup", aligned, deduped))
		if err := p.Run(); err != nil {
			t.Fatal(err)
		}
		// The markdup shuffle is deferred by the projection planner until a
		// consumer forces it; materialize before reading the byte accounting.
		if err := deduped.Data.Force(); err != nil {
			t.Fatal(err)
		}
		return rt.Engine.Metrics().TotalShuffleBytes()
	}
	gpfBytes := run(TierGPF)
	fieldBytes := run(TierField)
	gobBytes := run(TierGob)
	if !(gpfBytes < fieldBytes && fieldBytes < gobBytes) {
		t.Fatalf("shuffle bytes gpf=%d field=%d gob=%d; want strictly increasing",
			gpfBytes, fieldBytes, gobBytes)
	}
}

func TestPipelineWithSerializedStorage(t *testing.T) {
	// MEMORY_ONLY_SER mode (§4.2): partitions held as serialized blocks.
	rt := testRuntime(t, 2)
	rt.Engine.StoreSerialized = true
	pairs := simPairs(t, rt, 8)
	ds := PairsToRDD(rt, pairs, 4)
	wgs := BuildWGSPipeline(rt, ds, false)
	if err := wgs.Pipeline.Run(); err != nil {
		t.Fatal(err)
	}
	calls, err := CollectVCF(rt, wgs.VCF)
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 {
		t.Fatal("serialized-storage pipeline called nothing")
	}
	// Results identical to the unserialized run.
	rt2 := testRuntime(t, 2)
	ds2 := PairsToRDD(rt2, pairs, 4)
	wgs2 := BuildWGSPipeline(rt2, ds2, false)
	if err := wgs2.Pipeline.Run(); err != nil {
		t.Fatal(err)
	}
	calls2, err := CollectVCF(rt2, wgs2.VCF)
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != len(calls2) {
		t.Fatalf("serialized storage changed results: %d vs %d calls", len(calls), len(calls2))
	}
}

func TestCensusPlannerPruningWithoutAnnotations(t *testing.T) {
	// The repartitioner census declares ReadsOnly(FieldCoord) and nothing
	// else — no manual Force() + ReadingFields view remains in the process.
	// The projection planner must derive the coordinate-only decode on its
	// own: the columnar census must decode at least 90% fewer stored bytes
	// than the same census over the gob fallback.
	run := func(columnar bool) (decoded, pruned int64) {
		rt := testRuntime(t, 2)
		rt.Engine.StoreSerialized = true
		rt.Engine.DisableColumnar = !columnar
		pairs := simPairs(t, rt, 6)
		ds := PairsToRDD(rt, pairs, 4)
		fq := DefinedFASTQPair("f", ds)
		aligned := UndefinedSAM("aligned", nil)
		p := NewPipeline("census-align", rt)
		p.AddProcess(NewBwaMemProcess("bwa", fq, aligned))
		if err := p.Run(); err != nil {
			t.Fatal(err)
		}
		// Materialize the aligned records as serialized blocks, then isolate
		// the census read in the metrics.
		if err := aligned.Data.Force(); err != nil {
			t.Fatal(err)
		}
		rt.Engine.ResetMetrics()
		info := UndefinedPartitionInfo("pi")
		p2 := NewPipeline("census", rt)
		p2.AddProcess(NewReadRepartitionerProcess("repart", []*SAMBundle{aligned}, info))
		if err := p2.Run(); err != nil {
			t.Fatal(err)
		}
		if info.Info == nil {
			t.Fatal("no partition info produced")
		}
		m := rt.Engine.Metrics()
		return m.TotalDecodedBytes(), m.TotalPrunedBytes()
	}
	colDec, colPruned := run(true)
	gobDec, _ := run(false)
	if colDec == 0 || gobDec == 0 {
		t.Fatalf("census decoded no bytes: columnar=%d gob=%d", colDec, gobDec)
	}
	if colPruned == 0 {
		t.Fatal("planner-inferred census pruned nothing")
	}
	if reduction := 1 - float64(colDec)/float64(gobDec); reduction < 0.90 {
		t.Fatalf("census decode reduction %.1f%% < 90%% (columnar %d bytes, gob %d)",
			100*reduction, colDec, gobDec)
	}
}
