package core

import (
	"fmt"

	"github.com/gpf-go/gpf/internal/align"
	"github.com/gpf-go/gpf/internal/caller"
	"github.com/gpf-go/gpf/internal/cleaner"
	"github.com/gpf-go/gpf/internal/colfmt"
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/fastq"
	"sort"

	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/sam"
	"github.com/gpf-go/gpf/internal/vcf"
)

// baseProcess implements the shared Process bookkeeping.
type baseProcess struct {
	name    string
	inputs  []Resource
	outputs []Resource
}

// ProcessName returns the user-assigned process name.
func (p *baseProcess) ProcessName() string { return p.name }

// Inputs returns the resources that must be defined before the process runs.
func (p *baseProcess) Inputs() []Resource { return p.inputs }

// Outputs returns the resources the process defines on completion.
func (p *baseProcess) Outputs() []Resource { return p.outputs }

// BwaMemProcess is the Aligner stage (Table 2: BwaMemProcess.pairEnd): maps
// paired-end reads to the reference with the BWT-based aligner.
type BwaMemProcess struct {
	baseProcess
	in  *FASTQPairBundle
	out *SAMBundle
}

// NewBwaMemProcess constructs the aligner process.
func NewBwaMemProcess(name string, in *FASTQPairBundle, out *SAMBundle) *BwaMemProcess {
	return &BwaMemProcess{
		baseProcess: baseProcess{name: name, inputs: []Resource{in}, outputs: []Resource{out}},
		in:          in, out: out,
	}
}

// Run aligns every pair, producing two SAM records per pair.
func (p *BwaMemProcess) Run(rt *Runtime) error {
	idx, err := rt.Index()
	if err != nil {
		return err
	}
	aligner := align.NewAligner(idx, rt.AlignerConfig)
	recs, err := engine.MapPartitions(p.name+"/bwa-mem", p.in.Data, rt.samCodec(),
		func(_ int, pairs []fastq.Pair) ([]sam.Record, error) {
			out := make([]sam.Record, 0, 2*len(pairs))
			for i := range pairs {
				r1, r2 := aligner.AlignPair(&pairs[i])
				out = append(out, r1, r2)
			}
			return out, nil
		})
	if err != nil {
		return err
	}
	// Later pipeline stages consume this bundle; their demands are unknown
	// until they are declared, so the cache must stay full-width.
	recs.Retain()
	p.out.Data = recs
	return nil
}

// MarkDuplicateProcess is the first Cleaner step (Table 2): shuffle records
// by duplicate-signature group, sort, and mark duplicates.
type MarkDuplicateProcess struct {
	baseProcess
	in  *SAMBundle
	out *SAMBundle
}

// NewMarkDuplicateProcess constructs the duplicate-marking process.
func NewMarkDuplicateProcess(name string, in, out *SAMBundle) *MarkDuplicateProcess {
	return &MarkDuplicateProcess{
		baseProcess: baseProcess{name: name, inputs: []Resource{in}, outputs: []Resource{out}},
		in:          in, out: out,
	}
}

// Run shuffles by fragment signature and marks duplicates per partition.
func (p *MarkDuplicateProcess) Run(rt *Runtime) error {
	flat, err := p.in.EnsureFlat(rt)
	if err != nil {
		return err
	}
	grouped, err := engine.PartitionBy(p.name+"/group",
		engine.WithCodec(flat, rt.samCodec()), rt.NumPartitions,
		func(r sam.Record) int { return cleaner.GroupKey(&r) },
		// The duplicate signature reads coordinates, flags, mate fields, the
		// CIGAR (unclipped 5') and the library tag; records pass through.
		engine.ReadsOnly(colfmt.FieldCoord|colfmt.FieldFlag|colfmt.FieldMate|colfmt.FieldCigar|colfmt.FieldTags))
	if err != nil {
		return err
	}
	marked, err := engine.MapPartitions(p.name+"/mark", grouped, rt.samCodec(),
		func(_ int, recs []sam.Record) ([]sam.Record, error) {
			out := append([]sam.Record(nil), recs...)
			cleaner.SortByCoordinate(out)
			cleaner.MarkDuplicates(out)
			return out, nil
		},
		// Marking reads the signature fields plus names and base qualities
		// (tie-breaks) and rewrites only the flag column.
		engine.WithEffects(engine.FieldEffects{
			Reads: colfmt.FieldCoord | colfmt.FieldFlag | colfmt.FieldMate |
				colfmt.FieldCigar | colfmt.FieldTags | colfmt.FieldName | colfmt.FieldQual,
			Writes: colfmt.FieldFlag,
		}))
	if err != nil {
		return err
	}
	// The repartitioner's census (a narrow action) may force this dataset
	// before the bundle shuffle that also needs it exists; retaining keeps
	// the materialized form full-width for those later consumers.
	marked.Retain()
	p.out.Data = marked
	if p.out.Header == nil && p.in.Header != nil {
		p.out.Header = p.in.Header.Clone(sam.Coordinate)
	}
	return nil
}

// ReadRepartitionerProcess (Table 2's ReadRepartitioner, §4.4's
// RepartitionInfoProducer) builds the PartitionInfo: equal-length base
// partitions, a read census via a distributed reduce, and splits of
// overloaded partitions.
type ReadRepartitionerProcess struct {
	baseProcess
	ins []*SAMBundle
	out *PartitionInfoBundle
	// AdvisedPartitionLength overrides the runtime's PartitionLen when set.
	AdvisedPartitionLength int
}

// NewReadRepartitionerProcess constructs the repartitioner over the given
// SAM inputs.
func NewReadRepartitionerProcess(name string, ins []*SAMBundle, out *PartitionInfoBundle) *ReadRepartitionerProcess {
	inputs := make([]Resource, len(ins))
	for i, b := range ins {
		inputs[i] = b
	}
	return &ReadRepartitionerProcess{
		baseProcess: baseProcess{name: name, inputs: inputs, outputs: []Resource{out}},
		ins:         ins, out: out,
	}
}

// Run builds the PartitionInfo and broadcasts it (§4.4 step 2 creates
// broadcast variables from the contig start-ID structure).
func (p *ReadRepartitionerProcess) Run(rt *Runtime) error {
	partLen := rt.PartitionLen
	if p.AdvisedPartitionLength > 0 {
		partLen = p.AdvisedPartitionLength
	}
	info, err := NewPartitionInfo(rt.Ref.Lengths(), partLen)
	if err != nil {
		return err
	}
	// Census: reads per base partition. Runs as a map-side-combined
	// ReduceByKey over the compact keyed-varint codec, so each map task ships
	// one (partition, count) pair per locally observed base partition instead
	// of a whole per-partition map serially merged on the driver — the
	// combine path that makes the census shuffle bytes drop (and the driver
	// merge below only folds already-disjoint reduce outputs).
	counts := map[int]int{}
	baseID := func(r sam.Record) int {
		if r.RefID < 0 {
			return 0
		}
		return info.BaseID(int(r.RefID), int(r.Pos))
	}
	for _, in := range p.ins {
		flat, err := in.EnsureFlat(rt)
		if err != nil {
			return err
		}
		// The census keys on RefID/Pos only. Declaring ReadsOnly(FieldCoord)
		// lets the projection planner derive the pruning itself: at the
		// census barrier its backward pass resolves a coord-only demand on
		// flat's edge, so a columnar-stored input decodes just the coord
		// column and prunes name/seq/qual/tags — no manual Force() +
		// ReadingFields view needed. On a non-columnar input the mask is a
		// no-op.
		censusReads := engine.ReadsOnly(colfmt.FieldCoord)
		if rt.Engine.DisableMapSideCombine {
			// No-combine ablation: the legacy census, whole per-partition
			// count maps shipped to a serial driver merge.
			c, err := engine.CountByKey(p.name+"/census", flat, baseID, censusReads)
			if err != nil {
				return err
			}
			for k, v := range c {
				counts[k] += v
			}
			continue
		}
		pairs, err := engine.ReduceByKey(p.name+"/census", flat, flat.NumPartitions(), baseID,
			func(sam.Record) int { return 1 },
			func(a, b int) int { return a + b },
			engine.KeyedIntCodec{}, censusReads)
		if err != nil {
			return err
		}
		kvs, err := engine.Collect(p.name+"/census-collect", pairs)
		if err != nil {
			return err
		}
		for _, kv := range kvs {
			counts[kv.Key] += kv.Val
		}
	}
	// Threshold: factor × the median reads per non-empty partition. The
	// median reflects typical load — hotspot partitions would inflate a
	// mean and hide themselves from splitting (§4.4's segmentation
	// threshold is set by the driver after the census).
	if len(counts) > 0 {
		all := make([]int, 0, len(counts))
		for _, v := range counts {
			all = append(all, v)
		}
		sortInts(all)
		median := float64(all[len(all)/2])
		threshold := median * rt.SplitThresholdFactor
		if threshold < 1 {
			threshold = 1
		}
		for part, v := range counts {
			if float64(v) > threshold {
				splits := int(float64(v)/threshold) + 1
				if err := info.Split(part, splits); err != nil {
					return err
				}
			}
		}
	}
	engine.NewBroadcast(rt.Engine, p.name+"/broadcast-partition-info", info,
		int64(16*(info.NumBasePartitions()+len(info.StartID))))
	p.out.Info = info
	return nil
}

func sortInts(a []int) {
	sort.Ints(a)
}

// partitionBase carries the shared mechanics of partition Processes
// (IndelRealign, BQSR, HaplotypeCaller): the bundle input resolution and the
// optimizer's fuse flag.
type partitionBase struct {
	baseProcess
	samIn     *SAMBundle
	infoIn    *PartitionInfoBundle
	useBundle bool
}

func (p *partitionBase) samInput() *SAMBundle  { return p.samIn }
func (p *partitionBase) setUseBundle(use bool) { p.useBundle = use }

// bundles resolves the input bundle dataset per the fuse decision.
func (p *partitionBase) bundles(rt *Runtime) (*engine.Dataset[Bundle], *PartitionInfo, error) {
	info := p.infoIn.Info
	if p.useBundle && p.samIn.Info != nil {
		info = p.samIn.Info
	}
	if info == nil {
		return nil, nil, fmt.Errorf("core: process %s: no partition info", p.name)
	}
	ds, err := bundleInput(rt, p.name, p.samIn, info, p.useBundle)
	return ds, info, err
}

// emitSAM stores the bundle result on the output resource: bundled when the
// optimizer fused the chain, flattened otherwise (Fig 7a merges after each
// partition Process).
func (p *partitionBase) emitSAM(rt *Runtime, out *SAMBundle, bundled *engine.Dataset[Bundle], info *PartitionInfo) error {
	out.Bundled = bundled
	out.Info = info
	if p.useBundle {
		// Fused chain: leave the bundled form for the next process.
		return nil
	}
	flat, err := flattenBundles(rt, p.name, bundled)
	if err != nil {
		return err
	}
	out.Data = flat
	return nil
}

// IndelRealignProcess adjusts alignments around candidate indels (Table 2).
type IndelRealignProcess struct {
	partitionBase
	out *SAMBundle
}

// NewIndelRealignProcess constructs the realignment process.
func NewIndelRealignProcess(name string, info *PartitionInfoBundle, in, out *SAMBundle) *IndelRealignProcess {
	return &IndelRealignProcess{
		partitionBase: partitionBase{
			baseProcess: baseProcess{name: name, inputs: []Resource{info, in}, outputs: []Resource{out}},
			samIn:       in, infoIn: info,
		},
		out: out,
	}
}

// Run realigns each bundle partition.
func (p *IndelRealignProcess) Run(rt *Runtime) error {
	bundled, info, err := p.bundles(rt)
	if err != nil {
		return err
	}
	sc := rt.AlignerConfig.Scoring
	next, err := engine.Map(p.name+"/realign", bundled, nil, func(b Bundle) Bundle {
		recs := append([]sam.Record(nil), b.Sams...)
		cleaner.RealignIndels(recs, rt.Ref, sc)
		b.Sams = recs
		return b
	})
	if err != nil {
		return err
	}
	if p.out.Header == nil && p.samIn.Header != nil {
		p.out.Header = p.samIn.Header.Clone(sam.Coordinate)
	}
	return p.emitSAM(rt, p.out, next, info)
}

// BaseRecalibrationProcess adjusts base quality scores (Table 2). Pass 1
// builds covariate tables per partition and reduces them on the driver; the
// merged table broadcast is the serial Collect step of §5.2.2. Pass 2
// rewrites qualities in parallel.
type BaseRecalibrationProcess struct {
	partitionBase
	out *SAMBundle
}

// NewBaseRecalibrationProcess constructs the BQSR process.
func NewBaseRecalibrationProcess(name string, info *PartitionInfoBundle, in, out *SAMBundle) *BaseRecalibrationProcess {
	return &BaseRecalibrationProcess{
		partitionBase: partitionBase{
			baseProcess: baseProcess{name: name, inputs: []Resource{info, in}, outputs: []Resource{out}},
			samIn:       in, infoIn: info,
		},
		out: out,
	}
}

// Run executes the two BQSR passes.
func (p *BaseRecalibrationProcess) Run(rt *Runtime) error {
	bundled, info, err := p.bundles(rt)
	if err != nil {
		return err
	}
	// Pass 1: per-partition covariate tables.
	tables, err := engine.MapPartitions(p.name+"/count-covariates", bundled, nil,
		func(_ int, bs []Bundle) ([]*cleaner.RecalTable, error) {
			var out []*cleaner.RecalTable
			for i := range bs {
				known := knownSitesFunc(rt, bs[i].Known)
				out = append(out, cleaner.BuildRecalTable(bs[i].Sams, rt.Ref, known))
			}
			return out, nil
		})
	if err != nil {
		return err
	}
	merged, found, err := engine.Reduce(p.name+"/collect", tables,
		func(a, b *cleaner.RecalTable) *cleaner.RecalTable { return a.Merge(b) })
	if err != nil {
		return err
	}
	if !found {
		merged = &cleaner.RecalTable{}
	}
	// The multi-gigabyte mask table broadcast of §5.2.2: the serial step
	// that throttles BQSR's parallel efficiency.
	bc := engine.NewBroadcast(rt.Engine, p.name+"/broadcast-mask-table", merged, merged.SizeBytes())
	// Pass 2: apply.
	next, err := engine.Map(p.name+"/apply-recalibration", bundled, nil, func(b Bundle) Bundle {
		recs := append([]sam.Record(nil), b.Sams...)
		if err := cleaner.ApplyRecalibration(recs, bc.Value); err == nil {
			b.Sams = recs
		}
		return b
	})
	if err != nil {
		return err
	}
	if p.out.Header == nil && p.samIn.Header != nil {
		p.out.Header = p.samIn.Header.Clone(sam.Coordinate)
	}
	return p.emitSAM(rt, p.out, next, info)
}

// knownSitesFunc builds a mask over the partition's known variants.
func knownSitesFunc(rt *Runtime, known []vcf.Record) cleaner.KnownSites {
	if len(known) == 0 {
		return nil
	}
	mask := make(map[int64]bool, len(known))
	for _, v := range known {
		contig, ok := rt.Ref.ContigID(v.Chrom)
		if !ok {
			continue
		}
		for off := 0; off < len(v.Ref); off++ {
			mask[int64(contig)<<40|int64(v.Pos+off)] = true
		}
	}
	return func(contig, pos int) bool {
		return mask[int64(contig)<<40|int64(pos)]
	}
}

// HaplotypeCallerProcess calls variants per partition via local assembly and
// the pair-HMM (Table 2).
type HaplotypeCallerProcess struct {
	partitionBase
	out     *VCFBundle
	UseGVCF bool
}

// NewHaplotypeCallerProcess constructs the caller process.
func NewHaplotypeCallerProcess(name string, info *PartitionInfoBundle, in *SAMBundle, out *VCFBundle, useGVCF bool) *HaplotypeCallerProcess {
	return &HaplotypeCallerProcess{
		partitionBase: partitionBase{
			baseProcess: baseProcess{name: name, inputs: []Resource{info, in}, outputs: []Resource{out}},
			samIn:       in, infoIn: info,
		},
		out:     out,
		UseGVCF: useGVCF,
	}
}

// Run calls variants in every bundle partition, restricting emitted records
// to the partition's core interval so overlapping pads don't double-call.
func (p *HaplotypeCallerProcess) Run(rt *Runtime) error {
	bundled, _, err := p.bundles(rt)
	if err != nil {
		return err
	}
	cfg := rt.CallerConfig
	calls, err := engine.MapPartitions(p.name+"/haplotype-caller", bundled, nil,
		func(_ int, bs []Bundle) ([]vcf.Record, error) {
			var out []vcf.Record
			for i := range bs {
				b := &bs[i]
				// Each active region is genotyped by the partition owning
				// its midpoint, so regions in the overlap pads are not
				// recomputed by the neighbours.
				var keep func(genome.Interval) bool
				if b.Interval.Len() > 0 {
					core := b.Interval
					keep = func(region genome.Interval) bool {
						return core.Contains(region.Contig, (region.Start+region.End)/2)
					}
				}
				// Every variant of an owned region is emitted: regions are
				// owned by exactly one partition, and the driver-side
				// collect dedupes the rare same-site calls from adjacent
				// partitions' distinct regions.
				calls := caller.CallVariantsFiltered(b.Sams, rt.Ref, cfg, keep)
				if p.UseGVCF && b.Interval.Len() > 0 {
					blocks := caller.ReferenceBlocks(b.Sams, rt.Ref, b.Interval, calls, cfg.MinActiveDepth)
					calls = caller.MergeGVCF(calls, blocks)
				}
				out = append(out, calls...)
			}
			return out, nil
		})
	if err != nil {
		return err
	}
	p.out.Data = calls
	if p.out.Header == nil {
		p.out.Header = vcf.NewHeader(refNames(rt), rt.Ref.Lengths(), "sample")
	}
	return nil
}

func refNames(rt *Runtime) []string {
	names := make([]string, rt.Ref.NumContigs())
	for i := range names {
		names[i] = rt.Ref.Contigs[i].Name
	}
	return names
}

// CollectVCF gathers and sorts the final call set (the driver-side read of
// the ResultVCF resource).
func CollectVCF(rt *Runtime, b *VCFBundle) ([]vcf.Record, error) {
	if b.Data == nil {
		return nil, fmt.Errorf("core: VCF bundle %q holds no data", b.ResourceName())
	}
	out, err := engine.Collect(b.ResourceName()+"/collect", b.Data)
	if err != nil {
		return nil, err
	}
	vcf.SortRecords(out)
	// Dedupe identical calls produced by adjacent partitions whose active
	// regions overlapped in the pad zones.
	dedup := out[:0]
	for i, r := range out {
		if i > 0 {
			p := dedup[len(dedup)-1]
			if p.Chrom == r.Chrom && p.Pos == r.Pos && p.Ref == r.Ref && p.Alt == r.Alt {
				continue
			}
		}
		dedup = append(dedup, r)
	}
	return dedup, nil
}
