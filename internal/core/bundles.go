package core

import (
	"fmt"

	"github.com/gpf-go/gpf/internal/colfmt"
	"github.com/gpf-go/gpf/internal/compress"
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/sam"
	"github.com/gpf-go/gpf/internal/vcf"
)

// bundlePad is the reference flank carried with each bundle partition so
// reads overhanging the partition boundary can still be realigned/called.
const bundlePad = 300

// Bundle is one position-partition of the pipeline's working set: the
// reference slice, the SAM records and the known variants of one genomic
// partition — the "Partition Bundle RDD" of Fig 7.
type Bundle struct {
	PartID   int
	Interval genome.Interval // the partition's core (unpadded) interval
	RefStart int             // start of the padded reference slice
	Ref      []byte          // padded reference bases
	Sams     []sam.Record
	Known    []vcf.Record
}

// refChunk is the FASTA-partition element shuffled when building bundles.
type refChunk struct {
	PartID   int
	Interval genome.Interval
	RefStart int
	Seq      []byte
}

// CodecTier selects the serializer family used throughout a pipeline.
type CodecTier int

// Serializer tiers, from genomic-aware to generic (§4.2's comparison).
const (
	TierGPF   CodecTier = iota // GPF genomic codec (2-bit + delta/Huffman)
	TierField                  // fast binary field codec (Kryo-like)
	TierGob                    // generic reflective codec (Java-like)
)

// String names the tier.
func (t CodecTier) String() string {
	switch t {
	case TierField:
		return "field"
	case TierGob:
		return "gob"
	default:
		return "gpf"
	}
}

// SAMCodec returns the SAM serializer for the runtime's tier (nil selects
// the engine's gob fallback). The GPF tier is the columnar codec: per-field
// blocks with projection pushdown (colfmt), the layout that subsumes the
// row-wise Fig 4 codec for cache and shuffle storage. Setting
// Engine.DisableColumnar falls the GPF tier back to gob at the engine level
// (the columnar ablation); the row-wise compress.GPFSAMCodec remains
// available directly for the §4.2 codec-tier comparisons.
func (rt *Runtime) SAMCodec() engine.Serializer[sam.Record] {
	switch rt.Codec {
	case TierGPF:
		return colfmt.Codec{}
	case TierField:
		return compress.FieldSAMCodec{}
	default:
		return nil
	}
}

// samCodec is the internal alias used by the processes.
func (rt *Runtime) samCodec() engine.Serializer[sam.Record] { return rt.SAMCodec() }

// buildBundles performs the partition operation of Fig 7a: groupBy partition
// ID on the SAM records, the FASTA chunks and the known VCF records (three
// shuffles), then join them partition-wise into the bundle dataset.
func buildBundles(rt *Runtime, name string, flat *engine.Dataset[sam.Record], info *PartitionInfo) (*engine.Dataset[Bundle], error) {
	n := info.NumPartitions()
	if n == 0 {
		return nil, fmt.Errorf("core: partition info has no partitions")
	}

	// SAM records by final partition ID.
	samPart, err := engine.PartitionBy(name+"/sam-partition",
		engine.WithCodec(flat, rt.samCodec()), n,
		func(r sam.Record) int {
			if r.RefID < 0 {
				return 0
			}
			return info.FinalID(int(r.RefID), int(r.Pos))
		},
		// Routing reads only the coordinates; records pass through whole.
		engine.ReadsOnly(colfmt.FieldCoord))
	if err != nil {
		return nil, err
	}

	// FASTA chunks by partition ID.
	chunks := make([]refChunk, 0, n)
	for p := 0; p < n; p++ {
		iv, ok := info.Interval(p)
		if !ok {
			continue
		}
		start := iv.Start - bundlePad
		if start < 0 {
			start = 0
		}
		end := iv.End + bundlePad
		chunks = append(chunks, refChunk{
			PartID:   p,
			Interval: iv,
			RefStart: start,
			Seq:      rt.Ref.Slice(iv.Contig, start, end),
		})
	}
	chunkDS := engine.Parallelize(rt.Engine, chunks, rt.NumPartitions)
	chunkPart, err := engine.PartitionBy(name+"/fasta-partition", chunkDS, n,
		func(c refChunk) int { return c.PartID })
	if err != nil {
		return nil, err
	}

	// Known VCF by partition ID.
	knownDS := engine.Parallelize(rt.Engine, rt.Known, rt.NumPartitions)
	knownPart, err := engine.PartitionBy(name+"/vcf-partition", knownDS, n,
		func(v vcf.Record) int {
			contig, ok := rt.Ref.ContigID(v.Chrom)
			if !ok {
				return 0
			}
			return info.FinalID(contig, v.Pos)
		})
	if err != nil {
		return nil, err
	}

	// Join: partition-wise zip into bundles.
	return engine.ZipPartitions3(name+"/join", samPart, chunkPart, knownPart, nil,
		func(p int, sams []sam.Record, cs []refChunk, known []vcf.Record) ([]Bundle, error) {
			b := Bundle{PartID: p, Sams: sams, Known: known}
			if len(cs) > 0 {
				b.Interval = cs[0].Interval
				b.RefStart = cs[0].RefStart
				b.Ref = cs[0].Seq
			}
			return []Bundle{b}, nil
		})
}

// flattenBundles merges the bundle dataset back into a flat SAM record
// dataset (the "merge into a SAM RDD" of Fig 7a that forces the next
// partition Process to re-shuffle).
func flattenBundles(rt *Runtime, name string, bundled *engine.Dataset[Bundle]) (*engine.Dataset[sam.Record], error) {
	flat, err := engine.MapPartitions(name+"/flatten", bundled, rt.samCodec(),
		func(_ int, bs []Bundle) ([]sam.Record, error) {
			var out []sam.Record
			for i := range bs {
				out = append(out, bs[i].Sams...)
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}
	return flat, nil
}

// bundleInput resolves the bundle dataset a partition Process consumes:
// either the fused predecessor's bundled output (Fig 7b) or a fresh build
// from the flat form (Fig 7a).
func bundleInput(rt *Runtime, name string, in *SAMBundle, info *PartitionInfo, useBundle bool) (*engine.Dataset[Bundle], error) {
	if useBundle && in.Bundled != nil {
		return in.Bundled, nil
	}
	flat := in.Data
	if flat == nil {
		if in.Bundled == nil {
			return nil, fmt.Errorf("core: SAM bundle %q holds no data", in.ResourceName())
		}
		var err error
		flat, err = flattenBundles(rt, name+"/reflatten", in.Bundled)
		if err != nil {
			return nil, err
		}
	}
	return buildBundles(rt, name, flat, info)
}

// EnsureFlat materializes the flat record dataset of a SAM bundle,
// flattening the bundled form if necessary.
func (b *SAMBundle) EnsureFlat(rt *Runtime) (*engine.Dataset[sam.Record], error) {
	if b.Data != nil {
		return b.Data, nil
	}
	if b.Bundled == nil {
		return nil, fmt.Errorf("core: SAM bundle %q holds no data", b.ResourceName())
	}
	flat, err := flattenBundles(rt, b.ResourceName(), b.Bundled)
	if err != nil {
		return nil, err
	}
	flat.Retain() // published on the bundle: future processes will read it
	b.Data = flat
	return flat, nil
}
