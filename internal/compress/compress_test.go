package compress

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gpf-go/gpf/internal/fastq"
	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/sam"
)

func TestBitIORoundTrip(t *testing.T) {
	var w bitWriter
	w.writeBits(0b101, 3)
	w.writeBits(0b11110000, 8)
	w.writeBits(0b1, 1)
	data := w.finish()
	r := &bitReader{buf: data}
	if v, ok := r.readBits(3); !ok || v != 0b101 {
		t.Fatalf("read 3 bits = %b", v)
	}
	if v, ok := r.readBits(8); !ok || v != 0b11110000 {
		t.Fatalf("read 8 bits = %b", v)
	}
	if v, ok := r.readBits(1); !ok || v != 1 {
		t.Fatalf("read 1 bit = %b", v)
	}
}

func TestBitReaderExhaustion(t *testing.T) {
	r := &bitReader{buf: []byte{0xFF}}
	if _, ok := r.readBits(9); ok {
		t.Fatal("reading past end should fail")
	}
}

func TestHuffmanRoundTrip(t *testing.T) {
	symbols := []int{0, 1, 1, 2, 2, 2, 2, 3, 0, 1}
	lens, payload, err := huffmanEncode(symbols, 16, 15)
	if err != nil {
		t.Fatal(err)
	}
	back, err := huffmanDecode(lens, payload, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(symbols) {
		t.Fatalf("decoded %d symbols, want %d", len(back), len(symbols))
	}
	for i := range symbols {
		if back[i] != symbols[i] {
			t.Fatalf("symbol %d = %d, want %d", i, back[i], symbols[i])
		}
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	symbols := []int{5, 5, 5}
	lens, payload, err := huffmanEncode(symbols, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	back, err := huffmanDecode(lens, payload, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[0] != 5 {
		t.Fatalf("decoded %v", back)
	}
}

func TestHuffmanEmptyInput(t *testing.T) {
	// Only EOF present.
	lens, payload, err := huffmanEncode(nil, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	back, err := huffmanDecode(lens, payload, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("decoded %v, want empty", back)
	}
}

func TestHuffmanBadSymbol(t *testing.T) {
	if _, _, err := huffmanEncode([]int{99}, 4, 3); err == nil {
		t.Fatal("out-of-alphabet symbol should error")
	}
}

func TestHuffmanCompressesSkewedData(t *testing.T) {
	// Highly skewed distribution should compress well below 8 bits/symbol.
	symbols := make([]int, 10000)
	rng := rand.New(rand.NewSource(1))
	for i := range symbols {
		if rng.Float64() < 0.9 {
			symbols[i] = 0
		} else {
			symbols[i] = rng.Intn(64)
		}
	}
	_, payload, err := huffmanEncode(symbols, 256, 255)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) > len(symbols)/2 {
		t.Fatalf("payload %d bytes for %d skewed symbols; expected < half", len(payload), len(symbols))
	}
}

func TestPackSeqRoundTrip(t *testing.T) {
	seq := []byte("ACGTACGTTTGGCCAA")
	packed, err := packSeq(nil, seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) != 4 {
		t.Fatalf("packed %d bytes, want 4", len(packed))
	}
	back, consumed, err := unpackSeq(packed, len(seq))
	if err != nil {
		t.Fatal(err)
	}
	if consumed != 4 || !bytes.Equal(back, seq) {
		t.Fatalf("unpacked %q (consumed %d)", back, consumed)
	}
}

func TestPackSeqRejectsN(t *testing.T) {
	if _, err := packSeq(nil, []byte("ACGN")); err == nil {
		t.Fatal("packSeq must reject N")
	}
}

func TestEncodeDecodeSeq(t *testing.T) {
	seq := []byte("ACGTACG") // non-multiple of 4
	enc, err := EncodeSeq(seq)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSeq(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, seq) {
		t.Fatalf("round trip = %q", back)
	}
	// ~4x compression: 7 bases in 1 varint byte + 2 payload bytes.
	if len(enc) > 3 {
		t.Fatalf("encoded %d bytes", len(enc))
	}
}

func TestConvertRestoreSpecials(t *testing.T) {
	seq := []byte("GGTTNCCTA")
	qual := []byte("CCCB#FFFF")
	s, q, err := convertSpecials(seq, qual)
	if err != nil {
		t.Fatal(err)
	}
	if s[4] != 'A' || q[4] != qualNMarker {
		t.Fatalf("conversion: %q %v", s, q)
	}
	// Original untouched.
	if seq[4] != 'N' {
		t.Fatal("convertSpecials must not mutate input")
	}
	restoreSpecials(s, q)
	if s[4] != 'N' || q[4] != qualNRestore {
		t.Fatalf("restore: %q %q", s, q)
	}
	if !bytes.Equal(s, seq) || !bytes.Equal(q, qual) {
		t.Fatalf("full round trip: %q %q", s, q)
	}
}

func TestQualBlockRoundTrip(t *testing.T) {
	quals := [][]byte{[]byte("CCCB#FFFF"), []byte("IIIIIHHH"), {}}
	enc, err := EncodeQualBlock(quals)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeQualBlock(enc, []int{9, 8, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := range quals {
		if !bytes.Equal(back[i], quals[i]) {
			t.Fatalf("qual %d = %q, want %q", i, back[i], quals[i])
		}
	}
}

func TestQualBlockWrongLengths(t *testing.T) {
	enc, err := EncodeQualBlock([][]byte{[]byte("IIII")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeQualBlock(enc, []int{5}); err == nil {
		t.Fatal("longer lengths than stream should error")
	}
	if _, err := DecodeQualBlock(enc, []int{3}); err == nil {
		t.Fatal("shorter lengths than stream should error")
	}
}

func TestSeqQualBlockRoundTrip(t *testing.T) {
	seqs := [][]byte{[]byte("GGTTNCCTA"), []byte("ACGT"), []byte("NNNN")}
	quals := [][]byte{[]byte("CCCB#FFFF"), []byte("IIII"), []byte("####")}
	enc, err := EncodeSeqQualBlock(seqs, quals)
	if err != nil {
		t.Fatal(err)
	}
	backSeqs, backQuals, err := DecodeSeqQualBlock(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqs {
		if !bytes.Equal(backSeqs[i], seqs[i]) {
			t.Fatalf("seq %d = %q, want %q", i, backSeqs[i], seqs[i])
		}
		if !bytes.Equal(backQuals[i], quals[i]) {
			t.Fatalf("qual %d = %q, want %q", i, backQuals[i], quals[i])
		}
	}
}

func TestSeqQualBlockMismatch(t *testing.T) {
	if _, err := EncodeSeqQualBlock([][]byte{[]byte("AC")}, nil); err == nil {
		t.Fatal("count mismatch should error")
	}
	if _, err := EncodeSeqQualBlock([][]byte{[]byte("AC")}, [][]byte{[]byte("I")}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

// Property: seq/qual block round-trip is the identity for random reads whose
// N bases carry '#' quality (the sequencer convention the codec normalizes to).
func TestSeqQualBlockProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%8) + 1
		seqs := make([][]byte, count)
		quals := make([][]byte, count)
		for i := 0; i < count; i++ {
			l := rng.Intn(150) + 1
			s := make([]byte, l)
			q := make([]byte, l)
			for j := 0; j < l; j++ {
				if rng.Float64() < 0.02 {
					s[j] = 'N'
					q[j] = '#'
				} else {
					s[j] = genome.Alphabet[rng.Intn(4)]
					q[j] = byte(33 + rng.Intn(42))
				}
			}
			seqs[i], quals[i] = s, q
		}
		enc, err := EncodeSeqQualBlock(seqs, quals)
		if err != nil {
			return false
		}
		bs, bq, err := DecodeSeqQualBlock(enc)
		if err != nil {
			return false
		}
		for i := range seqs {
			if !bytes.Equal(bs[i], seqs[i]) || !bytes.Equal(bq[i], quals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func simulatedPairs(t *testing.T, n int) []fastq.Pair {
	t.Helper()
	ref := genome.Synthesize(genome.DefaultSynthConfig(31, 30000, 1))
	donor := genome.Mutate(ref, genome.DefaultMutateConfig(32))
	pairs := fastq.Simulate(donor, fastq.DefaultSimConfig(33, 10))
	if len(pairs) < n {
		t.Fatalf("only %d pairs simulated", len(pairs))
	}
	return pairs[:n]
}

func TestGPFPairCodecRoundTrip(t *testing.T) {
	pairs := simulatedPairs(t, 100)
	var codec GPFPairCodec
	enc, err := codec.Marshal(pairs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := codec.Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pairs) {
		t.Fatalf("decoded %d pairs", len(back))
	}
	for i := range pairs {
		if back[i].R1.Name != pairs[i].R1.Name ||
			!bytes.Equal(back[i].R1.Seq, pairs[i].R1.Seq) ||
			!bytes.Equal(back[i].R1.Qual, pairs[i].R1.Qual) ||
			!bytes.Equal(back[i].R2.Seq, pairs[i].R2.Seq) {
			t.Fatalf("pair %d mismatch", i)
		}
	}
}

func TestCodecCompressionOrdering(t *testing.T) {
	// The paper's claim (§4.2, Table 3): the GPF codec beats generic
	// serializers on genomic records. Verify gpf < field < gob sizes.
	pairs := simulatedPairs(t, 200)
	gpfEnc, err := GPFPairCodec{}.Marshal(pairs)
	if err != nil {
		t.Fatal(err)
	}
	fieldEnc, err := FieldPairCodec{}.Marshal(pairs)
	if err != nil {
		t.Fatal(err)
	}
	gobEnc, err := GobCodec[fastq.Pair]{}.Marshal(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !(len(gpfEnc) < len(fieldEnc) && len(fieldEnc) < len(gobEnc)) {
		t.Fatalf("sizes gpf=%d field=%d gob=%d; want gpf < field < gob",
			len(gpfEnc), len(fieldEnc), len(gobEnc))
	}
	// The paper reports ~45% reduction for FASTQ RDDs (Table 3: 20.0->11.1GB).
	if r := Ratio(len(fieldEnc), len(gpfEnc)); r < 1.5 {
		t.Fatalf("gpf/field ratio = %.2f; want >= 1.5", r)
	}
}

func TestFieldPairCodecRoundTrip(t *testing.T) {
	pairs := simulatedPairs(t, 50)
	enc, err := FieldPairCodec{}.Marshal(pairs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FieldPairCodec{}.Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if back[i].R1.Name != pairs[i].R1.Name || !bytes.Equal(back[i].R2.Qual, pairs[i].R2.Qual) {
			t.Fatalf("pair %d mismatch", i)
		}
	}
}

func sampleSAMRecords() []sam.Record {
	c1, _ := sam.ParseCigar("50M")
	c2, _ := sam.ParseCigar("10S30M2D10M")
	return []sam.Record{
		{Name: "r1", Flag: sam.FlagPaired, RefID: 0, Pos: 100, MapQ: 60, Cigar: c1,
			MateRef: 0, MatePos: 300, TempLen: 250,
			Seq: bytes.Repeat([]byte("ACGT"), 13)[:50], Qual: bytes.Repeat([]byte("I"), 50),
			Tags: map[string]string{"RG": "rg1", "LB": "lib1"}},
		{Name: "r2", Flag: sam.FlagUnmapped, RefID: -1, Pos: -1, MateRef: -1, MatePos: -1,
			Seq: []byte("NNNNA"), Qual: []byte("####I")},
		{Name: "r3", Flag: sam.FlagReverse, RefID: 1, Pos: 5, MapQ: 13, Cigar: c2,
			MateRef: -1, MatePos: -1, Seq: bytes.Repeat([]byte("G"), 52), Qual: bytes.Repeat([]byte("H"), 52)},
	}
}

func samEqual(a, b *sam.Record) bool {
	if a.Name != b.Name || a.Flag != b.Flag || a.RefID != b.RefID || a.Pos != b.Pos ||
		a.MapQ != b.MapQ || a.Cigar.String() != b.Cigar.String() ||
		a.MateRef != b.MateRef || a.MatePos != b.MatePos || a.TempLen != b.TempLen ||
		!bytes.Equal(a.Seq, b.Seq) || !bytes.Equal(a.Qual, b.Qual) {
		return false
	}
	if len(a.Tags) != len(b.Tags) {
		return false
	}
	for k, v := range a.Tags {
		if b.Tags[k] != v {
			return false
		}
	}
	return true
}

func TestGPFSAMCodecRoundTrip(t *testing.T) {
	records := sampleSAMRecords()
	enc, err := GPFSAMCodec{}.Marshal(records)
	if err != nil {
		t.Fatal(err)
	}
	back, err := GPFSAMCodec{}.Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(records) {
		t.Fatalf("decoded %d records", len(back))
	}
	for i := range records {
		if !samEqual(&records[i], &back[i]) {
			t.Fatalf("record %d mismatch:\n%+v\n%+v", i, records[i], back[i])
		}
	}
}

func TestFieldSAMCodecRoundTrip(t *testing.T) {
	records := sampleSAMRecords()
	enc, err := FieldSAMCodec{}.Marshal(records)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FieldSAMCodec{}.Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range records {
		if !samEqual(&records[i], &back[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestGobCodecRoundTrip(t *testing.T) {
	type item struct{ A, B int }
	items := []item{{1, 2}, {3, 4}}
	enc, err := GobCodec[item]{}.Marshal(items)
	if err != nil {
		t.Fatal(err)
	}
	back, err := GobCodec[item]{}.Unmarshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[1].B != 4 {
		t.Fatalf("decoded %v", back)
	}
}

func TestUnmarshalCorruptData(t *testing.T) {
	if _, err := (GPFPairCodec{}).Unmarshal([]byte{0xFF}); err == nil {
		t.Fatal("corrupt pair data should error")
	}
	if _, err := (GPFSAMCodec{}).Unmarshal([]byte{0x01, 0x00}); err == nil {
		t.Fatal("corrupt sam data should error")
	}
	if _, err := (GobCodec[int]{}).Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatal("corrupt gob data should error")
	}
	if _, err := (FieldPairCodec{}).Unmarshal([]byte{0x02, 0x05}); err == nil {
		t.Fatal("corrupt field data should error")
	}
}

// TestReadSAMFixedBoundsTagCount: a corrupt tag count must error before it
// sizes the tag map — the allocate-before-validate shape gpflint/alloclen
// guards against (pre-fix this line allocated a map hinted at 2^40 entries).
func TestReadSAMFixedBoundsTagCount(t *testing.T) {
	rec := sam.Record{Name: "r1"}
	enc := appendSAMFixed(nil, &rec)
	// The encoding ends with the tag count (a single 0x00 varint); replace
	// it with an absurd count and no tag payload behind it.
	enc = binary.AppendUvarint(enc[:len(enc)-1], 1<<40)
	var got sam.Record
	if _, err := readSAMFixed(enc, &got); err == nil {
		t.Fatal("tag count exceeding the payload must error, not allocate")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(100, 50) != 2 {
		t.Fatal("ratio broken")
	}
	if Ratio(100, 0) != 0 {
		t.Fatal("zero compressed size should yield 0")
	}
}

func BenchmarkGPFPairCodecMarshal(b *testing.B) {
	ref := genome.Synthesize(genome.DefaultSynthConfig(31, 30000, 1))
	donor := genome.Mutate(ref, genome.DefaultMutateConfig(32))
	pairs := fastq.Simulate(donor, fastq.DefaultSimConfig(33, 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (GPFPairCodec{}).Marshal(pairs); err != nil {
			b.Fatal(err)
		}
	}
}
