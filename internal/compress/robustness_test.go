package compress

import (
	"testing"
	"testing/quick"

	"github.com/gpf-go/gpf/internal/fastq"
	"github.com/gpf-go/gpf/internal/sam"
)

// Unmarshal must never panic on arbitrary bytes — corrupted shuffle blocks
// surface as errors, not crashes.
func TestUnmarshalRobustness(t *testing.T) {
	f := func(data []byte) bool {
		if _, err := (GPFPairCodec{}).Unmarshal(data); err == nil && len(data) == 0 {
			return false // empty input cannot be a valid block
		}
		GPFSAMCodec{}.Unmarshal(data)
		FieldPairCodec{}.Unmarshal(data)
		FieldSAMCodec{}.Unmarshal(data)
		GobCodec[fastq.Pair]{}.Unmarshal(data)
		GobCodec[sam.Record]{}.Unmarshal(data)
		DecodeSeqQualBlock(data)
		DecodeSeq(data)
		DecodeQualBlock(data, []int{4})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
