package compress

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"

	"github.com/gpf-go/gpf/internal/bufpool"
	"github.com/gpf-go/gpf/internal/fastq"
	"github.com/gpf-go/gpf/internal/sam"
)

// This file provides partition serializers used by the engine to persist
// datasets "in serialized form" (§4.2: GPF stores each RDD partition as one
// large byte array). Three tiers mirror the paper's comparison:
//
//   - GPF codecs: genomic-aware (2-bit sequences, delta+Huffman qualities).
//   - Field codecs: fast binary field packing without genomic modeling —
//     the stand-in for Kryo.
//   - Gob codec: Go's generic reflective serializer — the stand-in for Java
//     serialization.

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readString(data []byte) (string, []byte, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < l {
		return "", nil, fmt.Errorf("compress: truncated string")
	}
	return string(data[n : n+int(l)]), data[n+int(l):], nil
}

func appendBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func readBytes(data []byte) ([]byte, []byte, error) {
	l, n := binary.Uvarint(data)
	if n <= 0 || uint64(len(data)-n) < l {
		return nil, nil, fmt.Errorf("compress: truncated bytes")
	}
	if l == 0 {
		return nil, data[n:], nil
	}
	out := make([]byte, l)
	copy(out, data[n:n+int(l)])
	return out, data[n+int(l):], nil
}

func readCount(data []byte, perItemMin int) (int, []byte, error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("compress: bad record count")
	}
	rest := data[n:]
	if perItemMin < 1 {
		perItemMin = 1
	}
	// A count claiming more records than the remaining bytes could possibly
	// hold marks a corrupted block; reject before allocating.
	if count > uint64(len(rest)/perItemMin)+1 {
		return 0, nil, fmt.Errorf("compress: record count %d exceeds payload", count)
	}
	return int(count), rest, nil
}

// GPFPairCodec serializes FASTQ pairs with the genomic codec.
type GPFPairCodec struct{}

// Name identifies the codec in metrics output.
func (GPFPairCodec) Name() string { return "gpf" }

// Marshal encodes a batch of pairs: names first, then one seq/qual block
// covering both mates of every pair.
func (GPFPairCodec) Marshal(pairs []fastq.Pair) ([]byte, error) {
	out := binary.AppendUvarint(nil, uint64(len(pairs)))
	seqs := make([][]byte, 0, 2*len(pairs))
	quals := make([][]byte, 0, 2*len(pairs))
	for i := range pairs {
		out = appendString(out, pairs[i].R1.Name)
		out = appendString(out, pairs[i].R2.Name)
		seqs = append(seqs, pairs[i].R1.Seq, pairs[i].R2.Seq)
		quals = append(quals, pairs[i].R1.Qual, pairs[i].R2.Qual)
	}
	block, err := EncodeSeqQualBlock(seqs, quals)
	if err != nil {
		return nil, err
	}
	return append(out, block...), nil
}

// Unmarshal inverts Marshal.
func (GPFPairCodec) Unmarshal(data []byte) ([]fastq.Pair, error) {
	count, data, err := readCount(data, 2)
	if err != nil {
		return nil, err
	}
	pairs := make([]fastq.Pair, count)
	for i := range pairs {
		if pairs[i].R1.Name, data, err = readString(data); err != nil {
			return nil, err
		}
		if pairs[i].R2.Name, data, err = readString(data); err != nil {
			return nil, err
		}
	}
	seqs, quals, err := DecodeSeqQualBlock(data)
	if err != nil {
		return nil, err
	}
	if len(seqs) != int(2*count) {
		return nil, fmt.Errorf("compress: block has %d seqs, want %d", len(seqs), 2*count)
	}
	for i := range pairs {
		pairs[i].R1.Seq, pairs[i].R1.Qual = seqs[2*i], quals[2*i]
		pairs[i].R2.Seq, pairs[i].R2.Qual = seqs[2*i+1], quals[2*i+1]
	}
	return pairs, nil
}

// FieldPairCodec packs pair fields in binary with raw seq/qual bytes.
type FieldPairCodec struct{}

// Name identifies the codec in metrics output.
func (FieldPairCodec) Name() string { return "field" }

// Marshal encodes pairs field by field without genomic compression.
func (FieldPairCodec) Marshal(pairs []fastq.Pair) ([]byte, error) {
	out := binary.AppendUvarint(nil, uint64(len(pairs)))
	for i := range pairs {
		for _, r := range []*fastq.Record{&pairs[i].R1, &pairs[i].R2} {
			out = appendString(out, r.Name)
			out = appendBytes(out, r.Seq)
			out = appendBytes(out, r.Qual)
		}
	}
	return out, nil
}

// Unmarshal inverts Marshal.
func (FieldPairCodec) Unmarshal(data []byte) ([]fastq.Pair, error) {
	count, data, err := readCount(data, 2)
	if err != nil {
		return nil, err
	}
	pairs := make([]fastq.Pair, count)
	for i := range pairs {
		for _, r := range []*fastq.Record{&pairs[i].R1, &pairs[i].R2} {
			if r.Name, data, err = readString(data); err != nil {
				return nil, err
			}
			if r.Seq, data, err = readBytes(data); err != nil {
				return nil, err
			}
			if r.Qual, data, err = readBytes(data); err != nil {
				return nil, err
			}
		}
	}
	return pairs, nil
}

// GPFSAMCodec serializes SAM records with the genomic codec for seq/qual and
// binary packing for alignment fields.
type GPFSAMCodec struct{}

// Name identifies the codec in metrics output.
func (GPFSAMCodec) Name() string { return "gpf" }

func appendSAMFixed(out []byte, r *sam.Record) []byte {
	out = appendString(out, r.Name)
	out = binary.AppendUvarint(out, uint64(r.Flag))
	out = binary.AppendVarint(out, int64(r.RefID))
	out = binary.AppendVarint(out, int64(r.Pos))
	out = append(out, r.MapQ)
	out = binary.AppendUvarint(out, uint64(len(r.Cigar)))
	for _, op := range r.Cigar {
		out = binary.AppendUvarint(out, uint64(op.Len))
		out = append(out, op.Op)
	}
	out = binary.AppendVarint(out, int64(r.MateRef))
	out = binary.AppendVarint(out, int64(r.MatePos))
	out = binary.AppendVarint(out, int64(r.TempLen))
	out = binary.AppendUvarint(out, uint64(len(r.Tags)))
	// Serialize tags in sorted key order: map iteration order is randomized
	// per run, and shuffle blocks must be byte-identical across runs for
	// reproducible replays (gpflint/mapiter enforces this).
	if len(r.Tags) > 0 {
		keys := make([]string, 0, len(r.Tags))
		for k := range r.Tags {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out = appendString(out, k)
			out = appendString(out, r.Tags[k])
		}
	}
	return out
}

func readSAMFixed(data []byte, r *sam.Record) ([]byte, error) {
	var err error
	if r.Name, data, err = readString(data); err != nil {
		return nil, err
	}
	flag, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("compress: bad flag")
	}
	r.Flag = uint16(flag)
	data = data[n:]
	readV := func() (int64, error) {
		v, n := binary.Varint(data)
		if n <= 0 {
			return 0, fmt.Errorf("compress: truncated varint")
		}
		data = data[n:]
		return v, nil
	}
	var v int64
	if v, err = readV(); err != nil {
		return nil, err
	}
	r.RefID = int32(v)
	if v, err = readV(); err != nil {
		return nil, err
	}
	r.Pos = int32(v)
	if len(data) < 1 {
		return nil, fmt.Errorf("compress: truncated mapq")
	}
	r.MapQ = data[0]
	data = data[1:]
	nOps, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("compress: bad cigar count")
	}
	data = data[n:]
	if nOps > uint64(len(data)) {
		return nil, fmt.Errorf("compress: cigar count %d exceeds payload", nOps)
	}
	if nOps > 0 {
		r.Cigar = make(sam.Cigar, nOps)
		for i := range r.Cigar {
			l, n := binary.Uvarint(data)
			if n <= 0 || len(data) < n+1 {
				return nil, fmt.Errorf("compress: truncated cigar")
			}
			r.Cigar[i] = sam.CigarOp{Len: int(l), Op: data[n]}
			data = data[n+1:]
		}
	} else {
		r.Cigar = nil
	}
	if v, err = readV(); err != nil {
		return nil, err
	}
	r.MateRef = int32(v)
	if v, err = readV(); err != nil {
		return nil, err
	}
	r.MatePos = int32(v)
	if v, err = readV(); err != nil {
		return nil, err
	}
	r.TempLen = int32(v)
	nTags, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("compress: bad tag count")
	}
	data = data[n:]
	// Each tag is two length-prefixed strings (≥ 2 bytes); bound the count by
	// the payload before the map allocation sizes itself from it.
	if nTags > uint64(len(data)) {
		return nil, fmt.Errorf("compress: tag count %d exceeds payload", nTags)
	}
	if nTags > 0 {
		r.Tags = make(map[string]string, nTags)
		for i := uint64(0); i < nTags; i++ {
			var k, val string
			if k, data, err = readString(data); err != nil {
				return nil, err
			}
			if val, data, err = readString(data); err != nil {
				return nil, err
			}
			r.Tags[k] = val
		}
	} else {
		r.Tags = nil
	}
	return data, nil
}

// Marshal encodes SAM records: fixed fields first, then one seq/qual block.
func (GPFSAMCodec) Marshal(records []sam.Record) ([]byte, error) {
	out := binary.AppendUvarint(nil, uint64(len(records)))
	seqs := make([][]byte, len(records))
	quals := make([][]byte, len(records))
	for i := range records {
		out = appendSAMFixed(out, &records[i])
		seqs[i] = records[i].Seq
		quals[i] = records[i].Qual
	}
	block, err := EncodeSeqQualBlock(seqs, quals)
	if err != nil {
		return nil, err
	}
	return append(out, block...), nil
}

// Unmarshal inverts Marshal.
func (GPFSAMCodec) Unmarshal(data []byte) ([]sam.Record, error) {
	count, data, err := readCount(data, 8)
	if err != nil {
		return nil, err
	}
	records := make([]sam.Record, count)
	for i := range records {
		if data, err = readSAMFixed(data, &records[i]); err != nil {
			return nil, fmt.Errorf("compress: record %d: %w", i, err)
		}
	}
	seqs, quals, err := DecodeSeqQualBlock(data)
	if err != nil {
		return nil, err
	}
	if len(seqs) != int(count) {
		return nil, fmt.Errorf("compress: block has %d seqs, want %d", len(seqs), count)
	}
	for i := range records {
		records[i].Seq, records[i].Qual = seqs[i], quals[i]
	}
	return records, nil
}

// FieldSAMCodec packs SAM records in binary with raw seq/qual.
type FieldSAMCodec struct{}

// Name identifies the codec in metrics output.
func (FieldSAMCodec) Name() string { return "field" }

// Marshal encodes records field by field without genomic compression.
func (FieldSAMCodec) Marshal(records []sam.Record) ([]byte, error) {
	out := binary.AppendUvarint(nil, uint64(len(records)))
	for i := range records {
		out = appendSAMFixed(out, &records[i])
		out = appendBytes(out, records[i].Seq)
		out = appendBytes(out, records[i].Qual)
	}
	return out, nil
}

// Unmarshal inverts Marshal.
func (FieldSAMCodec) Unmarshal(data []byte) ([]sam.Record, error) {
	count, data, err := readCount(data, 8)
	if err != nil {
		return nil, err
	}
	records := make([]sam.Record, count)
	for i := range records {
		if data, err = readSAMFixed(data, &records[i]); err != nil {
			return nil, fmt.Errorf("compress: record %d: %w", i, err)
		}
		if records[i].Seq, data, err = readBytes(data); err != nil {
			return nil, err
		}
		if records[i].Qual, data, err = readBytes(data); err != nil {
			return nil, err
		}
	}
	return records, nil
}

// GobCodec is the generic reflective serializer used as the Java-like
// comparator in Table 3-style measurements.
type GobCodec[T any] struct{}

// Name identifies the codec in metrics output.
func (GobCodec[T]) Name() string { return "gob" }

// Marshal encodes a batch through encoding/gob. The encode buffer is pooled:
// gob grows its scratch buffer through several doublings per partition, which
// dominates shuffle-side allocations without reuse.
func (GobCodec[T]) Marshal(items []T) ([]byte, error) {
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	if err := gob.NewEncoder(buf).Encode(items); err != nil {
		return nil, fmt.Errorf("compress: gob encode: %w", err)
	}
	return bufpool.Bytes(buf), nil
}

// Unmarshal inverts Marshal.
func (GobCodec[T]) Unmarshal(data []byte) ([]T, error) {
	var items []T
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&items); err != nil {
		return nil, fmt.Errorf("compress: gob decode: %w", err)
	}
	return items, nil
}
