// Package compress implements GPF's genomic data compression (§4.2 of the
// paper): 2-bit sequence encoding with special-character exceptions routed
// through the quality field (Fig 4, after Deorowicz), quality-score delta
// encoding followed by Huffman coding with an EOF symbol (Figs 5-6), and
// partition-level codecs that store whole record batches as single byte
// arrays — the serialized in-memory representation the GPF engine keeps
// resident and shuffles between workers.
//
// Two comparator codecs are included for the paper's baselines: a gob-based
// generic codec (standing in for Java serialization) and a fast field codec
// without genomic modeling (standing in for Kryo).
package compress

// bitWriter packs bits MSB-first into a byte slice through a 64-bit
// accumulator (the hot path of Huffman encoding).
type bitWriter struct {
	buf  []byte
	acc  uint64
	nAcc uint // bits held in acc
}

// writeBits appends the low n bits of v (MSB of those n first). n must be
// at most 32.
func (w *bitWriter) writeBits(v uint32, n uint) {
	w.acc = w.acc<<n | uint64(v)&((1<<n)-1)
	w.nAcc += n
	for w.nAcc >= 8 {
		w.nAcc -= 8
		w.buf = append(w.buf, byte(w.acc>>w.nAcc))
	}
}

// finish flushes a final partial byte (zero padded) and returns the buffer.
func (w *bitWriter) finish() []byte {
	if w.nAcc > 0 {
		w.buf = append(w.buf, byte(w.acc<<(8-w.nAcc)))
		w.acc, w.nAcc = 0, 0
	}
	return w.buf
}

// bitReader consumes bits MSB-first from a byte slice through a 64-bit
// accumulator.
type bitReader struct {
	buf  []byte
	pos  int    // next byte index
	acc  uint64 // bits buffered, MSB-aligned to bit nAcc-1
	nAcc uint
}

// fill tops up the accumulator to at least want bits when input remains.
func (r *bitReader) fill(want uint) {
	for r.nAcc < want && r.pos < len(r.buf) {
		r.acc = r.acc<<8 | uint64(r.buf[r.pos])
		r.pos++
		r.nAcc += 8
	}
}

// readBit returns the next bit; ok is false when input is exhausted.
func (r *bitReader) readBit() (bit byte, ok bool) {
	if r.nAcc == 0 {
		r.fill(1)
		if r.nAcc == 0 {
			return 0, false
		}
	}
	r.nAcc--
	return byte(r.acc>>r.nAcc) & 1, true
}

// readBits reads n bits MSB-first (n <= 32).
func (r *bitReader) readBits(n uint) (uint32, bool) {
	r.fill(n)
	if r.nAcc < n {
		return 0, false
	}
	r.nAcc -= n
	return uint32(r.acc>>r.nAcc) & ((1 << n) - 1), true
}

// peek returns the next n bits without consuming them, zero-padding past
// end of input; avail reports how many real bits back the peek.
func (r *bitReader) peek(n uint) (bits uint32, avail uint) {
	r.fill(n)
	avail = r.nAcc
	if avail >= n {
		return uint32(r.acc>>(r.nAcc-n)) & ((1 << n) - 1), n
	}
	// Pad with zeros on the right.
	return uint32(r.acc<<(n-r.nAcc)) & ((1 << n) - 1), avail
}

// skip consumes n buffered bits (n must not exceed the buffered count).
func (r *bitReader) skip(n uint) {
	r.nAcc -= n
}
