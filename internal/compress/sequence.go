package compress

import (
	"encoding/binary"
	"fmt"

	"github.com/gpf-go/gpf/internal/genome"
)

// The sequence codec implements Fig 4 of the paper: bases are stored in
// 2-bit codes (A:00 C:01 G:10 T:11 per genome.BaseCode), the sequence length
// precedes the packed payload, and special characters (N) are converted to A
// with the corresponding quality byte replaced by the out-of-band marker
// qualNMarker. The quality codec (quality.go) carries the marker through, so
// the decompressor recognizes "A with marker quality" and restores N.
//
// Restoration convention: an N base's quality is rewritten to '#' (Phred 2),
// the standard no-call quality. The codec is therefore lossless for inputs
// where N bases already carry '#' — which sequencers emit and the fastq
// simulator guarantees — and normalizing otherwise.

// qualNMarker is the out-of-band quality value marking a converted N base.
// Legal FASTQ quality bytes are [33,126] (§4.2 footnote 1), so 0 is safe.
const qualNMarker = 0

// qualNRestore is the quality byte written back for an N base on decode.
const qualNRestore = '#'

// packSeq appends the 2-bit packed form of seq to dst. seq must contain only
// ACGT (N conversion happens earlier).
func packSeq(dst []byte, seq []byte) ([]byte, error) {
	var cur byte
	var n uint
	for _, b := range seq {
		code := genome.BaseCode(b)
		if code < 0 {
			return nil, fmt.Errorf("compress: unpackable base %q", b)
		}
		cur = cur<<2 | byte(code)
		n++
		if n == 4 {
			dst = append(dst, cur)
			cur, n = 0, 0
		}
	}
	if n > 0 {
		dst = append(dst, cur<<(2*(4-n)))
	}
	return dst, nil
}

// unpack4Tab expands one packed byte into its four bases.
var unpack4Tab = func() (t [256][4]byte) {
	for b := 0; b < 256; b++ {
		for i := 0; i < 4; i++ {
			t[b][i] = genome.CodeBase((b >> uint(6-2*i)) & 3)
		}
	}
	return
}()

// unpackSeq decodes length bases from packed, returning the bases and the
// number of bytes consumed.
func unpackSeq(packed []byte, length int) ([]byte, int, error) {
	need := (length + 3) / 4
	if len(packed) < need {
		return nil, 0, fmt.Errorf("compress: packed sequence truncated: need %d bytes, have %d", need, len(packed))
	}
	out := make([]byte, need*4)
	for i := 0; i < need; i++ {
		copy(out[i*4:], unpack4Tab[packed[i]][:])
	}
	return out[:length], need, nil
}

// convertSpecials returns seq and qual with every non-ACGT base rewritten to
// 'A' and its quality to the marker, per Fig 4. Clean sequences (the common
// case) are returned as-is without copying.
func convertSpecials(seq, qual []byte) ([]byte, []byte, error) {
	if len(seq) != len(qual) {
		return nil, nil, fmt.Errorf("compress: seq len %d != qual len %d", len(seq), len(qual))
	}
	first := -1
	for i, b := range seq {
		if genome.BaseCode(b) < 0 {
			first = i
			break
		}
	}
	if first == -1 {
		return seq, qual, nil
	}
	outSeq := append([]byte(nil), seq...)
	outQual := append([]byte(nil), qual...)
	for i := first; i < len(outSeq); i++ {
		if genome.BaseCode(outSeq[i]) < 0 {
			outSeq[i] = 'A'
			outQual[i] = qualNMarker
		}
	}
	return outSeq, outQual, nil
}

// restoreSpecials rewrites marker positions back to N/'#' in place.
func restoreSpecials(seq, qual []byte) {
	for i, q := range qual {
		if q == qualNMarker {
			seq[i] = 'N'
			qual[i] = qualNRestore
		}
	}
}

// Pack2Bit appends the 2-bit packed form of seq to dst, substituting code 0
// ('A') for any non-ACGT byte instead of failing. Callers that must restore
// the original bytes (e.g. the columnar codec's seq column) record the
// substituted positions out of band; packSeq remains the strict variant used
// by the quality-coupled Fig 4 path.
func Pack2Bit(dst, seq []byte) []byte {
	var cur byte
	var n uint
	for _, b := range seq {
		code := genome.BaseCode(b)
		if code < 0 {
			code = 0
		}
		cur = cur<<2 | byte(code)
		n++
		if n == 4 {
			dst = append(dst, cur)
			cur, n = 0, 0
		}
	}
	if n > 0 {
		dst = append(dst, cur<<(2*(4-n)))
	}
	return dst
}

// Unpack2Bit decodes len(dst) bases from packed into dst (the caller's arena
// slab) and returns the number of packed bytes consumed. Unlike unpackSeq it
// never allocates: the 4-base tail that would overrun dst is staged through a
// stack temporary.
func Unpack2Bit(dst, packed []byte) (int, error) {
	length := len(dst)
	need := (length + 3) / 4
	if len(packed) < need {
		return 0, fmt.Errorf("compress: packed sequence truncated: need %d bytes, have %d", need, len(packed))
	}
	i := 0
	for ; i+4 <= length; i += 4 {
		copy(dst[i:i+4], unpack4Tab[packed[i/4]][:])
	}
	if i < length {
		var tail [4]byte
		copy(tail[:], unpack4Tab[packed[i/4]][:])
		copy(dst[i:], tail[:length-i])
	}
	return need, nil
}

// EncodeSeq compresses one sequence (no quality coupling): uvarint length +
// 2-bit payload. Ns are not allowed here; use the block codec for reads with
// quality-coupled N handling. Exposed for reference-sequence storage.
func EncodeSeq(seq []byte) ([]byte, error) {
	out := binary.AppendUvarint(nil, uint64(len(seq)))
	return packSeq(out, seq)
}

// DecodeSeq inverts EncodeSeq.
func DecodeSeq(data []byte) ([]byte, error) {
	length, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("compress: bad sequence length header")
	}
	seq, _, err := unpackSeq(data[n:], int(length))
	return seq, err
}
