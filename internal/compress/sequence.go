package compress

import (
	"encoding/binary"
	"fmt"
	"slices"

	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/kernels"
)

// The sequence codec implements Fig 4 of the paper: bases are stored in
// 2-bit codes (A:00 C:01 G:10 T:11 per genome.BaseCode), the sequence length
// precedes the packed payload, and special characters (N) are converted to A
// with the corresponding quality byte replaced by the out-of-band marker
// qualNMarker. The quality codec (quality.go) carries the marker through, so
// the decompressor recognizes "A with marker quality" and restores N.
//
// Restoration convention: an N base's quality is rewritten to '#' (Phred 2),
// the standard no-call quality. The codec is therefore lossless for inputs
// where N bases already carry '#' — which sequencers emit and the fastq
// simulator guarantees — and normalizing otherwise.

// qualNMarker is the out-of-band quality value marking a converted N base.
// Legal FASTQ quality bytes are [33,126] (§4.2 footnote 1), so 0 is safe.
const qualNMarker = 0

// qualNRestore is the quality byte written back for an N base on decode.
const qualNRestore = '#'

// packSeq appends the 2-bit packed form of seq to dst. seq must contain only
// ACGT (N conversion happens earlier).
func packSeq(dst []byte, seq []byte) ([]byte, error) {
	var cur byte
	var n uint
	for _, b := range seq {
		code := genome.BaseCode(b)
		if code < 0 {
			return nil, fmt.Errorf("compress: unpackable base %q", b)
		}
		cur = cur<<2 | byte(code)
		n++
		if n == 4 {
			dst = append(dst, cur)
			cur, n = 0, 0
		}
	}
	if n > 0 {
		dst = append(dst, cur<<(2*(4-n)))
	}
	return dst, nil
}

// unpack4Tab expands one packed byte into its four bases.
var unpack4Tab = func() (t [256][4]byte) {
	for b := 0; b < 256; b++ {
		for i := 0; i < 4; i++ {
			t[b][i] = genome.CodeBase((b >> uint(6-2*i)) & 3)
		}
	}
	return
}()

// unpackSeq decodes length bases from packed, returning the bases and the
// number of bytes consumed. It routes through Unpack2Bit so DecodeSeq shares
// the word-parallel fast path.
func unpackSeq(packed []byte, length int) ([]byte, int, error) {
	// Validate against the available bytes before sizing the output: length
	// may come from a corrupt header.
	need := (length + 3) / 4
	if length < 0 || len(packed) < need {
		return nil, 0, fmt.Errorf("compress: packed sequence truncated: need %d bytes, have %d", need, len(packed))
	}
	out := make([]byte, length)
	n, err := Unpack2Bit(out, packed)
	if err != nil {
		return nil, 0, err
	}
	return out, n, nil
}

// convertSpecials returns seq and qual with every non-ACGT base rewritten to
// 'A' and its quality to the marker, per Fig 4. Clean sequences (the common
// case) are returned as-is without copying.
func convertSpecials(seq, qual []byte) ([]byte, []byte, error) {
	if len(seq) != len(qual) {
		return nil, nil, fmt.Errorf("compress: seq len %d != qual len %d", len(seq), len(qual))
	}
	first := -1
	for i, b := range seq {
		if genome.BaseCode(b) < 0 {
			first = i
			break
		}
	}
	if first == -1 {
		return seq, qual, nil
	}
	outSeq := append([]byte(nil), seq...)
	outQual := append([]byte(nil), qual...)
	for i := first; i < len(outSeq); i++ {
		if genome.BaseCode(outSeq[i]) < 0 {
			outSeq[i] = 'A'
			outQual[i] = qualNMarker
		}
	}
	return outSeq, outQual, nil
}

// restoreSpecials rewrites marker positions back to N/'#' in place.
func restoreSpecials(seq, qual []byte) {
	for i, q := range qual {
		if q == qualNMarker {
			seq[i] = 'N'
			qual[i] = qualNRestore
		}
	}
}

// Pack2Bit appends the 2-bit packed form of seq to dst, substituting code 0
// ('A') for any non-ACGT byte instead of failing. Callers that must restore
// the original bytes (e.g. the columnar codec's seq column) record the
// substituted positions out of band; packSeq remains the strict variant used
// by the quality-coupled Fig 4 path.
func Pack2Bit(dst, seq []byte) []byte {
	if kernels.Enabled() {
		return pack2BitFast(dst, seq)
	}
	return pack2BitRef(dst, seq)
}

// pack2BitRef is the original per-base packer, kept as the equivalence
// oracle and the DisableFastKernels path.
func pack2BitRef(dst, seq []byte) []byte {
	var cur byte
	var n uint
	for _, b := range seq {
		code := genome.BaseCode(b)
		if code < 0 {
			code = 0
		}
		cur = cur<<2 | byte(code)
		n++
		if n == 4 {
			dst = append(dst, cur)
			cur, n = 0, 0
		}
	}
	if n > 0 {
		dst = append(dst, cur<<(2*(4-n)))
	}
	return dst
}

// packCodeTab folds genome.BaseCode and the non-ACGT→0 substitution into one
// table so the packer is a pure gather (no sign test per base).
var packCodeTab = func() (t [256]byte) {
	for b := 0; b < 256; b++ {
		if c := genome.BaseCode(byte(b)); c > 0 {
			t[b] = byte(c)
		}
	}
	return
}()

// pack2BitFast is the word-parallel packer: the output is grown once, then
// each iteration gathers eight input bytes through packCodeTab into two
// packed bytes — no rolling shift register, no per-base append, and the
// bounds checks amortize over the unrolled body. Byte-identical to
// pack2BitRef (property-tested, and the colfmt fuzz corpus crosses it with
// the reference unpacker).
func pack2BitFast(dst, seq []byte) []byte {
	need := (len(seq) + 3) / 4
	n := len(dst)
	dst = slices.Grow(dst, need)[:n+need]
	out := dst[n:]
	i, o := 0, 0
	for ; i+8 <= len(seq); i, o = i+8, o+2 {
		s := seq[i : i+8 : i+8]
		out[o] = packCodeTab[s[0]]<<6 | packCodeTab[s[1]]<<4 | packCodeTab[s[2]]<<2 | packCodeTab[s[3]]
		out[o+1] = packCodeTab[s[4]]<<6 | packCodeTab[s[5]]<<4 | packCodeTab[s[6]]<<2 | packCodeTab[s[7]]
	}
	var cur byte
	var k uint
	for ; i < len(seq); i++ {
		cur = cur<<2 | packCodeTab[seq[i]]
		k++
		if k == 4 {
			out[o] = cur
			o++
			cur, k = 0, 0
		}
	}
	if k > 0 {
		out[o] = cur << (2 * (4 - k))
	}
	return dst
}

// Unpack2Bit decodes len(dst) bases from packed into dst (the caller's arena
// slab) and returns the number of packed bytes consumed. Unlike unpackSeq it
// never allocates: the 4-base tail that would overrun dst is staged through a
// stack temporary.
func Unpack2Bit(dst, packed []byte) (int, error) {
	length := len(dst)
	need := (length + 3) / 4
	if len(packed) < need {
		return 0, fmt.Errorf("compress: packed sequence truncated: need %d bytes, have %d", need, len(packed))
	}
	if kernels.Enabled() {
		unpack2BitFast(dst, packed)
	} else {
		unpack2BitRef(dst, packed)
	}
	return need, nil
}

// unpack2BitRef is the original table-copy expansion, kept as the
// equivalence oracle and the DisableFastKernels path. Bounds are already
// checked by Unpack2Bit.
func unpack2BitRef(dst, packed []byte) {
	length := len(dst)
	i := 0
	for ; i+4 <= length; i += 4 {
		copy(dst[i:i+4], unpack4Tab[packed[i/4]][:])
	}
	if i < length {
		var tail [4]byte
		copy(tail[:], unpack4Tab[packed[i/4]][:])
		copy(dst[i:], tail[:length-i])
	}
}

// unpack4LE holds unpack4Tab's four expanded bases as one little-endian
// uint32, so the unpacker can emit four bases with a single 32-bit store
// (and eight with one 64-bit store) instead of a 4-byte copy loop.
var unpack4LE = func() (t [256]uint32) {
	for b := range t {
		t[b] = binary.LittleEndian.Uint32(unpack4Tab[b][:])
	}
	return
}()

// unpack2BitFast is the word-parallel expansion: two packed bytes become one
// 8-byte store per iteration. Byte-identical to unpack2BitRef.
func unpack2BitFast(dst, packed []byte) {
	length := len(dst)
	i := 0
	for ; i+8 <= length; i += 8 {
		w := uint64(unpack4LE[packed[i/4]]) | uint64(unpack4LE[packed[i/4+1]])<<32
		binary.LittleEndian.PutUint64(dst[i:], w)
	}
	for ; i+4 <= length; i += 4 {
		binary.LittleEndian.PutUint32(dst[i:], unpack4LE[packed[i/4]])
	}
	if i < length {
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], unpack4LE[packed[i/4]])
		copy(dst[i:], tail[:length-i])
	}
}

// EncodeSeq compresses one sequence (no quality coupling): uvarint length +
// 2-bit payload. Ns are not allowed here; use the block codec for reads with
// quality-coupled N handling. Exposed for reference-sequence storage.
func EncodeSeq(seq []byte) ([]byte, error) {
	out := binary.AppendUvarint(nil, uint64(len(seq)))
	return packSeq(out, seq)
}

// DecodeSeq inverts EncodeSeq.
func DecodeSeq(data []byte) ([]byte, error) {
	length, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("compress: bad sequence length header")
	}
	seq, _, err := unpackSeq(data[n:], int(length))
	return seq, err
}
