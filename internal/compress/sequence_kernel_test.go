package compress

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/gpf-go/gpf/internal/kernels"
)

func randBases(rng *rand.Rand, n int, dirty bool) []byte {
	clean := []byte("ACGT")
	junk := []byte("ACGTNacgtn*")
	src := clean
	if dirty {
		src = junk
	}
	s := make([]byte, n)
	for i := range s {
		s[i] = src[rng.Intn(len(src))]
	}
	return s
}

// TestKernelPack2BitEquivalence: the word-parallel packer must emit exactly
// the reference's bytes for every length (all four tail phases) and for
// non-ACGT input (both substitute code 0), including when appending to a
// non-empty dst.
func TestKernelPack2BitEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for c := 0; c < 400; c++ {
		seq := randBases(rng, rng.Intn(130), c%3 == 0)
		want := pack2BitRef(nil, seq)
		got := pack2BitFast(nil, seq)
		if !bytes.Equal(got, want) {
			t.Fatalf("len %d: fast %x != reference %x", len(seq), got, want)
		}
		// Append semantics: prior dst contents must be preserved.
		prefix := []byte{0xde, 0xad}
		got = pack2BitFast(append([]byte(nil), prefix...), seq)
		want = pack2BitRef(append([]byte(nil), prefix...), seq)
		if !bytes.Equal(got, want) {
			t.Fatalf("len %d with prefix: fast %x != reference %x", len(seq), got, want)
		}
		// Public dispatcher under both kernel modes.
		prev := kernels.SetEnabled(false)
		slow := Pack2Bit(nil, seq)
		kernels.SetEnabled(true)
		fast := Pack2Bit(nil, seq)
		kernels.SetEnabled(prev)
		if !bytes.Equal(slow, fast) {
			t.Fatalf("len %d: dispatcher disagrees: %x vs %x", len(seq), slow, fast)
		}
	}
}

// TestKernelUnpack2BitEquivalence: the word-store expansion must fill dst
// byte-identically to the reference for every length phase, and pack→unpack
// must round-trip clean sequences.
func TestKernelUnpack2BitEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for c := 0; c < 400; c++ {
		length := rng.Intn(130)
		packed := make([]byte, (length+3)/4+rng.Intn(3)) // sometimes extra bytes
		rng.Read(packed)
		want := make([]byte, length)
		unpack2BitRef(want, packed)
		got := make([]byte, length)
		unpack2BitFast(got, packed)
		if !bytes.Equal(got, want) {
			t.Fatalf("len %d: fast %q != reference %q", length, got, want)
		}
		// Round-trip through the public API.
		seq := randBases(rng, length, false)
		rt := make([]byte, length)
		if _, err := Unpack2Bit(rt, Pack2Bit(nil, seq)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rt, seq) {
			t.Fatalf("round-trip %q -> %q", seq, rt)
		}
	}
	// Truncated input still errors identically in both modes.
	for _, fast := range []bool{true, false} {
		prev := kernels.SetEnabled(fast)
		if _, err := Unpack2Bit(make([]byte, 9), []byte{0, 0}); err == nil {
			t.Fatalf("fast=%v: truncated unpack did not error", fast)
		}
		kernels.SetEnabled(prev)
	}
}

func benchPackInputs() (seq, packed []byte) {
	rng := rand.New(rand.NewSource(55))
	seq = randBases(rng, 151, false)
	packed = Pack2Bit(nil, seq)
	return
}

func BenchmarkKernelPack2BitReference(b *testing.B) {
	seq, _ := benchPackInputs()
	dst := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pack2BitRef(dst[:0], seq)
	}
}

func BenchmarkKernelPack2BitFast(b *testing.B) {
	seq, _ := benchPackInputs()
	dst := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pack2BitFast(dst[:0], seq)
	}
}

func BenchmarkKernelUnpack2BitReference(b *testing.B) {
	seq, packed := benchPackInputs()
	dst := make([]byte, len(seq))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		unpack2BitRef(dst, packed)
	}
}

func BenchmarkKernelUnpack2BitFast(b *testing.B) {
	seq, packed := benchPackInputs()
	dst := make([]byte, len(seq))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		unpack2BitFast(dst, packed)
	}
}
