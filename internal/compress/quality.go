package compress

import (
	"fmt"
)

// The quality codec implements Figs 5-6 of the paper: quality strings are
// converted to the sequence of differences between adjacent scores (the
// "Delta sequence", character range -127..127) — which is far more
// concentrated than the scores themselves — and the delta stream is Huffman
// coded with a terminating EOF symbol.

// Quality symbols: raw quality bytes are 0..126 (0 is the N marker). The
// first value of each string is delta-coded against 0, so deltas span
// -126..+126; symbol = delta + deltaBias. EOF takes the top symbol.
const (
	deltaBias     = 127
	qualAlphabet  = 256
	qualEOFSymbol = 255
)

// EncodeQualBlock compresses a batch of quality strings: a 256-entry
// code-length table (one byte per symbol) followed by the Huffman payload
// ending in EOF. Lengths are carried externally by the block framing. The
// delta stream is produced and consumed inline (no staging buffer — this is
// the shuffle-write hot path).
func EncodeQualBlock(quals [][]byte) ([]byte, error) {
	// Pass 1: delta-symbol frequencies.
	freqs := make([]int64, qualAlphabet)
	total := 0
	for _, q := range quals {
		total += len(q)
		prev := 0
		for _, b := range q {
			freqs[int(b)-prev+deltaBias]++
			prev = int(b)
		}
	}
	freqs[qualEOFSymbol]++
	lens, err := buildCodeLengths(freqs)
	if err != nil {
		return nil, err
	}
	codes := canonicalCodes(lens)
	// Pass 2: emit (reserve ~4 bits/symbol, the typical entropy).
	w := bitWriter{buf: make([]byte, 0, total/2+16)}
	for _, q := range quals {
		prev := 0
		for _, b := range q {
			c := codes[int(b)-prev+deltaBias]
			w.writeBits(c.bits, uint(c.len))
			prev = int(b)
		}
	}
	eof := codes[qualEOFSymbol]
	w.writeBits(eof.bits, uint(eof.len))
	payload := w.finish()
	out := make([]byte, 0, qualAlphabet+len(payload))
	out = append(out, lens...)
	out = append(out, payload...)
	return out, nil
}

// DecodeQualBlock inverts EncodeQualBlock given the original string lengths.
// Symbols are decoded straight into the output quality strings (no
// intermediate symbol buffer — this is the shuffle-read hot path).
func DecodeQualBlock(data []byte, lengths []int) ([][]byte, error) {
	if len(data) < qualAlphabet {
		return nil, fmt.Errorf("compress: quality block shorter than code table")
	}
	lens := make([]uint8, qualAlphabet)
	copy(lens, data[:qualAlphabet])
	if err := validateCodeLens(lens); err != nil {
		return nil, err
	}
	d := newHuffDecoder(lens)
	r := &bitReader{buf: data[qualAlphabet:]}
	out := make([][]byte, len(lengths))
	for i, n := range lengths {
		q := make([]byte, n)
		prev := 0
		for j := 0; j < n; j++ {
			sym, err := d.decodeSymbol(r)
			if err != nil {
				return nil, err
			}
			if sym == qualEOFSymbol {
				return nil, fmt.Errorf("compress: quality stream short: record %d needs %d more symbols", i, n-j)
			}
			v := prev + (sym - deltaBias)
			if v < 0 || v > 126 {
				return nil, fmt.Errorf("compress: quality value %d out of range", v)
			}
			q[j] = byte(v)
			prev = v
		}
		out[i] = q
	}
	sym, err := d.decodeSymbol(r)
	if err != nil {
		return nil, err
	}
	if sym != qualEOFSymbol {
		return nil, fmt.Errorf("compress: trailing quality symbols after records")
	}
	return out, nil
}
