package compress

import (
	"container/heap"
	"fmt"
	"sort"
)

// Huffman coding over a small symbol alphabet with an explicit EOF symbol,
// as used by the quality-score codec (Fig 6 of the paper ends the delta
// stream with an EOF codeword). The code is canonical so that only the code
// lengths need to be stored alongside the payload.

// maxCodeLen bounds codeword length; 32 symbols cannot exceed 31 bits but we
// keep the canonical table in uint32.
const maxCodeLen = 31

// huffCode is one symbol's canonical codeword.
type huffCode struct {
	bits uint32
	len  uint8
}

type huffNode struct {
	weight      int64
	symbol      int // -1 for internal
	left, right *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].symbol < h[j].symbol // deterministic ties
}
func (h huffHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x interface{}) { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// buildCodeLengths returns the canonical code length per symbol given
// frequencies (0-frequency symbols get length 0 = absent). At least one
// symbol must have nonzero frequency.
func buildCodeLengths(freqs []int64) ([]uint8, error) {
	h := &huffHeap{}
	for sym, f := range freqs {
		if f > 0 {
			heap.Push(h, &huffNode{weight: f, symbol: sym})
		}
	}
	if h.Len() == 0 {
		return nil, fmt.Errorf("compress: no symbols to code")
	}
	if h.Len() == 1 {
		lens := make([]uint8, len(freqs))
		lens[(*h)[0].symbol] = 1
		return lens, nil
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(*huffNode)
		b := heap.Pop(h).(*huffNode)
		heap.Push(h, &huffNode{weight: a.weight + b.weight, symbol: -1, left: a, right: b})
	}
	root := heap.Pop(h).(*huffNode)
	lens := make([]uint8, len(freqs))
	var walk func(n *huffNode, depth uint8)
	walk = func(n *huffNode, depth uint8) {
		if n.symbol >= 0 {
			if depth == 0 {
				depth = 1
			}
			lens[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lens, nil
}

// canonicalCodes assigns canonical codewords from code lengths: symbols
// sorted by (length, symbol) receive consecutive codes.
func canonicalCodes(lens []uint8) []huffCode {
	type symLen struct {
		sym int
		l   uint8
	}
	var order []symLen
	for sym, l := range lens {
		if l > 0 {
			order = append(order, symLen{sym, l})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].l != order[j].l {
			return order[i].l < order[j].l
		}
		return order[i].sym < order[j].sym
	})
	codes := make([]huffCode, len(lens))
	var code uint32
	var prevLen uint8
	for _, sl := range order {
		code <<= (sl.l - prevLen)
		codes[sl.sym] = huffCode{bits: code, len: sl.l}
		code++
		prevLen = sl.l
	}
	return codes
}

// peekBits sizes the fast decode table: codes of up to peekBits bits decode
// with one table lookup.
const peekBits = 10

// huffDecoder decodes canonical codes with the standard first-code/offset
// arrays plus a peek table for short codes: O(1) per symbol on the fast
// path.
type huffDecoder struct {
	// firstCode[l] is the smallest codeword of length l; count[l] how many
	// codes have length l; offset[l] indexes into symbols for length l.
	firstCode [maxCodeLen + 2]uint32
	count     [maxCodeLen + 2]uint32
	offset    [maxCodeLen + 2]uint32
	symbols   []int // symbols ordered by (length, symbol)
	max       uint8
	// table maps a peekBits-bit prefix to sym<<8|len for codes with
	// len <= peekBits; 0 means slow path.
	table [1 << peekBits]uint32
}

// validateCodeLens rejects code-length tables that cannot come from a
// canonical Huffman code: lengths over maxCodeLen (they would index past the
// decoder's per-length arrays) and overfull trees violating the Kraft
// inequality (their canonical codes overflow and corrupt the peek table).
// Decode paths handed untrusted blocks must call this before newHuffDecoder.
func validateCodeLens(lens []uint8) error {
	var kraft uint64
	for sym, l := range lens {
		if l == 0 {
			continue
		}
		if l > maxCodeLen {
			return fmt.Errorf("compress: symbol %d code length %d exceeds max %d", sym, l, maxCodeLen)
		}
		kraft += 1 << (maxCodeLen - l)
	}
	if kraft > 1<<maxCodeLen {
		return fmt.Errorf("compress: overfull Huffman code (Kraft sum %d/2^%d)", kraft, maxCodeLen)
	}
	return nil
}

func newHuffDecoder(lens []uint8) *huffDecoder {
	d := &huffDecoder{}
	for _, l := range lens {
		if l > 0 {
			d.count[l]++
			if l > d.max {
				d.max = l
			}
		}
	}
	// Canonical first codes per length and symbol table offsets.
	var code uint32
	var total uint32
	for l := uint8(1); l <= d.max; l++ {
		code <<= 1
		d.firstCode[l] = code
		d.offset[l] = total
		code += d.count[l]
		total += d.count[l]
	}
	d.symbols = make([]int, total)
	var fill [maxCodeLen + 2]uint32
	for sym, l := range lens {
		if l > 0 {
			d.symbols[d.offset[l]+fill[l]] = sym
			fill[l]++
		}
	}
	// Peek table: for every short code, fill all table slots sharing its
	// prefix with sym<<8|len (len byte nonzero marks a valid entry).
	codes := canonicalCodes(lens)
	for sym, c := range codes {
		if c.len == 0 || c.len > peekBits {
			continue
		}
		shift := peekBits - uint(c.len)
		base := c.bits << shift
		entry := uint32(sym)<<8 | uint32(c.len)
		for i := uint32(0); i < 1<<shift; i++ {
			d.table[base|i] = entry
		}
	}
	return d
}

// decodeSymbol reads one symbol from r.
func (d *huffDecoder) decodeSymbol(r *bitReader) (int, error) {
	// Fast path: table lookup on a peekBits prefix.
	prefix, avail := r.peek(peekBits)
	if entry := d.table[prefix]; entry != 0 {
		l := uint(entry & 0xFF)
		if l <= avail {
			r.skip(l)
			return int(entry >> 8), nil
		}
	}
	// Slow path: walk code lengths bit by bit.
	var code uint32
	for l := uint8(1); l <= d.max; l++ {
		b, ok := r.readBit()
		if !ok {
			return 0, fmt.Errorf("compress: truncated Huffman stream")
		}
		code = code<<1 | uint32(b)
		if idx := code - d.firstCode[l]; code >= d.firstCode[l] && idx < d.count[l] {
			return d.symbols[d.offset[l]+idx], nil
		}
	}
	return 0, fmt.Errorf("compress: invalid Huffman code")
}

// huffmanEncode codes symbols (values < len(freqs)) plus a trailing EOF
// symbol. Returns the code-length table and the bit payload.
func huffmanEncode(symbols []int, alphabet int, eof int) ([]uint8, []byte, error) {
	freqs := make([]int64, alphabet)
	for _, s := range symbols {
		if s < 0 || s >= alphabet {
			return nil, nil, fmt.Errorf("compress: symbol %d out of alphabet %d", s, alphabet)
		}
		freqs[s]++
	}
	freqs[eof]++
	lens, err := buildCodeLengths(freqs)
	if err != nil {
		return nil, nil, err
	}
	codes := canonicalCodes(lens)
	var w bitWriter
	for _, s := range symbols {
		c := codes[s]
		w.writeBits(c.bits, uint(c.len))
	}
	c := codes[eof]
	w.writeBits(c.bits, uint(c.len))
	return lens, w.finish(), nil
}

// huffmanDecode inverts huffmanEncode, stopping at the EOF symbol.
func huffmanDecode(lens []uint8, payload []byte, eof int) ([]int, error) {
	if err := validateCodeLens(lens); err != nil {
		return nil, err
	}
	d := newHuffDecoder(lens)
	r := &bitReader{buf: payload}
	var out []int
	for {
		sym, err := d.decodeSymbol(r)
		if err != nil {
			return nil, err
		}
		if sym == eof {
			return out, nil
		}
		out = append(out, sym)
	}
}
