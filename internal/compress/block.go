package compress

import (
	"encoding/binary"
	"fmt"
)

// EncodeSeqQualBlock compresses parallel batches of sequences and quality
// strings into one byte block — the serialized form of a partition's
// seq/qual columns. Layout:
//
//	uvarint recordCount
//	recordCount × uvarint sequenceLength
//	uvarint packedSeqBytes, then the packed 2-bit sequences (byte aligned
//	  per record)
//	quality block (code table + Huffman payload, see EncodeQualBlock)
//
// Ns are converted per Fig 4 before packing; markers flow through the
// quality stream and are restored on decode.
func EncodeSeqQualBlock(seqs, quals [][]byte) ([]byte, error) {
	if len(seqs) != len(quals) {
		return nil, fmt.Errorf("compress: %d seqs but %d quals", len(seqs), len(quals))
	}
	convSeqs := make([][]byte, len(seqs))
	convQuals := make([][]byte, len(quals))
	for i := range seqs {
		s, q, err := convertSpecials(seqs[i], quals[i])
		if err != nil {
			return nil, fmt.Errorf("compress: record %d: %w", i, err)
		}
		convSeqs[i], convQuals[i] = s, q
	}

	out := binary.AppendUvarint(nil, uint64(len(seqs)))
	for _, s := range convSeqs {
		out = binary.AppendUvarint(out, uint64(len(s)))
	}
	totalBases := 0
	for _, s := range convSeqs {
		totalBases += len(s)
	}
	packed := make([]byte, 0, totalBases/4+len(convSeqs))
	for i, s := range convSeqs {
		var err error
		packed, err = packSeq(packed, s)
		if err != nil {
			return nil, fmt.Errorf("compress: record %d: %w", i, err)
		}
	}
	out = binary.AppendUvarint(out, uint64(len(packed)))
	out = append(out, packed...)

	qb, err := EncodeQualBlock(convQuals)
	if err != nil {
		return nil, err
	}
	out = append(out, qb...)
	return out, nil
}

// DecodeSeqQualBlock inverts EncodeSeqQualBlock.
func DecodeSeqQualBlock(data []byte) (seqs, quals [][]byte, err error) {
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, nil, fmt.Errorf("compress: bad block count header")
	}
	data = data[n:]
	if count > uint64(len(data))+1 {
		return nil, nil, fmt.Errorf("compress: block count %d exceeds payload", count)
	}
	lengths := make([]int, count)
	for i := range lengths {
		l, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, nil, fmt.Errorf("compress: bad length header for record %d", i)
		}
		data = data[n:]
		// Huffman emits at least one bit per symbol and packing one byte
		// per four bases, so the decoded size is bounded by a small
		// multiple of the payload; anything larger marks corruption (and
		// guards the per-record allocations below).
		if l > uint64(8*len(data)+64) {
			return nil, nil, fmt.Errorf("compress: record %d length %d exceeds payload bound", i, l)
		}
		lengths[i] = int(l)
	}
	totalLen := 0
	for _, l := range lengths {
		totalLen += l
	}
	if totalLen > 8*len(data)+64 {
		return nil, nil, fmt.Errorf("compress: decoded size %d exceeds payload bound", totalLen)
	}
	packedLen, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, nil, fmt.Errorf("compress: bad packed-bytes header")
	}
	data = data[n:]
	if uint64(len(data)) < packedLen {
		return nil, nil, fmt.Errorf("compress: packed section truncated")
	}
	packed := data[:packedLen]
	qualData := data[packedLen:]

	seqs = make([][]byte, count)
	for i, l := range lengths {
		s, consumed, err := unpackSeq(packed, l)
		if err != nil {
			return nil, nil, fmt.Errorf("compress: record %d: %w", i, err)
		}
		seqs[i] = s
		packed = packed[consumed:]
	}
	quals, err = DecodeQualBlock(qualData, lengths)
	if err != nil {
		return nil, nil, err
	}
	for i := range seqs {
		restoreSpecials(seqs[i], quals[i])
	}
	return seqs, quals, nil
}

// Ratio reports original/compressed size for accounting; returns 0 when the
// compressed size is 0.
func Ratio(originalBytes, compressedBytes int) float64 {
	if compressedBytes == 0 {
		return 0
	}
	return float64(originalBytes) / float64(compressedBytes)
}
