package colfmt_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"github.com/gpf-go/gpf/internal/colfmt"
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/sam"
)

// randRecord synthesizes one record exercising every column shape: empty and
// non-empty names, unmapped reads, N/lowercase bases, out-of-range quality
// bytes, empty and multi-key tag maps. Empty slices/maps are emitted as nil —
// the codec's canonical form (a zero-length field decodes to nil).
func randRecord(r *rand.Rand) sam.Record {
	const bases = "ACGT"
	rec := sam.Record{
		Flag:    uint16(r.Intn(1 << 12)),
		RefID:   int32(r.Intn(4)) - 1, // includes -1 (unmapped)
		Pos:     int32(r.Intn(1 << 20)),
		MapQ:    uint8(r.Intn(61)),
		MateRef: int32(r.Intn(4)) - 1,
		MatePos: int32(r.Intn(1<<20)) - 500,
		TempLen: int32(r.Intn(1000)) - 500,
	}
	if r.Intn(10) > 0 {
		name := make([]byte, 1+r.Intn(24))
		for i := range name {
			name[i] = byte('!' + r.Intn(90))
		}
		rec.Name = string(name)
	}
	if n := r.Intn(5); n > 0 {
		ops := "MIDNSHP=X"
		rec.Cigar = make(sam.Cigar, n)
		for i := range rec.Cigar {
			rec.Cigar[i] = sam.CigarOp{Len: 1 + r.Intn(100), Op: ops[r.Intn(len(ops))]}
		}
	}
	if l := r.Intn(120); l > 0 {
		rec.Seq = make([]byte, l)
		rec.Qual = make([]byte, l)
		for i := 0; i < l; i++ {
			switch r.Intn(20) {
			case 0:
				rec.Seq[i] = 'N'
			case 1:
				rec.Seq[i] = "acgtnRYK*"[r.Intn(9)]
			default:
				rec.Seq[i] = bases[r.Intn(4)]
			}
			rec.Qual[i] = byte(33 + r.Intn(41))
		}
		if r.Intn(20) == 0 {
			// Out-of-range quality byte: forces the raw qual fallback.
			rec.Qual[r.Intn(l)] = byte(200 + r.Intn(56))
		}
	}
	if n := r.Intn(4); n > 0 && r.Intn(3) > 0 {
		rec.Tags = make(map[string]string, n)
		tags := []string{"RG", "LB", "NM", "MD", "XA"}
		for i := 0; i < n; i++ {
			v := make([]byte, r.Intn(8))
			for j := range v {
				v[j] = byte('0' + r.Intn(75))
			}
			rec.Tags[tags[r.Intn(len(tags))]] = string(v)
		}
	}
	return rec
}

func randBatch(r *rand.Rand, n int) []sam.Record {
	recs := make([]sam.Record, n)
	for i := range recs {
		recs[i] = randRecord(r)
	}
	return recs
}

// TestRoundTripRandomized: encode→decode round-trips randomized batches
// exactly, including the empty batch.
func TestRoundTripRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 50; trial++ {
		recs := randBatch(r, r.Intn(80))
		block, err := colfmt.Codec{}.Marshal(recs)
		if err != nil {
			t.Fatalf("trial %d: marshal: %v", trial, err)
		}
		got, err := colfmt.Codec{}.Unmarshal(block)
		if err != nil {
			t.Fatalf("trial %d: unmarshal: %v", trial, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("trial %d: got %d records, want %d", trial, len(got), len(recs))
		}
		for i := range recs {
			if !reflect.DeepEqual(got[i], recs[i]) {
				t.Fatalf("trial %d: record %d mismatch:\n got %+v\nwant %+v", trial, i, got[i], recs[i])
			}
		}
	}
}

// TestRoundTripEdgeCases covers the canonicalization contract: empty (but
// non-nil) seq/qual/tags decode as nil, and re-encoding the decoded batch is
// byte-identical (the canonical form is a fixed point).
func TestRoundTripEdgeCases(t *testing.T) {
	recs := []sam.Record{
		{}, // all-zero record
		{Name: "", Flag: sam.FlagUnmapped, RefID: -1, Pos: 0, MateRef: -1, Seq: []byte{}, Qual: []byte{}, Tags: map[string]string{}},
		{Name: "q", Seq: []byte("N"), Qual: []byte{0}, Cigar: sam.Cigar{{Len: 1, Op: 'M'}}},
		{Name: "multi", Seq: []byte("ACGTNNACGT"), Qual: []byte("##########"),
			Tags: map[string]string{"RG": "rg1", "LB": "", "": "emptykey"}},
		{Pos: 1 << 30, MatePos: -(1 << 30), TempLen: -1},
	}
	block, err := colfmt.Codec{}.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := colfmt.Codec{}.Unmarshal(block)
	if err != nil {
		t.Fatal(err)
	}
	// Empty slices/maps come back nil.
	if dec[1].Seq != nil || dec[1].Qual != nil || dec[1].Tags != nil {
		t.Fatalf("empty fields should decode to nil, got %+v", dec[1])
	}
	// The decode is a fixed point: re-encoding is byte-identical.
	block2, err := colfmt.Codec{}.Marshal(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(block, block2) {
		t.Fatalf("re-encoded block differs: %d vs %d bytes", len(block), len(block2))
	}
	dec2, err := colfmt.Codec{}.Unmarshal(block2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, dec2) {
		t.Fatal("decode of re-encoded block differs")
	}
}

// TestStatsFullDecode: an unprojected decode touches every byte and prunes
// none.
func TestStatsFullDecode(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	recs := randBatch(r, 40)
	block, err := colfmt.Codec{}.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := colfmt.Codec{}.UnmarshalStats(block)
	if err != nil {
		t.Fatal(err)
	}
	if st.DecodedBytes != int64(len(block)) || st.PrunedBytes != 0 {
		t.Fatalf("full decode stats = %+v, want decoded %d / pruned 0", st, len(block))
	}
}

// TestProjectionDecodesSubset: a coordinate projection materializes only
// RefID/Pos, zeroes the rest, prunes the heavy columns, and accounts every
// block byte as either decoded or pruned.
func TestProjectionDecodesSubset(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	recs := randBatch(r, 60)
	block, err := colfmt.Codec{}.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	proj, ok := colfmt.Codec{}.Project(colfmt.FieldCoord).(engine.StatsSerializer[sam.Record])
	if !ok {
		t.Fatal("projected codec lost UnmarshalStats")
	}
	got, st, err := proj.UnmarshalStats(block)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].RefID != recs[i].RefID || got[i].Pos != recs[i].Pos {
			t.Fatalf("record %d coords: got (%d,%d) want (%d,%d)",
				i, got[i].RefID, got[i].Pos, recs[i].RefID, recs[i].Pos)
		}
		if got[i].Name != "" || got[i].Seq != nil || got[i].Qual != nil || got[i].Tags != nil || got[i].Cigar != nil {
			t.Fatalf("record %d: pruned fields not zero: %+v", i, got[i])
		}
	}
	if st.PrunedBytes <= 0 {
		t.Fatalf("coordinate projection pruned nothing: %+v", st)
	}
	if st.DecodedBytes+st.PrunedBytes != int64(len(block)) {
		t.Fatalf("stats don't cover the block: %+v vs %d bytes", st, len(block))
	}
	if st.DecodedBytes >= int64(len(block)) {
		t.Fatalf("projected decode should touch fewer bytes than the block: %+v", st)
	}

	// The zero mask decodes only headers: right count, zero records.
	zero := colfmt.Codec{}.Project(0)
	hdr, err := zero.Unmarshal(block)
	if err != nil {
		t.Fatal(err)
	}
	if len(hdr) != len(recs) {
		t.Fatalf("zero-mask decode: got %d records, want %d", len(hdr), len(recs))
	}
	var zrec sam.Record
	for i := range hdr {
		if !reflect.DeepEqual(hdr[i], zrec) {
			t.Fatalf("zero-mask record %d not zero: %+v", i, hdr[i])
		}
	}
}

// TestProjectionComposes: Project masks intersect.
func TestProjectionComposes(t *testing.T) {
	c := colfmt.Codec{}.Project(colfmt.FieldCoord | colfmt.FieldFlag)
	p, ok := c.(engine.ProjectableSerializer[sam.Record])
	if !ok {
		t.Fatal("projected codec lost Project")
	}
	c2 := p.Project(colfmt.FieldFlag | colfmt.FieldSeq) // intersection: flag only
	recs := []sam.Record{{Flag: 99, RefID: 3, Pos: 77, Seq: []byte("ACGT"), Qual: []byte("####")}}
	block, err := colfmt.Codec{}.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Unmarshal(block)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Flag != 99 || got[0].RefID != 0 || got[0].Pos != 0 || got[0].Seq != nil {
		t.Fatalf("intersected projection decoded wrong fields: %+v", got[0])
	}
}

// TestCorruptionDoesNotPanic: every truncation and a sweep of byte flips must
// fail cleanly (or decode consistently), never panic or over-allocate.
func TestCorruptionDoesNotPanic(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	recs := randBatch(r, 20)
	block, err := colfmt.Codec{}.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i <= len(block); i++ {
		_, _ = colfmt.Codec{}.Unmarshal(block[:i]) //nolint — error expected, must not panic
	}
	for trial := 0; trial < 500; trial++ {
		mut := append([]byte(nil), block...)
		mut[r.Intn(len(mut))] ^= byte(1 + r.Intn(255))
		_, _ = colfmt.Codec{}.Unmarshal(mut)
	}
}

// identityRecords is the identity MapPartitions body used to materialize a
// dataset under a codec.
func identityRecords(_ int, recs []sam.Record) ([]sam.Record, error) { return recs, nil }

// runCoordCensus materializes recs as serialized blocks (columnar, or gob
// under the ablation) and runs a coordinate-only census over a projection
// view, returning the census result and the session metrics.
func runCoordCensus(t *testing.T, recs []sam.Record, disableColumnar bool) (map[int]int, engine.Metrics) {
	t.Helper()
	ctx := engine.NewContext(4)
	ctx.StoreSerialized = true
	ctx.DisableColumnar = disableColumnar
	ds := engine.Parallelize(ctx, recs, 8)
	stored, err := engine.MapPartitions("store", ds, colfmt.Codec{}, identityRecords)
	if err != nil {
		t.Fatal(err)
	}
	if err := stored.Force(); err != nil {
		t.Fatal(err)
	}
	view := engine.ReadingFields(stored, colfmt.FieldCoord)
	counts, err := engine.CountByKey("census", view, func(r sam.Record) int {
		return int(r.RefID)<<16 | int(r.Pos>>10)
	})
	if err != nil {
		t.Fatal(err)
	}
	return counts, ctx.Metrics()
}

// TestCoordCensusDecodesFewerBytesThanGob is the PR's acceptance criterion: a
// coordinate-only stage over columnar-stored records decodes strictly fewer
// bytes than the gob path (DisableColumnar), prunes a positive byte volume,
// and produces the identical census.
func TestCoordCensusDecodesFewerBytesThanGob(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	recs := randBatch(r, 3000)
	colCounts, colM := runCoordCensus(t, recs, false)
	gobCounts, gobM := runCoordCensus(t, recs, true)
	if !reflect.DeepEqual(colCounts, gobCounts) {
		t.Fatal("columnar and gob census disagree")
	}
	colDec, gobDec := colM.TotalDecodedBytes(), gobM.TotalDecodedBytes()
	if colDec >= gobDec {
		t.Fatalf("columnar decoded %d bytes, gob %d — projection should decode strictly fewer", colDec, gobDec)
	}
	if pruned := colM.TotalPrunedBytes(); pruned <= 0 {
		t.Fatalf("columnar census pruned %d bytes, want > 0", pruned)
	}
	if gobM.TotalPrunedBytes() != 0 {
		t.Fatalf("gob path cannot prune, got %d", gobM.TotalPrunedBytes())
	}
	if colM.PruningRatio() <= 0 {
		t.Fatalf("pruning ratio = %v, want > 0", colM.PruningRatio())
	}
}

// TestProjectionDeterminism: the projected columnar census is deterministic
// across repeated runs and identical to the unprojected and gob paths. CI
// runs this under -race.
func TestProjectionDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	recs := randBatch(r, 1500)
	first, _ := runCoordCensus(t, recs, false)
	for i := 0; i < 3; i++ {
		again, _ := runCoordCensus(t, recs, false)
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("columnar census differs on rerun %d", i)
		}
	}
	gob, _ := runCoordCensus(t, recs, true)
	if !reflect.DeepEqual(first, gob) {
		t.Fatal("columnar census differs from gob baseline")
	}
}

// TestPartialBlockEncode: a projected encoder writes a block carrying only
// the masked columns (plus the always-present flag column), strictly smaller
// than the full block, and a full decoder reads present fields back intact
// with absent fields as zero values.
func TestPartialBlockEncode(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	recs := randBatch(r, 80)
	full, err := colfmt.Codec{}.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	narrow := colfmt.Codec{}.Project(colfmt.FieldCoord | colfmt.FieldFlag)
	partial, err := narrow.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(partial) >= len(full) {
		t.Fatalf("partial block %d bytes, full block %d: projection saved nothing on the wire", len(partial), len(full))
	}
	// Full decoder over the partial block: present fields intact, absent zero.
	got, err := colfmt.Codec{}.Unmarshal(partial)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].RefID != recs[i].RefID || got[i].Pos != recs[i].Pos || got[i].Flag != recs[i].Flag {
			t.Fatalf("record %d present fields: got %+v", i, got[i])
		}
		if got[i].Name != "" || got[i].Seq != nil || got[i].Qual != nil || got[i].Tags != nil || got[i].Cigar != nil {
			t.Fatalf("record %d: absent fields not zero: %+v", i, got[i])
		}
	}
	// A projected decoder over a partial block prunes only what the block
	// actually carries (flag, here) and never errors on absent columns.
	proj, ok := narrow.(engine.ProjectableSerializer[sam.Record])
	if !ok {
		t.Fatal("projected codec lost Project")
	}
	coordOnly, err := proj.Project(colfmt.FieldCoord).Unmarshal(partial)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if coordOnly[i].Pos != recs[i].Pos || coordOnly[i].Flag != 0 {
			t.Fatalf("record %d coord-of-partial: %+v", i, coordOnly[i])
		}
	}
	// The zero-mask encoder still writes the flag column, keeping the record
	// count byte-backed for the corruption guard.
	tiny, err := colfmt.Codec{}.Project(0).Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tiny) < len(recs) {
		t.Fatalf("zero-mask block %d bytes for %d records: flag column missing", len(tiny), len(recs))
	}
	n, err := colfmt.Codec{}.Unmarshal(tiny)
	if err != nil || len(n) != len(recs) {
		t.Fatalf("zero-mask block decode: %d records, %v", len(n), err)
	}
}
