package colfmt_test

import (
	"math/rand"
	"testing"

	"github.com/gpf-go/gpf/internal/colfmt"
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/sam"
)

// benchBatch is the standard benchmark workload: a deterministic batch of
// randomized records (the partition-block granularity the engine encodes).
func benchBatch(n int) []sam.Record {
	return randBatch(rand.New(rand.NewSource(99)), n)
}

func benchBlock(b *testing.B, recs []sam.Record) []byte {
	b.Helper()
	block, err := colfmt.Codec{}.Marshal(recs)
	if err != nil {
		b.Fatal(err)
	}
	return block
}

func BenchmarkColumnarMarshal(b *testing.B) {
	recs := benchBatch(2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (colfmt.Codec{}).Marshal(recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColumnarUnmarshalFull(b *testing.B) {
	block := benchBlock(b, benchBatch(2000))
	b.SetBytes(int64(len(block)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (colfmt.Codec{}).Unmarshal(block); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColumnarDecodeColumn decodes one column at a time through a
// projection mask — the per-column codec cost profile. The reported
// decoded-MB/s throughput is against the full block size, so columns that
// prune more of the block run proportionally faster.
func BenchmarkColumnarDecodeColumn(b *testing.B) {
	block := benchBlock(b, benchBatch(2000))
	cols := []struct {
		name string
		mask engine.FieldMask
	}{
		{"name", colfmt.FieldName},
		{"flag", colfmt.FieldFlag},
		{"coord", colfmt.FieldCoord},
		{"mapq", colfmt.FieldMapQ},
		{"cigar", colfmt.FieldCigar},
		{"mate", colfmt.FieldMate},
		{"seq", colfmt.FieldSeq},
		{"qual", colfmt.FieldQual},
		{"tags", colfmt.FieldTags},
	}
	for _, col := range cols {
		b.Run(col.name, func(b *testing.B) {
			codec := colfmt.Codec{}.Project(col.mask)
			b.SetBytes(int64(len(block)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := codec.Unmarshal(block); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
