package colfmt_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"github.com/gpf-go/gpf/internal/colfmt"
	"github.com/gpf-go/gpf/internal/sam"
)

// fuzzSeedBlocks are the deterministic seed inputs shared by the fuzz target
// and the checked-in corpus under testdata/fuzz/FuzzColumnarRoundTrip (see
// TestFuzzSeedCorpusInSync): valid blocks of characteristic shapes plus a few
// corrupt prefixes.
func fuzzSeedBlocks(tb testing.TB) [][]byte {
	mustMarshal := func(recs []sam.Record) []byte {
		block, err := colfmt.Codec{}.Marshal(recs)
		if err != nil {
			tb.Fatalf("seed marshal: %v", err)
		}
		return block
	}
	r := rand.New(rand.NewSource(1701))
	seeds := [][]byte{
		mustMarshal(nil),
		mustMarshal([]sam.Record{{}}),
		mustMarshal([]sam.Record{{
			Name: "read1", Flag: sam.FlagPaired, RefID: 0, Pos: 100, MapQ: 60,
			Cigar: sam.Cigar{{Len: 4, Op: 'M'}}, MateRef: 0, MatePos: 300, TempLen: 204,
			Seq: []byte("ACGT"), Qual: []byte("####"), Tags: map[string]string{"RG": "rg0"},
		}}),
		mustMarshal([]sam.Record{
			{Name: "n", Seq: []byte("NNNN"), Qual: []byte{0, 0, 0, 0}},
			{Flag: sam.FlagUnmapped, RefID: -1, MateRef: -1},
		}),
		mustMarshal(randBatch(r, 12)),
		{},                // empty input
		{'G', 'c', 1},     // header only
		{'G', 'c', 2, 0},  // bad version
		{'X', 'x', 1, 99}, // bad magic
	}
	return seeds
}

// FuzzColumnarRoundTrip: any input the decoder accepts must re-encode
// canonically — Marshal(Unmarshal(x)) decodes back to the same records — and
// no input may panic or over-allocate.
func FuzzColumnarRoundTrip(f *testing.F) {
	for _, seed := range fuzzSeedBlocks(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := colfmt.Codec{}.Unmarshal(data)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		block, err := colfmt.Codec{}.Marshal(recs)
		if err != nil {
			t.Fatalf("re-marshal of accepted input failed: %v", err)
		}
		again, err := colfmt.Codec{}.Unmarshal(block)
		if err != nil {
			t.Fatalf("decode of canonical re-encoding failed: %v", err)
		}
		if !reflect.DeepEqual(recs, again) {
			t.Fatalf("round-trip through canonical encoding changed records")
		}
	})
}

// corpusDir is the checked-in seed corpus location `go test -fuzz` merges
// with the f.Add seeds.
func corpusDir() string {
	return filepath.Join("testdata", "fuzz", "FuzzColumnarRoundTrip")
}

// corpusEntry renders one seed in the go-fuzz v1 corpus file format.
func corpusEntry(seed []byte) string {
	return fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.QuoteToASCII(string(seed)))
}

// TestFuzzSeedCorpusInSync verifies the checked-in corpus matches
// fuzzSeedBlocks. Regenerate with GPF_WRITE_FUZZ_CORPUS=1 go test
// ./internal/colfmt -run TestFuzzSeedCorpusInSync.
func TestFuzzSeedCorpusInSync(t *testing.T) {
	seeds := fuzzSeedBlocks(t)
	if os.Getenv("GPF_WRITE_FUZZ_CORPUS") != "" {
		if err := os.MkdirAll(corpusDir(), 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			name := filepath.Join(corpusDir(), fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(corpusEntry(seed)), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i, seed := range seeds {
		name := filepath.Join(corpusDir(), fmt.Sprintf("seed-%02d", i))
		got, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("corpus file missing (regenerate with GPF_WRITE_FUZZ_CORPUS=1): %v", err)
		}
		if string(got) != corpusEntry(seed) {
			t.Fatalf("corpus file %s out of sync with fuzzSeedBlocks", name)
		}
	}
}
