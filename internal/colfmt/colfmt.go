// Package colfmt implements columnar partition storage for SAM records —
// ROADMAP item 1, the PAM-style layout. A batch of records is encoded as
// per-field column blocks (name, flag, coordinates, mapq, cigar, mate, seq,
// qual, tags) behind a header that frames every column with its byte length,
// so individual columns decode independently and a projection mask can skip
// the columns a stage never reads without touching their bytes. Codec plugs
// into the engine as a ProjectableSerializer + StatsSerializer: a
// coordinate-only fused stage decodes the coord column and prunes seq/qual —
// the dominant bytes of a wide record — and reports the split through the
// DecodedBytes/PrunedBytes task counters.
//
// Block layout (version 1):
//
//	magic "Gc", version byte
//	uvarint record count
//	uvarint present-field bitmask (which columns the block carries — a
//	    projected encoder writes partial blocks; FieldFlag is always present
//	    so the record count stays byte-backed)
//	per present field, in bit order:
//	    uvarint column byte length
//	    column payload
//
// Column encodings (all integers varint/uvarint, deltas zigzag via varint):
//
//	name   per-record uvarint lengths, then concatenated bytes
//	flag   per-record uvarint
//	coord  per-record varint ΔRefID, varint ΔPos (delta from previous record)
//	mapq   one raw byte per record
//	cigar  per-record uvarint op counts, then (uvarint len, op byte) stream
//	mate   per-record varint ΔMateRef, varint ΔMatePos, varint TempLen
//	seq    per-record uvarint lengths; uvarint exception count; exceptions as
//	       (uvarint gap in global base index, original byte); then per-record
//	       2-bit packed bases (bytes outside the uppercase ACGT alphabet pack
//	       as their case-fold or code 0 and are restored from the exception
//	       list — self-contained, unlike the Fig 4 codec whose N restoration
//	       rides the quality stream)
//	qual   mode byte (0 Huffman-delta via compress.EncodeQualBlock, 1 raw for
//	       out-of-range bytes); per-record uvarint lengths; payload
//	tags   per-record uvarint tag counts with (uvarint klen, uvarint vlen)
//	       pairs, then concatenated key/value bytes in sorted-key order
//
// The batch decoder is arena-backed: names and tag strings are substrings of
// one string allocation per column, cigar ops slice one shared []CigarOp
// slab, and seq/qual bases decode into shared byte slabs — per-record
// allocations are amortized to a handful per column. Decoded records may
// therefore share backing arrays; like every dataset partition they must be
// treated as immutable (in-place writes stay record-local because slab
// regions are disjoint, but appends must copy).
package colfmt

import (
	"encoding/binary"
	"fmt"
	"sort"

	"github.com/gpf-go/gpf/internal/bufpool"
	"github.com/gpf-go/gpf/internal/compress"
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/sam"
)

// Field bits of the columnar layout, in column order. The values double as
// engine.FieldMask bits: ReadingFields masks are built by OR-ing these.
const (
	FieldName engine.FieldMask = 1 << iota
	FieldFlag
	FieldCoord // RefID + Pos
	FieldMapQ
	FieldCigar
	FieldMate // MateRef + MatePos + TempLen
	FieldSeq
	FieldQual
	FieldTags

	numFields = 9
)

// AllFields selects every column of the v1 layout.
const AllFields = engine.FieldMask(1<<numFields) - 1

const (
	colMagic0  = 'G'
	colMagic1  = 'c'
	colVersion = 1

	qualModeHuffman = 0
	qualModeRaw     = 1
)

// Codec is the columnar serializer for []sam.Record partitions. The zero
// value encodes and decodes every column; Project returns a view that decodes
// only the masked columns (pruned fields come back as zero values). Codec is
// stateless and safe for concurrent use.
type Codec struct {
	mask    engine.FieldMask
	projSet bool
}

// Name identifies the codec in metrics.
func (Codec) Name() string { return "columnar" }

// Columnar marks the codec for the engine's DisableColumnar ablation.
func (Codec) Columnar() bool { return true }

// Project returns a codec decoding only the columns in mask, intersected
// with any projection already applied.
func (c Codec) Project(mask engine.FieldMask) engine.Serializer[sam.Record] {
	return Codec{mask: c.effMask() & mask, projSet: true}
}

// effMask returns the columns this codec decodes.
func (c Codec) effMask() engine.FieldMask {
	if c.projSet {
		return c.mask
	}
	return AllFields
}

// Marshal encodes recs as one columnar block carrying exactly the projected
// columns: the block's present-field bitmask records which columns it holds,
// so a partial block (a shuffle wire block pruned by the projection planner)
// is smaller on the wire, not just cheaper to decode. The unprojected codec
// writes every column. Absent columns decode as zero values.
func (c Codec) Marshal(recs []sam.Record) ([]byte, error) {
	// The flag column (one uvarint per record) is always included so every
	// block's record count stays byte-backed — the decoder's corruption guard
	// (count vs block size) relies on at least one per-record column.
	present := c.effMask()&AllFields | FieldFlag
	var cols [numFields][]byte
	for bit := 0; bit < numFields; bit++ {
		if present&(1<<bit) == 0 {
			continue
		}
		col, err := encodeColumn(bit, recs)
		if err != nil {
			return nil, fmt.Errorf("colfmt: column %d: %w", bit, err)
		}
		cols[bit] = col
	}

	buf := bufpool.Get()
	defer bufpool.Put(buf)
	var tmp [binary.MaxVarintLen64]byte
	buf.Write([]byte{colMagic0, colMagic1, colVersion})
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(recs)))])
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(present))])
	for bit := 0; bit < numFields; bit++ {
		if present&(1<<bit) == 0 {
			continue
		}
		buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(cols[bit])))])
		buf.Write(cols[bit])
	}
	return bufpool.Bytes(buf), nil
}

// encodeColumn dispatches one column to its encoder.
func encodeColumn(bit int, recs []sam.Record) ([]byte, error) {
	switch engine.FieldMask(1) << bit {
	case FieldName:
		return encNameCol(recs), nil
	case FieldFlag:
		return encFlagCol(recs), nil
	case FieldCoord:
		return encCoordCol(recs), nil
	case FieldMapQ:
		return encMapQCol(recs), nil
	case FieldCigar:
		return encCigarCol(recs), nil
	case FieldMate:
		return encMateCol(recs), nil
	case FieldSeq:
		return encSeqCol(recs), nil
	case FieldQual:
		return encQualCol(recs)
	case FieldTags:
		return encTagsCol(recs), nil
	}
	return nil, fmt.Errorf("unknown column bit %d", bit)
}

// Unmarshal decodes a block, materializing only the projected columns.
func (c Codec) Unmarshal(data []byte) ([]sam.Record, error) {
	recs, _, err := c.UnmarshalStats(data)
	return recs, err
}

// UnmarshalStats is Unmarshal with byte accounting: decoded covers the
// header, framing and materialized columns; pruned covers columns the
// projection mask skipped.
func (c Codec) UnmarshalStats(data []byte) ([]sam.Record, engine.DecodeStats, error) {
	var st engine.DecodeStats
	orig := int64(len(data))
	if len(data) < 3 || data[0] != colMagic0 || data[1] != colMagic1 {
		return nil, st, fmt.Errorf("colfmt: bad magic")
	}
	if data[2] != colVersion {
		return nil, st, fmt.Errorf("colfmt: unsupported version %d", data[2])
	}
	rest := data[3:]
	count, rest, err := getUvarint(rest)
	if err != nil {
		return nil, st, fmt.Errorf("colfmt: record count: %w", err)
	}
	present, rest, err := getUvarint(rest)
	if err != nil {
		return nil, st, fmt.Errorf("colfmt: present mask: %w", err)
	}
	if engine.FieldMask(present)&^AllFields != 0 {
		return nil, st, fmt.Errorf("colfmt: unsupported present mask %#x", present)
	}
	// The block carries only the columns in its present mask (a planner-pruned
	// wire block is partial); absent columns stay zero values. A flag column
	// costs one byte per record, so when present a count exceeding the block
	// length is corrupt — the general guard below rejects before allocating.
	if count > uint64(len(data)) {
		return nil, st, fmt.Errorf("colfmt: record count %d exceeds block size %d", count, len(data))
	}
	mask := c.effMask()
	recs := make([]sam.Record, count)
	for bit := 0; bit < numFields; bit++ {
		if engine.FieldMask(present)&(1<<bit) == 0 {
			continue
		}
		colLen, r2, err := getUvarint(rest)
		if err != nil {
			return nil, st, fmt.Errorf("colfmt: column %d length: %w", bit, err)
		}
		rest = r2
		if colLen > uint64(len(rest)) {
			return nil, st, fmt.Errorf("colfmt: column %d overruns block: %d > %d", bit, colLen, len(rest))
		}
		col := rest[:colLen]
		rest = rest[colLen:]
		if mask&(1<<bit) == 0 {
			st.PrunedBytes += int64(colLen)
			continue
		}
		if err := decodeColumn(bit, col, recs); err != nil {
			return nil, st, fmt.Errorf("colfmt: column %d: %w", bit, err)
		}
	}
	if len(rest) != 0 {
		return nil, st, fmt.Errorf("colfmt: %d trailing bytes after columns", len(rest))
	}
	st.DecodedBytes = orig - st.PrunedBytes
	return recs, st, nil
}

// decodeColumn dispatches one column payload to its decoder.
func decodeColumn(bit int, col []byte, recs []sam.Record) error {
	switch engine.FieldMask(1) << bit {
	case FieldName:
		return decNameCol(col, recs)
	case FieldFlag:
		return decFlagCol(col, recs)
	case FieldCoord:
		return decCoordCol(col, recs)
	case FieldMapQ:
		return decMapQCol(col, recs)
	case FieldCigar:
		return decCigarCol(col, recs)
	case FieldMate:
		return decMateCol(col, recs)
	case FieldSeq:
		return decSeqCol(col, recs)
	case FieldQual:
		return decQualCol(col, recs)
	case FieldTags:
		return decTagsCol(col, recs)
	}
	return fmt.Errorf("unknown column bit %d", bit)
}

// getUvarint reads one uvarint off b.
func getUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated uvarint")
	}
	return v, b[n:], nil
}

// getVarint reads one zigzag varint off b.
func getVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated varint")
	}
	return v, b[n:], nil
}

// readLengths decodes count per-record uvarint lengths from col, returning
// the lengths, their sum, and the remaining payload. maxTotal caps the sum —
// a corruption guard sized by the caller to the column's densest legal
// packing (4 bases/byte for 2-bit seq, up to 8 symbols/byte for Huffman
// qual) so a corrupt length cannot trigger a huge slab allocation; exact
// consistency is still verified by the column decoders afterwards.
func readLengths(col []byte, count, maxTotal int) ([]int, int, []byte, error) {
	lens := make([]int, count)
	total := 0
	for i := 0; i < count; i++ {
		v, rest, err := getUvarint(col)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("length %d: %w", i, err)
		}
		col = rest
		lens[i] = int(v)
		total += int(v)
		if v > uint64(maxTotal) || total > maxTotal {
			return nil, 0, nil, fmt.Errorf("lengths through %d sum to %d, exceeding column bound %d", i, total, maxTotal)
		}
	}
	return lens, total, col, nil
}

// --- name column ---

func encNameCol(recs []sam.Record) []byte {
	var dst []byte
	for i := range recs {
		dst = binary.AppendUvarint(dst, uint64(len(recs[i].Name)))
	}
	for i := range recs {
		dst = append(dst, recs[i].Name...)
	}
	return dst
}

func decNameCol(col []byte, recs []sam.Record) error {
	lens, total, blob, err := readLengths(col, len(recs), len(col))
	if err != nil {
		return err
	}
	if len(blob) != total {
		return fmt.Errorf("name bytes: have %d, lengths sum to %d", len(blob), total)
	}
	arena := string(blob)
	pos := 0
	for i, l := range lens {
		recs[i].Name = arena[pos : pos+l]
		pos += l
	}
	return nil
}

// --- flag column ---

func encFlagCol(recs []sam.Record) []byte {
	var dst []byte
	for i := range recs {
		dst = binary.AppendUvarint(dst, uint64(recs[i].Flag))
	}
	return dst
}

func decFlagCol(col []byte, recs []sam.Record) error {
	for i := range recs {
		v, rest, err := getUvarint(col)
		if err != nil {
			return fmt.Errorf("flag %d: %w", i, err)
		}
		if v > 0xffff {
			return fmt.Errorf("flag %d = %d out of range", i, v)
		}
		col = rest
		recs[i].Flag = uint16(v)
	}
	if len(col) != 0 {
		return fmt.Errorf("%d trailing flag bytes", len(col))
	}
	return nil
}

// --- coord column (RefID + Pos, deltas from the previous record) ---

func encCoordCol(recs []sam.Record) []byte {
	var dst []byte
	var prevRef, prevPos int64
	for i := range recs {
		dst = binary.AppendVarint(dst, int64(recs[i].RefID)-prevRef)
		dst = binary.AppendVarint(dst, int64(recs[i].Pos)-prevPos)
		prevRef, prevPos = int64(recs[i].RefID), int64(recs[i].Pos)
	}
	return dst
}

func decCoordCol(col []byte, recs []sam.Record) error {
	var prevRef, prevPos int64
	for i := range recs {
		dr, rest, err := getVarint(col)
		if err != nil {
			return fmt.Errorf("refid %d: %w", i, err)
		}
		dp, rest, err := getVarint(rest)
		if err != nil {
			return fmt.Errorf("pos %d: %w", i, err)
		}
		col = rest
		prevRef += dr
		prevPos += dp
		recs[i].RefID = int32(prevRef)
		recs[i].Pos = int32(prevPos)
	}
	if len(col) != 0 {
		return fmt.Errorf("%d trailing coord bytes", len(col))
	}
	return nil
}

// --- mapq column ---

func encMapQCol(recs []sam.Record) []byte {
	dst := make([]byte, len(recs))
	for i := range recs {
		dst[i] = recs[i].MapQ
	}
	return dst
}

func decMapQCol(col []byte, recs []sam.Record) error {
	if len(col) != len(recs) {
		return fmt.Errorf("mapq bytes: have %d, want %d", len(col), len(recs))
	}
	for i := range recs {
		recs[i].MapQ = col[i]
	}
	return nil
}

// --- cigar column ---

func encCigarCol(recs []sam.Record) []byte {
	var dst []byte
	for i := range recs {
		dst = binary.AppendUvarint(dst, uint64(len(recs[i].Cigar)))
	}
	for i := range recs {
		for _, op := range recs[i].Cigar {
			dst = binary.AppendUvarint(dst, uint64(op.Len))
			dst = append(dst, op.Op)
		}
	}
	return dst
}

func decCigarCol(col []byte, recs []sam.Record) error {
	nops, totalOps, ops, err := readLengths(col, len(recs), len(col))
	if err != nil {
		return err
	}
	slab := make(sam.Cigar, totalOps)
	for j := range slab {
		l, rest, err := getUvarint(ops)
		if err != nil {
			return fmt.Errorf("op %d length: %w", j, err)
		}
		if l > 1<<31 {
			return fmt.Errorf("op %d length %d out of range", j, l)
		}
		if len(rest) == 0 {
			return fmt.Errorf("op %d missing op byte", j)
		}
		slab[j] = sam.CigarOp{Len: int(l), Op: rest[0]}
		ops = rest[1:]
	}
	if len(ops) != 0 {
		return fmt.Errorf("%d trailing cigar bytes", len(ops))
	}
	pos := 0
	for i, n := range nops {
		if n > 0 {
			recs[i].Cigar = slab[pos : pos+n : pos+n]
		}
		pos += n
	}
	return nil
}

// --- mate column (MateRef + MatePos deltas, TempLen raw zigzag) ---

func encMateCol(recs []sam.Record) []byte {
	var dst []byte
	var prevRef, prevPos int64
	for i := range recs {
		dst = binary.AppendVarint(dst, int64(recs[i].MateRef)-prevRef)
		dst = binary.AppendVarint(dst, int64(recs[i].MatePos)-prevPos)
		dst = binary.AppendVarint(dst, int64(recs[i].TempLen))
		prevRef, prevPos = int64(recs[i].MateRef), int64(recs[i].MatePos)
	}
	return dst
}

func decMateCol(col []byte, recs []sam.Record) error {
	var prevRef, prevPos int64
	for i := range recs {
		dr, rest, err := getVarint(col)
		if err != nil {
			return fmt.Errorf("materef %d: %w", i, err)
		}
		dp, rest, err := getVarint(rest)
		if err != nil {
			return fmt.Errorf("matepos %d: %w", i, err)
		}
		tl, rest, err := getVarint(rest)
		if err != nil {
			return fmt.Errorf("templen %d: %w", i, err)
		}
		col = rest
		prevRef += dr
		prevPos += dp
		recs[i].MateRef = int32(prevRef)
		recs[i].MatePos = int32(prevPos)
		recs[i].TempLen = int32(tl)
	}
	if len(col) != 0 {
		return fmt.Errorf("%d trailing mate bytes", len(col))
	}
	return nil
}

// --- seq column ---

func encSeqCol(recs []sam.Record) []byte {
	var dst []byte
	for i := range recs {
		dst = binary.AppendUvarint(dst, uint64(len(recs[i].Seq)))
	}
	// Exceptions: global base index (cumulative across the concatenated
	// sequences) and original byte for every base that does not round-trip
	// through the 2-bit alphabet — non-ACGT (N etc.) and lowercase bases,
	// which BaseCode case-folds.
	var excIdx []int
	var excByte []byte
	gi := 0
	for i := range recs {
		for _, b := range recs[i].Seq {
			if code := genome.BaseCode(b); code < 0 || genome.CodeBase(code) != b {
				excIdx = append(excIdx, gi)
				excByte = append(excByte, b)
			}
			gi++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(excIdx)))
	prev := 0
	for j, idx := range excIdx {
		dst = binary.AppendUvarint(dst, uint64(idx-prev))
		dst = append(dst, excByte[j])
		prev = idx
	}
	for i := range recs {
		dst = compress.Pack2Bit(dst, recs[i].Seq)
	}
	return dst
}

func decSeqCol(col []byte, recs []sam.Record) error {
	lens, total, rest, err := readLengths(col, len(recs), 4*len(col))
	if err != nil {
		return err
	}
	nExc, rest, err := getUvarint(rest)
	if err != nil {
		return fmt.Errorf("exception count: %w", err)
	}
	if nExc > uint64(len(rest)) {
		return fmt.Errorf("exception count %d exceeds column size %d", nExc, len(rest))
	}
	excIdx := make([]int, nExc)
	excByte := make([]byte, nExc)
	prev := 0
	for j := range excIdx {
		gap, r2, err := getUvarint(rest)
		if err != nil {
			return fmt.Errorf("exception %d gap: %w", j, err)
		}
		if len(r2) == 0 {
			return fmt.Errorf("exception %d missing byte", j)
		}
		idx := prev + int(gap)
		if idx < 0 || idx >= total {
			return fmt.Errorf("exception %d index %d out of range [0,%d)", j, idx, total)
		}
		excIdx[j] = idx
		excByte[j] = r2[0]
		rest = r2[1:]
		prev = idx
	}
	slab := make([]byte, total)
	pos := 0
	for i, l := range lens {
		consumed, err := compress.Unpack2Bit(slab[pos:pos+l], rest)
		if err != nil {
			return fmt.Errorf("seq %d: %w", i, err)
		}
		rest = rest[consumed:]
		if l > 0 {
			recs[i].Seq = slab[pos : pos+l : pos+l]
		}
		pos += l
	}
	if len(rest) != 0 {
		return fmt.Errorf("%d trailing seq bytes", len(rest))
	}
	for j, idx := range excIdx {
		slab[idx] = excByte[j]
	}
	return nil
}

// --- qual column ---

func encQualCol(recs []sam.Record) ([]byte, error) {
	// The Huffman-delta coder covers quality bytes 0..126 (the legal FASTQ
	// range plus the N marker); anything outside selects the raw fallback.
	mode := byte(qualModeHuffman)
scan:
	for i := range recs {
		for _, b := range recs[i].Qual {
			if b > 126 {
				mode = qualModeRaw
				break scan
			}
		}
	}
	dst := []byte{mode}
	for i := range recs {
		dst = binary.AppendUvarint(dst, uint64(len(recs[i].Qual)))
	}
	if mode == qualModeRaw {
		for i := range recs {
			dst = append(dst, recs[i].Qual...)
		}
		return dst, nil
	}
	quals := make([][]byte, len(recs))
	for i := range recs {
		quals[i] = recs[i].Qual
	}
	block, err := compress.EncodeQualBlock(quals)
	if err != nil {
		return nil, err
	}
	return append(dst, block...), nil
}

func decQualCol(col []byte, recs []sam.Record) error {
	if len(col) == 0 {
		return fmt.Errorf("missing qual mode byte")
	}
	mode := col[0]
	lens, total, payload, err := readLengths(col[1:], len(recs), 8*len(col))
	if err != nil {
		return err
	}
	switch mode {
	case qualModeRaw:
		if len(payload) != total {
			return fmt.Errorf("raw qual bytes: have %d, lengths sum to %d", len(payload), total)
		}
		slab := make([]byte, total)
		copy(slab, payload)
		pos := 0
		for i, l := range lens {
			if l > 0 {
				recs[i].Qual = slab[pos : pos+l : pos+l]
			}
			pos += l
		}
		return nil
	case qualModeHuffman:
		quals, err := compress.DecodeQualBlock(payload, lens)
		if err != nil {
			return err
		}
		for i, q := range quals {
			if len(q) > 0 {
				recs[i].Qual = q
			}
		}
		return nil
	}
	return fmt.Errorf("unknown qual mode %d", mode)
}

// --- tags column ---

func encTagsCol(recs []sam.Record) []byte {
	var dst []byte
	var blob []byte
	var keys []string
	for i := range recs {
		tags := recs[i].Tags
		dst = binary.AppendUvarint(dst, uint64(len(tags)))
		if len(tags) == 0 {
			continue
		}
		keys = keys[:0]
		for k := range tags {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v := tags[k]
			dst = binary.AppendUvarint(dst, uint64(len(k)))
			dst = binary.AppendUvarint(dst, uint64(len(v)))
			blob = append(blob, k...)
			blob = append(blob, v...)
		}
	}
	return append(dst, blob...)
}

func decTagsCol(col []byte, recs []sam.Record) error {
	counts := make([]int, len(recs))
	var pieceLens []int
	total := 0
	for i := range recs {
		n, rest, err := getUvarint(col)
		if err != nil {
			return fmt.Errorf("tag count %d: %w", i, err)
		}
		if n > uint64(len(rest)) {
			return fmt.Errorf("tag count %d = %d exceeds column size %d", i, n, len(rest))
		}
		col = rest
		counts[i] = int(n)
		for j := 0; j < int(n); j++ {
			kl, rest, err := getUvarint(col)
			if err != nil {
				return fmt.Errorf("record %d tag %d klen: %w", i, j, err)
			}
			vl, rest, err := getUvarint(rest)
			if err != nil {
				return fmt.Errorf("record %d tag %d vlen: %w", i, j, err)
			}
			if kl > uint64(len(col)) || vl > uint64(len(col)) {
				return fmt.Errorf("record %d tag %d lengths out of range", i, j)
			}
			col = rest
			pieceLens = append(pieceLens, int(kl), int(vl))
			total += int(kl) + int(vl)
		}
	}
	if len(col) != total {
		return fmt.Errorf("tag bytes: have %d, lengths sum to %d", len(col), total)
	}
	arena := string(col)
	pos, piece := 0, 0
	for i, n := range counts {
		if n == 0 {
			continue
		}
		m := make(map[string]string, n)
		for j := 0; j < n; j++ {
			kl, vl := pieceLens[piece], pieceLens[piece+1]
			piece += 2
			k := arena[pos : pos+kl]
			v := arena[pos+kl : pos+kl+vl]
			pos += kl + vl
			m[k] = v
		}
		recs[i].Tags = m
	}
	return nil
}
