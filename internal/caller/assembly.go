package caller

import (
	"sort"
)

// Local de Bruijn assembly: candidate haplotypes for an active region are
// paths through the k-mer graph built from the spanning reads plus the
// reference backbone, anchored at the first and last reference k-mers.

// dbgEdge is one outgoing edge of a k-mer node.
type dbgEdge struct {
	next    string
	base    byte
	support int
}

// assembleHaplotypes builds the graph from refWindow and reads and
// enumerates up to maxH haplotypes (always including the reference window).
// minSupport prunes read-only k-mers seen fewer times.
func assembleHaplotypes(refWindow []byte, reads [][]byte, k, maxH, minSupport int) [][]byte {
	haps := [][]byte{refWindow}
	if len(refWindow) <= k || k < 4 {
		return haps
	}
	// Count k-mers.
	support := map[string]int{}
	addKmers := func(seq []byte, weight int) {
		for i := 0; i+k <= len(seq); i++ {
			km := seq[i : i+k]
			if hasN(km) {
				continue
			}
			support[string(km)] += weight
		}
	}
	for _, r := range reads {
		addKmers(r, 1)
	}
	// Reference k-mers always survive pruning.
	refKmers := map[string]bool{}
	for i := 0; i+k <= len(refWindow); i++ {
		km := string(refWindow[i : i+k])
		refKmers[km] = true
		if support[km] == 0 {
			support[km] = 1
		}
	}
	// Prune weakly supported non-reference k-mers.
	for km, s := range support {
		if s < minSupport && !refKmers[km] {
			delete(support, km)
		}
	}
	// Adjacency.
	adj := map[string][]dbgEdge{}
	for km := range support {
		prefix := km[1:]
		for _, b := range []byte("ACGT") {
			next := prefix + string(b)
			if s, ok := support[next]; ok {
				adj[km] = append(adj[km], dbgEdge{next: next, base: b, support: s})
			}
		}
	}
	// Deterministic edge order: highest support first, then base.
	for km := range adj {
		edges := adj[km]
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].support != edges[j].support {
				return edges[i].support > edges[j].support
			}
			return edges[i].base < edges[j].base
		})
	}

	source := string(refWindow[:k])
	sink := string(refWindow[len(refWindow)-k:])
	if _, ok := support[source]; !ok {
		return haps
	}
	maxLen := len(refWindow) + 60

	// Bounded DFS from source to sink.
	var paths [][]byte
	var walk func(cur string, acc []byte, visited map[string]int)
	walk = func(cur string, acc []byte, visited map[string]int) {
		if len(paths) >= maxH*4 || len(acc) > maxLen {
			return
		}
		if cur == sink && len(acc) >= len(refWindow)-60 {
			paths = append(paths, append([]byte(nil), acc...))
			// Continue: the sink k-mer may recur, but bounded depth stops us.
		}
		if visited[cur] >= 2 { // allow one revisit for short tandem loops
			return
		}
		visited[cur]++
		for _, e := range adj[cur] {
			walk(e.next, append(acc, e.base), visited)
		}
		visited[cur]--
	}
	walk(source, append([]byte(nil), source...), map[string]int{})

	// Score paths by summed k-mer support, keep the best non-reference ones.
	type scored struct {
		seq   []byte
		score int
	}
	var cands []scored
	seen := map[string]bool{string(refWindow): true}
	for _, p := range paths {
		if seen[string(p)] {
			continue
		}
		seen[string(p)] = true
		s := 0
		for i := 0; i+k <= len(p); i++ {
			s += support[string(p[i:i+k])]
		}
		cands = append(cands, scored{seq: p, score: s})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return string(cands[i].seq) < string(cands[j].seq)
	})
	for _, c := range cands {
		if len(haps) >= maxH {
			break
		}
		haps = append(haps, c.seq)
	}
	return haps
}

func hasN(seq []byte) bool {
	for _, b := range seq {
		switch b {
		case 'A', 'C', 'G', 'T':
		default:
			return true
		}
	}
	return false
}
