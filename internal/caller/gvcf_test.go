package caller

import (
	"bytes"
	"testing"

	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/sam"
	"github.com/gpf-go/gpf/internal/vcf"
)

func coveredRecord(pos int32, length int) sam.Record {
	cg, _ := sam.ParseCigar("50M")
	if length != 50 {
		cg = sam.Cigar{{Len: length, Op: 'M'}}
	}
	return sam.Record{
		Name: "r", RefID: 0, Pos: pos, MapQ: 60, Cigar: cg,
		Seq: bytes.Repeat([]byte("A"), length), Qual: bytes.Repeat([]byte("I"), length),
	}
}

func gvcfRef(t *testing.T) *genome.Reference {
	t.Helper()
	return genome.Synthesize(genome.DefaultSynthConfig(601, 2000, 1))
}

func TestReferenceBlocksCoveredRun(t *testing.T) {
	ref := gvcfRef(t)
	// Three overlapping reads covering [100, 200).
	records := []sam.Record{coveredRecord(100, 50), coveredRecord(130, 50), coveredRecord(150, 50)}
	iv := genome.Interval{Contig: 0, Start: 100, End: 200}
	blocks := ReferenceBlocks(records, ref, iv, nil, 1)
	if len(blocks) != 1 {
		t.Fatalf("blocks = %+v", blocks)
	}
	b := blocks[0]
	if b.Pos != 100 || b.Alt != NonRefAlt || b.GT != vcf.HomRef {
		t.Fatalf("block = %+v", b)
	}
	end, ok := BlockEnd(&b)
	if !ok || end != 200 {
		t.Fatalf("END = %d %v", end, ok)
	}
	if b.Depth != 1 { // minimum depth across the run
		t.Fatalf("block depth = %d", b.Depth)
	}
}

func TestReferenceBlocksSplitByVariant(t *testing.T) {
	ref := gvcfRef(t)
	records := []sam.Record{coveredRecord(100, 100)}
	iv := genome.Interval{Contig: 0, Start: 100, End: 200}
	calls := []vcf.Record{{Chrom: "chr1", Pos: 150, Ref: "A", Alt: "T"}}
	blocks := ReferenceBlocks(records, ref, iv, calls, 1)
	if len(blocks) != 2 {
		t.Fatalf("variant should split the block: %+v", blocks)
	}
	if blocks[0].Pos != 100 || blocks[1].Pos != 151 {
		t.Fatalf("block starts: %d %d", blocks[0].Pos, blocks[1].Pos)
	}
	if end, _ := BlockEnd(&blocks[0]); end != 150 {
		t.Fatalf("first block END = %d, want 150 (1-based inclusive before variant)", end)
	}
}

func TestReferenceBlocksDeletionSpanMasked(t *testing.T) {
	ref := gvcfRef(t)
	records := []sam.Record{coveredRecord(100, 100)}
	iv := genome.Interval{Contig: 0, Start: 100, End: 200}
	// A 5-base deletion call masks positions 150..155.
	calls := []vcf.Record{{Chrom: "chr1", Pos: 150, Ref: "AACCGG", Alt: "A"}}
	blocks := ReferenceBlocks(records, ref, iv, calls, 1)
	if len(blocks) != 2 {
		t.Fatalf("blocks = %+v", blocks)
	}
	if blocks[1].Pos != 156 {
		t.Fatalf("second block should start after the deletion span: %d", blocks[1].Pos)
	}
}

func TestReferenceBlocksRespectMinDepth(t *testing.T) {
	ref := gvcfRef(t)
	records := []sam.Record{coveredRecord(100, 50)} // depth 1 over [100,150)
	iv := genome.Interval{Contig: 0, Start: 100, End: 200}
	if blocks := ReferenceBlocks(records, ref, iv, nil, 2); blocks != nil {
		t.Fatalf("depth 1 < minDepth 2 should produce no blocks: %+v", blocks)
	}
	// Duplicates and unmapped reads contribute no depth.
	dup := coveredRecord(100, 50)
	dup.SetDuplicate(true)
	if blocks := ReferenceBlocks([]sam.Record{dup}, ref, iv, nil, 1); blocks != nil {
		t.Fatalf("duplicate reads should not count: %+v", blocks)
	}
}

func TestReferenceBlocksEmptyInterval(t *testing.T) {
	ref := gvcfRef(t)
	if got := ReferenceBlocks(nil, ref, genome.Interval{Contig: 0, Start: 5, End: 5}, nil, 1); got != nil {
		t.Fatalf("empty interval: %+v", got)
	}
	if got := ReferenceBlocks(nil, ref, genome.Interval{Contig: 9, Start: 0, End: 10}, nil, 1); got != nil {
		t.Fatalf("bad contig: %+v", got)
	}
}

func TestMergeGVCFOrdering(t *testing.T) {
	calls := []vcf.Record{{Chrom: "chr1", Pos: 50, Ref: "A", Alt: "T"}}
	blocks := []vcf.Record{
		{Chrom: "chr1", Pos: 0, Ref: "A", Alt: NonRefAlt},
		{Chrom: "chr1", Pos: 51, Ref: "C", Alt: NonRefAlt},
	}
	merged := MergeGVCF(calls, blocks)
	if len(merged) != 3 {
		t.Fatalf("merged = %d", len(merged))
	}
	if merged[0].Pos != 0 || merged[1].Pos != 50 || merged[2].Pos != 51 {
		t.Fatalf("order: %d %d %d", merged[0].Pos, merged[1].Pos, merged[2].Pos)
	}
}

func TestBlockEndNonBlock(t *testing.T) {
	r := vcf.Record{Alt: "T"}
	if _, ok := BlockEnd(&r); ok {
		t.Fatal("non-block record must not parse as block")
	}
	bad := vcf.Record{Alt: NonRefAlt, Info: map[string]string{"END": "x"}}
	if _, ok := BlockEnd(&bad); ok {
		t.Fatal("bad END must not parse")
	}
}
