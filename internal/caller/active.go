// Package caller implements the Caller stage: a HaplotypeCaller-equivalent
// variant caller (§2.1, Table 2: "calling variants via local de-novo
// assembly of haplotypes in an active region based on paired-HMM algorithm").
// The pipeline is: detect active regions from pileup disagreement, assemble
// candidate haplotypes with a local de Bruijn graph, score every read against
// every haplotype with a log-space pair-HMM, genotype diploid haplotype
// pairs, and emit VCF records. A simple pileup caller is included as the
// baseline comparator.
package caller

import (
	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/sam"
)

// Config tunes the caller.
type Config struct {
	K              int     // de Bruijn k-mer size
	MaxHaplotypes  int     // haplotypes kept per region
	RegionPad      int     // reference padding around an active region
	MinBaseQual    int     // bases below this Phred are ignored in detection
	MinActiveFrac  float64 // fraction of disagreeing bases that activates a site
	MinActiveDepth int     // minimum depth for a site to activate
	MinQual        float64 // emit threshold on variant QUAL
	UseGVCF        bool    // also emit reference blocks (gVCF mode)
	// MaxReadsPerRegion caps the reads entering the pair-HMM per active
	// region (GATK-style downsampling): coverage pileups beyond ~10,000x
	// (§4.4) would otherwise make single regions arbitrarily expensive.
	MaxReadsPerRegion int
}

// DefaultConfig returns HaplotypeCaller-like parameters for 100 bp reads.
func DefaultConfig() Config {
	return Config{
		K:                 19,
		MaxHaplotypes:     8,
		RegionPad:         30,
		MinBaseQual:       10,
		MinActiveFrac:     0.15,
		MinActiveDepth:    3,
		MinQual:           20,
		MaxReadsPerRegion: 256,
	}
}

// pileupCell accumulates per-reference-position evidence.
type pileupCell struct {
	depth    int
	mismatch int
	indel    int
}

// FindActiveRegions scans aligned records for reference positions where
// reads disagree with the reference (mismatches or indel breakpoints) and
// returns padded, merged intervals around them.
func FindActiveRegions(records []sam.Record, ref *genome.Reference, cfg Config) []genome.Interval {
	cells := map[genome.Position]*pileupCell{}
	bump := func(contig, pos int) *pileupCell {
		key := genome.Position{Contig: contig, Pos: pos}
		c := cells[key]
		if c == nil {
			c = &pileupCell{}
			cells[key] = c
		}
		return c
	}
	for i := range records {
		r := &records[i]
		if r.Unmapped() || r.Duplicate() || len(r.Seq) == 0 {
			continue
		}
		contig := int(r.RefID)
		refSeq := ref.Contig(contig)
		if refSeq == nil {
			continue
		}
		readPos, refPos := 0, int(r.Pos)
		for _, op := range r.Cigar {
			switch op.Op {
			case 'M', '=', 'X':
				for k := 0; k < op.Len; k++ {
					rp := refPos + k
					if rp < 0 || rp >= len(refSeq.Seq) || readPos+k >= len(r.Seq) {
						continue
					}
					if int(r.Qual[readPos+k])-33 < cfg.MinBaseQual {
						continue
					}
					c := bump(contig, rp)
					c.depth++
					if r.Seq[readPos+k] != refSeq.Seq[rp] {
						c.mismatch++
					}
				}
				readPos += op.Len
				refPos += op.Len
			case 'I':
				c := bump(contig, refPos)
				c.depth++
				c.indel++
				readPos += op.Len
			case 'D', 'N':
				c := bump(contig, refPos)
				c.depth++
				c.indel++
				refPos += op.Len
			case 'S':
				readPos += op.Len
			}
		}
	}
	var ivs []genome.Interval
	for pos, c := range cells {
		if c.depth < cfg.MinActiveDepth {
			continue
		}
		frac := float64(c.mismatch+c.indel*2) / float64(c.depth)
		if frac < cfg.MinActiveFrac {
			continue
		}
		start := pos.Pos - cfg.RegionPad
		if start < 0 {
			start = 0
		}
		end := pos.Pos + cfg.RegionPad
		if contig := ref.Contig(pos.Contig); contig != nil && end > contig.Len() {
			end = contig.Len()
		}
		ivs = append(ivs, genome.Interval{Contig: pos.Contig, Start: start, End: end})
	}
	return genome.MergeIntervals(ivs)
}
