package caller

import (
	"fmt"
	"math"
	"sort"

	"github.com/gpf-go/gpf/internal/align"
	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/sam"
	"github.com/gpf-go/gpf/internal/vcf"
)

// hapVariant is a variant implied by a haplotype relative to the reference
// window (coordinates are reference-absolute).
type hapVariant struct {
	pos      int
	ref, alt string
}

// variantsFromHaplotype aligns hap against the reference window and extracts
// SNVs and indels in VCF representation (indels anchored on the previous
// reference base).
func variantsFromHaplotype(hap, refWindow []byte, windowStart int, sc align.Scoring) []hapVariant {
	_, refStart, cigar := align.FitAlign(hap, refWindow, sc)
	var out []hapVariant
	hapPos, refPos := 0, refStart
	for _, op := range cigar {
		switch op.Op {
		case 'M', '=', 'X':
			for k := 0; k < op.Len; k++ {
				if hap[hapPos+k] != refWindow[refPos+k] {
					out = append(out, hapVariant{
						pos: windowStart + refPos + k,
						ref: string(refWindow[refPos+k]),
						alt: string(hap[hapPos+k]),
					})
				}
			}
			hapPos += op.Len
			refPos += op.Len
		case 'I':
			if refPos > 0 {
				anchor := refWindow[refPos-1]
				out = append(out, hapVariant{
					pos: windowStart + refPos - 1,
					ref: string(anchor),
					alt: string(anchor) + string(hap[hapPos:hapPos+op.Len]),
				})
			}
			hapPos += op.Len
		case 'D':
			if refPos > 0 {
				anchor := refWindow[refPos-1]
				out = append(out, hapVariant{
					pos: windowStart + refPos - 1,
					ref: string(anchor) + string(refWindow[refPos:refPos+op.Len]),
					alt: string(anchor),
				})
			}
			refPos += op.Len
		}
	}
	return out
}

// regionRead is one read overlapping an active region.
type regionRead struct {
	seq  []byte
	qual []byte
}

// CallRegion genotypes one active region: assemble haplotypes from the
// overlapping reads, score reads against haplotypes with the pair-HMM, pick
// the maximum-likelihood diploid haplotype pair, and emit the variants it
// implies.
func CallRegion(records []sam.Record, ref *genome.Reference, region genome.Interval, cfg Config) []vcf.Record {
	contig := ref.Contig(region.Contig)
	if contig == nil {
		return nil
	}
	winStart := region.Start - cfg.RegionPad
	if winStart < 0 {
		winStart = 0
	}
	winEnd := region.End + cfg.RegionPad
	if winEnd > contig.Len() {
		winEnd = contig.Len()
	}
	refWindow := contig.Seq[winStart:winEnd]
	if hasN(refWindow) {
		return nil // assembly anchors require clean reference k-mers
	}

	// Gather overlapping, usable reads.
	var reads []regionRead
	var readSeqs [][]byte
	for i := range records {
		r := &records[i]
		if r.Unmapped() || r.Duplicate() || len(r.Seq) == 0 {
			continue
		}
		if int(r.RefID) != region.Contig {
			continue
		}
		if int(r.End()) <= winStart || int(r.Pos) >= winEnd {
			continue
		}
		reads = append(reads, regionRead{seq: r.Seq, qual: r.Qual})
		readSeqs = append(readSeqs, r.Seq)
	}
	if len(reads) == 0 {
		return nil
	}
	// Downsample pileups: keep a deterministic stride sample so the
	// pair-HMM cost per region is bounded regardless of coverage spikes.
	if cap := cfg.MaxReadsPerRegion; cap > 0 && len(reads) > cap {
		stride := float64(len(reads)) / float64(cap)
		sampled := make([]regionRead, 0, cap)
		sampledSeqs := make([][]byte, 0, cap)
		for i := 0; i < cap; i++ {
			j := int(float64(i) * stride)
			sampled = append(sampled, reads[j])
			sampledSeqs = append(sampledSeqs, readSeqs[j])
		}
		reads, readSeqs = sampled, sampledSeqs
	}

	haps := assembleHaplotypes(refWindow, readSeqs, cfg.K, cfg.MaxHaplotypes, 2)
	if len(haps) == 1 {
		return nil // only the reference haplotype: nothing to call
	}

	// Likelihood matrix: L[read][hap], computed batched so the pair-HMM
	// scratch rows are pooled once per region rather than per pair.
	seqs := make([][]byte, len(reads))
	quals := make([][]byte, len(reads))
	for i, rd := range reads {
		seqs[i] = rd.seq
		quals[i] = rd.qual
	}
	L := PairHMMBatch(seqs, quals, haps)

	// Diploid genotyping over haplotype pairs (h1 <= h2).
	bestH1, bestH2 := 0, 0
	bestLL := math.Inf(-1)
	var homRefLL float64
	ln2 := math.Log(2)
	for h1 := 0; h1 < len(haps); h1++ {
		for h2 := h1; h2 < len(haps); h2++ {
			ll := 0.0
			for i := range reads {
				ll += logSumExp2(L[i][h1], L[i][h2]) - ln2
			}
			if h1 == 0 && h2 == 0 {
				homRefLL = ll
			}
			if ll > bestLL {
				bestLL, bestH1, bestH2 = ll, h1, h2
			}
		}
	}
	if bestH1 == 0 && bestH2 == 0 {
		return nil
	}
	qual := 10 * (bestLL - homRefLL) / math.Ln10
	if qual < cfg.MinQual {
		return nil
	}
	if qual > 3000 {
		qual = 3000
	}

	// Variants on each chosen haplotype.
	sc := align.DefaultScoring()
	v1 := map[string]hapVariant{}
	v2 := map[string]hapVariant{}
	key := func(v hapVariant) string { return fmt.Sprintf("%d:%s>%s", v.pos, v.ref, v.alt) }
	if bestH1 != 0 {
		for _, v := range variantsFromHaplotype(haps[bestH1], refWindow, winStart, sc) {
			v1[key(v)] = v
		}
	}
	if bestH2 != 0 {
		for _, v := range variantsFromHaplotype(haps[bestH2], refWindow, winStart, sc) {
			v2[key(v)] = v
		}
	}
	union := map[string]hapVariant{}
	for k, v := range v1 {
		union[k] = v
	}
	for k, v := range v2 {
		union[k] = v
	}
	var out []vcf.Record
	for k, v := range union {
		gt := vcf.Het
		if _, in1 := v1[k]; in1 {
			if _, in2 := v2[k]; in2 {
				gt = vcf.HomAlt
			}
		}
		// Variants only inside the (unpadded) active region to avoid edge
		// artifacts from assembly anchoring.
		if v.pos < region.Start || v.pos >= region.End {
			continue
		}
		out = append(out, vcf.Record{
			Chrom: contig.Name,
			Pos:   v.pos,
			Ref:   v.ref,
			Alt:   v.alt,
			Qual:  qual,
			GT:    gt,
			Depth: len(reads),
		})
	}
	vcf.SortRecords(out)
	return out
}

// CallVariants runs active-region detection and per-region genotyping over a
// partition of records, returning sorted VCF records. It is the body of the
// HaplotypeCallerProcess.
func CallVariants(records []sam.Record, ref *genome.Reference, cfg Config) []vcf.Record {
	return CallVariantsFiltered(records, ref, cfg, nil)
}

// CallVariantsFiltered is CallVariants restricted to active regions for
// which keep returns true. Partitioned execution passes an ownership filter
// so a region overlapping several partition pads is genotyped exactly once —
// by the partition whose core interval contains its midpoint — keeping the
// expensive pair-HMM work proportional to owned territory.
func CallVariantsFiltered(records []sam.Record, ref *genome.Reference, cfg Config, keep func(genome.Interval) bool) []vcf.Record {
	regions := FindActiveRegions(records, ref, cfg)
	var out []vcf.Record
	for _, region := range regions {
		if keep != nil && !keep(region) {
			continue
		}
		out = append(out, CallRegion(records, ref, region, cfg)...)
	}
	// Deduplicate variants discovered from overlapping regions.
	vcf.SortRecords(out)
	dedup := out[:0]
	for i, r := range out {
		if i > 0 {
			p := dedup[len(dedup)-1]
			if p.Chrom == r.Chrom && p.Pos == r.Pos && p.Ref == r.Ref && p.Alt == r.Alt {
				continue
			}
		}
		dedup = append(dedup, r)
	}
	return dedup
}

// PileupCall is the simple statistical baseline: per-position allele counts
// with a binomial-style threshold. It catches SNVs only and serves as the
// comparator caller for the baseline pipelines.
func PileupCall(records []sam.Record, ref *genome.Reference, minDepth int, minFrac float64, minBaseQual int) []vcf.Record {
	type cell struct {
		depth int
		alt   map[byte]int
	}
	cells := map[genome.Position]*cell{}
	for i := range records {
		r := &records[i]
		if r.Unmapped() || r.Duplicate() || len(r.Seq) == 0 {
			continue
		}
		contig := int(r.RefID)
		refSeq := ref.Contig(contig)
		if refSeq == nil {
			continue
		}
		readPos, refPos := 0, int(r.Pos)
		for _, op := range r.Cigar {
			switch op.Op {
			case 'M', '=', 'X':
				for k := 0; k < op.Len; k++ {
					rp := refPos + k
					if rp < 0 || rp >= len(refSeq.Seq) || readPos+k >= len(r.Seq) {
						continue
					}
					if int(r.Qual[readPos+k])-33 < minBaseQual {
						continue
					}
					key := genome.Position{Contig: contig, Pos: rp}
					c := cells[key]
					if c == nil {
						c = &cell{alt: map[byte]int{}}
						cells[key] = c
					}
					c.depth++
					if b := r.Seq[readPos+k]; b != refSeq.Seq[rp] && b != 'N' {
						c.alt[b]++
					}
				}
				readPos += op.Len
				refPos += op.Len
			case 'I', 'S':
				readPos += op.Len
			case 'D', 'N':
				refPos += op.Len
			}
		}
	}
	var out []vcf.Record
	for pos, c := range cells {
		if c.depth < minDepth {
			continue
		}
		var bestAlt byte
		bestCount := 0
		for b, n := range c.alt {
			if n > bestCount || (n == bestCount && b < bestAlt) {
				bestAlt, bestCount = b, n
			}
		}
		frac := float64(bestCount) / float64(c.depth)
		if bestCount == 0 || frac < minFrac {
			continue
		}
		gt := vcf.Het
		if frac > 0.8 {
			gt = vcf.HomAlt
		}
		refSeq := ref.Contig(pos.Contig)
		out = append(out, vcf.Record{
			Chrom: refSeq.Name,
			Pos:   pos.Pos,
			Ref:   string(refSeq.Seq[pos.Pos]),
			Alt:   string(bestAlt),
			Qual:  float64(10 * bestCount),
			GT:    gt,
			Depth: c.depth,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Chrom != out[j].Chrom {
			return out[i].Chrom < out[j].Chrom
		}
		return out[i].Pos < out[j].Pos
	})
	return out
}
