package caller

import (
	"bytes"
	"math"
	"testing"

	"github.com/gpf-go/gpf/internal/align"
	"github.com/gpf-go/gpf/internal/cleaner"
	"github.com/gpf-go/gpf/internal/fastq"
	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/sam"
	"github.com/gpf-go/gpf/internal/vcf"
)

func TestLogSumExp(t *testing.T) {
	a := math.Log(0.3)
	b := math.Log(0.7)
	if got := logSumExp2(a, b); math.Abs(got) > 1e-12 {
		t.Fatalf("logSumExp2(log .3, log .7) = %v, want 0", got)
	}
	inf := math.Inf(-1)
	if got := logSumExp2(inf, b); got != b {
		t.Fatalf("logSumExp2(-inf, b) = %v", got)
	}
	if got := logSumExp2(a, inf); got != a {
		t.Fatalf("logSumExp2(a, -inf) = %v", got)
	}
	c := math.Log(0.5)
	if got := logSumExp3(a, b, c); math.Abs(got-math.Log(1.5)) > 1e-12 {
		t.Fatalf("logSumExp3 = %v", got)
	}
}

func TestPairHMMPrefersMatchingHaplotype(t *testing.T) {
	hap := []byte("ACGTACGTACGTACGTACGTACGTACGT")
	read := hap[4:20]
	qual := bytes.Repeat([]byte("I"), len(read))
	match := PairHMMLogLikelihood(read, qual, hap)
	// Mutate the haplotype in the read's span.
	altHap := append([]byte(nil), hap...)
	altHap[10] = 'T'
	if altHap[10] == hap[10] {
		altHap[10] = 'C'
	}
	mismatch := PairHMMLogLikelihood(read, qual, altHap)
	if match <= mismatch {
		t.Fatalf("match LL %v should exceed mismatch LL %v", match, mismatch)
	}
}

func TestPairHMMQualitySensitivity(t *testing.T) {
	hap := []byte("ACGTACGTACGTACGTACGT")
	read := append([]byte(nil), hap[2:18]...)
	read[7] = 'A'
	if read[7] == hap[9] {
		read[7] = 'C'
	}
	hiQ := bytes.Repeat([]byte("I"), len(read)) // Q40
	loQ := append([]byte(nil), hiQ...)
	loQ[7] = '#' // Q2 at the mismatch
	hi := PairHMMLogLikelihood(read, hiQ, hap)
	lo := PairHMMLogLikelihood(read, loQ, hap)
	// A low-quality mismatch is less surprising: higher likelihood.
	if lo <= hi {
		t.Fatalf("low-qual mismatch LL %v should exceed high-qual %v", lo, hi)
	}
}

func TestPairHMMEmptyInputs(t *testing.T) {
	if !math.IsInf(PairHMMLogLikelihood(nil, nil, []byte("ACGT")), -1) {
		t.Fatal("empty read should yield -inf")
	}
	if !math.IsInf(PairHMMLogLikelihood([]byte("ACGT"), []byte("IIII"), nil), -1) {
		t.Fatal("empty hap should yield -inf")
	}
}

func TestAssembleHaplotypesRecoversVariant(t *testing.T) {
	ref := genome.Synthesize(genome.DefaultSynthConfig(201, 4000, 1))
	window := append([]byte(nil), ref.Contigs[0].Seq[500:700]...)
	if hasN(window) {
		t.Skip("N in window")
	}
	// Alt haplotype with one SNV in the middle.
	alt := append([]byte(nil), window...)
	alt[100] = substituteBase(alt[100])
	// Reads tiled across the alt haplotype.
	var reads [][]byte
	for i := 0; i+60 <= len(alt); i += 10 {
		reads = append(reads, alt[i:i+60])
	}
	haps := assembleHaplotypes(window, reads, 19, 8, 2)
	if len(haps) < 2 {
		t.Fatalf("assembly produced %d haplotypes; want >= 2", len(haps))
	}
	found := false
	for _, h := range haps[1:] {
		if bytes.Equal(h, alt) {
			found = true
		}
	}
	if !found {
		t.Fatal("alt haplotype not recovered by assembly")
	}
}

func TestAssembleHaplotypesRefOnly(t *testing.T) {
	// Non-repetitive window so the de Bruijn graph is acyclic.
	window := []byte("AACGTGCTAGGATCCTAGCAAGTCCAGTTGCA")
	// Reads agree with reference: only ref haplotype expected.
	reads := [][]byte{window[:20], window[10:30]}
	haps := assembleHaplotypes(window, reads, 11, 8, 2)
	if len(haps) != 1 {
		t.Fatalf("clean reads produced %d haplotypes", len(haps))
	}
	// Degenerate window shorter than k.
	if got := assembleHaplotypes([]byte("ACGT"), nil, 19, 8, 2); len(got) != 1 {
		t.Fatal("short window must return ref only")
	}
}

func substituteBase(b byte) byte {
	for _, c := range []byte("ACGT") {
		if c != b {
			return c
		}
	}
	return 'A'
}

func TestVariantsFromHaplotypeSNV(t *testing.T) {
	window := []byte("AACCGGTTAACCGGTT")
	hap := append([]byte(nil), window...)
	hap[5] = 'A' // G->A at window offset 5
	vars := variantsFromHaplotype(hap, window, 1000, align.DefaultScoring())
	if len(vars) != 1 {
		t.Fatalf("vars = %+v", vars)
	}
	if vars[0].pos != 1005 || vars[0].ref != "G" || vars[0].alt != "A" {
		t.Fatalf("var = %+v", vars[0])
	}
}

func TestVariantsFromHaplotypeIndel(t *testing.T) {
	window := []byte("AACCGGTTAACCGGTTAACC")
	// Deletion of 2 bases at offset 8-9.
	hap := append(append([]byte(nil), window[:8]...), window[10:]...)
	vars := variantsFromHaplotype(hap, window, 0, align.DefaultScoring())
	if len(vars) != 1 {
		t.Fatalf("vars = %+v", vars)
	}
	v := vars[0]
	if v.pos != 7 || len(v.ref) != 3 || len(v.alt) != 1 {
		t.Fatalf("del var = %+v", v)
	}
	// Insertion of TTT after the TT run at 6-7; the aligner left-aligns the
	// ambiguous placement to the anchor at offset 5.
	hap2 := append([]byte(nil), window[:8]...)
	hap2 = append(hap2, 'T', 'T', 'T')
	hap2 = append(hap2, window[8:]...)
	vars2 := variantsFromHaplotype(hap2, window, 0, align.DefaultScoring())
	if len(vars2) != 1 {
		t.Fatalf("ins vars = %+v", vars2)
	}
	if len(vars2[0].alt) != 4 || len(vars2[0].ref) != 1 || vars2[0].pos > 7 {
		t.Fatalf("ins var = %+v", vars2[0])
	}
}

// pipelineRecords builds an aligned, deduped, realigned dataset over a donor
// genome — the state the Caller receives.
func pipelineRecords(t *testing.T, seed int64, size int, coverage float64) (*genome.Reference, *genome.Donor, []sam.Record) {
	t.Helper()
	ref := genome.Synthesize(genome.DefaultSynthConfig(seed, size, 1))
	donor := genome.Mutate(ref, genome.DefaultMutateConfig(seed+1))
	pairs := fastq.Simulate(donor, fastq.DefaultSimConfig(seed+2, coverage))
	idx, err := align.BuildFMIndex(ref)
	if err != nil {
		t.Fatal(err)
	}
	aligner := align.NewAligner(idx, align.Config{})
	var records []sam.Record
	for i := range pairs {
		r1, r2 := aligner.AlignPair(&pairs[i])
		records = append(records, r1, r2)
	}
	cleaner.SortByCoordinate(records)
	cleaner.MarkDuplicates(records)
	cleaner.RealignIndels(records, ref, align.DefaultScoring())
	return ref, donor, records
}

func TestFindActiveRegionsAroundVariants(t *testing.T) {
	ref, donor, records := pipelineRecords(t, 301, 30000, 15)
	regions := FindActiveRegions(records, ref, DefaultConfig())
	if len(regions) == 0 {
		t.Fatal("no active regions over a mutated genome")
	}
	// Most heterozygous/homozygous SNVs with coverage should be inside a
	// region.
	covered := 0
	total := 0
	for _, v := range donor.Truth.Variants {
		if v.Type != genome.SNV {
			continue
		}
		total++
		for _, r := range regions {
			if r.Contains(v.Contig, v.Pos) {
				covered++
				break
			}
		}
	}
	if total == 0 {
		t.Skip("no SNVs injected")
	}
	if float64(covered)/float64(total) < 0.6 {
		t.Fatalf("only %d/%d truth SNVs inside active regions", covered, total)
	}
}

func TestCallVariantsRecall(t *testing.T) {
	ref, donor, records := pipelineRecords(t, 401, 40000, 20)
	calls := CallVariants(records, ref, DefaultConfig())
	if len(calls) == 0 {
		t.Fatal("no variants called")
	}
	var truth []vcf.Record
	for _, v := range donor.Truth.Variants {
		truth = append(truth, vcf.Record{
			Chrom: ref.Contigs[v.Contig].Name,
			Pos:   v.Pos,
			Ref:   string(v.Ref),
			Alt:   string(v.Alt),
		})
	}
	stats := vcf.Compare(calls, truth, 2)
	if stats.Recall() < 0.5 {
		t.Fatalf("recall %.2f too low (TP=%d FP=%d FN=%d)",
			stats.Recall(), stats.TruePositive, stats.FalsePositive, stats.FalseNegative)
	}
	if stats.Precision() < 0.5 {
		t.Fatalf("precision %.2f too low (TP=%d FP=%d)",
			stats.Precision(), stats.TruePositive, stats.FalsePositive)
	}
}

func TestCallVariantsEmptyInput(t *testing.T) {
	ref := genome.Synthesize(genome.DefaultSynthConfig(501, 5000, 1))
	if got := CallVariants(nil, ref, DefaultConfig()); got != nil {
		t.Fatalf("no reads should call nothing, got %v", got)
	}
}

func TestCallVariantsSortedAndDeduped(t *testing.T) {
	ref, _, records := pipelineRecords(t, 601, 30000, 15)
	calls := CallVariants(records, ref, DefaultConfig())
	for i := 1; i < len(calls); i++ {
		a, b := calls[i-1], calls[i]
		if a.Chrom == b.Chrom && a.Pos == b.Pos && a.Ref == b.Ref && a.Alt == b.Alt {
			t.Fatalf("duplicate call at %s:%d", b.Chrom, b.Pos)
		}
		if a.Chrom == b.Chrom && a.Pos > b.Pos {
			t.Fatalf("calls out of order at index %d", i)
		}
	}
}

func TestPileupCallFindsSNVs(t *testing.T) {
	ref, donor, records := pipelineRecords(t, 701, 30000, 20)
	calls := PileupCall(records, ref, 5, 0.25, 10)
	if len(calls) == 0 {
		t.Fatal("pileup caller found nothing")
	}
	var truthSNVs []vcf.Record
	for _, v := range donor.Truth.Variants {
		if v.Type == genome.SNV {
			truthSNVs = append(truthSNVs, vcf.Record{
				Chrom: ref.Contigs[v.Contig].Name, Pos: v.Pos,
				Ref: string(v.Ref), Alt: string(v.Alt),
			})
		}
	}
	stats := vcf.Compare(calls, truthSNVs, 0)
	if stats.Recall() < 0.5 {
		t.Fatalf("pileup recall %.2f (TP=%d FN=%d)", stats.Recall(), stats.TruePositive, stats.FalseNegative)
	}
}

func TestHaplotypeCallerBeatsPileupOnIndels(t *testing.T) {
	ref, donor, records := pipelineRecords(t, 801, 40000, 20)
	hcCalls := CallVariants(records, ref, DefaultConfig())
	puCalls := PileupCall(records, ref, 5, 0.25, 10)
	var truthIndels []vcf.Record
	for _, v := range donor.Truth.Variants {
		if v.Type != genome.SNV {
			truthIndels = append(truthIndels, vcf.Record{
				Chrom: ref.Contigs[v.Contig].Name, Pos: v.Pos,
				Ref: string(v.Ref), Alt: string(v.Alt),
			})
		}
	}
	if len(truthIndels) == 0 {
		t.Skip("no indels injected")
	}
	hc := vcf.Compare(hcCalls, truthIndels, 3)
	pu := vcf.Compare(puCalls, truthIndels, 3)
	if hc.TruePositive <= pu.TruePositive {
		t.Fatalf("haplotype caller indel TP %d should exceed pileup %d",
			hc.TruePositive, pu.TruePositive)
	}
}

func BenchmarkPairHMM(b *testing.B) {
	hap := bytes.Repeat([]byte("ACGTGCTAAGGTC"), 20) // 260 bp haplotype
	read := hap[50:150]
	qual := bytes.Repeat([]byte("I"), len(read))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PairHMMLogLikelihood(read, qual, hap)
	}
}

func BenchmarkAssembleHaplotypes(b *testing.B) {
	ref := genome.Synthesize(genome.DefaultSynthConfig(901, 4000, 1))
	window := ref.Contigs[0].Seq[500:800]
	var reads [][]byte
	for i := 0; i+80 <= len(window); i += 7 {
		reads = append(reads, window[i:i+80])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		assembleHaplotypes(window, reads, 19, 8, 2)
	}
}
