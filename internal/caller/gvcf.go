package caller

import (
	"strconv"

	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/sam"
	"github.com/gpf-go/gpf/internal/vcf"
)

// gVCF support: the paper's HaplotypeCallerProcess takes a useGVCF flag
// (Fig 3, Table 2). In gVCF mode the caller also emits reference blocks —
// runs of confidently homozygous-reference positions — so downstream joint
// genotyping can distinguish "no variant" from "no coverage".

// NonRefAlt is the symbolic allele of a gVCF reference block.
const NonRefAlt = "<NON_REF>"

// ReferenceBlocks computes gVCF reference blocks over interval: maximal runs
// of positions with depth >= minDepth that carry no variant call. Each block
// is a record with Alt NonRefAlt, Depth = the block's minimum depth, and
// Info["END"] = 1-based inclusive end, following the gVCF convention.
func ReferenceBlocks(records []sam.Record, ref *genome.Reference, interval genome.Interval, calls []vcf.Record, minDepth int) []vcf.Record {
	contig := ref.Contig(interval.Contig)
	if contig == nil || interval.Len() == 0 {
		return nil
	}
	depth := make([]int, interval.Len())
	for i := range records {
		r := &records[i]
		if r.Unmapped() || r.Duplicate() || int(r.RefID) != interval.Contig {
			continue
		}
		refPos := int(r.Pos)
		for _, op := range r.Cigar {
			switch op.Op {
			case 'M', '=', 'X':
				for k := 0; k < op.Len; k++ {
					p := refPos + k - interval.Start
					if p >= 0 && p < len(depth) {
						depth[p]++
					}
				}
				refPos += op.Len
			case 'D', 'N':
				refPos += op.Len
			}
		}
	}
	// Mask positions covered by variant calls (including deletion spans).
	variant := make([]bool, interval.Len())
	for _, c := range calls {
		id, ok := ref.ContigID(c.Chrom)
		if !ok || id != interval.Contig {
			continue
		}
		for off := 0; off < len(c.Ref); off++ {
			p := c.Pos + off - interval.Start
			if p >= 0 && p < len(variant) {
				variant[p] = true
			}
		}
	}
	var out []vcf.Record
	blockStart := -1
	blockMinDepth := 0
	flush := func(end int) {
		if blockStart < 0 {
			return
		}
		pos := interval.Start + blockStart
		out = append(out, vcf.Record{
			Chrom: contig.Name,
			Pos:   pos,
			Ref:   string(contig.Seq[pos]),
			Alt:   NonRefAlt,
			GT:    vcf.HomRef,
			Depth: blockMinDepth,
			Qual:  float64(min(blockMinDepth*3, 99)),
			Info:  map[string]string{"END": strconv.Itoa(interval.Start + end)}, // 1-based inclusive
		})
		blockStart = -1
	}
	for i := 0; i < len(depth); i++ {
		ok := depth[i] >= minDepth && !variant[i]
		if ok {
			if blockStart < 0 {
				blockStart = i
				blockMinDepth = depth[i]
			} else if depth[i] < blockMinDepth {
				blockMinDepth = depth[i]
			}
			continue
		}
		flush(i)
	}
	flush(len(depth))
	return out
}

// MergeGVCF interleaves variant calls and reference blocks in coordinate
// order, producing the gVCF record stream.
func MergeGVCF(calls, blocks []vcf.Record) []vcf.Record {
	out := append(append([]vcf.Record(nil), calls...), blocks...)
	vcf.SortRecords(out)
	return out
}

// BlockEnd parses a reference block's END info (1-based inclusive); ok is
// false for non-block records.
func BlockEnd(r *vcf.Record) (int, bool) {
	if r.Alt != NonRefAlt || r.Info == nil {
		return 0, false
	}
	v, err := strconv.Atoi(r.Info["END"])
	if err != nil {
		return 0, false
	}
	return v, true
}
