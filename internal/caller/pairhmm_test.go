package caller

import (
	"math"
	"math/rand"
	"testing"

	"github.com/gpf-go/gpf/internal/bufpool"
	"github.com/gpf-go/gpf/internal/kernels"
)

// randomHMMCase builds a (read, qual, hap) triple: a haplotype, a read copied
// from a random window of it, then mutated with substitutions and indels.
func randomHMMCase(rng *rand.Rand, maxHap, maxRead int) (read, qual, hap []byte) {
	bases := []byte("ACGT")
	n := 10 + rng.Intn(maxHap-10)
	hap = make([]byte, n)
	for i := range hap {
		hap[i] = bases[rng.Intn(4)]
	}
	m := 5 + rng.Intn(maxRead-5)
	if m > n {
		m = n
	}
	off := rng.Intn(n - m + 1)
	read = append([]byte(nil), hap[off:off+m]...)
	// Mutations: substitutions, occasional N, occasional indel.
	for i := range read {
		switch r := rng.Float64(); {
		case r < 0.05:
			read[i] = bases[rng.Intn(4)]
		case r < 0.07:
			read[i] = 'N'
		}
	}
	if rng.Float64() < 0.3 && len(read) > 4 {
		cut := 1 + rng.Intn(3)
		at := rng.Intn(len(read) - cut)
		read = append(read[:at], read[at+cut:]...)
	}
	qual = make([]byte, len(read))
	for i := range qual {
		qual[i] = byte(33 + rng.Intn(42)) // Phred 0..41
	}
	// Sometimes drop trailing quals to exercise the missing-qual default.
	if rng.Float64() < 0.2 {
		qual = qual[:len(qual)/2]
	}
	return read, qual, hap
}

// TestKernelPairHMMHoistedBitIdentical asserts the ISSUE's hoisting property:
// the hoisted kernel performs the same float64 operations as the reference,
// just fewer times, so its result must be bit-for-bit identical.
func TestKernelPairHMMHoistedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for c := 0; c < 400; c++ {
		read, qual, hap := randomHMMCase(rng, 200, 100)
		want := pairHMMReference(read, qual, hap)
		rows := bufpool.GetF64(6 * (len(hap) + 1))
		got := pairHMMHoisted(read, qual, hap, rows)
		bufpool.PutF64(rows)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("case %d: hoisted=%x (%v) reference=%x (%v)",
				c, math.Float64bits(got), got, math.Float64bits(want), want)
		}
	}
}

// TestKernelPairHMMScaledEquivalence checks the scaled linear-space kernel
// against the log-space reference to tight relative tolerance across random
// cases, including long reads where rescaling must engage.
func TestKernelPairHMMScaledEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	worst := 0.0
	for c := 0; c < 500; c++ {
		read, qual, hap := randomHMMCase(rng, 400, 300)
		want := pairHMMReference(read, qual, hap)
		rows := bufpool.GetF64(6 * (len(hap) + 1))
		got := pairHMMScaled(read, qual, hap, rows)
		bufpool.PutF64(rows)
		rel := math.Abs(got-want) / math.Abs(want)
		if rel > worst {
			worst = rel
		}
		if rel > 1e-9 {
			t.Fatalf("case %d (m=%d n=%d): scaled=%v reference=%v rel=%g",
				c, len(read), len(hap), got, want, rel)
		}
	}
	t.Logf("worst relative error over 500 cases: %g", worst)
}

// TestKernelPairHMMScaledRescale forces the underflow-rescue path: a read
// long enough that unscaled forward probabilities drop below 1e-260.
func TestKernelPairHMMScaledRescale(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	bases := []byte("ACGT")
	hap := make([]byte, 2000)
	for i := range hap {
		hap[i] = bases[rng.Intn(4)]
	}
	read := append([]byte(nil), hap[100:1900]...)
	for i := range read {
		if rng.Float64() < 0.08 {
			read[i] = bases[rng.Intn(4)]
		}
	}
	qual := make([]byte, len(read))
	for i := range qual {
		qual[i] = 33 + 30
	}
	want := pairHMMReference(read, qual, hap)
	rows := bufpool.GetF64(6 * (len(hap) + 1))
	got := pairHMMScaled(read, qual, hap, rows)
	bufpool.PutF64(rows)
	if want > -700 {
		t.Fatalf("case not deep enough to exercise rescaling: reference=%v", want)
	}
	rel := math.Abs(got-want) / math.Abs(want)
	if rel > 1e-9 {
		t.Fatalf("scaled=%v reference=%v rel=%g", got, want, rel)
	}
}

// TestKernelPairHMMDispatch checks that the public entry points follow the
// kernels switch: reference results when disabled, fast-kernel results when
// enabled, and consistency between single and batch entry points.
func TestKernelPairHMMDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var reads, quals, haps [][]byte
	for i := 0; i < 8; i++ {
		r, q, h := randomHMMCase(rng, 150, 80)
		reads, quals, haps = append(reads, r), append(quals, q), append(haps, h)
	}

	prev := kernels.SetEnabled(false)
	defer kernels.SetEnabled(prev)
	slowL := PairHMMBatch(reads, quals, haps)
	for i := range reads {
		for h := range haps {
			want := pairHMMReference(reads[i], quals[i], haps[h])
			if math.Float64bits(slowL[i][h]) != math.Float64bits(want) {
				t.Fatalf("disabled batch [%d][%d] = %v, reference %v", i, h, slowL[i][h], want)
			}
			if got := PairHMMLogLikelihood(reads[i], quals[i], haps[h]); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("disabled single [%d][%d] = %v, reference %v", i, h, got, want)
			}
		}
	}

	kernels.SetEnabled(true)
	fastL := PairHMMBatch(reads, quals, haps)
	for i := range reads {
		for h := range haps {
			single := PairHMMLogLikelihood(reads[i], quals[i], haps[h])
			if math.Float64bits(fastL[i][h]) != math.Float64bits(single) {
				t.Fatalf("fast batch [%d][%d] = %v, single %v", i, h, fastL[i][h], single)
			}
			rel := math.Abs(fastL[i][h]-slowL[i][h]) / math.Abs(slowL[i][h])
			if rel > 1e-9 {
				t.Fatalf("fast vs reference [%d][%d]: %v vs %v rel=%g", i, h, fastL[i][h], slowL[i][h], rel)
			}
		}
	}
}

func TestKernelPairHMMEmptyInputs(t *testing.T) {
	for _, fast := range []bool{true, false} {
		prev := kernels.SetEnabled(fast)
		if ll := PairHMMLogLikelihood(nil, nil, []byte("ACGT")); !math.IsInf(ll, -1) {
			t.Fatalf("fast=%v: empty read gave %v, want -Inf", fast, ll)
		}
		if ll := PairHMMLogLikelihood([]byte("ACGT"), []byte("IIII"), nil); !math.IsInf(ll, -1) {
			t.Fatalf("fast=%v: empty hap gave %v, want -Inf", fast, ll)
		}
		L := PairHMMBatch([][]byte{{}}, [][]byte{{}}, [][]byte{[]byte("ACGT")})
		if !math.IsInf(L[0][0], -1) {
			t.Fatalf("fast=%v: batch empty read gave %v, want -Inf", fast, L[0][0])
		}
		kernels.SetEnabled(prev)
	}
	L := PairHMMBatch(nil, nil, nil)
	if len(L) != 0 {
		t.Fatalf("empty batch: got %d rows", len(L))
	}
}

// TestPhredToProbQualShorterThanRead: positions past the end of the quality
// string default to Phred 30 (p = 1e-3), GATK's missing-quality stand-in.
func TestPhredToProbQualShorterThanRead(t *testing.T) {
	qual := []byte{33 + 10}
	if got, want := phredToProb(qual, 0), math.Pow(10, -1); got != want {
		t.Fatalf("in-range qual: got %v want %v", got, want)
	}
	want := math.Pow(10, -3)
	if got := phredToProb(qual, 1); got != want {
		t.Fatalf("past-end qual: got %v want %v", got, want)
	}
	if got := phredToProb(nil, 0); got != want {
		t.Fatalf("nil qual: got %v want %v", got, want)
	}
	// The fast kernels encode the same default as byte 63 ('?' = Phred 30).
	read, hap := []byte("ACGTACGT"), []byte("ACGTACGT")
	short := pairHMMReference(read, []byte("II"), hap)
	padded := make([]byte, len(read))
	copy(padded, "II")
	for i := 2; i < len(padded); i++ {
		padded[i] = defaultQualByte
	}
	full := pairHMMReference(read, padded, hap)
	if math.Float64bits(short) != math.Float64bits(full) {
		t.Fatalf("short-qual run %v != padded-default run %v", short, full)
	}
}

// TestPhredToProbLowQualClamps: qualities below Phred 2 — including bytes
// below 33, which decode to negative Phreds — clamp to Phred 2, and the error
// probability is capped at 0.25 (a base can't be more than uninformative over
// a 4-letter alphabet).
func TestPhredToProbLowQualClamps(t *testing.T) {
	want := 0.25 // Phred 2 → p = 10^-0.2 ≈ 0.63, capped at 0.25
	for _, b := range []byte{0, 1, 10, 32, 33, 34, 35} {
		if got := phredToProb([]byte{b}, 0); got != want {
			t.Fatalf("byte %d: got %v want %v", b, got, want)
		}
	}
	// First quality byte above the cap threshold: Phred 7 → p ≈ 0.1995.
	if got := phredToProb([]byte{33 + 7}, 0); got >= 0.25 || got < 0.19 {
		t.Fatalf("Phred 7: got %v, want ≈0.1995", got)
	}
	// emitTab must agree with phredToProb byte-for-byte.
	for b := 0; b < 256; b++ {
		p := phredToProb([]byte{byte(b)}, 0)
		e := emitTab[b]
		if e.pMatch != 1-p || e.pMismatch != p/3 ||
			math.Float64bits(e.logMatch) != math.Float64bits(math.Log(1-p)) ||
			math.Float64bits(e.logMismatch) != math.Float64bits(math.Log(p/3)) {
			t.Fatalf("emitTab[%d] inconsistent with phredToProb", b)
		}
	}
}

func benchHMMInputs() (read, qual, hap []byte) {
	rng := rand.New(rand.NewSource(42))
	bases := []byte("ACGT")
	hap = make([]byte, 300)
	for i := range hap {
		hap[i] = bases[rng.Intn(4)]
	}
	read = append([]byte(nil), hap[50:150]...)
	for i := range read {
		if rng.Float64() < 0.03 {
			read[i] = bases[rng.Intn(4)]
		}
	}
	qual = make([]byte, len(read))
	for i := range qual {
		qual[i] = 33 + 30
	}
	return
}

func BenchmarkKernelPairHMMReference(b *testing.B) {
	read, qual, hap := benchHMMInputs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pairHMMReference(read, qual, hap)
	}
}

func BenchmarkKernelPairHMMHoisted(b *testing.B) {
	read, qual, hap := benchHMMInputs()
	rows := bufpool.GetF64(6 * (len(hap) + 1))
	defer bufpool.PutF64(rows)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pairHMMHoisted(read, qual, hap, rows)
	}
}

func BenchmarkKernelPairHMMFast(b *testing.B) {
	read, qual, hap := benchHMMInputs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PairHMMLogLikelihood(read, qual, hap)
	}
}

func BenchmarkKernelPairHMMBatch(b *testing.B) {
	read, qual, hap := benchHMMInputs()
	reads := [][]byte{read, read, read, read}
	quals := [][]byte{qual, qual, qual, qual}
	haps := [][]byte{hap, hap}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PairHMMBatch(reads, quals, haps)
	}
}
