package caller

import (
	"math"

	"github.com/gpf-go/gpf/internal/bufpool"
	"github.com/gpf-go/gpf/internal/kernels"
)

// Log-space pair-HMM (the paired-HMM of the paper's HaplotypeCaller
// description): the forward algorithm over match/insert/delete states
// computes P(read | haplotype) with per-base emission probabilities taken
// from the read's quality string. This is the CPU-dominant kernel of the
// Caller phase (Fig 13 shows variant calling as compute-bound), so it gets
// the full profile-driven treatment (see DESIGN.md, "Hot kernels"):
//
//   - pairHMMReference is the original cell-by-cell log-space forward pass,
//     kept verbatim as the equivalence oracle and the DisableFastKernels
//     ablation path.
//   - pairHMMHoisted is the reference with the per-row emission logs hoisted
//     out of the inner loop, phredToProb's per-row math.Pow replaced by the
//     256-entry emitTab lookup, and the six rolling DP rows pooled. Each
//     transformation performs the same float64 operations fewer times, so
//     its result is bit-identical to the reference — asserted by
//     TestKernelPairHMMHoistedBitIdentical.
//   - pairHMMScaled is the fast kernel: the same forward recurrence computed
//     in probability space with per-row rescaling (the GATK PairHMM
//     approach), which removes every transcendental from the inner loop —
//     a cell costs a handful of multiply-adds instead of four
//     log-sum-exps. It is not bit-identical to log space (log space itself
//     is the lossy encoding; the scaled pass tracks the true forward
//     probabilities), but agrees to ~1e-12 relative — far below anything
//     the genotyper's likelihood comparisons can observe — and the
//     DisableFastKernels ablation is property-tested to keep pipeline
//     output byte-identical.

// HMM transition probabilities (GATK-like defaults).
const (
	gapOpenProb   = 1e-4
	gapExtendProb = 0.1
)

var (
	logMM = math.Log(1 - 2*gapOpenProb)
	logMG = math.Log(gapOpenProb)
	logGG = math.Log(gapExtendProb)
	logGM = math.Log(1 - gapExtendProb)
)

// Linear-space transition probabilities for the scaled kernel.
const (
	probMM = 1 - 2*gapOpenProb
	probMG = gapOpenProb
	probGG = gapExtendProb
	probGM = 1 - gapExtendProb
)

// logSumExp2 returns log(exp(a)+exp(b)) stably.
func logSumExp2(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

func logSumExp3(a, b, c float64) float64 {
	return logSumExp2(logSumExp2(a, b), c)
}

// defaultQualByte is the Phred+33 byte assumed for read positions beyond the
// end of the quality string (phredToProb's q=30 default).
const defaultQualByte = 30 + 33

// emitEntry is one row of the precomputed emission table: the log and linear
// emission terms for a match and a mismatch at one quality byte.
type emitEntry struct {
	logMatch    float64
	logMismatch float64
	pMatch      float64
	pMismatch   float64
}

// emitTab maps a raw Phred+33 quality byte to its emission terms. Each entry
// is computed with exactly the operations the reference performs per cell —
// phredToProb's int(b)-33 conversion, clamps and math.Pow, then
// math.Log(1-p) / math.Log(p/3) — so a table lookup is bit-identical to the
// reference's per-cell recomputation. Bytes below 33 yield negative Phred
// scores and fall into the same q<2 clamp the reference applies.
var emitTab = func() (t [256]emitEntry) {
	for b := 0; b < 256; b++ {
		p := phredToProb([]byte{byte(b)}, 0)
		t[b] = emitEntry{
			logMatch:    math.Log(1 - p),
			logMismatch: math.Log(p / 3),
			pMatch:      1 - p,
			pMismatch:   p / 3,
		}
	}
	return
}()

// PairHMMLogLikelihood returns ln P(read | hap) under the pair-HMM with
// quality-derived emissions. qual holds Phred+33 bytes parallel to read.
func PairHMMLogLikelihood(read, qual, hap []byte) float64 {
	if !kernels.Enabled() {
		return pairHMMReference(read, qual, hap)
	}
	if len(read) == 0 || len(hap) == 0 {
		return math.Inf(-1)
	}
	rows := bufpool.GetF64(6 * (len(hap) + 1))
	ll := pairHMMScaled(read, qual, hap, rows)
	bufpool.PutF64(rows)
	return ll
}

// PairHMMBatch scores every read against every haplotype, returning
// L[read][hap] = ln P(read | hap). This is the entry point the genotyper
// uses: the read×haplotype likelihood matrix of one active region is
// computed with a single pooled scratch slab reused across all pairs,
// instead of one allocation set per pair. quals is parallel to reads.
func PairHMMBatch(reads, quals [][]byte, haps [][]byte) [][]float64 {
	L := make([][]float64, len(reads))
	if len(reads) == 0 || len(haps) == 0 {
		for i := range L {
			L[i] = make([]float64, len(haps))
		}
		return L
	}
	fast := kernels.Enabled()
	var rows []float64
	if fast {
		maxN := 0
		for _, h := range haps {
			if len(h) > maxN {
				maxN = len(h)
			}
		}
		rows = bufpool.GetF64(6 * (maxN + 1))
		defer bufpool.PutF64(rows)
	}
	for i := range reads {
		L[i] = make([]float64, len(haps))
		for h, hap := range haps {
			switch {
			case !fast:
				L[i][h] = pairHMMReference(reads[i], quals[i], hap)
			case len(reads[i]) == 0 || len(hap) == 0:
				L[i][h] = math.Inf(-1)
			default:
				L[i][h] = pairHMMScaled(reads[i], quals[i], hap, rows[:6*(len(hap)+1)])
			}
		}
	}
	return L
}

// pairHMMReference is the unoptimized log-space forward pass, kept as the
// equivalence oracle for the fast kernels and as the DisableFastKernels
// ablation path.
func pairHMMReference(read, qual, hap []byte) float64 {
	m, n := len(read), len(hap)
	if m == 0 || n == 0 {
		return math.Inf(-1)
	}
	negInf := math.Inf(-1)
	// Rolling rows over the haplotype dimension.
	prevM := make([]float64, n+1)
	prevI := make([]float64, n+1)
	prevD := make([]float64, n+1)
	curM := make([]float64, n+1)
	curI := make([]float64, n+1)
	curD := make([]float64, n+1)
	// Initialization: the read may start anywhere on the haplotype (free
	// leading flank): uniform prior over start columns.
	startLog := -math.Log(float64(n))
	for j := 0; j <= n; j++ {
		prevM[j] = negInf
		prevI[j] = negInf
		prevD[j] = negInf
	}
	for i := 1; i <= m; i++ {
		curM[0], curI[0], curD[0] = negInf, negInf, negInf
		errP := phredToProb(qual, i-1)
		for j := 1; j <= n; j++ {
			var emit float64
			if read[i-1] == hap[j-1] && read[i-1] != 'N' {
				emit = math.Log(1 - errP)
			} else {
				emit = math.Log(errP / 3)
			}
			var diag float64
			if i == 1 {
				diag = startLog // start of read anchored at column j
			} else {
				diag = logSumExp3(prevM[j-1]+logMM, prevI[j-1]+logGM, prevD[j-1]+logGM)
			}
			curM[j] = emit + diag
			// Insertion (read base not on haplotype): consumes read only.
			curI[j] = logSumExp2(prevM[j]+logMG, prevI[j]+logGG)
			// Deletion (haplotype base skipped): consumes haplotype only.
			curD[j] = logSumExp2(curM[j-1]+logMG, curD[j-1]+logGG)
		}
		prevM, curM = curM, prevM
		prevI, curI = curI, prevI
		prevD, curD = curD, prevD
	}
	// Free trailing flank: sum over end columns of M and I.
	total := negInf
	for j := 1; j <= n; j++ {
		total = logSumExp2(total, logSumExp2(prevM[j], prevI[j]))
	}
	return total
}

// pairHMMHoisted is the reference with the per-(i,j) emission logs hoisted
// to per-row table lookups and the six rolling rows taken from the caller's
// scratch slab (rows, length ≥ 6*(n+1), contents arbitrary). Every float64
// operation it performs is one the reference performs — just once per row
// or once per process instead of once per cell — so its result is
// bit-identical (asserted by TestKernelPairHMMHoistedBitIdentical).
func pairHMMHoisted(read, qual, hap []byte, rows []float64) float64 {
	m, n := len(read), len(hap)
	if m == 0 || n == 0 {
		return math.Inf(-1)
	}
	negInf := math.Inf(-1)
	w := n + 1
	prevM, prevI, prevD := rows[0:w], rows[w:2*w], rows[2*w:3*w]
	curM, curI, curD := rows[3*w:4*w], rows[4*w:5*w], rows[5*w:6*w]
	startLog := -math.Log(float64(n))
	for j := 0; j <= n; j++ {
		prevM[j] = negInf
		prevI[j] = negInf
		prevD[j] = negInf
	}
	for i := 1; i <= m; i++ {
		curM[0], curI[0], curD[0] = negInf, negInf, negInf
		qb := byte(defaultQualByte)
		if i-1 < len(qual) {
			qb = qual[i-1]
		}
		e := &emitTab[qb]
		logMatch, logMismatch := e.logMatch, e.logMismatch
		rb := read[i-1]
		for j := 1; j <= n; j++ {
			emit := logMismatch
			if rb == hap[j-1] && rb != 'N' {
				emit = logMatch
			}
			var diag float64
			if i == 1 {
				diag = startLog
			} else {
				diag = logSumExp3(prevM[j-1]+logMM, prevI[j-1]+logGM, prevD[j-1]+logGM)
			}
			curM[j] = emit + diag
			curI[j] = logSumExp2(prevM[j]+logMG, prevI[j]+logGG)
			curD[j] = logSumExp2(curM[j-1]+logMG, curD[j-1]+logGG)
		}
		prevM, curM = curM, prevM
		prevI, curI = curI, prevI
		prevD, curD = curD, prevD
	}
	total := negInf
	for j := 1; j <= n; j++ {
		total = logSumExp2(total, logSumExp2(prevM[j], prevI[j]))
	}
	return total
}

// scaledRescaleBelow triggers a row rescale in pairHMMScaled: when the row
// maximum falls below it, the whole row is renormalized and the factor moved
// into logScale, keeping every cell far from the float64 underflow cliff.
// 1e-260 leaves ~48 decades of headroom above the smallest normal float64,
// more than any single row transition can consume.
const scaledRescaleBelow = 1e-260

// pairHMMScaled is the fast pair-HMM kernel: the same forward recurrence as
// the reference, computed on probabilities with per-row rescaling instead of
// in log space. One cell costs six multiply-adds — no math.Log, math.Exp or
// math.Log1p — which is where the kernel's ~30x over the reference comes
// from. rows is caller scratch of length ≥ 6*(n+1), arbitrary contents.
func pairHMMScaled(read, qual, hap []byte, rows []float64) float64 {
	m, n := len(read), len(hap)
	if m == 0 || n == 0 {
		return math.Inf(-1)
	}
	w := n + 1
	prevM, prevI, prevD := rows[0:w], rows[w:2*w], rows[2*w:3*w]
	curM, curI, curD := rows[3*w:4*w], rows[4*w:5*w], rows[5*w:6*w]
	for j := 0; j <= n; j++ {
		prevM[j] = 0
		prevI[j] = 0
		prevD[j] = 0
	}
	logScale := 0.0
	start := 1 / float64(n) // uniform prior over start columns
	for i := 1; i <= m; i++ {
		curM[0], curI[0], curD[0] = 0, 0, 0
		qb := byte(defaultQualByte)
		if i-1 < len(qual) {
			qb = qual[i-1]
		}
		e := &emitTab[qb]
		pMatch, pMismatch := e.pMatch, e.pMismatch
		rb := read[i-1]
		rowMax := 0.0
		if i == 1 {
			for j := 1; j <= n; j++ {
				emit := pMismatch
				if rb == hap[j-1] && rb != 'N' {
					emit = pMatch
				}
				mv := emit * start
				curM[j] = mv
				curI[j] = 0
				curD[j] = curM[j-1]*probMG + curD[j-1]*probGG
				if mv > rowMax {
					rowMax = mv
				}
			}
		} else {
			for j := 1; j <= n; j++ {
				emit := pMismatch
				if rb == hap[j-1] && rb != 'N' {
					emit = pMatch
				}
				mv := emit * (prevM[j-1]*probMM + (prevI[j-1]+prevD[j-1])*probGM)
				iv := prevM[j]*probMG + prevI[j]*probGG
				curM[j] = mv
				curI[j] = iv
				curD[j] = curM[j-1]*probMG + curD[j-1]*probGG
				if mv > rowMax {
					rowMax = mv
				}
				if iv > rowMax {
					rowMax = iv
				}
			}
		}
		if rowMax > 0 && rowMax < scaledRescaleBelow {
			inv := 1 / rowMax
			for j := 1; j <= n; j++ {
				curM[j] *= inv
				curI[j] *= inv
				curD[j] *= inv
			}
			logScale += math.Log(rowMax)
		}
		prevM, curM = curM, prevM
		prevI, curI = curI, prevI
		prevD, curD = curD, prevD
	}
	// Free trailing flank: sum over end columns of M and I.
	total := 0.0
	for j := 1; j <= n; j++ {
		total += prevM[j] + prevI[j]
	}
	if total == 0 {
		return math.Inf(-1)
	}
	return math.Log(total) + logScale
}

// phredToProb converts the Phred+33 quality byte at read position i to a
// base error probability, following GATK's conventions:
//
//   - Positions beyond the quality string default to Phred 30 (the common
//     "missing quality" stand-in, 1e-3 error).
//   - Qualities below Phred 2 are clamped up to 2: sequencers emit 0/1 as
//     "no call" markers, not calibrated probabilities, and a literal Phred 0
//     would mean p=1 — a base guaranteed wrong, which would let a single
//     marker byte veto an otherwise perfect alignment (GATK applies the same
//     floor as its minimum usable quality).
//   - The error probability is capped at 0.25: with a 4-letter alphabet a
//     base conveys no information once all four calls are equally likely, so
//     probabilities past 1/4 would overstate the evidence against a match
//     (bytes below 33 — malformed Phred+33 input — land here via the q<2
//     clamp and are treated as nearly information-free rather than
//     rejected).
func phredToProb(qual []byte, i int) float64 {
	q := 30.0
	if i < len(qual) {
		q = float64(int(qual[i]) - 33)
	}
	if q < 2 {
		q = 2
	}
	p := math.Pow(10, -q/10)
	if p > 0.25 {
		p = 0.25
	}
	return p
}
