package caller

import (
	"math"
)

// Log-space pair-HMM (the paired-HMM of the paper's HaplotypeCaller
// description): the forward algorithm over match/insert/delete states
// computes P(read | haplotype) with per-base emission probabilities taken
// from the read's quality string. This is the CPU-dominant kernel of the
// Caller phase (Fig 13 shows variant calling as compute-bound).

// HMM transition probabilities (GATK-like defaults).
const (
	gapOpenProb   = 1e-4
	gapExtendProb = 0.1
)

var (
	logMM = math.Log(1 - 2*gapOpenProb)
	logMG = math.Log(gapOpenProb)
	logGG = math.Log(gapExtendProb)
	logGM = math.Log(1 - gapExtendProb)
)

// logSumExp2 returns log(exp(a)+exp(b)) stably.
func logSumExp2(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

func logSumExp3(a, b, c float64) float64 {
	return logSumExp2(logSumExp2(a, b), c)
}

// PairHMMLogLikelihood returns ln P(read | hap) under the pair-HMM with
// quality-derived emissions. qual holds Phred+33 bytes parallel to read.
func PairHMMLogLikelihood(read, qual, hap []byte) float64 {
	m, n := len(read), len(hap)
	if m == 0 || n == 0 {
		return math.Inf(-1)
	}
	negInf := math.Inf(-1)
	// Rolling rows over the haplotype dimension.
	prevM := make([]float64, n+1)
	prevI := make([]float64, n+1)
	prevD := make([]float64, n+1)
	curM := make([]float64, n+1)
	curI := make([]float64, n+1)
	curD := make([]float64, n+1)
	// Initialization: the read may start anywhere on the haplotype (free
	// leading flank): uniform prior over start columns.
	startLog := -math.Log(float64(n))
	for j := 0; j <= n; j++ {
		prevM[j] = negInf
		prevI[j] = negInf
		prevD[j] = negInf
	}
	for i := 1; i <= m; i++ {
		curM[0], curI[0], curD[0] = negInf, negInf, negInf
		errP := phredToProb(qual, i-1)
		for j := 1; j <= n; j++ {
			var emit float64
			if read[i-1] == hap[j-1] && read[i-1] != 'N' {
				emit = math.Log(1 - errP)
			} else {
				emit = math.Log(errP / 3)
			}
			var diag float64
			if i == 1 {
				diag = startLog // start of read anchored at column j
			} else {
				diag = logSumExp3(prevM[j-1]+logMM, prevI[j-1]+logGM, prevD[j-1]+logGM)
			}
			curM[j] = emit + diag
			// Insertion (read base not on haplotype): consumes read only.
			curI[j] = logSumExp2(prevM[j]+logMG, prevI[j]+logGG)
			// Deletion (haplotype base skipped): consumes haplotype only.
			curD[j] = logSumExp2(curM[j-1]+logMG, curD[j-1]+logGG)
		}
		prevM, curM = curM, prevM
		prevI, curI = curI, prevI
		prevD, curD = curD, prevD
	}
	// Free trailing flank: sum over end columns of M and I.
	total := negInf
	for j := 1; j <= n; j++ {
		total = logSumExp2(total, logSumExp2(prevM[j], prevI[j]))
	}
	return total
}

func phredToProb(qual []byte, i int) float64 {
	q := 30.0
	if i < len(qual) {
		q = float64(int(qual[i]) - 33)
	}
	if q < 2 {
		q = 2
	}
	p := math.Pow(10, -q/10)
	if p > 0.25 {
		p = 0.25
	}
	return p
}
