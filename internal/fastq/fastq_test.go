package fastq

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"github.com/gpf-go/gpf/internal/genome"
)

func TestRecordValidate(t *testing.T) {
	ok := Record{Name: "r1", Seq: []byte("ACGT"), Qual: []byte("IIII")}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Record{
		{Name: "", Seq: []byte("A"), Qual: []byte("I")},
		{Name: "r", Seq: []byte("AC"), Qual: []byte("I")},
		{Name: "r", Seq: []byte("A"), Qual: []byte{10}},
		{Name: "r", Seq: []byte("A"), Qual: []byte{127}},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "read1", Seq: []byte("ACGTACGT"), Qual: []byte("IIIIHHHH")},
		{Name: "read2/1", Seq: []byte("GGGG"), Qual: []byte("!!!!")},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Name != recs[i].Name || !bytes.Equal(got[i].Seq, recs[i].Seq) || !bytes.Equal(got[i].Qual, recs[i].Qual) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestReaderErrors(t *testing.T) {
	cases := map[string]string{
		"truncated":    "@r\nACGT\n+\n",
		"no at":        "r\nACGT\n+\nIIII\n",
		"no plus":      "@r\nACGT\nX\nIIII\n",
		"len mismatch": "@r\nACGT\n+\nIII\n",
	}
	for name, in := range cases {
		if _, err := ReadAll(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
}

func TestReadPairs(t *testing.T) {
	f1 := "@a/1\nACGT\n+\nIIII\n@b/1\nTTTT\n+\nHHHH\n"
	f2 := "@a/2\nCCCC\n+\nIIII\n@b/2\nGGGG\n+\nHHHH\n"
	pairs, err := ReadPairs(strings.NewReader(f1), strings.NewReader(f2))
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	if pairs[0].R1.Name != "a/1" || pairs[0].R2.Name != "a/2" {
		t.Fatalf("pair 0 names: %s %s", pairs[0].R1.Name, pairs[0].R2.Name)
	}
	// Unequal counts must error.
	short := "@a/2\nCCCC\n+\nIIII\n"
	if _, err := ReadPairs(strings.NewReader(f1), strings.NewReader(short)); err == nil {
		t.Fatal("unequal mate counts should error")
	}
}

func TestRecordBytes(t *testing.T) {
	r := Record{Name: "abc", Seq: []byte("ACGT"), Qual: []byte("IIII")}
	if got := r.Bytes(); got != 3+4+4+6 {
		t.Fatalf("Bytes = %d", got)
	}
	p := Pair{R1: r, R2: r}
	if p.Bytes() != 2*r.Bytes() {
		t.Fatal("pair bytes should be sum of mates")
	}
}

func testDonor(t *testing.T, seed int64, size int) *genome.Donor {
	t.Helper()
	ref := genome.Synthesize(genome.DefaultSynthConfig(seed, size, 2))
	return genome.Mutate(ref, genome.DefaultMutateConfig(seed+1))
}

func TestSimulateBasics(t *testing.T) {
	donor := testDonor(t, 3, 60000)
	cfg := DefaultSimConfig(4, 10)
	pairs := Simulate(donor, cfg)
	if len(pairs) == 0 {
		t.Fatal("no pairs simulated")
	}
	// Coverage sanity: total bases within 2x of target coverage.
	totalBases := 0
	for i := range pairs {
		totalBases += len(pairs[i].R1.Seq) + len(pairs[i].R2.Seq)
	}
	genomeLen := int(donor.Ref.TotalLen())
	cov := float64(totalBases) / float64(genomeLen)
	if cov < 5 || cov > 25 {
		t.Fatalf("achieved coverage %.1f, want near 10", cov)
	}
	for i := range pairs {
		if err := pairs[i].R1.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := pairs[i].R2.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(pairs[i].R1.Seq) != cfg.ReadLen {
			t.Fatalf("read len = %d", len(pairs[i].R1.Seq))
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	donor := testDonor(t, 5, 30000)
	a := Simulate(donor, DefaultSimConfig(7, 5))
	b := Simulate(donor, DefaultSimConfig(7, 5))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i].R1.Seq, b[i].R1.Seq) || !bytes.Equal(a[i].R1.Qual, b[i].R1.Qual) {
			t.Fatalf("pair %d differs between identical-seed runs", i)
		}
	}
}

func TestSimulateHotspots(t *testing.T) {
	donor := testDonor(t, 9, 50000)
	hs := genome.Interval{Contig: 0, Start: 1000, End: 2000}
	cfg := DefaultSimConfig(10, 5)
	cfg.Hotspots = []genome.Interval{hs}
	cfg.HotspotFactor = 40
	base := Simulate(donor, DefaultSimConfig(10, 5))
	hot := Simulate(donor, cfg)
	if len(hot) <= len(base) {
		t.Fatalf("hotspot run produced %d pairs, base %d; want more", len(hot), len(base))
	}
}

func TestSimulateDuplicates(t *testing.T) {
	donor := testDonor(t, 11, 40000)
	cfg := DefaultSimConfig(12, 8)
	cfg.DuplicateRate = 0.5
	pairs := Simulate(donor, cfg)
	// With 50% duplication some consecutive pairs share identical fragments
	// modulo errors: check for at least one matching sequence prefix pair.
	dups := 0
	for i := 1; i < len(pairs); i++ {
		if bytes.Equal(pairs[i].R1.Seq[:20], pairs[i-1].R1.Seq[:20]) {
			dups++
		}
	}
	if dups == 0 {
		t.Fatal("expected duplicated fragments at 50% duplicate rate")
	}
}

func TestQualityProfilesDiffer(t *testing.T) {
	donor := testDonor(t, 13, 30000)
	cfgA := DefaultSimConfig(14, 5)
	cfgA.Profile = ProfileHiSeq()
	cfgB := DefaultSimConfig(14, 5)
	cfgB.Profile = ProfileGAII()
	a := Simulate(donor, cfgA)
	b := Simulate(donor, cfgB)
	meanA, meanB := 0.0, 0.0
	for i := range a {
		meanA += MeanQuality(a[i].R1.Qual)
	}
	for i := range b {
		meanB += MeanQuality(b[i].R1.Qual)
	}
	meanA /= float64(len(a))
	meanB /= float64(len(b))
	if meanA <= meanB {
		t.Fatalf("HiSeq profile mean %.1f should exceed GAII %.1f", meanA, meanB)
	}
}

func TestQualityAdjacentDeltasSmall(t *testing.T) {
	// The compression design assumes adjacent quality deltas concentrate near
	// zero (paper Fig 5). Verify the simulator produces that property.
	donor := testDonor(t, 15, 30000)
	pairs := Simulate(donor, DefaultSimConfig(16, 5))
	small, total := 0, 0
	for i := range pairs {
		q := pairs[i].R1.Qual
		for j := 1; j < len(q); j++ {
			d := int(q[j]) - int(q[j-1])
			if d < 0 {
				d = -d
			}
			if d <= 10 {
				small++
			}
			total++
		}
	}
	if frac := float64(small) / float64(total); frac < 0.9 {
		t.Fatalf("only %.2f of adjacent deltas within 10; want >= 0.9", frac)
	}
}

func TestMeanQuality(t *testing.T) {
	if MeanQuality(nil) != 0 {
		t.Fatal("empty qual mean should be 0")
	}
	if got := MeanQuality([]byte{QualMin + 10, QualMin + 20}); got != 15 {
		t.Fatalf("mean = %v", got)
	}
}
