package fastq

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

// The FASTQ reader must never panic on arbitrary input.
func TestReaderRobustness(t *testing.T) {
	f := func(data []byte) bool {
		r := NewReader(bytes.NewReader(data))
		for {
			_, err := r.Read()
			if err == io.EOF {
				return true
			}
			if err != nil {
				return true // parse error is acceptable; panic is not
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
