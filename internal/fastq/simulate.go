package fastq

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/gpf-go/gpf/internal/genome"
)

// QualityProfile parameterizes the per-cycle quality model of a sequencing
// instrument. Real instruments show high, flat quality early in the read that
// decays toward the 3' end, with strongly correlated adjacent scores — the
// property the paper's delta+Huffman quality codec exploits (Fig 5: the vast
// majority of adjacent deltas fall in 0-10).
type QualityProfile struct {
	Name      string
	StartMean float64 // mean Phred at cycle 0
	EndMean   float64 // mean Phred at the last cycle
	Jitter    float64 // stddev of the random walk between adjacent cycles
	DropRate  float64 // probability per cycle of a transient low-quality dip
	DropDepth float64 // Phred drop of a dip
}

// ProfileHiSeq resembles the SRR622461 Platinum Genome HiSeq 2000 run used in
// the paper: high flat quality with a mild tail decay.
func ProfileHiSeq() QualityProfile {
	return QualityProfile{Name: "SRR622461", StartMean: 37, EndMean: 30, Jitter: 1.2, DropRate: 0.01, DropDepth: 20}
}

// ProfileGAII resembles the older SRR504516-style run: lower, noisier quality.
func ProfileGAII() QualityProfile {
	return QualityProfile{Name: "SRR504516", StartMean: 33, EndMean: 18, Jitter: 2.5, DropRate: 0.03, DropDepth: 15}
}

// SimConfig controls paired-end read simulation (wgsim-style).
type SimConfig struct {
	Seed         int64
	ReadLen      int     // bases per mate (paper: ~100)
	FragmentMean float64 // DNA fragment length mean
	FragmentSD   float64
	Coverage     float64 // mean depth of coverage across the genome
	Profile      QualityProfile
	// Hotspots multiply sampling density inside intervals, reproducing the
	// >10,000x coverage spikes of §4.4 that break static partitioning.
	Hotspots      []genome.Interval
	HotspotFactor float64 // density multiplier inside hotspots (default 50)
	DuplicateRate float64 // fraction of fragments emitted twice (PCR duplicates for MarkDuplicate)
	SampleName    string  // prefix for read names
}

// DefaultSimConfig returns a laptop-scale configuration.
func DefaultSimConfig(seed int64, coverage float64) SimConfig {
	return SimConfig{
		Seed:          seed,
		ReadLen:       100,
		FragmentMean:  300,
		FragmentSD:    30,
		Coverage:      coverage,
		Profile:       ProfileHiSeq(),
		HotspotFactor: 50,
		DuplicateRate: 0.02,
		SampleName:    "sim",
	}
}

// Simulate samples paired-end reads from the donor's haplotypes. Reads carry
// sequencing errors drawn from their own quality scores, so downstream BQSR
// and calling see realistic error structure. The result ordering is the
// sampling order (unsorted, as reads come off a sequencer).
func Simulate(donor *genome.Donor, cfg SimConfig) []Pair {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.ReadLen <= 0 {
		cfg.ReadLen = 100
	}
	if cfg.FragmentMean <= 0 {
		cfg.FragmentMean = 300
	}
	if cfg.HotspotFactor <= 0 {
		cfg.HotspotFactor = 50
	}
	if cfg.SampleName == "" {
		cfg.SampleName = "sim"
	}
	var pairs []Pair
	serial := 0
	for contigID := range donor.Ref.Contigs {
		contigLen := donor.Ref.Contigs[contigID].Len()
		if contigLen < int(cfg.FragmentMean)+1 {
			continue
		}
		// Number of fragments for target coverage: cov * len / (2*readLen).
		baseFragments := int(cfg.Coverage * float64(contigLen) / float64(2*cfg.ReadLen))
		for i := 0; i < baseFragments; i++ {
			p, ok := sampleFragment(donor, contigID, rng, cfg, &serial)
			if !ok {
				continue
			}
			pairs = append(pairs, p)
			if rng.Float64() < cfg.DuplicateRate {
				dup := clonePairWithName(p, fmt.Sprintf("%s_%d", cfg.SampleName, serial))
				serial++
				// Re-sample error bases so duplicates differ only by errors,
				// as PCR duplicates do.
				pairs = append(pairs, dup)
			}
		}
		// Hotspot oversampling.
		for _, hs := range cfg.Hotspots {
			if hs.Contig != contigID {
				continue
			}
			extra := int(cfg.Coverage * (cfg.HotspotFactor - 1) * float64(hs.Len()) / float64(2*cfg.ReadLen))
			for i := 0; i < extra; i++ {
				p, ok := sampleFragmentIn(donor, contigID, hs.Start, hs.End, rng, cfg, &serial)
				if !ok {
					continue
				}
				pairs = append(pairs, p)
			}
		}
	}
	return pairs
}

func clonePairWithName(p Pair, name string) Pair {
	q := Pair{
		R1: Record{Name: name + "/1", Seq: append([]byte(nil), p.R1.Seq...), Qual: append([]byte(nil), p.R1.Qual...)},
		R2: Record{Name: name + "/2", Seq: append([]byte(nil), p.R2.Seq...), Qual: append([]byte(nil), p.R2.Qual...)},
	}
	return q
}

func sampleFragment(donor *genome.Donor, contigID int, rng *rand.Rand, cfg SimConfig, serial *int) (Pair, bool) {
	hap := rng.Intn(2)
	seq := donor.Hap[hap][contigID]
	return sampleFrom(seq, contigID, 0, len(seq), rng, cfg, serial)
}

func sampleFragmentIn(donor *genome.Donor, contigID, start, end int, rng *rand.Rand, cfg SimConfig, serial *int) (Pair, bool) {
	hap := rng.Intn(2)
	seq := donor.Hap[hap][contigID]
	if end > len(seq) {
		end = len(seq)
	}
	return sampleFrom(seq, contigID, start, end, rng, cfg, serial)
}

func sampleFrom(seq []byte, contigID, lo, hi int, rng *rand.Rand, cfg SimConfig, serial *int) (Pair, bool) {
	fragLen := int(rng.NormFloat64()*cfg.FragmentSD + cfg.FragmentMean)
	if fragLen < 2*cfg.ReadLen {
		fragLen = 2 * cfg.ReadLen
	}
	span := hi - lo - fragLen
	if span <= 0 {
		return Pair{}, false
	}
	start := lo + rng.Intn(span)
	frag := seq[start : start+fragLen]
	name := fmt.Sprintf("%s_%d", cfg.SampleName, *serial)
	*serial++

	r1seq := append([]byte(nil), frag[:cfg.ReadLen]...)
	r2seq := genome.ReverseComplement(frag[fragLen-cfg.ReadLen:])
	r1q := sampleQualities(rng, cfg.Profile, cfg.ReadLen)
	r2q := sampleQualities(rng, cfg.Profile, cfg.ReadLen)
	applyErrors(rng, r1seq, r1q)
	applyErrors(rng, r2seq, r2q)
	return Pair{
		R1: Record{Name: name + "/1", Seq: r1seq, Qual: r1q},
		R2: Record{Name: name + "/2", Seq: r2seq, Qual: r2q},
	}, true
}

// sampleQualities draws a per-cycle quality string: a linear decay plus a
// bounded random walk, with occasional dips. Adjacent scores are correlated
// by construction.
func sampleQualities(rng *rand.Rand, p QualityProfile, n int) []byte {
	q := make([]byte, n)
	walk := 0.0
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(max(n-1, 1))
		mean := p.StartMean + (p.EndMean-p.StartMean)*frac
		walk += rng.NormFloat64() * p.Jitter * 0.3
		// Keep the walk bounded so quality stays in a plausible band.
		if walk > 3*p.Jitter {
			walk = 3 * p.Jitter
		}
		if walk < -3*p.Jitter {
			walk = -3 * p.Jitter
		}
		phred := mean + walk
		if rng.Float64() < p.DropRate {
			phred -= p.DropDepth * rng.Float64()
		}
		if phred < 2 {
			phred = 2
		}
		if phred > 41 {
			phred = 41
		}
		q[i] = byte(QualMin + int(phred+0.5))
	}
	return q
}

// applyErrors substitutes bases with probability 10^(-Q/10) given that base's
// quality, so the quality string truthfully reports the error rate.
func applyErrors(rng *rand.Rand, seq, qual []byte) {
	for i := range seq {
		if seq[i] == 'N' {
			// Ns keep a floor-quality score.
			qual[i] = QualMin + 2
			continue
		}
		phred := float64(qual[i] - QualMin)
		pErr := math.Pow(10, -phred/10)
		if rng.Float64() < pErr {
			seq[i] = substitute(rng, seq[i])
		}
	}
}

func substitute(rng *rand.Rand, b byte) byte {
	for {
		alt := genome.Alphabet[rng.Intn(4)]
		if alt != b {
			return alt
		}
	}
}

// MeanQuality returns the average Phred score of a quality string.
func MeanQuality(qual []byte) float64 {
	if len(qual) == 0 {
		return 0
	}
	sum := 0
	for _, q := range qual {
		sum += int(q) - QualMin
	}
	return float64(sum) / float64(len(qual))
}
