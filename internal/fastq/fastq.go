// Package fastq implements the FASTQ genomic data format: records, streaming
// parse/write, and a paired-end read simulator with an empirical quality
// model. FASTQ is the input format of the GPF Aligner stage (§2.1 of the
// paper); records produced here flow into the engine as FASTQPairBundle
// resources.
package fastq

import (
	"bufio"
	"fmt"
	"io"
)

// Quality score encoding bounds: Phred+33 ASCII. The paper (§4.2, footnote 1)
// gives the legal range of an encoded quality character as [33, 126].
const (
	QualMin = 33
	QualMax = 126
)

// Record is a single FASTQ read. Seq and Qual have equal length; Qual holds
// ASCII Phred+33 characters exactly as stored in the file. Per the paper's
// measurement, Seq and Qual account for 80-90% of record bytes, which is why
// the GPF codec compresses exactly these two fields.
type Record struct {
	Name string
	Seq  []byte
	Qual []byte
}

// Validate checks structural invariants of the record.
func (r *Record) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("fastq: empty read name")
	}
	if len(r.Seq) != len(r.Qual) {
		return fmt.Errorf("fastq: read %s: seq len %d != qual len %d", r.Name, len(r.Seq), len(r.Qual))
	}
	for i, q := range r.Qual {
		if q < QualMin || q > QualMax {
			return fmt.Errorf("fastq: read %s: quality byte %d out of range at %d", r.Name, q, i)
		}
	}
	return nil
}

// Bytes returns the approximate serialized size of the record in FASTQ text
// form, used for I/O accounting.
func (r *Record) Bytes() int {
	return len(r.Name) + len(r.Seq) + len(r.Qual) + 6 // @, +, 4 newlines
}

// Pair is a paired-end read: two mates sequenced from opposite ends of one
// DNA fragment. GPF's FASTQPairBundle holds RDDs of these.
type Pair struct {
	R1 Record
	R2 Record
}

// Bytes returns the serialized size of both mates.
func (p *Pair) Bytes() int { return p.R1.Bytes() + p.R2.Bytes() }

// Writer streams records in FASTQ text format.
type Writer struct {
	bw *bufio.Writer
}

// NewWriter wraps w for FASTQ output.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w)}
}

// Write emits one record.
func (w *Writer) Write(r *Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w.bw, "@%s\n%s\n+\n%s\n", r.Name, r.Seq, r.Qual); err != nil {
		return err
	}
	return nil
}

// Flush drains buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams records from FASTQ text input.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader wraps r for FASTQ input.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<24)
	return &Reader{sc: sc}
}

// Read parses the next record. It returns io.EOF at end of input.
func (r *Reader) Read() (Record, error) {
	lines := make([]string, 0, 4)
	for len(lines) < 4 && r.sc.Scan() {
		r.line++
		lines = append(lines, r.sc.Text())
	}
	if err := r.sc.Err(); err != nil {
		return Record{}, fmt.Errorf("fastq: line %d: %w", r.line, err)
	}
	if len(lines) == 0 {
		return Record{}, io.EOF
	}
	if len(lines) != 4 {
		return Record{}, fmt.Errorf("fastq: truncated record at line %d", r.line)
	}
	if len(lines[0]) == 0 || lines[0][0] != '@' {
		return Record{}, fmt.Errorf("fastq: line %d: missing @ header", r.line-3)
	}
	if len(lines[2]) == 0 || lines[2][0] != '+' {
		return Record{}, fmt.Errorf("fastq: line %d: missing + separator", r.line-1)
	}
	rec := Record{
		Name: lines[0][1:],
		Seq:  []byte(lines[1]),
		Qual: []byte(lines[3]),
	}
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// ReadAll parses every record in the stream.
func ReadAll(rd io.Reader) ([]Record, error) {
	r := NewReader(rd)
	var out []Record
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// ReadPairs zips two mate streams (1.fastq / 2.fastq) into Pairs, erroring on
// length mismatch. This is the substrate of FileLoader.loadFastqPairToRdd in
// the paper's Fig 3.
func ReadPairs(rd1, rd2 io.Reader) ([]Pair, error) {
	r1 := NewReader(rd1)
	r2 := NewReader(rd2)
	var out []Pair
	for {
		a, err1 := r1.Read()
		b, err2 := r2.Read()
		if err1 == io.EOF && err2 == io.EOF {
			return out, nil
		}
		if err1 == io.EOF || err2 == io.EOF {
			return nil, fmt.Errorf("fastq: mate files have unequal record counts")
		}
		if err1 != nil {
			return nil, err1
		}
		if err2 != nil {
			return nil, err2
		}
		out = append(out, Pair{R1: a, R2: b})
	}
}
