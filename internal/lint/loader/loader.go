// Package loader type-checks Go packages for gpflint without depending on
// golang.org/x/tools (which is unavailable in the build environment). It
// shells out to `go list -export -deps -json` to resolve package metadata and
// compiler export data, parses the target packages' sources, and type-checks
// them against the export data through the standard gc importer. Only the
// target packages are checked from source; every dependency (stdlib and
// module-internal alike) is imported from export data, which keeps a whole
// repo load under a second of type-checking.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package: the loader's analogue of
// golang.org/x/tools/go/packages.Package, trimmed to what the analyzers use.
type Package struct {
	PkgPath   string
	Name      string
	Dir       string
	GoFiles   []string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` for patterns in dir and returns
// the decoded package stream.
func goList(dir string, patterns []string) (map[string]*listPkg, []*listPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, nil, err
	}
	byPath := make(map[string]*listPkg)
	var order []*listPkg
	dec := json.NewDecoder(out)
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err != nil {
			if err == io.EOF {
				break
			}
			cmd.Wait()
			return nil, nil, fmt.Errorf("loader: decoding go list output: %w", err)
		}
		byPath[p.ImportPath] = p
		order = append(order, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, nil, fmt.Errorf("loader: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	return byPath, order, nil
}

// exportImporter resolves imports through the compiler export data reported
// by go list, honoring per-package ImportMap entries (vendoring, test
// variants). It satisfies types.ImporterFrom so the type checker can hand it
// the importing package's context.
type exportImporter struct {
	byPath map[string]*listPkg
	gc     types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, byPath map[string]*listPkg) *exportImporter {
	ei := &exportImporter{byPath: byPath}
	lookup := func(path string) (io.ReadCloser, error) {
		p, ok := ei.byPath[path]
		if !ok || p.Export == "" {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(p.Export)
	}
	ei.gc = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.ImportFrom(path, "", 0)
}

func (ei *exportImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return ei.gc.ImportFrom(path, dir, 0)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Load lists patterns in dir (a directory inside the target module), parses
// every non-dependency match, and type-checks it against export data.
// Test files are not loaded: gpflint checks production sources; tests are
// exercised by `go test -race`.
func Load(dir string, patterns []string) ([]*Package, error) {
	byPath, order, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, byPath)
	var pkgs []*Package
	for _, lp := range order {
		if lp.DepOnly || lp.Name == "" {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := check(fset, imp, lp.ImportPath, lp.Dir, absFiles(lp.Dir, lp.GoFiles))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// LoadFiles parses the named Go files as one package and type-checks them,
// resolving their imports through `go list` run in dir (so dir must sit
// inside the module that provides the imports). pkgPath is the import path
// recorded for the checked package; analyzers use it for scope decisions.
func LoadFiles(dir, pkgPath string, files []string) (*Package, error) {
	fset := token.NewFileSet()
	var syntax []*ast.File
	importSet := make(map[string]bool)
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
		for _, spec := range af.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if p != "unsafe" {
				importSet[p] = true
			}
		}
	}
	imports := make([]string, 0, len(importSet))
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	byPath := make(map[string]*listPkg)
	if len(imports) > 0 {
		var err error
		byPath, _, err = goList(dir, imports)
		if err != nil {
			return nil, err
		}
	}
	imp := newExportImporter(fset, byPath)
	pkg, err := checkFiles(fset, imp, pkgPath, dir, files, syntax)
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if filepath.IsAbs(n) {
			out[i] = n
		} else {
			out[i] = filepath.Join(dir, n)
		}
	}
	return out
}

func check(fset *token.FileSet, imp types.ImporterFrom, pkgPath, dir string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, af)
	}
	return checkFiles(fset, imp, pkgPath, dir, files, syntax)
}

func checkFiles(fset *token.FileSet, imp types.ImporterFrom, pkgPath, dir string, files []string, syntax []*ast.File) (*Package, error) {
	info := newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Name:      tpkg.Name(),
		Dir:       dir,
		GoFiles:   files,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
