package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/gpf-go/gpf/internal/lint/analysis"
	"github.com/gpf-go/gpf/internal/lint/analysis/dataflow"
)

// AllocLen taints integer lengths read straight off untrusted bytes at the
// codec, colfmt and frame decode surfaces (binary.Uvarint and friends) and
// flags any allocation sized by such a length that is not dominated by a
// bounds check. This is the analyzer form of two real bugs: the pre-fix
// compress.unpackSeq OOM (a corrupt header length sized a []byte before
// anything validated it) and the PR 8 frame-decoder allocate-before-validate
// class. Taint flows through assignments, arithmetic, conversions, container
// stores and one level of calls (per-function summaries), so `need :=
// (length+3)/4; if len(b) < need` counts as a check on length.
var AllocLen = &analysis.Analyzer{
	Name: "alloclen",
	Doc: "flags allocations sized by untrusted decoded lengths without a " +
		"dominating bounds check (a corrupt header must error, not OOM)",
	Run: runAllocLen,
}

// allocLenScopes are the decode surfaces where byte-stream lengths are
// untrusted: serialized blocks (compress, colfmt) and the mproc transport
// frames (under internal/engine). "command-line-arguments" — explicit .go
// file arguments to cmd/gpflint — is always in scope so seeded fixture files
// can be swept directly.
var allocLenScopes = []string{"internal/compress", "internal/colfmt", "internal/engine"}

func allocLenInScope(path string) bool {
	return inScope(path, allocLenScopes) || path == "command-line-arguments"
}

// untrustedRead reports whether result `result` of call is an integer read
// straight off a byte stream — the taint sources.
func untrustedRead(info *types.Info, call *ast.CallExpr, result int) bool {
	if result != 0 {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
		return false
	}
	switch fn.Name() {
	case "Uvarint", "Varint", "ReadUvarint", "ReadVarint",
		"Uint16", "Uint32", "Uint64":
		return true
	}
	return false
}

// allocSink is one allocation whose size argument must not carry unchecked
// untrusted lengths.
type allocSink struct {
	call *ast.CallExpr
	size ast.Expr
	what string
}

// allocSinksIn collects the allocation sites in body: make length and
// capacity, slices.Grow, (*bytes.Buffer).Grow, and the bufpool getters.
func allocSinksIn(info *types.Info, body *ast.BlockStmt) []allocSink {
	var sinks []allocSink
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := objOf(info, id).(*types.Builtin); isBuiltin && id.Name == "make" {
				if len(call.Args) >= 2 {
					sinks = append(sinks, allocSink{call: call, size: call.Args[1], what: "make size"})
				}
				if len(call.Args) >= 3 {
					sinks = append(sinks, allocSink{call: call, size: call.Args[2], what: "make capacity"})
				}
				return true
			}
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "slices" && fn.Name() == "Grow" && len(call.Args) >= 2:
			sinks = append(sinks, allocSink{call: call, size: call.Args[1], what: "slices.Grow"})
		case fn.Pkg().Path() == "bytes" && fn.Name() == "Grow" && len(call.Args) == 1:
			sinks = append(sinks, allocSink{call: call, size: call.Args[0], what: "bytes.Buffer.Grow"})
		case pkgPathHas(fn.Pkg().Path(), "internal/bufpool") && strings.HasPrefix(fn.Name(), "Get") && len(call.Args) == 1:
			sinks = append(sinks, allocSink{call: call, size: call.Args[0], what: "bufpool." + fn.Name()})
		}
		return true
	})
	return sinks
}

// allocFacts is the per-function summary alloclen propagates across one
// level of calls: which results carry unchecked untrusted lengths, and which
// parameters flow into an unguarded allocation inside the body.
type allocFacts struct {
	decl          *ast.FuncDecl
	flow          *dataflow.Func
	sourceResults map[int]bool
	unsafeParams  map[int]bool
}

func runAllocLen(pass *analysis.Pass) error {
	if !allocLenInScope(pass.Pkg.Path()) {
		return nil
	}
	info := pass.TypesInfo

	facts := make(map[*types.Func]*allocFacts)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if flow := dataflow.New(info, fd); flow != nil {
				facts[obj] = &allocFacts{
					decl:          fd,
					flow:          flow,
					sourceResults: make(map[int]bool),
					unsafeParams:  make(map[int]bool),
				}
			}
		}
	}

	// spec taints the builtin byte-stream reads plus — as facts accumulate —
	// unchecked results of package-local helpers.
	spec := dataflow.Spec{Call: func(call *ast.CallExpr, result int) bool {
		if untrustedRead(info, call, result) {
			return true
		}
		if fn := calleeFunc(info, call); fn != nil {
			if ff := facts[fn]; ff != nil && ff.sourceResults[result] {
				return true
			}
		}
		return false
	}}

	// Iterate the summaries to a fixed point so taint propagates through
	// helper chains (getUvarint → readLengths → decoders). Package call
	// graphs here are shallow; the round cap is a safety net.
	for round := 0; round < 5; round++ {
		changed := false
		for _, ff := range facts {
			sum := ff.flow.Summarize(spec)
			for i, seeds := range sum.ResultSeeds {
				if len(seeds) > 0 && !sum.ResultChecked[i] && !ff.sourceResults[i] {
					ff.sourceResults[i] = true
					changed = true
				}
			}
			if ff.flow.Sig == nil {
				continue
			}
			params := ff.flow.Sig.Params()
			for j := 0; j < params.Len(); j++ {
				if ff.unsafeParams[j] {
					continue
				}
				p := params.At(j)
				pt := ff.flow.Taint(dataflow.Spec{Var: func(v *types.Var) bool { return v == p }})
				for _, sink := range allocSinksIn(info, ff.decl.Body) {
					seeds := pt.Seeds(sink.size)
					if len(seeds) > 0 && !pt.BoundedBy(sink.call, seeds) {
						ff.unsafeParams[j] = true
						changed = true
						break
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	for _, ff := range facts {
		t := ff.flow.Taint(spec)
		for _, sink := range allocSinksIn(info, ff.decl.Body) {
			seeds := t.Seeds(sink.size)
			if len(seeds) == 0 || t.BoundedBy(sink.call, seeds) {
				continue
			}
			reportNode(pass, sink.call, "%s derives from an untrusted decoded length with no "+
				"dominating bounds check — a corrupt or hostile header can force an arbitrary "+
				"allocation; validate it against the payload size first", sink.what)
		}
		// One level of call propagation: an unchecked tainted argument
		// flowing into a helper that allocates from that parameter.
		ast.Inspect(ff.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			callee := facts[fn]
			if callee == nil || len(callee.unsafeParams) == 0 {
				return true
			}
			for j := range callee.unsafeParams {
				if j >= len(call.Args) {
					continue
				}
				seeds := t.Seeds(call.Args[j])
				if len(seeds) == 0 || t.BoundedBy(call, seeds) {
					continue
				}
				reportNode(pass, call, "untrusted decoded length flows unchecked into %s, which "+
					"sizes an allocation from that parameter — validate it against the payload "+
					"size before the call", fn.Name())
			}
			return true
		})
	}
	return nil
}
