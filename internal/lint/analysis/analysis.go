// Package analysis is a minimal stand-in for golang.org/x/tools/go/analysis,
// which is not vendorable in this build environment. It defines the Analyzer
// and Pass types the gpflint checkers are written against; the API mirrors
// the upstream package closely enough that the checkers could be ported to a
// real multichecker by swapping the import.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:ignore gpflint/<name> reason` suppression comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers a diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver
}

// Inspect walks every file of the pass in depth-first order, calling fn for
// each node; fn returning false prunes the subtree (ast.Inspect semantics).
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
