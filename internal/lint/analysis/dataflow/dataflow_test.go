package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// check type-checks a synthetic snippet (package body, no imports needed)
// and returns the info plus the named function declarations.
func check(t *testing.T, src string) (*types.Info, map[string]*ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "snippet.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("snippet", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	decls := make(map[string]*ast.FuncDecl)
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			decls[fd.Name.Name] = fd
		}
	}
	return info, decls
}

// sourceSpec taints result 0 of any call to a function literally named
// "source" — the stand-in for binary.Uvarint in these snippets.
func sourceSpec() Spec {
	return Spec{Call: func(call *ast.CallExpr, result int) bool {
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "source" && result == 0
	}}
}

// taintOf runs the source-seeded taint over one function and returns a
// lookup from variable name to taintedness.
func taintOf(t *testing.T, src, fn string) (*Taint, func(name string) bool) {
	t.Helper()
	info, decls := check(t, src)
	f := New(info, decls[fn])
	if f == nil {
		t.Fatalf("no body for %s", fn)
	}
	tt := f.Taint(sourceSpec())
	return tt, func(name string) bool {
		for v := range f.defs {
			if v.Name() == name {
				return len(tt.VarSeeds(v)) > 0
			}
		}
		t.Fatalf("no variable %q in %s", name, fn)
		return false
	}
}

const defUseSrc = `package p
func source(b []byte) (int, int) { return len(b), 0 }
func f(b []byte) int {
	x := 1
	x = 2
	y, _ := source(b)
	return x + y
}`

func TestDefUseConstruction(t *testing.T) {
	info, decls := check(t, defUseSrc)
	f := New(info, decls["f"])
	var x, y *types.Var
	for v := range f.defs {
		switch v.Name() {
		case "x":
			x = v
		case "y":
			y = v
		}
	}
	if x == nil || y == nil {
		t.Fatalf("missing defs: x=%v y=%v", x, y)
	}
	if n := len(f.DefsOf(x)); n != 2 {
		t.Errorf("x has %d defs, want 2 (declaration and reassignment)", n)
	}
	defs := f.DefsOf(y)
	if len(defs) != 1 || defs[0].Result != 0 {
		t.Errorf("y defs = %+v, want one def at result 0 of the call", defs)
	}
}

const propagationSrc = `package p
func source(b []byte) (int, int) { return len(b), 0 }
func f(untrusted []byte, limit int) {
	n, _ := source(untrusted)
	viaAssign := n
	viaArith := (n + 3) / 4
	viaConv := uint64(n)
	viaSlice := untrusted[2:]
	viaIndexRead := viaSlice[0]
	container := make([]int, 4)
	container[0] = n
	viaContainer := container[3]
	clean := limit
	cleanArith := clean * 2
	_, _, _, _, _, _, _ = viaAssign, viaArith, viaConv, viaSlice, viaIndexRead, viaContainer, cleanArith
}`

func TestTaintPropagation(t *testing.T) {
	// Seed the call source and, separately, the untrusted parameter — the
	// slice/index cases propagate the parameter's own taint.
	info, decls := check(t, propagationSrc)
	f := New(info, decls["f"])
	spec := sourceSpec()
	spec.Var = func(v *types.Var) bool { return v.Name() == "untrusted" }
	tt := f.Taint(spec)
	tainted := func(name string) bool {
		for v := range f.defs {
			if v.Name() == name {
				return len(tt.VarSeeds(v)) > 0
			}
		}
		t.Fatalf("no variable %q", name)
		return false
	}
	for _, name := range []string{"viaAssign", "viaArith", "viaConv", "viaSlice", "viaIndexRead", "viaContainer"} {
		if !tainted(name) {
			t.Errorf("%s should be tainted", name)
		}
	}
	for _, name := range []string{"clean", "cleanArith", "container"} {
		if name == "container" {
			// Writing a tainted element taints the container itself.
			if !tainted(name) {
				t.Errorf("container should be tainted by the element store")
			}
			continue
		}
		if tainted(name) {
			t.Errorf("%s should be clean", name)
		}
	}
}

const closureSrc = `package p
func source(b []byte) (int, int) { return len(b), 0 }
func f(b []byte) {
	read := func() int {
		v, _ := source(b)
		return v
	}
	n := read()
	m := len(b)
	_, _ = n, m
}`

func TestTaintThroughLocalClosure(t *testing.T) {
	_, tainted := taintOf(t, closureSrc, "f")
	if !tainted("n") {
		t.Error("n should be tainted through the local closure's return")
	}
	if tainted("m") {
		t.Error("m should be clean")
	}
}

const boundsSrc = `package p
func source(b []byte) (int, int) { return len(b), 0 }

func unguarded(b []byte) []byte {
	n, _ := source(b)
	return make([]byte, n)
}

func guardedTerminating(b []byte) []byte {
	n, _ := source(b)
	if n > len(b) {
		return nil
	}
	return make([]byte, n)
}

func guardedDerived(b []byte) []byte {
	length, _ := source(b)
	need := (length + 3) / 4
	if len(b) < need {
		return nil
	}
	return make([]byte, length)
}

func guardedEnclosing(b []byte) []byte {
	n, _ := source(b)
	if n <= len(b) {
		return make([]byte, n)
	}
	return nil
}

func guardedElse(b []byte) []byte {
	n, _ := source(b)
	if n > len(b) {
		return nil
	} else {
		return make([]byte, n)
	}
}

func positivityIsNoGuard(b []byte) []byte {
	n, _ := source(b)
	if n > 0 {
		return make([]byte, n)
	}
	return nil
}

func checkAfterAllocIsNoGuard(b []byte) []byte {
	n, _ := source(b)
	out := make([]byte, n)
	if n > len(b) {
		return nil
	}
	return out
}

func validateThenAllocate(b []byte, counts []int) [][]byte {
	limit := len(b)
	for i := range counts {
		n, _ := source(b)
		if n > limit {
			return nil
		}
		counts[i] = n
	}
	out := make([][]byte, 0, len(counts))
	for _, n := range counts {
		out = append(out, make([]byte, n))
	}
	return out
}`

// makeIn finds the allocation sized by a tainted value inside fn and reports
// whether BoundedBy accepts it.
func makeBounded(t *testing.T, fn string) bool {
	t.Helper()
	info, decls := check(t, boundsSrc)
	f := New(info, decls[fn])
	tt := f.Taint(sourceSpec())
	bounded, found := false, false
	ast.Inspect(f.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" || len(call.Args) < 2 {
			return true
		}
		seeds := tt.Seeds(call.Args[1])
		if len(seeds) == 0 {
			return true
		}
		found = true
		bounded = tt.BoundedBy(call, seeds)
		return true
	})
	if !found {
		t.Fatalf("%s: no tainted allocation found", fn)
	}
	return bounded
}

func TestBoundsCheckDomination(t *testing.T) {
	shouldBound := map[string]bool{
		"unguarded":                false,
		"guardedTerminating":       true,
		"guardedDerived":           true,
		"guardedEnclosing":         true,
		"guardedElse":              true,
		"positivityIsNoGuard":      false,
		"checkAfterAllocIsNoGuard": false,
		"validateThenAllocate":     true,
	}
	for fn, want := range shouldBound {
		if got := makeBounded(t, fn); got != want {
			t.Errorf("%s: BoundedBy = %v, want %v", fn, got, want)
		}
	}
}

const summarySrc = `package p
func source(b []byte) (int, int) { return len(b), 0 }

func rawLength(b []byte) int {
	n, _ := source(b)
	return n
}

func checkedLength(b []byte, limit int) int {
	n, _ := source(b)
	if n > limit {
		return 0
	}
	return n
}

func cleanLength(b []byte) int {
	return len(b)
}`

func TestSummaries(t *testing.T) {
	info, decls := check(t, summarySrc)
	sum := func(fn string) *Summary { return New(info, decls[fn]).Summarize(sourceSpec()) }

	raw := sum("rawLength")
	if len(raw.ResultSeeds[0]) == 0 {
		t.Error("rawLength result should carry source seeds")
	}
	if raw.ResultChecked[0] {
		t.Error("rawLength result should be unchecked")
	}

	checked := sum("checkedLength")
	if len(checked.ResultSeeds[0]) == 0 {
		t.Error("checkedLength result should carry source seeds")
	}
	if !checked.ResultChecked[0] {
		t.Error("checkedLength result should be marked checked by the limit test")
	}

	clean := sum("cleanLength")
	if len(clean.ResultSeeds[0]) != 0 {
		t.Error("cleanLength result should be seed-free")
	}
}
