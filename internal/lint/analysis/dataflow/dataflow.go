// Package dataflow is a lightweight intraprocedural dataflow layer for
// gpflint analyzers: def-use chains and reaching conditions over go/ast and
// go/types, a taint fixed-point that tracks which source each value derives
// from, and per-function summaries for one level of call propagation. It is
// deliberately not an SSA or CFG framework — analyzers in this repo need to
// answer three questions about small, straight-line decode and transport
// functions: "does this value derive from that source?", "is it bounds-
// checked before it reaches this allocation?", and "what does this helper do
// with its parameters and results?" — and an AST-structural analysis answers
// all three without pulling golang.org/x/tools into the build.
//
// Precision model: variables are tracked field-insensitively (taint on any
// part of x taints x), containers propagate element taint (a write of a
// tainted value through x[i] taints reads of x[j]), and nested function
// literals are flattened into their enclosing function (a captured variable
// assigned inside a closure is still a definition). These choices
// over-approximate, which is the right failure mode for a linter: a missed
// sanitizer is a false positive a human can suppress with a reason; a missed
// source is a silent hole.
package dataflow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Func is the dataflow view of one function body: every definition of every
// variable assigned inside it, with nested function literals flattened in.
type Func struct {
	Info *types.Info
	Decl ast.Node // *ast.FuncDecl or *ast.FuncLit
	Body *ast.BlockStmt
	Sig  *types.Signature

	defs map[*types.Var][]Def
	lits map[*types.Var]*ast.FuncLit // closures bound to local variables
}

// Def is one definition of a variable: an assignment, a declaration with a
// value, or a range-clause binding.
type Def struct {
	LHS    *types.Var
	RHS    ast.Expr // defining expression; nil for zero-value declarations
	Result int      // result index when RHS is a multi-value call
	Range  bool     // range binding: LHS iterates over container RHS
}

// New builds the dataflow view of fn, which must be an *ast.FuncDecl or
// *ast.FuncLit with a body. Returns nil for bodyless declarations.
func New(info *types.Info, fn ast.Node) *Func {
	f := &Func{
		Info: info,
		Decl: fn,
		defs: make(map[*types.Var][]Def),
		lits: make(map[*types.Var]*ast.FuncLit),
	}
	switch d := fn.(type) {
	case *ast.FuncDecl:
		f.Body = d.Body
		if obj, ok := info.Defs[d.Name].(*types.Func); ok {
			f.Sig, _ = obj.Type().(*types.Signature)
		}
	case *ast.FuncLit:
		f.Body = d.Body
		if tv, ok := info.Types[d]; ok {
			f.Sig, _ = tv.Type.(*types.Signature)
		}
	}
	if f.Body == nil {
		return nil
	}
	ast.Inspect(f.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			f.addAssign(n)
		case *ast.ValueSpec:
			for i, name := range n.Names {
				v := f.varOfIdent(name)
				if v == nil {
					continue
				}
				switch {
				case len(n.Values) == len(n.Names):
					f.addDef(Def{LHS: v, RHS: n.Values[i]})
					f.noteLit(v, n.Values[i])
				case len(n.Values) == 1:
					f.addDef(Def{LHS: v, RHS: n.Values[0], Result: i})
				default:
					f.addDef(Def{LHS: v})
				}
			}
		case *ast.RangeStmt:
			for _, lhs := range []ast.Expr{n.Key, n.Value} {
				if lhs == nil {
					continue
				}
				if v := RootVar(f.Info, lhs); v != nil {
					f.addDef(Def{LHS: v, RHS: n.X, Range: true})
				}
			}
		}
		return true
	})
	return f
}

func (f *Func) addAssign(n *ast.AssignStmt) {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// Multi-value: a, b := f().
		for i, lhs := range n.Lhs {
			if v := RootVar(f.Info, lhs); v != nil {
				f.addDef(Def{LHS: v, RHS: n.Rhs[0], Result: i})
			}
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		v := RootVar(f.Info, lhs)
		if v == nil {
			continue
		}
		f.addDef(Def{LHS: v, RHS: n.Rhs[i]})
		if n.Tok == token.DEFINE || n.Tok == token.ASSIGN {
			f.noteLit(v, n.Rhs[i])
		}
	}
}

func (f *Func) addDef(d Def) { f.defs[d.LHS] = append(f.defs[d.LHS], d) }

func (f *Func) noteLit(v *types.Var, rhs ast.Expr) {
	if lit, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
		f.lits[v] = lit
	}
}

func (f *Func) varOfIdent(id *ast.Ident) *types.Var {
	if obj, ok := f.Info.Defs[id].(*types.Var); ok {
		return obj
	}
	obj, _ := f.Info.Uses[id].(*types.Var)
	return obj
}

// DefsOf returns every recorded definition of v, in source order.
func (f *Func) DefsOf(v *types.Var) []Def { return f.defs[v] }

// RootVar returns the variable at the base of an lvalue-shaped expression:
// x, x.f, x[i], *x, x.f[i].g all root at x. Nil for other shapes.
func RootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj, ok := info.Defs[x].(*types.Var); ok {
				return obj
			}
			obj, _ := info.Uses[x].(*types.Var)
			return obj
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// SeedSet identifies the taint sources reaching a value, keyed by source
// position — one seed per source call site or seeded variable. Two values
// with intersecting seed sets derive (in part) from the same source, which
// is what lets a bounds check on `need` sanitize an allocation sized by
// `length` when need was computed from length.
type SeedSet map[token.Pos]bool

// Intersects reports whether the two sets share a seed.
func (s SeedSet) Intersects(o SeedSet) bool {
	if len(s) > len(o) {
		s, o = o, s
	}
	for p := range s {
		if o[p] {
			return true
		}
	}
	return false
}

func (s SeedSet) addAll(o SeedSet) bool {
	grew := false
	for p := range o {
		if !s[p] {
			s[p] = true
			grew = true
		}
	}
	return grew
}

func merged(a, b SeedSet) SeedSet {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(SeedSet, len(a)+len(b))
	out.addAll(a)
	out.addAll(b)
	return out
}

// Spec declares what taints. Call marks result `result` of a call expression
// as a taint source; Var marks a variable (typically a parameter) as
// externally tainted. Either may be nil.
type Spec struct {
	Call func(call *ast.CallExpr, result int) bool
	Var  func(v *types.Var) bool
}

// Taint is the fixed point of taint propagation over a function's def-use
// chains: assignments, arithmetic, slicing, conversions, container writes
// and local-closure returns all propagate seeds.
type Taint struct {
	F    *Func
	spec Spec
	vars map[*types.Var]SeedSet
	lits map[*ast.FuncLit]bool // recursion guard for closure result lookup
}

// Taint runs the propagation fixed point under spec.
func (f *Func) Taint(spec Spec) *Taint {
	t := &Taint{F: f, spec: spec, vars: make(map[*types.Var]SeedSet)}
	for changed := true; changed; {
		changed = false
		for v, defs := range f.defs {
			for _, d := range defs {
				s := t.defSeeds(d)
				if len(s) == 0 {
					continue
				}
				cur := t.vars[v]
				if cur == nil {
					cur = make(SeedSet)
					t.vars[v] = cur
				}
				if cur.addAll(s) {
					changed = true
				}
			}
		}
	}
	return t
}

func (t *Taint) defSeeds(d Def) SeedSet {
	if d.RHS == nil {
		return nil
	}
	if call, ok := ast.Unparen(d.RHS).(*ast.CallExpr); ok {
		return t.callSeeds(call, d.Result)
	}
	return t.Seeds(d.RHS)
}

// Seeds returns the taint sources reaching expression e (in single-value
// position). Nil/empty means untainted.
func (t *Taint) Seeds(e ast.Expr) SeedSet {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := t.objOf(e).(*types.Var); ok {
			return t.varSeeds(v)
		}
	case *ast.ParenExpr:
		return t.Seeds(e.X)
	case *ast.StarExpr:
		return t.Seeds(e.X)
	case *ast.UnaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.XOR, token.ARROW, token.AND:
			return t.Seeds(e.X)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT:
			return merged(t.Seeds(e.X), t.Seeds(e.Y))
		}
	case *ast.IndexExpr:
		return t.Seeds(e.X)
	case *ast.SliceExpr:
		return t.Seeds(e.X)
	case *ast.SelectorExpr:
		// Field-insensitive: x.f carries x's taint. Package selectors root
		// at a PkgName, which yields nothing.
		return t.Seeds(e.X)
	case *ast.CompositeLit:
		var s SeedSet
		for _, el := range e.Elts {
			s = merged(s, t.Seeds(el))
		}
		return s
	case *ast.KeyValueExpr:
		return t.Seeds(e.Value)
	case *ast.TypeAssertExpr:
		return t.Seeds(e.X)
	case *ast.CallExpr:
		return t.callSeeds(e, 0)
	}
	return nil
}

// Tainted reports whether any source reaches e.
func (t *Taint) Tainted(e ast.Expr) bool { return len(t.Seeds(e)) > 0 }

// VarSeeds returns the sources reaching variable v.
func (t *Taint) VarSeeds(v *types.Var) SeedSet { return t.varSeeds(v) }

func (t *Taint) varSeeds(v *types.Var) SeedSet {
	s := t.vars[v]
	if t.spec.Var != nil && t.spec.Var(v) {
		s = merged(s, SeedSet{v.Pos(): true})
	}
	return s
}

func (t *Taint) objOf(id *ast.Ident) types.Object {
	if o := t.F.Info.Uses[id]; o != nil {
		return o
	}
	return t.F.Info.Defs[id]
}

func (t *Taint) callSeeds(call *ast.CallExpr, result int) SeedSet {
	if t.spec.Call != nil && t.spec.Call(call, result) {
		return SeedSet{call.Pos(): true}
	}
	fun := ast.Unparen(call.Fun)
	// Conversion T(x) passes the operand through.
	if tv, ok := t.F.Info.Types[fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return t.Seeds(call.Args[0])
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := t.objOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "min", "max", "append":
				var s SeedSet
				for _, a := range call.Args {
					s = merged(s, t.Seeds(a))
				}
				return s
			}
			return nil // len, cap, make, new, ... produce fresh values
		}
		// A call through a local closure yields whatever the closure's
		// return expressions yield under this same taint state.
		if v, ok := t.objOf(id).(*types.Var); ok {
			if lit := t.F.lits[v]; lit != nil {
				return t.litResultSeeds(lit, result)
			}
		}
	}
	return nil
}

// litResultSeeds unions the seeds of a local closure's return expressions
// for one result index. Closure-local variables are tracked in the enclosing
// Func (bodies are flattened), so this is just a walk over its returns.
func (t *Taint) litResultSeeds(lit *ast.FuncLit, result int) SeedSet {
	if t.lits == nil {
		t.lits = make(map[*ast.FuncLit]bool)
	}
	if t.lits[lit] {
		return nil // self-recursive closure: cut the cycle
	}
	t.lits[lit] = true
	defer delete(t.lits, lit)
	var sig *types.Signature
	if tv, ok := t.F.Info.Types[lit]; ok {
		sig, _ = tv.Type.(*types.Signature)
	}
	var s SeedSet
	for _, ret := range returnsOf(lit.Body) {
		s = merged(s, t.returnSeeds(ret, sig, result))
	}
	return s
}

func (t *Taint) returnSeeds(ret *ast.ReturnStmt, sig *types.Signature, result int) SeedSet {
	switch {
	case len(ret.Results) == 0:
		// Naked return with named results.
		if sig != nil && result < sig.Results().Len() {
			return t.varSeeds(sig.Results().At(result))
		}
	case result < len(ret.Results):
		return t.Seeds(ret.Results[result])
	case len(ret.Results) == 1:
		// return f() forwarding a multi-value call.
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			return t.callSeeds(call, result)
		}
	}
	return nil
}

// returnsOf collects the return statements belonging to body itself, not to
// function literals nested inside it.
func returnsOf(body *ast.BlockStmt) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, n)
		}
		return true
	})
	return out
}

// PathTo returns the ancestor chain from the function body down to n
// (inclusive of both), or nil if n is not inside this function.
func (f *Func) PathTo(n ast.Node) []ast.Node {
	var path, stack []ast.Node
	ast.Inspect(f.Body, func(m ast.Node) bool {
		if m == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if path != nil {
			return false
		}
		stack = append(stack, m)
		if m == n {
			path = append([]ast.Node(nil), stack...)
			stack = stack[:len(stack)-1] // returning false skips f(nil)
			return false
		}
		return true
	})
	return path
}

// BoundedBy reports whether node n — typically an allocation whose size
// carries seeds — is protected by a relational bounds check on a value
// sharing a seed with it. Three shapes count:
//
//   - an enclosing branch admitting only small values: if v < limit { ... }
//   - the else of an oversize test: if v > limit { ... } else { ... }
//   - a preceding oversize test whose branch exits: if v > limit { return }
//
// The preceding test need not strictly dominate: validate-then-allocate
// loops (pass 1 checks every length, pass 2 allocates from them) count. A
// check appearing after the allocation never counts, and comparisons against
// the constant 0 never count — `if n > 0 { make(T, n) }` guards nothing.
func (t *Taint) BoundedBy(n ast.Node, seeds SeedSet) bool {
	if len(seeds) == 0 {
		return false
	}
	path := t.F.PathTo(n)
	for i, anc := range path {
		ifs, ok := anc.(*ast.IfStmt)
		if !ok || i+1 >= len(path) {
			continue
		}
		switch path[i+1] {
		case ifs.Body:
			if t.condBounds(ifs.Cond, seeds, taintedSmall) {
				return true
			}
		case ifs.Else:
			if t.condBounds(ifs.Cond, seeds, taintedLarge) {
				return true
			}
		}
	}
	found := false
	ast.Inspect(t.F.Body, func(m ast.Node) bool {
		if found {
			return false
		}
		ifs, ok := m.(*ast.IfStmt)
		if !ok || ifs.Pos() >= n.Pos() || !Terminates(ifs.Body) {
			return true
		}
		if t.condBounds(ifs.Cond, seeds, taintedLarge) {
			found = true
		}
		return true
	})
	return found
}

// Bound directions: a check is only a bound when the tainted value sits on
// the right side of the comparison for its context — the small side of an
// admitting branch (if v < limit { alloc }), the large side of a rejecting
// one (if v > limit { return }).
type boundDir int

const (
	taintedSmall boundDir = iota
	taintedLarge
)

func (t *Taint) condBounds(cond ast.Expr, seeds SeedSet, dir boundDir) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if found {
			return false
		}
		cmp, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		small, large := cmp.X, cmp.Y
		switch cmp.Op {
		case token.LSS, token.LEQ:
		case token.GTR, token.GEQ:
			small, large = large, small
		default:
			return true
		}
		tainted, other := small, large
		if dir == taintedLarge {
			tainted, other = large, small
		}
		if t.isZero(other) {
			return true
		}
		if t.Seeds(tainted).Intersects(seeds) {
			found = true
		}
		return true
	})
	return found
}

func (t *Taint) isZero(e ast.Expr) bool {
	tv, ok := t.F.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return exact && v == 0
}

// Terminates reports whether executing s always exits the enclosing
// statement sequence: a return, branch, panic, or fatal call in tail
// position, or an if whose branches all terminate.
func Terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		if len(s.List) == 0 {
			return false
		}
		return Terminates(s.List[len(s.List)-1])
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.IfStmt:
		return s.Else != nil && Terminates(s.Body) && Terminates(s.Else)
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fn := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			return fn.Name == "panic"
		case *ast.SelectorExpr:
			switch fn.Sel.Name {
			case "Exit", "Goexit", "Fatal", "Fatalf":
				return true
			}
		}
	}
	return false
}

// Summary is one level of cross-function taint propagation: for each result
// of a function, the seeds flowing into it, and whether the body applies any
// relational bound to a value sharing those seeds. Checked results get the
// benefit of the doubt at call sites — a reader-style error latch
// (`if v > limit { r.fail(...) }`) does not dominate its return, but it does
// validate, and the caller is expected to consult the error.
type Summary struct {
	ResultSeeds   []SeedSet
	ResultChecked []bool
}

// Summarize runs the taint fixed point under spec and projects it onto the
// function's results.
func (f *Func) Summarize(spec Spec) *Summary {
	if f.Sig == nil {
		return &Summary{}
	}
	n := f.Sig.Results().Len()
	sum := &Summary{
		ResultSeeds:   make([]SeedSet, n),
		ResultChecked: make([]bool, n),
	}
	if n == 0 {
		return sum
	}
	t := f.Taint(spec)
	for _, ret := range returnsOf(f.Body) {
		for i := 0; i < n; i++ {
			sum.ResultSeeds[i] = merged(sum.ResultSeeds[i], t.returnSeeds(ret, f.Sig, i))
		}
	}
	for i := 0; i < n; i++ {
		if len(sum.ResultSeeds[i]) == 0 {
			continue
		}
		checked := false
		ast.Inspect(f.Body, func(m ast.Node) bool {
			if checked {
				return false
			}
			if ifs, ok := m.(*ast.IfStmt); ok {
				if t.condBounds(ifs.Cond, sum.ResultSeeds[i], taintedLarge) ||
					t.condBounds(ifs.Cond, sum.ResultSeeds[i], taintedSmall) {
					checked = true
				}
			}
			return true
		})
		sum.ResultChecked[i] = checked
	}
	return sum
}

// ClosureOf returns the function literal bound to local variable v by a
// plain assignment (`fn := func() {...}`), or nil. Analyzers use it to
// resolve `go fn()` through the def-use chain.
func (f *Func) ClosureOf(v *types.Var) *ast.FuncLit { return f.lits[v] }
