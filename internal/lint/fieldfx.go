package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"github.com/gpf-go/gpf/internal/lint/analysis"
)

// FieldFX guards the projection planner's trust in declared field effects
// (DESIGN.md, "Projection planner"). The planner prunes record columns an op
// does not declare it reads; both failure modes around that contract are
// silent at the type level:
//
//   - An engine op over sam.Record with NO StageOption defaults to
//     FieldsAll — correct but prunes nothing. The default is deliberate,
//     so it must be loud: the analyzer reports the missed declaration.
//   - An op that declares ReadsOnly/WithEffects NARROWER than what its
//     callback actually reads is worse than undeclared: the planner may
//     feed the callback zero values for the pruned fields. The analyzer
//     reports every field selector outside the declared reads mask.
//
// The check is callee-scoped (any package calling the engine's effect-
// capable ops) and record-scoped to sam.Record, the one record type with a
// columnar layout. Reads the analyzer cannot see — the record passed whole
// to another function, or read through a method — disable the narrow check
// for that callback rather than guess; declarations remain the author's
// responsibility there.
var FieldFX = &analysis.Analyzer{
	Name: "fieldfx",
	Doc:  "engine ops over sam.Record must declare field effects, and declared masks must cover the callback's field reads",
	Run:  runFieldFX,
}

// fieldfxOps are the effect-capable dataset operations. Multi-input zips are
// excluded: joins consume whole records by construction.
var fieldfxOps = map[string]bool{
	"Map":            true,
	"Filter":         true,
	"MapPartitions":  true,
	"PartitionBy":    true,
	"SortPartitions": true,
	"CountByKey":     true,
	"ReduceByKey":    true,
	"CombineByKey":   true,
}

// samFieldBits maps sam.Record struct fields to their colfmt column bits.
// Mirrors the colfmt v1 layout (colfmt.Field* constants): grouped coordinate
// and mate columns share a bit.
var samFieldBits = map[string]uint64{
	"Name":    1 << 0,
	"Flag":    1 << 1,
	"RefID":   1 << 2,
	"Pos":     1 << 2,
	"MapQ":    1 << 3,
	"Cigar":   1 << 4,
	"MateRef": 1 << 5,
	"MatePos": 1 << 5,
	"TempLen": 1 << 5,
	"Seq":     1 << 6,
	"Qual":    1 << 7,
	"Tags":    1 << 8,
}

// fieldBitName names a colfmt column bit for diagnostics.
var fieldBitName = map[uint64]string{
	1 << 0: "FieldName",
	1 << 1: "FieldFlag",
	1 << 2: "FieldCoord",
	1 << 3: "FieldMapQ",
	1 << 4: "FieldCigar",
	1 << 5: "FieldMate",
	1 << 6: "FieldSeq",
	1 << 7: "FieldQual",
	1 << 8: "FieldTags",
}

func runFieldFX(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || !fieldfxOps[fn.Name()] {
			return true
		}
		if !pkgPathHas(fn.Pkg().Path(), "internal/engine") && !pkgPathHas(fn.Pkg().Path(), "pkg/gpf") {
			return true
		}

		// The op is in scope only when a callback argument consumes
		// sam.Record values (by value, pointer or slice).
		var callbacks []*ast.FuncLit
		samCallback := false
		for _, arg := range call.Args {
			t := pass.TypesInfo.Types[arg].Type
			if t == nil {
				continue
			}
			sig, ok := t.Underlying().(*types.Signature)
			if !ok || !signatureReadsSAM(sig) {
				continue
			}
			samCallback = true
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				callbacks = append(callbacks, lit)
			}
		}
		if !samCallback {
			return true
		}

		declared, reads, readsKnown := declaredEffects(pass.TypesInfo, call)
		if !declared {
			reportNode(pass, call,
				"%s over sam.Record declares no field effects: the projection planner defaults to AllFields and prunes nothing; declare ReadsOnly/Rebuilds/WithEffects", fn.Name())
			return true
		}
		if !readsKnown {
			return true // mask not statically evaluable: trust the author
		}
		for _, lit := range callbacks {
			checkNarrowReads(pass, lit, reads)
		}
		return true
	})
	return nil
}

// signatureReadsSAM reports whether any parameter of sig carries sam.Record
// values into the callback.
func signatureReadsSAM(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isSAMRecordCarrier(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isSAMRecordCarrier matches sam.Record, *sam.Record and []sam.Record.
func isSAMRecordCarrier(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		t = u.Elem()
	case *types.Pointer:
		t = u.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Record" && obj.Pkg() != nil && pkgPathHas(obj.Pkg().Path(), "internal/sam")
}

// declaredEffects scans a call's arguments for StageOption values and
// returns whether any were passed, the union of statically-known reads
// masks, and whether every declared mask was statically evaluable.
func declaredEffects(info *types.Info, call *ast.CallExpr) (declared bool, reads uint64, readsKnown bool) {
	readsKnown = true
	for _, arg := range call.Args {
		t := info.Types[arg].Type
		if t == nil || !isStageOption(t) {
			continue
		}
		declared = true
		m, ok := optionReadsMask(info, arg)
		if !ok {
			readsKnown = false
			continue
		}
		reads |= m
	}
	return declared, reads, readsKnown
}

// isStageOption matches the engine.StageOption named type (and its pkg/gpf
// alias, which resolves to the same type object).
func isStageOption(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "StageOption" && obj.Pkg() != nil &&
		(pkgPathHas(obj.Pkg().Path(), "internal/engine") || pkgPathHas(obj.Pkg().Path(), "pkg/gpf"))
}

// optionReadsMask extracts the reads mask from a ReadsOnly/Rebuilds call or
// a WithEffects call over a FieldEffects literal. Option values built any
// other way (variables, helper functions) are not statically evaluable.
func optionReadsMask(info *types.Info, arg ast.Expr) (uint64, bool) {
	optCall, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return 0, false
	}
	ctor := calleeFunc(info, optCall)
	if ctor == nil || len(optCall.Args) != 1 {
		return 0, false
	}
	switch ctor.Name() {
	case "ReadsOnly", "Rebuilds":
		return constMask(info, optCall.Args[0])
	case "WithEffects":
		lit, ok := ast.Unparen(optCall.Args[0]).(*ast.CompositeLit)
		if !ok {
			return 0, false
		}
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				return 0, false
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Reads" {
				return constMask(info, kv.Value)
			}
		}
		return 0, true // FieldEffects{} with no Reads key: reads nothing
	}
	return 0, false
}

// constMask evaluates a FieldMask expression the type checker folded to a
// constant.
func constMask(info *types.Info, expr ast.Expr) (uint64, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Uint64Val(constant.ToInt(tv.Value))
	return v, ok
}

// checkNarrowReads walks one callback literal and reports sam.Record field
// reads whose column bit is outside the declared reads mask. Tracked
// carriers are the literal's own sam.Record parameters plus simple aliases
// (`r := &recs[i]`); writes (selector on an assignment's left side) are not
// reads, and method calls are left to the author's declaration.
func checkNarrowReads(pass *analysis.Pass, lit *ast.FuncLit, reads uint64) {
	tracked := map[types.Object]bool{}
	if lit.Type.Params != nil {
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if obj := objOf(pass.TypesInfo, name); obj != nil && isSAMRecordCarrier(obj.Type()) {
					tracked[obj] = true
				}
			}
		}
	}
	if len(tracked) == 0 {
		return
	}

	writes := map[*ast.SelectorExpr]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		// Compound assignments (r.Flag |= x) read the field first, so only
		// plain stores count as writes.
		if asg.Tok == token.ASSIGN || asg.Tok == token.DEFINE {
			for _, lhs := range asg.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					writes[sel] = true
				}
			}
		}
		// Alias tracking: x := recs[i] / x := &recs[i] extends the set.
		for i, lhs := range asg.Lhs {
			if i >= len(asg.Rhs) {
				break
			}
			root := rootIdent(ast.Unparen(asg.Rhs[i]))
			if root == nil {
				if ue, ok := ast.Unparen(asg.Rhs[i]).(*ast.UnaryExpr); ok {
					root = rootIdent(ue.X)
				}
			}
			if root == nil || !tracked[objOf(pass.TypesInfo, root)] {
				continue
			}
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := objOf(pass.TypesInfo, id); obj != nil && isSAMRecordCarrier(obj.Type()) {
					tracked[obj] = true
				}
			}
		}
		return true
	})

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || writes[sel] {
			return true
		}
		root := rootIdent(sel.X)
		if root == nil || !tracked[objOf(pass.TypesInfo, root)] {
			return true
		}
		field, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
		if !ok || !field.IsField() {
			return true // method selection: out of static reach
		}
		bit, ok := samFieldBits[field.Name()]
		if !ok {
			return true
		}
		if bit&^reads != 0 {
			reportNode(pass, sel,
				"callback reads sam.Record.%s (%s) outside the declared effects mask: the planner may prune it to a zero value",
				field.Name(), fieldBitName[bit])
		}
		return true
	})
}
