package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/gpf-go/gpf/internal/lint/analysis"
)

// CodecErr flags dropped error returns from codec and serializer calls:
// methods named Marshal/Unmarshal/Encode/Decode/Write*/Flush whose final
// result is an error, declared either in this module or in the stdlib
// encoding packages. A swallowed codec error in the shuffle or storage path
// silently corrupts partitions — the decode side sees a truncated block and
// the job produces wrong results instead of failing. Unlike errcheck this is
// deliberately narrow: it only watches serialization surfaces, so it can run
// as a required CI step without drowning the build in io noise.
var CodecErr = &analysis.Analyzer{
	Name: "codecerr",
	Doc: "flags dropped errors from codec/serializer Encode/Decode/Write " +
		"calls (a swallowed codec error corrupts partitions silently)",
	Run: runCodecErr,
}

// codecMethodNames are the watched serialization entry points. The frame
// variants cover the mproc shuffle transport: a frame write whose error is
// dropped leaves the peer waiting on a bucket that never arrives, and a
// dropped frame-read error turns a torn header into garbage geometry.
var codecMethodNames = map[string]bool{
	"Marshal":     true,
	"Unmarshal":   true,
	"Encode":      true,
	"Decode":      true,
	"Write":       true,
	"WriteByte":   true,
	"WriteString": true,
	"WriteTo":     true,
	"Flush":       true,
	"WriteFrame":  true,
	"writeFrame":  true,
	"ReadFrame":   true,
	"readFrame":   true,
}

// stdlibCodecPkgs are non-module packages whose codec errors are also
// watched (the engine's gob fallback flows through them).
var stdlibCodecPkgs = map[string]bool{
	"encoding/gob":    true,
	"encoding/json":   true,
	"encoding/binary": true,
}

// watchedCodecCall reports whether call is a codec call whose error must be
// consumed.
func watchedCodecCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !codecMethodNames[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !lastResultIsError(sig) {
		return false
	}
	path := fn.Pkg().Path()
	if stdlibCodecPkgs[path] {
		return true
	}
	// Module-internal declarations: stdlib import paths never contain a dot
	// in their first element; module paths (ours included) do.
	first, _, _ := strings.Cut(path, "/")
	return strings.Contains(first, ".")
}

func runCodecErr(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok && watchedCodecCall(pass.TypesInfo, call) {
				reportCodecDrop(pass, call)
			}
		case *ast.DeferStmt:
			if watchedCodecCall(pass.TypesInfo, st.Call) {
				reportCodecDrop(pass, st.Call)
			}
		case *ast.GoStmt:
			if watchedCodecCall(pass.TypesInfo, st.Call) {
				reportCodecDrop(pass, st.Call)
			}
		case *ast.AssignStmt:
			// `n, _ := w.Write(b)` / `_ = enc.Encode(v)`: the call is the sole
			// RHS and the error position on the LHS is blank.
			if len(st.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok || !watchedCodecCall(pass.TypesInfo, call) {
				return true
			}
			errIdx := len(st.Lhs) - 1 // last result is the error
			if id, ok := st.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
				reportCodecDrop(pass, call)
			}
		}
		return true
	})
	return nil
}

func reportCodecDrop(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	reportNode(pass, call, "error return of %s.%s dropped; a swallowed codec error "+
		"silently corrupts serialized partitions — handle or propagate it",
		fn.Pkg().Name(), fn.Name())
}
