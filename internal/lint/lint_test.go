package lint_test

import (
	"path/filepath"
	"testing"

	"github.com/gpf-go/gpf/internal/lint"
	"github.com/gpf-go/gpf/internal/lint/analysistest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

func TestSharedCapture(t *testing.T) {
	analysistest.Run(t, fixture("sharedcapture"), "gpf/fixture/sharedcapture", lint.SharedCapture)
}

func TestMapIter(t *testing.T) {
	analysistest.Run(t, fixture("mapiter"), "github.com/gpf-go/gpf/internal/engine/mapiterfixture", lint.MapIter)
}

func TestWallTime(t *testing.T) {
	analysistest.Run(t, fixture("walltime"), "github.com/gpf-go/gpf/internal/cluster/walltimefixture", lint.WallTime)
}

func TestCodecErr(t *testing.T) {
	analysistest.Run(t, fixture("codecerr"), "gpf/fixture/codecerr", lint.CodecErr)
}

func TestBufAlloc(t *testing.T) {
	analysistest.Run(t, fixture("bufalloc"), "github.com/gpf-go/gpf/internal/compress/bufallocfixture", lint.BufAlloc)
}

// TestKernelBufFixture loads the kernel-hot-path fixture under a package
// path inside internal/caller: the bufalloc scope extension to the pooled-
// buffer kernels applies there, watching PairHMM*/…Align* entry points.
func TestKernelBufFixture(t *testing.T) {
	analysistest.Run(t, fixture("kernelbuf"), "github.com/gpf-go/gpf/internal/caller/kernelbuffixture", lint.BufAlloc)
}

// TestColfmtCodecFixture runs bufalloc and codecerr together over the
// columnar-codec fixture: the fixture loads under a package path inside
// internal/colfmt, so the bufalloc scope extension applies, and the colfmt
// serializer calls are watched codec surfaces for codecerr.
func TestColfmtCodecFixture(t *testing.T) {
	analysistest.Run(t, fixture("colfmtcodec"), "github.com/gpf-go/gpf/internal/colfmt/colfmtcodecfixture", lint.BufAlloc, lint.CodecErr)
}

// TestMprocTransportFixture runs codecerr and sharedcapture together over
// the shuffle-transport fixture, loaded under a package path inside
// internal/engine/exec/mproc: frame read/write calls are watched codec
// surfaces, and op closures built from transport code obey the captured-write
// rule.
func TestMprocTransportFixture(t *testing.T) {
	analysistest.Run(t, fixture("mproctransport"), "github.com/gpf-go/gpf/internal/engine/exec/mproc/transportfixture", lint.CodecErr, lint.SharedCapture)
}

// TestAllocLen loads the untrusted-length fixture under a package path
// inside internal/compress, one of the decode surfaces in the analyzer's
// scope.
func TestAllocLen(t *testing.T) {
	analysistest.Run(t, fixture("alloclen"), "github.com/gpf-go/gpf/internal/compress/alloclenfixture", lint.AllocLen)
}

func TestGoLeak(t *testing.T) {
	analysistest.Run(t, fixture("goleak"), "github.com/gpf-go/gpf/internal/engine/goleakfixture", lint.GoLeak)
}

func TestChanLife(t *testing.T) {
	analysistest.Run(t, fixture("chanlife"), "github.com/gpf-go/gpf/internal/engine/chanlifefixture", lint.ChanLife)
}

// TestFieldFX: engine ops over sam.Record must declare field effects
// (undeclared → loud AllFields default) and declared masks must cover the
// callback's field reads (the unsafe-narrow case the planner would turn
// into silently-zeroed fields).
func TestFieldFX(t *testing.T) {
	analysistest.Run(t, fixture("fieldfx"), "gpf/fixture/fieldfx", lint.FieldFX)
}

// TestScopeFilters asserts that path-scoped analyzers stay quiet outside
// their packages: the scopecheck fixture contains mapiter and walltime
// violations but is loaded under an unrelated import path, so the whole
// suite must produce zero diagnostics (the fixture has no want comments).
func TestScopeFilters(t *testing.T) {
	analysistest.Run(t, fixture("scopecheck"), "example.com/elsewhere/scopecheck", lint.Suite()...)
}
