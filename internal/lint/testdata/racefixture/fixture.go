// Package racefixture reproduces the shared-counter data race that PR 1
// fixed in engine.Repartition: a route callback capturing and mutating a
// counter from the enclosing scope. Route callbacks run concurrently across
// map tasks, so `next++` races — and worse, even with atomics the routing
// would depend on task scheduling order, breaking reproducibility. The smoke
// test asserts that `gpflint` exits non-zero on this file; the fixed engine
// derives the destination purely from (partition, index).
package racefixture

import "github.com/gpf-go/gpf/internal/engine"

// LeakyRepartition is the pre-PR-1 Repartition shape: DO NOT use; it exists
// to keep the analyzer honest.
func LeakyRepartition(d *engine.Dataset[int], numPartitions int) (*engine.Dataset[int], error) {
	next := 0
	return engine.PartitionBy("repartition", d, numPartitions, func(int) int {
		next++
		return next
	})
}
