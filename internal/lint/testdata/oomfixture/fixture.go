// Package oomfixture reproduces the two allocate-before-validate bugs that
// gpflint/alloclen exists to catch: the pre-fix compress.unpackSeq OOM (a
// corrupt header length sized the output buffer before anything validated
// it, PR 7) and the PR 8 frame-decoder shape (a fixed-width payload length
// allocated before the bound check). The smoke test asserts that `gpflint`
// exits non-zero on this file and attributes the findings to alloclen; the
// fixed decoders bound the length against the payload first.
package oomfixture

import "encoding/binary"

// UnpackSeqPreFix is the pre-PR-7 unpackSeq shape: DO NOT use; it exists to
// keep the analyzer honest.
func UnpackSeqPreFix(data []byte) ([]byte, error) {
	n, s := binary.Uvarint(data)
	if s <= 0 {
		return nil, nil
	}
	out := make([]byte, n)
	copy(out, data[s:])
	return out, nil
}

// ReadFramePreFix is the PR 8 frame-decoder shape before the
// maxFramePayload guard: the header length allocates the payload buffer
// before it is validated.
func ReadFramePreFix(hdr, payload []byte) []byte {
	ln := binary.LittleEndian.Uint32(hdr[1:])
	buf := make([]byte, int(ln))
	copy(buf, payload)
	return buf
}
