// Fixture for gpflint/mapiter: map iteration feeding order-dependent output
// in the engine/codec/simulator packages. Loaded under a package path inside
// internal/engine so the scope filter applies.
package mapiter

import (
	"sort"
	"strings"
)

func positives(m map[string]int, ch chan string, sb *strings.Builder) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "\"out\" accumulates in map iteration order"
	}

	line := ""
	for k := range m {
		line += k // want "\"line\" accumulates in map iteration order"
	}

	for k := range m {
		ch <- k // want "send on channel inside map iteration"
	}

	for k := range m {
		sb.WriteString(k) // want "WriteString call inside map iteration"
	}
	return out
}

func negatives(m map[string]int) ([]string, int, map[string]int) {
	// Collect-keys-then-sort is the sanctioned determinization idiom.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// Numeric reduction commutes.
	sum := 0
	for _, v := range m {
		sum += v
	}

	// Map-to-map accumulation is order-independent.
	copied := map[string]int{}
	for k, v := range m {
		copied[k] = v
	}

	// Ranging over a slice is always ordered.
	var ordered []string
	for _, k := range keys {
		ordered = append(ordered, k)
	}

	// Suppression with a reason.
	var unsorted []string
	for k := range m {
		//lint:ignore gpflint/mapiter fixture exercises the suppression path
		unsorted = append(unsorted, k)
	}
	_ = unsorted
	return ordered, sum, copied
}

// keyed mirrors the engine's Keyed pair flowing through the combine shuffle.
type keyed struct {
	Key int
	Val int
}

// combinerPositives: emitting shuffle pairs straight out of a combiner
// accumulator map makes bucket blocks byte-nondeterministic per run.
func combinerPositives(acc map[int]int, notify chan int) []keyed {
	var pairs []keyed
	for k, v := range acc {
		pairs = append(pairs, keyed{Key: k, Val: v}) // want "\"pairs\" accumulates in map iteration order"
	}

	// Publishing per-bucket readiness while iterating an accumulator map:
	// downstream reduce tasks would observe a random arrival order per run
	// even for identical inputs.
	for k := range acc {
		notify <- k // want "send on channel inside map iteration"
	}
	return pairs
}

// combinerNegatives: the pipelined shuffle's own idioms must stay quiet.
func combinerNegatives(acc map[int]int, notify []chan int, m int) []keyed {
	// The engine's sortedPairs shape: collect keys, sort, then emit pairs by
	// ranging the sorted slice.
	keys := make([]int, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	pairs := make([]keyed, 0, len(keys))
	for _, k := range keys {
		pairs = append(pairs, keyed{Key: k, Val: acc[k]})
	}

	// The map task's publish loop ranges a SLICE of per-reduce channels —
	// deterministic order, not a map iteration.
	for r := range notify {
		notify[r] <- m
	}
	return pairs
}
