// Fixture for gpflint/alloclen: allocations sized by untrusted decoded
// lengths. Loaded under a package path inside internal/compress so the
// analyzer's decode-surface scope applies. The positive cases reproduce the
// two real bugs the analyzer encodes: the pre-fix unpackSeq OOM (length read
// off a corrupt header sizes a slice before anything validates it) and the
// PR 8 frame-decoder allocate-before-validate class.
package alloclen

import (
	"bytes"
	"encoding/binary"
)

var errShort = bytes.ErrTooLarge

const maxPayload = 1 << 20

// unpackSeqStyle is the pre-fix unpackSeq shape: the varint length sizes the
// output before any check against the input.
func unpackSeqStyle(data []byte) []byte {
	n, s := binary.Uvarint(data)
	if s <= 0 {
		return nil
	}
	out := make([]byte, n) // want "make size derives from an untrusted decoded length"
	copy(out, data[s:])
	return out
}

// frameDecoderStyle is the PR 8 frame-decoder shape: a fixed-width header
// length allocates the payload buffer before it is validated.
func frameDecoderStyle(hdr, rest []byte) []byte {
	ln := binary.LittleEndian.Uint32(hdr)
	buf := make([]byte, int(ln)) // want "make size derives from an untrusted decoded length"
	copy(buf, rest)
	return buf
}

func capacityAndGrow(data []byte) []int {
	n, _ := binary.Uvarint(data)
	var scratch bytes.Buffer
	scratch.Grow(int(n))     // want "bytes.Buffer.Grow derives from an untrusted decoded length"
	out := make([]int, 0, n) // want "make capacity derives from an untrusted decoded length"
	return out
}

// positivityIsNotABound: comparing against zero says nothing about how large
// the length is, so the allocation inside the branch is still flagged.
func positivityIsNotABound(data []byte) map[string]string {
	nTags, _ := binary.Uvarint(data)
	if nTags > 0 {
		return make(map[string]string, nTags) // want "make size derives from an untrusted decoded length"
	}
	return nil
}

// guardedTerminating validates the length against the payload before
// allocating — the unpackSeq fix.
func guardedTerminating(data []byte) []byte {
	n, s := binary.Uvarint(data)
	if s <= 0 || n > uint64(len(data)) {
		return nil
	}
	return make([]byte, n)
}

// guardedEnclosing allocates only on the branch where the length is small.
func guardedEnclosing(hdr, rest []byte) []byte {
	ln := binary.LittleEndian.Uint32(hdr)
	if int(ln) <= len(rest) {
		return make([]byte, ln)
	}
	return nil
}

// guardedDerived checks a value derived from the length; the check
// sanitizes the whole taint class, so the original length may size the
// allocation afterwards.
func guardedDerived(data []byte) []byte {
	n, s := binary.Uvarint(data)
	if s <= 0 {
		return nil
	}
	need := (int(n) + 3) / 4
	if need > len(data[s:]) {
		return nil
	}
	return make([]byte, n)
}

// guardedAgainstConst bounds the length by a protocol constant, the frame
// decoder fix.
func guardedAgainstConst(hdr []byte) []byte {
	ln := binary.LittleEndian.Uint32(hdr)
	if ln > maxPayload {
		return nil
	}
	return make([]byte, ln)
}

// readLen leaks its varint result unchecked: callers that size allocations
// from it inherit the taint.
func readLen(b []byte) (uint64, int) {
	return binary.Uvarint(b)
}

func callerOfUncheckedHelper(data []byte) []byte {
	n, s := readLen(data)
	if s <= 0 {
		return nil
	}
	return make([]byte, n) // want "make size derives from an untrusted decoded length"
}

// readLenChecked validates before returning, so its result is trusted.
func readLenChecked(b []byte) (uint64, error) {
	n, s := binary.Uvarint(b)
	if s <= 0 || n > uint64(len(b)) {
		return 0, errShort
	}
	return n, nil
}

func callerOfCheckedHelper(data []byte) []byte {
	n, err := readLenChecked(data)
	if err != nil {
		return nil
	}
	return make([]byte, n)
}

// allocFrom sizes an allocation straight from its parameter, so passing an
// unchecked untrusted length into it is flagged at the call site.
func allocFrom(n uint64) []byte {
	return make([]byte, n)
}

func passesUncheckedIntoHelper(data []byte) []byte {
	n, _ := binary.Uvarint(data)
	return allocFrom(n) // want "untrusted decoded length flows unchecked into allocFrom"
}

func passesCheckedIntoHelper(data []byte) []byte {
	n, _ := binary.Uvarint(data)
	if n > uint64(len(data)) {
		return nil
	}
	return allocFrom(n)
}

// suppressedFinding carries a reviewed justification; the directive must
// keep the line diagnostic-free.
func suppressedFinding(data []byte) []byte {
	n, _ := binary.Uvarint(data)
	//lint:ignore gpflint/alloclen length is produced by the trusted writer in the same test
	return make([]byte, n)
}
