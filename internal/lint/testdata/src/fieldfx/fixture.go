// Fixture for gpflint/fieldfx: field-effect declarations on engine ops over
// sam.Record. Loaded under a neutral package path — the analyzer is scoped
// by the callee (the engine's effect-capable ops) and by the record type,
// not by the package under analysis.
package fieldfx

import (
	"github.com/gpf-go/gpf/internal/colfmt"
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/sam"
)

// Undeclared effects: the planner silently defaults to AllFields, which is
// correct but prunes nothing — the default must be loud.
func undeclared(d *engine.Dataset[sam.Record]) {
	engine.PartitionBy("pb", d, 4, func(r sam.Record) int { // want "PartitionBy over sam.Record declares no field effects"
		return int(r.Pos)
	})
	engine.SortPartitions("sort", d, func(a, b sam.Record) bool { // want "SortPartitions over sam.Record declares no field effects"
		return a.Pos < b.Pos
	})
	engine.MapPartitions("mp", d, nil, func(_ int, recs []sam.Record) ([]sam.Record, error) { // want "MapPartitions over sam.Record declares no field effects"
		return recs, nil
	})
}

// Unsafe-narrow: the declared mask does not cover the callback's reads, so
// the planner may feed the callback pruned (zero) fields.
func unsafeNarrow(d *engine.Dataset[sam.Record]) {
	engine.Map("m", d, nil, func(r sam.Record) sam.Record {
		r.MapQ = 0          // plain store: not a read
		if len(r.Seq) > 0 { // want "callback reads sam.Record.Seq \\(FieldSeq\\) outside the declared effects mask"
			r.Flag |= 4 // want "callback reads sam.Record.Flag \\(FieldFlag\\) outside the declared effects mask"
		}
		return r
	}, engine.ReadsOnly(colfmt.FieldCoord))

	engine.MapPartitions("mp2", d, nil, func(_ int, recs []sam.Record) ([]sam.Record, error) {
		for i := range recs {
			r := &recs[i] // alias of a tracked carrier
			_ = r.Qual    // want "callback reads sam.Record.Qual \\(FieldQual\\) outside the declared effects mask"
		}
		return recs, nil
	}, engine.WithEffects(engine.FieldEffects{Reads: colfmt.FieldCoord, Writes: colfmt.FieldFlag}))
}

// Negatives: covered reads, write-only fields, grouped-column bits, masks
// the analyzer cannot evaluate, non-record datasets and suppressions.
func negatives(d *engine.Dataset[sam.Record], ints *engine.Dataset[int], opt engine.StageOption) error {
	// Reads within the declared mask; RefID and Pos share FieldCoord.
	if _, err := engine.PartitionBy("ok", d, 4, func(r sam.Record) int {
		return int(r.RefID)<<20 | int(r.Pos)
	}, engine.ReadsOnly(colfmt.FieldCoord)); err != nil {
		return err
	}
	// Rebuilds declares the reads; writes beyond them are the op's business.
	if _, err := engine.Map("rebuild", d, nil, func(r sam.Record) sam.Record {
		return sam.Record{RefID: r.RefID, Pos: r.Pos}
	}, engine.Rebuilds(colfmt.FieldCoord)); err != nil {
		return err
	}
	// A StageOption variable declares effects; its mask is not statically
	// evaluable, so the narrow check trusts the author.
	if _, err := engine.Map("opaque", d, nil, func(r sam.Record) sam.Record {
		return sam.Record{Name: r.Name}
	}, opt); err != nil {
		return err
	}
	// Methods are outside static reach: the declaration is trusted.
	if _, err := engine.Filter("mapped", d, func(r sam.Record) bool {
		return !r.Unmapped()
	}, engine.ReadsOnly(colfmt.FieldFlag)); err != nil {
		return err
	}
	// Non-record datasets never need declarations.
	if _, err := engine.PartitionBy("ints", ints, 4, func(x int) int { return x }); err != nil {
		return err
	}
	// Suppression with a reason.
	//lint:ignore gpflint/fieldfx fixture exercises the suppression path
	if _, err := engine.CountByKey("census", d, func(r sam.Record) int { return int(r.RefID) }); err != nil {
		return err
	}
	return nil
}
