// Fixture for the transport-package scope of codecerr and sharedcapture
// (loaded under a path inside internal/engine/exec/mproc): dropped errors
// from frame read/write calls are flagged — a lost frame-write error leaves a
// peer blocked on a bucket that never arrives — and engine op closures built
// in transport code obey the same captured-write rule as everywhere else.
package mproctransport

import (
	"io"

	"github.com/gpf-go/gpf/internal/engine"
)

// conn mimics the transport's framed connection surface.
type conn struct{ w io.Writer }

func (c *conn) writeFrame(kind byte, body []byte) error {
	_, err := c.w.Write(append([]byte{kind}, body...))
	return err
}

// WriteFrame is the exported variant (a public transport would expose this).
func (c *conn) WriteFrame(kind byte, body []byte) error {
	return c.writeFrame(kind, body)
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	return hdr[0], nil, nil
}

func framePositives(c *conn, r io.Reader) {
	c.writeFrame(1, []byte("ready")) // want "error return of mproctransport.writeFrame dropped"

	_ = c.WriteFrame(2, nil) // want "error return of mproctransport.WriteFrame dropped"

	kind, body, _ := readFrame(r) // want "error return of mproctransport.readFrame dropped"
	_, _ = kind, body

	go c.writeFrame(3, nil) // want "error return of mproctransport.writeFrame dropped"
}

func frameNegatives(c *conn, r io.Reader) error {
	if err := c.writeFrame(1, nil); err != nil {
		return err
	}
	if _, _, err := readFrame(r); err != nil {
		return err
	}
	//lint:ignore gpflint/codecerr fixture exercises the suppression path
	_ = c.WriteFrame(9, nil)
	return nil
}

// shuffleSend builds an engine shuffle from transport code: the op closures
// run concurrently per partition, so captured writes race exactly as they do
// in pipeline code.
func shuffleSend(d *engine.Dataset[int]) {
	bytesOut := 0
	_, _ = engine.PartitionBy("t/route", d, 4, func(v int) int {
		bytesOut += 8 // want "assignment to variable \"bytesOut\" captured"
		return v
	})

	// Per-bucket accounting through the op's own return value is the
	// intended shape.
	_, _ = engine.MapPartitions("t/frame", d, nil, func(p int, items []int) ([]int, error) {
		framed := make([]int, 0, len(items))
		framed = append(framed, items...)
		return framed, nil
	})
}
