// Fixture for gpflint/chanlife: channel lifecycle discipline — double
// close, close in a loop, send after close, close of a parameter. Loaded
// under a package path inside internal/engine so the analyzer's scope
// applies. Channel identity flows through the dataflow layer, so aliases of
// one make site are the same channel.
package chanlife

import "sync"

// doubleClose closes the same channel twice on one straight-line path.
func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want "closed more than once"
}

// aliasedDoubleClose closes one make site through two names.
func aliasedDoubleClose() {
	ch := make(chan int)
	done := ch
	close(ch)
	close(done) // want "closed more than once"
}

// closeInLoop can reach the close on every iteration.
func closeInLoop(parts [][]int) {
	done := make(chan struct{})
	for range parts {
		close(done) // want "inside a loop"
	}
}

// sendAfterClose panics at the send.
func sendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want "reachable after its close"
}

// closesParameter: callees are not channel owners.
func closesParameter(results chan int) {
	close(results) // want "close of parameter channel"
}

type gatherLike struct {
	n    int
	done chan struct{}
}

// completesHandedState closes a channel field of a state struct it was
// handed: the owner delegated the lifecycle along with the struct, so this
// is not a close-of-parameter violation.
func completesHandedState(gs *gatherLike) {
	if gs.n == 0 {
		close(gs.done)
	}
}

// onceGuarded routes both closes through sync.Once — the shuffle cancel
// idiom.
func onceGuarded() {
	ch := make(chan struct{})
	var once sync.Once
	abort := func() { once.Do(func() { close(ch) }) }
	abort()
	abort()
}

// exclusiveBranches closes on mutually exclusive arms.
func exclusiveBranches(failed bool) {
	ch := make(chan int)
	if failed {
		close(ch)
	} else {
		close(ch)
	}
}

type stage struct {
	goCh chan struct{}
}

// signalOnce is the transport readiness idiom: the select's receive arm
// wins once the channel is closed, so the default-arm close runs at most
// once even inside the loop.
func (s *stage) signalOnce(n int) {
	for i := 0; i < n; i++ {
		select {
		case <-s.goCh:
		default:
			close(s.goCh)
		}
	}
}

// closeThenBreak leaves the loop right after closing.
func closeThenBreak(parts [][]int) {
	out := make(chan []int)
	for _, p := range parts {
		if len(p) == 0 {
			close(out)
			break
		}
		out <- p
	}
}

// sendThenClose is the correct lifecycle order.
func sendThenClose() {
	ch := make(chan int, 2)
	ch <- 1
	ch <- 2
	close(ch)
}

// suppressedTeardown carries a reviewed justification; the directive must
// keep the line diagnostic-free.
func suppressedTeardown() {
	ch := make(chan int)
	close(ch)
	//lint:ignore gpflint/chanlife teardown path is serialized by the registry mutex
	close(ch)
}
