// Fixture for gpflint/codecerr: dropped errors from codec/serializer calls.
// Loaded under a neutral package path — the analyzer is scoped by the callee
// (module-internal or stdlib-encoding declarations), not by the package
// under analysis.
package codecerr

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"io"

	"github.com/gpf-go/gpf/internal/compress"
	"github.com/gpf-go/gpf/internal/sam"
)

func positives(recs []sam.Record, buf *bytes.Buffer, w io.Writer) {
	codec := compress.GPFSAMCodec{}
	codec.Marshal(recs) // want "error return of compress.Marshal dropped"

	_, _ = codec.Marshal(recs) // want "error return of compress.Marshal dropped"

	gob.NewEncoder(buf).Encode(recs) // want "error return of gob.Encode dropped"

	var out []sam.Record
	defer gob.NewDecoder(buf).Decode(&out) // want "error return of gob.Decode dropped"
}

func negatives(recs []sam.Record, buf *bytes.Buffer, w io.Writer) error {
	codec := compress.GPFSAMCodec{}

	// Consumed errors are the point.
	block, err := codec.Marshal(recs)
	if err != nil {
		return err
	}
	if _, err := codec.Unmarshal(block); err != nil {
		return err
	}

	// Non-codec stdlib writers (bufio, io) are deliberately out of scope:
	// this analyzer watches serialization surfaces, not general errcheck.
	bw := bufio.NewWriter(w)
	bw.WriteString("header\n")
	defer bw.Flush()

	// Suppression with a reason.
	//lint:ignore gpflint/codecerr fixture exercises the suppression path
	codec.Marshal(recs)
	return nil
}
