// Fixture for gpflint/walltime: wall-clock reads and ambient randomness in
// the discrete-event simulator. Loaded under a package path inside
// internal/cluster so the scope filter applies.
package walltime

import (
	"math/rand"
	"time"
)

func positives() time.Duration {
	start := time.Now() // want "time.Now reads the wall clock inside the simulator"
	time.Sleep(time.Millisecond)   // want "time.Sleep reads the wall clock"
	elapsed := time.Since(start)   // want "time.Since reads the wall clock"
	jitter := rand.Intn(10)        // want "rand.Intn draws from the global math/rand source"
	shuffleSkew := rand.Float64()  // want "rand.Float64 draws from the global math/rand source"
	_ = jitter
	_ = shuffleSkew
	return elapsed
}

func negatives(seed int64, events []time.Duration) time.Duration {
	// A seeded generator is the sanctioned randomness source: the
	// constructors are package-level but do not draw from the global source.
	rng := rand.New(rand.NewSource(seed))
	skew := time.Duration(rng.Int63n(int64(time.Millisecond)))

	// Simulated-clock arithmetic never touches the wall clock.
	var clock time.Duration
	for _, e := range events {
		clock += e
	}

	// Suppression with a reason.
	//lint:ignore gpflint/walltime fixture exercises the suppression path
	wall := time.Now()
	_ = wall
	return clock + skew
}
