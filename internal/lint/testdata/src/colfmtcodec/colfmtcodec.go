// Fixture for gpflint over the columnar codec surface: bufalloc is scoped to
// internal/colfmt (this fixture loads under a package path inside it), and
// codecerr watches the colfmt serializer calls like every other
// module-internal codec. The columnar decoder runs once per partition per
// stage on the cache and shuffle read paths, so both invariants bind here.
package colfmtcodec

import (
	"bytes"

	"github.com/gpf-go/gpf/internal/bufpool"
	"github.com/gpf-go/gpf/internal/colfmt"
	"github.com/gpf-go/gpf/internal/sam"
)

// MarshalStaged allocates its staging buffer instead of pooling it.
func MarshalStaged(recs []sam.Record) ([]byte, error) {
	var buf bytes.Buffer // want "var declaration allocates a fresh bytes.Buffer in a codec hot path"
	block, err := colfmt.Codec{}.Marshal(recs)
	if err != nil {
		return nil, err
	}
	buf.Write(block) // bytes.Buffer is not a watched codec surface
	return buf.Bytes(), nil
}

// DecodeColumns stages through fresh buffers in a decode hot path.
func DecodeColumns(block []byte) ([]sam.Record, error) {
	scratch := bytes.NewBuffer(nil) // want "bytes.NewBuffer allocates a fresh bytes.Buffer"
	spare := new(bytes.Buffer)      // want `new\(bytes.Buffer\) allocates a fresh bytes.Buffer`
	_, _ = scratch, spare
	return colfmt.Codec{}.Unmarshal(block)
}

// droppedErrors exercises codecerr over the columnar serializer surface.
func droppedErrors(recs []sam.Record, block []byte) {
	colfmt.Codec{}.Marshal(recs) // want "error return of colfmt.Marshal dropped"

	_, _ = colfmt.Codec{}.Unmarshal(block) // want "error return of colfmt.Unmarshal dropped"

	coords := colfmt.Codec{}.Project(colfmt.FieldCoord)
	coords.Unmarshal(block) // want "error return of engine.Unmarshal dropped"
}

// MarshalPooled is the sanctioned pattern: scratch from internal/bufpool,
// errors propagated.
func MarshalPooled(recs []sam.Record) ([]byte, error) {
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	block, err := colfmt.Codec{}.Marshal(recs)
	if err != nil {
		return nil, err
	}
	if _, err := buf.Write(block); err != nil {
		return nil, err
	}
	return bufpool.Bytes(buf), nil
}

// projectionHelper is not a hot-path function name: staging buffers are
// allowed outside the serializer entry points.
func projectionHelper() *bytes.Buffer {
	return bytes.NewBuffer(nil)
}
