// Fixture for gpflint/sharedcapture: writes to captured variables inside
// engine op funcs are races; closure-local state and plain reads are fine.
package sharedcapture

import (
	"sort"

	"github.com/gpf-go/gpf/internal/engine"
)

func positives(ctx *engine.Context, d *engine.Dataset[int]) {
	counter := 0
	_, _ = engine.Map("inc", d, nil, func(v int) int {
		counter++ // want "assignment to variable \"counter\" captured from enclosing scope"
		return v
	})

	var seen []int
	_, _ = engine.Filter("collect", d, func(v int) bool {
		seen = append(seen, v) // want "assignment to variable \"seen\" captured"
		return true
	})

	hits := map[int]int{}
	_, _ = engine.PartitionBy("route", d, 4, func(v int) int {
		hits[v]++ // want "map write to variable \"hits\" captured"
		return v
	})

	total := new(int)
	_, _ = engine.MapPartitions("deref", d, nil, func(_ int, items []int) ([]int, error) {
		*total = len(items) // want "write through pointer \"total\" captured"
		return items, nil
	})

	type state struct{ n int }
	st := &state{}
	_, _ = engine.FlatMap("field", d, nil, func(v int) []int {
		st.n = v // want "field write on variable \"st\" captured"
		return nil
	})

	_, _, _ = engine.Reduce("fold", d, func(a, b int) int {
		counter = a + b // want "assignment to variable \"counter\" captured"
		return a + b
	})
}

func negatives(ctx *engine.Context, d *engine.Dataset[int], parts [][]int) {
	// Closure-local state is task-private.
	_, _ = engine.MapPartitions("local", d, nil, func(_ int, items []int) ([]int, error) {
		count := 0
		for range items {
			count++
		}
		return items[:count], nil
	})

	// Reading captured state (broadcast pattern) is the intended idiom.
	threshold := 10
	_, _ = engine.Filter("read", d, func(v int) bool { return v < threshold })

	// Disjoint per-partition slice element writes are the engine's own
	// partition-output idiom.
	_, _ = engine.MapPartitions("slot", d, nil, func(p int, items []int) ([]int, error) {
		parts[p] = items
		return items, nil
	})

	// Captured writes outside engine ops (an ordinary sequential closure)
	// are not this analyzer's business.
	order := []int{3, 1, 2}
	swaps := 0
	sort.Slice(order, func(i, j int) bool {
		swaps++
		return order[i] < order[j]
	})

	// Suppression: the author vouches for the synchronization.
	var guarded int
	//lint:ignore gpflint/sharedcapture fixture exercises the suppression path
	_, _ = engine.Map("suppressed", d, nil, func(v int) int { guarded = v; return v })
	_ = guarded
	_ = swaps
}

// combinePositives: CombineByKey/ReduceByKey combiner closures run once per
// map task across the worker pool, so captured writes in them race exactly
// like Map op funcs.
func combinePositives(d *engine.Dataset[int]) {
	firsts := map[int]int{}
	merges := 0
	_, _ = engine.CombineByKey("cbk", d, 4,
		func(v int) int { return v },
		func(v int) int {
			firsts[v] = v // want "map write to variable \"firsts\" captured"
			return v
		},
		func(c, v int) int {
			merges++ // want "assignment to variable \"merges\" captured"
			return c + v
		},
		func(a, b int) int { return a + b },
		nil)

	var total int
	_, _ = engine.ReduceByKey("rbk", d, 4,
		func(v int) int { return v },
		func(v int) int { return 1 },
		func(a, b int) int {
			total = a + b // want "assignment to variable \"total\" captured"
			return a + b
		},
		nil)
	_ = total
}

// combineNegatives: pure combiner closures that fold through their return
// values — the intended shape — and read-only captures stay quiet.
func combineNegatives(d *engine.Dataset[int], buckets int) {
	_, _ = engine.CombineByKey("cbk-ok", d, buckets,
		func(v int) int { return v % buckets },
		func(v int) int { return 1 },
		func(c, _ int) int { return c + 1 },
		func(a, b int) int { return a + b },
		nil)

	_, _ = engine.ReduceByKey("rbk-ok", d, 4,
		func(v int) int { return v },
		func(v int) int { return v },
		func(a, b int) int {
			if a > b {
				return a
			}
			return b
		},
		nil)
}
