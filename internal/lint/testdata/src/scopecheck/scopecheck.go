// Fixture asserting the scope filters: the same patterns that mapiter and
// walltime flag inside engine/compress/cluster are ignored when the package
// lives elsewhere (this fixture is loaded under an unrelated import path).
package scopecheck

import "time"

func outsideScope(m map[string]int) ([]string, time.Time) {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out, time.Now()
}
