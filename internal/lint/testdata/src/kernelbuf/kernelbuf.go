// Fixture for gpflint/bufalloc over kernel hot paths: the scope extension
// to internal/caller (and internal/align) watches PairHMM*/…Align* functions
// for fresh bytes.Buffer staging, which must come from internal/bufpool —
// the same discipline the pooled DP-row and band slabs follow.
package kernelbuf

import (
	"bytes"

	"github.com/gpf-go/gpf/internal/bufpool"
)

func PairHMMDebugDump(rows []float64) []byte {
	var buf bytes.Buffer // want "var declaration allocates a fresh bytes.Buffer in a codec hot path"
	for _, r := range rows {
		buf.WriteByte(byte(r))
	}
	return buf.Bytes()
}

func FitAlignTrace(ops []byte) []byte {
	buf := bytes.NewBuffer(nil) // want "bytes.NewBuffer allocates a fresh bytes.Buffer"
	buf.Write(ops)
	return buf.Bytes()
}

// PairHMMPooled is the sanctioned pattern: scratch comes from the pool.
func PairHMMPooled(rows []float64) []byte {
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	for _, r := range rows {
		buf.WriteByte(byte(r))
	}
	return append([]byte(nil), bufpool.Bytes(buf)...)
}

// scratch is not a kernel entry-point name: staging buffers are allowed.
func scratch() *bytes.Buffer {
	return bytes.NewBuffer(nil)
}
