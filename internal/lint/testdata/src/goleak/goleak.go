// Fixture for gpflint/goleak: goroutines whose exit is not provably tied to
// a lifecycle signal. Loaded under a package path inside internal/engine so
// the analyzer's scope applies.
package goleak

import (
	"context"
	"sync"
)

func use(int) {}

// leakyPump never exits: nothing ever closes work, and the goroutine holds
// no cancellation signal — the PR 5 map-error hazard shape.
func leakyPump(work chan int) {
	go func() { // want "goroutine exit is not tied to a WaitGroup"
		for {
			use(<-work)
		}
	}()
}

func spinForever() {
	for {
	}
}

// leakyNamed launches a package-local function; its body resolves and has no
// lifecycle tie either.
func leakyNamed() {
	go spinForever() // want "goroutine exit is not tied to a WaitGroup"
}

// opaque launches a function value received as a parameter: the body cannot
// be resolved, so the exit cannot be verified.
func opaque(cb func()) {
	go cb() // want "goroutine body cannot be resolved statically"
}

// joined ties exit to a WaitGroup.
func joined(work chan int, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := range work {
			use(v)
		}
	}()
}

// cancellable selects on a close-only channel.
func cancellable(work chan int, done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-work:
				use(v)
			}
		}
	}()
}

// drained exits when the producer closes work.
func drained(work chan int) {
	go func() {
		for v := range work {
			use(v)
		}
	}()
}

// contextBound waits on ctx.Done(), the canonical cancel channel.
func contextBound(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// viaLocalClosure resolves through the enclosing function's def-use chains.
func viaLocalClosure(done chan struct{}) {
	waiter := func() {
		<-done
	}
	go waiter()
}

// suppressedHandshake is bounded by other means (a deadline on the
// connection); the directive must keep the line diagnostic-free.
func suppressedHandshake(work chan int) {
	//lint:ignore gpflint/goleak handshake read is deadline-bounded, exits on timeout
	go func() {
		use(<-work)
	}()
}
