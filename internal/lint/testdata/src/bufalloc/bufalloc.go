// Fixture for gpflint/bufalloc: fresh bytes.Buffer allocations in codec hot
// paths. Loaded under a package path inside internal/compress so the scope
// filter applies; only functions whose names mark serializer hot paths
// (Marshal/Unmarshal/Encode/Decode/...) are checked.
package bufalloc

import (
	"bytes"
	"encoding/gob"

	"github.com/gpf-go/gpf/internal/bufpool"
)

type codec struct{}

func (codec) Marshal(items []int) ([]byte, error) {
	var buf bytes.Buffer // want "var declaration allocates a fresh bytes.Buffer in a codec hot path"
	if err := gob.NewEncoder(&buf).Encode(items); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func EncodeStaged(items []int) ([]byte, error) {
	buf := new(bytes.Buffer) // want `new\(bytes.Buffer\) allocates a fresh bytes.Buffer`
	spare := &bytes.Buffer{} // want "composite literal allocates a fresh bytes.Buffer"
	wrapped := bytes.NewBuffer(nil) // want "bytes.NewBuffer allocates a fresh bytes.Buffer"
	_ = spare
	_ = wrapped
	if err := gob.NewEncoder(buf).Encode(items); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EncodePooled is the sanctioned pattern.
func EncodePooled(items []int) ([]byte, error) {
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	if err := gob.NewEncoder(buf).Encode(items); err != nil {
		return nil, err
	}
	return bufpool.Bytes(buf), nil
}

// helper is not a hot-path function name: staging buffers are allowed.
func helper() *bytes.Buffer {
	return bytes.NewBuffer(nil)
}

// DecodeSuppressed documents a justified retention: the buffer escapes to
// the caller, so pooling would corrupt it.
func DecodeSuppressed(data []byte) *bytes.Buffer {
	//lint:ignore gpflint/bufalloc buffer ownership transfers to the caller
	out := bytes.NewBuffer(data)
	return out
}
