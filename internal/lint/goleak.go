package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/gpf-go/gpf/internal/lint/analysis"
	"github.com/gpf-go/gpf/internal/lint/analysis/dataflow"
)

// GoLeak flags goroutines launched in the engine and its executor backends
// whose exit is not provably tied to a lifecycle signal: a sync.WaitGroup
// Done, a receive or select on a cancel channel (chan struct{}, which
// includes ctx.Done()), or a drained channel (for-range). The PR 5 map-error
// hazard and the PR 8 transport teardown hazards were exactly this shape —
// a goroutine parked on a channel nobody would ever signal again, leaking
// its stack and whatever it captured for the life of the process.
//
// The check is necessarily a proof-of-tie, not a proof-of-leak: a goroutine
// that exits by other means (deadline-bounded I/O, bounded work) is a false
// positive and should carry a suppression explaining the bound.
var GoLeak = &analysis.Analyzer{
	Name: "goleak",
	Doc: "flags goroutines in the engine whose exit is not tied to a " +
		"WaitGroup, cancel channel, context, or drained channel",
	Run: runGoLeak,
}

// goLeakScopes: the engine and everything under it (exec backends included).
var goLeakScopes = []string{"internal/engine"}

func goLeakInScope(path string) bool {
	return inScope(path, goLeakScopes) || path == "command-line-arguments"
}

func runGoLeak(pass *analysis.Pass) error {
	if !goLeakInScope(pass.Pkg.Path()) {
		return nil
	}
	info := pass.TypesInfo

	// Package-local function bodies, for `go helper()` resolution.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			flow := dataflow.New(info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body := goBody(info, flow, decls, gs)
				if body == nil {
					reportNode(pass, gs, "goroutine body cannot be resolved statically, so its "+
						"exit cannot be verified — launch a function literal or a package-local "+
						"function, or suppress with the reason it terminates")
					return true
				}
				if !exitTied(info, body) {
					reportNode(pass, gs, "goroutine exit is not tied to a WaitGroup, cancel "+
						"channel, context, or drained channel — it can outlive its stage and leak; "+
						"join it or select on a cancellation signal")
				}
				return true
			})
		}
	}
	return nil
}

// goBody resolves the body a go statement runs: a function literal, a
// package-local function or method, or — through the enclosing function's
// def-use chains — a local variable bound to a function literal.
func goBody(info *types.Info, flow *dataflow.Func, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) *ast.BlockStmt {
	fun := ast.Unparen(gs.Call.Fun)
	if lit, ok := fun.(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := calleeFunc(info, gs.Call); fn != nil {
		if fd := decls[fn]; fd != nil {
			return fd.Body
		}
		return nil
	}
	if id, ok := fun.(*ast.Ident); ok && flow != nil {
		if v, ok := objOf(info, id).(*types.Var); ok {
			if lit := flow.ClosureOf(v); lit != nil {
				return lit.Body
			}
		}
	}
	return nil
}

// exitTied reports whether body contains a lifecycle tie: wg.Done (usually
// deferred), a receive from a cancel-shaped channel (chan struct{}; covers
// ctx.Done()), or a for-range over a channel (exits when the channel is
// closed and drained).
func exitTied(info *types.Info, body *ast.BlockStmt) bool {
	tied := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && fn.Name() == "Done" {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
					isNamed(sig.Recv().Type(), "sync", "WaitGroup") {
					tied = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && cancelChan(info.Types[n.X].Type) {
				tied = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					tied = true
				}
			}
		}
		return true
	})
	return tied
}

// cancelChan reports whether t is a channel of empty structs — the shape of
// cancellation signals (close-only channels, ctx.Done()).
func cancelChan(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
