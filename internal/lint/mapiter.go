package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/gpf-go/gpf/internal/lint/analysis"
)

// MapIter flags `range` over a map whose body produces order-dependent
// output — appending to (or accumulating into) a slice or string declared
// outside the loop, sending on a channel, or calling a Write-style method —
// inside internal/engine, internal/compress and internal/cluster. Go
// randomizes map iteration order, so such a loop in a shuffle, codec or
// replay path breaks run-to-run reproducibility: serialized partition blocks
// differ byte-for-byte between runs, simulated replays diverge.
//
// Order-independent uses are allowed: accumulating into another map,
// numeric reductions (sum += v), and the collect-keys-then-sort idiom (an
// appended slice that is passed to a sort call later in the same function).
var MapIter = &analysis.Analyzer{
	Name: "mapiter",
	Doc: "flags map iteration feeding order-dependent output in shuffle, " +
		"codec or replay paths (map order is randomized per run)",
	Run: runMapIter,
}

// mapIterScopes are the package path fragments the analyzer applies to:
// the deterministic-replay core of the system.
var mapIterScopes = []string{"internal/engine", "internal/compress", "internal/cluster"}

func inScope(path string, scopes []string) bool {
	for _, s := range scopes {
		if pkgPathHas(path, s) {
			return true
		}
	}
	return false
}

func runMapIter(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), mapIterScopes) {
		return nil
	}
	for _, file := range pass.Files {
		f := file
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, f, rs)
			return true
		})
	}
	return nil
}

func checkMapRangeBody(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				checkOrderedAccumulation(pass, file, rs, st, ast.Unparen(lhs))
			}
		case *ast.SendStmt:
			reportNode(pass, st, "send on channel inside map iteration: receiver observes "+
				"nondeterministic order (iterate sorted keys instead)")
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(st.Fun).(*ast.SelectorExpr); ok {
				if strings.HasPrefix(sel.Sel.Name, "Write") || sel.Sel.Name == "writeBits" {
					reportNode(pass, st, "%s call inside map iteration writes output in "+
						"nondeterministic order (iterate sorted keys instead)", sel.Sel.Name)
				}
			}
		}
		return true
	})
}

// checkOrderedAccumulation flags assignments inside a map-range body whose
// target is a slice or string declared outside the loop: the accumulated
// value depends on iteration order. Map-typed and numeric targets are
// order-independent and allowed; a slice that is sorted after the loop
// (collect-keys-then-sort) is allowed.
func checkOrderedAccumulation(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt, st *ast.AssignStmt, lhs ast.Expr) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := objOf(pass.TypesInfo, id)
	v, okVar := obj.(*types.Var)
	if !okVar || !declaredOutside(v, rs) {
		return
	}
	switch v.Type().Underlying().(type) {
	case *types.Slice:
	case *types.Basic:
		if v.Type().Underlying().(*types.Basic).Info()&types.IsString == 0 {
			return // numeric accumulation commutes
		}
	default:
		return // maps and other targets are order-independent or out of scope
	}
	if st.Tok == token.DEFINE {
		return
	}
	if sortedAfter(pass, file, rs, v) {
		return
	}
	reportNode(pass, lhs, "%q accumulates in map iteration order, which is randomized per run; "+
		"iterate sorted keys or sort %q before use", id.Name, id.Name)
}

// sortedAfter reports whether v is passed to a sort-like call after the
// range statement within the same enclosing function — the sanctioned
// collect-keys-then-sort idiom.
func sortedAfter(pass *analysis.Pass, file *ast.File, rs *ast.RangeStmt, v *types.Var) bool {
	body := enclosingFuncBody(file, rs)
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		name := ""
		switch fn := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			name = fn.Sel.Name
			// sort.Strings, sort.Ints, slices.Sort...: the package qualifier
			// marks the call as a sort even when the function name doesn't.
			if q, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
				if _, isPkg := objOf(pass.TypesInfo, q).(*types.PkgName); isPkg && (q.Name == "sort" || q.Name == "slices") {
					name = "Sort"
				}
			}
		case *ast.Ident:
			name = fn.Name
		}
		if !strings.Contains(name, "Sort") && !strings.Contains(name, "sort") {
			return true
		}
		for _, arg := range call.Args {
			if root := rootIdent(ast.Unparen(arg)); root != nil && objOf(pass.TypesInfo, root) == v {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
