package lint_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the test's working directory to the directory
// containing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

func runGpflint(t *testing.T, root string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./cmd/gpflint"}, args...)...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("go run ./cmd/gpflint %v: %v\n%s", args, err, out)
	}
	return string(out), exitErr.ExitCode()
}

// TestSweepClean is the acceptance gate: the full repo must be free of
// gpflint diagnostics (suppressed or fixed), so the binary exits 0.
func TestSweepClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping repo-wide sweep in -short mode")
	}
	root := moduleRoot(t)
	out, code := runGpflint(t, root, "./...")
	if code != 0 {
		t.Fatalf("gpflint ./... exited %d; want 0\n%s", code, out)
	}
}

// TestSweepCatchesRepartitionRace asserts the companion acceptance
// criterion: gpflint exits non-zero on the seeded fixture reproducing the
// PR 1 Repartition shared-counter race, and attributes the finding to the
// sharedcapture analyzer.
func TestSweepCatchesRepartitionRace(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping gpflint subprocess test in -short mode")
	}
	root := moduleRoot(t)
	fixture := filepath.Join("internal", "lint", "testdata", "racefixture", "fixture.go")
	out, code := runGpflint(t, root, fixture)
	if code != 1 {
		t.Fatalf("gpflint %s exited %d; want 1\n%s", fixture, code, out)
	}
	if !strings.Contains(out, "gpflint/sharedcapture") {
		t.Fatalf("diagnostic not attributed to gpflint/sharedcapture:\n%s", out)
	}
	if !strings.Contains(out, "next") {
		t.Fatalf("diagnostic does not name the captured variable:\n%s", out)
	}
}

// TestSweepCatchesAllocBeforeValidate asserts the alloclen acceptance
// criterion: gpflint exits non-zero on the seeded fixture reproducing the
// pre-fix unpackSeq OOM and the PR 8 frame-decoder allocate-before-validate
// shape, and attributes both findings to the alloclen analyzer.
func TestSweepCatchesAllocBeforeValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping gpflint subprocess test in -short mode")
	}
	root := moduleRoot(t)
	fixture := filepath.Join("internal", "lint", "testdata", "oomfixture", "fixture.go")
	out, code := runGpflint(t, root, fixture)
	if code != 1 {
		t.Fatalf("gpflint %s exited %d; want 1\n%s", fixture, code, out)
	}
	if got := strings.Count(out, "gpflint/alloclen"); got != 2 {
		t.Fatalf("want 2 alloclen findings (unpackSeq and frame decoder shapes), got %d:\n%s", got, out)
	}
}

// TestJSONOutput: -json must emit one record per finding with the fields CI
// consumes, and an empty array — not an empty string — on a clean sweep.
// Exit codes are unchanged by the flag.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping gpflint subprocess test in -short mode")
	}
	root := moduleRoot(t)
	fixture := filepath.Join("internal", "lint", "testdata", "oomfixture", "fixture.go")
	out, code := runGpflint(t, root, "-json", fixture)
	if code != 1 {
		t.Fatalf("gpflint -json %s exited %d; want 1\n%s", fixture, code, out)
	}
	// CombinedOutput appends the stderr count and exit-status lines after the
	// JSON document; a Decoder stops at the end of the first value.
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.NewDecoder(strings.NewReader(out)).Decode(&findings); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, out)
	}
	if len(findings) != 2 {
		t.Fatalf("want 2 findings, got %d:\n%s", len(findings), out)
	}
	for _, f := range findings {
		if f.Analyzer != "alloclen" || f.Line == 0 || f.Col == 0 ||
			!strings.Contains(f.File, "fixture.go") || !strings.Contains(f.Message, "untrusted") {
			t.Fatalf("malformed finding record: %+v", f)
		}
	}

	out, code = runGpflint(t, root, "-json", "./internal/lint/...")
	if code != 0 {
		t.Fatalf("gpflint -json ./internal/lint/... exited %d; want 0\n%s", code, out)
	}
	var empty []struct{}
	if err := json.NewDecoder(strings.NewReader(out)).Decode(&empty); err != nil || len(empty) != 0 {
		t.Fatalf("clean sweep must emit an empty JSON array, got %q (err %v)", out, err)
	}
}
