package lint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleRoot walks up from the test's working directory to the directory
// containing go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

func runGpflint(t *testing.T, root string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run", "./cmd/gpflint"}, args...)...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("go run ./cmd/gpflint %v: %v\n%s", args, err, out)
	}
	return string(out), exitErr.ExitCode()
}

// TestSweepClean is the acceptance gate: the full repo must be free of
// gpflint diagnostics (suppressed or fixed), so the binary exits 0.
func TestSweepClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping repo-wide sweep in -short mode")
	}
	root := moduleRoot(t)
	out, code := runGpflint(t, root, "./...")
	if code != 0 {
		t.Fatalf("gpflint ./... exited %d; want 0\n%s", code, out)
	}
}

// TestSweepCatchesRepartitionRace asserts the companion acceptance
// criterion: gpflint exits non-zero on the seeded fixture reproducing the
// PR 1 Repartition shared-counter race, and attributes the finding to the
// sharedcapture analyzer.
func TestSweepCatchesRepartitionRace(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping gpflint subprocess test in -short mode")
	}
	root := moduleRoot(t)
	fixture := filepath.Join("internal", "lint", "testdata", "racefixture", "fixture.go")
	out, code := runGpflint(t, root, fixture)
	if code != 1 {
		t.Fatalf("gpflint %s exited %d; want 1\n%s", fixture, code, out)
	}
	if !strings.Contains(out, "gpflint/sharedcapture") {
		t.Fatalf("diagnostic not attributed to gpflint/sharedcapture:\n%s", out)
	}
	if !strings.Contains(out, "next") {
		t.Fatalf("diagnostic does not name the captured variable:\n%s", out)
	}
}
