// Package analysistest runs gpflint analyzers over fixture packages and
// checks their diagnostics against `// want "regexp"` comments — a minimal
// stand-in for golang.org/x/tools/go/analysis/analysistest (unavailable in
// this build environment).
//
// Fixture layout: one directory per fixture package under
// internal/lint/testdata/src/<name>/. Every diagnostic line must carry a
// want comment whose regexp matches the message; every want comment must be
// matched by a diagnostic. Suppressed findings (`//lint:ignore`) are
// filtered before matching, so a fixture line with an ignore directive and
// no want comment asserts that suppression works.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/gpf-go/gpf/internal/lint"
	"github.com/gpf-go/gpf/internal/lint/analysis"
	"github.com/gpf-go/gpf/internal/lint/loader"
)

// Run loads the fixture package in dir under the import path pkgPath (which
// scoped analyzers match their package filters against), applies the
// analyzers, and reports mismatches against the fixture's want comments.
func Run(t *testing.T, dir, pkgPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	pkg, err := loader.LoadFiles(dir, pkgPath, files)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := lint.Run([]*loader.Package{pkg}, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	wants := collectWants(t, pkg)
	type key struct {
		file string
		line int
	}
	matched := make(map[*want]bool)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{filepath.Base(pos.Filename), pos.Line}
		ok := false
		for _, w := range wants {
			if w.file == k.file && w.line == k.line && !matched[w] && w.re.MatchString(d.Message) {
				matched[w] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s (gpflint/%s)", pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !matched[w] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants parses `// want "re" ["re" ...]` comments from the fixture.
func collectWants(t *testing.T, pkg *loader.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parseWant(strings.TrimPrefix(text, "want "))
				if err != nil {
					t.Fatalf("%s: bad want comment: %v", pos, err)
				}
				for _, re := range res {
					wants = append(wants, &want{file: filepath.Base(pos.Filename), line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// parseWant splits a want payload into its quoted regexps.
func parseWant(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("expected quoted regexp, got %q", s)
		}
		end := 1
		for end < len(s) && (s[end] != s[0] || (s[0] == '"' && s[end-1] == '\\')) {
			end++
		}
		if end == len(s) {
			return nil, fmt.Errorf("unterminated regexp in %q", s)
		}
		var lit string
		var err error
		if s[0] == '`' {
			lit = s[1:end]
		} else {
			lit, err = strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
		s = s[end+1:]
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no regexps")
	}
	return out, nil
}
