package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/gpf-go/gpf/internal/lint/analysis"
)

// pkgPathHas reports whether an import path contains the given element
// sequence (e.g. "internal/engine"), either as the whole path (fixture
// loads) or bounded by separators inside it.
func pkgPathHas(path, elems string) bool {
	if path == elems || strings.HasSuffix(path, "/"+elems) {
		return true
	}
	return strings.Contains(path, "/"+elems+"/") || strings.HasPrefix(path, elems+"/")
}

// calleeFunc resolves the *types.Func a call invokes, or nil for builtins,
// conversions and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		return calleeFunc(info, &ast.CallExpr{Fun: fn.X})
	case *ast.IndexListExpr:
		return calleeFunc(info, &ast.CallExpr{Fun: fn.X})
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// rootIdent returns the identifier at the base of an lvalue expression:
// x, x.f, x[i], *x, x.f[i].g all root at x. Returns nil for other shapes
// (function calls, parenthesized composites, ...).
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// objOf returns the object an identifier denotes, following both uses and
// defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// declaredOutside reports whether obj is declared outside the [lo, hi) node
// span — i.e. captured by a function literal spanning it. Package-level
// variables count as outside.
func declaredOutside(obj types.Object, node ast.Node) bool {
	if obj == nil || obj.Pos() == 0 {
		return false
	}
	return obj.Pos() < node.Pos() || obj.Pos() >= node.End()
}

// isNamed reports whether t (or its pointer elem) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// lastResultIsError reports whether the function's final result is error.
func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), types.Universe.Lookup("error").Type())
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal in file that contains pos, or nil.
func enclosingFuncBody(file *ast.File, node ast.Node) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > node.Pos() || n.End() < node.End() {
			return false // n does not contain node: prune
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				body = fn.Body
			}
		case *ast.FuncLit:
			body = fn.Body
		}
		return true
	})
	return body
}

// reportNode is shorthand for Reportf at a node's position.
func reportNode(pass *analysis.Pass, n ast.Node, format string, args ...any) {
	pass.Reportf(n.Pos(), format, args...)
}
