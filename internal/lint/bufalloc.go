package lint

import (
	"go/ast"
	"strings"

	"github.com/gpf-go/gpf/internal/lint/analysis"
)

// BufAlloc flags fresh bytes.Buffer allocations inside codec and serializer
// hot paths (Marshal/Unmarshal/Encode/Decode functions in internal/compress,
// internal/engine and internal/colfmt) and inside the pooled-buffer kernel
// paths of internal/caller and internal/align (PairHMM*/…Align* functions).
// These run once per partition per stage — or once per read×haplotype pair
// in the kernels; PR 1 showed the unpooled gob scratch buffer dominating
// shuffle-side allocations.
// Buffers in these paths must come from internal/bufpool (Get/Put/Bytes and
// the typed slice pools). Output slices that transfer ownership to the
// caller are fine — only the Buffer staging pattern is flagged, since that
// is precisely what the pool exists for.
var BufAlloc = &analysis.Analyzer{
	Name: "bufalloc",
	Doc: "flags fresh bytes.Buffer allocations in codec and kernel hot " +
		"paths that should use internal/bufpool",
	Run: runBufAlloc,
}

var bufAllocScopes = []string{
	"internal/compress", "internal/engine", "internal/colfmt",
	"internal/caller", "internal/align",
}

// hotPathFunc reports whether a function name marks a serializer or kernel
// hot path.
func hotPathFunc(name string) bool {
	for _, marker := range [...]string{
		"Marshal", "Unmarshal", "Encode", "Decode", "Compress", "Decompress",
		"PairHMM", "Align",
	} {
		if strings.Contains(name, marker) {
			return true
		}
	}
	return false
}

func runBufAlloc(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), bufAllocScopes) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotPathFunc(fd.Name.Name) {
				continue
			}
			checkBufAllocs(pass, fd.Body)
		}
	}
	return nil
}

func checkBufAllocs(pass *analysis.Pass, body *ast.BlockStmt) {
	const advice = "allocates a fresh bytes.Buffer in a codec hot path (once per partition " +
		"per stage); use internal/bufpool Get/Put/Bytes"
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CompositeLit:
			// bytes.Buffer{} and &bytes.Buffer{} (the & wraps this node).
			if t := pass.TypesInfo.TypeOf(e); t != nil && isNamed(t, "bytes", "Buffer") {
				reportNode(pass, e, "composite literal "+advice)
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass.TypesInfo, e); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "bytes" && strings.HasPrefix(fn.Name(), "NewBuffer") {
				reportNode(pass, e, "bytes."+fn.Name()+" "+advice)
			}
			// new(bytes.Buffer): a builtin call, not a *types.Func.
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" && len(e.Args) == 1 {
				if t := pass.TypesInfo.TypeOf(e.Args[0]); t != nil && isNamed(t, "bytes", "Buffer") {
					reportNode(pass, e, "new(bytes.Buffer) "+advice)
				}
			}
		case *ast.ValueSpec:
			// var buf bytes.Buffer
			if e.Type != nil {
				if t := pass.TypesInfo.TypeOf(e.Type); t != nil && isNamed(t, "bytes", "Buffer") {
					reportNode(pass, e, "var declaration "+advice)
				}
			}
		}
		return true
	})
}
