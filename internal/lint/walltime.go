package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/gpf-go/gpf/internal/lint/analysis"
)

// WallTime flags wall-clock reads (time.Now, time.Since, timers) and global
// math/rand draws inside internal/cluster. The cluster package is a
// discrete-event simulator replaying recorded traces: all time must advance
// on the simulated clock and all randomness must come from an explicitly
// seeded *rand.Rand, or replays stop being reproducible. Durations and time
// arithmetic are fine; only sources of real time or ambient randomness are
// flagged. Methods on a *rand.Rand value are allowed — the caller controls
// its seed.
var WallTime = &analysis.Analyzer{
	Name: "walltime",
	Doc: "flags wall-clock reads and unseeded math/rand use in the " +
		"discrete-event simulator (replays must be deterministic)",
	Run: runWallTime,
}

var wallTimeScopes = []string{"internal/cluster"}

// wallClockFuncs are the package-level time functions that observe or
// depend on real time.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTicker": true,
	"NewTimer":  true,
}

func runWallTime(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path(), wallTimeScopes) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		switch fn.Pkg().Path() {
		case "time":
			if wallClockFuncs[fn.Name()] {
				reportNode(pass, call, "time.%s reads the wall clock inside the simulator; "+
					"advance the simulated clock instead", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			// Package-level functions draw from the shared global source;
			// methods on *rand.Rand (sig.Recv() != nil) are seeded by the
			// caller and allowed, as are the constructors (rand.New,
			// rand.NewSource, ...) that build a seeded generator.
			if sig != nil && sig.Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
				reportNode(pass, call, "%s.%s draws from the global math/rand source inside the "+
					"simulator; use an explicitly seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
			}
		}
		return true
	})
	return nil
}
