package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/gpf-go/gpf/internal/lint/analysis"
)

// SharedCapture flags function literals passed as op funcs to the engine
// (Map, Filter, MapPartitions, shuffle route callbacks, ...) that write to
// variables captured from an enclosing scope. Op funcs run concurrently
// across the worker pool, one goroutine per partition, so an unsynchronized
// captured write is a data race — the exact bug class of the PR 1
// Repartition shared counter. Reads of captured state are fine (closures
// over broadcast values are the intended pattern); writes must go through
// the op's return value instead, or be suppressed with
// `//lint:ignore gpflint/sharedcapture <why it is synchronized>`.
var SharedCapture = &analysis.Analyzer{
	Name: "sharedcapture",
	Doc: "flags engine op closures that mutate variables captured from an " +
		"enclosing scope (concurrent map tasks would race on them)",
	Run: runSharedCapture,
}

// opFuncs are the engine entry points whose func-typed arguments execute
// concurrently across partitions. The same names are exported by pkg/gpf's
// wrapper layer.
var opFuncs = map[string]bool{
	"Map":            true,
	"Filter":         true,
	"FlatMap":        true,
	"MapPartitions":  true,
	"ZipPartitions2": true,
	"ZipPartitions3": true,
	"PartitionBy":    true, // key func: the shuffle route callback
	"Repartition":    true,
	"SortPartitions": true,
	"CountByKey":     true,
	"CombineByKey":   true, // key + create/mergeValue/mergeCombiners closures
	"ReduceByKey":    true,
	"Reduce":         true,
}

// enginePkg reports whether path is the engine package or its public
// wrapper.
func enginePkg(path string) bool {
	return pkgPathHas(path, "internal/engine") || pkgPathHas(path, "pkg/gpf")
}

func runSharedCapture(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || !enginePkg(fn.Pkg().Path()) || !opFuncs[fn.Name()] {
			return true
		}
		for _, arg := range call.Args {
			lit, ok := ast.Unparen(arg).(*ast.FuncLit)
			if !ok {
				continue
			}
			checkCapturedWrites(pass, fn.Name(), lit)
		}
		return true
	})
	return nil
}

// checkCapturedWrites reports every write inside lit whose target is rooted
// at a variable declared outside lit.
func checkCapturedWrites(pass *analysis.Pass, opName string, lit *ast.FuncLit) {
	report := func(pos token.Pos, verb string, obj types.Object) {
		pass.Reportf(pos, "%s %q captured from enclosing scope inside %s op func; "+
			"op funcs run concurrently per partition, so this is a data race "+
			"(return the value from the op instead)", verb, obj.Name(), opName)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true // := declares fresh variables in the literal's scope
			}
			for _, lhs := range st.Lhs {
				if obj, verb := capturedWriteTarget(pass.TypesInfo, lhs, lit); obj != nil {
					report(lhs.Pos(), verb, obj)
				}
			}
		case *ast.IncDecStmt:
			if obj, verb := capturedWriteTarget(pass.TypesInfo, st.X, lit); obj != nil {
				report(st.X.Pos(), verb, obj)
			}
		case *ast.UnaryExpr:
			// Taking the address of a captured variable inside the closure is
			// not itself a write, but ranging further (escape analysis) is out
			// of scope here; leave it to -race.
		}
		return true
	})
}

// capturedWriteTarget classifies an lvalue written inside lit. It returns
// the captured root object and a description of the write, or nil when the
// write is closure-local or an allowed shape.
func capturedWriteTarget(info *types.Info, lhs ast.Expr, lit *ast.FuncLit) (types.Object, string) {
	lhs = ast.Unparen(lhs)
	root := rootIdent(lhs)
	if root == nil || root.Name == "_" {
		return nil, ""
	}
	obj := objOf(info, root)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || !declaredOutside(v, lit) {
		return nil, ""
	}
	switch e := lhs.(type) {
	case *ast.Ident:
		return v, "assignment to variable"
	case *ast.StarExpr:
		return v, "write through pointer"
	case *ast.SelectorExpr:
		_ = e
		return v, "field write on variable"
	case *ast.IndexExpr:
		// Map writes race unconditionally. Slice/array element writes are the
		// engine's own partition-output idiom (disjoint indexes per task), so
		// only flag maps.
		t := info.TypeOf(e.X)
		if t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				return v, "map write to variable"
			}
		}
		return nil, ""
	}
	return nil, ""
}
