package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/gpf-go/gpf/internal/lint/analysis"
	"github.com/gpf-go/gpf/internal/lint/analysis/dataflow"
)

// ChanLife checks channel lifecycle discipline in the shuffle readiness and
// mproc transport code: a channel has one owner, the owner closes it at most
// once, and nobody sends after the close. Violations panic at runtime — and
// in this codebase they panic on the error path (teardown after a worker
// crash), exactly where tests rarely look. Flagged patterns:
//
//   - double close: two closes of the same channel reachable on one path
//     (sync.Once-guarded closes and exclusive branches are exempt)
//   - close inside a loop that can reach it twice (a receive-guarded
//     select default, sync.Once, or a terminating tail exempts it)
//   - send reachable after a close of the same channel in the same function
//   - close of a channel received directly as a parameter (callees are not
//     owners; channel fields of a handed-over state struct are exempt)
//
// Channel identity is resolved through the dataflow layer: channels sharing
// a make site (aliases) are the same channel; otherwise the rooted selector
// path (t.goCh) identifies the field.
var ChanLife = &analysis.Analyzer{
	Name: "chanlife",
	Doc: "flags double-close, send-after-close, and close-by-non-owner " +
		"channel patterns in the engine and its transports",
	Run: runChanLife,
}

var chanLifeScopes = []string{"internal/engine"}

func chanLifeInScope(path string) bool {
	return inScope(path, chanLifeScopes) || path == "command-line-arguments"
}

// chanSite is one close or send touching a channel within a function.
type chanSite struct {
	node ast.Node // the close CallExpr or SendStmt
	arg  ast.Expr // the channel expression
	key  string
	path []ast.Node
}

func runChanLife(pass *analysis.Pass) error {
	if !chanLifeInScope(pass.Pkg.Path()) {
		return nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkChanLife(pass, info, fd)
			}
		}
	}
	return nil
}

func checkChanLife(pass *analysis.Pass, info *types.Info, fd *ast.FuncDecl) {
	flow := dataflow.New(info, fd)
	if flow == nil {
		return
	}
	// Channels made in this function are identified by their make sites, so
	// aliases (done := ch; close(done)) collapse to one identity.
	taint := flow.Taint(dataflow.Spec{Call: func(call *ast.CallExpr, result int) bool {
		if result != 0 {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return false
		}
		if _, isBuiltin := objOf(info, id).(*types.Builtin); !isBuiltin {
			return false
		}
		tv, ok := info.Types[call]
		if !ok {
			return false
		}
		_, isChan := tv.Type.Underlying().(*types.Chan)
		return isChan
	}})
	key := func(e ast.Expr) string {
		if seeds := taint.Seeds(e); len(seeds) > 0 {
			ps := make([]int, 0, len(seeds))
			for p := range seeds {
				ps = append(ps, int(p))
			}
			sort.Ints(ps)
			return fmt.Sprintf("make@%v", ps)
		}
		return "expr:" + types.ExprString(e)
	}

	var closes, sends []chanSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := objOf(info, id).(*types.Builtin); isBuiltin {
					closes = append(closes, chanSite{node: n, arg: n.Args[0], key: key(n.Args[0]), path: flow.PathTo(n)})
				}
			}
		case *ast.SendStmt:
			sends = append(sends, chanSite{node: n, arg: n.Chan, key: key(n.Chan), path: flow.PathTo(n)})
		}
		return true
	})
	if len(closes) == 0 {
		return
	}

	pos := func(n ast.Node) string { return pass.Fset.Position(n.Pos()).String() }

	// Rule: close of a parameter channel — the callee is not the owner. Only
	// a channel passed directly counts: closing a channel field of a state
	// struct the caller handed over is the owner delegating the lifecycle
	// with the struct (transport.gatherStore closing gs.done is fine).
	for _, c := range closes {
		id, ok := ast.Unparen(c.arg).(*ast.Ident)
		if !ok {
			continue
		}
		if v, ok := objOf(info, id).(*types.Var); ok && isParamOf(flow, c, v) {
			reportNode(pass, c.node, "close of parameter channel %s — channels are closed by "+
				"their owning sender, not by callees; signal completion on a separate channel "+
				"instead", types.ExprString(c.arg))
		}
	}

	// Rule: double close on one path.
	byKey := make(map[string][]chanSite)
	for _, c := range closes {
		byKey[c.key] = append(byKey[c.key], c)
	}
	for _, group := range byKey {
		for i := 1; i < len(group); i++ {
			for j := 0; j < i; j++ {
				a, b := group[j], group[i]
				if inOnce(info, a.path) || inOnce(info, b.path) {
					continue
				}
				if exclusivePaths(a.path, b.path) {
					continue
				}
				reportNode(pass, b.node, "channel %s is closed more than once on this path "+
					"(earlier close at %s) — a double close panics; make the closes exclusive "+
					"or route both through sync.Once", types.ExprString(b.arg), pos(a.node))
			}
		}
	}

	// Rule: close inside a loop that can reach it twice.
	for _, c := range closes {
		if !inLoop(c.path) || inOnce(info, c.path) || selectReceiveGuarded(c, key) {
			continue
		}
		if closeTailTerminates(c.path) {
			continue
		}
		reportNode(pass, c.node, "close of %s inside a loop can execute more than once — the "+
			"second close panics; guard it with sync.Once, a receive-default select, or exit "+
			"the loop after closing", types.ExprString(c.arg))
	}

	// Rule: send reachable after a close of the same channel.
	for _, s := range sends {
		for _, c := range closes {
			if c.key != s.key {
				continue
			}
			if definitelyBefore(c, s) {
				reportNode(pass, s.node, "send on %s is reachable after its close at %s — "+
					"send on a closed channel panics; the close must be the last lifecycle "+
					"event", types.ExprString(s.arg), pos(c.node))
				break
			}
		}
	}
}

// isParamOf reports whether v is a non-receiver parameter of the enclosing
// function or of any function literal enclosing the close site.
func isParamOf(flow *dataflow.Func, c chanSite, v *types.Var) bool {
	if sig := flow.Sig; sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i) == v {
				return true
			}
		}
	}
	for _, anc := range c.path {
		lit, ok := anc.(*ast.FuncLit)
		if !ok {
			continue
		}
		tv, ok := flow.Info.Types[lit]
		if !ok {
			continue
		}
		sig, ok := tv.Type.(*types.Signature)
		if !ok {
			continue
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if sig.Params().At(i) == v {
				return true
			}
		}
	}
	return false
}

// inOnce reports whether the site sits inside a sync.Once Do callback.
func inOnce(info *types.Info, path []ast.Node) bool {
	for _, anc := range path {
		call, ok := anc.(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Name() != "Do" {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
			isNamed(sig.Recv().Type(), "sync", "Once") {
			return true
		}
	}
	return false
}

// inLoop reports whether the site has a for/range ancestor inside the
// function (function literals between the loop and the site don't reset it —
// the literal may run per iteration).
func inLoop(path []ast.Node) bool {
	for _, anc := range path {
		switch anc.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}

// selectReceiveGuarded recognizes the once-per-channel close idiom
//
//	select { case <-ch: default: close(ch) }
//
// the close sits in the default clause of a select that also receives from
// the same channel, so a second arrival takes the receive arm instead.
func selectReceiveGuarded(c chanSite, key func(ast.Expr) string) bool {
	for i, anc := range c.path {
		sel, ok := anc.(*ast.SelectStmt)
		if !ok || i+2 >= len(c.path) {
			continue
		}
		clause, ok := c.path[i+2].(*ast.CommClause)
		if !ok || clause.Comm != nil { // close must be in the default clause
			continue
		}
		for _, other := range sel.Body.List {
			cc, ok := other.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			if recv := recvChan(cc.Comm); recv != nil && key(recv) == c.key {
				return true
			}
		}
	}
	return false
}

// recvChan extracts the channel expression of a receive comm clause.
func recvChan(comm ast.Stmt) ast.Expr {
	var expr ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	if u, ok := ast.Unparen(expr).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		return u.X
	}
	return nil
}

// closeTailTerminates reports whether the innermost block holding the close
// exits after it (return/break/panic in tail position), so a loop iteration
// cannot re-reach the close.
func closeTailTerminates(path []ast.Node) bool {
	for i := len(path) - 1; i >= 0; i-- {
		if blk, ok := path[i].(*ast.BlockStmt); ok {
			return dataflow.Terminates(blk)
		}
	}
	return false
}

// exclusivePaths reports whether two sites diverge into mutually exclusive
// branches: different arms of one if, or different clauses of one
// switch/select.
func exclusivePaths(a, b []ast.Node) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
		exclusive := false
		switch a[i].(type) {
		case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			exclusive = true
		}
		if exclusive && i+1 < len(a) && i+1 < len(b) && a[i+1] != b[i+1] {
			return true
		}
	}
	return false
}

// definitelyBefore reports whether close c executes before send s on a
// straight-line path: both hang off one common block, the close's statement
// comes first, and nothing conditional wraps the close below that block.
func definitelyBefore(c, s chanSite) bool {
	n := len(c.path)
	if len(s.path) < n {
		n = len(s.path)
	}
	for i := 0; i < n && c.path[i] == s.path[i]; i++ {
		blk, ok := c.path[i].(*ast.BlockStmt)
		if !ok || i+1 >= len(c.path) || i+1 >= len(s.path) {
			continue
		}
		cs, ss := -1, -1
		for idx, stmt := range blk.List {
			if stmt == c.path[i+1] {
				cs = idx
			}
			if stmt == s.path[i+1] {
				ss = idx
			}
		}
		if cs < 0 || ss < 0 || cs >= ss {
			continue
		}
		// The close statement precedes the send statement under this block;
		// it counts only if the close is unconditional below it.
		unconditional := true
		for k := i + 1; k < len(c.path); k++ {
			switch c.path[k].(type) {
			case *ast.IfStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt,
				*ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
				unconditional = false
			}
		}
		if unconditional {
			return true
		}
	}
	return false
}
