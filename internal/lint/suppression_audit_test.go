package lint_test

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gpf-go/gpf/internal/lint"
)

// TestSuppressionAudit walks every production Go file in the repo and vets
// each //lint:ignore directive: it must name at least one analyzer, every
// name must belong to the current Suite (a suppression of a renamed or
// deleted analyzer is dead weight that hides nothing), and it must carry a
// non-empty justification. Wildcard suppressions are rejected outright —
// production code suppresses a specific finding for a specific reason.
// Fixture trees under testdata/ are exempt; they exercise the mechanism.
func TestSuppressionAudit(t *testing.T) {
	root := moduleRoot(t)
	known := make(map[string]bool)
	for _, a := range lint.Suite() {
		known[a.Name] = true
	}
	fset := token.NewFileSet()
	audited := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, walkErr error) error {
		if walkErr != nil {
			return walkErr
		}
		if d.IsDir() {
			if path != root && (d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".")) {
				return fs.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("parsing %s: %w", path, perr)
		}
		for _, dir := range lint.ParseIgnoreDirectives(fset, f) {
			audited++
			rel, _ := filepath.Rel(root, path)
			at := fmt.Sprintf("%s:%d", rel, dir.Line)
			if len(dir.Names) == 0 {
				t.Errorf("%s: lint:ignore directive names no analyzer", at)
			}
			for _, n := range dir.Names {
				if n == "*" {
					t.Errorf("%s: wildcard suppression is not allowed in production code", at)
				} else if !known[n] {
					t.Errorf("%s: lint:ignore names unknown analyzer %q", at, n)
				}
			}
			if dir.Reason == "" {
				t.Errorf("%s: lint:ignore directive carries no reason", at)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if audited == 0 {
		t.Fatal("audit found no directives; the transport codecerr suppression should exist")
	}
}
