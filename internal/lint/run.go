// Package lint is gpflint: a suite of static analyzers enforcing the
// engine's concurrency and determinism invariants (see DESIGN.md, "Checked
// invariants"). The suite runs from cmd/gpflint and from CI; each analyzer
// guards an invariant that was — or could have been — violated by a real bug
// in this codebase (the PR 1 Repartition shared-counter race being the
// founding example).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"github.com/gpf-go/gpf/internal/lint/analysis"
	"github.com/gpf-go/gpf/internal/lint/loader"
)

// Suite returns the gpflint analyzers in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		SharedCapture,
		MapIter,
		WallTime,
		CodecErr,
		BufAlloc,
		AllocLen,
		GoLeak,
		ChanLife,
		FieldFX,
	}
}

// ignoreDirective is one parsed `//lint:ignore gpflint/<name>[,...] reason`
// comment. An empty names set means the comment was malformed (and ignored).
type ignoreDirective struct {
	names map[string]bool
}

// ignorePrefix introduces a suppression comment. The reason is mandatory:
// `//lint:ignore gpflint/walltime simulated clock unavailable here`.
const ignorePrefix = "lint:ignore"

// IgnoreDirective is the parsed form of one suppression comment, including
// malformed ones (no analyzer names, or no reason) so the suppression audit
// can reject them instead of silently skipping them.
type IgnoreDirective struct {
	Line   int
	Names  []string // analyzer names with the gpflint/ prefix stripped
	Reason string   // text after the analyzer list; empty when missing
}

// ParseIgnoreDirectives returns every lint:ignore comment in file, in
// source order.
func ParseIgnoreDirectives(fset *token.FileSet, file *ast.File) []IgnoreDirective {
	var out []IgnoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(c.Text, "//"), "/*"))
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			d := IgnoreDirective{Line: fset.Position(c.Pos()).Line}
			if list, reason, ok := strings.Cut(rest, " "); ok {
				d.Reason = strings.TrimSpace(reason)
				rest = list
			}
			for _, n := range strings.Split(rest, ",") {
				n = strings.TrimPrefix(strings.TrimSpace(n), "gpflint/")
				if n != "" {
					d.Names = append(d.Names, n)
				}
			}
			out = append(out, d)
		}
	}
	return out
}

// parseIgnores maps file line numbers to the well-formed suppression
// directives written on them: an analyzer list and a non-empty reason.
func parseIgnores(fset *token.FileSet, file *ast.File) map[int]ignoreDirective {
	out := make(map[int]ignoreDirective)
	for _, d := range ParseIgnoreDirectives(fset, file) {
		if len(d.Names) == 0 || d.Reason == "" {
			continue
		}
		names := make(map[string]bool, len(d.Names))
		for _, n := range d.Names {
			names[n] = true
		}
		out[d.Line] = ignoreDirective{names: names}
	}
	return out
}

// suppressed reports whether a diagnostic from analyzer name at line is
// covered by a directive on the same line or the line above.
func suppressed(ignores map[int]ignoreDirective, name string, line int) bool {
	for _, l := range [2]int{line, line - 1} {
		if d, ok := ignores[l]; ok && (d.names[name] || d.names["*"]) {
			return true
		}
	}
	return false
}

// Run applies the analyzers to every package, filters suppressed findings,
// and returns the surviving diagnostics sorted by position.
func Run(pkgs []*loader.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		ignores := make(map[int]ignoreDirective)
		for _, f := range pkg.Syntax {
			for line, d := range parseIgnores(pkg.Fset, f) {
				ignores[line] = d
			}
		}
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				d.Analyzer = a.Name
				if suppressed(ignores, a.Name, pkg.Fset.Position(d.Pos).Line) {
					return
				}
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("gpflint: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
	}
	if len(pkgs) > 0 {
		sortDiags(pkgs[0].Fset, diags) // all packages of one load share a FileSet
	}
	return diags, nil
}

func sortDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Offset < pj.Offset
	})
}

// Format renders a diagnostic as "path:line:col: message (gpflint/name)".
func Format(fset *token.FileSet, d analysis.Diagnostic) string {
	pos := fset.Position(d.Pos)
	return fmt.Sprintf("%s: %s (gpflint/%s)", pos, d.Message, d.Analyzer)
}

// JSONDiagnostic is the machine-readable finding record behind
// `gpflint -json` — one object per diagnostic, consumed by CI to emit
// annotations and archived as a build artifact.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// ToJSON converts diagnostics to their machine-readable form.
func ToJSON(fset *token.FileSet, diags []analysis.Diagnostic) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		out = append(out, JSONDiagnostic{
			File:     pos.Filename,
			Line:     pos.Line,
			Col:      pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out
}
