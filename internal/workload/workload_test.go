package workload

import (
	"testing"
)

func TestKindNames(t *testing.T) {
	if WGS.String() != "WGS" || WES.String() != "WES" || GenePanel.String() != "GenePanel" {
		t.Fatal("kind names broken")
	}
}

func TestMakeProfiles(t *testing.T) {
	for _, kind := range []Kind{WGS, WES, GenePanel} {
		p := DefaultProfile(kind, 30000)
		d := Make(p, 7)
		if len(d.Pairs) == 0 {
			t.Fatalf("%s: no reads", kind)
		}
		if d.Ref.NumContigs() != p.Contigs {
			t.Fatalf("%s: contigs = %d", kind, d.Ref.NumContigs())
		}
		if len(d.Known) == 0 {
			t.Fatalf("%s: no known sites", kind)
		}
		if d.TotalBases() <= 0 || d.FASTQBytes() <= d.TotalBases() {
			t.Fatalf("%s: size accounting broken", kind)
		}
		if len(d.TruthVCF()) == 0 {
			t.Fatalf("%s: no truth records", kind)
		}
	}
}

func TestTargetedWorkloadsSmaller(t *testing.T) {
	// WES and panel sequence less territory, so fewer total bases than WGS
	// at the same genome size despite higher on-target coverage.
	wgs := Make(DefaultProfile(WGS, 40000), 11)
	wes := Make(DefaultProfile(WES, 40000), 11)
	if wes.TotalBases() >= wgs.TotalBases() {
		t.Fatalf("WES bases %d should be < WGS %d", wes.TotalBases(), wgs.TotalBases())
	}
}

func TestKnownSitesSubsetOfTruth(t *testing.T) {
	d := Make(DefaultProfile(WGS, 30000), 13)
	truth := map[string]bool{}
	for _, v := range d.TruthVCF() {
		truth[v.Chrom+string(rune(v.Pos))+v.Ref+v.Alt] = true
	}
	for _, k := range d.Known {
		if !truth[k.Chrom+string(rune(k.Pos))+k.Ref+k.Alt] {
			t.Fatal("known site not in truth set")
		}
	}
	if len(d.Known) >= len(d.TruthVCF()) {
		t.Fatal("known sites should be a strict subset")
	}
}

func TestMultiSample(t *testing.T) {
	batch := MultiSample(DefaultProfile(WGS, 20000), 3, 17)
	if len(batch) != 3 {
		t.Fatalf("batch = %d", len(batch))
	}
	// Shared reference.
	if batch[0].Ref != batch[1].Ref {
		t.Fatal("samples should share one reference")
	}
	// Distinct donors.
	if len(batch[0].Donor.Truth.Variants) == len(batch[1].Donor.Truth.Variants) {
		a, b := batch[0].Donor.Truth.Variants, batch[1].Donor.Truth.Variants
		same := true
		for i := range a {
			if a[i].Pos != b[i].Pos {
				same = false
				break
			}
		}
		if same {
			t.Fatal("samples have identical variants")
		}
	}
	if batch[0].Name == batch[1].Name {
		t.Fatal("sample names must differ")
	}
}

func TestMakeDeterministic(t *testing.T) {
	a := Make(DefaultProfile(WGS, 20000), 23)
	b := Make(DefaultProfile(WGS, 20000), 23)
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatal("same seed produced different datasets")
	}
	if a.Pairs[0].R1.Name != b.Pairs[0].R1.Name {
		t.Fatal("same seed produced different read names")
	}
}
