// Package workload synthesizes the evaluation datasets of §5.1 at laptop
// scale: whole-genome (WGS), whole-exome (WES) and gene-panel sequencing
// profiles, multi-sample batches for the Table 1 scaling experiment, and the
// coverage-hotspot structure (§4.4) that drives the load-balance results.
package workload

import (
	"fmt"

	"github.com/gpf-go/gpf/internal/fastq"
	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/vcf"
)

// Kind selects a sequencing workload profile.
type Kind int

// The three workloads of Fig 12.
const (
	WGS Kind = iota
	WES
	GenePanel
)

// String names the workload.
func (k Kind) String() string {
	switch k {
	case WES:
		return "WES"
	case GenePanel:
		return "GenePanel"
	default:
		return "WGS"
	}
}

// Profile describes one workload's shape.
type Profile struct {
	Kind Kind
	// GenomeLen is the synthetic reference size in bases.
	GenomeLen int
	// Contigs is the chromosome count.
	Contigs int
	// Coverage is the mean sequencing depth over the targeted territory.
	Coverage float64
	// TargetFraction is the fraction of the genome that is sequenced (1 for
	// WGS; exons for WES; a few genes for panels).
	TargetFraction float64
	// HotspotCount and HotspotFactor model coverage pileups.
	HotspotCount  int
	HotspotFactor float64
}

// DefaultProfile returns laptop-scale parameters for a workload, scaled
// around genomeLen bases of reference.
func DefaultProfile(kind Kind, genomeLen int) Profile {
	switch kind {
	case WES:
		return Profile{Kind: kind, GenomeLen: genomeLen, Contigs: 2, Coverage: 40,
			TargetFraction: 0.05, HotspotCount: 2, HotspotFactor: 20}
	case GenePanel:
		return Profile{Kind: kind, GenomeLen: genomeLen, Contigs: 1, Coverage: 100,
			TargetFraction: 0.01, HotspotCount: 1, HotspotFactor: 10}
	default:
		return Profile{Kind: kind, GenomeLen: genomeLen, Contigs: 3, Coverage: 12,
			TargetFraction: 1, HotspotCount: 2, HotspotFactor: 40}
	}
}

// Dataset is one synthesized sample with its truth set.
type Dataset struct {
	Name    string
	Profile Profile
	Ref     *genome.Reference
	Donor   *genome.Donor
	Pairs   []fastq.Pair
	// Known is the known-variant database (a subset of the truth set plus
	// decoys, standing in for dbSNP).
	Known []vcf.Record
}

// Make synthesizes a dataset for the profile, deterministic in seed.
func Make(p Profile, seed int64) *Dataset {
	ref := genome.Synthesize(genome.DefaultSynthConfig(seed, p.GenomeLen, p.Contigs))
	donor := genome.Mutate(ref, genome.DefaultMutateConfig(seed+1))

	cfg := fastq.DefaultSimConfig(seed+2, p.Coverage)
	cfg.SampleName = fmt.Sprintf("%s-%d", p.Kind, seed)

	// Targeted sequencing: restrict sampling to target intervals by turning
	// the off-target territory into zero-coverage via hotspot-style target
	// windows. We emulate targeting by sampling the whole genome at reduced
	// coverage plus concentrated hotspots over the targets.
	if p.TargetFraction < 1 {
		cfg.Coverage = p.Coverage * p.TargetFraction // thin background
		targetSpan := int(float64(p.GenomeLen) * p.TargetFraction)
		if targetSpan < 1000 {
			targetSpan = 1000
		}
		per := targetSpan / max(p.HotspotCount, 1)
		for i := 0; i < p.HotspotCount; i++ {
			start := (i + 1) * p.GenomeLen / (p.HotspotCount + 2) / p.Contigs
			cfg.Hotspots = append(cfg.Hotspots, genome.Interval{
				Contig: 0, Start: start, End: start + per,
			})
		}
		cfg.HotspotFactor = 1 / p.TargetFraction
	} else {
		for i := 0; i < p.HotspotCount; i++ {
			start := (i + 1) * p.GenomeLen / (p.HotspotCount + 2) / p.Contigs
			cfg.Hotspots = append(cfg.Hotspots, genome.Interval{
				Contig: 0, Start: start, End: start + 2000,
			})
		}
		cfg.HotspotFactor = p.HotspotFactor
	}

	pairs := fastq.Simulate(donor, cfg)
	return &Dataset{
		Name:    cfg.SampleName,
		Profile: p,
		Ref:     ref,
		Donor:   donor,
		Pairs:   pairs,
		Known:   KnownSites(ref, donor, seed+3),
	}
}

// KnownSites derives a dbSNP-like database: most truth variants (common
// polymorphisms are catalogued) rendered as VCF records.
func KnownSites(ref *genome.Reference, donor *genome.Donor, seed int64) []vcf.Record {
	var out []vcf.Record
	for i, v := range donor.Truth.Variants {
		// Keep ~80% of sites, deterministically by index and seed.
		if (int64(i)+seed)%5 == 0 {
			continue
		}
		out = append(out, vcf.Record{
			Chrom: ref.Contigs[v.Contig].Name,
			Pos:   v.Pos,
			Ref:   string(v.Ref),
			Alt:   string(v.Alt),
		})
	}
	return out
}

// MultiSample synthesizes n samples over one shared reference — the Table 1
// batch. Samples differ in donor variants and reads but share the genome.
func MultiSample(p Profile, n int, seed int64) []*Dataset {
	ref := genome.Synthesize(genome.DefaultSynthConfig(seed, p.GenomeLen, p.Contigs))
	out := make([]*Dataset, n)
	for i := 0; i < n; i++ {
		s := seed + int64(i+1)*1000
		donor := genome.Mutate(ref, genome.DefaultMutateConfig(s))
		cfg := fastq.DefaultSimConfig(s+1, p.Coverage)
		cfg.SampleName = fmt.Sprintf("sample%d", i+1)
		out[i] = &Dataset{
			Name:    cfg.SampleName,
			Profile: p,
			Ref:     ref,
			Donor:   donor,
			Pairs:   fastq.Simulate(donor, cfg),
			Known:   KnownSites(ref, donor, s+2),
		}
	}
	return out
}

// TruthVCF renders a dataset's full truth set as VCF records for scoring.
func (d *Dataset) TruthVCF() []vcf.Record {
	var out []vcf.Record
	for _, v := range d.Donor.Truth.Variants {
		out = append(out, vcf.Record{
			Chrom: d.Ref.Contigs[v.Contig].Name,
			Pos:   v.Pos,
			Ref:   string(v.Ref),
			Alt:   string(v.Alt),
		})
	}
	return out
}

// TotalBases returns the sequenced base count of the dataset.
func (d *Dataset) TotalBases() int64 {
	var n int64
	for i := range d.Pairs {
		n += int64(len(d.Pairs[i].R1.Seq) + len(d.Pairs[i].R2.Seq))
	}
	return n
}

// FASTQBytes returns the dataset's size in FASTQ text form.
func (d *Dataset) FASTQBytes() int64 {
	var n int64
	for i := range d.Pairs {
		n += int64(d.Pairs[i].Bytes())
	}
	return n
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
