package engine

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"
	"time"

	"github.com/gpf-go/gpf/internal/bufpool"
)

// Keyed pairs an integer shuffle key with a value — the record type flowing
// through the combine-based wide ops.
type Keyed[V any] struct {
	Key int
	Val V
}

// sortedPairs flattens an accumulator map into pairs sorted by key. Every
// combine output goes through it, so bucket blocks and reduce partitions are
// byte-deterministic regardless of map iteration order (the gpflint/mapiter
// invariant: collect keys, sort, then emit).
func sortedPairs[C any](m map[int]C) []Keyed[C] {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]Keyed[C], len(keys))
	for i, k := range keys {
		out[i] = Keyed[C]{Key: k, Val: m[k]}
	}
	return out
}

// CombineByKey is the map-side-combine wide operation, the engine's
// aggregateByKey: items are keyed by key, pre-aggregated per destination
// bucket on the map side (create for the first item of a key, mergeValue for
// the rest), shuffled as Keyed pairs, and merged across map tasks on the
// reduce side with mergeCombiners. Pre-aggregation means each map task ships
// at most one pair per (distinct key, reduce partition) instead of one pair
// per item — the shuffle-byte reduction §4.4's census relies on. Each output
// partition holds its keys sorted ascending.
//
// The combiner callbacks run concurrently across partitions (one task per
// partition, like every op func) but each invocation only sees task-local
// accumulators; they must not write captured state. codec serializes the
// shuffled pairs (nil selects the gob fallback).
//
// Context.DisableMapSideCombine ships one pair per item instead (reduce-side
// semantics unchanged) — the no-combine ablation.
//
// CombineByKey is deferred like every wide op: the call records the shuffle
// and returns a pending dataset forced by the first downstream barrier.
// opts declare the fields that key/create/mergeValue read (the combine
// changes record type, so downstream demand never reaches d — the map-side
// read mask is exactly the declared reads, FieldsAll when undeclared).
// Under Context.DisableProjectionPlanner it runs eagerly at call time.
func CombineByKey[T, C any](name string, d *Dataset[T], numPartitions int, key func(T) int,
	create func(T) C, mergeValue func(C, T) C, mergeCombiners func(C, C) C,
	codec Serializer[Keyed[C]], opts ...StageOption) (*Dataset[Keyed[C]], error) {
	if numPartitions < 1 {
		return nil, fmt.Errorf("engine: stage %q: numPartitions must be positive", name)
	}
	if codec == nil {
		codec = gobSerializer[Keyed[C]]{}
	}
	fx := resolveFX(sameRecordType[T, Keyed[C]](), opts)
	if d.ctx.DisableProjectionPlanner {
		res := &Dataset[Keyed[C]]{ctx: d.ctx, codec: codec}
		if err := runCombine(name, d, res, numPartitions, key, create, mergeValue, mergeCombiners, codec, fx, FieldsAll); err != nil {
			return nil, err
		}
		return res, nil
	}
	claimInput(d)
	res := &Dataset[Keyed[C]]{ctx: d.ctx, codec: codec, pendingParts: numPartitions}
	m := &planMeta{wide: true, inputs: []planInput{inputEdge(d, fx)}}
	m.run = func(need FieldMask) error {
		return runCombine(name, d, res, numPartitions, key, create, mergeValue, mergeCombiners, codec, fx, need)
	}
	res.meta = m
	return res, nil
}

// runCombine executes one combine shuffle into res under the resolved
// output demand need. The pairs codec is not field-projectable (Keyed[C]
// lives in a different field space than T), so need shapes nothing on the
// wire here — the planner's win is the map-side read mask fx.inNeed(need),
// which prunes the input decode down to the declared key/value fields (the
// census's 98% decode reduction, inferred instead of hand-annotated).
func runCombine[T, C any](name string, d *Dataset[T], res *Dataset[Keyed[C]], numPartitions int, key func(T) int,
	create func(T) C, mergeValue func(C, T) C, mergeCombiners func(C, C) C,
	codec Serializer[Keyed[C]], fx fieldFX, need FieldMask) error {
	if d.ctx.DisableProjectionPlanner {
		need = FieldsAll
	}
	if err := d.Force(); err != nil {
		return err
	}
	mapNeed := fx.inNeed(need)
	in := d.NumPartitions()
	combine := !d.ctx.DisableMapSideCombine
	allocResult(res, numPartitions, FieldsAll)
	sc := &shuffleCore[[]Keyed[C], Keyed[C]]{
		ctx:      d.ctx,
		name:     name,
		in:       in,
		out:      numPartitions,
		inMask:   mapNeed,
		outMask:  FieldsAll,
		mapHint:  d.partitionSizeHint,
		mapOwner: d.ownerOf,
		res:      res,
		mapTask: func(p int, tm *TaskMetrics, emit func(r int, block []byte)) error {
			items, err := d.partitionNeed(p, tm, mapNeed)
			if err != nil {
				return err
			}
			tm.InputItems = len(items)
			bucketOf := func(k int) int {
				r := k % numPartitions
				if r < 0 {
					r += numPartitions
				}
				return r
			}
			pairs := make([][]Keyed[C], numPartitions)
			if combine {
				acc := make([]map[int]C, numPartitions)
				for _, it := range items {
					k := key(it)
					r := bucketOf(k)
					m := acc[r]
					if m == nil {
						m = make(map[int]C)
						acc[r] = m
					}
					if c, ok := m[k]; ok {
						m[k] = mergeValue(c, it)
					} else {
						m[k] = create(it)
					}
				}
				for r, m := range acc {
					if len(m) > 0 {
						pairs[r] = sortedPairs(m)
					}
				}
			} else {
				for _, it := range items {
					k := key(it)
					r := bucketOf(k)
					pairs[r] = append(pairs[r], Keyed[C]{Key: k, Val: create(it)})
				}
			}
			// The fold above must see every item before any bucket is final;
			// from here on each bucket ships as soon as it is encoded.
			outPairs := 0
			serStart := time.Now()
			for r, bucket := range pairs {
				if len(bucket) == 0 {
					continue
				}
				block, err := codec.Marshal(bucket)
				if err != nil {
					return fmt.Errorf("engine: stage %q map %d: %w", name, p, err)
				}
				tm.ShuffleWriteBytes += int64(len(block))
				emit(r, block)
				outPairs += len(bucket)
			}
			tm.SerializeTime += time.Since(serStart)
			tm.OutputItems = outPairs
			return nil
		},
		decode: func(r int, block []byte, tm *TaskMetrics) ([]Keyed[C], error) {
			serStart := time.Now()
			pairs, err := unmarshalCharged(codec, block, tm)
			tm.SerializeTime += time.Since(serStart)
			if err != nil {
				return nil, fmt.Errorf("engine: stage %q reduce %d: %w", name, r, err)
			}
			return pairs, nil
		},
		merge: func(_ int, decoded [][]Keyed[C], _ *TaskMetrics) ([]Keyed[C], error) {
			total := 0
			for _, chunk := range decoded {
				total += len(chunk)
			}
			acc := make(map[int]C, total)
			for _, chunk := range decoded { // chunks in map-task order
				for _, kv := range chunk {
					if c, ok := acc[kv.Key]; ok {
						acc[kv.Key] = mergeCombiners(c, kv.Val)
					} else {
						acc[kv.Key] = kv.Val
					}
				}
			}
			return sortedPairs(acc), nil
		},
	}
	return sc.run()
}

// ReduceByKey is CombineByKey with a single associative merge function over
// per-item values — Spark's reduceByKey.
func ReduceByKey[T, V any](name string, d *Dataset[T], numPartitions int, key func(T) int,
	value func(T) V, merge func(V, V) V, codec Serializer[Keyed[V]], opts ...StageOption) (*Dataset[Keyed[V]], error) {
	return CombineByKey(name, d, numPartitions, key,
		func(t T) V { return value(t) },
		func(acc V, t T) V { return merge(acc, value(t)) },
		merge, codec, opts...)
}

// KeyedIntCodec is a compact serializer for sorted (key, count) pairs: a
// varint pair count, then per pair the zigzag-varint key delta from the
// previous key and the zigzag-varint value. On the sorted output of a
// combine bucket the deltas are small non-negatives, so a pair typically
// costs 2-4 bytes against gob's per-entry framing — the codec that makes the
// census byte win strict.
type KeyedIntCodec struct{}

// Name identifies the codec in metrics.
func (KeyedIntCodec) Name() string { return "keyed-varint" }

// Marshal encodes pairs; any order is legal (deltas are zigzag-encoded) but
// sorted input encodes smallest.
func (KeyedIntCodec) Marshal(pairs []Keyed[int]) ([]byte, error) {
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v int64) {
		buf.Write(tmp[:binary.PutVarint(tmp[:], v)])
	}
	buf.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(pairs)))])
	prev := 0
	for _, kv := range pairs {
		put(int64(kv.Key - prev))
		prev = kv.Key
		put(int64(kv.Val))
	}
	return bufpool.Bytes(buf), nil
}

// Unmarshal decodes pairs encoded by Marshal.
func (KeyedIntCodec) Unmarshal(data []byte) ([]Keyed[int], error) {
	n, read := binary.Uvarint(data)
	if read <= 0 {
		return nil, fmt.Errorf("engine: keyed-varint: bad pair count")
	}
	data = data[read:]
	// Each pair is at least two varint bytes; bound the count by the payload
	// before it sizes the slice (a corrupt count must error, not OOM).
	if n > uint64(len(data)) {
		return nil, fmt.Errorf("engine: keyed-varint: pair count %d exceeds payload", n)
	}
	next := func() (int64, error) {
		v, r := binary.Varint(data)
		if r <= 0 {
			return 0, fmt.Errorf("engine: keyed-varint: truncated pair")
		}
		data = data[r:]
		return v, nil
	}
	pairs := make([]Keyed[int], 0, n)
	prev := 0
	for i := uint64(0); i < n; i++ {
		dk, err := next()
		if err != nil {
			return nil, err
		}
		v, err := next()
		if err != nil {
			return nil, err
		}
		prev += int(dk)
		pairs = append(pairs, Keyed[int]{Key: prev, Val: int(v)})
	}
	return pairs, nil
}

// CountByKey returns a map from key to item count — the read census of the
// dynamic repartitioner (§4.4 step 2: "reduce is performed ... and returns
// the number of reads in each partition to the driver"). It runs as a
// map-side-combined ReduceByKey over the compact keyed-varint codec, so each
// map task ships one (key, count) pair per distinct local key instead of a
// whole per-partition gob map, then collects the disjoint per-partition
// results. Context.DisableMapSideCombine selects the legacy serial
// driver-merge path. CountByKey is an action barrier: it forces any pending
// narrow chain first. opts declare the fields key reads — with a columnar
// source, the census then decodes only those columns, no manual
// Force()+ReadingFields required.
func CountByKey[T any](name string, d *Dataset[T], key func(T) int, opts ...StageOption) (map[int]int, error) {
	if err := d.Force(); err != nil {
		return nil, err
	}
	if d.ctx.DisableMapSideCombine {
		fx := resolveFX(false, opts)
		return countByKeySerial(name, d, key, fx.inNeed(0))
	}
	pairs, err := ReduceByKey(name, d, d.NumPartitions(), key,
		func(T) int { return 1 },
		func(a, b int) int { return a + b },
		KeyedIntCodec{}, opts...)
	if err != nil {
		return nil, err
	}
	kvs, err := Collect(name+"/collect", pairs)
	if err != nil {
		return nil, err
	}
	out := make(map[int]int, len(kvs))
	for _, kv := range kvs {
		out[kv.Key] += kv.Val // keys are disjoint across reduce partitions
	}
	return out, nil
}

// countByKeySerial is the pre-combine census: each task counts its partition
// into a map, gob-serializes the whole map to the driver (the shipment is
// charged as shuffle-write bytes, mirroring how broadcasts charge their
// driver-side bytes), and the driver merges the partials serially — the
// Collect-style serial step the combine path eliminates. readMask is the
// declared field demand of key (FieldsAll when undeclared).
func countByKeySerial[T any](name string, d *Dataset[T], key func(T) int, readMask FieldMask) (map[int]int, error) {
	partials := make([][]byte, d.NumPartitions())
	stage := StageMetrics{Name: name, Kind: StageAction, InMask: readMask, OutMask: FieldsAll}
	var tms []TaskMetrics
	gc, err := gcPauseDelta(func() error {
		var err error
		tms, err = d.ctx.runTasksOwned(d.NumPartitions(), d.partitionSizeHint, d.ownerOf, func(p int, tm *TaskMetrics) error {
			start := time.Now()
			items, err := d.partitionNeed(p, tm, readMask)
			if err != nil {
				return err
			}
			tm.InputItems = len(items)
			m := map[int]int{}
			for _, it := range items {
				m[key(it)]++
			}
			serStart := time.Now()
			buf := bufpool.Get()
			defer bufpool.Put(buf)
			if err := gob.NewEncoder(buf).Encode(m); err != nil {
				return fmt.Errorf("engine: stage %q partition %d: %w", name, p, err)
			}
			block := bufpool.Bytes(buf)
			tm.SerializeTime += time.Since(serStart)
			tm.ShuffleWriteBytes += int64(len(block))
			partials[p] = block
			tm.Wall = time.Since(start)
			return nil
		})
		return err
	})
	stage.Tasks = tms
	stage.GCPause = gc
	driverStart := time.Now()
	if err == nil {
		// The per-partition gob blobs are already bytes: allgather them so
		// every rank's serial driver merge folds the identical sequence.
		partials, err = d.ctx.allgatherBlobs(len(partials), d.ownerOf, partials)
	}
	out := map[int]int{}
	if err == nil {
		for p, block := range partials {
			var m map[int]int
			if derr := gob.NewDecoder(bytes.NewReader(block)).Decode(&m); derr != nil {
				err = fmt.Errorf("engine: stage %q driver merge of partition %d: %w", name, p, derr)
				break
			}
			for k, v := range m {
				out[k] += v
			}
		}
	}
	stage.DriverTime = time.Since(driverStart)
	d.ctx.recordStage(stage)
	if err != nil {
		return nil, err
	}
	return out, nil
}
