package engine

import "time"

// Broadcast distributes a driver value to every worker. In the real cluster
// this ships sizeBytes to each node; locally the value is shared, but the
// serial driver time and the byte volume are recorded so the simulator can
// charge the broadcast cost (the multi-gigabyte BQSR mask table broadcast of
// §5.2.2 shows up as a serial step through this accounting).
type Broadcast[T any] struct {
	Value     T
	SizeBytes int64
}

// NewBroadcast registers a broadcast variable with the context, recording a
// driver-side action stage with the broadcast volume.
func NewBroadcast[T any](ctx *Context, name string, value T, sizeBytes int64) *Broadcast[T] {
	start := time.Now()
	b := &Broadcast[T]{Value: value, SizeBytes: sizeBytes}
	ctx.recordStage(StageMetrics{
		Name:       name,
		Kind:       StageAction,
		DriverTime: time.Since(start),
		Tasks: []TaskMetrics{{
			Partition:         0,
			ShuffleWriteBytes: sizeBytes,
		}},
	})
	return b
}
