package engine

import (
	"fmt"
	"sort"
	"time"
)

// shuffle is the wide-operation core: route decides the destination
// partition of each item from (map partition, item index, item), map tasks
// bucket and serialize, reduce tasks fetch and decode. Shuffles are barriers:
// any pending narrow chain on d is forced first.
func shuffle[T any](name string, d *Dataset[T], numPartitions int, route func(p, idx int, item T) int) (*Dataset[T], error) {
	if numPartitions < 1 {
		return nil, fmt.Errorf("engine: stage %q: numPartitions must be positive", name)
	}
	if err := d.Force(); err != nil {
		return nil, err
	}
	codec := d.effectiveCodec()
	in := d.NumPartitions()

	// Map side: bucket and serialize.
	buckets := make([][][]byte, in) // buckets[mapTask][reducePartition]
	stage := StageMetrics{Name: name + "/map", Kind: StageShuffle}
	var tms []TaskMetrics
	gc, err := gcPauseDelta(func() error {
		var err error
		tms, err = d.ctx.runTasks(in, func(p int, tm *TaskMetrics) error {
			start := time.Now()
			items, err := d.partition(p, tm)
			if err != nil {
				return err
			}
			tm.InputItems = len(items)
			local := make([][]T, numPartitions)
			for idx, it := range items {
				k := route(p, idx, it) % numPartitions
				if k < 0 {
					k += numPartitions
				}
				local[k] = append(local[k], it)
			}
			enc := make([][]byte, numPartitions)
			serStart := time.Now()
			for r, bucket := range local {
				if len(bucket) == 0 {
					continue
				}
				block, err := codec.Marshal(bucket)
				if err != nil {
					return fmt.Errorf("engine: stage %q map %d: %w", name, p, err)
				}
				enc[r] = block
				tm.ShuffleWriteBytes += int64(len(block))
			}
			tm.SerializeTime += time.Since(serStart)
			buckets[p] = enc
			tm.OutputItems = len(items)
			tm.Wall = time.Since(start)
			return nil
		})
		return err
	})
	stage.Tasks = tms
	stage.GCPause = gc
	d.ctx.recordStage(stage)
	if err != nil {
		return nil, err
	}

	// Reduce side: fetch and decode buckets in map-task order (deterministic).
	res := newResult(d.ctx, d.codec, numPartitions)
	stage = StageMetrics{Name: name + "/reduce", Kind: StageShuffle}
	gc, err = gcPauseDelta(func() error {
		var err error
		tms, err = d.ctx.runTasks(numPartitions, func(r int, tm *TaskMetrics) error {
			start := time.Now()
			var out []T
			serStart := time.Now()
			for m := 0; m < in; m++ {
				block := buckets[m][r]
				if block == nil {
					continue
				}
				tm.ShuffleReadBytes += int64(len(block))
				items, err := codec.Unmarshal(block)
				if err != nil {
					return fmt.Errorf("engine: stage %q reduce %d: %w", name, r, err)
				}
				out = append(out, items...)
			}
			tm.SerializeTime += time.Since(serStart)
			tm.OutputItems = len(out)
			if err := storePartition(res, r, out, tm); err != nil {
				return err
			}
			tm.Wall = time.Since(start)
			return nil
		})
		return err
	})
	stage.Tasks = tms
	stage.GCPause = gc
	d.ctx.recordStage(stage)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// PartitionBy is the wide operation: items are routed to the output
// partition returned by key (reduced modulo numPartitions). The map side
// serializes each bucket through the dataset's codec, charging shuffle-write
// bytes to map tasks; the reduce side decodes its buckets, charging
// shuffle-read bytes. This mirrors Spark's hash shuffle, where shuffle data
// is always serialized (and spilled to disk) even for in-memory datasets —
// the behaviour §5.3.1 measures.
func PartitionBy[T any](name string, d *Dataset[T], numPartitions int, key func(T) int) (*Dataset[T], error) {
	return shuffle(name, d, numPartitions, func(_, _ int, it T) int { return key(it) })
}

// Repartition rebalances items round-robin into numPartitions (a shuffle
// without a semantic key). The destination is derived from the item's index
// within its source partition (offset by the partition id so co-sized inputs
// don't all start at bucket 0) — a pure function of (p, idx), so concurrent
// map tasks share no counter state.
func Repartition[T any](name string, d *Dataset[T], numPartitions int) (*Dataset[T], error) {
	return shuffle(name, d, numPartitions, func(p, idx int, _ T) int { return p + idx })
}

// Union concatenates datasets partition-wise (a narrow operation: partitions
// are appended, not merged). Union is a barrier: pending narrow chains on
// every input are forced first.
func Union[T any](name string, ds ...*Dataset[T]) (*Dataset[T], error) {
	if len(ds) == 0 {
		return nil, fmt.Errorf("engine: stage %q: union of nothing", name)
	}
	for _, d := range ds {
		if err := d.Force(); err != nil {
			return nil, err
		}
	}
	ctx := ds[0].ctx
	var total int
	for _, d := range ds {
		total += d.NumPartitions()
	}
	res := newResult(ctx, ds[0].codec, total)
	stage := StageMetrics{Name: name, Kind: StageNarrow}
	type slot struct {
		d *Dataset[T]
		p int
	}
	slots := make([]slot, 0, total)
	for _, d := range ds {
		for p := 0; p < d.NumPartitions(); p++ {
			slots = append(slots, slot{d, p})
		}
	}
	var tms []TaskMetrics
	gc, err := gcPauseDelta(func() error {
		var err error
		tms, err = ctx.runTasks(total, func(i int, tm *TaskMetrics) error {
			start := time.Now()
			items, err := slots[i].d.partition(slots[i].p, tm)
			if err != nil {
				return err
			}
			tm.InputItems = len(items)
			tm.OutputItems = len(items)
			if err := storePartition(res, i, items, tm); err != nil {
				return err
			}
			tm.Wall = time.Since(start)
			return nil
		})
		return err
	})
	stage.Tasks = tms
	stage.GCPause = gc
	ctx.recordStage(stage)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SortPartitions sorts every partition in place by less — used after a
// PartitionBy keyed on genomic position to produce coordinate-sorted
// partitions (the Cleaner's sort step). Sorting needs the whole partition
// resident, so it is a barrier: the pending chain is forced and the sort runs
// as its own eager stage.
func SortPartitions[T any](name string, d *Dataset[T], less func(a, b T) bool) (*Dataset[T], error) {
	return runNarrow(name, d, d.codec, func(_ int, items []T) ([]T, error) {
		out := append([]T(nil), items...)
		sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
		return out, nil
	})
}

// CountByKey returns a map from key to item count — the read census of the
// dynamic repartitioner (§4.4 step 2: "reduce is performed ... and returns
// the number of reads in each partition to the driver"). CountByKey is an
// action: it forces any pending narrow chain first.
func CountByKey[T any](name string, d *Dataset[T], key func(T) int) (map[int]int, error) {
	if err := d.Force(); err != nil {
		return nil, err
	}
	partials := make([]map[int]int, d.NumPartitions())
	stage := StageMetrics{Name: name, Kind: StageAction}
	var tms []TaskMetrics
	gc, err := gcPauseDelta(func() error {
		var err error
		tms, err = d.ctx.runTasks(d.NumPartitions(), func(p int, tm *TaskMetrics) error {
			start := time.Now()
			items, err := d.partition(p, tm)
			if err != nil {
				return err
			}
			tm.InputItems = len(items)
			m := map[int]int{}
			for _, it := range items {
				m[key(it)]++
			}
			partials[p] = m
			tm.Wall = time.Since(start)
			return nil
		})
		return err
	})
	stage.Tasks = tms
	stage.GCPause = gc
	driverStart := time.Now()
	out := map[int]int{}
	if err == nil {
		for _, m := range partials {
			for k, v := range m {
				out[k] += v
			}
		}
	}
	stage.DriverTime = time.Since(driverStart)
	d.ctx.recordStage(stage)
	if err != nil {
		return nil, err
	}
	return out, nil
}
