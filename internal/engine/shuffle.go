package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// errShuffleCanceled marks a task that was aborted because a sibling task in
// the same shuffle failed first. It is never returned to callers: the root
// cause is.
var errShuffleCanceled = errors.New("engine: shuffle canceled by sibling task failure")

// shuffleCore is the wide-operation executor shared by every shuffle-shaped
// op (PartitionBy, Repartition, CombineByKey). It is generic over B, the
// decoded form of one map-side bucket, and O, the output item type:
//
//   - mapTask runs once per input partition m and calls emit(r, block) for
//     every non-empty serialized bucket as soon as that bucket is encoded
//     (per-bucket readiness: a long map task streams its buckets out rather
//     than landing them all at task end), charging shuffle-write bytes
//     itself; buckets it never emits are treated as empty;
//   - decode turns one arriving block into a B (called in arrival order);
//   - merge combines the decoded buckets of reduce partition r — indexed by
//     map task, zero values for empty buckets — into the output partition.
//     Merging strictly in map-task order is what keeps the output
//     deterministic whatever order buckets arrived in.
//
// Two execution strategies share the callbacks: the default pipelined
// push-based run (map and reduce tasks in ONE worker-pool pass; reduce task r
// consumes bucket (m, r) as soon as map task m publishes it) and the
// two-barrier run used when Context.DisablePipelinedShuffle is set. Both
// record the same two StageMetrics rows (name/map, name/reduce) so stage
// counts and byte accounting are strategy-independent. inMask/outMask are the
// planner-resolved edge masks recorded on those rows: what map tasks read
// from their input, and what the wire blocks carry to the reduce side.
type shuffleCore[B, O any] struct {
	ctx     *Context
	name    string
	in, out int
	inMask  FieldMask
	outMask FieldMask
	mapHint func(m int) int64
	// mapOwner maps a map-task index to the rank owning its input partition
	// (nil = canonical m % procs). Reduce ownership is always canonical: the
	// output dataset is freshly partitioned.
	mapOwner func(m int) int
	mapTask  func(m int, tm *TaskMetrics, emit func(r int, block []byte)) error
	decode   func(r int, block []byte, tm *TaskMetrics) (B, error)
	merge    func(r int, decoded []B, tm *TaskMetrics) ([]O, error)
	res      *Dataset[O]
}

func (sc *shuffleCore[B, O]) run() error {
	// With one worker there is no concurrency to pipeline into: the schedule
	// degenerates to all-maps-then-all-reduces either way, so take the
	// barrier path outright and skip the notification machinery (whose
	// per-task overhead would otherwise pollute single-worker traces).
	// Multi-process runs always take the pipelined path: the Exchange is the
	// only transport that moves buckets between ranks, so the barrier
	// strategy (a pure shared-memory shortcut) is ineligible whatever the
	// ablation flags say.
	if sc.ctx.procs() == 1 && (sc.ctx.DisablePipelinedShuffle || sc.ctx.workers == 1) {
		return sc.runBarrier()
	}
	return sc.runPipelined()
}

// finishReduce merges the decoded buckets of reduce partition r and stores
// the output. Wall excludes FetchWait so it stays a busy-time measure.
func (sc *shuffleCore[B, O]) finishReduce(r int, decoded []B, tm *TaskMetrics, start time.Time) error {
	out, err := sc.merge(r, decoded, tm)
	if err != nil {
		return err
	}
	tm.OutputItems = len(out)
	if err := storePartition(sc.res, r, out, tm); err != nil {
		return err
	}
	if wall := time.Since(start) - tm.FetchWait; wall > 0 {
		tm.Wall = wall
	}
	return nil
}

// runBarrier is the classic two-phase shuffle: every map task finishes before
// any reduce task starts. Kept as the ablation baseline
// (Context.DisablePipelinedShuffle) and as the reference implementation the
// pipelined run is property-tested against.
func (sc *shuffleCore[B, O]) runBarrier() error {
	buckets := make([][][]byte, sc.in) // buckets[mapTask][reducePartition]
	stage := StageMetrics{Name: sc.name + "/map", Kind: StageShuffle, InMask: sc.inMask, OutMask: sc.outMask}
	var tms []TaskMetrics
	gc, err := gcPauseDelta(func() error {
		var err error
		tms, err = sc.ctx.runTasksLPT(sc.in, sc.mapHint, func(m int, tm *TaskMetrics) error {
			start := time.Now()
			enc := make([][]byte, sc.out)
			if err := sc.mapTask(m, tm, func(r int, block []byte) { enc[r] = block }); err != nil {
				return err
			}
			buckets[m] = enc
			tm.Wall = time.Since(start)
			return nil
		})
		return err
	})
	stage.Tasks = tms
	stage.GCPause = gc
	sc.ctx.recordStage(stage)
	if err != nil {
		return err
	}

	// Reduce dispatch is size-aware too: the hint is the exact byte volume
	// this reduce partition will fetch.
	redHint := func(r int) int64 {
		var n int64
		for m := range buckets {
			n += int64(len(buckets[m][r]))
		}
		return n
	}
	stage = StageMetrics{Name: sc.name + "/reduce", Kind: StageShuffle, InMask: sc.outMask, OutMask: sc.outMask}
	gc, err = gcPauseDelta(func() error {
		var err error
		tms, err = sc.ctx.runTasksLPT(sc.out, redHint, func(r int, tm *TaskMetrics) error {
			start := time.Now()
			decoded := make([]B, sc.in)
			for m := 0; m < sc.in; m++ {
				block := buckets[m][r]
				if block == nil {
					continue
				}
				tm.ShuffleReadBytes += int64(len(block))
				b, err := sc.decode(r, block, tm)
				if err != nil {
					return err
				}
				decoded[m] = b
			}
			return sc.finishReduce(r, decoded, tm, start)
		})
		return err
	})
	stage.Tasks = tms
	stage.GCPause = gc
	sc.ctx.recordStage(stage)
	return err
}

// runPipelined executes map and reduce tasks in one worker-pool pass.
//
// Protocol: map task m pushes m onto reduce task r's notification channel
// the moment bucket (m, r) is encoded — per-bucket readiness, so a long map
// task streams its buckets out as it goes instead of landing them all at
// task end; buckets the map never emits are published as empty when the
// task completes. The channels are buffered to the map-task count, so
// publishing never blocks. Reduce task r receives map indices in
// publication order, decodes each bucket (m, r) as it arrives —
// overlapping decode with still-running maps — and finally merges the
// decoded buckets in map-task order, which makes the output independent of
// arrival order.
//
// Scheduling: map tasks are dispatched first (largest-first per mapHint),
// reduce tasks after, through one worker-slot semaphore. A reduce task that
// must block on an unpublished bucket RELEASES its worker slot for the
// duration of the wait and re-acquires it when data (or cancellation)
// arrives — a stalled reduce never starves runnable work, so every slot is
// always held by a task making progress. Map tasks never wait on other
// tasks, so the pipeline cannot deadlock: slot-holders run to completion,
// waiters are unblocked by map completions, and re-acquisition only
// competes with other runnable work. (With W=1 reduce tasks effectively
// start after all maps finish — the pipeline degrades to the barrier
// schedule but never deadlocks.)
//
// Failure: the first map/reduce error (or panic) closes cancel exactly once;
// every blocked reduce task unblocks through the cancel branch and returns.
// The pass always joins its WaitGroup, so no goroutine outlives the call,
// and the caller discards the result dataset on error — no partial output.
func (sc *shuffleCore[B, O]) runPipelined() error {
	in, out := sc.in, sc.out
	ctx := sc.ctx
	procs, rank := ctx.procs(), ctx.rank()
	mapOwned := func(m int) bool {
		if procs == 1 {
			return true
		}
		if sc.mapOwner != nil {
			return sc.mapOwner(m) == rank
		}
		return m%procs == rank
	}
	redOwned := func(r int) bool { return procs == 1 || r%procs == rank }
	// The exchange is the bucket transport for this stage: in-process it is
	// the shared block table + notify channels; under mproc, publishes to a
	// remote-owned reduce partition leave as bucket frames and arrivals from
	// sibling ranks feed the same notify channels the local path uses.
	ex := ctx.exec.Exchange(ctx.nextSeq(), in, out)
	defer ex.Close()
	mapTMs := make([]TaskMetrics, in)
	redTMs := make([]TaskMetrics, out)
	mapErrs := make([]error, in)
	redErrs := make([]error, out)
	cancel := make(chan struct{})
	var cancelOnce sync.Once
	abort := func() { cancelOnce.Do(func() { close(cancel) }) }
	sem := make(chan struct{}, ctx.workers)

	start := time.Now()
	mapEnd := make([]time.Duration, in)    // offset of map m's publish, from shuffle start
	redStart := make([]time.Duration, out) // offset of reduce r's first instruction

	runMap := func(m int) {
		tm := &mapTMs[m]
		defer func() {
			if p := recover(); p != nil {
				mapErrs[m] = fmt.Errorf("engine: task %d panicked: %v", m, p)
				abort()
			}
		}()
		select {
		case <-cancel:
			mapErrs[m] = errShuffleCanceled
			return
		case <-ex.Failed():
			mapErrs[m] = errShuffleCanceled
			return
		default:
		}
		t0 := time.Now()
		published := make([]bool, out)
		emit := func(r int, block []byte) {
			// Publish stores the block before signaling readiness, so the
			// reduce side's Block read is ordered after the store.
			published[r] = true
			ex.Publish(m, r, block)
		}
		if err := sc.mapTask(m, tm, emit); err != nil {
			// Buckets already emitted stay valid (reduces may have consumed
			// them); the ones never published are covered by cancellation.
			mapErrs[m] = err
			abort()
			return
		}
		tm.Wall = time.Since(t0)
		for r := 0; r < out; r++ {
			if !published[r] {
				ex.Publish(m, r, nil) // empty bucket: publish so reduce r can account for m
			}
		}
		mapEnd[m] = time.Since(start)
	}

	runReduce := func(r int) {
		tm := &redTMs[r]
		defer func() {
			if p := recover(); p != nil {
				redErrs[r] = fmt.Errorf("engine: task %d panicked: %v", r, p)
				abort()
			}
		}()
		redStart[r] = time.Since(start)
		t0 := time.Now()
		decoded := make([]B, in)
		for seen := 0; seen < in; seen++ {
			var m int
			select {
			case m = <-ex.Notify(r):
			default:
				// Nothing published yet: genuine fetch wait, measured only on
				// receives that actually block. Release the worker slot for the
				// duration — a stalled reduce must not starve runnable tasks —
				// and re-acquire before touching the bucket. The re-acquire wait
				// counts as FetchWait too: the task was only queued because it
				// had stalled on data.
				w0 := time.Now()
				<-sem
				var canceled bool
				select {
				case m = <-ex.Notify(r):
				case <-cancel:
					canceled = true
				case <-ex.Failed():
					// A sibling rank failed the job: this bucket is never
					// coming. The stage error surfaces via ex.Err below.
					canceled = true
				}
				sem <- struct{}{}
				tm.FetchWait += time.Since(w0)
				if canceled {
					redErrs[r] = errShuffleCanceled
					return
				}
			}
			block := ex.Block(m, r)
			if block == nil {
				continue
			}
			tm.ShuffleReadBytes += int64(len(block))
			b, err := sc.decode(r, block, tm)
			if err != nil {
				redErrs[r] = err
				abort()
				return
			}
			decoded[m] = b
		}
		if err := sc.finishReduce(r, decoded, tm, t0); err != nil {
			redErrs[r] = err
			abort()
		}
	}

	var wg sync.WaitGroup
	launch := func(fn func()) {
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			fn()
		}()
	}
	gc, _ := gcPauseDelta(func() error {
		for _, m := range lptOrder(in, sc.mapHint) {
			m := m
			mapTMs[m].Partition = m
			if !mapOwned(m) {
				continue
			}
			if procs > 1 {
				mapTMs[m].Ran = true
				mapTMs[m].Rank = rank
			}
			launch(func() { runMap(m) })
		}
		for r := 0; r < out; r++ {
			r := r
			redTMs[r].Partition = r
			if !redOwned(r) {
				continue
			}
			if procs > 1 {
				redTMs[r].Ran = true
				redTMs[r].Rank = rank
			}
			launch(func() { runReduce(r) })
		}
		wg.Wait()
		return nil
	})

	// PipelineOverlap: the span during which reduce tasks were already
	// running while map tasks were still publishing.
	var lastMap time.Duration
	for _, e := range mapEnd {
		if e > lastMap {
			lastMap = e
		}
	}
	firstRed := time.Duration(-1)
	for _, s := range redStart {
		if s > 0 && (firstRed < 0 || s < firstRed) {
			firstRed = s
		}
	}
	var overlap time.Duration
	if firstRed >= 0 && lastMap > firstRed {
		overlap = lastMap - firstRed
	}

	sc.ctx.recordStage(StageMetrics{Name: sc.name + "/map", Kind: StageShuffle, Tasks: mapTMs, GCPause: gc, InMask: sc.inMask, OutMask: sc.outMask})
	sc.ctx.recordStage(StageMetrics{Name: sc.name + "/reduce", Kind: StageShuffle, Tasks: redTMs, PipelineOverlap: overlap, InMask: sc.outMask, OutMask: sc.outMask})

	for _, err := range mapErrs {
		if err != nil && !errors.Is(err, errShuffleCanceled) {
			return err
		}
	}
	for _, err := range redErrs {
		if err != nil && !errors.Is(err, errShuffleCanceled) {
			return err
		}
	}
	// No local root cause: a sibling rank may have failed the job (its error
	// arrived as a control frame and unblocked our reduces via Failed).
	if err := ex.Err(); err != nil {
		return fmt.Errorf("engine: stage %q: %w", sc.name, err)
	}
	for _, errs := range [][]error{mapErrs, redErrs} {
		for _, err := range errs {
			if err != nil {
				return fmt.Errorf("engine: stage %q: %w", sc.name, err)
			}
		}
	}
	return nil
}

// shuffle is the wide-operation core for key-routed item movement: route
// decides the destination partition of each item from (map partition, item
// index, item), map tasks bucket and serialize, reduce tasks decode arriving
// buckets and concatenate them in map-task order.
//
// Shuffles are DEFERRED: the call records the op and returns a pending
// dataset; the shuffle executes when a downstream barrier forces it, so the
// projection planner knows how many columns the consumers actually need and
// the map side encodes only those into its buckets (fx declares what route
// itself reads). Under Context.DisableProjectionPlanner the shuffle runs
// eagerly at call time with full columns — the historical behavior and the
// ablation baseline.
func shuffle[T any](name string, d *Dataset[T], numPartitions int, route func(p, idx int, item T) int, fx fieldFX) (*Dataset[T], error) {
	if numPartitions < 1 {
		return nil, fmt.Errorf("engine: stage %q: numPartitions must be positive", name)
	}
	if d.ctx.DisableProjectionPlanner {
		res := &Dataset[T]{ctx: d.ctx, codec: d.codec}
		if err := runShuffle(name, d, res, numPartitions, route, fx, FieldsAll); err != nil {
			return nil, err
		}
		return res, nil
	}
	claimInput(d)
	res := &Dataset[T]{ctx: d.ctx, codec: d.codec, pendingParts: numPartitions}
	m := &planMeta{wide: true, inputs: []planInput{inputEdge(d, fx)}}
	m.run = func(need FieldMask) error {
		return runShuffle(name, d, res, numPartitions, route, fx, need)
	}
	res.meta = m
	return res, nil
}

// runShuffle executes one key-routed shuffle into res with the resolved
// downstream demand need: the input is forced (its own planning session, a
// no-op when the outer session already materialized it), map tasks read
// their partitions under fx.inNeed(need) — route's fields plus whatever the
// consumers demand — and buckets are encoded through Project(need), so wire
// blocks carry only the demanded columns. res stores the same projected
// blocks and remembers the narrowing in content.
func runShuffle[T any](name string, d *Dataset[T], res *Dataset[T], numPartitions int, route func(p, idx int, item T) int, fx fieldFX, need FieldMask) error {
	if d.ctx.DisableProjectionPlanner {
		need = FieldsAll
	}
	if err := d.Force(); err != nil {
		return err
	}
	mapNeed := fx.inNeed(need)
	codec := effectiveSerializer(d.ctx, d.codec)
	if need != FieldsAll {
		if pc, ok := codec.(ProjectableSerializer[T]); ok {
			codec = pc.Project(need)
		}
	}
	allocResult(res, numPartitions, need)
	in := d.NumPartitions()
	sc := &shuffleCore[[]T, T]{
		ctx:      d.ctx,
		name:     name,
		in:       in,
		out:      numPartitions,
		inMask:   mapNeed,
		outMask:  need,
		mapHint:  d.partitionSizeHint,
		mapOwner: d.ownerOf,
		res:      res,
		mapTask: func(p int, tm *TaskMetrics, emit func(r int, block []byte)) error {
			items, err := d.partitionNeed(p, tm, mapNeed)
			if err != nil {
				return err
			}
			tm.InputItems = len(items)
			local := make([][]T, numPartitions)
			for idx, it := range items {
				k := route(p, idx, it) % numPartitions
				if k < 0 {
					k += numPartitions
				}
				local[k] = append(local[k], it)
			}
			serStart := time.Now()
			for r, bucket := range local {
				if len(bucket) == 0 {
					continue
				}
				block, err := codec.Marshal(bucket)
				if err != nil {
					return fmt.Errorf("engine: stage %q map %d: %w", name, p, err)
				}
				tm.ShuffleWriteBytes += int64(len(block))
				emit(r, block) // pushed the moment it is encoded
			}
			tm.SerializeTime += time.Since(serStart)
			tm.OutputItems = len(items)
			return nil
		},
		decode: func(r int, block []byte, tm *TaskMetrics) ([]T, error) {
			serStart := time.Now()
			items, err := unmarshalCharged(codec, block, tm)
			tm.SerializeTime += time.Since(serStart)
			if err != nil {
				return nil, fmt.Errorf("engine: stage %q reduce %d: %w", name, r, err)
			}
			return items, nil
		},
		merge: func(_ int, decoded [][]T, _ *TaskMetrics) ([]T, error) {
			// Pre-size from decoded bucket lengths: one allocation instead of
			// append-doubling across in buckets.
			total := 0
			for _, chunk := range decoded {
				total += len(chunk)
			}
			out := make([]T, 0, total)
			for _, chunk := range decoded {
				out = append(out, chunk...)
			}
			return out, nil
		},
	}
	return sc.run()
}

// PartitionBy is the wide operation: items are routed to the output
// partition returned by key (reduced modulo numPartitions). The map side
// serializes each bucket through the dataset's codec, charging shuffle-write
// bytes to map tasks; the reduce side decodes its buckets, charging
// shuffle-read bytes. This mirrors Spark's hash shuffle, where shuffle data
// is always serialized (and spilled to disk) even for in-memory datasets —
// the behaviour §5.3.1 measures. Declare the fields key reads via opts
// (e.g. ReadsOnly(colfmt.FieldCoord)) so the planner can prune bucket
// columns down to key's reads plus the downstream demand.
func PartitionBy[T any](name string, d *Dataset[T], numPartitions int, key func(T) int, opts ...StageOption) (*Dataset[T], error) {
	return shuffle(name, d, numPartitions, func(_, _ int, it T) int { return key(it) }, resolveFX(true, opts))
}

// Repartition rebalances items round-robin into numPartitions (a shuffle
// without a semantic key). The destination is derived from the item's index
// within its source partition (offset by the partition id so co-sized inputs
// don't all start at bucket 0) — a pure function of (p, idx), so concurrent
// map tasks share no counter state and the router reads NO record fields:
// its declared effects are empty, and downstream demand passes through to
// the wire mask untouched.
func Repartition[T any](name string, d *Dataset[T], numPartitions int) (*Dataset[T], error) {
	return shuffle(name, d, numPartitions, func(p, idx int, _ T) int { return p + idx }, fieldFX{declared: true})
}

// Union concatenates datasets partition-wise (a narrow operation: partitions
// are appended, not merged). Union is a barrier: pending narrow chains and
// deferred wide ops on every input are forced first, with full demand (the
// union output has no effect declaration of its own).
func Union[T any](name string, ds ...*Dataset[T]) (*Dataset[T], error) {
	if len(ds) == 0 {
		return nil, fmt.Errorf("engine: stage %q: union of nothing", name)
	}
	for _, d := range ds {
		if err := d.Force(); err != nil {
			return nil, err
		}
	}
	ctx := ds[0].ctx
	var total int
	for _, d := range ds {
		total += d.NumPartitions()
	}
	res := newResult(ctx, ds[0].codec, total)
	stage := StageMetrics{Name: name, Kind: StageNarrow}
	type slot struct {
		d *Dataset[T]
		p int
	}
	slots := make([]slot, 0, total)
	for _, d := range ds {
		for p := 0; p < d.NumPartitions(); p++ {
			slots = append(slots, slot{d, p})
		}
	}
	// Each output slot is computed by the rank holding its source partition,
	// so the result needs a custom ownership map (the canonical i % procs
	// assignment would make ranks read partitions they don't hold).
	res.owner = func(i int) int { return slots[i].d.ownerOf(slots[i].p) }
	var tms []TaskMetrics
	gc, err := gcPauseDelta(func() error {
		var err error
		tms, err = ctx.runTasksOwned(total, func(i int) int64 { return slots[i].d.partitionSizeHint(slots[i].p) }, res.ownerOf, func(i int, tm *TaskMetrics) error {
			start := time.Now()
			items, err := slots[i].d.partition(slots[i].p, tm)
			if err != nil {
				return err
			}
			tm.InputItems = len(items)
			tm.OutputItems = len(items)
			if err := storePartition(res, i, items, tm); err != nil {
				return err
			}
			tm.Wall = time.Since(start)
			return nil
		})
		return err
	})
	stage.Tasks = tms
	stage.GCPause = gc
	ctx.recordStage(stage)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// SortPartitions sorts every partition in place by less — used after a
// PartitionBy keyed on genomic position to produce coordinate-sorted
// partitions (the Cleaner's sort step). Sorting needs the whole partition
// resident, so it is a barrier: the pending chain is forced and the sort runs
// as its own eager stage. opts declare the fields less reads; the output is
// a permutation of the input, so the declaration only narrows the eager
// stage's own read when the input is already column-pruned.
func SortPartitions[T any](name string, d *Dataset[T], less func(a, b T) bool, opts ...StageOption) (*Dataset[T], error) {
	return runNarrow(name, d, d.codec, resolveFX(true, opts), func(_ int, items []T) ([]T, error) {
		out := append([]T(nil), items...)
		sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
		return out, nil
	})
}
