package engine

// Field projection (projection pushdown) lets a stage that reads only a few
// record fields skip decoding the rest. The engine knows nothing about what
// the fields ARE — FieldMask bits are assigned by the codec package (colfmt
// maps them to SAM columns) — it only plumbs the mask from the consumption
// edge to the decode call:
//
//   - ReadingFields(d, mask) returns a read view of d declaring that every
//     consumer of the view depends only on the fields in mask. Ops built over
//     the view (and the fused chains rooted at it) decode d's serialized
//     blocks through codec.Project(mask) when the codec supports it.
//   - A fused stage's effective mask is the union of the masks of the source
//     views its chain reads: each source decodes under its own view's mask,
//     and sources read without a view decode everything (FieldsAll).
//   - Codecs that cannot project (gob, the Fig 4 SAM codecs) ignore the mask
//     and decode fully — projection is an optimization, never a semantics
//     change.
//
// DecodedBytes/PrunedBytes accounting rides the same seam: StatsSerializer
// codecs report exactly which bytes they touched, and non-stats codecs are
// charged the whole block.

// FieldMask is a bitset of record fields a consumer reads. Bit meanings
// belong to the projectable codec (see internal/colfmt's Field* constants);
// the engine treats the mask as opaque. The zero mask is legal and means "no
// field content" — a count-only read that decodes just block headers.
type FieldMask uint64

// FieldsAll selects every field — the mask of an undeclared (conservative)
// reader.
const FieldsAll = ^FieldMask(0)

// DecodeStats reports how many serialized bytes one Unmarshal call actually
// decoded versus skipped via projection.
type DecodeStats struct {
	// DecodedBytes counts bytes read to produce the result: block headers,
	// framing, and the columns selected by the mask.
	DecodedBytes int64
	// PrunedBytes counts bytes skipped outright because the projection mask
	// excluded their column.
	PrunedBytes int64
}

// ProjectableSerializer is a Serializer that can restrict both sides of the
// codec to a field subset. Project returns a serializer whose Unmarshal
// materializes only the fields in mask (other fields are zero values) and
// whose Marshal encodes only the fields in mask — partial blocks record the
// columns they carry, so the wire and the store shrink with the mask, not
// just the decode. Project(FieldsAll) must behave like the receiver, and
// projections must compose by intersection (Project(a).Project(b) ==
// Project(a&b)).
type ProjectableSerializer[T any] interface {
	Serializer[T]
	Project(mask FieldMask) Serializer[T]
}

// StatsSerializer is a Serializer that reports decode-byte accounting. The
// stats are returned per call (not accumulated on the serializer), keeping
// shared codec values race-free across concurrent tasks.
type StatsSerializer[T any] interface {
	Serializer[T]
	UnmarshalStats(data []byte) ([]T, DecodeStats, error)
}

// columnarSerializer marks serializers subject to the DisableColumnar
// ablation. It is satisfied structurally (no engine import needed by the
// codec package).
type columnarSerializer interface{ Columnar() bool }

// isColumnar reports whether codec opted into the columnar ablation switch.
func isColumnar(codec any) bool {
	c, ok := codec.(columnarSerializer)
	return ok && c.Columnar()
}

// effectiveSerializer resolves the serializer actually used for encoding:
// the attached codec, or the gob fallback when none is attached — or when the
// codec is columnar and the DisableColumnar ablation is on.
func effectiveSerializer[T any](ctx *Context, codec Serializer[T]) Serializer[T] {
	if codec == nil || (ctx.DisableColumnar && isColumnar(codec)) {
		return gobSerializer[T]{}
	}
	return codec
}

// ReadingFields returns a read view of d declaring that every consumer of the
// view reads only the fields in mask. The view shares d's storage; it only
// changes how serialized blocks decode: through codec.Project(mask) when d's
// decode codec is projectable, unchanged otherwise. Ops and fused chains
// built over the view inherit the mask at the point where they read d's
// partitions.
//
// The caller asserts the mask covers everything its consumers touch —
// projecting away a field a consumer then reads yields zero values, not an
// error. Views compose: a view of a view intersects the masks. On a still-
// lazy dataset the view is d itself (an unforced chain recomputes records
// instead of decoding them, so there is nothing to prune; wrap the
// materialized source feeding the chain instead).
func ReadingFields[T any](d *Dataset[T], mask FieldMask) *Dataset[T] {
	if d.isLazy() || (d.meta != nil && !d.meta.done.Load()) {
		return d
	}
	if d.hasProj {
		mask &= d.proj
	}
	res := *d
	res.hasProj = true
	res.proj = mask
	return &res
}

// unmarshalCharged decodes one block, charging decode-byte accounting to tm:
// exact decoded/pruned splits for StatsSerializer codecs, the whole block
// length otherwise.
func unmarshalCharged[T any](codec Serializer[T], block []byte, tm *TaskMetrics) ([]T, error) {
	if ss, ok := codec.(StatsSerializer[T]); ok {
		items, st, err := ss.UnmarshalStats(block)
		if err != nil {
			return nil, err
		}
		if tm != nil {
			tm.DecodedBytes += st.DecodedBytes
			tm.PrunedBytes += st.PrunedBytes
		}
		return items, nil
	}
	items, err := codec.Unmarshal(block)
	if err != nil {
		return nil, err
	}
	if tm != nil {
		tm.DecodedBytes += int64(len(block))
	}
	return items, nil
}
