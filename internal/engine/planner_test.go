package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// explodingCodec fails every Marshal — the materialization-time error source
// for the shared-prefix regression test.
type explodingCodec struct{}

func (explodingCodec) Name() string { return "exploding" }
func (explodingCodec) Marshal([]fakeRec) ([]byte, error) {
	return nil, fmt.Errorf("exploding codec: kaboom")
}
func (explodingCodec) Unmarshal([]byte) ([]fakeRec, error) {
	return nil, fmt.Errorf("exploding codec: kaboom")
}

// TestPlannerInfersChainPruning: a consumer declaring Rebuilds(A) over a
// columnar-stored source must decode only column A — the PR 6 manual
// Force()+ReadingFields dance, now inferred by the planner's backward pass.
func TestPlannerInfersChainPruning(t *testing.T) {
	ctx := NewContext(2)
	base := storeFake(t, ctx, fakeRecs(64), fakeColCodec{})
	ctx.ResetMetrics()
	proj, err := Map("proj", base, Serializer[fakeRec](fakeColCodec{}),
		func(r fakeRec) fakeRec { return fakeRec{A: r.A * 2} }, Rebuilds(fakeFieldA))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect("collect", proj)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range out {
		if r.A != int32(2*i) || r.B != 0 {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	m := ctx.Metrics()
	if m.TotalPrunedBytes() == 0 {
		t.Fatal("planner inferred no pruning: column B was decoded")
	}
	var fused *StageMetrics
	for i := range m.Stages {
		if strings.Contains(m.Stages[i].Name, "proj") {
			fused = &m.Stages[i]
		}
	}
	if fused == nil {
		t.Fatalf("no fused stage recorded: %+v", m.Stages)
	}
	if fused.InMask != fakeFieldA {
		t.Fatalf("fused stage InMask = %#x, want %#x", fused.InMask, fakeFieldA)
	}
}

// TestPlannerDiamondDisjointConsumers: two consumers of a shared prefix need
// disjoint fields; the planner must materialize the shared node under the
// UNION of the demands — narrowing to either consumer's mask alone would feed
// the other zeros.
func TestPlannerDiamondDisjointConsumers(t *testing.T) {
	ctx := NewContext(2)
	base := storeFake(t, ctx, fakeRecs(40), fakeColCodec{})
	shared, err := Map("shared", base, Serializer[fakeRec](fakeColCodec{}),
		func(r fakeRec) fakeRec { return r }, ReadsOnly(0))
	if err != nil {
		t.Fatal(err)
	}
	armA, err := Map("armA", shared, Serializer[fakeRec](fakeColCodec{}),
		func(r fakeRec) fakeRec { return fakeRec{A: r.A * 2} }, Rebuilds(fakeFieldA))
	if err != nil {
		t.Fatal(err)
	}
	armB, err := Map("armB", shared, Serializer[fakeRec](fakeColCodec{}),
		func(r fakeRec) fakeRec { return fakeRec{B: r.B + 7} }, Rebuilds(fakeFieldB))
	if err != nil {
		t.Fatal(err)
	}
	zipped := lazyZip2("zip", armA, armB, Serializer[fakeRec](fakeColCodec{}), fieldFX{},
		func(_ int, as, bs []fakeRec) ([]fakeRec, error) {
			if len(as) != len(bs) {
				return nil, fmt.Errorf("zip length mismatch: %d vs %d", len(as), len(bs))
			}
			out := make([]fakeRec, len(as))
			for i := range as {
				out[i] = fakeRec{A: as[i].A, B: bs[i].B}
			}
			return out, nil
		})
	out, err := Collect("collect", zipped)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 40 {
		t.Fatalf("got %d records", len(out))
	}
	for i, r := range out {
		if r.A != int32(2*i) || r.B != int32(1000+i+7) {
			t.Fatalf("record %d = %+v: a pruned field was read downstream", i, r)
		}
	}
	// The shared node materialized as its own stage under the union demand.
	var sharedStage *StageMetrics
	for i := range ctx.Metrics().Stages {
		s := ctx.Metrics().Stages[i]
		if s.Name == "shared" {
			sharedStage = &s
		}
	}
	if sharedStage == nil {
		t.Fatal("shared prefix did not materialize as its own stage")
	}
	if sharedStage.OutMask != fakeFieldA|fakeFieldB {
		t.Fatalf("shared stage OutMask = %#x, want union %#x",
			sharedStage.OutMask, fakeFieldA|fakeFieldB)
	}
}

// TestPlannerSharedPrefixErrorPropagates: materializing a shared prefix
// fails (codec error); the error must surface from the forcing action. The
// pre-planner engine force-materialized shared prefixes at claim time and
// dropped the error on the floor.
func TestPlannerSharedPrefixErrorPropagates(t *testing.T) {
	ctx := NewContext(2)
	ctx.StoreSerialized = true
	base := Parallelize(ctx, fakeRecs(20), 2)
	shared, err := MapPartitions("explode", base, Serializer[fakeRec](explodingCodec{}),
		func(_ int, items []fakeRec) ([]fakeRec, error) { return items, nil })
	if err != nil {
		t.Fatal(err)
	}
	armA, err := Map("armA", shared, nil, func(r fakeRec) fakeRec { return r })
	if err != nil {
		t.Fatal(err)
	}
	armB, err := Map("armB", shared, nil, func(r fakeRec) fakeRec { return r })
	if err != nil {
		t.Fatal(err)
	}
	// Claiming two consumers must not force (and must not swallow) anything.
	zipped := lazyZip2("zip", armA, armB, nil, fieldFX{},
		func(_ int, as, bs []fakeRec) ([]fakeRec, error) { return as, nil })
	if _, err := Collect("collect", zipped); err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("shared-prefix materialization error lost: %v", err)
	}
	// The failure is sticky on the shared node: a retry reports it too.
	if _, err := Collect("retry", armA); err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("sticky error lost on retry: %v", err)
	}
}

// TestPlannerShuffleWirePruning: when everything downstream of a shuffle
// needs only column A, the planner must encode the map-side buckets through
// Project(A) — measurably fewer shuffle bytes than the ablation, identical
// output.
func TestPlannerShuffleWirePruning(t *testing.T) {
	run := func(disable bool) ([]fakeRec, int64, Metrics) {
		ctx := NewContext(4)
		ctx.StoreSerialized = true
		ctx.DisableProjectionPlanner = disable
		d := WithCodec(Parallelize(ctx, fakeRecs(2000), 4), Serializer[fakeRec](fakeColCodec{}))
		sh, err := PartitionBy("pb", d, 8,
			func(r fakeRec) int { return int(r.A) }, ReadsOnly(fakeFieldA))
		if err != nil {
			t.Fatal(err)
		}
		proj, err := Map("proj", sh, Serializer[fakeRec](fakeColCodec{}),
			func(r fakeRec) fakeRec { return fakeRec{A: r.A + 1} }, Rebuilds(fakeFieldA))
		if err != nil {
			t.Fatal(err)
		}
		out, err := Collect("collect", proj)
		if err != nil {
			t.Fatal(err)
		}
		m := ctx.Metrics()
		var wire int64
		for _, s := range m.Stages {
			wire += s.ShuffleWriteBytes()
		}
		return out, wire, m
	}
	prunedOut, prunedWire, pm := run(false)
	fullOut, fullWire, _ := run(true)
	if !reflect.DeepEqual(prunedOut, fullOut) {
		t.Fatal("planner changed the shuffle output")
	}
	if prunedWire >= fullWire {
		t.Fatalf("wire pruning ineffective: planner %d bytes, ablation %d", prunedWire, fullWire)
	}
	// The shuffle stage rows record the resolved masks.
	found := false
	for _, s := range pm.Stages {
		if s.Kind == StageShuffle && strings.Contains(s.Name, "pb") {
			found = true
			if s.OutMask != fakeFieldA {
				t.Fatalf("shuffle stage %q OutMask = %#x, want %#x", s.Name, s.OutMask, fakeFieldA)
			}
		}
	}
	if !found {
		t.Fatalf("no shuffle stage recorded: %+v", pm.Stages)
	}
}

// TestPlannerAblationEagerWide: DisableProjectionPlanner restores the
// pre-planner contract — wide ops run at call time, partitions readable and
// metrics recorded with no Force.
func TestPlannerAblationEagerWide(t *testing.T) {
	ctx := NewContext(2)
	ctx.DisableProjectionPlanner = true
	d := Parallelize(ctx, intRange(100), 4)
	sh, err := PartitionBy("eager", d, 5, func(x int) int { return x })
	if err != nil {
		t.Fatal(err)
	}
	items, err := sh.partition(2, nil)
	if err != nil {
		t.Fatalf("eager shuffle output not readable without Force: %v", err)
	}
	if len(items) != 20 {
		t.Fatalf("partition 2 has %d items", len(items))
	}
	if ctx.Metrics().NumStages() == 0 {
		t.Fatal("eager shuffle recorded no stages")
	}
}

// plannerPropOp is one randomly generated, honestly declared operation:
// the callback's reads and writes are derived from the declared masks, so
// equivalence between planner-on and planner-off runs is exactly the
// planner's correctness property (inferred masks never prune a field some
// downstream op reads).
func plannerPropStep(r *rand.Rand, name string, d *Dataset[fakeRec]) (*Dataset[fakeRec], error) {
	masks := []FieldMask{0, fakeFieldA, fakeFieldB, fakeFieldA | fakeFieldB}
	reads := masks[r.Intn(len(masks))]
	writes := masks[r.Intn(len(masks))]
	val := func(rec fakeRec) int32 {
		var v int32
		if reads&fakeFieldA != 0 {
			v += rec.A
		}
		if reads&fakeFieldB != 0 {
			v += rec.B
		}
		return v
	}
	apply := func(rec fakeRec) fakeRec {
		v := val(rec)
		if writes&fakeFieldA != 0 {
			rec.A = v + 3
		}
		if writes&fakeFieldB != 0 {
			rec.B = v - 5
		}
		return rec
	}
	switch r.Intn(5) {
	case 0: // declared map
		return Map(name, d, Serializer[fakeRec](fakeColCodec{}), apply,
			WithEffects(FieldEffects{Reads: reads, Writes: writes}))
	case 1: // undeclared map (conservative: reads everything)
		return Map(name, d, Serializer[fakeRec](fakeColCodec{}), apply)
	case 2: // declared filter on the read fields
		return Filter(name, d, func(rec fakeRec) bool { return val(rec)%3 != 0 }, ReadsOnly(reads))
	case 3: // shuffle routed by the read fields
		return PartitionBy(name, d, 1+r.Intn(5), func(rec fakeRec) int { return int(val(rec)) }, ReadsOnly(reads))
	default: // sort barrier comparing the read fields
		return SortPartitions(name, d, func(a, b fakeRec) bool { return val(a) < val(b) }, ReadsOnly(reads))
	}
}

// TestPlannerRandomizedPlans is the planner equivalence property: random
// chains of honestly-declared ops produce identical results with the planner
// on and off (and identical again on a re-run with the same seed).
func TestPlannerRandomizedPlans(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		build := func(disable bool) []fakeRec {
			r := rand.New(rand.NewSource(int64(7000 + trial)))
			ctx := NewContext(1 + r.Intn(4))
			ctx.StoreSerialized = true
			ctx.DisableProjectionPlanner = disable
			d := WithCodec(Parallelize(ctx, fakeRecs(60+r.Intn(200)), 1+r.Intn(5)),
				Serializer[fakeRec](fakeColCodec{}))
			steps := 2 + r.Intn(6)
			for i := 0; i < steps; i++ {
				var err error
				d, err = plannerPropStep(r, fmt.Sprintf("t%d/op%d", trial, i), d)
				if err != nil {
					t.Fatal(err)
				}
			}
			out, err := Collect(fmt.Sprintf("t%d/collect", trial), d)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		on, off := build(false), build(true)
		if !reflect.DeepEqual(on, off) {
			t.Fatalf("trial %d: planner changed the result\n on: %v\noff: %v", trial, on, off)
		}
	}
}

// TestPlannerWidensForOutOfSessionConsumers: a prefix claimed by a consumer
// the current session cannot see must materialize with every field — the
// unseen consumer's demand is unknowable.
func TestPlannerWidensForOutOfSessionConsumers(t *testing.T) {
	ctx := NewContext(2)
	base := storeFake(t, ctx, fakeRecs(32), fakeColCodec{})
	shared, err := Map("shared", base, Serializer[fakeRec](fakeColCodec{}),
		func(r fakeRec) fakeRec { return r }, ReadsOnly(0))
	if err != nil {
		t.Fatal(err)
	}
	armA, err := Map("armA", shared, Serializer[fakeRec](fakeColCodec{}),
		func(r fakeRec) fakeRec { return fakeRec{A: r.A} }, Rebuilds(fakeFieldA))
	if err != nil {
		t.Fatal(err)
	}
	armB, err := Map("armB", shared, Serializer[fakeRec](fakeColCodec{}),
		func(r fakeRec) fakeRec { return fakeRec{B: r.B} }, Rebuilds(fakeFieldB))
	if err != nil {
		t.Fatal(err)
	}
	// Force arm A first: its session sees one of shared's two claims, so
	// shared must widen; arm B forced later still reads correct B values.
	outA, err := Collect("collectA", armA)
	if err != nil {
		t.Fatal(err)
	}
	outB, err := Collect("collectB", armB)
	if err != nil {
		t.Fatal(err)
	}
	for i := range outA {
		if outA[i].A != int32(i) {
			t.Fatalf("armA record %d = %+v", i, outA[i])
		}
	}
	for i := range outB {
		if outB[i].B != int32(1000+i) {
			t.Fatalf("armB record %d = %+v: widening failed, field pruned for a later consumer", i, outB[i])
		}
	}
}

// TestRetainKeepsCacheFullWidth: Retain models a pipeline process publishing
// a dataset for stages declared only later. A narrow action forced first
// must (a) keep its own decode pruning and (b) leave a full-width cache, so
// the late consumer — not even constructed at force time — reads real
// values instead of failing the materialized-mask guard.
func TestRetainKeepsCacheFullWidth(t *testing.T) {
	ctx := NewContext(2)
	base := storeFake(t, ctx, fakeRecs(48), fakeColCodec{})
	pub, err := Map("publish", base, Serializer[fakeRec](fakeColCodec{}),
		func(r fakeRec) fakeRec { return r }, ReadsOnly(0))
	if err != nil {
		t.Fatal(err)
	}
	pub.Retain()

	// Narrow consumer forces first: without the retained claim this session
	// would own pub's only edge and strand its cache at column A.
	ctx.ResetMetrics()
	narrow, err := Map("narrow", pub, Serializer[fakeRec](fakeColCodec{}),
		func(r fakeRec) fakeRec { return fakeRec{A: r.A} }, Rebuilds(fakeFieldA))
	if err != nil {
		t.Fatal(err)
	}
	outA, err := Collect("collectA", narrow)
	if err != nil {
		t.Fatal(err)
	}
	for i := range outA {
		if outA[i].A != int32(i) {
			t.Fatalf("narrow[%d] = %+v", i, outA[i])
		}
	}
	if ctx.Metrics().TotalPrunedBytes() == 0 {
		t.Fatal("the narrow session over a retained dataset should still decode-prune its own read")
	}

	// Late consumer, constructed after the force: full records.
	late, err := Collect("late", pub)
	if err != nil {
		t.Fatalf("late full-width read of a retained dataset: %v", err)
	}
	for i := range late {
		if late[i].A != int32(i) || late[i].B != int32(1000+i) {
			t.Fatalf("late[%d] = %+v: retained cache was stored pruned", i, late[i])
		}
	}
}

// TestUnretainedNarrowForce is the contrast case for Retain. A narrow
// chain materialized too narrow recomputes through its retained lineage
// closure, so a late wider consumer still sees full records. A WIDE op has
// no local recompute (its partitions came through a shuffle), so the same
// shape must fail loudly — the documented materialized-mask guard — rather
// than serve zero fields.
func TestUnretainedNarrowForce(t *testing.T) {
	ctx := NewContext(2)
	base := storeFake(t, ctx, fakeRecs(16), fakeColCodec{})

	// Narrow chain: late wider read recomputes from the cached source.
	chain, err := Map("chain", base, Serializer[fakeRec](fakeColCodec{}),
		func(r fakeRec) fakeRec { return r }, ReadsOnly(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := chain.forceSink(fakeFieldA); err != nil {
		t.Fatal(err)
	}
	late, err := Collect("late-chain", chain)
	if err != nil {
		t.Fatal(err)
	}
	for i := range late {
		if late[i].B != int32(1000+i) {
			t.Fatalf("late[%d] = %+v: wider read of a narrow chain must recompute, not serve zeroes", i, late[i])
		}
	}

	// Wide op: no recompute closure, the guard must fire.
	sh, err := PartitionBy("pb", base, 3, func(r fakeRec) int { return int(r.A) }, ReadsOnly(fakeFieldA))
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.forceSink(fakeFieldA); err != nil {
		t.Fatal(err)
	}
	if _, err := Collect("late-wide", sh); err == nil {
		t.Fatal("wider read of a narrowly materialized shuffle must error, not serve zero fields")
	}
}
