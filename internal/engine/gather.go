package engine

import "fmt"

// Action allgather: under an SPMD executor every rank runs only the action
// tasks it owns, then replicates the per-partition results so all ranks
// resume the driver program with identical values (lockstep). The transport
// moves opaque byte blobs; helpers here handle the encode/decode around
// Executor.Gather for the item-typed actions.

// allgatherParts replicates an action's per-partition item slices across
// ranks: this rank marshals the partitions it owns through the dataset's
// effective codec, allgathers the blobs, and decodes the partitions sibling
// ranks ran. Locally-run partitions keep their original items (codecs
// round-trip values exactly, so both sides agree). No-op with one process.
func allgatherParts[T any](d *Dataset[T], parts [][]T) error {
	ctx := d.ctx
	if ctx.procs() == 1 {
		return nil
	}
	rank := ctx.rank()
	codec := d.effectiveCodec()
	owned := make([][]byte, len(parts))
	for p := range parts {
		if d.ownerOf(p) != rank {
			continue
		}
		b, err := codec.Marshal(parts[p])
		if err != nil {
			return fmt.Errorf("engine: gather encode partition %d: %w", p, err)
		}
		owned[p] = b
	}
	blobs, err := ctx.exec.Gather(ctx.nextSeq(), len(parts), d.ownerOf, owned)
	if err != nil {
		return err
	}
	for p := range parts {
		if d.ownerOf(p) == rank {
			continue
		}
		items, err := codec.Unmarshal(blobs[p])
		if err != nil {
			return fmt.Errorf("engine: gather decode partition %d: %w", p, err)
		}
		parts[p] = items
	}
	return nil
}

// allgatherBlobs replicates pre-encoded per-partition blobs (countByKeySerial
// ships gob maps; Count ships uvarint counts). ownerOf follows the source
// dataset's partition ownership. No-op with one process.
func (c *Context) allgatherBlobs(n int, ownerOf func(int) int, owned [][]byte) ([][]byte, error) {
	if c.procs() == 1 {
		return owned, nil
	}
	return c.exec.Gather(c.nextSeq(), n, ownerOf, owned)
}
