package engine

import (
	"math"
	"runtime/metrics"
	"time"
)

// gcPauseMetric is the runtime/metrics histogram of stop-the-world GC pause
// latencies. Resolved once at init: newer runtimes publish the pause
// distribution under /sched/pauses/total/gc, older ones under /gc/pauses.
// Empty when neither exists (delta then reads as zero).
var gcPauseMetric = func() string {
	for _, name := range []string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"} {
		s := []metrics.Sample{{Name: name}}
		metrics.Read(s)
		if s[0].Value.Kind() == metrics.KindFloat64Histogram {
			return name
		}
	}
	return ""
}()

// readGCPauseHist samples the GC pause histogram. Unlike the former
// runtime.ReadMemStats implementation this does not itself stop the world,
// so bracketing every stage with it is cheap.
func readGCPauseHist() *metrics.Float64Histogram {
	if gcPauseMetric == "" {
		return nil
	}
	s := []metrics.Sample{{Name: gcPauseMetric}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindFloat64Histogram {
		return nil
	}
	return s[0].Value.Float64Histogram()
}

// gcPauseHistDelta estimates total pause time accrued between two samples of
// the pause histogram: for each bucket, the count delta times the bucket
// midpoint. Bucket boundaries are fixed per metric, so the two samples align
// index-for-index.
func gcPauseHistDelta(before, after *metrics.Float64Histogram) time.Duration {
	if before == nil || after == nil || len(after.Counts) != len(before.Counts) {
		return 0
	}
	var seconds float64
	for i, c := range after.Counts {
		delta := c - before.Counts[i]
		if delta == 0 {
			continue
		}
		lo, hi := after.Buckets[i], after.Buckets[i+1]
		var mid float64
		switch {
		case math.IsInf(lo, -1):
			mid = hi
		case math.IsInf(hi, 1):
			mid = lo
		default:
			mid = (lo + hi) / 2
		}
		seconds += float64(delta) * mid
	}
	return time.Duration(seconds * float64(time.Second))
}

// gcPauseDelta measures GC pause time accrued while fn runs (driver-wide,
// attributed to the stage that triggered it).
func gcPauseDelta(fn func() error) (time.Duration, error) {
	before := readGCPauseHist()
	err := fn()
	return gcPauseHistDelta(before, readGCPauseHist()), err
}
