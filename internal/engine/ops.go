package engine

import (
	"encoding/binary"
	"fmt"
	"time"
)

// MapPartitions is the fundamental narrow operation: fn transforms each
// partition independently. fn receives the partition index and its items.
//
// Narrow operations are LAZY: the call records a lineage node and returns
// immediately; a downstream barrier (action, shuffle, union, sort) forces the
// maximal pending chain as one fused stage (see lineage.go). Errors from fn
// therefore surface at the barrier, wrapped with this stage's name. Setting
// Context.DisableFusion restores eager one-stage-per-op execution.
//
// opts declare the op's field effects for the projection planner
// (WithEffects/ReadsOnly/Rebuilds); with none the op conservatively reads
// every field. Declared Writes only satisfy downstream demand when T and U
// are the same type — a type-changing op always rebuilds its records.
func MapPartitions[T, U any](name string, d *Dataset[T], codec Serializer[U], fn func(p int, items []T) ([]U, error), opts ...StageOption) (*Dataset[U], error) {
	fx := resolveFX(sameRecordType[T, U](), opts)
	if d.ctx.DisableFusion {
		return runNarrow(name, d, codec, fx, fn)
	}
	return lazyNarrow(name, d, codec, fx, fn), nil
}

// runNarrow is the eager narrow stage executor: one task launch per
// partition, storing every output partition. Barriers that are themselves
// narrow stages (SortPartitions) and fusion-disabled contexts run through it.
// The output is stored with full field content (an eager stage cannot know
// its consumers' demands), but the input is still read under the op's
// declared effects — fx.inNeed(FieldsAll) — so a Rebuilds-style op prunes
// its source decode even without fusion.
func runNarrow[T, U any](name string, d *Dataset[T], codec Serializer[U], fx fieldFX, fn func(p int, items []T) ([]U, error)) (*Dataset[U], error) {
	if err := d.Force(); err != nil {
		return nil, err
	}
	inNeed := fx.inNeed(FieldsAll)
	res := newResult(d.ctx, codec, d.NumPartitions())
	res.owner = d.owner // narrow: output p derives from input p, same rank
	stage := StageMetrics{Name: name, Kind: StageNarrow, InMask: inNeed, OutMask: FieldsAll}
	var tms []TaskMetrics
	gc, err := gcPauseDelta(func() error {
		var err error
		tms, err = d.ctx.runTasksOwned(d.NumPartitions(), d.partitionSizeHint, d.ownerOf, func(p int, tm *TaskMetrics) error {
			start := time.Now()
			in, err := d.partitionNeed(p, tm, inNeed)
			if err != nil {
				return err
			}
			tm.InputItems = len(in)
			out, err := fn(p, in)
			if err != nil {
				return fmt.Errorf("engine: stage %q partition %d: %w", name, p, err)
			}
			tm.OutputItems = len(out)
			if err := storePartition(res, p, out, tm); err != nil {
				return err
			}
			tm.Wall = time.Since(start)
			return nil
		})
		return err
	})
	stage.Tasks = tms
	stage.GCPause = gc
	d.ctx.recordStage(stage)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Map applies fn to every item.
func Map[T, U any](name string, d *Dataset[T], codec Serializer[U], fn func(T) U, opts ...StageOption) (*Dataset[U], error) {
	return MapPartitions(name, d, codec, func(_ int, items []T) ([]U, error) {
		out := make([]U, len(items))
		for i, it := range items {
			out[i] = fn(it)
		}
		return out, nil
	}, opts...)
}

// FlatMap applies fn to every item and concatenates the results.
func FlatMap[T, U any](name string, d *Dataset[T], codec Serializer[U], fn func(T) []U, opts ...StageOption) (*Dataset[U], error) {
	return MapPartitions(name, d, codec, func(_ int, items []T) ([]U, error) {
		var out []U
		for _, it := range items {
			out = append(out, fn(it)...)
		}
		return out, nil
	}, opts...)
}

// Filter keeps items for which pred is true. A Filter that declares
// ReadsOnly(mask) examines only those fields and passes every record through
// untouched — the planner's canonical pass-through op.
func Filter[T any](name string, d *Dataset[T], pred func(T) bool, opts ...StageOption) (*Dataset[T], error) {
	return MapPartitions(name, d, d.codec, func(_ int, items []T) ([]T, error) {
		var out []T
		for _, it := range items {
			if pred(it) {
				out = append(out, it)
			}
		}
		return out, nil
	}, opts...)
}

// ZipPartitions2 applies fn to aligned partitions of two co-partitioned
// datasets. The partition counts must match; this is a narrow operation
// (the Fig 7b fused bundle-map relies on it) and is lazy like MapPartitions:
// both inputs' pending chains fuse into the recorded node. Declared effects
// apply per input: Writes bits only satisfy downstream demand for inputs
// sharing the output's record type.
func ZipPartitions2[A, B, U any](name string, a *Dataset[A], b *Dataset[B], codec Serializer[U], fn func(p int, as []A, bs []B) ([]U, error), opts ...StageOption) (*Dataset[U], error) {
	if a.NumPartitions() != b.NumPartitions() {
		return nil, fmt.Errorf("engine: stage %q: partition counts differ: %d vs %d", name, a.NumPartitions(), b.NumPartitions())
	}
	fx := resolveFX(true, opts) // per-input spaces are checked edge-by-edge
	if !a.ctx.DisableFusion {
		return lazyZip2(name, a, b, codec, fx, fn), nil
	}
	if err := b.Force(); err != nil {
		return nil, err
	}
	fxB := zipFX(fx, sameRecordType[B, U]())
	res, err := runNarrow(name, a, codec, zipFX(fx, sameRecordType[A, U]()), func(p int, as []A) ([]U, error) {
		bs, err := b.partitionNeed(p, nil, fxB.inNeed(FieldsAll))
		if err != nil {
			return nil, err
		}
		return fn(p, as, bs)
	})
	return res, err
}

// ZipPartitions3 applies fn to aligned partitions of three co-partitioned
// datasets — the bundle join of Fig 7 (FASTA + SAM + VCF per partition).
// Lazy like ZipPartitions2.
func ZipPartitions3[A, B, C, U any](name string, a *Dataset[A], b *Dataset[B], c *Dataset[C], codec Serializer[U], fn func(p int, as []A, bs []B, cs []C) ([]U, error), opts ...StageOption) (*Dataset[U], error) {
	if a.NumPartitions() != b.NumPartitions() || a.NumPartitions() != c.NumPartitions() {
		return nil, fmt.Errorf("engine: stage %q: partition counts differ: %d/%d/%d", name, a.NumPartitions(), b.NumPartitions(), c.NumPartitions())
	}
	fx := resolveFX(true, opts)
	if !a.ctx.DisableFusion {
		return lazyZip3(name, a, b, c, codec, fx, fn), nil
	}
	if err := b.Force(); err != nil {
		return nil, err
	}
	if err := c.Force(); err != nil {
		return nil, err
	}
	fxB := zipFX(fx, sameRecordType[B, U]())
	fxC := zipFX(fx, sameRecordType[C, U]())
	return runNarrow(name, a, codec, zipFX(fx, sameRecordType[A, U]()), func(p int, as []A) ([]U, error) {
		bs, err := b.partitionNeed(p, nil, fxB.inNeed(FieldsAll))
		if err != nil {
			return nil, err
		}
		cs, err := c.partitionNeed(p, nil, fxC.inNeed(FieldsAll))
		if err != nil {
			return nil, err
		}
		return fn(p, as, bs, cs)
	})
}

// Collect gathers all partitions to the driver in partition order. Collect is
// an action: it forces any pending narrow chain (and deferred wide op) first,
// demanding every field — collected records leave the planner's sight.
func Collect[T any](name string, d *Dataset[T]) ([]T, error) {
	if err := d.Force(); err != nil {
		return nil, err
	}
	parts := make([][]T, d.NumPartitions())
	stage := StageMetrics{Name: name, Kind: StageAction}
	var tms []TaskMetrics
	gc, err := gcPauseDelta(func() error {
		var err error
		tms, err = d.ctx.runTasksOwned(d.NumPartitions(), d.partitionSizeHint, d.ownerOf, func(p int, tm *TaskMetrics) error {
			start := time.Now()
			items, err := d.partition(p, tm)
			if err != nil {
				return err
			}
			tm.InputItems = len(items)
			parts[p] = items
			tm.Wall = time.Since(start)
			return nil
		})
		return err
	})
	stage.Tasks = tms
	stage.GCPause = gc
	driverStart := time.Now()
	if err == nil {
		err = allgatherParts(d, parts)
	}
	var out []T
	if err == nil {
		total := 0
		for _, p := range parts {
			total += len(p)
		}
		out = make([]T, 0, total)
		for _, p := range parts {
			out = append(out, p...)
		}
	}
	stage.DriverTime = time.Since(driverStart)
	d.ctx.recordStage(stage)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Reduce folds all items with an associative function. Each task reduces its
// partition; the driver reduces partial results serially (the Collect-style
// serial step that throttles BQSR in §5.2.2). Reduce is an action: it forces
// any pending narrow chain first.
func Reduce[T any](name string, d *Dataset[T], fn func(T, T) T) (T, bool, error) {
	var zero T
	if err := d.Force(); err != nil {
		return zero, false, err
	}
	type partial struct {
		v  T
		ok bool
	}
	partials := make([]partial, d.NumPartitions())
	stage := StageMetrics{Name: name, Kind: StageAction}
	var tms []TaskMetrics
	gc, err := gcPauseDelta(func() error {
		var err error
		tms, err = d.ctx.runTasksOwned(d.NumPartitions(), d.partitionSizeHint, d.ownerOf, func(p int, tm *TaskMetrics) error {
			start := time.Now()
			items, err := d.partition(p, tm)
			if err != nil {
				return err
			}
			tm.InputItems = len(items)
			if len(items) > 0 {
				acc := items[0]
				for _, it := range items[1:] {
					acc = fn(acc, it)
				}
				partials[p] = partial{v: acc, ok: true}
			}
			tm.Wall = time.Since(start)
			return nil
		})
		return err
	})
	stage.Tasks = tms
	stage.GCPause = gc
	driverStart := time.Now()
	if err == nil && d.ctx.procs() > 1 {
		// Allgather the per-partition partials (as 0- or 1-item slices through
		// the codec) so every rank folds the identical sequence below.
		pparts := make([][]T, len(partials))
		for p := range partials {
			if partials[p].ok {
				pparts[p] = []T{partials[p].v}
			} else {
				pparts[p] = []T{}
			}
		}
		err = allgatherParts(d, pparts)
		if err == nil {
			for p := range partials {
				if len(pparts[p]) > 0 {
					partials[p] = partial{v: pparts[p][0], ok: true}
				} else {
					partials[p] = partial{}
				}
			}
		}
	}
	var acc T
	found := false
	if err == nil {
		for _, p := range partials {
			if !p.ok {
				continue
			}
			if !found {
				acc, found = p.v, true
			} else {
				acc = fn(acc, p.v)
			}
		}
	}
	stage.DriverTime = time.Since(driverStart)
	d.ctx.recordStage(stage)
	if err != nil {
		return zero, false, err
	}
	return acc, found, nil
}

// Count returns the total number of items. Count is an action: it forces any
// pending narrow chain first. It reads through a zero-field projection view:
// a columnar-stored dataset decodes only block headers (the record count is
// in the header), pruning every column. The force itself still demands every
// field — forcing with a zero demand would materialize empty records for
// every later reader.
func Count[T any](name string, d *Dataset[T]) (int, error) {
	if err := d.Force(); err != nil {
		return 0, err
	}
	src := ReadingFields(d, 0)
	counts := make([]int, src.NumPartitions())
	stage := StageMetrics{Name: name, Kind: StageAction}
	var tms []TaskMetrics
	gc, err := gcPauseDelta(func() error {
		var err error
		tms, err = d.ctx.runTasksOwned(src.NumPartitions(), src.partitionSizeHint, src.ownerOf, func(p int, tm *TaskMetrics) error {
			start := time.Now()
			items, err := src.partitionNeed(p, tm, 0)
			if err != nil {
				return err
			}
			counts[p] = len(items)
			tm.InputItems = len(items)
			tm.Wall = time.Since(start)
			return nil
		})
		return err
	})
	stage.Tasks = tms
	stage.GCPause = gc
	if err == nil && d.ctx.procs() > 1 {
		rank := d.ctx.rank()
		owned := make([][]byte, len(counts))
		for p := range counts {
			if src.ownerOf(p) != rank {
				continue
			}
			var tmp [binary.MaxVarintLen64]byte
			owned[p] = append([]byte(nil), tmp[:binary.PutUvarint(tmp[:], uint64(counts[p]))]...)
		}
		var blobs [][]byte
		blobs, err = d.ctx.allgatherBlobs(len(counts), src.ownerOf, owned)
		if err == nil {
			for p := range counts {
				if src.ownerOf(p) == rank {
					continue
				}
				v, read := binary.Uvarint(blobs[p])
				if read <= 0 {
					err = fmt.Errorf("engine: stage %q: corrupt gathered count for partition %d", name, p)
					break
				}
				counts[p] = int(v)
			}
		}
	}
	d.ctx.recordStage(stage)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return total, nil
}
