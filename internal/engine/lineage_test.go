package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// countingCodec wraps gobSerializer and counts codec invocations, so tests
// can assert that fused chains pay no intermediate round-trips.
type countingCodec[T any] struct {
	marshals, unmarshals *atomic.Int64
}

func newCountingCodec[T any]() countingCodec[T] {
	return countingCodec[T]{marshals: new(atomic.Int64), unmarshals: new(atomic.Int64)}
}

func (countingCodec[T]) Name() string { return "counting" }

func (c countingCodec[T]) Marshal(items []T) ([]byte, error) {
	c.marshals.Add(1)
	return gobSerializer[T]{}.Marshal(items)
}

func (c countingCodec[T]) Unmarshal(data []byte) ([]T, error) {
	c.unmarshals.Add(1)
	return gobSerializer[T]{}.Unmarshal(data)
}

func TestFusionSingleStagePerChain(t *testing.T) {
	ctx := NewContext(2)
	d := Parallelize(ctx, intRange(100), 4)
	m, err := Map("double", d, nil, func(x int) int { return 2 * x })
	if err != nil {
		t.Fatal(err)
	}
	f, err := Filter("evens", m, func(x int) bool { return x%4 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	fm, err := FlatMap("expand", f, nil, func(x int) []int { return []int{x, x + 1} })
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Metrics().NumStages() != 0 {
		t.Fatalf("narrow ops must not execute eagerly: %d stages", ctx.Metrics().NumStages())
	}
	out, err := Collect("c", fm)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("collected %d items, want 100", len(out))
	}
	m2 := ctx.Metrics()
	// One fused narrow stage + the collect action.
	if m2.NumStages() != 2 {
		t.Fatalf("stages = %d, want 2 (fused chain + action)", m2.NumStages())
	}
	fused := m2.Stages[0]
	if fused.Kind != StageNarrow {
		t.Fatalf("fused stage kind = %v", fused.Kind)
	}
	if fused.Name != "double+evens+expand" {
		t.Fatalf("fused stage name = %q", fused.Name)
	}
	if fused.FusedOps != 3 {
		t.Fatalf("FusedOps = %d, want 3", fused.FusedOps)
	}
	if m2.TotalFusedOps() != 3 {
		t.Fatalf("TotalFusedOps = %d, want 3", m2.TotalFusedOps())
	}
	// Task metrics flow through the chain: input of the chain, output of the
	// final op.
	var in, outItems int
	for _, tk := range fused.Tasks {
		in += tk.InputItems
		outItems += tk.OutputItems
	}
	if in != 100 || outItems != 100 {
		t.Fatalf("fused stage items in=%d out=%d, want 100/100", in, outItems)
	}
}

func TestFusionNoIntermediateCodecRoundTrips(t *testing.T) {
	ctx := NewContext(2)
	ctx.StoreSerialized = true
	codec := newCountingCodec[int]()
	d := WithCodec(Parallelize(ctx, intRange(200), 4), codec)
	cur := d
	for i := 0; i < 3; i++ {
		var err error
		cur, err = Map(fmt.Sprintf("m%d", i), cur, Serializer[int](codec), func(x int) int { return x + 1 })
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Collect("c", cur); err != nil {
		t.Fatal(err)
	}
	// One encode per partition at the force point, one decode per partition
	// at the collect — nothing in between.
	if got := codec.marshals.Load(); got != 4 {
		t.Fatalf("marshal calls = %d, want 4 (one per partition)", got)
	}
	if got := codec.unmarshals.Load(); got != 4 {
		t.Fatalf("unmarshal calls = %d, want 4 (one per partition)", got)
	}

	// The unfused baseline pays a round-trip per op.
	eager := NewContext(2)
	eager.StoreSerialized = true
	eager.DisableFusion = true
	ecodec := newCountingCodec[int]()
	ed := WithCodec(Parallelize(eager, intRange(200), 4), ecodec)
	for i := 0; i < 3; i++ {
		var err error
		ed, err = Map(fmt.Sprintf("m%d", i), ed, Serializer[int](ecodec), func(x int) int { return x + 1 })
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Collect("c", ed); err != nil {
		t.Fatal(err)
	}
	if got := ecodec.marshals.Load(); got <= 4 {
		t.Fatalf("eager marshal calls = %d, want > 4", got)
	}
	if got := ecodec.unmarshals.Load(); got <= 4 {
		t.Fatalf("eager unmarshal calls = %d, want > 4", got)
	}
}

// chainSpec drives the equivalence property: a random chain of narrow ops
// applied over random input.
type chainSpec struct {
	items []int16
	ops   []uint8
}

// applyChain builds the op chain over d in ctx and returns the collected
// result. Op kinds cycle map/filter/flatMap with parameters from the spec.
func applyChain(ctx *Context, spec chainSpec, serialized bool) ([]int, error) {
	in := make([]int, len(spec.items))
	for i, v := range spec.items {
		in[i] = int(v)
	}
	d := Parallelize(ctx, in, 3)
	if serialized {
		d = WithCodec(d, gobSerializer[int]{})
	}
	cur := d
	for i, op := range spec.ops {
		var err error
		name := fmt.Sprintf("op%d", i)
		switch k := int(op % 3); k {
		case 0:
			mul := int(op%5) + 1
			cur, err = Map(name, cur, cur.Codec(), func(x int) int { return x*mul + k })
		case 1:
			mod := int(op%4) + 2
			cur, err = Filter(name, cur, func(x int) bool { return x%mod != 0 })
		default:
			rep := int(op % 3)
			cur, err = FlatMap(name, cur, cur.Codec(), func(x int) []int {
				out := make([]int, rep)
				for j := range out {
					out[j] = x + j
				}
				return out
			})
		}
		if err != nil {
			return nil, err
		}
	}
	return Collect("collect", cur)
}

// Property: fused execution is item-for-item equivalent to the eager path
// for random chains of map/filter/flatMap, with and without serialized
// storage.
func TestFusionEquivalenceProperty(t *testing.T) {
	for _, serialized := range []bool{false, true} {
		name := "materialized"
		if serialized {
			name = "serialized"
		}
		t.Run(name, func(t *testing.T) {
			f := func(items []int16, ops []uint8) bool {
				if len(ops) > 8 {
					ops = ops[:8]
				}
				spec := chainSpec{items: items, ops: ops}
				fusedCtx := NewContext(2)
				fusedCtx.StoreSerialized = serialized
				eagerCtx := NewContext(2)
				eagerCtx.StoreSerialized = serialized
				eagerCtx.DisableFusion = true
				fused, err := applyChain(fusedCtx, spec, serialized)
				if err != nil {
					return false
				}
				eager, err := applyChain(eagerCtx, spec, serialized)
				if err != nil {
					return false
				}
				if len(fused) != len(eager) {
					return false
				}
				for i := range fused {
					if fused[i] != eager[i] {
						return false
					}
				}
				// The fused run needs exactly one narrow stage per chain (plus
				// the collect action); the eager run needs one per op.
				fm, em := fusedCtx.Metrics(), eagerCtx.Metrics()
				wantFused := 2
				if len(ops) == 0 {
					wantFused = 1
				}
				return fm.NumStages() == wantFused && em.NumStages() == len(ops)+1
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFusionDiamondForcesSharedPrefix(t *testing.T) {
	ctx := NewContext(2)
	var rootRuns atomic.Int64
	d := Parallelize(ctx, intRange(60), 3)
	shared, err := Map("shared", d, nil, func(x int) int {
		rootRuns.Add(1)
		return x + 1
	})
	if err != nil {
		t.Fatal(err)
	}
	left, err := Map("left", shared, nil, func(x int) int { return x * 2 })
	if err != nil {
		t.Fatal(err)
	}
	right, err := Map("right", shared, nil, func(x int) int { return x * 3 })
	if err != nil {
		t.Fatal(err)
	}
	ls, err := Collect("l", left)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Collect("r", right)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 60 || len(rs) != 60 || ls[0] != 2 || rs[0] != 3 {
		t.Fatalf("diamond results wrong: %d/%d items", len(ls), len(rs))
	}
	// The shared prefix is a DAG branch point: it must run once, not once per
	// branch.
	if got := rootRuns.Load(); got != 60 {
		t.Fatalf("shared op ran %d times, want 60 (once per item)", got)
	}
}

func TestFusionForceIsIdempotent(t *testing.T) {
	ctx := NewContext(2)
	d := Parallelize(ctx, intRange(50), 4)
	m, err := Map("m", d, nil, func(x int) int { return x + 1 })
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Force(); err != nil {
		t.Fatal(err)
	}
	stages := ctx.Metrics().NumStages()
	if err := m.Force(); err != nil {
		t.Fatal(err)
	}
	if _, err := Count("count", m); err != nil {
		t.Fatal(err)
	}
	// Re-forcing and acting on a materialized dataset must not re-run the
	// fused stage.
	if got := ctx.Metrics().NumStages(); got != stages+1 {
		t.Fatalf("stages = %d, want %d (+1 action only)", got, stages+1)
	}
}

func TestFusionZipChainsFuse(t *testing.T) {
	ctx := NewContext(2)
	a := Parallelize(ctx, []int{1, 2, 3, 4}, 2)
	b := Parallelize(ctx, []int{10, 20, 30, 40}, 2)
	am, err := Map("a-inc", a, nil, func(x int) int { return x + 1 })
	if err != nil {
		t.Fatal(err)
	}
	bm, err := Map("b-inc", b, nil, func(x int) int { return x + 1 })
	if err != nil {
		t.Fatal(err)
	}
	z, err := ZipPartitions2("zip", am, bm, nil, func(_ int, as, bs []int) ([]int, error) {
		out := make([]int, len(as))
		for i := range as {
			out[i] = as[i] + bs[i]
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Map("sum", z, nil, func(x int) int { return x })
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect("c", sum)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{13, 24, 35, 46}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("zip chain = %v, want %v", out, want)
		}
	}
	m := ctx.Metrics()
	// Both input chains, the zip and the trailing map fuse into one stage.
	if m.NumStages() != 2 {
		t.Fatalf("stages = %d, want 2", m.NumStages())
	}
	fused := m.Stages[0]
	if fused.FusedOps != 4 {
		t.Fatalf("FusedOps = %d, want 4 (a-inc, b-inc, zip, sum)", fused.FusedOps)
	}
	for _, op := range []string{"a-inc", "b-inc", "zip", "sum"} {
		if !strings.Contains(fused.Name, op) {
			t.Fatalf("fused name %q missing op %q", fused.Name, op)
		}
	}
}

func TestFusionShuffleIsBarrier(t *testing.T) {
	ctx := NewContext(2)
	d := Parallelize(ctx, intRange(100), 4)
	m, err := Map("pre", d, nil, func(x int) int { return x + 1 })
	if err != nil {
		t.Fatal(err)
	}
	s, err := PartitionBy("shuf", m, 4, func(x int) int { return x })
	if err != nil {
		t.Fatal(err)
	}
	post, err := Map("post", s, nil, func(x int) int { return x * 2 })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Count("count", post); err != nil {
		t.Fatal(err)
	}
	m2 := ctx.Metrics()
	// fused(pre) + shuf/map + shuf/reduce + fused(post) + count = 5 stages;
	// the chain does not fuse across the shuffle.
	if m2.NumStages() != 5 {
		names := make([]string, 0, len(m2.Stages))
		for _, st := range m2.Stages {
			names = append(names, st.Name)
		}
		t.Fatalf("stages = %d (%v), want 5", m2.NumStages(), names)
	}
	if m2.Stages[0].Name != "pre" || m2.Stages[0].FusedOps != 1 {
		t.Fatalf("pre-shuffle fused stage wrong: %+v", m2.Stages[0])
	}
}

func TestWithCodecOnLazyDataset(t *testing.T) {
	ctx := NewContext(2)
	ctx.StoreSerialized = true
	d := Parallelize(ctx, intRange(40), 4)
	m, err := Map("m", d, nil, func(x int) int { return x + 1 })
	if err != nil {
		t.Fatal(err)
	}
	coded := WithCodec(m, gobSerializer[int]{})
	if err := coded.Force(); err != nil {
		t.Fatal(err)
	}
	if coded.MemoryBytes() == 0 {
		t.Fatal("codec-attached fork should materialize serialized")
	}
	// The original lazy dataset is independent and still usable.
	out, err := Collect("c", m)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 40 || out[0] != 1 {
		t.Fatalf("original chain broken: %v...", out[:2])
	}
}

func TestRepartitionDeterministic(t *testing.T) {
	ctx := NewContext(4)
	d := FromPartitions(ctx, [][]int{intRange(50), intRange(30), nil, intRange(20)})
	a, err := Repartition("r1", d, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Repartition("r2", d, 3)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 3; p++ {
		ap, _ := a.partition(p, nil)
		bp, _ := b.partition(p, nil)
		if len(ap) != len(bp) {
			t.Fatalf("partition %d sizes differ: %d vs %d", p, len(ap), len(bp))
		}
		for i := range ap {
			if ap[i] != bp[i] {
				t.Fatalf("partition %d diverges at %d", p, i)
			}
		}
	}
}

// BenchmarkAblationFusion compares a fused chain of three narrow ops against
// the eager per-op baseline, under serialized storage — the engine-level
// ablation of the paper's narrow-stage fusion claim (§4.3). Fused runs
// should show fewer allocations (no intermediate partitions) and no
// intermediate codec round-trips.
func BenchmarkAblationFusion(b *testing.B) {
	run := func(b *testing.B, disableFusion bool) {
		ctx := NewContext(4)
		ctx.StoreSerialized = true
		ctx.DisableFusion = disableFusion
		base := WithCodec(Parallelize(ctx, intRange(100000), 16), gobSerializer[int]{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := Map("m", base, gobSerializer[int]{}, func(x int) int { return x + 1 })
			if err != nil {
				b.Fatal(err)
			}
			f, err := Filter("f", m, func(x int) bool { return x%3 != 0 })
			if err != nil {
				b.Fatal(err)
			}
			fm, err := FlatMap("fm", f, gobSerializer[int]{}, func(x int) []int { return []int{x} })
			if err != nil {
				b.Fatal(err)
			}
			n, err := Count("count", fm)
			if err != nil {
				b.Fatal(err)
			}
			if n == 0 {
				b.Fatal("empty result")
			}
		}
	}
	b.Run("fused", func(b *testing.B) { run(b, false) })
	b.Run("eager", func(b *testing.B) { run(b, true) })
}
