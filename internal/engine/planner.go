package engine

import (
	"sync"
	"sync/atomic"
)

// The projection planner — the engine's first whole-plan optimizer pass.
//
// Forcing a dataset no longer just runs its fused chain: it opens a planning
// session over every unmaterialized node reachable through the lineage DAG
// (lazy narrow chains and deferred wide ops alike), runs one backward pass
// computing the minimal field demand on every edge, and then materializes
// the prerequisite nodes producers-first with their resolved demands. The
// demand at an edge is what the consumer reads itself plus every demanded
// output field it does not write (fieldFX.inNeed); a node consumed by
// several edges takes the union; a node with consumers outside the session
// (claimed but unreachable from this sink) widens to FieldsAll, because
// their demands are unknown. Undeclared ops demand everything, so a
// forgotten declaration costs pruning, never correctness.
//
// Where the masks land:
//   - fused narrow chains thread the demand dynamically: each composed
//     closure reads its input through partitionNeed with fx.inNeed(need),
//     so source blocks decode through Project(mask) with no one annotating
//     anything (the PR 6 manual Force()+ReadingFields dance, inferred);
//   - deferred wide ops (shuffle.go) receive their resolved OUTPUT demand
//     and encode map-side buckets through Project(demand) — fewer bytes on
//     the mproc TCP wire, not just fewer decoded;
//   - materialized interior nodes record their demand as Dataset.content,
//     and a later wider read recomputes through the retained lineage
//     closure instead of serving silently-zero fields.
//
// Planning is a pure function of the DAG and the declared effects, so under
// an SPMD executor every rank resolves identical masks from its own copy of
// the driver program — no masks travel on the wire.
//
// Context.DisableProjectionPlanner is the ablation: sinks force with
// FieldsAll, partitionNeed coerces every demand to FieldsAll, and wide ops
// run eagerly at call time exactly as before this pass existed.

// planMeta is the type-erased planning view of one unmaterialized dataset:
// a lazy narrow chain (wide == false) or a deferred wide op (wide == true).
// The generic constructors in lineage.go and shuffle.go capture their
// dataset in the run closure; the planner needs only the graph shape, the
// per-edge effects, and a way to force the node once.
type planMeta struct {
	// wide marks a deferred wide op: it can never fuse into a consumer's
	// task (its output partitioning is unrelated to its input's), so a
	// session always materializes it before any consumer runs.
	wide bool
	// inputs are the upstream edges; nil entries and edges to materialized
	// datasets are skipped during planning (their data already exists — the
	// demand on them only shapes decode masks, threaded dynamically).
	inputs []planInput

	// children counts consumers claimed over this node (lazy narrow ops,
	// deferred wide ops). Claims only count — nothing forces at claim time;
	// the session's widening rule compares claims against the edges it can
	// actually see.
	children atomic.Int32

	// once/err/done give the node run-exactly-once semantics shared by
	// Force, planning sessions, and sticky-error reads.
	once sync.Once
	err  error
	done atomic.Bool
	// run materializes the node with the given output demand. It must not
	// re-enter the planner (sessions order prerequisites themselves).
	run func(need FieldMask) error

	// Planning scratch, valid only for the session whose stamp matches
	// (guarded by planMu).
	stamp    uint64
	demand   FieldMask
	arrived  int
	resolved FieldMask
}

// planInput is one consumer→producer edge of the plan graph, carrying the
// effect record that transforms output demand into input demand across it.
type planInput struct {
	m  *planMeta
	fx fieldFX
}

// force materializes the node exactly once with the given demand; later
// calls (any demand) return the sticky first result.
func (m *planMeta) force(need FieldMask) error {
	m.once.Do(func() {
		m.err = m.run(need)
		m.done.Store(true)
	})
	return m.err
}

// claim registers one more consumer over the node. Nil-safe: materialized
// inputs have no planning state and need no claim.
func (m *planMeta) claim() {
	if m != nil {
		m.children.Add(1)
	}
}

// planMu serializes planning sessions. Sessions mutate per-node scratch, and
// the lineage DAG can span datasets of many element types, so the lock is
// global rather than per-context; sessions are driver-level and short (graph
// walk only — materialization runs after the lock is released).
var planMu sync.Mutex

// planStamp invalidates stale scratch lazily: a node whose stamp differs
// from the current session's is reinitialized on first visit.
var planStamp uint64

// planStep is one resolved materialization: force node m with demand need.
type planStep struct {
	m    *planMeta
	need FieldMask
}

// runPlanSession plans and executes everything required to materialize sink
// with sinkNeed:
//
//  1. DFS from the sink over input edges collects the unmaterialized
//     subgraph in post-order (every producer before its consumers) and
//     counts, per node, how many in-session edges arrive at it.
//  2. One propagation sweep in reverse post-order (consumers strictly
//     before producers — valid because the DAG is acyclic) resolves each
//     node's output demand: the union of its consumers' edge demands,
//     widened to FieldsAll when the node has more claimed consumers than
//     the session can see, then pushed across each input edge through
//     fx.inNeed.
//  3. Materialization steps run in post-order (producers first): every
//     deferred wide node, every node shared by ≥2 in-session edges or
//     claimed by out-of-session consumers, and the sink itself. Unshared
//     interior narrow nodes are left lazy — they fuse into their consumer's
//     tasks, with the demand threaded dynamically through their closures.
func runPlanSession(sink *planMeta, sinkNeed FieldMask) error {
	planMu.Lock()
	planStamp++
	cur := planStamp
	var nodes []*planMeta
	var visit func(n *planMeta)
	visit = func(n *planMeta) {
		if n.stamp == cur {
			return
		}
		n.stamp = cur
		n.demand = 0
		n.arrived = 0
		n.resolved = 0
		for _, in := range n.inputs {
			if in.m == nil || in.m.done.Load() {
				continue
			}
			visit(in.m)
			in.m.arrived++
		}
		nodes = append(nodes, n)
	}
	visit(sink)
	sink.demand = sinkNeed
	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		out := n.demand
		if int(n.children.Load()) > n.arrived {
			// Consumers exist beyond the ones this session reaches (other
			// sinks not yet forced). Their demands are unknowable now, so
			// the node must materialize wide enough for anyone.
			out = FieldsAll
		}
		n.resolved = out
		for _, in := range n.inputs {
			if in.m == nil || in.m.done.Load() {
				continue
			}
			in.m.demand |= in.fx.inNeed(out)
		}
	}
	steps := make([]planStep, 0, len(nodes))
	for _, n := range nodes {
		if n == sink || n.wide || n.arrived > 1 || int(n.children.Load()) > n.arrived {
			steps = append(steps, planStep{m: n, need: n.resolved})
		}
	}
	planMu.Unlock()
	for _, s := range steps {
		if err := s.m.force(s.need); err != nil {
			return err
		}
	}
	return nil
}

// forceSink is the planner-aware entry point behind Dataset.Force and the
// wide-op barriers: plan the reachable subgraph under the given sink demand
// and materialize prerequisites plus the sink. A materialized (or never
// planned) dataset returns its sticky error, matching Force's historical
// no-op contract.
func (d *Dataset[T]) forceSink(need FieldMask) error {
	m := d.meta
	if m == nil {
		return nil
	}
	if m.done.Load() {
		return m.err
	}
	if d.ctx.DisableProjectionPlanner {
		need = FieldsAll
	}
	return runPlanSession(m, need)
}
