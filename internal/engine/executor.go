package engine

// The executor seam abstracts HOW the engine runs a job: how many task slots
// this process owns, how many cooperating processes share the job, which rank
// runs which task, how shuffle buckets travel from map to reduce tasks, and
// how action results come back together. Three implementations exist:
//
//   - the in-process pool (this file): one process, shared memory, channel
//     sends for bucket readiness — the single-node fast path (the Sparkle
//     tradeoff: when everything fits one node, shared memory beats sockets);
//   - the multi-process backend (internal/engine/exec/mproc): W cooperating
//     OS processes running the same registered job in SPMD lockstep, moving
//     buckets as length-prefixed frames over local TCP sockets;
//   - the simulator oracle (internal/engine/exec/simexec): executes like the
//     in-process pool but doubles as a planning oracle, replaying the
//     recorded trace through the cluster model to predict scaling.
//
// The SPMD contract every distributed executor relies on: all ranks run the
// same job function deterministically, so they issue the same collective
// operations (shuffles, gathers) in the same order. The engine numbers
// collectives with Context.nextSeq; matching sequence numbers across ranks is
// what lets bucket and gather frames find their stage without any global
// scheduler. Task ownership is a pure function of the task index (canonically
// task % Procs), so no rank ever asks another what to run.

// Executor is the execution backend of a Context.
type Executor interface {
	// Name identifies the backend ("inproc", "mproc", "sim") in metrics and
	// experiment output.
	Name() string
	// Slots is the task-slot parallelism of THIS process (the worker-pool
	// size a Context schedules onto).
	Slots() int
	// Procs is the number of cooperating processes sharing the job; 1 means
	// purely in-process.
	Procs() int
	// Rank is this process's index in [0, Procs); rank 0 is the driver.
	Rank() int
	// Exchange creates the bucket transport for one shuffle stage: in map
	// tasks, out reduce partitions. seq is the collective sequence number
	// (identical across ranks for the same stage).
	Exchange(seq uint64, in, out int) Exchange
	// Gather allgathers per-partition action blobs: each rank fills owned[p]
	// for the partitions it owns (per ownerOf; nil means canonical p%Procs)
	// and receives the complete n-slot slice back. With Procs()==1 it returns
	// owned unchanged.
	Gather(seq uint64, n int, ownerOf func(int) int, owned [][]byte) ([][]byte, error)
	// Failed returns a channel closed when the job has failed globally (a
	// remote rank errored or a worker connection was lost); nil when the
	// backend cannot fail remotely. Err reports the failure cause.
	Failed() <-chan struct{}
	Err() error
}

// Exchange is the bucket transport of one shuffle stage. Publish stores
// bucket (m, r)'s encoded block (nil = empty bucket) and makes m arrive on
// reduce r's Notify channel — for a remote owner of r, as a bucket frame over
// the wire; locally, as a buffered channel send. The store happens-before
// the notification, so Block(m, r) is safe after receiving m.
type Exchange interface {
	Publish(m, r int, block []byte)
	// Notify returns reduce r's readiness channel, carrying map indices in
	// publication order. Only the rank that owns r receives on it.
	Notify(r int) <-chan int
	// Block returns the stored block for (m, r); call only after m arrived on
	// Notify(r). nil means the bucket was empty.
	Block(m, r int) []byte
	// Failed/Err mirror the executor-level failure channel for reduce tasks
	// blocked mid-stage.
	Failed() <-chan struct{}
	Err() error
	// Close releases the stage's transport state once the local tasks are
	// done with it.
	Close()
}

// localExec is the in-process backend: one process, Slots() task slots.
type localExec struct{ slots int }

func (e *localExec) Name() string            { return "inproc" }
func (e *localExec) Slots() int              { return e.slots }
func (e *localExec) Procs() int              { return 1 }
func (e *localExec) Rank() int               { return 0 }
func (e *localExec) Err() error              { return nil }
func (e *localExec) Failed() <-chan struct{} { return nil }

func (e *localExec) Exchange(_ uint64, in, out int) Exchange {
	return NewLocalExchange(in, out)
}

func (e *localExec) Gather(_ uint64, _ int, _ func(int) int, owned [][]byte) ([][]byte, error) {
	return owned, nil
}

// localExchange is the shared-memory bucket transport: a flat block table
// plus one buffered readiness channel per reduce partition. It is exported
// through NewLocalExchange so out-of-package executors (simexec, and mproc's
// own-rank fast path) can reuse it.
type localExchange struct {
	in, out int
	blocks  [][]byte // blocks[m*out+r]; the store happens-before the notify send
	notify  []chan int
}

// NewLocalExchange builds the in-process Exchange for a shuffle stage with
// the given geometry. Publish never blocks: each notify channel is buffered
// to the map-task count, and every (m, r) pair is published exactly once.
func NewLocalExchange(in, out int) Exchange {
	ex := &localExchange{in: in, out: out, blocks: make([][]byte, in*out), notify: make([]chan int, out)}
	for r := range ex.notify {
		ex.notify[r] = make(chan int, in)
	}
	return ex
}

func (ex *localExchange) Publish(m, r int, block []byte) {
	ex.blocks[m*ex.out+r] = block
	ex.notify[r] <- m // buffered to in: never blocks
}

func (ex *localExchange) Notify(r int) <-chan int { return ex.notify[r] }

func (ex *localExchange) Block(m, r int) []byte { return ex.blocks[m*ex.out+r] }

func (ex *localExchange) Failed() <-chan struct{} { return nil }
func (ex *localExchange) Err() error              { return nil }
func (ex *localExchange) Close()                  {}
