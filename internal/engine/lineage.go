package engine

import (
	"fmt"
	"strings"
	"time"
)

// lineage is the deferred execution plan of a lazy dataset: the maximal chain
// of narrow operations recorded since the last materialized ancestor. Narrow
// ops (Map/Filter/FlatMap/MapPartitions/ZipPartitions) do not execute when
// called — they append themselves to the lineage, and compute is the fully
// composed partition closure. A barrier (action, shuffle, union, sort) forces
// the plan through a planning session (planner.go): the backward demand pass
// resolves the field mask every edge must supply, then one task launch per
// partition runs the whole chain, items flow through the composed closures
// with no intermediate storePartition and no intermediate codec round-trip,
// and the chain is recorded as a single fused StageMetrics row.
//
// Run-once state (children, once, err) lives on the dataset's planMeta — the
// type-erased node the planner walks — not here; the lineage itself is only
// the typed compute machinery.
type lineage[T any] struct {
	nparts int
	// ops holds the recorded op names in execution order; the fused stage is
	// named by joining them with "+".
	ops []string
	// compute evaluates partition p through the whole fused chain, materializing
	// only the fields in need (demanded by the consumer; FieldsAll when unknown).
	// It reads ancestor partitions via Dataset.partitionNeed with the demand
	// narrowed by each op's declared effects, so a chain rooted at a
	// since-materialized columnar dataset decodes only what the chain reads.
	compute func(p int, tm *TaskMetrics, need FieldMask) ([]T, error)
	// sizeHint estimates partition p's input size for LPT dispatch by asking
	// the chain's source dataset(s). Nil means no information (index-order
	// dispatch).
	sizeHint func(p int) int64
	// inMask maps an output demand to the union of masks the chain's root
	// sources are read with — the chain-input edge mask recorded in
	// StageMetrics when the chain runs fused.
	inMask func(need FieldMask) FieldMask
}

// fusedName joins the recorded op names into the fused stage name.
func (l *lineage[T]) fusedName() string { return strings.Join(l.ops, "+") }

// isLazy reports whether the dataset still has an unforced plan.
func (d *Dataset[T]) isLazy() bool {
	return d.plan != nil && d.meta != nil && !d.meta.done.Load()
}

// lineageOps returns the pending op names of a lazy dataset (nil otherwise).
func (d *Dataset[T]) lineageOps() []string {
	if d.isLazy() {
		return d.plan.ops
	}
	return nil
}

// chainOps builds the op list for a new lineage node: the pending upstream
// ops followed by name.
func chainOps(upstream []string, name string) []string {
	ops := make([]string, 0, len(upstream)+1)
	ops = append(ops, upstream...)
	return append(ops, name)
}

// claimInput registers one more consumer over d's plan node. Unlike the
// pre-planner engine, nothing forces here — a shared prefix materializes
// during the first consumer's planning session, where the demands of every
// reachable consumer are known (and errors propagate from Force instead of
// being dropped on the floor at claim time).
func claimInput[T any](d *Dataset[T]) {
	d.meta.claim()
}

// inputEdge builds the planner edge from a new node to its input d: d's plan
// node (nil when materialized — the planner skips those) plus the effect
// record governing demand flow across the edge.
func inputEdge[T any](d *Dataset[T], fx fieldFX) planInput {
	return planInput{m: d.meta, fx: fx}
}

// inMaskOf composes d's chain-root mask function with the demand an op
// places on d: for a lazy input the root mask comes from d's own chain; for
// a materialized input the edge itself is the root.
func inMaskOf[T any](d *Dataset[T], fx fieldFX) func(need FieldMask) FieldMask {
	if d.isLazy() && d.plan.inMask != nil {
		up := d.plan.inMask
		return func(need FieldMask) FieldMask { return up(fx.inNeed(need)) }
	}
	return fx.inNeed
}

// newLazyMeta attaches the planner node for a freshly recorded narrow chain
// tail: forcing it runs the fused chain with the resolved demand.
func newLazyMeta[T any](d *Dataset[T], edges ...planInput) {
	m := &planMeta{inputs: edges}
	m.run = func(need FieldMask) error { return runFused(d, need) }
	d.meta = m
}

// recordTaskInput charges the fused chain's source partition size to the
// task's InputItems. Only the innermost executed op observes the true chain
// input, and it runs first, so later (outer) closures leave a non-zero value
// alone.
func recordTaskInput(tm *TaskMetrics, n int) {
	if tm != nil && tm.InputItems == 0 {
		tm.InputItems = n
	}
}

// lazyNarrow records a single-input narrow op as a lineage node, composing fn
// over the input's pending chain. fx declares the op's field effects (the
// zero value = undeclared = reads everything).
func lazyNarrow[T, U any](name string, d *Dataset[T], codec Serializer[U], fx fieldFX, fn func(p int, items []T) ([]U, error)) *Dataset[U] {
	claimInput(d)
	res := &Dataset[U]{
		ctx:   d.ctx,
		codec: codec,
		owner: d.owner, // narrow: output p derives from input p, same rank
		plan: &lineage[U]{
			nparts:   d.NumPartitions(),
			ops:      chainOps(d.lineageOps(), name),
			sizeHint: d.partitionSizeHint,
			inMask:   inMaskOf(d, fx),
			compute: func(p int, tm *TaskMetrics, need FieldMask) ([]U, error) {
				in, err := d.partitionNeed(p, tm, fx.inNeed(need))
				if err != nil {
					return nil, err
				}
				recordTaskInput(tm, len(in))
				out, err := fn(p, in)
				if err != nil {
					return nil, fmt.Errorf("engine: stage %q partition %d: %w", name, p, err)
				}
				return out, nil
			},
		},
	}
	newLazyMeta(res, inputEdge(d, fx))
	return res
}

// zipFX narrows a zip edge's effect record: declared Writes bits may only
// satisfy downstream demand for inputs sharing the output's field space;
// a type-changing edge keeps its reads but forwards full demand.
func zipFX(fx fieldFX, sameSpace bool) fieldFX {
	if fx.declared && !sameSpace {
		fx.writes = FieldsAll
	}
	return fx
}

// lazyZip2 records a two-input narrow op (co-partitioned zip) as a lineage
// node; both inputs' pending chains fuse into the new plan.
func lazyZip2[A, B, U any](name string, a *Dataset[A], b *Dataset[B], codec Serializer[U], fx fieldFX, fn func(p int, as []A, bs []B) ([]U, error)) *Dataset[U] {
	claimInput(a)
	claimInput(b)
	fxA := zipFX(fx, sameRecordType[A, U]())
	fxB := zipFX(fx, sameRecordType[B, U]())
	inA, inB := inMaskOf(a, fxA), inMaskOf(b, fxB)
	res := &Dataset[U]{
		ctx:   a.ctx,
		codec: codec,
		owner: a.owner, // zips require co-partitioned (hence co-owned) inputs
		plan: &lineage[U]{
			nparts:   a.NumPartitions(),
			ops:      chainOps(append(append([]string(nil), a.lineageOps()...), b.lineageOps()...), name),
			sizeHint: func(p int) int64 { return a.partitionSizeHint(p) + b.partitionSizeHint(p) },
			inMask:   func(need FieldMask) FieldMask { return inA(need) | inB(need) },
			compute: func(p int, tm *TaskMetrics, need FieldMask) ([]U, error) {
				as, err := a.partitionNeed(p, tm, fxA.inNeed(need))
				if err != nil {
					return nil, err
				}
				bs, err := b.partitionNeed(p, tm, fxB.inNeed(need))
				if err != nil {
					return nil, err
				}
				recordTaskInput(tm, len(as)+len(bs))
				out, err := fn(p, as, bs)
				if err != nil {
					return nil, fmt.Errorf("engine: stage %q partition %d: %w", name, p, err)
				}
				return out, nil
			},
		},
	}
	newLazyMeta(res, inputEdge(a, fxA), inputEdge(b, fxB))
	return res
}

// lazyZip3 records a three-input narrow op as a lineage node.
func lazyZip3[A, B, C, U any](name string, a *Dataset[A], b *Dataset[B], c *Dataset[C], codec Serializer[U], fx fieldFX, fn func(p int, as []A, bs []B, cs []C) ([]U, error)) *Dataset[U] {
	claimInput(a)
	claimInput(b)
	claimInput(c)
	fxA := zipFX(fx, sameRecordType[A, U]())
	fxB := zipFX(fx, sameRecordType[B, U]())
	fxC := zipFX(fx, sameRecordType[C, U]())
	inA, inB, inC := inMaskOf(a, fxA), inMaskOf(b, fxB), inMaskOf(c, fxC)
	ops := append(append([]string(nil), a.lineageOps()...), b.lineageOps()...)
	ops = append(ops, c.lineageOps()...)
	res := &Dataset[U]{
		ctx:   a.ctx,
		codec: codec,
		owner: a.owner,
		plan: &lineage[U]{
			nparts:   a.NumPartitions(),
			ops:      chainOps(ops, name),
			sizeHint: func(p int) int64 { return a.partitionSizeHint(p) + b.partitionSizeHint(p) + c.partitionSizeHint(p) },
			inMask:   func(need FieldMask) FieldMask { return inA(need) | inB(need) | inC(need) },
			compute: func(p int, tm *TaskMetrics, need FieldMask) ([]U, error) {
				as, err := a.partitionNeed(p, tm, fxA.inNeed(need))
				if err != nil {
					return nil, err
				}
				bs, err := b.partitionNeed(p, tm, fxB.inNeed(need))
				if err != nil {
					return nil, err
				}
				cs, err := c.partitionNeed(p, tm, fxC.inNeed(need))
				if err != nil {
					return nil, err
				}
				recordTaskInput(tm, len(as)+len(bs)+len(cs))
				out, err := fn(p, as, bs, cs)
				if err != nil {
					return nil, fmt.Errorf("engine: stage %q partition %d: %w", name, p, err)
				}
				return out, nil
			},
		},
	}
	newLazyMeta(res, inputEdge(a, fxA), inputEdge(b, fxB), inputEdge(c, fxC))
	return res
}

// Force materializes a lazy or deferred dataset: a planning session resolves
// the field demand on every reachable edge, materializes prerequisite nodes
// (deferred wide ops, shared prefixes) producers-first, then runs this
// dataset's own pending work — a fused narrow chain as ONE stage (one task
// launch per partition), a deferred wide op as its shuffle. The result is
// stored in the dataset, so later reads — and downstream lineages rooted
// here — reuse it instead of recomputing. Actions and wide operations call
// Force implicitly; it is exported for callers that want an explicit
// execution barrier (e.g. before timing a downstream stage). Forcing a
// materialized dataset is a no-op; a failed Force is sticky. Forcing a sink
// demands every field (an external reader may touch anything) — interior
// edges of the plan still narrow per declared effects.
func (d *Dataset[T]) Force() error {
	return d.forceSink(FieldsAll)
}

// Retain declares an out-of-session consumer over the dataset: one extra
// claim whose demand is unknowable and which never arrives in any planning
// session. Every session that materializes the dataset (or reaches it as a
// prerequisite) therefore widens its STORED form to FieldsAll, while the
// session's own readers still decode through their resolved masks — a
// narrow action over a retained dataset keeps its decode pruning, but the
// cache it leaves behind serves any later consumer. Pipeline processes call
// this when publishing a dataset for stages declared only after the current
// one runs; without it, an early narrow action (a coordinate census) would
// strand the cache column-pruned and a later full-width read would fail the
// materialized-mask guard. Retaining a materialized dataset is a no-op.
func (d *Dataset[T]) Retain() { d.meta.claim() }

// runFused executes the dataset's fused plan: one stage, one task per
// partition, each task streaming its partition through the composed closures
// and storing only the final output. The stage is recorded under the joined
// op names with FusedOps set to the chain length and the resolved edge masks
// in InMask/OutMask. When the planner resolved a narrow demand and the codec
// can project, the output blocks are encoded column-pruned; Dataset.content
// remembers the narrowing so a later wider read recomputes instead of
// serving zeroes.
func runFused[T any](d *Dataset[T], need FieldMask) error {
	pl := d.plan
	if d.ctx.DisableProjectionPlanner {
		need = FieldsAll
	}
	n := pl.nparts
	allocResult(d, n, need)
	stage := StageMetrics{Name: pl.fusedName(), Kind: StageNarrow, FusedOps: len(pl.ops), OutMask: need}
	if pl.inMask != nil {
		stage.InMask = pl.inMask(need)
	}
	var tms []TaskMetrics
	gc, err := gcPauseDelta(func() error {
		var err error
		tms, err = d.ctx.runTasksOwned(n, pl.sizeHint, d.ownerOf, func(p int, tm *TaskMetrics) error {
			start := time.Now()
			out, err := pl.compute(p, tm, need)
			if err != nil {
				return err
			}
			tm.OutputItems = len(out)
			if err := storePartition(d, p, out, tm); err != nil {
				return err
			}
			tm.Wall = time.Since(start)
			return nil
		})
		return err
	})
	stage.Tasks = tms
	stage.GCPause = gc
	d.ctx.recordStage(stage)
	return err
}
