package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// lineage is the deferred execution plan of a lazy dataset: the maximal chain
// of narrow operations recorded since the last materialized ancestor. Narrow
// ops (Map/Filter/FlatMap/MapPartitions/ZipPartitions) do not execute when
// called — they append themselves to the lineage, and compute is the fully
// composed partition closure. A barrier (action, shuffle, union, sort) forces
// the plan: one task launch per partition runs the whole chain, items flow
// through the composed closures with no intermediate storePartition and no
// intermediate codec round-trip, and the chain is recorded as a single fused
// StageMetrics row.
type lineage[T any] struct {
	nparts int
	// ops holds the recorded op names in execution order; the fused stage is
	// named by joining them with "+".
	ops []string
	// compute evaluates partition p through the whole fused chain. It reads
	// ancestor partitions via Dataset.partition, so a chain rooted at a
	// since-materialized dataset picks up the stored data instead of
	// recomputing.
	compute func(p int, tm *TaskMetrics) ([]T, error)
	// sizeHint estimates partition p's input size for LPT dispatch by asking
	// the chain's source dataset(s). Nil means no information (index-order
	// dispatch).
	sizeHint func(p int) int64

	// children counts lazy consumers recorded over this node. The planner
	// fuses maximal LINEAR chains: a second lazy consumer makes this node a
	// branch point of the DAG, which forces it (otherwise both branches would
	// inline — and recompute — the shared prefix).
	children atomic.Int32

	once sync.Once
	done atomic.Bool
	err  error
}

// fusedName joins the recorded op names into the fused stage name.
func (l *lineage[T]) fusedName() string { return strings.Join(l.ops, "+") }

// fork duplicates the plan with fresh force state, sharing the composed
// closure. WithCodec uses this so each codec-variant materializes into its
// own dataset.
func (l *lineage[T]) fork() *lineage[T] {
	return &lineage[T]{nparts: l.nparts, ops: append([]string(nil), l.ops...), compute: l.compute, sizeHint: l.sizeHint}
}

// isLazy reports whether the dataset still has an unforced plan.
func (d *Dataset[T]) isLazy() bool { return d.plan != nil && !d.plan.done.Load() }

// lineageOps returns the pending op names of a lazy dataset (nil otherwise).
func (d *Dataset[T]) lineageOps() []string {
	if d.isLazy() {
		return d.plan.ops
	}
	return nil
}

// chainOps builds the op list for a new lineage node: the pending upstream
// ops followed by name.
func chainOps(upstream []string, name string) []string {
	ops := make([]string, 0, len(upstream)+1)
	ops = append(ops, upstream...)
	return append(ops, name)
}

// claimLazyInput registers d as the input of a new lineage node. The first
// lazy consumer fuses with d's pending chain; a second consumer marks d as a
// DAG branch point and forces it, so both branches read the materialized
// partitions instead of each recomputing the shared prefix. A Force error
// here is deliberately dropped: it is sticky on the plan and resurfaces from
// Dataset.partition when the consumer's own chain is forced.
func claimLazyInput[T any](d *Dataset[T]) {
	if d.isLazy() && d.plan.children.Add(1) > 1 {
		_ = d.Force()
	}
}

// recordTaskInput charges the fused chain's source partition size to the
// task's InputItems. Only the innermost executed op observes the true chain
// input, and it runs first, so later (outer) closures leave a non-zero value
// alone.
func recordTaskInput(tm *TaskMetrics, n int) {
	if tm != nil && tm.InputItems == 0 {
		tm.InputItems = n
	}
}

// lazyNarrow records a single-input narrow op as a lineage node, composing fn
// over the input's pending chain.
func lazyNarrow[T, U any](name string, d *Dataset[T], codec Serializer[U], fn func(p int, items []T) ([]U, error)) *Dataset[U] {
	claimLazyInput(d)
	return &Dataset[U]{
		ctx:   d.ctx,
		codec: codec,
		owner: d.owner, // narrow: output p derives from input p, same rank
		plan: &lineage[U]{
			nparts:   d.NumPartitions(),
			ops:      chainOps(d.lineageOps(), name),
			sizeHint: d.partitionSizeHint,
			compute: func(p int, tm *TaskMetrics) ([]U, error) {
				in, err := d.partition(p, tm)
				if err != nil {
					return nil, err
				}
				recordTaskInput(tm, len(in))
				out, err := fn(p, in)
				if err != nil {
					return nil, fmt.Errorf("engine: stage %q partition %d: %w", name, p, err)
				}
				return out, nil
			},
		},
	}
}

// lazyZip2 records a two-input narrow op (co-partitioned zip) as a lineage
// node; both inputs' pending chains fuse into the new plan.
func lazyZip2[A, B, U any](name string, a *Dataset[A], b *Dataset[B], codec Serializer[U], fn func(p int, as []A, bs []B) ([]U, error)) *Dataset[U] {
	claimLazyInput(a)
	claimLazyInput(b)
	return &Dataset[U]{
		ctx:   a.ctx,
		codec: codec,
		owner: a.owner, // zips require co-partitioned (hence co-owned) inputs
		plan: &lineage[U]{
			nparts:   a.NumPartitions(),
			ops:      chainOps(append(append([]string(nil), a.lineageOps()...), b.lineageOps()...), name),
			sizeHint: func(p int) int64 { return a.partitionSizeHint(p) + b.partitionSizeHint(p) },
			compute: func(p int, tm *TaskMetrics) ([]U, error) {
				as, err := a.partition(p, tm)
				if err != nil {
					return nil, err
				}
				bs, err := b.partition(p, tm)
				if err != nil {
					return nil, err
				}
				recordTaskInput(tm, len(as)+len(bs))
				out, err := fn(p, as, bs)
				if err != nil {
					return nil, fmt.Errorf("engine: stage %q partition %d: %w", name, p, err)
				}
				return out, nil
			},
		},
	}
}

// lazyZip3 records a three-input narrow op as a lineage node.
func lazyZip3[A, B, C, U any](name string, a *Dataset[A], b *Dataset[B], c *Dataset[C], codec Serializer[U], fn func(p int, as []A, bs []B, cs []C) ([]U, error)) *Dataset[U] {
	claimLazyInput(a)
	claimLazyInput(b)
	claimLazyInput(c)
	ops := append(append([]string(nil), a.lineageOps()...), b.lineageOps()...)
	ops = append(ops, c.lineageOps()...)
	return &Dataset[U]{
		ctx:   a.ctx,
		codec: codec,
		owner: a.owner,
		plan: &lineage[U]{
			nparts:   a.NumPartitions(),
			ops:      chainOps(ops, name),
			sizeHint: func(p int) int64 { return a.partitionSizeHint(p) + b.partitionSizeHint(p) + c.partitionSizeHint(p) },
			compute: func(p int, tm *TaskMetrics) ([]U, error) {
				as, err := a.partition(p, tm)
				if err != nil {
					return nil, err
				}
				bs, err := b.partition(p, tm)
				if err != nil {
					return nil, err
				}
				cs, err := c.partition(p, tm)
				if err != nil {
					return nil, err
				}
				recordTaskInput(tm, len(as)+len(bs)+len(cs))
				out, err := fn(p, as, bs, cs)
				if err != nil {
					return nil, fmt.Errorf("engine: stage %q partition %d: %w", name, p, err)
				}
				return out, nil
			},
		},
	}
}

// Force materializes a lazy dataset: the whole pending narrow chain runs as
// ONE fused stage (one task launch per partition) and the result is stored in
// the dataset, so later reads — and downstream lineages rooted here — reuse
// it instead of recomputing. Actions and wide operations call Force
// implicitly; it is exported for callers that want an explicit execution
// barrier (e.g. before timing a downstream stage). Forcing a materialized
// dataset is a no-op.
func (d *Dataset[T]) Force() error {
	if d.plan == nil {
		return nil
	}
	pl := d.plan
	pl.once.Do(func() {
		pl.err = runFused(d)
		pl.done.Store(true)
	})
	return pl.err
}

// runFused executes the dataset's fused plan: one stage, one task per
// partition, each task streaming its partition through the composed closures
// and storing only the final output. The stage is recorded under the joined
// op names with FusedOps set to the chain length.
func runFused[T any](d *Dataset[T]) error {
	pl := d.plan
	n := pl.nparts
	if d.ctx.StoreSerialized && d.codec != nil {
		d.blocks = make([][]byte, n)
		d.blockCodec = effectiveSerializer(d.ctx, d.codec)
	} else {
		d.parts = make([][]T, n)
	}
	if d.ctx.procs() > 1 {
		d.resident = make([]bool, n)
	}
	stage := StageMetrics{Name: pl.fusedName(), Kind: StageNarrow, FusedOps: len(pl.ops)}
	var tms []TaskMetrics
	gc, err := gcPauseDelta(func() error {
		var err error
		tms, err = d.ctx.runTasksOwned(n, pl.sizeHint, d.ownerOf, func(p int, tm *TaskMetrics) error {
			start := time.Now()
			out, err := pl.compute(p, tm)
			if err != nil {
				return err
			}
			tm.OutputItems = len(out)
			if err := storePartition(d, p, out, tm); err != nil {
				return err
			}
			tm.Wall = time.Since(start)
			return nil
		})
		return err
	})
	stage.Tasks = tms
	stage.GCPause = gc
	d.ctx.recordStage(stage)
	return err
}
