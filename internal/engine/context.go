// Package engine implements the in-memory dataflow engine underneath GPF —
// the stand-in for Apache Spark in this reproduction. Datasets are split into
// partitions processed by a worker pool.
//
// Execution follows the paper's lazy lineage DAG (§4.3): narrow operations
// (Map, Filter, FlatMap, MapPartitions, ZipPartitions) do not run when
// called — they record a lineage node, and the planner fuses each maximal
// chain of narrow ops into ONE task launch per partition when a barrier
// forces the plan. Barriers are the actions (Collect, Reduce, Count,
// CountByKey), the wide operations (PartitionBy, Repartition, Union) and
// SortPartitions. Within a fused stage, items flow through the composed
// closures with no intermediate partition storage and no intermediate codec
// round-trip; the stage is recorded in metrics under the joined op names
// (e.g. "align/bwa-mem+filter") with StageMetrics.FusedOps set to the chain
// length. Context.DisableFusion switches back to eager one-stage-per-op
// execution (the Spark-without-fusion ablation).
//
// Wide operations move data through a hash shuffle whose byte volume is
// charged through a pluggable serializer; actions return data to the driver.
// Per-task and per-stage metrics (wall time, shuffle bytes, serialization
// time, GC pauses) feed the cluster simulator and the blocked-time analysis
// of §5.3.
package engine

import (
	"fmt"
	"runtime"
	"sync"
)

// Serializer turns a batch of records into one byte block and back. It is the
// engine's equivalent of a Spark serializer; the compress package provides
// genomic-aware implementations, and gobSerializer is the built-in generic
// fallback (the "Java serialization" tier).
type Serializer[T any] interface {
	Name() string
	Marshal([]T) ([]byte, error)
	Unmarshal([]byte) ([]T, error)
}

// Context owns the worker pool and the metrics of one engine session. The
// zero value is not usable; create one with NewContext.
type Context struct {
	workers int

	// StoreSerialized keeps dataset partitions as serialized byte blocks
	// whenever a codec is attached — Spark's MEMORY_ONLY_SER mode that GPF
	// relies on (§4.2). Off by default.
	StoreSerialized bool

	// DisableFusion turns off lazy narrow-stage fusion: every narrow op runs
	// eagerly as its own stage with its own intermediate dataset (and, under
	// StoreSerialized, its own codec round-trip). Used as the unfused
	// baseline in the fusion ablation; off (fusion on) by default.
	DisableFusion bool

	mu      sync.Mutex
	metrics Metrics
}

// NewContext creates an engine context with the given worker parallelism
// (the local stand-in for cluster cores). workers < 1 selects GOMAXPROCS.
func NewContext(workers int) *Context {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Context{workers: workers}
}

// Workers returns the configured parallelism.
func (c *Context) Workers() int { return c.workers }

// Metrics returns a snapshot of the accumulated metrics.
func (c *Context) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.metrics.clone()
}

// ResetMetrics clears accumulated metrics (between experiments).
func (c *Context) ResetMetrics() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = Metrics{}
}

// recordStage appends a finished stage to the metrics.
func (c *Context) recordStage(s StageMetrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s.ID = len(c.metrics.Stages)
	c.metrics.Stages = append(c.metrics.Stages, s)
}

// runTasks executes fn for every partition index in [0, n) on the worker
// pool, collecting per-task metrics. The first error (or recovered panic)
// aborts the run and is returned.
func (c *Context) runTasks(n int, fn func(task int, tm *TaskMetrics) error) ([]TaskMetrics, error) {
	tms := make([]TaskMetrics, n)
	errs := make([]error, n)
	sem := make(chan struct{}, c.workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(task int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					errs[task] = fmt.Errorf("engine: task %d panicked: %v", task, r)
				}
			}()
			tms[task].Partition = task
			errs[task] = fn(task, &tms[task])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return tms, err
		}
	}
	return tms, nil
}
