// Package engine implements the in-memory dataflow engine underneath GPF —
// the stand-in for Apache Spark in this reproduction. Datasets are split into
// partitions processed by a worker pool.
//
// Execution follows the paper's lazy lineage DAG (§4.3): narrow operations
// (Map, Filter, FlatMap, MapPartitions, ZipPartitions) do not run when
// called — they record a lineage node, and the planner fuses each maximal
// chain of narrow ops into ONE task launch per partition when a barrier
// forces the plan. Barriers are the actions (Collect, Reduce, Count,
// CountByKey), the wide operations (PartitionBy, Repartition, Union) and
// SortPartitions. Within a fused stage, items flow through the composed
// closures with no intermediate partition storage and no intermediate codec
// round-trip; the stage is recorded in metrics under the joined op names
// (e.g. "align/bwa-mem+filter") with StageMetrics.FusedOps set to the chain
// length. Context.DisableFusion switches back to eager one-stage-per-op
// execution (the Spark-without-fusion ablation).
//
// Wide operations move data through a pipelined push-based hash shuffle
// (see shuffle.go): map and reduce tasks share one worker-pool pass, each
// reduce task consuming bucket (m, r) as soon as map task m publishes it,
// with output kept deterministic by merging buckets in map-task order.
// Context.DisablePipelinedShuffle restores the two-barrier shuffle for the
// ablation. Shuffle byte volume is charged through a pluggable serializer;
// actions return data to the driver. Per-task and per-stage metrics (wall
// time, shuffle bytes, serialization time, fetch wait, GC pauses) feed the
// cluster simulator and the blocked-time analysis of §5.3.
package engine

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Serializer turns a batch of records into one byte block and back. It is the
// engine's equivalent of a Spark serializer; the compress package provides
// genomic-aware implementations, and gobSerializer is the built-in generic
// fallback (the "Java serialization" tier).
type Serializer[T any] interface {
	Name() string
	Marshal([]T) ([]byte, error)
	Unmarshal([]byte) ([]T, error)
}

// Context owns the worker pool and the metrics of one engine session. The
// zero value is not usable; create one with NewContext.
type Context struct {
	workers int
	exec    Executor

	// seq numbers the collective operations (shuffle exchanges, action
	// gathers) issued by this context. Under an SPMD executor every rank runs
	// the same deterministic driver program, so equal sequence numbers across
	// ranks identify the same collective — that is how bucket and gather
	// frames find their stage without a global scheduler.
	seq atomic.Uint64

	// StoreSerialized keeps dataset partitions as serialized byte blocks
	// whenever a codec is attached — Spark's MEMORY_ONLY_SER mode that GPF
	// relies on (§4.2). Off by default.
	StoreSerialized bool

	// DisableFusion turns off lazy narrow-stage fusion: every narrow op runs
	// eagerly as its own stage with its own intermediate dataset (and, under
	// StoreSerialized, its own codec round-trip). Used as the unfused
	// baseline in the fusion ablation; off (fusion on) by default.
	DisableFusion bool

	// DisablePipelinedShuffle restores the two-barrier hash shuffle: every
	// map task finishes bucketing and serializing before any reduce task
	// starts. Used as the barrier baseline in the pipelined-shuffle ablation
	// (see BenchmarkAblationPipelinedShuffle); off (pipelined) by default.
	DisablePipelinedShuffle bool

	// DisableColumnar suppresses columnar serializers: any attached codec
	// that reports Columnar() true is replaced by the gob fallback for both
	// cache materialization and shuffle transport, and with it projection
	// pushdown (a gob block can only decode whole). Used as the row-format
	// baseline in the columnar ablation; off (columnar on) by default.
	DisableColumnar bool

	// DisableProjectionPlanner turns off the lineage-level projection planner
	// (planner.go): wide operations run eagerly at call time instead of
	// deferring for demand resolution, every partition read demands all
	// fields, and only explicit ReadingFields views still project — the
	// pre-planner engine, kept as the ablation baseline. Off (planner on) by
	// default.
	DisableProjectionPlanner bool

	// DisableMapSideCombine turns off pre-aggregation in CombineByKey (every
	// item is shipped as its own pair) and routes CountByKey through the
	// legacy serial driver merge that ships whole per-partition gob maps.
	// Used as the no-combine baseline; off (combine on) by default.
	DisableMapSideCombine bool

	// DisableFastKernels reverts the profile-driven hot kernels (scaled
	// pair-HMM, banded affine alignment, table-driven reverse complement,
	// word-parallel 2-bit pack/unpack) to their reference implementations.
	// The kernels live below the engine, so core.Pipeline.Run syncs this
	// flag into the process-wide internal/kernels switch before executing;
	// off (fast kernels on) by default.
	DisableFastKernels bool

	mu      sync.Mutex
	metrics Metrics
}

// NewContext creates an engine context with the given worker parallelism
// (the local stand-in for cluster cores). workers < 1 selects GOMAXPROCS.
func NewContext(workers int) *Context {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Context{workers: workers, exec: &localExec{slots: workers}}
}

// NewContextOn creates a context running on the given executor backend. The
// task-slot parallelism is the executor's Slots (GOMAXPROCS when it reports
// < 1).
func NewContextOn(exec Executor) *Context {
	workers := exec.Slots()
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Context{workers: workers, exec: exec}
}

// Workers returns the configured task-slot parallelism of this process.
func (c *Context) Workers() int { return c.workers }

// Executor returns the execution backend.
func (c *Context) Executor() Executor { return c.exec }

// procs is the number of cooperating SPMD processes; 1 for in-process runs.
func (c *Context) procs() int { return c.exec.Procs() }

// rank is this process's index in [0, procs).
func (c *Context) rank() int { return c.exec.Rank() }

// nextSeq issues the next collective sequence number. Collectives are driven
// serially by the (deterministic) driver program, so every rank observes the
// same numbering.
func (c *Context) nextSeq() uint64 { return c.seq.Add(1) }

// Metrics returns a snapshot of the accumulated metrics.
func (c *Context) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.metrics.clone()
}

// ResetMetrics clears accumulated metrics (between experiments).
func (c *Context) ResetMetrics() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.metrics = Metrics{}
}

// recordStage appends a finished stage to the metrics.
func (c *Context) recordStage(s StageMetrics) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s.ID = len(c.metrics.Stages)
	c.metrics.Stages = append(c.metrics.Stages, s)
}

// runTasks executes fn for every partition index in [0, n) on the worker
// pool, collecting per-task metrics. The first error (or recovered panic)
// aborts the run and is returned.
func (c *Context) runTasks(n int, fn func(task int, tm *TaskMetrics) error) ([]TaskMetrics, error) {
	return c.runTasksLPT(n, nil, fn)
}

// lptOrder returns the dispatch order for n tasks under longest-processing-
// time-first scheduling: indices sorted by descending size hint, stable so
// equal-sized tasks keep index order (deterministic dispatch). A nil hint
// yields plain index order.
func lptOrder(n int, hint func(task int) int64) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if hint == nil {
		return order
	}
	sizes := make([]int64, n)
	for i := range sizes {
		sizes[i] = hint(i)
	}
	sort.SliceStable(order, func(a, b int) bool { return sizes[order[a]] > sizes[order[b]] })
	return order
}

// runTasksLPT is runTasks with size-aware dispatch: tasks are handed to the
// worker pool largest-first per hint (LPT scheduling), shrinking the
// straggler tail on skewed partitions — the engine-level counterpart of the
// coverage-skew motivation behind dynamic repartitioning (§4.4). Only the
// dispatch order changes: results and metrics stay indexed by task, so the
// output is identical whatever the hints say.
func (c *Context) runTasksLPT(n int, hint func(task int) int64, fn func(task int, tm *TaskMetrics) error) ([]TaskMetrics, error) {
	return c.runTasksOwned(n, hint, nil, fn)
}

// runTasksOwned is runTasksLPT restricted to the tasks this rank owns: under
// an SPMD executor with procs > 1, only tasks with ownerOf(task) == rank are
// dispatched locally (nil ownerOf means canonical task % procs ownership);
// the sibling ranks run the rest. Non-owned entries in the returned metrics
// stay zero with Ran false, so a later cross-rank merge (Metrics.MergeRanks)
// can splice each task's record from the rank that actually ran it. With one
// process every task is owned and this is plain LPT dispatch.
func (c *Context) runTasksOwned(n int, hint func(task int) int64, ownerOf func(task int) int, fn func(task int, tm *TaskMetrics) error) ([]TaskMetrics, error) {
	procs, rank := c.procs(), c.rank()
	owned := func(task int) bool {
		if procs == 1 {
			return true
		}
		if ownerOf != nil {
			return ownerOf(task) == rank
		}
		return task%procs == rank
	}
	tms := make([]TaskMetrics, n)
	errs := make([]error, n)
	sem := make(chan struct{}, c.workers)
	var wg sync.WaitGroup
	for _, i := range lptOrder(n, hint) {
		tms[i].Partition = i
		if !owned(i) {
			continue
		}
		if procs > 1 {
			tms[i].Ran = true
			tms[i].Rank = rank
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(task int) {
			defer wg.Done()
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					errs[task] = fmt.Errorf("engine: task %d panicked: %v", task, r)
				}
			}()
			errs[task] = fn(task, &tms[task])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return tms, err
		}
	}
	return tms, nil
}
