package engine

import "reflect"

// Field-effect declarations — the op-side half of the projection planner.
//
// PR 6 made projection a caller annotation: pruning fired only when the
// caller hand-inserted Force() + ReadingFields at a materialization
// boundary. Effects make it a planner inference instead: every op may
// declare which record fields it READS from its input and which fields of
// its output it WRITES itself, and the planner's backward pass (planner.go)
// derives the minimal field set every edge of the lineage DAG must supply.
// An op that declares nothing is treated as reading every field — a
// forgotten declaration is conservative (full decode, no pruning), never
// wrong.

// FieldEffects declares what one operation does with record fields. Masks
// are opaque to the engine; their bits belong to the projectable codec of
// the records flowing through the op (colfmt's Field* constants for
// sam.Record). Reads is expressed in the INPUT record's field space and
// Writes in the OUTPUT record's space — for type-changing ops the two
// spaces are unrelated, and the engine forces Writes to FieldsAll so
// downstream demand never leaks across the type boundary.
type FieldEffects struct {
	// Reads is the set of input fields the op's callbacks examine.
	Reads FieldMask
	// Writes is the set of output fields the op produces itself. Demand for
	// a written field is satisfied by the op and does not propagate to its
	// input; demand for any other field passes through untouched (the op
	// forwards those fields from its input records unchanged).
	Writes FieldMask
}

// fieldFX is the resolved per-node effect record the planner computes with.
// The zero value means "undeclared": the node is assumed to read everything.
type fieldFX struct {
	reads    FieldMask
	writes   FieldMask
	declared bool
}

// inNeed computes the demand an op places on its input, given the demand
// out on its output: the fields it reads itself, plus every demanded output
// field it does not write (those pass through from the input). An
// undeclared op demands everything — the conservative default.
func (f fieldFX) inNeed(out FieldMask) FieldMask {
	if !f.declared {
		return FieldsAll
	}
	return f.reads | (out &^ f.writes)
}

// StageOption configures an operation at construction time. Options ride as
// trailing variadic arguments on the op constructors, so existing call
// sites compile unchanged.
type StageOption func(*stageOpts)

type stageOpts struct {
	fx fieldFX
}

// WithEffects declares the op's full field effects.
func WithEffects(fx FieldEffects) StageOption {
	return func(o *stageOpts) {
		o.fx = fieldFX{reads: fx.Reads, writes: fx.Writes, declared: true}
	}
}

// ReadsOnly declares a pass-through op: it examines only the fields in mask
// and forwards records (or the untouched remainder of them) unchanged —
// Filter predicates, key extractors, census folds. Equivalent to
// WithEffects(FieldEffects{Reads: mask}).
func ReadsOnly(mask FieldMask) StageOption {
	return WithEffects(FieldEffects{Reads: mask})
}

// Rebuilds declares an op that constructs its output records from scratch,
// examining only the fields in reads: downstream demand stops at the op.
// Equivalent to WithEffects(FieldEffects{Reads: reads, Writes: FieldsAll}).
func Rebuilds(reads FieldMask) StageOption {
	return WithEffects(FieldEffects{Reads: reads, Writes: FieldsAll})
}

// resolveFX folds the options into the node's effect record. sameSpace
// reports whether the op's input and output records share a field space
// (same Go type); when they do not, Writes is forced to FieldsAll so
// output-space demand bits are never interpreted against input-space
// columns.
func resolveFX(sameSpace bool, opts []StageOption) fieldFX {
	var o stageOpts
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	if o.fx.declared && !sameSpace {
		o.fx.writes = FieldsAll
	}
	return o.fx
}

// sameRecordType reports whether two op type parameters are the same Go
// type — the guard resolveFX uses to decide whether declared Writes bits
// may pass input-space demand through.
func sameRecordType[T, U any]() bool {
	return reflect.TypeOf((*T)(nil)) == reflect.TypeOf((*U)(nil))
}
