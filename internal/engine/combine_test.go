package engine

import (
	"encoding/binary"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func countReference(items []int, key func(int) int) map[int]int {
	out := map[int]int{}
	for _, it := range items {
		out[key(it)]++
	}
	return out
}

func TestReduceByKeyAggregates(t *testing.T) {
	ctx := NewContext(4)
	items := intRange(1000)
	key := func(x int) int { return x % 37 }
	d := Parallelize(ctx, items, 8)
	pairs, err := ReduceByKey("rbk", d, 8, key,
		func(int) int { return 1 },
		func(a, b int) int { return a + b },
		KeyedIntCodec{})
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := Collect("c", pairs)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]int{}
	for _, kv := range kvs {
		got[kv.Key] += kv.Val
	}
	if !reflect.DeepEqual(got, countReference(items, key)) {
		t.Fatalf("ReduceByKey counts differ: %v", got)
	}
	// Each output partition must hold its keys sorted and disjoint.
	seen := map[int]bool{}
	for p := 0; p < pairs.NumPartitions(); p++ {
		part, err := pairs.partition(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sort.SliceIsSorted(part, func(i, j int) bool { return part[i].Key < part[j].Key }) {
			t.Fatalf("partition %d keys not sorted", p)
		}
		for _, kv := range part {
			if seen[kv.Key] {
				t.Fatalf("key %d appears in two partitions", kv.Key)
			}
			seen[kv.Key] = true
		}
	}
}

func TestCombineByKeyMatchesNoCombine(t *testing.T) {
	items := intRange(600)
	key := func(x int) int { return x % 21 }
	run := func(disable bool) []Keyed[int] {
		ctx := NewContext(3)
		ctx.DisableMapSideCombine = disable
		d := Parallelize(ctx, items, 5)
		pairs, err := CombineByKey("cbk", d, 4, key,
			func(int) int { return 1 },
			func(c, _ int) int { return c + 1 },
			func(a, b int) int { return a + b },
			nil)
		if err != nil {
			t.Fatal(err)
		}
		kvs, err := Collect("c", pairs)
		if err != nil {
			t.Fatal(err)
		}
		return kvs
	}
	combined, uncombined := run(false), run(true)
	if !reflect.DeepEqual(combined, uncombined) {
		t.Fatalf("combine ablation changed output:\n%v\n%v", combined, uncombined)
	}
}

// TestCountByKeyCombineShipsFewerBytes is the byte-accounting claim behind
// the census rewrite: the combined ReduceByKey census must record strictly
// fewer shuffle-write bytes than the legacy serial-merge CountByKey, while
// producing identical counts.
func TestCountByKeyCombineShipsFewerBytes(t *testing.T) {
	items := intRange(4000)
	key := func(x int) int { return x % 8 }
	run := func(disable bool) (map[int]int, int64) {
		ctx := NewContext(4)
		ctx.DisableMapSideCombine = disable
		d := Parallelize(ctx, items, 8)
		counts, err := CountByKey("census", d, key)
		if err != nil {
			t.Fatal(err)
		}
		var wr int64
		for _, s := range ctx.Metrics().Stages {
			wr += s.ShuffleWriteBytes()
		}
		return counts, wr
	}
	combined, combinedBytes := run(false)
	legacy, legacyBytes := run(true)
	if !reflect.DeepEqual(combined, legacy) {
		t.Fatalf("counts differ: %v vs %v", combined, legacy)
	}
	if !reflect.DeepEqual(combined, countReference(items, key)) {
		t.Fatal("counts wrong")
	}
	if legacyBytes == 0 {
		t.Fatal("legacy census shipped no accounted bytes")
	}
	if combinedBytes >= legacyBytes {
		t.Fatalf("combined census must ship strictly fewer bytes: combined=%d legacy=%d",
			combinedBytes, legacyBytes)
	}
}

func TestCountByKeyPipelinedMatchesBarrier(t *testing.T) {
	items := intRange(900)
	key := func(x int) int { return x % 13 }
	run := func(barrier bool) map[int]int {
		ctx := NewContext(4)
		ctx.DisablePipelinedShuffle = barrier
		counts, err := CountByKey("census", Parallelize(ctx, items, 6), key)
		if err != nil {
			t.Fatal(err)
		}
		return counts
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Fatal("pipelined and barrier CountByKey disagree")
	}
}

func TestKeyedIntCodecRoundTrip(t *testing.T) {
	f := func(keys []int32, vals []int32) bool {
		n := len(keys)
		if len(vals) < n {
			n = len(vals)
		}
		pairs := make([]Keyed[int], n)
		for i := 0; i < n; i++ {
			pairs[i] = Keyed[int]{Key: int(keys[i]), Val: int(vals[i])}
		}
		block, err := KeyedIntCodec{}.Marshal(pairs)
		if err != nil {
			return false
		}
		got, err := KeyedIntCodec{}.Unmarshal(block)
		if err != nil {
			return false
		}
		if len(got) != len(pairs) {
			return false
		}
		for i := range got {
			if got[i] != pairs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyedIntCodecRejectsGarbage(t *testing.T) {
	if _, err := (KeyedIntCodec{}).Unmarshal(nil); err == nil {
		t.Fatal("nil block must not decode")
	}
	if _, err := (KeyedIntCodec{}).Unmarshal([]byte{0x05, 0x02}); err == nil {
		t.Fatal("truncated block must not decode")
	}
}

// TestKeyedIntCodecBoundsPairCount: a corrupt pair count must error before
// it sizes the slice — the allocate-before-validate shape gpflint/alloclen
// guards against (pre-fix this reserved 2^40 pairs, ~16 TiB).
func TestKeyedIntCodecBoundsPairCount(t *testing.T) {
	block := binary.AppendUvarint(nil, 1<<40)
	if _, err := (KeyedIntCodec{}).Unmarshal(block); err == nil {
		t.Fatal("pair count exceeding the payload must error, not allocate")
	}
}

// TestKeyedIntCodecCompact: sorted census-shaped pairs must encode well
// under gob's per-entry framing — the structural reason the combined census
// wins bytes.
func TestKeyedIntCodecCompact(t *testing.T) {
	pairs := make([]Keyed[int], 50)
	for i := range pairs {
		pairs[i] = Keyed[int]{Key: i, Val: 100 + i}
	}
	compact, err := KeyedIntCodec{}.Marshal(pairs)
	if err != nil {
		t.Fatal(err)
	}
	fat, err := gobSerializer[Keyed[int]]{}.Marshal(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(compact) >= len(fat) {
		t.Fatalf("keyed-varint (%dB) not smaller than gob (%dB)", len(compact), len(fat))
	}
}
