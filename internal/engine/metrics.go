package engine

import "time"

// StageKind classifies a stage for the metrics consumers.
type StageKind int

// Stage kinds. Shuffle stages move data between partitions; narrow stages
// transform partitions in place; action stages return data to the driver.
const (
	StageNarrow StageKind = iota
	StageShuffle
	StageAction
)

// String names the stage kind.
func (k StageKind) String() string {
	switch k {
	case StageShuffle:
		return "shuffle"
	case StageAction:
		return "action"
	default:
		return "narrow"
	}
}

// TaskMetrics records one task's execution.
type TaskMetrics struct {
	Partition int
	// Wall is the task's busy time. For pipelined reduce tasks it excludes
	// FetchWait, so Wall stays a CPU-time proxy for the trace replay and the
	// blocked-time analysis can account waiting separately.
	Wall              time.Duration
	SerializeTime     time.Duration // time spent in codec calls
	ShuffleReadBytes  int64
	ShuffleWriteBytes int64
	InputItems        int
	OutputItems       int
	// FetchWait is reduce-side time blocked waiting for a map bucket that no
	// map task has published yet (pipelined shuffle only; the barrier shuffle
	// by construction never waits inside a reduce task).
	FetchWait time.Duration
	// DecodedBytes counts serialized bytes this task actually decoded —
	// block headers plus the columns its projection mask selected (whole
	// blocks for non-columnar codecs).
	DecodedBytes int64
	// PrunedBytes counts serialized bytes skipped via projection pushdown:
	// columns a ReadingFields mask excluded, left untouched by the columnar
	// decoder. Always zero for non-projectable codecs.
	PrunedBytes int64
	// Ran marks a task this process actually executed. Under a multi-process
	// executor each rank records zero-valued placeholders for the tasks its
	// siblings own; MergeRanks uses the flag to splice every task's record
	// from the rank that ran it. Always false on single-process runs (there
	// is nothing to merge).
	Ran bool
	// Rank is the process that executed the task (meaningful only when Ran).
	Rank int
}

// StageMetrics records one stage.
type StageMetrics struct {
	ID   int
	Name string
	Kind StageKind
	// FusedOps is the number of narrow operations fused into this stage by
	// the lineage planner (0 for stages that never went through the planner:
	// shuffles, actions, eager narrow stages). The stage Name joins the fused
	// op names with "+" in execution order.
	FusedOps int
	// InMask/OutMask are the projection planner's resolved edge masks for
	// the stage: the field demand its tasks read their input under, and the
	// fields its output (stored partitions, or shuffle wire blocks for map
	// stages) carries. FieldsAll on both for stages the planner never
	// narrowed; zero on stages recorded before the planner existed in their
	// path (actions without a declared read).
	InMask  FieldMask
	OutMask FieldMask
	Tasks   []TaskMetrics
	// GCPause is the delta of runtime GC pause time observed across the
	// stage (driver-wide, attributed to the stage that triggered it).
	GCPause time.Duration
	// DriverTime is serial time spent on the driver (actions, broadcast).
	DriverTime time.Duration
	// PipelineOverlap is the wall-clock span during which this stage's tasks
	// ran concurrently with the producing map tasks (pipelined shuffle reduce
	// stages only: last map finish minus first reduce start, clamped at zero).
	// Under the barrier shuffle it is always zero.
	PipelineOverlap time.Duration
}

// ShuffleReadBytes sums shuffle-read bytes across tasks.
func (s *StageMetrics) ShuffleReadBytes() int64 {
	var n int64
	for i := range s.Tasks {
		n += s.Tasks[i].ShuffleReadBytes
	}
	return n
}

// ShuffleWriteBytes sums shuffle-write bytes across tasks.
func (s *StageMetrics) ShuffleWriteBytes() int64 {
	var n int64
	for i := range s.Tasks {
		n += s.Tasks[i].ShuffleWriteBytes
	}
	return n
}

// DecodedBytes sums decoded serialized bytes across tasks.
func (s *StageMetrics) DecodedBytes() int64 {
	var n int64
	for i := range s.Tasks {
		n += s.Tasks[i].DecodedBytes
	}
	return n
}

// PrunedBytes sums projection-skipped serialized bytes across tasks.
func (s *StageMetrics) PrunedBytes() int64 {
	var n int64
	for i := range s.Tasks {
		n += s.Tasks[i].PrunedBytes
	}
	return n
}

// TaskTime sums task wall time (the "core time" of the stage).
func (s *StageMetrics) TaskTime() time.Duration {
	var d time.Duration
	for i := range s.Tasks {
		d += s.Tasks[i].Wall
	}
	return d
}

// MaxTaskTime returns the slowest task's wall time (stage critical path under
// unlimited parallelism).
func (s *StageMetrics) MaxTaskTime() time.Duration {
	var d time.Duration
	for i := range s.Tasks {
		if s.Tasks[i].Wall > d {
			d = s.Tasks[i].Wall
		}
	}
	return d
}

// FetchWait sums reduce-side blocked time across tasks.
func (s *StageMetrics) FetchWait() time.Duration {
	var d time.Duration
	for i := range s.Tasks {
		d += s.Tasks[i].FetchWait
	}
	return d
}

// SerializeTime sums codec time across tasks.
func (s *StageMetrics) SerializeTime() time.Duration {
	var d time.Duration
	for i := range s.Tasks {
		d += s.Tasks[i].SerializeTime
	}
	return d
}

// Metrics aggregates all stages of a session.
type Metrics struct {
	Stages []StageMetrics
}

func (m Metrics) clone() Metrics {
	out := Metrics{Stages: make([]StageMetrics, len(m.Stages))}
	copy(out.Stages, m.Stages)
	for i := range out.Stages {
		out.Stages[i].Tasks = append([]TaskMetrics(nil), m.Stages[i].Tasks...)
	}
	return out
}

// NumStages returns the stage count (Table 4's "Stage Num" row).
func (m Metrics) NumStages() int { return len(m.Stages) }

// MergeRanks merges the metrics of sibling SPMD ranks into this (rank 0)
// snapshot. All ranks of a job run the same deterministic driver program, so
// they record the same stage sequence with the same task counts; each task's
// record is taken from the rank whose Ran flag says it executed the task,
// and per-process GC pause deltas are summed into a cluster total. Stage
// scalars measured identically everywhere (DriverTime, PipelineOverlap) keep
// rank 0's values.
func (m Metrics) MergeRanks(others ...Metrics) Metrics {
	out := m.clone()
	for _, o := range others {
		for i := range out.Stages {
			if i >= len(o.Stages) {
				break
			}
			ls, os := &out.Stages[i], &o.Stages[i]
			for j := range ls.Tasks {
				if j < len(os.Tasks) && !ls.Tasks[j].Ran && os.Tasks[j].Ran {
					ls.Tasks[j] = os.Tasks[j]
				}
			}
			ls.GCPause += os.GCPause
		}
	}
	return out
}

// TotalShuffleBytes sums read+write shuffle bytes over all stages (Table 4's
// "Shuffle Data" row counts data moved through the shuffle).
func (m Metrics) TotalShuffleBytes() int64 {
	var n int64
	for i := range m.Stages {
		n += m.Stages[i].ShuffleWriteBytes() + m.Stages[i].ShuffleReadBytes()
	}
	return n
}

// TotalShuffleTime sums serialization plus shuffle-stage task time, the
// engine-side proxy for Table 4's "Shuffle Time".
func (m Metrics) TotalShuffleTime() time.Duration {
	var d time.Duration
	for i := range m.Stages {
		if m.Stages[i].Kind == StageShuffle {
			d += m.Stages[i].TaskTime()
		}
	}
	return d
}

// TotalTaskTime sums task wall time over all stages (core-hours measure).
func (m Metrics) TotalTaskTime() time.Duration {
	var d time.Duration
	for i := range m.Stages {
		d += m.Stages[i].TaskTime()
	}
	return d
}

// TotalDecodedBytes sums decoded serialized bytes over all stages.
func (m Metrics) TotalDecodedBytes() int64 {
	var n int64
	for i := range m.Stages {
		n += m.Stages[i].DecodedBytes()
	}
	return n
}

// TotalPrunedBytes sums projection-skipped bytes over all stages.
func (m Metrics) TotalPrunedBytes() int64 {
	var n int64
	for i := range m.Stages {
		n += m.Stages[i].PrunedBytes()
	}
	return n
}

// PruningRatio returns the fraction of stored serialized bytes that
// projection pushdown skipped: pruned / (decoded + pruned). Zero when nothing
// was decoded.
func (m Metrics) PruningRatio() float64 {
	dec, pr := m.TotalDecodedBytes(), m.TotalPrunedBytes()
	if dec+pr == 0 {
		return 0
	}
	return float64(pr) / float64(dec+pr)
}

// TotalGCPause sums observed GC pause deltas (Table 4's "GC Time").
func (m Metrics) TotalGCPause() time.Duration {
	var d time.Duration
	for i := range m.Stages {
		d += m.Stages[i].GCPause
	}
	return d
}

// TotalFusedOps sums fused narrow-op counts over all stages — the number of
// logical narrow operations the planner collapsed into fused stages.
func (m Metrics) TotalFusedOps() int {
	n := 0
	for i := range m.Stages {
		n += m.Stages[i].FusedOps
	}
	return n
}

// TotalFetchWait sums reduce-side blocked time over all stages — the
// pipelined shuffle's analogue of Spark's fetch-wait metric that the §5.3
// blocked-time analysis attributes separately from task CPU time.
func (m Metrics) TotalFetchWait() time.Duration {
	var d time.Duration
	for i := range m.Stages {
		d += m.Stages[i].FetchWait()
	}
	return d
}

// TotalPipelineOverlap sums the map/reduce overlap spans of pipelined
// shuffle stages.
func (m Metrics) TotalPipelineOverlap() time.Duration {
	var d time.Duration
	for i := range m.Stages {
		d += m.Stages[i].PipelineOverlap
	}
	return d
}

// TotalDriverTime sums serial driver time.
func (m Metrics) TotalDriverTime() time.Duration {
	var d time.Duration
	for i := range m.Stages {
		d += m.Stages[i].DriverTime
	}
	return d
}
