package engine

import (
	"encoding/binary"
	"fmt"
	"testing"
)

// fakeRec is the two-field record type the projection tests store through a
// toy columnar codec: column A and column B, one FieldMask bit each.
type fakeRec struct {
	A int32
	B int32
}

const (
	fakeFieldA FieldMask = 1 << 0
	fakeFieldB FieldMask = 1 << 1
)

// fakeColCodec is a minimal ProjectableSerializer+StatsSerializer: uvarint
// count, uvarint present-column mask, then one 4-bytes/record column per
// present bit (A then B). Like colfmt, a projected encoder writes partial
// blocks — absent columns decode as zeros — and a projected decoder skips
// present columns wholesale, charging them to PrunedBytes.
type fakeColCodec struct {
	mask    FieldMask
	projSet bool
}

const fakeAllFields = fakeFieldA | fakeFieldB

func (c fakeColCodec) effMask() FieldMask {
	if !c.projSet {
		return FieldsAll
	}
	return c.mask
}

func (fakeColCodec) Name() string   { return "fakecol" }
func (fakeColCodec) Columnar() bool { return true }

func (c fakeColCodec) Project(mask FieldMask) Serializer[fakeRec] {
	return fakeColCodec{mask: c.effMask() & mask, projSet: true}
}

func (c fakeColCodec) Marshal(items []fakeRec) ([]byte, error) {
	present := c.effMask() & fakeAllFields
	out := binary.AppendUvarint(nil, uint64(len(items)))
	out = binary.AppendUvarint(out, uint64(present))
	if present&fakeFieldA != 0 {
		for i := range items {
			out = binary.LittleEndian.AppendUint32(out, uint32(items[i].A))
		}
	}
	if present&fakeFieldB != 0 {
		for i := range items {
			out = binary.LittleEndian.AppendUint32(out, uint32(items[i].B))
		}
	}
	return out, nil
}

func (c fakeColCodec) Unmarshal(data []byte) ([]fakeRec, error) {
	items, _, err := c.UnmarshalStats(data)
	return items, err
}

func (c fakeColCodec) UnmarshalStats(data []byte) ([]fakeRec, DecodeStats, error) {
	var st DecodeStats
	n, hdr := binary.Uvarint(data)
	if hdr <= 0 {
		return nil, st, fmt.Errorf("fakecol: bad count")
	}
	present, ph := binary.Uvarint(data[hdr:])
	if ph <= 0 {
		return nil, st, fmt.Errorf("fakecol: bad present mask")
	}
	hdr += ph
	ncols := 0
	for _, f := range []FieldMask{fakeFieldA, fakeFieldB} {
		if FieldMask(present)&f != 0 {
			ncols++
		}
	}
	if uint64(len(data)-hdr) != uint64(ncols)*4*n {
		return nil, st, fmt.Errorf("fakecol: bad block")
	}
	st.DecodedBytes = int64(hdr)
	items := make([]fakeRec, n)
	cols := []struct {
		field FieldMask
		set   func(i int, v int32)
	}{
		{fakeFieldA, func(i int, v int32) { items[i].A = v }},
		{fakeFieldB, func(i int, v int32) { items[i].B = v }},
	}
	off := hdr
	for _, col := range cols {
		if FieldMask(present)&col.field == 0 {
			continue
		}
		size := 4 * int(n)
		if c.effMask()&col.field == 0 {
			st.PrunedBytes += int64(size)
		} else {
			st.DecodedBytes += int64(size)
			for i := 0; i < int(n); i++ {
				col.set(i, int32(binary.LittleEndian.Uint32(data[off+4*i:])))
			}
		}
		off += size
	}
	return items, st, nil
}

func fakeRecs(n int) []fakeRec {
	out := make([]fakeRec, n)
	for i := range out {
		out[i] = fakeRec{A: int32(i), B: int32(1000 + i)}
	}
	return out
}

// storeFake materializes recs as serialized blocks under codec.
func storeFake(t *testing.T, ctx *Context, recs []fakeRec, codec Serializer[fakeRec]) *Dataset[fakeRec] {
	t.Helper()
	ctx.StoreSerialized = true
	d, err := MapPartitions("store", Parallelize(ctx, recs, 4), codec,
		func(_ int, items []fakeRec) ([]fakeRec, error) { return items, nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Force(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestReadingFieldsPrunesDecode(t *testing.T) {
	ctx := NewContext(2)
	d := storeFake(t, ctx, fakeRecs(64), fakeColCodec{})
	ctx.ResetMetrics()

	view := ReadingFields(d, fakeFieldA)
	got, err := Collect("collect-a", view)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r.A != int32(i) {
			t.Fatalf("got[%d].A = %d, want %d", i, r.A, i)
		}
		if r.B != 0 {
			t.Fatalf("got[%d].B = %d, want pruned zero", i, r.B)
		}
	}
	m := ctx.Metrics()
	if m.TotalPrunedBytes() == 0 {
		t.Fatal("projection decode should report pruned bytes")
	}
	if m.TotalDecodedBytes() == 0 {
		t.Fatal("projection decode should report decoded bytes")
	}
	if r := m.PruningRatio(); r <= 0 || r >= 1 {
		t.Fatalf("pruning ratio = %v, want in (0,1)", r)
	}

	// The view does not disturb the underlying dataset: a plain read still
	// decodes everything.
	ctx.ResetMetrics()
	full, err := Collect("collect-full", d)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range full {
		if r.A != int32(i) || r.B != int32(1000+i) {
			t.Fatalf("full[%d] = %+v", i, r)
		}
	}
	if p := ctx.Metrics().TotalPrunedBytes(); p != 0 {
		t.Fatalf("unprojected read pruned %d bytes", p)
	}
}

func TestReadingFieldsViewsCompose(t *testing.T) {
	ctx := NewContext(2)
	d := storeFake(t, ctx, fakeRecs(16), fakeColCodec{})

	// Intersection: (A|B) then A reads only A.
	view := ReadingFields(ReadingFields(d, fakeFieldA|fakeFieldB), fakeFieldA)
	if !view.hasProj || view.proj != fakeFieldA {
		t.Fatalf("composed mask = %v (hasProj=%v), want %v", view.proj, view.hasProj, fakeFieldA)
	}
	// Disjoint masks intersect to zero — header-only decode, all zero values.
	zero := ReadingFields(ReadingFields(d, fakeFieldA), fakeFieldB)
	got, err := Collect("collect-zero", zero)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r != (fakeRec{}) {
			t.Fatalf("got[%d] = %+v, want zero record", i, r)
		}
	}
}

func TestReadingFieldsOnLazyIsNoop(t *testing.T) {
	ctx := NewContext(1)
	ctx.StoreSerialized = true
	d, err := MapPartitions("lazy", Parallelize(ctx, fakeRecs(8), 2), Serializer[fakeRec](fakeColCodec{}),
		func(_ int, items []fakeRec) ([]fakeRec, error) { return items, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !d.isLazy() {
		t.Skip("narrow op was not planned lazily")
	}
	if view := ReadingFields(d, fakeFieldA); view != d {
		t.Fatal("ReadingFields on a lazy dataset must return it unchanged")
	}
}

func TestDisableColumnarFallsBackToGob(t *testing.T) {
	ctx := NewContext(2)
	ctx.DisableColumnar = true
	d := storeFake(t, ctx, fakeRecs(32), fakeColCodec{})

	if _, ok := d.decodeCodec().(gobSerializer[fakeRec]); !ok {
		t.Fatalf("blocks encoded by %T, want gob fallback", d.decodeCodec())
	}
	ctx.ResetMetrics()
	// Projection is inert under gob: full records, nothing pruned, whole
	// blocks charged as decoded.
	got, err := Collect("collect", ReadingFields(d, fakeFieldA))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range got {
		if r.A != int32(i) || r.B != int32(1000+i) {
			t.Fatalf("got[%d] = %+v, want full record", i, r)
		}
	}
	m := ctx.Metrics()
	if m.TotalPrunedBytes() != 0 {
		t.Fatal("gob fallback cannot prune")
	}
	if m.TotalDecodedBytes() == 0 {
		t.Fatal("gob decode should charge block bytes")
	}
}

func TestEffectiveSerializerResolution(t *testing.T) {
	ctx := NewContext(1)
	if _, ok := effectiveSerializer[fakeRec](ctx, nil).(gobSerializer[fakeRec]); !ok {
		t.Fatal("nil codec must resolve to gob")
	}
	if _, ok := effectiveSerializer[fakeRec](ctx, fakeColCodec{}).(fakeColCodec); !ok {
		t.Fatal("columnar codec must be kept when ablation is off")
	}
	ctx.DisableColumnar = true
	if _, ok := effectiveSerializer[fakeRec](ctx, fakeColCodec{}).(gobSerializer[fakeRec]); !ok {
		t.Fatal("columnar codec must fall back to gob under DisableColumnar")
	}
	// Non-columnar codecs are untouched by the ablation.
	if _, ok := effectiveSerializer[fakeRec](ctx, plainFakeCodec{}).(plainFakeCodec); !ok {
		t.Fatal("non-columnar codec must survive DisableColumnar")
	}
}

// plainFakeCodec is a non-columnar, non-projectable codec used to check the
// ablation leaves ordinary codecs alone.
type plainFakeCodec struct{}

func (plainFakeCodec) Name() string { return "plainfake" }

func (plainFakeCodec) Marshal(items []fakeRec) ([]byte, error) {
	return fakeColCodec{}.Marshal(items)
}

func (plainFakeCodec) Unmarshal(data []byte) ([]fakeRec, error) {
	return fakeColCodec{}.Unmarshal(data)
}

func TestCountDecodesHeadersOnly(t *testing.T) {
	ctx := NewContext(2)
	d := storeFake(t, ctx, fakeRecs(128), fakeColCodec{})

	ctx.ResetMetrics()
	n, err := Count("count", d)
	if err != nil || n != 128 {
		t.Fatalf("count = %d, %v", n, err)
	}
	countDec := ctx.Metrics().TotalDecodedBytes()
	if ctx.Metrics().TotalPrunedBytes() == 0 {
		t.Fatal("count over a columnar dataset should prune all columns")
	}

	ctx.ResetMetrics()
	if _, err := Collect("collect", d); err != nil {
		t.Fatal(err)
	}
	fullDec := ctx.Metrics().TotalDecodedBytes()
	if countDec >= fullDec {
		t.Fatalf("count decoded %d bytes, full decode %d — count should be header-only", countDec, fullDec)
	}
}
