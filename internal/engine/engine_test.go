package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func intRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestParallelizePartitioning(t *testing.T) {
	ctx := NewContext(2)
	d := Parallelize(ctx, intRange(10), 3)
	if d.NumPartitions() != 3 {
		t.Fatalf("partitions = %d", d.NumPartitions())
	}
	all, err := Collect("collect", d)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 10 {
		t.Fatalf("collected %d items", len(all))
	}
	for i, v := range all {
		if v != i {
			t.Fatalf("order not preserved: all[%d] = %d", i, v)
		}
	}
}

func TestParallelizeEdgeCases(t *testing.T) {
	ctx := NewContext(1)
	// More partitions than items.
	d := Parallelize(ctx, []int{1, 2}, 8)
	all, err := Collect("c", d)
	if err != nil || len(all) != 2 {
		t.Fatalf("collect = %v, %v", all, err)
	}
	// Zero partitions clamps to 1.
	d2 := Parallelize(ctx, []int{1}, 0)
	if d2.NumPartitions() != 1 {
		t.Fatal("numPartitions should clamp to 1")
	}
	// Empty input.
	d3 := Parallelize(ctx, []int(nil), 4)
	if n, err := Count("count", d3); err != nil || n != 0 {
		t.Fatalf("count = %d, %v", n, err)
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	ctx := NewContext(4)
	d := Parallelize(ctx, intRange(100), 7)
	doubled, err := Map("double", d, nil, func(x int) int { return 2 * x })
	if err != nil {
		t.Fatal(err)
	}
	evens, err := Filter("evens", doubled, func(x int) bool { return x%4 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	expanded, err := FlatMap("expand", evens, nil, func(x int) []int { return []int{x, x + 1} })
	if err != nil {
		t.Fatal(err)
	}
	n, err := Count("count", expanded)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 { // 50 evens × 2
		t.Fatalf("count = %d, want 100", n)
	}
}

func TestReduce(t *testing.T) {
	ctx := NewContext(3)
	d := Parallelize(ctx, intRange(101), 5)
	sum, ok, err := Reduce("sum", d, func(a, b int) int { return a + b })
	if err != nil || !ok {
		t.Fatalf("reduce: %v %v", ok, err)
	}
	if sum != 5050 {
		t.Fatalf("sum = %d", sum)
	}
	empty := Parallelize(ctx, []int(nil), 3)
	_, ok, err = Reduce("sum", empty, func(a, b int) int { return a + b })
	if err != nil || ok {
		t.Fatalf("empty reduce should report not-found: %v %v", ok, err)
	}
}

func TestPartitionByRouting(t *testing.T) {
	ctx := NewContext(2)
	d := Parallelize(ctx, intRange(50), 4)
	byMod, err := PartitionBy("bykey", d, 5, func(x int) int { return x })
	if err != nil {
		t.Fatal(err)
	}
	if err := byMod.Force(); err != nil {
		t.Fatal(err)
	}
	if byMod.NumPartitions() != 5 {
		t.Fatalf("partitions = %d", byMod.NumPartitions())
	}
	// Every partition must hold exactly the values congruent to its index.
	for p := 0; p < 5; p++ {
		items, err := byMod.partition(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != 10 {
			t.Fatalf("partition %d has %d items", p, len(items))
		}
		for _, v := range items {
			if v%5 != p {
				t.Fatalf("value %d in partition %d", v, p)
			}
		}
	}
}

func TestPartitionByNegativeKeys(t *testing.T) {
	ctx := NewContext(1)
	d := Parallelize(ctx, []int{-7, -3, 2}, 1)
	res, err := PartitionBy("neg", d, 4, func(x int) int { return x })
	if err != nil {
		t.Fatal(err)
	}
	n, err := Count("count", res)
	if err != nil || n != 3 {
		t.Fatalf("count = %d, %v", n, err)
	}
	if _, err := PartitionBy("bad", d, 0, func(x int) int { return x }); err == nil {
		t.Fatal("numPartitions 0 must error")
	}
}

func TestShuffleAccounting(t *testing.T) {
	ctx := NewContext(2)
	d := Parallelize(ctx, intRange(1000), 4)
	sh, err := PartitionBy("shuffle", d, 8, func(x int) int { return x })
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Force(); err != nil {
		t.Fatal(err)
	}
	m := ctx.Metrics()
	var wr, rd int64
	for _, s := range m.Stages {
		wr += s.ShuffleWriteBytes()
		rd += s.ShuffleReadBytes()
	}
	if wr == 0 || rd == 0 {
		t.Fatalf("shuffle bytes not recorded: write=%d read=%d", wr, rd)
	}
	if wr != rd {
		t.Fatalf("write %d != read %d: every written bucket must be read", wr, rd)
	}
	// Shuffle creates two stages (map + reduce) of kind shuffle.
	shuffleStages := 0
	for _, s := range m.Stages {
		if s.Kind == StageShuffle {
			shuffleStages++
		}
	}
	if shuffleStages != 2 {
		t.Fatalf("shuffle stages = %d, want 2", shuffleStages)
	}
}

func TestUnion(t *testing.T) {
	ctx := NewContext(2)
	a := Parallelize(ctx, []int{1, 2}, 2)
	b := Parallelize(ctx, []int{3}, 1)
	u, err := Union("u", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumPartitions() != 3 {
		t.Fatalf("partitions = %d", u.NumPartitions())
	}
	all, err := Collect("c", u)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || all[2] != 3 {
		t.Fatalf("union = %v", all)
	}
	if _, err := Union[int]("empty"); err == nil {
		t.Fatal("union of nothing must error")
	}
}

func TestSortPartitions(t *testing.T) {
	ctx := NewContext(2)
	d := Parallelize(ctx, []int{5, 3, 1, 4, 2, 0}, 2)
	s, err := SortPartitions("sort", d, func(a, b int) bool { return a < b })
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < s.NumPartitions(); p++ {
		items, _ := s.partition(p, nil)
		if !sort.IntsAreSorted(items) {
			t.Fatalf("partition %d not sorted: %v", p, items)
		}
	}
}

func TestZipPartitions(t *testing.T) {
	ctx := NewContext(2)
	a := Parallelize(ctx, []int{1, 2, 3, 4}, 2)
	b := Parallelize(ctx, []int{10, 20, 30, 40}, 2)
	z, err := ZipPartitions2("zip", a, b, nil, func(_ int, as, bs []int) ([]int, error) {
		out := make([]int, len(as))
		for i := range as {
			out[i] = as[i] + bs[i]
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	all, err := Collect("c", z)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{11, 22, 33, 44}
	for i := range want {
		if all[i] != want[i] {
			t.Fatalf("zip = %v", all)
		}
	}
	// Mismatched partition counts must error.
	c := Parallelize(ctx, []int{1}, 1)
	if _, err := ZipPartitions2("bad", a, c, nil, func(_ int, as, bs []int) ([]int, error) { return nil, nil }); err == nil {
		t.Fatal("mismatched zip must error")
	}
}

func TestZipPartitions3(t *testing.T) {
	ctx := NewContext(1)
	a := Parallelize(ctx, []int{1, 2}, 2)
	b := Parallelize(ctx, []int{10, 20}, 2)
	c := Parallelize(ctx, []int{100, 200}, 2)
	z, err := ZipPartitions3("zip3", a, b, c, nil, func(_ int, as, bs, cs []int) ([]int, error) {
		return []int{as[0] + bs[0] + cs[0]}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	all, _ := Collect("c", z)
	if len(all) != 2 || all[0] != 111 || all[1] != 222 {
		t.Fatalf("zip3 = %v", all)
	}
}

func TestCountByKey(t *testing.T) {
	ctx := NewContext(2)
	d := Parallelize(ctx, intRange(30), 3)
	counts, err := CountByKey("census", d, func(x int) int { return x % 3 })
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 10 || counts[1] != 10 || counts[2] != 10 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestTaskErrorPropagation(t *testing.T) {
	ctx := NewContext(2)
	d := Parallelize(ctx, intRange(10), 4)
	wantErr := errors.New("boom")
	// Narrow ops are lazy: the op call succeeds, the error surfaces when a
	// barrier forces the fused chain, wrapped with the failing op's name.
	failing, err := MapPartitions("failing", d, nil, func(p int, items []int) ([]int, error) {
		if p == 2 {
			return nil, wantErr
		}
		return items, nil
	})
	if err != nil {
		t.Fatalf("lazy op should not error at record time: %v", err)
	}
	_, err = Collect("c", failing)
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want wrap of boom", err)
	}
	if !strings.Contains(err.Error(), "failing") {
		t.Fatalf("error should name the stage: %v", err)
	}
}

func TestTaskPanicRecovered(t *testing.T) {
	ctx := NewContext(2)
	d := Parallelize(ctx, intRange(10), 4)
	m, err := Map("panicky", d, nil, func(x int) int {
		if x == 7 {
			panic("executor died")
		}
		return x
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Count("count", m); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic should surface as error, got %v", err)
	}
}

func TestSerializedStorage(t *testing.T) {
	ctx := NewContext(2)
	ctx.StoreSerialized = true
	d := WithCodec(Parallelize(ctx, intRange(100), 4), gobSerializer[int]{})
	m, err := Map("ser", d, gobSerializer[int]{}, func(x int) int { return x + 1 })
	if err != nil {
		t.Fatal(err)
	}
	// Lazy until forced; Force materializes the serialized blocks.
	if err := m.Force(); err != nil {
		t.Fatal(err)
	}
	if m.MemoryBytes() == 0 {
		t.Fatal("serialized dataset should report resident bytes")
	}
	all, err := Collect("c", m)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 100 || all[0] != 1 {
		t.Fatalf("collected %v...", all[:3])
	}
	// Serialize time recorded.
	var ser int64
	for _, s := range ctx.Metrics().Stages {
		ser += int64(s.SerializeTime())
	}
	if ser == 0 {
		t.Fatal("serialize time not recorded")
	}
}

func TestBroadcast(t *testing.T) {
	ctx := NewContext(2)
	b := NewBroadcast(ctx, "mask-table", map[string]int{"a": 1}, 1<<20)
	if b.Value["a"] != 1 {
		t.Fatal("broadcast value lost")
	}
	m := ctx.Metrics()
	if len(m.Stages) != 1 || m.Stages[0].Kind != StageAction {
		t.Fatalf("broadcast stage missing: %+v", m.Stages)
	}
	if m.Stages[0].ShuffleWriteBytes() != 1<<20 {
		t.Fatal("broadcast bytes not charged")
	}
}

func TestMetricsAggregation(t *testing.T) {
	ctx := NewContext(2)
	d := Parallelize(ctx, intRange(500), 4)
	d2, err := Map("m", d, nil, func(x int) int { return x })
	if err != nil {
		t.Fatal(err)
	}
	p, err := PartitionBy("p", d2, 4, func(x int) int { return x })
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Force(); err != nil {
		t.Fatal(err)
	}
	m := ctx.Metrics()
	if m.NumStages() != 3 { // map, shuffle/map, shuffle/reduce
		t.Fatalf("stages = %d, want 3", m.NumStages())
	}
	if m.TotalShuffleBytes() == 0 {
		t.Fatal("total shuffle bytes zero")
	}
	if m.TotalTaskTime() <= 0 {
		t.Fatal("task time zero")
	}
	ctx.ResetMetrics()
	if ctx.Metrics().NumStages() != 0 {
		t.Fatal("reset failed")
	}
}

func TestRepartitionBalances(t *testing.T) {
	ctx := NewContext(2)
	// All data in one partition.
	d := FromPartitions(ctx, [][]int{intRange(100), nil, nil})
	r, err := Repartition("rebalance", d, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Force(); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 4; p++ {
		items, _ := r.partition(p, nil)
		if len(items) < 20 || len(items) > 30 {
			t.Fatalf("partition %d has %d items; want ~25", p, len(items))
		}
	}
}

// Property: PartitionBy preserves the multiset of items for arbitrary inputs
// and partition counts.
func TestPartitionByPreservesItemsProperty(t *testing.T) {
	ctx := NewContext(2)
	f := func(items []int16, nParts uint8) bool {
		n := int(nParts%8) + 1
		in := make([]int, len(items))
		for i, v := range items {
			in[i] = int(v)
		}
		d := Parallelize(ctx, in, 3)
		res, err := PartitionBy("prop", d, n, func(x int) int { return x })
		if err != nil {
			return false
		}
		out, err := Collect("c", res)
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		sort.Ints(in)
		sort.Ints(out)
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: chained narrow ops compose like function composition.
func TestMapCompositionProperty(t *testing.T) {
	ctx := NewContext(2)
	f := func(items []int32) bool {
		in := make([]int, len(items))
		for i, v := range items {
			in[i] = int(v)
		}
		d := Parallelize(ctx, in, 4)
		a, err := Map("f", d, nil, func(x int) int { return x*3 + 1 })
		if err != nil {
			return false
		}
		b, err := Map("g", a, nil, func(x int) int { return x - 2 })
		if err != nil {
			return false
		}
		out, err := Collect("c", b)
		if err != nil {
			return false
		}
		for i := range in {
			if out[i] != in[i]*3-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerPoolParallelism(t *testing.T) {
	// Ensure many partitions on few workers completes (semaphore correctness).
	ctx := NewContext(2)
	d := Parallelize(ctx, intRange(10000), 64)
	sum, ok, err := Reduce("sum", d, func(a, b int) int { return a + b })
	if err != nil || !ok {
		t.Fatal(err)
	}
	if sum != 10000*9999/2 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestNewContextDefaults(t *testing.T) {
	if NewContext(0).Workers() < 1 {
		t.Fatal("workers must default to >= 1")
	}
	if NewContext(7).Workers() != 7 {
		t.Fatal("workers not stored")
	}
}

func BenchmarkShuffle(b *testing.B) {
	ctx := NewContext(4)
	d := Parallelize(ctx, intRange(100000), 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PartitionBy(fmt.Sprintf("bench%d", i), d, 16, func(x int) int { return x }); err != nil {
			b.Fatal(err)
		}
	}
}
