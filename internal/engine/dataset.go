package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"github.com/gpf-go/gpf/internal/bufpool"
)

// Dataset is a partitioned in-memory collection — the engine's RDD. A
// dataset lives in one of three states: materialized (parts), serialized
// (blocks, when a codec is attached and the context stores serialized), or
// lazy (plan: a recorded chain of narrow ops not yet executed — see
// lineage.go). Datasets are immutable once materialized: operations return
// new datasets; forcing a lazy dataset fills parts/blocks in place exactly
// once.
type Dataset[T any] struct {
	ctx    *Context
	parts  [][]T
	blocks [][]byte
	codec  Serializer[T]
	// blockCodec is the serializer that actually encoded blocks. It is fixed
	// at block-allocation time and survives WithCodec, so a dataset whose
	// codec was swapped after materialization still decodes its stored bytes
	// with the codec that wrote them (the new codec only applies to outputs
	// derived from this dataset).
	blockCodec Serializer[T]
	plan       *lineage[T]
	// hasProj/proj carry a ReadingFields projection: when set, serialized
	// blocks decode through decodeCodec().Project(proj) if the codec is
	// projectable. hasProj distinguishes "no declaration" (decode everything)
	// from the legal zero mask (count-only decode).
	hasProj bool
	proj    FieldMask
	// owner maps partition index to the SPMD rank that computes (and holds)
	// it; nil selects the canonical p % procs assignment. Narrow operations
	// preserve partitioning, so results inherit their source's owner; shuffle
	// outputs revert to canonical (reduce tasks are assigned canonically);
	// Union installs a custom mapping routing each output slot to its source
	// partition's owner. Irrelevant (never consulted) with one process.
	owner func(p int) int
	// resident marks which partitions this process actually holds. Nil means
	// fully resident: either a single-process run, or a replicated root
	// (Parallelize/FromPartitions inputs every rank constructs identically).
	// Stage outputs under procs > 1 allocate the bitmap and mark only owned
	// partitions, so reading a partition that lives on a sibling rank errors
	// loudly instead of silently yielding empty data.
	resident []bool
}

// gobSerializer is the built-in generic fallback codec, standing in for Java
// serialization when no genomic codec is attached.
type gobSerializer[T any] struct{}

func (gobSerializer[T]) Name() string { return "gob" }

func (gobSerializer[T]) Marshal(items []T) ([]byte, error) {
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	if err := gob.NewEncoder(buf).Encode(items); err != nil {
		return nil, fmt.Errorf("engine: gob encode: %w", err)
	}
	return bufpool.Bytes(buf), nil
}

func (gobSerializer[T]) Unmarshal(data []byte) ([]T, error) {
	var items []T
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&items); err != nil {
		return nil, fmt.Errorf("engine: gob decode: %w", err)
	}
	return items, nil
}

// Parallelize distributes items over numPartitions partitions, preserving
// order (contiguous chunks).
func Parallelize[T any](ctx *Context, items []T, numPartitions int) *Dataset[T] {
	if numPartitions < 1 {
		numPartitions = 1
	}
	parts := make([][]T, numPartitions)
	chunk := (len(items) + numPartitions - 1) / numPartitions
	for i := 0; i < numPartitions; i++ {
		lo := i * chunk
		hi := lo + chunk
		if lo > len(items) {
			lo = len(items)
		}
		if hi > len(items) {
			hi = len(items)
		}
		parts[i] = items[lo:hi]
	}
	return &Dataset[T]{ctx: ctx, parts: parts}
}

// FromPartitions wraps pre-partitioned data.
func FromPartitions[T any](ctx *Context, parts [][]T) *Dataset[T] {
	return &Dataset[T]{ctx: ctx, parts: parts}
}

// WithCodec attaches a serializer to the dataset; subsequent stage outputs
// are stored serialized when ctx.StoreSerialized is set, and shuffles use the
// codec for byte accounting. Already-encoded blocks keep decoding with the
// codec that wrote them (blockCodec), so swapping codecs never reinterprets
// old bytes. On a lazy dataset the pending plan is forked so each codec
// variant forces and materializes independently.
func WithCodec[T any](d *Dataset[T], codec Serializer[T]) *Dataset[T] {
	res := &Dataset[T]{ctx: d.ctx, parts: d.parts, blocks: d.blocks, codec: codec, owner: d.owner, resident: d.resident}
	if d.blocks != nil {
		res.blockCodec = d.decodeCodec()
	}
	if d.isLazy() {
		res.plan = d.plan.fork()
	}
	return res
}

// Codec returns the attached serializer (nil when none).
func (d *Dataset[T]) Codec() Serializer[T] { return d.codec }

// Context returns the owning context.
func (d *Dataset[T]) Context() *Context { return d.ctx }

// NumPartitions returns the partition count (known without forcing: narrow
// ops preserve partitioning).
func (d *Dataset[T]) NumPartitions() int {
	if d.plan != nil {
		return d.plan.nparts
	}
	if d.blocks != nil {
		return len(d.blocks)
	}
	return len(d.parts)
}

// effectiveCodec returns the serializer used to encode this dataset's
// outputs: the attached codec, or the gob fallback when none is attached or
// the DisableColumnar ablation suppresses a columnar codec.
func (d *Dataset[T]) effectiveCodec() Serializer[T] {
	return effectiveSerializer(d.ctx, d.codec)
}

// decodeCodec returns the serializer to decode stored blocks with: the codec
// that encoded them when recorded, the effective codec otherwise (pre-fix
// datasets and zero values).
func (d *Dataset[T]) decodeCodec() Serializer[T] {
	if d.blockCodec != nil {
		return d.blockCodec
	}
	return d.effectiveCodec()
}

// ownerOf returns the rank that computes (and holds) partition p: the
// dataset's custom owner mapping when installed, canonical p % procs
// otherwise. Always 0 on single-process runs.
func (d *Dataset[T]) ownerOf(p int) int {
	procs := d.ctx.procs()
	if procs == 1 {
		return 0
	}
	if d.owner != nil {
		return d.owner(p)
	}
	return p % procs
}

// partition materializes partition p, decoding when stored serialized, and
// charges codec time to tm when non-nil. On a lazy dataset the partition is
// computed through the fused chain closure (downstream lineages read their
// sources this way, which is what fuses an unforced upstream chain into the
// caller's task).
func (d *Dataset[T]) partition(p int, tm *TaskMetrics) ([]T, error) {
	if d.isLazy() {
		return d.plan.compute(p, tm)
	}
	if d.plan != nil && d.plan.err != nil {
		// Forced and failed: the error is sticky, don't serve partial data.
		return nil, d.plan.err
	}
	if d.resident != nil && p < len(d.resident) && !d.resident[p] {
		return nil, fmt.Errorf("engine: partition %d not resident on rank %d (owned by rank %d): cross-rank reads must go through a shuffle or action", p, d.ctx.rank(), d.ownerOf(p))
	}
	if d.blocks != nil {
		start := time.Now()
		codec := d.decodeCodec()
		if d.hasProj {
			if pc, ok := codec.(ProjectableSerializer[T]); ok {
				codec = pc.Project(d.proj)
			}
		}
		items, err := unmarshalCharged(codec, d.blocks[p], tm)
		if err != nil {
			return nil, fmt.Errorf("engine: decode partition %d: %w", p, err)
		}
		if tm != nil {
			tm.SerializeTime += time.Since(start)
		}
		return items, nil
	}
	return d.parts[p], nil
}

// storePartition stores out as partition p of the result; when serialized
// storage is active and a codec is attached, it encodes and charges tm.
func storePartition[T any](res *Dataset[T], p int, out []T, tm *TaskMetrics) error {
	if res.blocks != nil {
		start := time.Now()
		block, err := res.effectiveCodec().Marshal(out)
		if err != nil {
			return fmt.Errorf("engine: encode partition %d: %w", p, err)
		}
		if tm != nil {
			tm.SerializeTime += time.Since(start)
		}
		res.blocks[p] = block
	} else {
		res.parts[p] = out
	}
	if res.resident != nil {
		// Concurrent tasks write distinct elements; the store above
		// happens-before any read of partition p by construction (tasks only
		// read partitions their stage's ownership assigns to them).
		res.resident[p] = true
	}
	return nil
}

// newResult allocates the output dataset for n partitions, carrying over the
// codec and choosing the storage mode. blockCodec records the serializer that
// will actually encode (effectiveSerializer, not codec): under the
// DisableColumnar ablation the stored bytes are gob, and the decode side must
// agree with the encode side.
func newResult[T any](ctx *Context, codec Serializer[T], n int) *Dataset[T] {
	res := &Dataset[T]{ctx: ctx, codec: codec}
	if ctx.StoreSerialized && codec != nil {
		res.blocks = make([][]byte, n)
		res.blockCodec = effectiveSerializer(ctx, codec)
	} else {
		res.parts = make([][]T, n)
	}
	if ctx.procs() > 1 {
		res.resident = make([]bool, n)
	}
	return res
}

// MemoryBytes estimates the resident size of the dataset: exact for
// serialized storage, codec-estimated otherwise (encoding a sample is too
// invasive, so materialized datasets report 0 and callers use SizeOf).
func (d *Dataset[T]) MemoryBytes() int64 {
	var n int64
	for _, b := range d.blocks {
		n += int64(len(b))
	}
	return n
}

// partitionSizeHint estimates the relative cost of processing partition p for
// LPT dispatch: serialized block length when stored serialized, item count
// otherwise. On a lazy dataset it asks the plan (which forwards to the root
// of the fused chain). Hints order dispatch only — a bad hint costs schedule
// quality, never correctness.
func (d *Dataset[T]) partitionSizeHint(p int) int64 {
	if d.isLazy() {
		if d.plan.sizeHint != nil {
			return d.plan.sizeHint(p)
		}
		return 0
	}
	if d.blocks != nil {
		if p < len(d.blocks) {
			return int64(len(d.blocks[p]))
		}
		return 0
	}
	if p < len(d.parts) {
		return int64(len(d.parts[p]))
	}
	return 0
}
