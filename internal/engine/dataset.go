package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"github.com/gpf-go/gpf/internal/bufpool"
)

// Dataset is a partitioned in-memory collection — the engine's RDD. A
// dataset lives in one of four states: materialized (parts), serialized
// (blocks, when a codec is attached and the context stores serialized), lazy
// (plan: a recorded chain of narrow ops not yet executed — see lineage.go),
// or deferred-wide (meta.wide: a shuffle whose execution waits for a
// downstream Force so the projection planner can resolve how many columns
// its buckets must carry — see planner.go and shuffle.go). Datasets are
// immutable once materialized: operations return new datasets; forcing fills
// parts/blocks in place exactly once.
type Dataset[T any] struct {
	ctx    *Context
	parts  [][]T
	blocks [][]byte
	codec  Serializer[T]
	// blockCodec is the serializer that actually encoded blocks. It is fixed
	// at block-allocation time and survives WithCodec, so a dataset whose
	// codec was swapped after materialization still decodes its stored bytes
	// with the codec that wrote them (the new codec only applies to outputs
	// derived from this dataset). When the planner materialized the dataset
	// column-pruned, this is the projected encoder.
	blockCodec Serializer[T]
	plan       *lineage[T]
	// meta is the projection planner's node for this dataset while it has
	// pending work (a lazy chain or a deferred wide op); it carries the
	// run-once state, consumer claims, and plan-graph edges. Nil for
	// datasets born materialized.
	meta *planMeta
	// pendingParts is the output partition count of a deferred wide op,
	// known at record time (the result has neither plan nor storage until
	// its thunk runs).
	pendingParts int
	// hasContent/content record that the dataset was materialized holding
	// only the fields in content (the planner resolved a narrow demand). A
	// later read needing more recomputes through plan when possible and
	// fails loudly otherwise — narrowed storage must never silently serve
	// zeroed fields.
	hasContent bool
	content    FieldMask
	// hasProj/proj carry a ReadingFields projection: when set, serialized
	// blocks decode through decodeCodec().Project(proj) if the codec is
	// projectable. hasProj distinguishes "no declaration" (decode everything)
	// from the legal zero mask (count-only decode).
	hasProj bool
	proj    FieldMask
	// owner maps partition index to the SPMD rank that computes (and holds)
	// it; nil selects the canonical p % procs assignment. Narrow operations
	// preserve partitioning, so results inherit their source's owner; shuffle
	// outputs revert to canonical (reduce tasks are assigned canonically);
	// Union installs a custom mapping routing each output slot to its source
	// partition's owner. Irrelevant (never consulted) with one process.
	owner func(p int) int
	// resident marks which partitions this process actually holds. Nil means
	// fully resident: either a single-process run, or a replicated root
	// (Parallelize/FromPartitions inputs every rank constructs identically).
	// Stage outputs under procs > 1 allocate the bitmap and mark only owned
	// partitions, so reading a partition that lives on a sibling rank errors
	// loudly instead of silently yielding empty data.
	resident []bool
}

// gobSerializer is the built-in generic fallback codec, standing in for Java
// serialization when no genomic codec is attached.
type gobSerializer[T any] struct{}

func (gobSerializer[T]) Name() string { return "gob" }

func (gobSerializer[T]) Marshal(items []T) ([]byte, error) {
	buf := bufpool.Get()
	defer bufpool.Put(buf)
	if err := gob.NewEncoder(buf).Encode(items); err != nil {
		return nil, fmt.Errorf("engine: gob encode: %w", err)
	}
	return bufpool.Bytes(buf), nil
}

func (gobSerializer[T]) Unmarshal(data []byte) ([]T, error) {
	var items []T
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&items); err != nil {
		return nil, fmt.Errorf("engine: gob decode: %w", err)
	}
	return items, nil
}

// Parallelize distributes items over numPartitions partitions, preserving
// order (contiguous chunks).
func Parallelize[T any](ctx *Context, items []T, numPartitions int) *Dataset[T] {
	if numPartitions < 1 {
		numPartitions = 1
	}
	parts := make([][]T, numPartitions)
	chunk := (len(items) + numPartitions - 1) / numPartitions
	for i := 0; i < numPartitions; i++ {
		lo := i * chunk
		hi := lo + chunk
		if lo > len(items) {
			lo = len(items)
		}
		if hi > len(items) {
			hi = len(items)
		}
		parts[i] = items[lo:hi]
	}
	return &Dataset[T]{ctx: ctx, parts: parts}
}

// FromPartitions wraps pre-partitioned data.
func FromPartitions[T any](ctx *Context, parts [][]T) *Dataset[T] {
	return &Dataset[T]{ctx: ctx, parts: parts}
}

// WithCodec attaches a serializer to the dataset; subsequent stage outputs
// are stored serialized when ctx.StoreSerialized is set, and shuffles use the
// codec for byte accounting. Already-encoded blocks keep decoding with the
// codec that wrote them (blockCodec), so swapping codecs never reinterprets
// old bytes. On a lazy dataset the pending plan is forked so each codec
// variant forces and materializes independently; on a deferred wide output
// an identity chain is recorded over it so the variant materializes from the
// shuffle result when forced.
func WithCodec[T any](d *Dataset[T], codec Serializer[T]) *Dataset[T] {
	if d.isLazy() {
		res := &Dataset[T]{ctx: d.ctx, codec: codec, owner: d.owner}
		res.plan = &lineage[T]{
			nparts:   d.plan.nparts,
			ops:      append([]string(nil), d.plan.ops...),
			compute:  d.plan.compute,
			sizeHint: d.plan.sizeHint,
			inMask:   d.plan.inMask,
		}
		// The fork is one more consumer of the chain's inputs: claim them so
		// the planner's widening rule accounts for it.
		for _, in := range d.meta.inputs {
			in.m.claim()
		}
		newLazyMeta(res, d.meta.inputs...)
		return res
	}
	if d.plan == nil && d.meta != nil && !d.meta.done.Load() {
		// Deferred wide output: wrap it in an identity chain (reads nothing,
		// writes nothing — demand passes through unchanged) that the new
		// codec variant materializes from when forced.
		claimInput(d)
		identity := fieldFX{declared: true}
		res := &Dataset[T]{ctx: d.ctx, codec: codec, owner: d.owner}
		res.plan = &lineage[T]{
			nparts:   d.NumPartitions(),
			ops:      []string{"recode"},
			sizeHint: d.partitionSizeHint,
			inMask:   inMaskOf(d, identity),
			compute: func(p int, tm *TaskMetrics, need FieldMask) ([]T, error) {
				return d.partitionNeed(p, tm, need)
			},
		}
		newLazyMeta(res, inputEdge(d, identity))
		return res
	}
	res := &Dataset[T]{
		ctx: d.ctx, parts: d.parts, blocks: d.blocks, codec: codec,
		plan: d.plan, meta: d.meta,
		hasContent: d.hasContent, content: d.content,
		owner: d.owner, resident: d.resident,
	}
	if d.blocks != nil {
		res.blockCodec = d.decodeCodec()
	}
	return res
}

// Codec returns the attached serializer (nil when none).
func (d *Dataset[T]) Codec() Serializer[T] { return d.codec }

// Context returns the owning context.
func (d *Dataset[T]) Context() *Context { return d.ctx }

// NumPartitions returns the partition count (known without forcing: narrow
// ops preserve partitioning and deferred wide ops record their output count).
func (d *Dataset[T]) NumPartitions() int {
	if d.plan != nil {
		return d.plan.nparts
	}
	if d.blocks != nil {
		return len(d.blocks)
	}
	if d.parts != nil {
		return len(d.parts)
	}
	return d.pendingParts
}

// effectiveCodec returns the serializer used to encode this dataset's
// outputs: the attached codec, or the gob fallback when none is attached or
// the DisableColumnar ablation suppresses a columnar codec.
func (d *Dataset[T]) effectiveCodec() Serializer[T] {
	return effectiveSerializer(d.ctx, d.codec)
}

// decodeCodec returns the serializer to decode stored blocks with: the codec
// that encoded them when recorded, the effective codec otherwise (pre-fix
// datasets and zero values).
func (d *Dataset[T]) decodeCodec() Serializer[T] {
	if d.blockCodec != nil {
		return d.blockCodec
	}
	return d.effectiveCodec()
}

// ownerOf returns the rank that computes (and holds) partition p: the
// dataset's custom owner mapping when installed, canonical p % procs
// otherwise. Always 0 on single-process runs.
func (d *Dataset[T]) ownerOf(p int) int {
	procs := d.ctx.procs()
	if procs == 1 {
		return 0
	}
	if d.owner != nil {
		return d.owner(p)
	}
	return p % procs
}

// partition materializes partition p with full field demand — the
// conservative read actions and effect-undeclared consumers use.
func (d *Dataset[T]) partition(p int, tm *TaskMetrics) ([]T, error) {
	return d.partitionNeed(p, tm, FieldsAll)
}

// partitionNeed materializes partition p for a consumer that declared it
// needs only the fields in need, decoding serialized blocks through
// Project(need) when the codec supports it and charging codec time to tm
// when non-nil. On a lazy dataset the partition is computed through the
// fused chain closure with the demand threaded down (downstream lineages
// read their sources this way, which is what fuses an unforced upstream
// chain — and its inferred mask — into the caller's task). On a dataset the
// planner materialized narrower than need, the partition is recomputed
// through the retained chain closure; without one the read fails loudly.
// This is the planner's choke point: Context.DisableProjectionPlanner
// coerces every demand to FieldsAll here.
func (d *Dataset[T]) partitionNeed(p int, tm *TaskMetrics, need FieldMask) ([]T, error) {
	if d.ctx.DisableProjectionPlanner {
		need = FieldsAll
	}
	if d.isLazy() {
		return d.plan.compute(p, tm, need)
	}
	if d.meta != nil {
		if !d.meta.done.Load() {
			return nil, fmt.Errorf("engine: partition %d read from a deferred wide operation that was never forced", p)
		}
		if d.meta.err != nil {
			// Forced and failed: the error is sticky, don't serve partial data.
			return nil, d.meta.err
		}
	}
	if d.hasContent && need&^d.content != 0 {
		if d.plan != nil && d.plan.compute != nil {
			return d.plan.compute(p, tm, need)
		}
		return nil, fmt.Errorf("engine: partition %d was materialized with field mask %#x but this read needs %#x: the consumer appeared after the producer was forced — force with wider demand or declare the consumer first", p, uint64(d.content), uint64(need))
	}
	if d.resident != nil && p < len(d.resident) && !d.resident[p] {
		return nil, fmt.Errorf("engine: partition %d not resident on rank %d (owned by rank %d): cross-rank reads must go through a shuffle or action", p, d.ctx.rank(), d.ownerOf(p))
	}
	if d.blocks != nil {
		start := time.Now()
		codec := d.decodeCodec()
		mask := need
		if d.hasProj {
			mask &= d.proj
		}
		if mask != FieldsAll {
			if pc, ok := codec.(ProjectableSerializer[T]); ok {
				codec = pc.Project(mask)
			}
		}
		items, err := unmarshalCharged(codec, d.blocks[p], tm)
		if err != nil {
			return nil, fmt.Errorf("engine: decode partition %d: %w", p, err)
		}
		if tm != nil {
			tm.SerializeTime += time.Since(start)
		}
		return items, nil
	}
	return d.parts[p], nil
}

// storePartition stores out as partition p of the result; when serialized
// storage is active and a codec is attached, it encodes with the block codec
// fixed at allocation time (the projected encoder when the planner resolved
// a narrow demand) and charges tm.
func storePartition[T any](res *Dataset[T], p int, out []T, tm *TaskMetrics) error {
	if res.blocks != nil {
		start := time.Now()
		block, err := res.blockCodec.Marshal(out)
		if err != nil {
			return fmt.Errorf("engine: encode partition %d: %w", p, err)
		}
		if tm != nil {
			tm.SerializeTime += time.Since(start)
		}
		res.blocks[p] = block
	} else {
		res.parts[p] = out
	}
	if res.resident != nil {
		// Concurrent tasks write distinct elements; the store above
		// happens-before any read of partition p by construction (tasks only
		// read partitions their stage's ownership assigns to them).
		res.resident[p] = true
	}
	return nil
}

// allocResult allocates the storage for n output partitions on d, choosing
// the storage mode and fixing the block codec. A narrow resolved demand
// (need != FieldsAll) selects the projected encoder when the codec can
// project — blocks carry only the demanded columns — and records the
// narrowing in content either way (with a non-projectable chain the source
// decodes may still have pruned the items themselves). blockCodec records
// the serializer that will actually encode (effectiveSerializer, not codec):
// under the DisableColumnar ablation the stored bytes are gob, and the
// decode side must agree with the encode side.
func allocResult[T any](d *Dataset[T], n int, need FieldMask) {
	enc := effectiveSerializer(d.ctx, d.codec)
	if need != FieldsAll {
		d.hasContent, d.content = true, need
		if pc, ok := enc.(ProjectableSerializer[T]); ok {
			enc = pc.Project(need)
		}
	}
	if d.ctx.StoreSerialized && d.codec != nil {
		d.blocks = make([][]byte, n)
		d.blockCodec = enc
	} else {
		d.parts = make([][]T, n)
	}
	if d.ctx.procs() > 1 {
		d.resident = make([]bool, n)
	}
}

// newResult allocates the output dataset for n partitions with full field
// content, carrying over the codec.
func newResult[T any](ctx *Context, codec Serializer[T], n int) *Dataset[T] {
	res := &Dataset[T]{ctx: ctx, codec: codec}
	allocResult(res, n, FieldsAll)
	return res
}

// MemoryBytes estimates the resident size of the dataset: exact for
// serialized storage, codec-estimated otherwise (encoding a sample is too
// invasive, so materialized datasets report 0 and callers use SizeOf).
func (d *Dataset[T]) MemoryBytes() int64 {
	var n int64
	for _, b := range d.blocks {
		n += int64(len(b))
	}
	return n
}

// partitionSizeHint estimates the relative cost of processing partition p for
// LPT dispatch: serialized block length when stored serialized, item count
// otherwise. On a lazy dataset it asks the plan (which forwards to the root
// of the fused chain); on an unforced deferred wide op there is no
// information yet. Hints order dispatch only — a bad hint costs schedule
// quality, never correctness.
func (d *Dataset[T]) partitionSizeHint(p int) int64 {
	if d.isLazy() {
		if d.plan.sizeHint != nil {
			return d.plan.sizeHint(p)
		}
		return 0
	}
	if d.blocks != nil {
		if p < len(d.blocks) {
			return int64(len(d.blocks[p]))
		}
		return 0
	}
	if p < len(d.parts) {
		return int64(len(d.parts[p]))
	}
	return 0
}
