package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/gpf-go/gpf/internal/testutil/leakcheck"
)

// slowCodec delays every Marshal/Unmarshal by delay, forcing map tasks to
// still be running when reduce tasks start — the schedule that exercises
// fetch wait and pipeline overlap.
type slowCodec struct {
	delay time.Duration
}

func (slowCodec) Name() string { return "slow-gob" }

func (c slowCodec) Marshal(items []int) ([]byte, error) {
	time.Sleep(c.delay)
	return gobSerializer[int]{}.Marshal(items)
}

func (c slowCodec) Unmarshal(data []byte) ([]int, error) {
	time.Sleep(c.delay)
	return gobSerializer[int]{}.Unmarshal(data)
}

// jitterCodec sleeps a random duration per call so map tasks complete in a
// different order every run — the adversarial schedule for the determinism
// property. The global rand functions are mutex-protected, so concurrent map
// tasks can share them.
type jitterCodec struct{}

func (jitterCodec) Name() string { return "jitter-gob" }

func (jitterCodec) Marshal(items []int) ([]byte, error) {
	time.Sleep(time.Duration(rand.Intn(3)) * time.Millisecond)
	return gobSerializer[int]{}.Marshal(items)
}

func (c jitterCodec) Unmarshal(data []byte) ([]int, error) {
	return gobSerializer[int]{}.Unmarshal(data)
}

// failingCodec errors on any block containing poison.
type failingCodec struct {
	poison int
}

func (failingCodec) Name() string { return "failing" }

func (c failingCodec) Marshal(items []int) ([]byte, error) {
	for _, it := range items {
		if it == c.poison {
			return nil, fmt.Errorf("poisoned block")
		}
	}
	return gobSerializer[int]{}.Marshal(items)
}

func (c failingCodec) Unmarshal(data []byte) ([]int, error) {
	return gobSerializer[int]{}.Unmarshal(data)
}

// shuffledPartitions runs PartitionBy on items under the given flags and
// returns every output partition's contents.
func shuffledPartitions(t *testing.T, items []int, inParts, outParts, workers int, barrier bool, codec Serializer[int]) [][]int {
	t.Helper()
	ctx := NewContext(workers)
	ctx.DisablePipelinedShuffle = barrier
	d := Parallelize(ctx, items, inParts)
	if codec != nil {
		d = WithCodec(d, codec)
	}
	out, err := PartitionBy("shuffle", d, outParts, func(x int) int { return x * 7 })
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Force(); err != nil {
		t.Fatal(err)
	}
	parts := make([][]int, out.NumPartitions())
	for p := range parts {
		items, err := out.partition(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		parts[p] = items
	}
	return parts
}

// TestPipelinedMatchesBarrierProperty is the core determinism property: for
// random inputs and partitionings, the pipelined shuffle's output partitions
// are identical to the barrier shuffle's.
func TestPipelinedMatchesBarrierProperty(t *testing.T) {
	f := func(raw []int16, inP, outP, w uint8) bool {
		items := make([]int, len(raw))
		for i, v := range raw {
			items[i] = int(v)
		}
		inParts := 1 + int(inP)%6
		outParts := 1 + int(outP)%6
		workers := 1 + int(w)%8
		pipelined := shuffledPartitions(t, items, inParts, outParts, workers, false, nil)
		barrier := shuffledPartitions(t, items, inParts, outParts, workers, true, nil)
		return reflect.DeepEqual(pipelined, barrier)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPipelinedDeterministicUnderRandomCompletion injects random per-block
// serialization delays so map tasks publish in a different order each run;
// the merged output must not change.
func TestPipelinedDeterministicUnderRandomCompletion(t *testing.T) {
	items := intRange(500)
	want := shuffledPartitions(t, items, 6, 4, 4, true, nil)
	for trial := 0; trial < 5; trial++ {
		got := shuffledPartitions(t, items, 6, 4, 4, false, jitterCodec{})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: pipelined output differs from barrier reference", trial)
		}
	}
}

// TestPipelinedMapErrorCancelsReduces injects a map-side serialization
// failure: the shuffle must return that error (not a cancellation), produce
// no result, and leave no goroutine behind even though reduce tasks were
// blocked waiting for the failed map's buckets.
func TestPipelinedMapErrorCancelsReduces(t *testing.T) {
	base := leakcheck.Snapshot()
	ctx := NewContext(8)
	// 2 map partitions, 6 reduce partitions: reduce tasks hold worker slots
	// and block on notifications while the poisoned map task fails.
	d := WithCodec(Parallelize(ctx, intRange(100), 2), failingCodec{poison: 99})
	out, err := PartitionBy("boom", d, 6, func(x int) int { return x })
	if err != nil {
		t.Fatal(err)
	}
	// The shuffle is deferred: the map-side failure surfaces at the barrier.
	err = out.Force()
	if err == nil {
		t.Fatal("expected map-side error")
	}
	if !strings.Contains(err.Error(), "poisoned block") || errors.Is(err, errShuffleCanceled) {
		t.Fatalf("root cause masked by cancellation: %v", err)
	}
	base.Check(t, leakcheck.Timeout(3*time.Second))
}

// TestPipelinedPanicRecovered: a panicking route function must surface as an
// error from the pipelined pass, with no leaked goroutines.
func TestPipelinedPanicRecovered(t *testing.T) {
	base := leakcheck.Snapshot()
	ctx := NewContext(4)
	d := Parallelize(ctx, intRange(50), 4)
	out, err := PartitionBy("panic", d, 4, func(x int) int {
		if x == 17 {
			panic("route blew up")
		}
		return x
	})
	if err != nil {
		t.Fatal(err)
	}
	err = out.Force()
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not converted to error: %v", err)
	}
	base.Check(t, leakcheck.Timeout(3*time.Second))
}

// TestPipelinedFetchWaitAndOverlap sets up more workers than map tasks so
// reduce tasks start while maps are still serializing: FetchWait and
// PipelineOverlap must be recorded, and only on the pipelined run.
func TestPipelinedFetchWaitAndOverlap(t *testing.T) {
	run := func(barrier bool) Metrics {
		ctx := NewContext(8)
		ctx.DisablePipelinedShuffle = barrier
		d := WithCodec(Parallelize(ctx, intRange(400), 2), slowCodec{delay: 10 * time.Millisecond})
		out, err := PartitionBy("pipe", d, 4, func(x int) int { return x })
		if err != nil {
			t.Fatal(err)
		}
		if err := out.Force(); err != nil {
			t.Fatal(err)
		}
		return ctx.Metrics()
	}
	pm := run(false)
	if pm.TotalFetchWait() == 0 {
		t.Fatal("pipelined run recorded no fetch wait despite blocked reduces")
	}
	if pm.TotalPipelineOverlap() == 0 {
		t.Fatal("pipelined run recorded no map/reduce overlap")
	}
	bm := run(true)
	if bm.TotalFetchWait() != 0 || bm.TotalPipelineOverlap() != 0 {
		t.Fatalf("barrier run must not record pipeline metrics: wait=%v overlap=%v",
			bm.TotalFetchWait(), bm.TotalPipelineOverlap())
	}
	// Both runs still record exactly two shuffle stage rows.
	for _, m := range []Metrics{pm, bm} {
		shuffles := 0
		for _, s := range m.Stages {
			if s.Kind == StageShuffle {
				shuffles++
			}
		}
		if shuffles != 2 {
			t.Fatalf("shuffle stage rows = %d, want 2", shuffles)
		}
	}
}

// TestBarrierFallbackMatchesAccounting: the ablation flag must keep the
// write==read byte invariant on both strategies.
func TestBarrierFallbackMatchesAccounting(t *testing.T) {
	for _, barrier := range []bool{false, true} {
		ctx := NewContext(2)
		ctx.DisablePipelinedShuffle = barrier
		d := Parallelize(ctx, intRange(1000), 4)
		out, err := PartitionBy("shuffle", d, 8, func(x int) int { return x })
		if err != nil {
			t.Fatal(err)
		}
		if err := out.Force(); err != nil {
			t.Fatal(err)
		}
		m := ctx.Metrics()
		var wr, rd int64
		for _, s := range m.Stages {
			wr += s.ShuffleWriteBytes()
			rd += s.ShuffleReadBytes()
		}
		if wr == 0 || wr != rd {
			t.Fatalf("barrier=%v: write %d read %d", barrier, wr, rd)
		}
	}
}

// TestLPTOrder checks the dispatch order: descending by hint, stable on
// ties, identity without hints.
func TestLPTOrder(t *testing.T) {
	sizes := []int64{1, 5, 3, 5}
	got := lptOrder(len(sizes), func(i int) int64 { return sizes[i] })
	want := []int{1, 3, 2, 0}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("lptOrder = %v, want %v", got, want)
	}
	if got := lptOrder(3, nil); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("nil hint order = %v", got)
	}
}

// intsCodec encodes ints as fixed 8-byte little-endian words — deliberately
// incompatible with gob framing, for the codec-swap regression test.
type intsCodec struct{}

func (intsCodec) Name() string { return "ints-fixed" }

func (intsCodec) Marshal(items []int) ([]byte, error) {
	out := make([]byte, 0, 8*len(items))
	for _, v := range items {
		u := uint64(v)
		for b := 0; b < 8; b++ {
			out = append(out, byte(u>>(8*b)))
		}
	}
	return out, nil
}

func (intsCodec) Unmarshal(data []byte) ([]int, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("ints-fixed: truncated block")
	}
	out := make([]int, 0, len(data)/8)
	for i := 0; i < len(data); i += 8 {
		var u uint64
		for b := 0; b < 8; b++ {
			u |= uint64(data[i+b]) << (8 * b)
		}
		out = append(out, int(u))
	}
	return out, nil
}

// TestWithCodecSwapDecodesWithOriginalCodec is the regression test for the
// codec-swap corruption bug: blocks encoded by one codec must keep decoding
// with that codec after WithCodec attaches a different one.
func TestWithCodecSwapDecodesWithOriginalCodec(t *testing.T) {
	ctx := NewContext(2)
	ctx.StoreSerialized = true
	src := WithCodec(Parallelize(ctx, intRange(64), 4), intsCodec{})
	// Materialize serialized blocks under intsCodec via an identity stage.
	d, err := Map("ident", src, Serializer[int](intsCodec{}), func(x int) int { return x })
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Force(); err != nil {
		t.Fatal(err)
	}
	// Swap the codec: the stored blocks are still intsCodec bytes. Before the
	// blockCodec fix this decoded fixed-width words with the gob decoder.
	swapped := WithCodec(d, gobSerializer[int]{})
	got, err := Collect("collect", swapped)
	if err != nil {
		t.Fatalf("collect after codec swap: %v", err)
	}
	if !reflect.DeepEqual(got, intRange(64)) {
		t.Fatalf("codec swap corrupted data: got %v", got[:8])
	}
	// New stage outputs derived from the swapped dataset use the new codec.
	d2, err := Map("reenc", swapped, Serializer[int](gobSerializer[int]{}), func(x int) int { return x })
	if err != nil {
		t.Fatal(err)
	}
	got2, err := Collect("collect2", d2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, intRange(64)) {
		t.Fatal("re-encoded dataset corrupted")
	}
}

// TestGCPauseDeltaPopulates: the runtime/metrics-based pause measurement
// must observe forced collections.
func TestGCPauseDeltaPopulates(t *testing.T) {
	if gcPauseMetric == "" {
		t.Skip("runtime exposes no GC pause histogram")
	}
	delta, err := gcPauseDelta(func() error {
		for i := 0; i < 5; i++ {
			runtime.GC()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if delta <= 0 {
		t.Fatalf("gcPauseDelta = %v after 5 forced GCs, want > 0", delta)
	}
}
