package simexec

import (
	"testing"
	"time"

	"github.com/gpf-go/gpf/internal/engine"
)

// TestExecContract: the oracle is a single-process backend the engine can run
// on directly.
func TestExecContract(t *testing.T) {
	e := New(3)
	if e.Name() != "sim" || e.Procs() != 1 || e.Rank() != 0 || e.Slots() != 3 {
		t.Fatalf("contract violated: %s procs=%d rank=%d slots=%d", e.Name(), e.Procs(), e.Rank(), e.Slots())
	}
	ctx := engine.NewContextOn(e)
	d := engine.Parallelize(ctx, []int{5, 4, 3, 2, 1}, 2)
	out, err := engine.PartitionBy("s/pb", d, 2, func(x int) int { return x })
	if err != nil {
		t.Fatal(err)
	}
	total, err := engine.Count("s/count", out)
	if err != nil || total != 5 {
		t.Fatalf("count=%d err=%v", total, err)
	}
}

// TestPredictScalingShape: predictions cover every requested point, makespan
// never increases with more processes on a parallel trace, and speedup is
// anchored at the first point.
func TestPredictScalingShape(t *testing.T) {
	e := New(2)
	ctx := engine.NewContextOn(e)
	items := make([]int, 4000)
	for i := range items {
		items[i] = i
	}
	d := engine.Parallelize(ctx, items, 16)
	out, err := engine.PartitionBy("s/pb", d, 16, func(x int) int { return x * 7 })
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Force(); err != nil {
		t.Fatal(err)
	}
	m := ctx.Metrics()
	// Inflate task costs so the modeled makespans are well above rounding.
	for i := range m.Stages {
		for j := range m.Stages[i].Tasks {
			m.Stages[i].Tasks[j].Wall += 20 * time.Millisecond
		}
	}
	preds := PredictScaling(m, 2, []int{1, 2, 4, 8})
	if len(preds) != 4 {
		t.Fatalf("got %d predictions", len(preds))
	}
	if preds[0].Speedup != 1 {
		t.Fatalf("first point speedup %v, want 1", preds[0].Speedup)
	}
	for i := 1; i < len(preds); i++ {
		if preds[i].Makespan > preds[i-1].Makespan {
			t.Fatalf("makespan increased from W=%d (%v) to W=%d (%v)",
				preds[i-1].Procs, preds[i-1].Makespan, preds[i].Procs, preds[i].Makespan)
		}
	}
	if preds[3].Speedup <= 1.5 {
		t.Fatalf("16 partitions across 8 procs predicted speedup %.2f, want > 1.5", preds[3].Speedup)
	}
}
