// Package simexec is the simulator-backed executor: jobs execute exactly like
// the in-process pool (one process, shared-memory exchanges), but the backend
// doubles as a planning oracle — the metrics a run records replay through the
// cluster model (internal/cluster) to predict how the same job would scale
// across W cooperating processes before ever paying for the real multi-process
// run. The mproc scaling experiment plots these predictions next to the
// measured curve.
package simexec

import (
	"runtime"
	"time"

	"github.com/gpf-go/gpf/internal/cluster"
	"github.com/gpf-go/gpf/internal/engine"
)

// Exec implements engine.Executor as a single-process backend with the
// simulator attached. Execution is identical to the in-process pool; only the
// Name differs, so experiment output can tell the planning run apart.
type Exec struct {
	slots int
}

// New returns a simulator-backed executor with the given task-slot
// parallelism (<1 selects GOMAXPROCS).
func New(slots int) *Exec {
	if slots < 1 {
		slots = runtime.GOMAXPROCS(0)
	}
	return &Exec{slots: slots}
}

// Name implements engine.Executor.
func (e *Exec) Name() string { return "sim" }

// Slots is the task-slot parallelism.
func (e *Exec) Slots() int { return e.slots }

// Procs is always 1: the oracle executes locally and predicts remotely.
func (e *Exec) Procs() int { return 1 }

// Rank is always 0.
func (e *Exec) Rank() int { return 0 }

// Failed never fires: single-process jobs cannot fail remotely.
func (e *Exec) Failed() <-chan struct{} { return nil }

// Err is always nil.
func (e *Exec) Err() error { return nil }

// Exchange returns the shared-memory bucket transport.
func (e *Exec) Exchange(_ uint64, in, out int) engine.Exchange {
	return engine.NewLocalExchange(in, out)
}

// Gather is the identity: one process owns every partition.
func (e *Exec) Gather(_ uint64, _ int, _ func(int) int, owned [][]byte) ([][]byte, error) {
	return owned, nil
}

// LocalConfig models the machine an mproc job actually runs on: W processes
// on one host, each with slots cores, buckets crossing process boundaries
// over loopback TCP. Loopback moves several GB/s and there is no disk in the
// shuffle path, so the per-"node" network share is high and disk is fast
// enough to never dominate.
func LocalConfig(procs, slots int) cluster.Config {
	if procs < 1 {
		procs = 1
	}
	if slots < 1 {
		slots = runtime.GOMAXPROCS(0)
	}
	return cluster.Config{
		Nodes:        procs,
		CoresPerNode: slots,
		Disk:         cluster.DiskModel{BandwidthMBps: 2000, LatencyMs: 0.1},
		Net:          cluster.NetworkModel{BandwidthMBpsPerNode: 4000, LatencyUs: 20},
	}
}

// Prediction is one point of a predicted scaling curve.
type Prediction struct {
	Procs    int
	Cores    int
	Makespan time.Duration
	// Speedup is relative to the first (smallest) requested point.
	Speedup float64
}

// PredictScaling replays recorded metrics through the cluster model at each
// process count, with slots task slots per process — the oracle's answer to
// "what would -backend=mproc -procs=W buy?". Shuffle bytes that stay inside
// a process are still charged to the model's network (the model cannot see
// ownership), so predictions are conservative on transport cost.
func PredictScaling(m engine.Metrics, slots int, procs []int) []Prediction {
	tr := cluster.TraceFromMetrics(m, 1, 1)
	opt := cluster.SparkOptions()
	out := make([]Prediction, 0, len(procs))
	for _, w := range procs {
		if w < 1 {
			w = 1
		}
		cfg := LocalConfig(w, slots)
		res := cluster.Simulate(tr, cfg, w*cfg.CoresPerNode, opt)
		out = append(out, Prediction{Procs: w, Cores: res.Cores, Makespan: res.Makespan})
	}
	if len(out) > 0 && out[0].Makespan > 0 {
		base := out[0].Makespan
		for i := range out {
			if out[i].Makespan > 0 {
				out[i].Speedup = float64(base) / float64(out[i].Makespan)
			}
		}
	}
	return out
}
