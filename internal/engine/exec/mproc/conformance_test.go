package mproc

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/engine/exec/simexec"
)

// The conformance suite: every registered conformance job must produce
// byte-identical output on all three executor backends (in-process pool,
// simulator oracle, multi-process), across task-slot counts (dispatch-order
// independence) and process counts (ownership splits), with the jitter codec
// randomizing bucket arrival where a shuffle is involved.

func init() {
	// conf-shuffle: two chained shuffles plus a sort barrier under a jittery
	// codec — determinism under randomized bucket arrival order.
	RegisterJob("conf-shuffle", func(ctx *engine.Context, spec []byte) ([]byte, error) {
		n, inParts, outParts, err := parseTestSpec(spec)
		if err != nil {
			return nil, err
		}
		d := engine.WithCodec(engine.Parallelize(ctx, seqInts(n), inParts), varintCodec{jitter: true})
		s1, err := engine.PartitionBy("c/p1", d, outParts, func(x int) int { return x * 31 })
		if err != nil {
			return nil, err
		}
		s2, err := engine.PartitionBy("c/p2", s1, inParts, func(x int) int { return x >> 3 })
		if err != nil {
			return nil, err
		}
		s3, err := engine.SortPartitions("c/sort", s2, func(a, b int) bool { return a < b })
		if err != nil {
			return nil, err
		}
		items, err := engine.Collect("c/collect", s3)
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprint(items)), nil
	})

	// conf-broadcast: a broadcast table must be visible inside tasks on every
	// rank (SPMD: each rank materializes it identically).
	RegisterJob("conf-broadcast", func(ctx *engine.Context, spec []byte) ([]byte, error) {
		n, inParts, outParts, err := parseTestSpec(spec)
		if err != nil {
			return nil, err
		}
		table := make([]int, 64)
		for i := range table {
			table[i] = i*i + 1
		}
		bc := engine.NewBroadcast(ctx, "c/bcast", table, int64(8*len(table)))
		d := engine.Parallelize(ctx, seqInts(n), inParts)
		mapped, err := engine.Map("c/lookup", d, engine.Serializer[int](varintCodec{}), func(x int) int {
			return x + bc.Value[x%len(bc.Value)]
		})
		if err != nil {
			return nil, err
		}
		shuf, err := engine.PartitionBy("c/pb", mapped, outParts, func(x int) int { return x })
		if err != nil {
			return nil, err
		}
		items, err := engine.Collect("c/collect", shuf)
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprint(items)), nil
	})

	// conf-union: Union installs a slot-based ownership override — collects
	// and downstream shuffles must route through it, not the canonical p%W.
	RegisterJob("conf-union", func(ctx *engine.Context, spec []byte) ([]byte, error) {
		n, inParts, outParts, err := parseTestSpec(spec)
		if err != nil {
			return nil, err
		}
		a := engine.Parallelize(ctx, seqInts(n), inParts)
		bItems := make([]int, n/2)
		for i := range bItems {
			bItems[i] = -i
		}
		b := engine.Parallelize(ctx, bItems, inParts+1)
		u, err := engine.Union("c/union", a, b)
		if err != nil {
			return nil, err
		}
		total, err := engine.Count("c/count", u)
		if err != nil {
			return nil, err
		}
		shuf, err := engine.PartitionBy("c/pb", u, outParts, func(x int) int { return x * 13 })
		if err != nil {
			return nil, err
		}
		items, err := engine.Collect("c/collect", shuf)
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf("%d|%v", total, items)), nil
	})

	// conf-combine: map-side combine, the census (CountByKey) and a Reduce —
	// the action gathers whose driver-side folds must stay in lockstep.
	RegisterJob("conf-combine", func(ctx *engine.Context, spec []byte) ([]byte, error) {
		n, inParts, outParts, err := parseTestSpec(spec)
		if err != nil {
			return nil, err
		}
		d := engine.WithCodec(engine.Parallelize(ctx, seqInts(n), inParts), varintCodec{jitter: true})
		counts, err := engine.ReduceByKey("c/rbk", d, outParts,
			func(x int) int { return x % 23 },
			func(int) int { return 1 },
			func(a, b int) int { return a + b },
			engine.KeyedIntCodec{})
		if err != nil {
			return nil, err
		}
		kvs, err := engine.Collect("c/collect", counts)
		if err != nil {
			return nil, err
		}
		census, err := engine.CountByKey("c/census", d, func(x int) int { return x % 7 })
		if err != nil {
			return nil, err
		}
		keys := make([]int, 0, len(census))
		for k := range census {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		sum, ok, err := engine.Reduce("c/reduce", d, func(a, b int) int { return a + b })
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "sum=%d ok=%v\n", sum, ok)
		for _, k := range keys {
			fmt.Fprintf(&buf, "%d=%d\n", k, census[k])
		}
		fmt.Fprintf(&buf, "%v\n", kvs)
		return buf.Bytes(), nil
	})
}

var conformanceJobs = []struct {
	name string
	spec []byte
}{
	{"conf-shuffle", []byte("3000,5,4")},
	{"conf-broadcast", []byte("1000,4,3")},
	{"conf-union", []byte("800,3,4")},
	{"conf-combine", []byte("2000,6,5")},
}

// runOn executes a registered job on a constructed context (the inproc and
// sim backends).
func runOn(t *testing.T, ctx *engine.Context, job string, spec []byte) []byte {
	t.Helper()
	fn, ok := jobFor(job)
	if !ok {
		t.Fatalf("job %q not registered", job)
	}
	out, err := fn(ctx, spec)
	if err != nil {
		t.Fatalf("%s: %v", job, err)
	}
	return out
}

// TestConformanceAcrossBackends: for every conformance job, the in-process
// reference output must be matched byte for byte by the simulator backend at
// several slot counts (dispatch order changes with the pool size) and by the
// multi-process backend at several process counts (ownership splits change
// which rank runs what).
func TestConformanceAcrossBackends(t *testing.T) {
	for _, jb := range conformanceJobs {
		t.Run(jb.name, func(t *testing.T) {
			ref := runOn(t, engine.NewContext(4), jb.name, jb.spec)
			if len(ref) == 0 {
				t.Fatal("empty reference output")
			}
			for _, slots := range []int{1, 2, 4} {
				if got := runOn(t, engine.NewContext(slots), jb.name, jb.spec); !bytes.Equal(got, ref) {
					t.Fatalf("inproc slots=%d output differs", slots)
				}
				if got := runOn(t, engine.NewContextOn(simexec.New(slots)), jb.name, jb.spec); !bytes.Equal(got, ref) {
					t.Fatalf("sim slots=%d output differs", slots)
				}
			}
			for _, procs := range []int{1, 2, 3} {
				res, err := Run(jb.name, jb.spec, Options{Procs: procs, Slots: 2})
				if err != nil {
					t.Fatalf("mproc procs=%d: %v", procs, err)
				}
				if !bytes.Equal(res.Output, ref) {
					t.Fatalf("mproc procs=%d output differs:\n%s\nvs\n%s", procs, res.Output, ref)
				}
			}
		})
	}
}

// TestConformanceRepeatedMproc re-runs the jitteriest job several times at
// procs=3: bucket frames arrive in a different interleaving every run, the
// bytes must never change.
func TestConformanceRepeatedMproc(t *testing.T) {
	ref := runOn(t, engine.NewContext(4), "conf-shuffle", []byte("2000,6,5"))
	for trial := 0; trial < 3; trial++ {
		res, err := Run("conf-shuffle", []byte("2000,6,5"), Options{Procs: 3, Slots: 2})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(res.Output, ref) {
			t.Fatalf("trial %d: output drifted", trial)
		}
	}
}
