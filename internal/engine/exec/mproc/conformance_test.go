package mproc

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"github.com/gpf-go/gpf/internal/colfmt"
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/engine/exec/simexec"
	"github.com/gpf-go/gpf/internal/sam"
)

// The conformance suite: every registered conformance job must produce
// byte-identical output on all three executor backends (in-process pool,
// simulator oracle, multi-process), across task-slot counts (dispatch-order
// independence) and process counts (ownership splits), with the jitter codec
// randomizing bucket arrival where a shuffle is involved.

func init() {
	// conf-shuffle: two chained shuffles plus a sort barrier under a jittery
	// codec — determinism under randomized bucket arrival order.
	RegisterJob("conf-shuffle", func(ctx *engine.Context, spec []byte) ([]byte, error) {
		n, inParts, outParts, err := parseTestSpec(spec)
		if err != nil {
			return nil, err
		}
		d := engine.WithCodec(engine.Parallelize(ctx, seqInts(n), inParts), varintCodec{jitter: true})
		s1, err := engine.PartitionBy("c/p1", d, outParts, func(x int) int { return x * 31 })
		if err != nil {
			return nil, err
		}
		s2, err := engine.PartitionBy("c/p2", s1, inParts, func(x int) int { return x >> 3 })
		if err != nil {
			return nil, err
		}
		s3, err := engine.SortPartitions("c/sort", s2, func(a, b int) bool { return a < b })
		if err != nil {
			return nil, err
		}
		items, err := engine.Collect("c/collect", s3)
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprint(items)), nil
	})

	// conf-broadcast: a broadcast table must be visible inside tasks on every
	// rank (SPMD: each rank materializes it identically).
	RegisterJob("conf-broadcast", func(ctx *engine.Context, spec []byte) ([]byte, error) {
		n, inParts, outParts, err := parseTestSpec(spec)
		if err != nil {
			return nil, err
		}
		table := make([]int, 64)
		for i := range table {
			table[i] = i*i + 1
		}
		bc := engine.NewBroadcast(ctx, "c/bcast", table, int64(8*len(table)))
		d := engine.Parallelize(ctx, seqInts(n), inParts)
		mapped, err := engine.Map("c/lookup", d, engine.Serializer[int](varintCodec{}), func(x int) int {
			return x + bc.Value[x%len(bc.Value)]
		})
		if err != nil {
			return nil, err
		}
		shuf, err := engine.PartitionBy("c/pb", mapped, outParts, func(x int) int { return x })
		if err != nil {
			return nil, err
		}
		items, err := engine.Collect("c/collect", shuf)
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprint(items)), nil
	})

	// conf-union: Union installs a slot-based ownership override — collects
	// and downstream shuffles must route through it, not the canonical p%W.
	RegisterJob("conf-union", func(ctx *engine.Context, spec []byte) ([]byte, error) {
		n, inParts, outParts, err := parseTestSpec(spec)
		if err != nil {
			return nil, err
		}
		a := engine.Parallelize(ctx, seqInts(n), inParts)
		bItems := make([]int, n/2)
		for i := range bItems {
			bItems[i] = -i
		}
		b := engine.Parallelize(ctx, bItems, inParts+1)
		u, err := engine.Union("c/union", a, b)
		if err != nil {
			return nil, err
		}
		total, err := engine.Count("c/count", u)
		if err != nil {
			return nil, err
		}
		shuf, err := engine.PartitionBy("c/pb", u, outParts, func(x int) int { return x * 13 })
		if err != nil {
			return nil, err
		}
		items, err := engine.Collect("c/collect", shuf)
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf("%d|%v", total, items)), nil
	})

	// conf-combine: map-side combine, the census (CountByKey) and a Reduce —
	// the action gathers whose driver-side folds must stay in lockstep.
	RegisterJob("conf-combine", func(ctx *engine.Context, spec []byte) ([]byte, error) {
		n, inParts, outParts, err := parseTestSpec(spec)
		if err != nil {
			return nil, err
		}
		d := engine.WithCodec(engine.Parallelize(ctx, seqInts(n), inParts), varintCodec{jitter: true})
		counts, err := engine.ReduceByKey("c/rbk", d, outParts,
			func(x int) int { return x % 23 },
			func(int) int { return 1 },
			func(a, b int) int { return a + b },
			engine.KeyedIntCodec{})
		if err != nil {
			return nil, err
		}
		kvs, err := engine.Collect("c/collect", counts)
		if err != nil {
			return nil, err
		}
		census, err := engine.CountByKey("c/census", d, func(x int) int { return x % 7 })
		if err != nil {
			return nil, err
		}
		keys := make([]int, 0, len(census))
		for k := range census {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		sum, ok, err := engine.Reduce("c/reduce", d, func(a, b int) int { return a + b })
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "sum=%d ok=%v\n", sum, ok)
		for _, k := range keys {
			fmt.Fprintf(&buf, "%d=%d\n", k, census[k])
		}
		fmt.Fprintf(&buf, "%v\n", kvs)
		return buf.Bytes(), nil
	})

	// conf-projection: the projection planner over the real columnar codec.
	// Declared effects let the planner shrink the shuffle wire to partial
	// colfmt blocks (coord+flag columns); the same dataflow runs again under
	// DisableProjectionPlanner and must produce identical records — on every
	// backend, including pruned blocks over the mproc TCP transport.
	RegisterJob("conf-projection", func(ctx *engine.Context, spec []byte) ([]byte, error) {
		n, inParts, outParts, err := parseTestSpec(spec)
		if err != nil {
			return nil, err
		}
		run := func(disable bool) ([]byte, error) {
			ctx.DisableProjectionPlanner = disable
			ctx.StoreSerialized = true
			d := engine.WithCodec(engine.Parallelize(ctx, confRecords(n), inParts),
				engine.Serializer[sam.Record](colfmt.Codec{}))
			census, err := engine.CountByKey("cp/census", d,
				func(r sam.Record) int { return int(r.RefID) },
				engine.ReadsOnly(colfmt.FieldCoord))
			if err != nil {
				return nil, err
			}
			sh, err := engine.PartitionBy("cp/pb", d, outParts,
				func(r sam.Record) int { return int(r.Pos) },
				engine.ReadsOnly(colfmt.FieldCoord))
			if err != nil {
				return nil, err
			}
			proj, err := engine.Map("cp/proj", sh, engine.Serializer[sam.Record](colfmt.Codec{}),
				func(r sam.Record) sam.Record {
					return sam.Record{RefID: r.RefID, Pos: r.Pos, Flag: r.Flag}
				},
				engine.Rebuilds(colfmt.FieldCoord|colfmt.FieldFlag))
			if err != nil {
				return nil, err
			}
			items, err := engine.Collect("cp/collect", proj)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			keys := make([]int, 0, len(census))
			for k := range census {
				keys = append(keys, k)
			}
			sort.Ints(keys)
			for _, k := range keys {
				fmt.Fprintf(&buf, "%d=%d\n", k, census[k])
			}
			for _, r := range items {
				fmt.Fprintf(&buf, "%d:%d:%d\n", r.RefID, r.Pos, r.Flag)
			}
			return buf.Bytes(), nil
		}
		on, err := run(false)
		if err != nil {
			return nil, err
		}
		off, err := run(true)
		if err != nil {
			return nil, err
		}
		ctx.DisableProjectionPlanner = false
		if !bytes.Equal(on, off) {
			return nil, fmt.Errorf("conf-projection: planner output differs from ablation")
		}
		return append(on, off...), nil
	})
}

// confRecords builds n fully deterministic SAM records with every column
// populated, so partial colfmt blocks have something substantial to prune.
func confRecords(n int) []sam.Record {
	recs := make([]sam.Record, n)
	for i := range recs {
		l := 40 + i%60
		seq := make([]byte, l)
		qual := make([]byte, l)
		for j := range seq {
			seq[j] = "ACGT"[(i+j)%4]
			qual[j] = byte(33 + (i*7+j)%40)
		}
		recs[i] = sam.Record{
			Name:    fmt.Sprintf("r%06d", i),
			Flag:    uint16(i % 256),
			RefID:   int32(i % 3),
			Pos:     int32((i * 37) % 100000),
			MapQ:    uint8(i % 60),
			Cigar:   sam.Cigar{{Len: l, Op: 'M'}},
			MateRef: int32((i + 1) % 3),
			MatePos: int32((i * 53) % 100000),
			TempLen: int32(i%400 - 200),
			Seq:     seq,
			Qual:    qual,
			Tags:    map[string]string{"RG": "conf", "NM": fmt.Sprint(i % 5)},
		}
	}
	return recs
}

var conformanceJobs = []struct {
	name string
	spec []byte
}{
	{"conf-shuffle", []byte("3000,5,4")},
	{"conf-broadcast", []byte("1000,4,3")},
	{"conf-union", []byte("800,3,4")},
	{"conf-combine", []byte("2000,6,5")},
	{"conf-projection", []byte("1500,4,3")},
}

// runOn executes a registered job on a constructed context (the inproc and
// sim backends).
func runOn(t *testing.T, ctx *engine.Context, job string, spec []byte) []byte {
	t.Helper()
	fn, ok := jobFor(job)
	if !ok {
		t.Fatalf("job %q not registered", job)
	}
	out, err := fn(ctx, spec)
	if err != nil {
		t.Fatalf("%s: %v", job, err)
	}
	return out
}

// TestConformanceAcrossBackends: for every conformance job, the in-process
// reference output must be matched byte for byte by the simulator backend at
// several slot counts (dispatch order changes with the pool size) and by the
// multi-process backend at several process counts (ownership splits change
// which rank runs what).
func TestConformanceAcrossBackends(t *testing.T) {
	for _, jb := range conformanceJobs {
		t.Run(jb.name, func(t *testing.T) {
			ref := runOn(t, engine.NewContext(4), jb.name, jb.spec)
			if len(ref) == 0 {
				t.Fatal("empty reference output")
			}
			for _, slots := range []int{1, 2, 4} {
				if got := runOn(t, engine.NewContext(slots), jb.name, jb.spec); !bytes.Equal(got, ref) {
					t.Fatalf("inproc slots=%d output differs", slots)
				}
				if got := runOn(t, engine.NewContextOn(simexec.New(slots)), jb.name, jb.spec); !bytes.Equal(got, ref) {
					t.Fatalf("sim slots=%d output differs", slots)
				}
			}
			for _, procs := range []int{1, 2, 3} {
				res, err := Run(jb.name, jb.spec, Options{Procs: procs, Slots: 2})
				if err != nil {
					t.Fatalf("mproc procs=%d: %v", procs, err)
				}
				if !bytes.Equal(res.Output, ref) {
					t.Fatalf("mproc procs=%d output differs:\n%s\nvs\n%s", procs, res.Output, ref)
				}
			}
		})
	}
}

// TestConformanceRepeatedMproc re-runs the jitteriest job several times at
// procs=3: bucket frames arrive in a different interleaving every run, the
// bytes must never change.
func TestConformanceRepeatedMproc(t *testing.T) {
	ref := runOn(t, engine.NewContext(4), "conf-shuffle", []byte("2000,6,5"))
	for trial := 0; trial < 3; trial++ {
		res, err := Run("conf-shuffle", []byte("2000,6,5"), Options{Procs: 3, Slots: 2})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(res.Output, ref) {
			t.Fatalf("trial %d: output drifted", trial)
		}
	}
}
