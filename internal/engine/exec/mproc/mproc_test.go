package mproc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/testutil/leakcheck"
)

// TestMain hands the process over to workerMain when this test binary is the
// re-exec'd worker (jobs are registered in init, so they exist by now);
// otherwise it runs the tests normally.
func TestMain(m *testing.M) {
	WorkerMaybe()
	os.Exit(m.Run())
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// varintCodec is a compact deterministic int serializer for test datasets.
type varintCodec struct {
	jitter bool // sleep randomly per block: adversarial publish order
}

func (varintCodec) Name() string { return "test-varint" }

func (c varintCodec) Marshal(items []int) ([]byte, error) {
	if c.jitter {
		time.Sleep(time.Duration(rand.Intn(3)) * time.Millisecond)
	}
	var tmp [binary.MaxVarintLen64]byte
	buf := make([]byte, 0, 2+len(items))
	buf = append(buf, tmp[:binary.PutUvarint(tmp[:], uint64(len(items)))]...)
	for _, v := range items {
		buf = append(buf, tmp[:binary.PutVarint(tmp[:], int64(v))]...)
	}
	return buf, nil
}

func (varintCodec) Unmarshal(data []byte) ([]int, error) {
	n, read := binary.Uvarint(data)
	if read <= 0 {
		return nil, fmt.Errorf("test-varint: bad count")
	}
	data = data[read:]
	out := make([]int, 0, n)
	for i := uint64(0); i < n; i++ {
		v, r := binary.Varint(data)
		if r <= 0 {
			return nil, fmt.Errorf("test-varint: truncated")
		}
		data = data[r:]
		out = append(out, int(v))
	}
	return out, nil
}

// parseTestSpec decodes the "n,inParts,outParts" spec the test jobs use.
func parseTestSpec(spec []byte) (n, in, out int, err error) {
	parts := strings.Split(string(spec), ",")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("bad spec %q", spec)
	}
	vals := make([]int, 3)
	for i, s := range parts {
		if vals[i], err = strconv.Atoi(s); err != nil {
			return 0, 0, 0, err
		}
	}
	return vals[0], vals[1], vals[2], nil
}

func init() {
	// test-wordcount: shuffle + map-side-combined reduceByKey + collect +
	// count, with a jittery codec so bucket publish order varies per run. The
	// output bytes must be identical whatever the backend or schedule.
	RegisterJob("test-wordcount", func(ctx *engine.Context, spec []byte) ([]byte, error) {
		n, inParts, outParts, err := parseTestSpec(spec)
		if err != nil {
			return nil, err
		}
		d := engine.WithCodec(engine.Parallelize(ctx, seqInts(n), inParts), varintCodec{jitter: true})
		shuf, err := engine.PartitionBy("t/shuffle", d, outParts, func(x int) int { return x * 7 })
		if err != nil {
			return nil, err
		}
		counts, err := engine.ReduceByKey("t/rbk", shuf, outParts,
			func(x int) int { return x % 17 },
			func(int) int { return 1 },
			func(a, b int) int { return a + b },
			engine.KeyedIntCodec{})
		if err != nil {
			return nil, err
		}
		kvs, err := engine.Collect("t/collect", counts)
		if err != nil {
			return nil, err
		}
		total, err := engine.Count("t/count", shuf)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "total=%d\n", total)
		for _, kv := range kvs {
			fmt.Fprintf(&buf, "%d=%d\n", kv.Key, kv.Val)
		}
		return buf.Bytes(), nil
	})

	// test-crash: rank 1 kills itself mid-map (while routing an item its own
	// partition holds). Every other rank must unwind with a clean error.
	RegisterJob("test-crash", func(ctx *engine.Context, spec []byte) ([]byte, error) {
		d := engine.Parallelize(ctx, seqInts(200), 4)
		out, err := engine.PartitionBy("t/crash", d, 4, func(x int) int {
			if x == 60 && ctx.Executor().Rank() == 1 {
				os.Exit(3) // simulated hard crash: no ERR frame, just EOF
			}
			return x
		})
		if err != nil {
			return nil, err
		}
		if _, err := engine.Collect("t/collect", out); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	})

	// test-maperr: a map task fails with a real error on whichever rank owns
	// partition 1. The root cause must reach the driver verbatim.
	RegisterJob("test-maperr", func(ctx *engine.Context, spec []byte) ([]byte, error) {
		d := engine.Parallelize(ctx, seqInts(100), 4)
		mapped, err := engine.MapPartitions("t/boom", d, engine.Serializer[int](varintCodec{}), func(p int, items []int) ([]int, error) {
			if p == 1 {
				return nil, errors.New("injected map failure")
			}
			return items, nil
		})
		if err != nil {
			return nil, err
		}
		if _, err := engine.Collect("t/collect", mapped); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	})

	// test-bench: a plain shuffle sized by the spec, for the transport
	// benchmark.
	RegisterJob("test-bench", func(ctx *engine.Context, spec []byte) ([]byte, error) {
		n, inParts, outParts, err := parseTestSpec(spec)
		if err != nil {
			return nil, err
		}
		d := engine.WithCodec(engine.Parallelize(ctx, seqInts(n), inParts), varintCodec{})
		shuf, err := engine.PartitionBy("b/shuffle", d, outParts, func(x int) int { return x*2654435761 ^ x>>7 })
		if err != nil {
			return nil, err
		}
		total, err := engine.Count("b/count", shuf)
		if err != nil {
			return nil, err
		}
		return []byte(strconv.Itoa(total)), nil
	})
}

// TestMprocMatchesInproc is the backend-identity property: the same job run
// in one process and across 2 and 3 processes must return byte-identical
// output (and move the same shuffle volume), despite the jitter codec
// randomizing bucket arrival order.
func TestMprocMatchesInproc(t *testing.T) {
	spec := []byte("4000,5,7")
	ref, err := Run("test-wordcount", spec, Options{Procs: 1, Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Output) == 0 {
		t.Fatal("empty reference output")
	}
	for _, procs := range []int{2, 3} {
		got, err := Run("test-wordcount", spec, Options{Procs: procs, Slots: 2})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if !bytes.Equal(got.Output, ref.Output) {
			t.Fatalf("procs=%d: output differs from in-process run:\n%s\nvs\n%s", procs, got.Output, ref.Output)
		}
		if got.Metrics.TotalShuffleBytes() != ref.Metrics.TotalShuffleBytes() {
			t.Fatalf("procs=%d: shuffle bytes %d != in-process %d", procs,
				got.Metrics.TotalShuffleBytes(), ref.Metrics.TotalShuffleBytes())
		}
	}
}

// TestMprocMergedMetricsCoverEveryTask: after the cross-rank merge, every
// task of every stage carries the record of the rank that ran it — no
// zero-valued placeholder survives.
func TestMprocMergedMetricsCoverEveryTask(t *testing.T) {
	res, err := Run("test-wordcount", []byte("2000,4,6"), Options{Procs: 2, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Metrics.Stages {
		for _, task := range st.Tasks {
			if !task.Ran {
				t.Fatalf("stage %q task %d not covered by any rank after merge", st.Name, task.Partition)
			}
		}
	}
	if res.Metrics.TotalShuffleBytes() == 0 {
		t.Fatal("merged metrics lost shuffle bytes")
	}
}

// TestMprocWorkerCrash kills rank 1 mid-shuffle with no farewell frame: the
// driver must return a clean error naming the lost worker, leak no
// goroutines, and leave the transport reusable for a following run.
func TestMprocWorkerCrash(t *testing.T) {
	base := leakcheck.Snapshot()
	_, err := Run("test-crash", nil, Options{Procs: 2, Slots: 2})
	if err == nil {
		t.Fatal("expected error from crashed worker")
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("error does not name the lost worker: %v", err)
	}
	base.Check(t)

	// The crash must not poison the process: a fresh run on a new mesh (new
	// sockets, new workers) succeeds.
	if _, err := Run("test-wordcount", []byte("500,3,3"), Options{Procs: 2, Slots: 2}); err != nil {
		t.Fatalf("run after crash: %v", err)
	}
}

// TestMprocWorkerCrashThreeProcs: with a third rank blocked in the same
// stage, the crash must unwind it too (ERR/EOF propagation across the mesh),
// not just the driver.
func TestMprocWorkerCrashThreeProcs(t *testing.T) {
	base := leakcheck.Snapshot()
	_, err := Run("test-crash", nil, Options{Procs: 3, Slots: 2})
	if err == nil {
		t.Fatal("expected error from crashed worker")
	}
	base.Check(t)
}

// TestMprocWorkerMapError: a genuine task error on a worker rank travels to
// the driver as the root cause, not as a masked cancellation.
func TestMprocWorkerMapError(t *testing.T) {
	base := leakcheck.Snapshot()
	_, err := Run("test-maperr", nil, Options{Procs: 2, Slots: 2})
	if err == nil {
		t.Fatal("expected injected failure")
	}
	if !strings.Contains(err.Error(), "injected map failure") {
		t.Fatalf("root cause masked: %v", err)
	}
	base.Check(t)
}

// TestMprocUnknownJob fails fast without forking anything.
func TestMprocUnknownJob(t *testing.T) {
	if _, err := Run("no-such-job", nil, Options{Procs: 2}); err == nil {
		t.Fatal("expected unknown-job error")
	}
}

// BenchmarkShuffleTransport measures one full shuffle job per iteration:
// procs=1 is the shared-memory path, procs>1 pays fork + mesh + wire
// transport, so the delta is the real cost of moving bytes between
// processes.
func BenchmarkShuffleTransport(b *testing.B) {
	spec := []byte("200000,8,8")
	for _, procs := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			var shuffled int64
			for i := 0; i < b.N; i++ {
				res, err := Run("test-bench", spec, Options{Procs: procs, Slots: 2})
				if err != nil {
					b.Fatal(err)
				}
				shuffled = res.Metrics.TotalShuffleBytes()
			}
			b.ReportMetric(float64(shuffled), "shuffle-bytes/op")
		})
	}
}
