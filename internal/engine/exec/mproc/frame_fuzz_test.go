package mproc

import (
	"bytes"
	"net"
	"testing"
	"time"
)

// frame wraps body in a wire frame for the seed corpus.
func frame(kind byte, body []byte) []byte {
	var hdr [frameHeaderLen]byte
	putFrameHeader(&hdr, kind, len(body))
	return append(hdr[:], body...)
}

// FuzzFrameDecode drives the full untrusted-input surface: the frame reader
// (length header validated before any allocation) and every payload parser
// (bounds-checked field readers). Nothing here may panic or allocate
// proportionally to a lying header — same fix-class as compress.unpackSeq.
func FuzzFrameDecode(f *testing.F) {
	// Valid encodings of every message kind.
	f.Add(frame(frameHello, encodeHello(helloMsg{rank: 2, addr: "127.0.0.1:4242"})))
	f.Add(frame(frameJob, encodeJob(jobMsg{name: "wgs", procs: 4, slots: 8,
		addrs: []string{"", "a:1", "b:2", "c:3"}, spec: []byte("spec")})))
	f.Add(frame(framePeer, encodePeer(3)))
	f.Add(frame(frameReady, nil))
	f.Add(frame(frameGo, nil))
	f.Add(frame(frameBucket, encodeBucket(bucketMsg{seq: 7, in: 3, out: 2, m: 1, r: 1, block: []byte{1, 2, 3}})))
	f.Add(frame(frameBucket, encodeBucket(bucketMsg{seq: 7, in: 3, out: 2, m: 2, r: 0, empty: true})))
	f.Add(frame(frameGather, encodeGather(gatherMsg{seq: 9, n: 4, p: 2, blob: []byte("blob")})))
	f.Add(frame(frameGathered, encodeGathered(gatheredMsg{seq: 9, blobs: [][]byte{{1}, nil, {2, 3}}})))
	f.Add(frame(frameDone, []byte{0xff, 0x01}))
	f.Add(frame(frameFin, nil))
	f.Add(frame(frameErr, encodeErr(errMsg{origin: 1, msg: "boom"})))
	// Hostile headers: lying lengths, truncation, geometry overflow.
	f.Add([]byte{frameBucket, 0xff, 0xff, 0xff, 0xff})       // 4 GiB claim, no data
	f.Add([]byte{frameBucket, 0x10, 0x00, 0x00, 0x10, 0x01}) // length >> payload
	f.Add(frame(frameBucket, encodeBucket(bucketMsg{seq: 1, in: 1 << 19, out: 1 << 19, m: 0, r: 0, empty: true})))
	f.Add(frame(0x7f, []byte("unknown kind")))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, body, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		switch kind {
		case frameHello:
			_, _ = parseHello(body)
		case frameJob:
			_, _ = parseJob(body)
		case framePeer:
			_, _ = parsePeer(body)
		case frameBucket:
			if m, err := parseBucket(body); err == nil {
				// The parsed geometry is what sizes exchange state: re-check
				// the invariants the transport relies on.
				if m.in < 1 || m.out < 1 || m.m >= m.in || m.r >= m.out || m.in*m.out > maxPartitions {
					t.Fatalf("parseBucket accepted bad geometry: %+v", m)
				}
			}
		case frameGather:
			if m, err := parseGather(body); err == nil {
				if m.n < 1 || m.p >= m.n || m.n > maxPartitions {
					t.Fatalf("parseGather accepted bad shape: %+v", m)
				}
			}
		case frameGathered:
			_, _ = parseGathered(body)
		case frameDone:
			var metrics = struct{}{}
			_ = metrics
		case frameErr:
			_, _ = parseErr(body)
		}
	})
}

// TestFrameRoundTrip pins the exact wire encodings surviving a round trip.
func TestFrameRoundTrip(t *testing.T) {
	bm := bucketMsg{seq: 42, in: 5, out: 3, m: 4, r: 2, block: []byte{9, 8, 7}}
	var buf bytes.Buffer
	c := conn{c: nopConn{&buf}}
	if err := c.writeFrame(frameBucket, encodeBucket(bm)); err != nil {
		t.Fatal(err)
	}
	kind, body, err := readFrame(&buf)
	if err != nil || kind != frameBucket {
		t.Fatalf("kind %d err %v", kind, err)
	}
	got, err := parseBucket(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.seq != bm.seq || got.in != bm.in || got.out != bm.out || got.m != bm.m || got.r != bm.r || !bytes.Equal(got.block, bm.block) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, bm)
	}
}

// TestFrameLengthRejectedBeforeAlloc: a header claiming more than the payload
// cap errors immediately; a header claiming less than it ships errors after
// at most one chunk.
func TestFrameLengthRejectedBeforeAlloc(t *testing.T) {
	huge := []byte{frameBucket, 0xff, 0xff, 0xff, 0x7f} // ~2 GiB declared
	if _, _, err := readFrame(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized frame length accepted")
	}
	lying := append([]byte{frameBucket, 0x00, 0x00, 0x10, 0x00}, make([]byte, 64)...) // 1 MiB declared, 64 B shipped
	if _, _, err := readFrame(bytes.NewReader(lying)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

// nopConn adapts a buffer to net.Conn for writeFrame in tests.
type nopConn struct{ *bytes.Buffer }

func (nopConn) Close() error                       { return nil }
func (nopConn) LocalAddr() net.Addr                { return nil }
func (nopConn) RemoteAddr() net.Addr               { return nil }
func (nopConn) SetDeadline(t time.Time) error      { return nil }
func (nopConn) SetReadDeadline(t time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(t time.Time) error { return nil }
