package mproc

import (
	"github.com/gpf-go/gpf/internal/engine"
)

// Exec is the multi-process engine.Executor: one per rank, wrapping that
// rank's transport mesh. The engine cannot tell it from the in-process
// backend — shuffle buckets and gather blobs simply arrive through sockets
// instead of shared memory when their peer lives in a sibling process.
type Exec struct {
	t     *transport
	slots int
}

// Name implements engine.Executor.
func (e *Exec) Name() string { return "mproc" }

// Slots is this process's task-slot parallelism.
func (e *Exec) Slots() int { return e.slots }

// Procs is the number of cooperating processes.
func (e *Exec) Procs() int { return e.t.procs }

// Rank is this process's index; rank 0 is the driver.
func (e *Exec) Rank() int { return e.t.rank }

// Failed reports global job failure (remote error, lost worker).
func (e *Exec) Failed() <-chan struct{} { return e.t.failedCh }

// Err reports the failure cause.
func (e *Exec) Err() error { return e.t.Err() }

// Exchange returns the bucket transport for one shuffle stage. The state may
// already exist if a sibling rank raced ahead and its first bucket frame
// arrived before the local engine reached the stage.
func (e *Exec) Exchange(seq uint64, in, out int) engine.Exchange {
	if ex := e.t.exchangeFor(seq, in, out); ex != nil {
		return ex
	}
	// exchangeFor only refuses after failing the job (geometry violation);
	// hand back a stub whose Failed channel is already closed so the stage
	// unwinds through its normal abort path.
	return failedExchange{t: e.t}
}

// failedExchange is the Exchange returned once the job has already failed:
// publishes are dropped, Notify never fires, and Failed/Err report the cause.
type failedExchange struct{ t *transport }

func (fx failedExchange) Publish(int, int, []byte) {}
func (fx failedExchange) Notify(int) <-chan int    { return nil }
func (fx failedExchange) Block(int, int) []byte    { return nil }
func (fx failedExchange) Failed() <-chan struct{}  { return fx.t.failedCh }
func (fx failedExchange) Err() error               { return fx.t.Err() }
func (fx failedExchange) Close()                   {}

// Gather implements the action allgather: every rank contributes the blobs of
// the partitions it owns, the driver assembles the full set (its own blobs
// directly, the workers' via gather frames) and rebroadcasts it, and every
// rank returns the identical complete slice — which is what keeps the ranks'
// subsequent driver-side folds in lockstep.
func (e *Exec) Gather(seq uint64, n int, ownerOf func(int) int, owned [][]byte) ([][]byte, error) {
	t := e.t
	if t.procs == 1 || n == 0 {
		return owned, nil
	}
	owner := func(p int) int {
		if ownerOf != nil {
			return ownerOf(p)
		}
		return p % t.procs
	}
	gs := t.gatherFor(seq, n)
	if t.rank == 0 {
		for p := 0; p < n; p++ {
			if owner(p) == 0 {
				t.gatherStore(gs, p, owned[p])
			}
		}
	} else {
		for p := 0; p < n; p++ {
			if owner(p) == t.rank {
				t.sendTo(0, frameGather, encodeGather(gatherMsg{seq: seq, n: n, p: p, blob: owned[p]}))
			}
		}
	}
	return gs.wait()
}
