package mproc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/gpf-go/gpf/internal/engine"
)

// conn is one peer connection with serialized frame writes. reads happen on
// exactly one goroutine (the read loop), writes from many (map tasks
// publishing buckets, gather senders) under wmu.
type conn struct {
	rank int
	c    net.Conn
	wmu  sync.Mutex
	// finished is set when the peer announced clean shutdown (frameFin, or
	// frameDone on the driver side); a subsequent EOF is then expected and
	// must not fail the job.
	finished bool
	fmu      sync.Mutex
}

func (c *conn) markFinished() {
	c.fmu.Lock()
	c.finished = true
	c.fmu.Unlock()
}

func (c *conn) isFinished() bool {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	return c.finished
}

// writeFrame sends one frame; header and payload go out under the write
// mutex so concurrent senders never interleave.
func (c *conn) writeFrame(kind byte, body []byte) error {
	var hdr [frameHeaderLen]byte
	putFrameHeader(&hdr, kind, len(body))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.c.Write(hdr[:]); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := c.c.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// transport is one rank's view of the job's connection mesh plus the
// per-collective state (shuffle exchanges, gathers) frames are routed into.
type transport struct {
	rank  int
	procs int

	mu        sync.Mutex
	conns     []*conn // indexed by rank; conns[rank] == nil
	exchanges map[uint64]*wireExchange
	gathers   map[uint64]*gatherState

	failOnce sync.Once
	failedCh chan struct{}
	errMu    sync.Mutex
	err      error

	// driver-side signals (rank 0)
	readyCh chan int
	doneCh  chan rankDone
	// worker-side signal
	goCh chan struct{}

	wg sync.WaitGroup // read loops; joined by Close
}

type rankDone struct {
	rank    int
	metrics engine.Metrics
}

func newTransport(rank, procs int) *transport {
	return &transport{
		rank:      rank,
		procs:     procs,
		conns:     make([]*conn, procs),
		exchanges: make(map[uint64]*wireExchange),
		gathers:   make(map[uint64]*gatherState),
		failedCh:  make(chan struct{}),
		readyCh:   make(chan int, procs),
		doneCh:    make(chan rankDone, procs),
		goCh:      make(chan struct{}),
	}
}

// fail records the first job-level failure and unblocks everything waiting
// on Failed. Later calls are no-ops (first cause wins).
func (t *transport) fail(err error) {
	t.failOnce.Do(func() {
		t.errMu.Lock()
		t.err = err
		t.errMu.Unlock()
		close(t.failedCh)
	})
}

func (t *transport) Failed() <-chan struct{} { return t.failedCh }

func (t *transport) Err() error {
	select {
	case <-t.failedCh:
	default:
		return nil
	}
	t.errMu.Lock()
	defer t.errMu.Unlock()
	return t.err
}

// register installs a peer connection and starts its read loop.
func (t *transport) register(rank int, nc net.Conn) *conn {
	c := &conn{rank: rank, c: nc}
	t.mu.Lock()
	t.conns[rank] = c
	t.mu.Unlock()
	return c
}

func (t *transport) conn(rank int) *conn {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.conns[rank]
}

// sendTo writes a frame to a peer; a broken pipe fails the job (the peer is
// gone, so its tasks will never complete).
func (t *transport) sendTo(rank int, kind byte, body []byte) {
	c := t.conn(rank)
	if c == nil {
		t.fail(fmt.Errorf("mproc: no connection to rank %d", rank))
		return
	}
	if err := c.writeFrame(kind, body); err != nil {
		t.fail(fmt.Errorf("mproc: send to rank %d: %w", rank, err))
	}
}

// broadcastErr pushes the local failure to every live peer so their blocked
// collectives unblock, then fails the local transport. Write errors are
// ignored: the peer may already be gone, and the first cause is what matters.
func (t *transport) broadcastErr(err error) {
	body := encodeErr(errMsg{origin: t.rank, msg: err.Error()})
	t.mu.Lock()
	conns := append([]*conn(nil), t.conns...)
	t.mu.Unlock()
	for _, c := range conns {
		if c != nil {
			//lint:ignore gpflint/codecerr best-effort fan-out of an error that is already being raised; dead peers are expected here
			_ = c.writeFrame(frameErr, body)
		}
	}
	t.fail(err)
}

// startReadLoop spawns the demux goroutine for one peer connection.
func (t *transport) startReadLoop(c *conn) {
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		t.readLoop(c)
	}()
}

// readLoop demultiplexes incoming frames into the exchange/gather state until
// the connection closes. EOF after the peer announced clean shutdown ends the
// loop silently; EOF before that is a crashed peer and fails the job.
func (t *transport) readLoop(c *conn) {
	for {
		terminal, err := t.readOne(c)
		if err != nil {
			if errors.Is(err, io.EOF) && c.isFinished() {
				return
			}
			select {
			case <-t.failedCh:
				// Already failed (or shutting down): the closed socket is a
				// consequence, not a cause.
				return
			default:
			}
			t.fail(fmt.Errorf("mproc: rank %d connection: %w", c.rank, err))
			return
		}
		if terminal {
			// The peer announced shutdown (DONE/FIN/ERR): nothing further is
			// expected on this connection.
			return
		}
	}
}

// readOne reads and dispatches a single frame, reporting whether it was the
// peer's terminal frame. A non-nil error is a connection-level problem (EOF,
// corrupt frame); protocol frames are handled in place.
func (t *transport) readOne(c *conn) (bool, error) {
	kind, body, err := readFrame(c.c)
	if err != nil {
		return false, err
	}
	switch kind {
	case frameReady:
		select {
		case t.readyCh <- c.rank:
		default:
		}
	case frameGo:
		select {
		case <-t.goCh:
		default:
			close(t.goCh)
		}
	case frameBucket:
		m, perr := parseBucket(body)
		if perr != nil {
			return false, perr
		}
		if ex := t.exchangeFor(m.seq, m.in, m.out); ex != nil {
			if derr := ex.deliver(m.m, m.r, m.block, m.empty); derr != nil {
				return false, derr
			}
		}
	case frameGather:
		m, perr := parseGather(body)
		if perr != nil {
			return false, perr
		}
		t.gatherStore(t.gatherFor(m.seq, m.n), m.p, m.blob)
	case frameGathered:
		m, perr := parseGathered(body)
		if perr != nil {
			return false, perr
		}
		t.gatherFor(m.seq, len(m.blobs)).complete(m.blobs)
	case frameDone:
		var metrics engine.Metrics
		if derr := decodeMetrics(body, &metrics); derr != nil {
			return false, derr
		}
		c.markFinished()
		t.doneCh <- rankDone{rank: c.rank, metrics: metrics}
		return true, nil
	case frameFin:
		c.markFinished()
		return true, nil
	case frameErr:
		m, perr := parseErr(body)
		if perr != nil {
			return false, perr
		}
		c.markFinished() // the origin exits after sending; expect EOF
		t.fail(fmt.Errorf("mproc: rank %d: %s", m.origin, m.msg))
		return true, nil
	default:
		return false, fmt.Errorf("mproc: unexpected frame kind 0x%02x mid-job", kind)
	}
	return false, nil
}

// closeAll closes every connection and joins the read loops. Safe to call
// more than once.
func (t *transport) closeAll() {
	t.mu.Lock()
	conns := append([]*conn(nil), t.conns...)
	t.mu.Unlock()
	for _, c := range conns {
		if c != nil {
			_ = c.c.Close()
		}
	}
	t.wg.Wait()
}

// --- shuffle exchange ---

// wireExchange is the cross-process bucket transport of one shuffle stage.
// Publishes to reduce partitions this rank owns go straight into the local
// block table + notify channel (the Sparkle shared-memory fast path);
// publishes to remote-owned partitions leave as bucket frames, and arrivals
// from sibling ranks are delivered by the read loop into the same local
// structures the in-process path uses — the engine's reduce tasks cannot
// tell the difference.
type wireExchange struct {
	t       *transport
	seq     uint64
	in, out int

	mu     sync.Mutex
	closed bool
	blocks [][]byte
	seen   []bool // (m, r) pairs already delivered; duplicates are protocol errors
	notify []chan int
}

// exchangeFor returns (creating on demand) the exchange state for seq. Both
// the engine (Exchange call) and the read loop (first bucket frame from a
// rank that is ahead) may create it; geometry comes with every bucket frame
// so either side can size the state. A geometry mismatch is a protocol
// violation: it fails the job and returns nil.
func (t *transport) exchangeFor(seq uint64, in, out int) *wireExchange {
	t.mu.Lock()
	ex, ok := t.exchanges[seq]
	if !ok {
		ex = &wireExchange{t: t, seq: seq, in: in, out: out, blocks: make([][]byte, in*out), seen: make([]bool, in*out), notify: make([]chan int, out)}
		for r := range ex.notify {
			ex.notify[r] = make(chan int, in)
		}
		t.exchanges[seq] = ex
	}
	t.mu.Unlock()
	if ex.in != in || ex.out != out {
		t.fail(fmt.Errorf("mproc: exchange %d geometry mismatch: %dx%d vs %dx%d", seq, ex.in, ex.out, in, out))
		return nil
	}
	return ex
}

// deliver stores an arrived bucket and signals readiness. The notify channel
// is buffered to the map-task count and each (m, r) is delivered exactly
// once globally, so the send never blocks the read loop; a duplicate (a
// misbehaving peer could otherwise overfill the channel and wedge the loop)
// is rejected as an error.
func (ex *wireExchange) deliver(m, r int, block []byte, empty bool) error {
	if empty {
		block = nil
	}
	ex.mu.Lock()
	if ex.closed {
		ex.mu.Unlock()
		return nil // late frame after abort; the stage is already over locally
	}
	idx := m*ex.out + r
	if ex.seen[idx] {
		ex.mu.Unlock()
		return fmt.Errorf("mproc: exchange %d: duplicate bucket (%d,%d)", ex.seq, m, r)
	}
	ex.seen[idx] = true
	ex.blocks[idx] = block
	ch := ex.notify[r]
	ex.mu.Unlock()
	ch <- m
	return nil
}

// Publish implements engine.Exchange. Remote-owned partitions ship the block
// as a bucket frame (nil block = empty marker); locally-owned ones take the
// shared-memory path.
func (ex *wireExchange) Publish(m, r int, block []byte) {
	owner := r % ex.t.procs
	if owner == ex.t.rank {
		if err := ex.deliver(m, r, block, block == nil); err != nil {
			ex.t.fail(err)
		}
		return
	}
	body := encodeBucket(bucketMsg{seq: ex.seq, in: ex.in, out: ex.out, m: m, r: r, empty: block == nil, block: block})
	ex.t.sendTo(owner, frameBucket, body)
}

func (ex *wireExchange) Notify(r int) <-chan int {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.notify[r]
}

func (ex *wireExchange) Block(m, r int) []byte {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return ex.blocks[m*ex.out+r]
}

func (ex *wireExchange) Failed() <-chan struct{} { return ex.t.failedCh }
func (ex *wireExchange) Err() error              { return ex.t.Err() }

// Close releases the stage's block table. The state entry stays registered
// (closed) so frames still in flight after an abort are dropped, not
// resurrected into a fresh exchange.
func (ex *wireExchange) Close() {
	ex.mu.Lock()
	ex.closed = true
	ex.blocks = nil
	ex.mu.Unlock()
}

// --- action gather ---

// gatherState accumulates one allgather collective: per-partition blobs flow
// from their owning ranks to the driver, which rebroadcasts the full set.
type gatherState struct {
	t   *transport
	seq uint64

	mu    sync.Mutex
	n     int
	blobs [][]byte
	have  []bool
	got   int
	sent  bool          // driver: full set already rebroadcast
	done  chan struct{} // closed when blobs holds the complete set locally
}

// gatherFor returns (creating on demand) the gather state for seq; n sizes
// it (every creation path knows n: the engine call and both frame kinds
// carry it).
func (t *transport) gatherFor(seq uint64, n int) *gatherState {
	t.mu.Lock()
	defer t.mu.Unlock()
	if gs, ok := t.gathers[seq]; ok {
		return gs
	}
	gs := &gatherState{t: t, seq: seq, n: n, blobs: make([][]byte, n), have: make([]bool, n), done: make(chan struct{})}
	t.gathers[seq] = gs
	return gs
}

// gatherStore records one partition blob on the driver and rebroadcasts the
// completed set once the last one lands (whether it arrived by frame or from
// the driver's own tasks).
func (t *transport) gatherStore(gs *gatherState, p int, blob []byte) {
	gs.mu.Lock()
	if p >= gs.n {
		gs.mu.Unlock()
		t.fail(fmt.Errorf("mproc: gather %d: partition %d outside %d", gs.seq, p, gs.n))
		return
	}
	if !gs.have[p] {
		gs.have[p] = true
		gs.blobs[p] = blob
		gs.got++
	}
	full := gs.got == gs.n && !gs.sent
	if full {
		gs.sent = true
	}
	gs.mu.Unlock()
	if full {
		body := encodeGathered(gatheredMsg{seq: gs.seq, blobs: gs.blobs})
		for rank := 1; rank < t.procs; rank++ {
			t.sendTo(rank, frameGathered, body)
		}
		close(gs.done)
	}
}

// complete installs the driver's rebroadcast set on a worker.
func (gs *gatherState) complete(blobs [][]byte) {
	gs.mu.Lock()
	if len(blobs) == gs.n && gs.got != gs.n {
		copy(gs.blobs, blobs)
		gs.got = gs.n
		gs.mu.Unlock()
		close(gs.done)
		return
	}
	gs.mu.Unlock()
}

// wait blocks until the full set is assembled or the job fails.
func (gs *gatherState) wait() ([][]byte, error) {
	select {
	case <-gs.done:
		return gs.blobs, nil
	case <-gs.t.failedCh:
		return nil, gs.t.Err()
	}
}
