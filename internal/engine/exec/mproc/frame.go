// Package mproc is the multi-process executor backend: W cooperating OS
// processes run the same registered job function in SPMD lockstep (rank 0 is
// the driver process itself, ranks 1..W-1 are re-exec'd workers), and shuffle
// buckets move between ranks as length-prefixed frames over local TCP
// connections. The serialized blocks crossing the wire are exactly the blocks
// the engine's codecs produced (internal/colfmt for columnar datasets) — no
// re-encode at the transport boundary.
//
// Because Go closures cannot cross process boundaries, jobs are registered by
// name (RegisterJob) and workers are the current executable re-exec'd with a
// worker environment; WorkerMaybe, called first thing in main (or TestMain),
// hijacks the process when that environment is present. Only []byte job specs
// and []byte results cross the wire; every rank derives identical control
// flow from the same spec, which is what keeps the engine's collective
// sequence numbers aligned.
package mproc

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame kinds. A frame is [kind u8][len u32 LE][payload]; payload fields are
// uvarint-framed (see payload/reader below).
const (
	frameHello    = byte(iota + 1) // worker→driver: rank, listen addr
	frameJob                       // driver→worker: name, procs, slots, peer addrs, spec
	framePeer                      // dialing worker→accepting worker: own rank
	frameReady                     // worker→driver: mesh established
	frameGo                        // driver→worker: start the job
	frameBucket                    // shuffle bucket: seq, geometry, (m, r), block
	frameGather                    // worker→driver: seq, n, p, blob
	frameGathered                  // driver→worker: seq, all n blobs
	frameDone                      // worker→driver: job done, gob metrics
	frameFin                       // worker→peer: clean shutdown, expect EOF next
	frameErr                       // any→any: origin rank, error message
	frameMax      = frameErr
)

const (
	// maxFramePayload caps a frame's declared length. A bucket block is one
	// encoded partition bucket — far below this — so anything bigger is a
	// corrupt or hostile header, rejected before any allocation happens.
	maxFramePayload = 1 << 28 // 256 MiB
	// readChunk bounds how much readFrame allocates ahead of data actually
	// received, so a lying length header on a truncated stream costs at most
	// one chunk (same fix-class as compress.unpackSeq: never size a buffer
	// from an unvalidated header).
	readChunk = 1 << 20 // 1 MiB
	// maxRanks bounds rank/proc counts in control frames.
	maxRanks = 1 << 12
)

// frameHeaderLen is the fixed [kind][len u32] prefix.
const frameHeaderLen = 5

// putFrameHeader writes the frame header for kind and payload length n into
// hdr.
func putFrameHeader(hdr *[frameHeaderLen]byte, kind byte, n int) {
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(n))
}

// readFrame reads one frame. The declared length is validated against
// maxFramePayload before anything is allocated, and the payload buffer grows
// chunk-wise with the bytes actually received — a corrupt header can neither
// over-allocate nor panic, it errors. io.EOF is returned untranslated only
// on a clean boundary (no partial header).
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("mproc: truncated frame header: %w", err)
	}
	kind := hdr[0]
	if kind == 0 || kind > frameMax {
		return 0, nil, fmt.Errorf("mproc: unknown frame kind 0x%02x", kind)
	}
	n := int(binary.LittleEndian.Uint32(hdr[1:]))
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("mproc: frame length %d exceeds limit %d", n, maxFramePayload)
	}
	if n == 0 {
		return kind, nil, nil
	}
	first := n
	if first > readChunk {
		first = readChunk
	}
	payload := make([]byte, 0, first)
	buf := make([]byte, first)
	for len(payload) < n {
		k := n - len(payload)
		if k > readChunk {
			k = readChunk
		}
		if _, err := io.ReadFull(r, buf[:k]); err != nil {
			return 0, nil, fmt.Errorf("mproc: truncated frame payload (%d of %d bytes): %w", len(payload), n, err)
		}
		payload = append(payload, buf[:k]...)
	}
	return kind, payload, nil
}

// payload builds a frame payload from uvarint-framed fields.
type payload struct{ b []byte }

func (p *payload) uvarint(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	p.b = append(p.b, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

func (p *payload) bytes(b []byte) {
	p.uvarint(uint64(len(b)))
	p.b = append(p.b, b...)
}

func (p *payload) str(s string) {
	p.uvarint(uint64(len(s)))
	p.b = append(p.b, s...)
}

// reader consumes a frame payload field by field. Every accessor
// bounds-checks before touching the buffer: corrupt input yields an error,
// never a panic or an allocation sized from untrusted bytes (byte-field
// results alias the already-received payload).
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("mproc: corrupt frame: "+format, args...)
	}
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

// intn reads a uvarint bounded by limit (inclusive).
func (r *reader) intn(what string, limit uint64) int {
	v := r.uvarint()
	if r.err == nil && v > limit {
		r.fail("%s %d exceeds limit %d", what, v, limit)
	}
	return int(v)
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)) {
		r.fail("field length %d exceeds remaining payload %d", n, len(r.b))
		return nil
	}
	out := r.b[:n:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.fail("missing byte field")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("mproc: corrupt frame: %d trailing bytes", len(r.b))
	}
	return nil
}

// --- typed messages ---

type helloMsg struct {
	rank int
	addr string
}

func encodeHello(m helloMsg) []byte {
	var p payload
	p.uvarint(uint64(m.rank))
	p.str(m.addr)
	return p.b
}

func parseHello(b []byte) (helloMsg, error) {
	r := reader{b: b}
	m := helloMsg{rank: r.intn("rank", maxRanks), addr: r.str()}
	return m, r.done()
}

type jobMsg struct {
	name  string
	procs int
	slots int
	addrs []string
	spec  []byte
}

func encodeJob(m jobMsg) []byte {
	var p payload
	p.str(m.name)
	p.uvarint(uint64(m.procs))
	p.uvarint(uint64(m.slots))
	p.uvarint(uint64(len(m.addrs)))
	for _, a := range m.addrs {
		p.str(a)
	}
	p.bytes(m.spec)
	return p.b
}

func parseJob(b []byte) (jobMsg, error) {
	r := reader{b: b}
	m := jobMsg{name: r.str(), procs: r.intn("procs", maxRanks), slots: r.intn("slots", 1<<16)}
	n := r.intn("addr count", maxRanks)
	for i := 0; i < n && r.err == nil; i++ {
		m.addrs = append(m.addrs, r.str())
	}
	m.spec = r.bytes()
	return m, r.done()
}

func encodePeer(rank int) []byte {
	var p payload
	p.uvarint(uint64(rank))
	return p.b
}

func parsePeer(b []byte) (int, error) {
	r := reader{b: b}
	rank := r.intn("rank", maxRanks)
	return rank, r.done()
}

type bucketMsg struct {
	seq     uint64
	in, out int
	m, r    int
	empty   bool
	block   []byte
}

func encodeBucket(m bucketMsg) []byte {
	var p payload
	p.uvarint(m.seq)
	p.uvarint(uint64(m.in))
	p.uvarint(uint64(m.out))
	p.uvarint(uint64(m.m))
	p.uvarint(uint64(m.r))
	if m.empty {
		p.b = append(p.b, 1)
	} else {
		p.b = append(p.b, 0)
		p.bytes(m.block)
	}
	return p.b
}

// maxPartitions bounds shuffle geometry in bucket frames (sizes the local
// block table, so it must be validated before allocation).
const maxPartitions = 1 << 20

func parseBucket(b []byte) (bucketMsg, error) {
	r := reader{b: b}
	m := bucketMsg{
		seq: r.uvarint(),
		in:  r.intn("map count", maxPartitions),
		out: r.intn("reduce count", maxPartitions),
	}
	m.m = r.intn("map index", maxPartitions)
	m.r = r.intn("reduce index", maxPartitions)
	m.empty = r.byte() != 0
	if !m.empty {
		m.block = r.bytes()
	}
	if r.err == nil {
		if m.in < 1 || m.out < 1 || m.m >= m.in || m.r >= m.out || m.in*m.out > maxPartitions {
			r.fail("bucket (%d,%d) outside %dx%d geometry", m.m, m.r, m.in, m.out)
		}
	}
	return m, r.done()
}

type gatherMsg struct {
	seq  uint64
	n    int
	p    int
	blob []byte
}

func encodeGather(m gatherMsg) []byte {
	var p payload
	p.uvarint(m.seq)
	p.uvarint(uint64(m.n))
	p.uvarint(uint64(m.p))
	p.bytes(m.blob)
	return p.b
}

func parseGather(b []byte) (gatherMsg, error) {
	r := reader{b: b}
	m := gatherMsg{seq: r.uvarint(), n: r.intn("partition count", maxPartitions)}
	m.p = r.intn("partition", maxPartitions)
	m.blob = r.bytes()
	if r.err == nil && (m.n < 1 || m.p >= m.n) {
		r.fail("gather partition %d outside %d", m.p, m.n)
	}
	return m, r.done()
}

type gatheredMsg struct {
	seq   uint64
	blobs [][]byte
}

func encodeGathered(m gatheredMsg) []byte {
	var p payload
	p.uvarint(m.seq)
	p.uvarint(uint64(len(m.blobs)))
	for _, b := range m.blobs {
		p.bytes(b)
	}
	return p.b
}

func parseGathered(b []byte) (gatheredMsg, error) {
	r := reader{b: b}
	m := gatheredMsg{seq: r.uvarint()}
	n := r.intn("blob count", maxPartitions)
	// Blobs are appended as parsed (each consumes ≥1 payload byte), never
	// pre-allocated from the declared count.
	for i := 0; i < n && r.err == nil; i++ {
		m.blobs = append(m.blobs, r.bytes())
	}
	return m, r.done()
}

type errMsg struct {
	origin int
	msg    string
}

func encodeErr(m errMsg) []byte {
	var p payload
	p.uvarint(uint64(m.origin))
	p.str(m.msg)
	return p.b
}

func parseErr(b []byte) (errMsg, error) {
	r := reader{b: b}
	m := errMsg{origin: r.intn("rank", maxRanks), msg: r.str()}
	return m, r.done()
}
