package mproc

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"sync"
	"time"

	"github.com/gpf-go/gpf/internal/engine"
)

// JobFunc is a registered SPMD job: every rank calls it with its own Context
// and the identical spec bytes, and must derive identical control flow from
// them (same datasets, same stage order) — the collective sequence numbers
// depend on it. The returned bytes are the job's output; only rank 0's
// (the driver's) is reported, the workers compute theirs purely to stay in
// lockstep.
type JobFunc func(ctx *engine.Context, spec []byte) ([]byte, error)

var (
	regMu sync.Mutex
	jobs  = map[string]JobFunc{}
)

// RegisterJob registers fn under name. Call from init (or otherwise before
// WorkerMaybe): the re-exec'd worker binary must know the job before the
// driver asks it to run. Duplicate names panic.
func RegisterJob(name string, fn JobFunc) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := jobs[name]; dup {
		panic("mproc: duplicate job " + name)
	}
	jobs[name] = fn
}

func jobFor(name string) (JobFunc, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	fn, ok := jobs[name]
	return fn, ok
}

// Worker environment: when these are set the process is a re-exec'd worker
// and WorkerMaybe takes over instead of running the normal main.
const (
	envWorker = "GPF_MPROC_WORKER"
	envRank   = "GPF_MPROC_RANK"
	envDriver = "GPF_MPROC_DRIVER"
)

// handshakeTimeout bounds every step of mesh establishment (dial, hello, job,
// peer, ready). The job itself runs without a deadline; crashes surface as
// EOF or a non-zero exit instead.
const handshakeTimeout = 30 * time.Second

// Options configures a Run.
type Options struct {
	// Procs is the process count W (driver + W-1 workers); <1 means 1.
	Procs int
	// Slots is each process's task-slot parallelism; 0 selects GOMAXPROCS
	// independently in every process.
	Slots int
	// WorkerBin is the executable to re-exec as workers; empty selects the
	// current executable (os.Executable), which must call WorkerMaybe first
	// thing in main.
	WorkerBin string
}

// Result is a completed job.
type Result struct {
	Output []byte
	// Metrics is the cross-rank merge: every task's record comes from the
	// rank that ran it (engine.Metrics.MergeRanks).
	Metrics engine.Metrics
	Wall    time.Duration
}

func encodeMetrics(m engine.Metrics) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, fmt.Errorf("mproc: encode metrics: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeMetrics(b []byte, m *engine.Metrics) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(m); err != nil {
		return fmt.Errorf("mproc: decode metrics: %w", err)
	}
	return nil
}

// writeFrameTo writes one frame on a not-yet-registered connection (the
// handshake path, before a conn wrapper exists).
func writeFrameTo(nc net.Conn, kind byte, body []byte) error {
	c := conn{c: nc}
	return c.writeFrame(kind, body)
}

// Run executes the registered job name with the given spec. Procs <= 1 runs
// purely in-process; otherwise the current (or configured) binary is
// re-exec'd W-1 times, the full TCP mesh is established, and all ranks run
// the job in SPMD lockstep. Run returns rank 0's output and the cross-rank
// merged metrics; any rank's failure (error return, crash, lost connection)
// fails the whole job with the first cause.
func Run(name string, spec []byte, opts Options) (*Result, error) {
	fn, ok := jobFor(name)
	if !ok {
		return nil, fmt.Errorf("mproc: job %q not registered", name)
	}
	procs := opts.Procs
	if procs < 1 {
		procs = 1
	}
	start := time.Now()
	if procs == 1 {
		// Single process: no sockets, no re-exec — the plain in-process pool.
		ctx := engine.NewContext(opts.Slots)
		out, err := fn(ctx, spec)
		if err != nil {
			return nil, err
		}
		return &Result{Output: out, Metrics: ctx.Metrics(), Wall: time.Since(start)}, nil
	}

	bin := opts.WorkerBin
	if bin == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("mproc: resolve worker binary: %w", err)
		}
		bin = exe
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("mproc: listen: %w", err)
	}
	// Join the HELLO accept loop on every exit path: closing the listener
	// unblocks a parked Accept, so the loop cannot outlive Run.
	var accept sync.WaitGroup
	defer func() {
		_ = ln.Close()
		accept.Wait()
	}()

	t := newTransport(0, procs)
	cmds := make([]*exec.Cmd, procs)
	var reap sync.WaitGroup
	kill := func() {
		for _, cmd := range cmds {
			if cmd != nil && cmd.Process != nil {
				_ = cmd.Process.Kill()
			}
		}
	}
	// teardown is the failure-path cleanup: push the cause to live workers so
	// their blocked collectives unwind, kill and reap the children, close the
	// sockets and join the read loops — no goroutine and no fd outlives Run.
	teardown := func(cause error) error {
		t.broadcastErr(cause)
		kill()
		reap.Wait()
		t.closeAll()
		return t.Err()
	}

	for rank := 1; rank < procs; rank++ {
		cmd := exec.Command(bin)
		cmd.Env = append(os.Environ(),
			envWorker+"=1",
			envRank+"="+strconv.Itoa(rank),
			envDriver+"="+ln.Addr().String(),
		)
		cmd.Stdout = os.Stderr // a worker's prints must not corrupt driver stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, teardown(fmt.Errorf("mproc: start worker %d: %w", rank, err))
		}
		cmds[rank] = cmd
		reap.Add(1)
		go func(rank int, cmd *exec.Cmd) {
			defer reap.Done()
			if werr := cmd.Wait(); werr != nil {
				// A worker that fails its job sends an ERR frame and then
				// exits non-zero: give the in-band cause a grace period to
				// land so the reported error names the real failure, not the
				// exit status. First cause wins after that.
				select {
				case <-t.failedCh:
				case <-time.After(2 * time.Second):
				}
				t.fail(fmt.Errorf("mproc: worker rank %d exited: %w", rank, werr))
			}
		}(rank, cmd)
	}

	// Accept one HELLO per worker (any order); each carries the worker's own
	// peer listen address for the mesh.
	type hello struct {
		rank int
		addr string
		c    net.Conn
		err  error
	}
	helloCh := make(chan hello, procs)
	accept.Add(1)
	go func() {
		defer accept.Done()
		for i := 1; i < procs; i++ {
			nc, aerr := ln.Accept()
			if aerr != nil {
				helloCh <- hello{err: fmt.Errorf("mproc: accept: %w", aerr)}
				return
			}
			//lint:ignore gpflint/goleak handshake read is deadline-bounded (handshakeTimeout), so a stalled peer errors the goroutine out; its hello send lands in a procs-capacity buffer
			go func(nc net.Conn) {
				_ = nc.SetReadDeadline(time.Now().Add(handshakeTimeout))
				kind, body, rerr := readFrame(nc)
				if rerr != nil || kind != frameHello {
					_ = nc.Close()
					helloCh <- hello{err: fmt.Errorf("mproc: expected hello, got kind 0x%02x: %v", kind, rerr)}
					return
				}
				m, perr := parseHello(body)
				if perr != nil {
					_ = nc.Close()
					helloCh <- hello{err: perr}
					return
				}
				_ = nc.SetReadDeadline(time.Time{})
				helloCh <- hello{rank: m.rank, addr: m.addr, c: nc}
			}(nc)
		}
	}()
	addrs := make([]string, procs)
	for got := 0; got < procs-1; got++ {
		select {
		case h := <-helloCh:
			if h.err != nil {
				return nil, teardown(h.err)
			}
			if h.rank < 1 || h.rank >= procs || t.conn(h.rank) != nil {
				_ = h.c.Close()
				return nil, teardown(fmt.Errorf("mproc: bad hello rank %d", h.rank))
			}
			addrs[h.rank] = h.addr
			t.register(h.rank, h.c)
		case <-t.failedCh:
			return nil, teardown(t.Err())
		case <-time.After(handshakeTimeout):
			return nil, teardown(fmt.Errorf("mproc: handshake timeout waiting for workers"))
		}
	}

	// Ship the job (name, geometry, peer addresses, spec), start demuxing, and
	// release the barrier once every worker reports its mesh is up.
	jobBody := encodeJob(jobMsg{name: name, procs: procs, slots: opts.Slots, addrs: addrs, spec: spec})
	for rank := 1; rank < procs; rank++ {
		t.sendTo(rank, frameJob, jobBody)
		t.startReadLoop(t.conn(rank))
	}
	for ready := 0; ready < procs-1; ready++ {
		select {
		case <-t.readyCh:
		case <-t.failedCh:
			return nil, teardown(t.Err())
		case <-time.After(handshakeTimeout):
			return nil, teardown(fmt.Errorf("mproc: handshake timeout waiting for ready"))
		}
	}
	for rank := 1; rank < procs; rank++ {
		t.sendTo(rank, frameGo, nil)
	}

	ctx := engine.NewContextOn(&Exec{t: t, slots: opts.Slots})
	out, err := fn(ctx, spec)
	if err != nil {
		if terr := teardown(err); terr != nil {
			err = terr // the first global cause, not the local symptom
		}
		return nil, err
	}

	// Local success is not global success: collect every worker's DONE (with
	// its metrics), watching for late crashes.
	workerMetrics := make([]engine.Metrics, 0, procs-1)
	for len(workerMetrics) < procs-1 {
		select {
		case d := <-t.doneCh:
			workerMetrics = append(workerMetrics, d.metrics)
		case <-t.failedCh:
			return nil, teardown(t.Err())
		}
	}
	if ferr := t.Err(); ferr != nil {
		return nil, teardown(ferr)
	}
	// Clean shutdown: FIN tells each worker nothing more is coming; workers
	// exit 0 once all their read loops saw a terminal frame.
	for rank := 1; rank < procs; rank++ {
		t.sendTo(rank, frameFin, nil)
	}
	reap.Wait()
	t.closeAll()
	if ferr := t.Err(); ferr != nil {
		return nil, ferr
	}
	return &Result{
		Output:  out,
		Metrics: ctx.Metrics().MergeRanks(workerMetrics...),
		Wall:    time.Since(start),
	}, nil
}

// WorkerMaybe hijacks the process as an mproc worker when the worker
// environment is present, and never returns in that case. Any binary that
// calls Run with Procs > 1 must call WorkerMaybe first thing in main (or
// TestMain), after its jobs are registered — workers are that same binary
// re-exec'd.
func WorkerMaybe() {
	if os.Getenv(envWorker) == "" {
		return
	}
	workerMain()
}

func fatalWorker(err error) {
	fmt.Fprintln(os.Stderr, "mproc worker:", err)
	os.Exit(1)
}

// workerMain is the worker process body: establish the mesh, run the job in
// lockstep, report DONE (or ERR) and exit.
func workerMain() {
	rank, err := strconv.Atoi(os.Getenv(envRank))
	if err != nil || rank < 1 {
		fatalWorker(fmt.Errorf("bad %s=%q", envRank, os.Getenv(envRank)))
	}
	driverAddr := os.Getenv(envDriver)
	if driverAddr == "" {
		fatalWorker(fmt.Errorf("missing %s", envDriver))
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalWorker(fmt.Errorf("peer listen: %w", err))
	}
	dc, err := net.DialTimeout("tcp", driverAddr, handshakeTimeout)
	if err != nil {
		fatalWorker(fmt.Errorf("dial driver: %w", err))
	}
	if err := writeFrameTo(dc, frameHello, encodeHello(helloMsg{rank: rank, addr: ln.Addr().String()})); err != nil {
		fatalWorker(fmt.Errorf("hello: %w", err))
	}
	_ = dc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	kind, body, err := readFrame(dc)
	if err != nil || kind != frameJob {
		fatalWorker(fmt.Errorf("expected job frame, got kind 0x%02x: %v", kind, err))
	}
	job, err := parseJob(body)
	if err != nil {
		fatalWorker(err)
	}
	_ = dc.SetReadDeadline(time.Time{})
	if rank >= job.procs || len(job.addrs) != job.procs {
		fatalWorker(fmt.Errorf("rank %d outside job geometry %d", rank, job.procs))
	}
	fn, ok := jobFor(job.name)
	if !ok {
		fatalWorker(fmt.Errorf("job %q not registered in worker binary (register before WorkerMaybe)", job.name))
	}

	t := newTransport(rank, job.procs)
	t.register(0, dc)
	// Mesh: dial every lower-ranked worker, accept every higher-ranked one
	// (j dials i for i < j, so each pair gets exactly one connection).
	for i := 1; i < rank; i++ {
		pc, derr := net.DialTimeout("tcp", job.addrs[i], handshakeTimeout)
		if derr != nil {
			fatalWorker(fmt.Errorf("dial peer %d: %w", i, derr))
		}
		if werr := writeFrameTo(pc, framePeer, encodePeer(rank)); werr != nil {
			fatalWorker(fmt.Errorf("peer hello to %d: %w", i, werr))
		}
		t.register(i, pc)
	}
	if tl, ok := ln.(*net.TCPListener); ok {
		_ = tl.SetDeadline(time.Now().Add(handshakeTimeout))
	}
	for i := rank + 1; i < job.procs; i++ {
		nc, aerr := ln.Accept()
		if aerr != nil {
			fatalWorker(fmt.Errorf("accept peer: %w", aerr))
		}
		_ = nc.SetReadDeadline(time.Now().Add(handshakeTimeout))
		kind, body, rerr := readFrame(nc)
		if rerr != nil || kind != framePeer {
			fatalWorker(fmt.Errorf("expected peer frame, got kind 0x%02x: %v", kind, rerr))
		}
		prank, perr := parsePeer(body)
		if perr != nil {
			fatalWorker(perr)
		}
		if prank <= rank || prank >= job.procs || t.conn(prank) != nil {
			fatalWorker(fmt.Errorf("bad peer rank %d", prank))
		}
		_ = nc.SetReadDeadline(time.Time{})
		t.register(prank, nc)
	}
	_ = ln.Close()
	for r := 0; r < job.procs; r++ {
		if c := t.conn(r); c != nil {
			t.startReadLoop(c)
		}
	}
	t.sendTo(0, frameReady, nil)
	select {
	case <-t.goCh:
	case <-t.failedCh:
		fatalWorker(t.Err())
	}

	ctx := engine.NewContextOn(&Exec{t: t, slots: job.slots})
	// The worker's output is discarded — it computes the job purely to hold
	// up its end of the collectives; rank 0's output is the job's output.
	if _, jerr := fn(ctx, job.spec); jerr != nil {
		t.broadcastErr(jerr)
		os.Exit(1)
	}
	if t.Err() != nil {
		os.Exit(1) // a sibling failed; the cause already reached the driver
	}
	mb, merr := encodeMetrics(ctx.Metrics())
	if merr != nil {
		t.broadcastErr(merr)
		os.Exit(1)
	}
	t.sendTo(0, frameDone, mb)
	for r := 1; r < job.procs; r++ {
		if r != rank {
			t.sendTo(r, frameFin, nil)
		}
	}
	// Every peer sends its own terminal frame (driver: FIN after all DONEs;
	// workers: FIN right after DONE); once all read loops have consumed one,
	// every socket is drained and closing on exit cannot RST undelivered data.
	t.wg.Wait()
	os.Exit(0)
}
