package genome

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// fastaLineWidth is the sequence wrap width used when writing FASTA.
const fastaLineWidth = 70

// WriteFASTA serializes the reference in FASTA format.
func WriteFASTA(w io.Writer, ref *Reference) error {
	bw := bufio.NewWriter(w)
	for i := range ref.Contigs {
		c := &ref.Contigs[i]
		if _, err := fmt.Fprintf(bw, ">%s\n", c.Name); err != nil {
			return err
		}
		for off := 0; off < len(c.Seq); off += fastaLineWidth {
			end := off + fastaLineWidth
			if end > len(c.Seq) {
				end = len(c.Seq)
			}
			if _, err := bw.Write(c.Seq[off:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFASTA parses a FASTA stream into a Reference. Sequence bytes are
// upper-cased; blank lines are ignored.
func ReadFASTA(r io.Reader) (*Reference, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	var contigs []Contig
	var cur *Contig
	var seq bytes.Buffer
	flush := func() {
		if cur != nil {
			cur.Seq = append([]byte(nil), bytes.ToUpper(seq.Bytes())...)
			contigs = append(contigs, *cur)
			seq.Reset()
		}
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '>' {
			flush()
			name := strings.Fields(line[1:])
			if len(name) == 0 {
				return nil, fmt.Errorf("genome: empty contig name at line %d", lineNo)
			}
			cur = &Contig{Name: name[0]}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("genome: sequence before header at line %d", lineNo)
		}
		seq.WriteString(line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("genome: reading FASTA: %w", err)
	}
	flush()
	if len(contigs) == 0 {
		return nil, fmt.Errorf("genome: no contigs in FASTA input")
	}
	return NewReference(contigs), nil
}
