package genome

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Parsers must never panic on arbitrary input: they either return an error
// or a structurally valid result.
func TestReadFASTARobustness(t *testing.T) {
	f := func(data []byte) bool {
		ref, err := ReadFASTA(bytes.NewReader(data))
		if err != nil {
			return true
		}
		// A successful parse must produce named contigs.
		for _, c := range ref.Contigs {
			if c.Name == "" {
				return false
			}
		}
		return ref.NumContigs() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Seeded FASTA-like corpus: headers and sequence fragments shuffled.
func TestReadFASTAStructuredCorpus(t *testing.T) {
	cases := []string{
		">a\n\n>b\nACGT\n",
		">a\r\nACGT\n", // carriage returns survive TrimSpace
		">x\nacgtn\n>y\nACGT",
		">only-header\n",
		"\n\n>a\nAC\nGT\n\n",
	}
	for _, in := range cases {
		if _, err := ReadFASTA(bytes.NewReader([]byte(in))); err != nil {
			// Errors are fine; panics are not (the test passing means no panic).
			continue
		}
	}
}
