package genome

import (
	"fmt"
	"math/rand"
	"sort"
)

// SynthConfig controls synthetic reference generation. The defaults produce a
// genome with realistic structure for the experiments: per-contig GC skew,
// tandem repeats (which create alignment ambiguity and coverage pileups), and
// occasional N runs.
type SynthConfig struct {
	Seed          int64
	ContigLengths []int   // lengths per contig; names become chr1, chr2, ...
	GCBase        float64 // baseline GC content (default 0.41, human-like)
	GCAmplitude   float64 // sinusoidal GC variation amplitude (default 0.12)
	RepeatRate    float64 // probability per kb of starting a tandem repeat
	RepeatUnitMax int     // max repeat unit length (default 6)
	RepeatSpanMax int     // max total repeat span (default 300)
	NRunRate      float64 // probability per kb of an N run (default 0.0005)
	NRunMax       int     // max N run length (default 50)
}

// DefaultSynthConfig returns a config for a small multi-contig genome whose
// total size is roughly totalLen, split over nContigs with hg19-like
// decreasing contig lengths.
func DefaultSynthConfig(seed int64, totalLen, nContigs int) SynthConfig {
	if nContigs < 1 {
		nContigs = 1
	}
	// Decreasing lengths proportional to 1/(i+1), echoing chromosome sizing.
	weights := make([]float64, nContigs)
	var sum float64
	for i := range weights {
		weights[i] = 1 / float64(i+2)
		sum += weights[i]
	}
	lens := make([]int, nContigs)
	for i := range lens {
		lens[i] = int(float64(totalLen) * weights[i] / sum)
		if lens[i] < 64 {
			lens[i] = 64
		}
	}
	return SynthConfig{
		Seed:          seed,
		ContigLengths: lens,
		GCBase:        0.41,
		GCAmplitude:   0.12,
		RepeatRate:    0.02,
		RepeatUnitMax: 6,
		RepeatSpanMax: 300,
		NRunRate:      0.0005,
		NRunMax:       50,
	}
}

// Synthesize generates a reference genome from cfg deterministically.
func Synthesize(cfg SynthConfig) *Reference {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.GCBase == 0 {
		cfg.GCBase = 0.41
	}
	if cfg.RepeatUnitMax <= 0 {
		cfg.RepeatUnitMax = 6
	}
	if cfg.RepeatSpanMax <= 0 {
		cfg.RepeatSpanMax = 300
	}
	if cfg.NRunMax <= 0 {
		cfg.NRunMax = 50
	}
	contigs := make([]Contig, len(cfg.ContigLengths))
	for i, length := range cfg.ContigLengths {
		contigs[i] = Contig{
			Name: fmt.Sprintf("chr%d", i+1),
			Seq:  synthesizeContig(rng, length, cfg),
		}
	}
	return NewReference(contigs)
}

func synthesizeContig(rng *rand.Rand, length int, cfg SynthConfig) []byte {
	seq := make([]byte, 0, length)
	// GC varies sinusoidally along the contig to mimic isochores.
	period := float64(length)/3 + 1
	for len(seq) < length {
		frac := float64(len(seq)) / period
		gc := cfg.GCBase + cfg.GCAmplitude*sinApprox(frac)
		switch {
		case rng.Float64() < cfg.RepeatRate/1000:
			seq = appendRepeat(rng, seq, length, cfg)
		case rng.Float64() < cfg.NRunRate/1000:
			seq = appendNRun(rng, seq, length, cfg)
		default:
			seq = append(seq, randomBase(rng, gc))
		}
	}
	return seq[:length]
}

// sinApprox is a cheap periodic function in [-1, 1] avoiding math.Sin in the
// hot generation loop; a triangle wave is adequate for GC variation.
func sinApprox(x float64) float64 {
	x -= float64(int(x)) // frac
	if x < 0 {
		x += 1
	}
	if x < 0.5 {
		return 4*x - 1
	}
	return 3 - 4*x
}

func randomBase(rng *rand.Rand, gc float64) byte {
	if rng.Float64() < gc {
		if rng.Intn(2) == 0 {
			return 'G'
		}
		return 'C'
	}
	if rng.Intn(2) == 0 {
		return 'A'
	}
	return 'T'
}

func appendRepeat(rng *rand.Rand, seq []byte, limit int, cfg SynthConfig) []byte {
	unitLen := 1 + rng.Intn(cfg.RepeatUnitMax)
	unit := make([]byte, unitLen)
	for i := range unit {
		unit[i] = randomBase(rng, 0.5)
	}
	span := unitLen + rng.Intn(cfg.RepeatSpanMax)
	for i := 0; i < span && len(seq) < limit; i++ {
		seq = append(seq, unit[i%unitLen])
	}
	return seq
}

func appendNRun(rng *rand.Rand, seq []byte, limit int, cfg SynthConfig) []byte {
	span := 1 + rng.Intn(cfg.NRunMax)
	for i := 0; i < span && len(seq) < limit; i++ {
		seq = append(seq, 'N')
	}
	return seq
}

// VariantType distinguishes the truth-set variant classes injected into donor
// genomes (§2: SNVs and indels are the calls the WGS pipeline reports).
type VariantType int

const (
	SNV VariantType = iota
	Insertion
	Deletion
)

// String names the variant type.
func (t VariantType) String() string {
	switch t {
	case SNV:
		return "SNV"
	case Insertion:
		return "INS"
	case Deletion:
		return "DEL"
	default:
		return "UNK"
	}
}

// TruthVariant is an injected variant with reference coordinates. Ref and Alt
// follow VCF conventions (anchored on the preceding base for indels).
type TruthVariant struct {
	Contig       int
	Pos          int // 0-based position of the first Ref base
	Ref          []byte
	Alt          []byte
	Type         VariantType
	Heterozygous bool
}

// TruthSet is a collection of injected variants sorted by position, plus the
// donor haplotypes generated from them.
type TruthSet struct {
	Variants []TruthVariant
}

// Find returns the truth variants on contig within [start, end).
func (ts *TruthSet) Find(contig, start, end int) []TruthVariant {
	var out []TruthVariant
	for _, v := range ts.Variants {
		if v.Contig == contig && v.Pos >= start && v.Pos < end {
			out = append(out, v)
		}
	}
	return out
}

// MutateConfig controls truth-set injection.
type MutateConfig struct {
	Seed          int64
	SNVRate       float64 // per-base probability (default 0.001, human-like)
	IndelRate     float64 // per-base probability (default 0.0001)
	MaxIndelLen   int     // default 8
	HetFraction   float64 // fraction of variants that are heterozygous (default 0.6)
	MinSeparation int     // minimum bases between injected variants (default 12)
}

// DefaultMutateConfig returns human-like variant density.
func DefaultMutateConfig(seed int64) MutateConfig {
	return MutateConfig{Seed: seed, SNVRate: 0.001, IndelRate: 0.0001, MaxIndelLen: 8, HetFraction: 0.6, MinSeparation: 12}
}

// Donor holds the two haplotype sequences of a synthetic individual derived
// from a reference plus a truth set. Haplotype 0 carries all variants;
// haplotype 1 carries only homozygous ones.
type Donor struct {
	Ref   *Reference
	Truth TruthSet
	// Hap holds per-contig haplotype sequences: Hap[h][contig].
	Hap [2][][]byte
}

// Mutate injects variants into ref, producing a Donor with two haplotypes and
// the truth set used later to score the variant caller.
func Mutate(ref *Reference, cfg MutateConfig) *Donor {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.MaxIndelLen <= 0 {
		cfg.MaxIndelLen = 8
	}
	if cfg.MinSeparation <= 0 {
		cfg.MinSeparation = 12
	}
	d := &Donor{Ref: ref}
	for contigID := range ref.Contigs {
		seq := ref.Contigs[contigID].Seq
		lastPos := -cfg.MinSeparation
		for pos := 1; pos < len(seq)-cfg.MaxIndelLen-1; pos++ {
			if pos-lastPos < cfg.MinSeparation || seq[pos] == 'N' {
				continue
			}
			r := rng.Float64()
			switch {
			case r < cfg.SNVRate:
				alt := substituteBase(rng, seq[pos])
				d.Truth.Variants = append(d.Truth.Variants, TruthVariant{
					Contig: contigID, Pos: pos,
					Ref: []byte{seq[pos]}, Alt: []byte{alt},
					Type: SNV, Heterozygous: rng.Float64() < cfg.HetFraction,
				})
				lastPos = pos
			case r < cfg.SNVRate+cfg.IndelRate:
				n := 1 + rng.Intn(cfg.MaxIndelLen)
				if rng.Intn(2) == 0 { // insertion after pos
					ins := make([]byte, n)
					for i := range ins {
						ins[i] = randomBase(rng, 0.5)
					}
					d.Truth.Variants = append(d.Truth.Variants, TruthVariant{
						Contig: contigID, Pos: pos,
						Ref: []byte{seq[pos]}, Alt: append([]byte{seq[pos]}, ins...),
						Type: Insertion, Heterozygous: rng.Float64() < cfg.HetFraction,
					})
				} else { // deletion of n bases after pos
					if pos+1+n > len(seq) {
						continue
					}
					refBases := make([]byte, n+1)
					copy(refBases, seq[pos:pos+1+n])
					d.Truth.Variants = append(d.Truth.Variants, TruthVariant{
						Contig: contigID, Pos: pos,
						Ref: refBases, Alt: []byte{seq[pos]},
						Type: Deletion, Heterozygous: rng.Float64() < cfg.HetFraction,
					})
				}
				lastPos = pos
			}
		}
	}
	sort.Slice(d.Truth.Variants, func(i, j int) bool {
		a, b := d.Truth.Variants[i], d.Truth.Variants[j]
		if a.Contig != b.Contig {
			return a.Contig < b.Contig
		}
		return a.Pos < b.Pos
	})
	d.buildHaplotypes()
	return d
}

func substituteBase(rng *rand.Rand, b byte) byte {
	for {
		alt := Alphabet[rng.Intn(4)]
		if alt != b {
			return alt
		}
	}
}

// buildHaplotypes applies the truth set to the reference to create donor
// haplotype sequences (hap 0 = all variants, hap 1 = homozygous only).
func (d *Donor) buildHaplotypes() {
	for h := 0; h < 2; h++ {
		d.Hap[h] = make([][]byte, d.Ref.NumContigs())
		for contigID := range d.Ref.Contigs {
			d.Hap[h][contigID] = applyVariants(d.Ref.Contigs[contigID].Seq, d.Truth.Variants, contigID, h == 1)
		}
	}
}

// applyVariants applies variants on contigID left to right. When homOnly is
// set, heterozygous variants are skipped (they are absent from haplotype 1).
func applyVariants(ref []byte, variants []TruthVariant, contigID int, homOnly bool) []byte {
	out := make([]byte, 0, len(ref)+len(ref)/500)
	prev := 0
	for _, v := range variants {
		if v.Contig != contigID || (homOnly && v.Heterozygous) {
			continue
		}
		if v.Pos < prev {
			continue // overlapping variant; injection spacing should prevent this
		}
		out = append(out, ref[prev:v.Pos]...)
		out = append(out, v.Alt...)
		prev = v.Pos + len(v.Ref)
	}
	out = append(out, ref[prev:]...)
	return out
}
