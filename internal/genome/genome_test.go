package genome

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReferenceIndex(t *testing.T) {
	ref := NewReference([]Contig{
		{Name: "chr1", Seq: []byte("ACGT")},
		{Name: "chr2", Seq: []byte("GGCC")},
	})
	if id, ok := ref.ContigID("chr2"); !ok || id != 1 {
		t.Fatalf("ContigID(chr2) = %d, %v; want 1, true", id, ok)
	}
	if _, ok := ref.ContigID("chrX"); ok {
		t.Fatal("ContigID(chrX) should not exist")
	}
	if got := ref.TotalLen(); got != 8 {
		t.Fatalf("TotalLen = %d, want 8", got)
	}
	if c := ref.Contig(5); c != nil {
		t.Fatal("Contig(5) should be nil")
	}
	if got := ref.Lengths(); len(got) != 2 || got[0] != 4 || got[1] != 4 {
		t.Fatalf("Lengths = %v", got)
	}
}

func TestSliceClamping(t *testing.T) {
	ref := NewReference([]Contig{{Name: "c", Seq: []byte("ACGTACGT")}})
	if got := ref.Slice(0, -3, 4); string(got) != "ACGT" {
		t.Fatalf("Slice(-3,4) = %q", got)
	}
	if got := ref.Slice(0, 6, 100); string(got) != "GT" {
		t.Fatalf("Slice(6,100) = %q", got)
	}
	if got := ref.Slice(0, 5, 5); got != nil {
		t.Fatalf("empty slice should be nil, got %q", got)
	}
	if got := ref.Slice(9, 0, 4); got != nil {
		t.Fatal("bad contig should return nil")
	}
}

func TestPositionOrdering(t *testing.T) {
	a := Position{Contig: 0, Pos: 100}
	b := Position{Contig: 0, Pos: 200}
	c := Position{Contig: 1, Pos: 0}
	if !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatal("position ordering broken")
	}
	if a.String() != "0:100" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestIntervalOps(t *testing.T) {
	iv := Interval{Contig: 1, Start: 10, End: 20}
	if iv.Len() != 10 {
		t.Fatalf("Len = %d", iv.Len())
	}
	if !iv.Contains(1, 10) || iv.Contains(1, 20) || iv.Contains(0, 15) {
		t.Fatal("Contains broken")
	}
	if !iv.Overlaps(Interval{Contig: 1, Start: 19, End: 25}) {
		t.Fatal("should overlap")
	}
	if iv.Overlaps(Interval{Contig: 1, Start: 20, End: 25}) {
		t.Fatal("adjacent intervals do not overlap")
	}
	if iv.Overlaps(Interval{Contig: 2, Start: 10, End: 20}) {
		t.Fatal("different contigs do not overlap")
	}
	if (Interval{Start: 5, End: 3}).Len() != 0 {
		t.Fatal("degenerate interval length should be 0")
	}
}

func TestMergeIntervals(t *testing.T) {
	got := MergeIntervals([]Interval{
		{Contig: 0, Start: 10, End: 20},
		{Contig: 0, Start: 15, End: 30},
		{Contig: 0, Start: 30, End: 40}, // adjacent merges
		{Contig: 0, Start: 50, End: 60},
		{Contig: 1, Start: 0, End: 5},
	})
	want := []Interval{
		{Contig: 0, Start: 10, End: 40},
		{Contig: 0, Start: 50, End: 60},
		{Contig: 1, Start: 0, End: 5},
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d intervals, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interval %d = %v, want %v", i, got[i], want[i])
		}
	}
	if MergeIntervals(nil) != nil {
		t.Fatal("nil in, nil out")
	}
}

func TestReverseComplement(t *testing.T) {
	if got := ReverseComplement([]byte("ACGTN")); string(got) != "NACGT" {
		t.Fatalf("ReverseComplement = %q", got)
	}
	// Involution on ACGT-only strings.
	seq := []byte("GGATTCCA")
	if got := ReverseComplement(ReverseComplement(seq)); !bytes.Equal(got, seq) {
		t.Fatalf("double revcomp = %q, want %q", got, seq)
	}
}

func TestBaseCodeRoundTrip(t *testing.T) {
	for i, b := range []byte(Alphabet) {
		if BaseCode(b) != i {
			t.Fatalf("BaseCode(%c) = %d, want %d", b, BaseCode(b), i)
		}
		if CodeBase(i) != b {
			t.Fatalf("CodeBase(%d) = %c, want %c", i, CodeBase(i), b)
		}
	}
	if BaseCode('N') != -1 || BaseCode('x') != -1 {
		t.Fatal("non-ACGT bases must code to -1")
	}
	// lower-case accepted
	if BaseCode('g') != 2 {
		t.Fatal("lower-case g should code to 2")
	}
}

func TestGCContent(t *testing.T) {
	if gc := GCContent([]byte("GGCC")); gc != 1 {
		t.Fatalf("GC of GGCC = %v", gc)
	}
	if gc := GCContent([]byte("AATT")); gc != 0 {
		t.Fatalf("GC of AATT = %v", gc)
	}
	if gc := GCContent(nil); gc != 0 {
		t.Fatalf("GC of empty = %v", gc)
	}
	if gc := GCContent([]byte("ACGT")); gc != 0.5 {
		t.Fatalf("GC of ACGT = %v", gc)
	}
}

func TestValidateSeq(t *testing.T) {
	if i := ValidateSeq([]byte("ACGTN")); i != -1 {
		t.Fatalf("clean seq flagged at %d", i)
	}
	if i := ValidateSeq([]byte("ACXGT")); i != 2 {
		t.Fatalf("bad byte at %d, want 2", i)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := DefaultSynthConfig(42, 20000, 3)
	a := Synthesize(cfg)
	b := Synthesize(cfg)
	if a.NumContigs() != 3 {
		t.Fatalf("contigs = %d", a.NumContigs())
	}
	for i := range a.Contigs {
		if !bytes.Equal(a.Contigs[i].Seq, b.Contigs[i].Seq) {
			t.Fatalf("contig %d differs between runs with same seed", i)
		}
	}
	c := Synthesize(SynthConfig{Seed: 43, ContigLengths: cfg.ContigLengths})
	same := true
	for i := range a.Contigs {
		if !bytes.Equal(a.Contigs[i].Seq, c.Contigs[i].Seq) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical genomes")
	}
}

func TestSynthesizeComposition(t *testing.T) {
	ref := Synthesize(DefaultSynthConfig(7, 50000, 2))
	for i := range ref.Contigs {
		seq := ref.Contigs[i].Seq
		if idx := ValidateSeq(seq); idx != -1 {
			t.Fatalf("contig %d has invalid byte %q at %d", i, seq[idx], idx)
		}
		gc := GCContent(seq)
		if gc < 0.2 || gc > 0.65 {
			t.Fatalf("contig %d GC %.3f outside plausible range", i, gc)
		}
	}
}

func TestMutateTruthSet(t *testing.T) {
	ref := Synthesize(DefaultSynthConfig(1, 100000, 2))
	donor := Mutate(ref, DefaultMutateConfig(2))
	if len(donor.Truth.Variants) == 0 {
		t.Fatal("no variants injected")
	}
	// Variants sorted and separated.
	prev := TruthVariant{Contig: -1}
	for _, v := range donor.Truth.Variants {
		if v.Contig == prev.Contig && v.Pos <= prev.Pos {
			t.Fatalf("variants not strictly ordered: %+v after %+v", v, prev)
		}
		if len(v.Ref) == 0 || len(v.Alt) == 0 {
			t.Fatalf("empty allele in %+v", v)
		}
		// Ref allele must match the reference sequence.
		refSeq := ref.Contigs[v.Contig].Seq
		if !bytes.Equal(refSeq[v.Pos:v.Pos+len(v.Ref)], v.Ref) {
			t.Fatalf("ref allele mismatch at %d:%d", v.Contig, v.Pos)
		}
		prev = v
	}
	// Haplotype 0 (all variants) should differ from the reference; haplotype 1
	// carries only homozygous variants so it differs less.
	if bytes.Equal(donor.Hap[0][0], ref.Contigs[0].Seq) {
		t.Fatal("haplotype 0 identical to reference")
	}
}

func TestMutateTypesPresent(t *testing.T) {
	ref := Synthesize(DefaultSynthConfig(5, 200000, 1))
	cfg := DefaultMutateConfig(6)
	cfg.IndelRate = 0.001 // raise indel rate so both types appear
	donor := Mutate(ref, cfg)
	var snv, ins, del int
	for _, v := range donor.Truth.Variants {
		switch v.Type {
		case SNV:
			snv++
		case Insertion:
			ins++
		case Deletion:
			del++
		}
	}
	if snv == 0 || ins == 0 || del == 0 {
		t.Fatalf("variant mix snv=%d ins=%d del=%d; want all > 0", snv, ins, del)
	}
}

func TestTruthSetFind(t *testing.T) {
	ts := TruthSet{Variants: []TruthVariant{
		{Contig: 0, Pos: 10}, {Contig: 0, Pos: 20}, {Contig: 1, Pos: 5},
	}}
	if got := ts.Find(0, 0, 15); len(got) != 1 || got[0].Pos != 10 {
		t.Fatalf("Find = %v", got)
	}
	if got := ts.Find(1, 0, 100); len(got) != 1 {
		t.Fatalf("Find contig1 = %v", got)
	}
	if got := ts.Find(2, 0, 100); got != nil {
		t.Fatalf("Find contig2 = %v", got)
	}
}

func TestFASTARoundTrip(t *testing.T) {
	ref := Synthesize(DefaultSynthConfig(11, 5000, 3))
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, ref); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumContigs() != ref.NumContigs() {
		t.Fatalf("contigs = %d, want %d", got.NumContigs(), ref.NumContigs())
	}
	for i := range ref.Contigs {
		if got.Contigs[i].Name != ref.Contigs[i].Name {
			t.Fatalf("name %d = %q", i, got.Contigs[i].Name)
		}
		if !bytes.Equal(got.Contigs[i].Seq, ref.Contigs[i].Seq) {
			t.Fatalf("contig %d sequence mismatch", i)
		}
	}
}

func TestReadFASTAErrors(t *testing.T) {
	if _, err := ReadFASTA(bytes.NewBufferString("ACGT\n")); err == nil {
		t.Fatal("sequence before header must error")
	}
	if _, err := ReadFASTA(bytes.NewBufferString("")); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := ReadFASTA(bytes.NewBufferString(">\nACGT\n")); err == nil {
		t.Fatal("empty contig name must error")
	}
	// lower-case input is upper-cased
	ref, err := ReadFASTA(bytes.NewBufferString(">c\nacgt\n"))
	if err != nil {
		t.Fatal(err)
	}
	if string(ref.Contigs[0].Seq) != "ACGT" {
		t.Fatalf("seq = %q", ref.Contigs[0].Seq)
	}
}

func TestFormatRegion(t *testing.T) {
	ref := NewReference([]Contig{{Name: "chr1", Seq: []byte("ACGT")}})
	if got := ref.FormatRegion(Interval{Contig: 0, Start: 1, End: 3}); got != "chr1:1-3" {
		t.Fatalf("FormatRegion = %q", got)
	}
	if got := ref.FormatRegion(Interval{Contig: 9, Start: 1, End: 3}); got != "?:1-3" {
		t.Fatalf("FormatRegion unknown contig = %q", got)
	}
}

// Property: reverse complement is an involution for any ACGT string.
func TestReverseComplementInvolutionProperty(t *testing.T) {
	f := func(codes []uint8) bool {
		seq := make([]byte, len(codes))
		for i, c := range codes {
			seq[i] = CodeBase(int(c))
		}
		return bytes.Equal(ReverseComplement(ReverseComplement(seq)), seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: applying variants and re-deriving them via position arithmetic
// keeps haplotype length consistent: len(hap) = len(ref) + sum(len(alt)-len(ref)).
func TestHaplotypeLengthProperty(t *testing.T) {
	ref := Synthesize(DefaultSynthConfig(21, 50000, 1))
	donor := Mutate(ref, DefaultMutateConfig(22))
	delta := 0
	for _, v := range donor.Truth.Variants {
		delta += len(v.Alt) - len(v.Ref)
	}
	want := len(ref.Contigs[0].Seq) + delta
	if got := len(donor.Hap[0][0]); got != want {
		t.Fatalf("hap0 length = %d, want %d", got, want)
	}
}
