package genome

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/gpf-go/gpf/internal/kernels"
)

func randSeq(rng *rand.Rand, n int) []byte {
	alphabet := []byte("ACGTNacgtnXY-") // incl. lower case and junk bytes
	s := make([]byte, n)
	for i := range s {
		s[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return s
}

// TestKernelReverseComplementEquivalence: the table-driven two-pointer kernel
// must be byte-identical to the reference on every input, including odd
// lengths, empty input and non-ACGT bytes.
func TestKernelReverseComplementEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for c := 0; c < 300; c++ {
		seq := randSeq(rng, rng.Intn(200))
		want := reverseComplementRef(seq)
		got := ReverseComplement(seq)
		if !bytes.Equal(got, want) {
			t.Fatalf("len %d: fast %q != reference %q", len(seq), got, want)
		}
		// In-place variant on a copy.
		inPlace := append([]byte(nil), seq...)
		ReverseComplementInPlace(inPlace)
		if !bytes.Equal(inPlace, want) {
			t.Fatalf("len %d: in-place %q != reference %q", len(seq), inPlace, want)
		}
		// Dispatcher with kernels disabled must still agree.
		prev := kernels.SetEnabled(false)
		slow := ReverseComplement(seq)
		kernels.SetEnabled(prev)
		if !bytes.Equal(slow, want) {
			t.Fatalf("len %d: disabled dispatch %q != reference %q", len(seq), slow, want)
		}
	}
	// complementTab must be Complement, byte for byte.
	for b := 0; b < 256; b++ {
		if complementTab[b] != Complement(byte(b)) {
			t.Fatalf("complementTab[%d] = %q, Complement = %q", b, complementTab[b], Complement(byte(b)))
		}
	}
}

func TestKernelReverseComplementInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for c := 0; c < 100; c++ {
		// On clean ACGT input, revcomp is an involution.
		seq := make([]byte, rng.Intn(100))
		for i := range seq {
			seq[i] = Alphabet[rng.Intn(4)]
		}
		if got := ReverseComplement(ReverseComplement(seq)); !bytes.Equal(got, seq) {
			t.Fatalf("revcomp(revcomp(%q)) = %q", seq, got)
		}
	}
}

func benchSeq(n int) []byte {
	rng := rand.New(rand.NewSource(45))
	s := make([]byte, n)
	for i := range s {
		s[i] = Alphabet[rng.Intn(4)]
	}
	return s
}

func BenchmarkKernelReverseComplementReference(b *testing.B) {
	seq := benchSeq(151)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reverseComplementRef(seq)
	}
}

func BenchmarkKernelReverseComplementFast(b *testing.B) {
	seq := benchSeq(151)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ReverseComplement(seq)
	}
}

func BenchmarkKernelReverseComplementInPlace(b *testing.B) {
	seq := benchSeq(151)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ReverseComplementInPlace(seq)
	}
}
