// Package genome models reference genomes: contigs, genomic positions and
// intervals, FASTA serialization, and synthetic genome generation used by the
// test workloads. It is the lowest substrate of the GPF reproduction; every
// other module addresses the genome through the types defined here.
package genome

import (
	"fmt"
	"sort"
	"strings"

	"github.com/gpf-go/gpf/internal/kernels"
)

// Bases used throughout the framework. Sequences are stored as upper-case
// ASCII in []byte form; the compression layer re-encodes them to 2 bits.
const Alphabet = "ACGT"

// Contig is one named sequence in a reference genome (a chromosome in the
// paper's hg19 reference).
type Contig struct {
	Name string
	Seq  []byte
}

// Len returns the number of bases in the contig.
func (c *Contig) Len() int { return len(c.Seq) }

// Reference is an in-memory reference genome: an ordered list of contigs with
// an index from contig name to contig ID. Contig IDs are dense and equal to
// the contig's position in Contigs, matching the (contig ID, position)
// addressing used by the paper's PartitionInfo structure (Fig 8).
type Reference struct {
	Contigs []Contig
	index   map[string]int
}

// NewReference builds a Reference from contigs, constructing the name index.
func NewReference(contigs []Contig) *Reference {
	r := &Reference{Contigs: contigs, index: make(map[string]int, len(contigs))}
	for i, c := range contigs {
		r.index[c.Name] = i
	}
	return r
}

// ContigID returns the dense ID for a contig name.
// The second result reports whether the name exists.
func (r *Reference) ContigID(name string) (int, bool) {
	id, ok := r.index[name]
	return id, ok
}

// Contig returns the contig with the given ID, or nil if out of range.
func (r *Reference) Contig(id int) *Contig {
	if id < 0 || id >= len(r.Contigs) {
		return nil
	}
	return &r.Contigs[id]
}

// NumContigs returns the number of contigs.
func (r *Reference) NumContigs() int { return len(r.Contigs) }

// TotalLen returns the total number of bases across all contigs.
func (r *Reference) TotalLen() int64 {
	var n int64
	for i := range r.Contigs {
		n += int64(r.Contigs[i].Len())
	}
	return n
}

// Lengths returns the per-contig lengths in contig-ID order. This is the
// referenceLength list taken by the paper's ReadRepartitioner (Table 2).
func (r *Reference) Lengths() []int {
	out := make([]int, len(r.Contigs))
	for i := range r.Contigs {
		out[i] = r.Contigs[i].Len()
	}
	return out
}

// Slice returns the bases of contig id in [start, end). It clamps the range
// to the contig bounds so callers may over-ask near contig edges.
func (r *Reference) Slice(id, start, end int) []byte {
	c := r.Contig(id)
	if c == nil {
		return nil
	}
	if start < 0 {
		start = 0
	}
	if end > len(c.Seq) {
		end = len(c.Seq)
	}
	if start >= end {
		return nil
	}
	return c.Seq[start:end]
}

// Position is a genomic coordinate: a contig ID plus a 0-based offset.
type Position struct {
	Contig int
	Pos    int
}

// Less orders positions by (contig, pos).
func (p Position) Less(q Position) bool {
	if p.Contig != q.Contig {
		return p.Contig < q.Contig
	}
	return p.Pos < q.Pos
}

// String renders the position as contig:pos for diagnostics.
func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Contig, p.Pos) }

// Interval is a half-open genomic range [Start, End) on one contig.
type Interval struct {
	Contig int
	Start  int
	End    int
}

// Len returns the interval length (0 if degenerate).
func (iv Interval) Len() int {
	if iv.End <= iv.Start {
		return 0
	}
	return iv.End - iv.Start
}

// Contains reports whether position pos on iv.Contig lies inside the interval.
func (iv Interval) Contains(contig, pos int) bool {
	return contig == iv.Contig && pos >= iv.Start && pos < iv.End
}

// Overlaps reports whether two intervals share at least one base.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Contig == other.Contig && iv.Start < other.End && other.Start < iv.End
}

// MergeIntervals sorts intervals and merges overlapping or adjacent ones.
// It is used by the indel-realignment target detector.
func MergeIntervals(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := make([]Interval, len(ivs))
	copy(sorted, ivs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Contig != sorted[j].Contig {
			return sorted[i].Contig < sorted[j].Contig
		}
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].End < sorted[j].End
	})
	out := sorted[:1]
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Contig == last.Contig && iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Complement returns the Watson-Crick complement of a base; non-ACGT bases
// map to 'N'.
func Complement(b byte) byte {
	switch b {
	case 'A', 'a':
		return 'T'
	case 'C', 'c':
		return 'G'
	case 'G', 'g':
		return 'C'
	case 'T', 't':
		return 'A'
	default:
		return 'N'
	}
}

// complementTab is Complement as a 256-entry lookup table: one indexed load
// per base instead of a branch ladder, and the same table serves the in-place
// two-pointer kernel. Built from Complement itself so the two can never
// drift.
var complementTab = func() (t [256]byte) {
	for i := range t {
		t[i] = Complement(byte(i))
	}
	return
}()

// ReverseComplement returns the reverse complement of seq as a new slice.
func ReverseComplement(seq []byte) []byte {
	if !kernels.Enabled() {
		return reverseComplementRef(seq)
	}
	out := make([]byte, len(seq))
	// Walk both ends toward the middle: every iteration fills two output
	// bytes from one cache line at each end of the input.
	for i, j := 0, len(seq)-1; i <= j; i, j = i+1, j-1 {
		out[j], out[i] = complementTab[seq[i]], complementTab[seq[j]]
	}
	return out
}

// reverseComplementRef is the original per-base implementation, kept as the
// equivalence oracle and the DisableFastKernels path.
func reverseComplementRef(seq []byte) []byte {
	out := make([]byte, len(seq))
	for i, b := range seq {
		out[len(seq)-1-i] = Complement(b)
	}
	return out
}

// ReverseComplementInPlace reverse-complements seq in place (no allocation),
// for callers that own the buffer — e.g. flipping a mate's strand during
// alignment without copying the read.
func ReverseComplementInPlace(seq []byte) {
	i, j := 0, len(seq)-1
	for i < j {
		seq[i], seq[j] = complementTab[seq[j]], complementTab[seq[i]]
		i++
		j--
	}
	if i == j {
		seq[i] = complementTab[seq[i]]
	}
}

// baseCodeTab maps every byte to its 2-bit code, -1 for non-ACGT.
var baseCodeTab = func() (t [256]int8) {
	for i := range t {
		t[i] = -1
	}
	t['A'], t['a'] = 0, 0
	t['C'], t['c'] = 1, 1
	t['G'], t['g'] = 2, 2
	t['T'], t['t'] = 3, 3
	return
}()

// BaseCode maps a base to its 2-bit code (A=0, C=1, G=2, T=3). Non-ACGT bases
// return -1; the compression layer encodes them through the quality channel
// (Fig 4 of the paper).
func BaseCode(b byte) int {
	return int(baseCodeTab[b])
}

// CodeBase is the inverse of BaseCode for codes 0..3.
func CodeBase(code int) byte {
	return Alphabet[code&3]
}

// GCContent returns the fraction of G/C bases in seq (0 for empty input).
func GCContent(seq []byte) float64 {
	if len(seq) == 0 {
		return 0
	}
	gc := 0
	for _, b := range seq {
		if b == 'G' || b == 'C' || b == 'g' || b == 'c' {
			gc++
		}
	}
	return float64(gc) / float64(len(seq))
}

// ValidateSeq reports the first non-ACGTN byte in seq, or -1 if the sequence
// is clean.
func ValidateSeq(seq []byte) int {
	for i, b := range seq {
		switch b {
		case 'A', 'C', 'G', 'T', 'N':
		default:
			return i
		}
	}
	return -1
}

// FormatRegion renders a human-readable region string like "chr1:100-200"
// given the reference for name lookup.
func (r *Reference) FormatRegion(iv Interval) string {
	c := r.Contig(iv.Contig)
	name := "?"
	if c != nil {
		name = c.Name
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%d-%d", name, iv.Start, iv.End)
	return b.String()
}
