package cleaner

import (
	"github.com/gpf-go/gpf/internal/align"
	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/sam"
)

// Indel realignment (GATK IndelRealigner equivalent): detect intervals where
// read alignments disagree around candidate indels, then locally re-fit the
// overlapping reads so that a consistent placement is used — repairing the
// alignment artifacts that otherwise surface as false SNVs near indels.

// realignPad is the reference flank around a target interval used when
// re-fitting reads.
const realignPad = 25

// FindTargetIntervals scans records for realignment candidates: any aligned
// read whose CIGAR contains an indel contributes its covered span. Adjacent
// candidates merge into intervals.
func FindTargetIntervals(records []sam.Record) []genome.Interval {
	var ivs []genome.Interval
	for i := range records {
		r := &records[i]
		if r.Unmapped() || r.Duplicate() || !r.Cigar.HasIndel() {
			continue
		}
		ivs = append(ivs, genome.Interval{
			Contig: int(r.RefID),
			Start:  int(r.Pos),
			End:    int(r.End()),
		})
	}
	return genome.MergeIntervals(ivs)
}

// RealignStats summarizes one realignment pass.
type RealignStats struct {
	Targets   int
	Realigned int
}

// RealignIndels re-fits reads overlapping each target interval against the
// reference window and adopts the new placement when it scores strictly
// better than the current alignment's implied score. Records are modified in
// place; the returned stats count affected reads.
func RealignIndels(records []sam.Record, ref *genome.Reference, sc align.Scoring) RealignStats {
	targets := FindTargetIntervals(records)
	stats := RealignStats{Targets: len(targets)}
	if len(targets) == 0 {
		return stats
	}
	for i := range records {
		r := &records[i]
		if r.Unmapped() || r.Duplicate() || len(r.Seq) == 0 {
			continue
		}
		span := genome.Interval{Contig: int(r.RefID), Start: int(r.Pos), End: int(r.End())}
		inTarget := false
		for _, t := range targets {
			if t.Overlaps(span) {
				inTarget = true
				break
			}
		}
		if !inTarget {
			continue
		}
		curScore := impliedScore(r, ref, sc)
		winStart := int(r.Pos) - realignPad
		if winStart < 0 {
			winStart = 0
		}
		winEnd := int(r.End()) + realignPad
		window := ref.Slice(int(r.RefID), winStart, winEnd)
		if len(window) < len(r.Seq) {
			continue
		}
		score, refStart, cigar := align.FitAlign(r.Seq, window, sc)
		if score > curScore {
			r.Pos = int32(winStart + refStart)
			r.Cigar = cigar
			stats.Realigned++
		}
	}
	return stats
}

// impliedScore recomputes the alignment score of a record's current
// placement by walking its CIGAR against the reference.
func impliedScore(r *sam.Record, ref *genome.Reference, sc align.Scoring) int {
	score := 0
	readPos, refPos := 0, int(r.Pos)
	for _, op := range r.Cigar {
		switch op.Op {
		case 'M', '=', 'X':
			window := ref.Slice(int(r.RefID), refPos, refPos+op.Len)
			for k := 0; k < op.Len; k++ {
				if readPos+k >= len(r.Seq) || k >= len(window) {
					break
				}
				if r.Seq[readPos+k] == window[k] && window[k] != 'N' {
					score += sc.Match
				} else {
					score += sc.Mismatch
				}
			}
			readPos += op.Len
			refPos += op.Len
		case 'I', 'S':
			if op.Op == 'I' {
				score += sc.GapOpen + (op.Len-1)*sc.GapExtend
			}
			readPos += op.Len
		case 'D', 'N':
			if op.Op == 'D' {
				score += sc.GapOpen + (op.Len-1)*sc.GapExtend
			}
			refPos += op.Len
		}
	}
	return score
}
