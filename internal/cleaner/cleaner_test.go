package cleaner

import (
	"bytes"
	"testing"

	"github.com/gpf-go/gpf/internal/align"
	"github.com/gpf-go/gpf/internal/fastq"
	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/sam"
)

func mkRecord(name string, pos int32, rev bool, qual byte, n int) sam.Record {
	cigar, _ := sam.ParseCigar("50M")
	flag := uint16(sam.FlagPaired)
	if rev {
		flag |= sam.FlagReverse
	}
	r := sam.Record{
		Name: name, Flag: flag, RefID: 0, Pos: pos, MapQ: 60, Cigar: cigar,
		MateRef: 0, MatePos: pos + 200,
		Seq: bytes.Repeat([]byte("A"), n), Qual: bytes.Repeat([]byte{qual}, n),
	}
	return r
}

func TestMarkDuplicatesBasic(t *testing.T) {
	recs := []sam.Record{
		mkRecord("a", 100, false, 'I', 50), // dup group 1: higher quality wins
		mkRecord("b", 100, false, '5', 50),
		mkRecord("c", 300, false, 'I', 50), // unique
	}
	marked := MarkDuplicates(recs)
	if marked != 1 {
		t.Fatalf("marked = %d, want 1", marked)
	}
	if recs[0].Duplicate() {
		t.Fatal("highest-quality read must survive")
	}
	if !recs[1].Duplicate() {
		t.Fatal("lower-quality read must be marked")
	}
	if recs[2].Duplicate() {
		t.Fatal("unique read must not be marked")
	}
}

func TestMarkDuplicatesStrandAware(t *testing.T) {
	fwd := mkRecord("f", 100, false, 'I', 50)
	rev := mkRecord("r", 100, true, 'I', 50)
	recs := []sam.Record{fwd, rev}
	if marked := MarkDuplicates(recs); marked != 0 {
		t.Fatalf("opposite strands are not duplicates; marked %d", marked)
	}
}

func TestMarkDuplicatesClippingInvariant(t *testing.T) {
	// A soft-clipped read whose unclipped start equals another's start is a
	// duplicate (the reason Picard keys on unclipped coordinates).
	plain := mkRecord("p", 100, false, 'I', 50)
	clipped := mkRecord("c", 105, false, '5', 50)
	cg, _ := sam.ParseCigar("5S45M")
	clipped.Cigar = cg              // unclipped start = 100
	clipped.MatePos = plain.MatePos // same fragment, same mate
	recs := []sam.Record{plain, clipped}
	if marked := MarkDuplicates(recs); marked != 1 {
		t.Fatalf("clipped duplicate not detected; marked = %d", marked)
	}
	if recs[1].Duplicate() != true {
		t.Fatal("lower-quality clipped read should be marked")
	}
}

func TestMarkDuplicatesLibraryScoped(t *testing.T) {
	a := mkRecord("a", 100, false, 'I', 50)
	b := mkRecord("b", 100, false, 'I', 50)
	a.Tags = map[string]string{"LB": "lib1"}
	b.Tags = map[string]string{"LB": "lib2"}
	recs := []sam.Record{a, b}
	if marked := MarkDuplicates(recs); marked != 0 {
		t.Fatalf("different libraries are not duplicates; marked %d", marked)
	}
}

func TestMarkDuplicatesIgnoresUnmapped(t *testing.T) {
	u := sam.Record{Name: "u", Flag: sam.FlagUnmapped, RefID: -1, Pos: -1}
	recs := []sam.Record{u, u}
	if marked := MarkDuplicates(recs); marked != 0 {
		t.Fatalf("unmapped reads must be ignored; marked %d", marked)
	}
}

func TestMarkDuplicatesUnmarksStale(t *testing.T) {
	// A record previously marked duplicate but now unique must be cleared.
	r := mkRecord("a", 100, false, 'I', 50)
	r.SetDuplicate(true)
	recs := []sam.Record{r}
	MarkDuplicates(recs)
	if recs[0].Duplicate() {
		t.Fatal("stale duplicate flag not cleared")
	}
}

func TestMarkDuplicatesDeterministicTie(t *testing.T) {
	a := mkRecord("aaa", 100, false, 'I', 50)
	b := mkRecord("bbb", 100, false, 'I', 50)
	for trial := 0; trial < 3; trial++ {
		recs := []sam.Record{a, b}
		MarkDuplicates(recs)
		if recs[0].Duplicate() || !recs[1].Duplicate() {
			t.Fatal("tie-break must deterministically keep the earlier name")
		}
	}
}

func TestMarkDuplicatesEndToEnd(t *testing.T) {
	// Simulated data with a high duplicate rate: the marker should find a
	// comparable fraction.
	ref := genome.Synthesize(genome.DefaultSynthConfig(41, 60000, 1))
	donor := genome.Mutate(ref, genome.DefaultMutateConfig(42))
	cfg := fastq.DefaultSimConfig(43, 8)
	cfg.DuplicateRate = 0.3
	pairs := fastq.Simulate(donor, cfg)
	idx, err := align.BuildFMIndex(ref)
	if err != nil {
		t.Fatal(err)
	}
	aligner := align.NewAligner(idx, align.Config{})
	var records []sam.Record
	if len(pairs) > 150 {
		pairs = pairs[:150]
	}
	for i := range pairs {
		r1, r2 := aligner.AlignPair(&pairs[i])
		records = append(records, r1, r2)
	}
	marked := MarkDuplicates(records)
	// ~30% of fragments duplicated => expect roughly 150*0.3/1.3 pairs = ~34
	// dup pairs = ~69 dup reads; allow a broad band.
	if marked < 20 {
		t.Fatalf("marked only %d duplicates in high-duplication data", marked)
	}
	if marked > len(records)/2 {
		t.Fatalf("marked %d of %d records; too many", marked, len(records))
	}
}

func TestSortByCoordinate(t *testing.T) {
	recs := []sam.Record{
		mkRecord("b", 500, false, 'I', 10),
		mkRecord("a", 100, false, 'I', 10),
		{Name: "u", Flag: sam.FlagUnmapped, RefID: -1, Pos: -1},
	}
	SortByCoordinate(recs)
	if recs[0].Pos != 100 || recs[1].Pos != 500 || recs[2].RefID != -1 {
		t.Fatalf("sort order: %v %v %v", recs[0].Pos, recs[1].Pos, recs[2].RefID)
	}
}

func refWithIndelReads(t *testing.T) (*genome.Reference, []sam.Record) {
	t.Helper()
	ref := genome.Synthesize(genome.DefaultSynthConfig(51, 20000, 1))
	seq := ref.Contigs[0].Seq
	pos := 1000
	// Build a read matching the reference but with a 3-base deletion after
	// 20 bases, as a correctly-realigned read would look.
	read := make([]byte, 0, 50)
	read = append(read, seq[pos:pos+20]...)
	read = append(read, seq[pos+23:pos+53]...)
	good, _ := sam.ParseCigar("20M3D30M")
	bad, _ := sam.ParseCigar("50M") // misaligned placement of the same read
	records := []sam.Record{
		{Name: "indel", Flag: 0, RefID: 0, Pos: int32(pos), MapQ: 60, Cigar: good,
			Seq: read, Qual: bytes.Repeat([]byte("I"), 50)},
		{Name: "mis", Flag: 0, RefID: 0, Pos: int32(pos), MapQ: 40, Cigar: bad,
			Seq: append([]byte(nil), read...), Qual: bytes.Repeat([]byte("I"), 50)},
	}
	return ref, records
}

func TestFindTargetIntervals(t *testing.T) {
	_, records := refWithIndelReads(t)
	ivs := FindTargetIntervals(records)
	if len(ivs) != 1 {
		t.Fatalf("intervals = %v", ivs)
	}
	if ivs[0].Start != 1000 || ivs[0].End != 1053 {
		t.Fatalf("interval = %+v", ivs[0])
	}
	// Duplicates and unmapped reads contribute nothing.
	records[0].SetDuplicate(true)
	records[1].Flag |= sam.FlagUnmapped
	if got := FindTargetIntervals(records); got != nil {
		t.Fatalf("filtered reads still produced %v", got)
	}
}

func TestRealignIndelsRepairsMisalignment(t *testing.T) {
	ref, records := refWithIndelReads(t)
	sc := align.DefaultScoring()
	before := impliedScore(&records[1], ref, sc)
	stats := RealignIndels(records, ref, sc)
	if stats.Targets != 1 {
		t.Fatalf("targets = %d", stats.Targets)
	}
	if stats.Realigned == 0 {
		t.Fatal("misaligned read not realigned")
	}
	after := impliedScore(&records[1], ref, sc)
	if after <= before {
		t.Fatalf("score did not improve: %d -> %d", before, after)
	}
	if !records[1].Cigar.HasIndel() {
		t.Fatalf("realigned CIGAR %s should contain the deletion", records[1].Cigar)
	}
}

func TestRealignIndelsNoTargetsNoChange(t *testing.T) {
	ref := genome.Synthesize(genome.DefaultSynthConfig(53, 10000, 1))
	seq := ref.Contigs[0].Seq
	cg, _ := sam.ParseCigar("50M")
	rec := sam.Record{Name: "clean", RefID: 0, Pos: 100, Cigar: cg,
		Seq: append([]byte(nil), seq[100:150]...), Qual: bytes.Repeat([]byte("I"), 50)}
	records := []sam.Record{rec}
	stats := RealignIndels(records, ref, align.DefaultScoring())
	if stats.Targets != 0 || stats.Realigned != 0 {
		t.Fatalf("clean data realigned: %+v", stats)
	}
	if records[0].Pos != 100 {
		t.Fatal("record must be untouched")
	}
}

func TestImpliedScore(t *testing.T) {
	ref := genome.NewReference([]genome.Contig{{Name: "c", Seq: []byte("ACGTACGTACGT")}})
	cg, _ := sam.ParseCigar("4M")
	r := sam.Record{RefID: 0, Pos: 0, Cigar: cg, Seq: []byte("ACGT"), Qual: []byte("IIII")}
	sc := align.DefaultScoring()
	if got := impliedScore(&r, ref, sc); got != 4 {
		t.Fatalf("perfect 4M score = %d", got)
	}
	r.Seq = []byte("ACGA") // one mismatch
	if got := impliedScore(&r, ref, sc); got != 3-4 {
		t.Fatalf("mismatch score = %d", got)
	}
}

// buildTestAlignments creates aligned records over a reference with a known
// error profile for BQSR tests.
func buildTestAlignments(t *testing.T, seed int64, coverage float64) (*genome.Reference, *genome.Donor, []sam.Record) {
	t.Helper()
	ref := genome.Synthesize(genome.DefaultSynthConfig(seed, 50000, 1))
	donor := genome.Mutate(ref, genome.DefaultMutateConfig(seed+1))
	pairs := fastq.Simulate(donor, fastq.DefaultSimConfig(seed+2, coverage))
	idx, err := align.BuildFMIndex(ref)
	if err != nil {
		t.Fatal(err)
	}
	aligner := align.NewAligner(idx, align.Config{})
	var records []sam.Record
	if len(pairs) > 300 {
		pairs = pairs[:300]
	}
	for i := range pairs {
		r1, r2 := aligner.AlignPair(&pairs[i])
		records = append(records, r1, r2)
	}
	return ref, donor, records
}

func TestBQSRTableCountsErrors(t *testing.T) {
	ref, donor, records := buildTestAlignments(t, 61, 6)
	known := func(contig, pos int) bool {
		return len(donor.Truth.Find(contig, pos, pos+1)) > 0
	}
	table := BuildRecalTable(records, ref, known)
	if table.Global.Obs == 0 {
		t.Fatal("no observations counted")
	}
	if table.Global.Errs == 0 {
		t.Fatal("no errors counted despite simulated sequencing errors")
	}
	rate := float64(table.Global.Errs) / float64(table.Global.Obs)
	// Simulated error rates are quality-driven (~Q30 mean => ~1e-3), plus
	// alignment noise; accept a broad plausible band.
	if rate < 1e-5 || rate > 0.05 {
		t.Fatalf("global error rate %.5f implausible", rate)
	}
}

func TestBQSRKnownSitesExcluded(t *testing.T) {
	ref, donor, records := buildTestAlignments(t, 71, 6)
	known := func(contig, pos int) bool {
		return len(donor.Truth.Find(contig, pos, pos+1)) > 0
	}
	withMask := BuildRecalTable(records, ref, known)
	noMask := BuildRecalTable(records, ref, nil)
	// Without masking, true variants count as "errors", inflating the rate.
	rateMasked := float64(withMask.Global.Errs) / float64(withMask.Global.Obs)
	rateRaw := float64(noMask.Global.Errs) / float64(noMask.Global.Obs)
	if rateRaw <= rateMasked {
		t.Fatalf("masking should lower the error rate: masked=%.5f raw=%.5f", rateMasked, rateRaw)
	}
}

func TestBQSRMergeAssociative(t *testing.T) {
	ref, _, records := buildTestAlignments(t, 81, 6)
	mid := len(records) / 2
	t1 := BuildRecalTable(records[:mid], ref, nil)
	t2 := BuildRecalTable(records[mid:], ref, nil)
	whole := BuildRecalTable(records, ref, nil)
	merged := (&RecalTable{}).Merge(t1).Merge(t2)
	if merged.Global != whole.Global {
		t.Fatalf("merge mismatch: %+v vs %+v", merged.Global, whole.Global)
	}
	for i := range merged.ByQual {
		if merged.ByQual[i] != whole.ByQual[i] {
			t.Fatalf("qual bin %d mismatch", i)
		}
	}
	if (&RecalTable{}).Merge(nil) == nil {
		t.Fatal("merge with nil should return receiver")
	}
}

func TestBQSRApplyMovesQualitiesTowardTruth(t *testing.T) {
	ref, donor, records := buildTestAlignments(t, 91, 8)
	known := func(contig, pos int) bool {
		return len(donor.Truth.Find(contig, pos, pos+1)) > 0
	}
	table := BuildRecalTable(records, ref, known)
	// Copy pre-recalibration qualities.
	pre := make([][]byte, len(records))
	for i := range records {
		pre[i] = append([]byte(nil), records[i].Qual...)
	}
	if err := ApplyRecalibration(records, table); err != nil {
		t.Fatal(err)
	}
	changed := false
	for i := range records {
		if !bytes.Equal(pre[i], records[i].Qual) {
			changed = true
		}
		if len(records[i].Qual) != len(records[i].Seq) {
			t.Fatal("qual length changed")
		}
		for _, q := range records[i].Qual {
			if q < 33 || q > 126 {
				t.Fatalf("recalibrated quality %d out of range", q)
			}
		}
	}
	if !changed {
		t.Fatal("recalibration changed nothing")
	}
}

func TestApplyRecalibrationNilTable(t *testing.T) {
	if err := ApplyRecalibration(nil, nil); err == nil {
		t.Fatal("nil table must error")
	}
}

func TestEmpiricalQualBounds(t *testing.T) {
	if q := (counter{Obs: 0, Errs: 0}).empiricalQual(); q < 1 || q > 60 {
		t.Fatalf("empty counter qual = %v", q)
	}
	// All errors -> very low quality.
	if q := (counter{Obs: 1000, Errs: 1000}).empiricalQual(); q > 1.1 {
		t.Fatalf("all-error qual = %v", q)
	}
	// No errors in many observations -> high quality.
	if q := (counter{Obs: 1_000_000, Errs: 0}).empiricalQual(); q < 50 {
		t.Fatalf("clean qual = %v", q)
	}
}

func TestContextBin(t *testing.T) {
	if contextBin('A', 'A') != 0 || contextBin('T', 'T') != 15 {
		t.Fatal("corner bins wrong")
	}
	if contextBin('N', 'A') != -1 || contextBin('A', 'N') != -1 {
		t.Fatal("N context must be -1")
	}
}

func TestCycleBin(t *testing.T) {
	if cycleBin(-5) != 0 || cycleBin(0) != 0 || cycleBin(maxCycle+10) != maxCycle-1 {
		t.Fatal("cycle clamping broken")
	}
}

func BenchmarkMarkDuplicates(b *testing.B) {
	ref := genome.Synthesize(genome.DefaultSynthConfig(41, 60000, 1))
	donor := genome.Mutate(ref, genome.DefaultMutateConfig(42))
	cfg := fastq.DefaultSimConfig(43, 10)
	cfg.DuplicateRate = 0.2
	pairs := fastq.Simulate(donor, cfg)
	idx, err := align.BuildFMIndex(ref)
	if err != nil {
		b.Fatal(err)
	}
	aligner := align.NewAligner(idx, align.Config{})
	var records []sam.Record
	for i := range pairs {
		r1, r2 := aligner.AlignPair(&pairs[i])
		records = append(records, r1, r2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs := append([]sam.Record(nil), records...)
		MarkDuplicates(recs)
	}
}

func BenchmarkBuildRecalTable(b *testing.B) {
	ref := genome.Synthesize(genome.DefaultSynthConfig(61, 50000, 1))
	donor := genome.Mutate(ref, genome.DefaultMutateConfig(62))
	pairs := fastq.Simulate(donor, fastq.DefaultSimConfig(63, 8))
	idx, err := align.BuildFMIndex(ref)
	if err != nil {
		b.Fatal(err)
	}
	aligner := align.NewAligner(idx, align.Config{})
	var records []sam.Record
	for i := range pairs {
		r1, r2 := aligner.AlignPair(&pairs[i])
		records = append(records, r1, r2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildRecalTable(records, ref, nil)
	}
}
