package cleaner

import (
	"fmt"
	"math"

	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/sam"
)

// Base quality score recalibration (GATK BaseRecalibrator equivalent).
// Sequencers report miscalibrated quality scores; BQSR counts observed
// mismatches against the reference — excluding known variant sites — binned
// by covariates (reported quality, machine cycle, dinucleotide context) and
// rewrites each base's quality to the empirically observed error rate.
// The two-pass structure matches the paper: a distributed counting pass
// reduced to the driver (the serial Collect of §5.2.2, where the mask table
// broadcast throttles parallel efficiency), then a parallel apply pass.

// KnownSites reports whether (contig, pos) is a known variant site that must
// be excluded from error counting (the dbsnp_138 role in §5.1).
type KnownSites func(contig, pos int) bool

// covariate bins.
const (
	maxQual    = 64
	maxCycle   = 512
	numContext = 16 // previous base × current base, 2 bits each
)

// cycleBin clamps a machine cycle into table range.
func cycleBin(cycle int) int {
	if cycle < 0 {
		cycle = 0
	}
	if cycle >= maxCycle {
		cycle = maxCycle - 1
	}
	return cycle
}

// contextBin returns the dinucleotide context bin of (prev, cur), or -1 when
// either base is not ACGT.
func contextBin(prev, cur byte) int {
	p, c := genome.BaseCode(prev), genome.BaseCode(cur)
	if p < 0 || c < 0 {
		return -1
	}
	return p*4 + c
}

// counter accumulates (observations, errors) for one covariate bin.
type counter struct {
	Obs  int64
	Errs int64
}

// empiricalQual converts a counter into a Phred-scaled empirical quality
// with a Laplace-style prior (GATK uses a similar smoothing).
func (c counter) empiricalQual() float64 {
	p := (float64(c.Errs) + 1) / (float64(c.Obs) + 2)
	q := -10 * math.Log10(p)
	if q < 1 {
		q = 1
	}
	if q > 60 {
		q = 60
	}
	return q
}

// RecalTable is the covariate table built by pass 1. Tables from different
// partitions merge associatively, so the engine can reduce them.
type RecalTable struct {
	Global  counter
	ByQual  [maxQual]counter
	ByCycle [maxCycle]counter
	ByCtx   [numContext]counter
}

// Merge folds other into t (associative, for the engine reduce).
func (t *RecalTable) Merge(other *RecalTable) *RecalTable {
	if t == nil {
		return other
	}
	if other == nil {
		return t
	}
	t.Global.Obs += other.Global.Obs
	t.Global.Errs += other.Global.Errs
	for i := range t.ByQual {
		t.ByQual[i].Obs += other.ByQual[i].Obs
		t.ByQual[i].Errs += other.ByQual[i].Errs
	}
	for i := range t.ByCycle {
		t.ByCycle[i].Obs += other.ByCycle[i].Obs
		t.ByCycle[i].Errs += other.ByCycle[i].Errs
	}
	for i := range t.ByCtx {
		t.ByCtx[i].Obs += other.ByCtx[i].Obs
		t.ByCtx[i].Errs += other.ByCtx[i].Errs
	}
	return t
}

// SizeBytes estimates the serialized table size (for broadcast accounting).
func (t *RecalTable) SizeBytes() int64 {
	return int64(16 * (1 + maxQual + maxCycle + numContext))
}

// forEachAlignedBase walks a record's CIGAR, invoking fn for every M/=/X
// base with the read offset and the reference position it covers.
func forEachAlignedBase(r *sam.Record, fn func(readPos, refPos int)) {
	readPos, refPos := 0, int(r.Pos)
	for _, op := range r.Cigar {
		switch op.Op {
		case 'M', '=', 'X':
			for k := 0; k < op.Len; k++ {
				if readPos+k < len(r.Seq) {
					fn(readPos+k, refPos+k)
				}
			}
			readPos += op.Len
			refPos += op.Len
		case 'I', 'S':
			readPos += op.Len
		case 'D', 'N':
			refPos += op.Len
		}
	}
}

// BuildRecalTable runs BQSR pass 1 over one partition: count observations
// and mismatches per covariate, skipping duplicates, unmapped reads, known
// variant sites, N bases and low-quality bases.
func BuildRecalTable(records []sam.Record, ref *genome.Reference, known KnownSites) *RecalTable {
	t := &RecalTable{}
	for i := range records {
		r := &records[i]
		if r.Unmapped() || r.Duplicate() || len(r.Seq) == 0 || len(r.Qual) != len(r.Seq) {
			continue
		}
		contig := int(r.RefID)
		refSeq := ref.Contig(contig)
		if refSeq == nil {
			continue
		}
		forEachAlignedBase(r, func(readPos, refPos int) {
			if refPos < 0 || refPos >= len(refSeq.Seq) {
				return
			}
			if known != nil && known(contig, refPos) {
				return
			}
			base := r.Seq[readPos]
			refBase := refSeq.Seq[refPos]
			if base == 'N' || refBase == 'N' {
				return
			}
			q := int(r.Qual[readPos]) - 33
			if q < 2 {
				return
			}
			if q >= maxQual {
				q = maxQual - 1
			}
			isErr := int64(0)
			if base != refBase {
				isErr = 1
			}
			t.Global.Obs++
			t.Global.Errs += isErr
			t.ByQual[q].Obs++
			t.ByQual[q].Errs += isErr
			cb := cycleBin(readPos)
			t.ByCycle[cb].Obs++
			t.ByCycle[cb].Errs += isErr
			var prev byte = 'N'
			if readPos > 0 {
				prev = r.Seq[readPos-1]
			}
			if ctx := contextBin(prev, base); ctx >= 0 {
				t.ByCtx[ctx].Obs++
				t.ByCtx[ctx].Errs += isErr
			}
		})
	}
	return t
}

// recalibratedQual computes the recalibrated Phred for a base using the
// GATK delta decomposition: empirical(Q) shifted by the cycle and context
// deltas relative to the global empirical quality.
func (t *RecalTable) recalibratedQual(reportedQ, cycle int, prev, cur byte) int {
	if t.Global.Obs == 0 {
		return reportedQ
	}
	q := reportedQ
	if q >= maxQual {
		q = maxQual - 1
	}
	if q < 0 {
		q = 0
	}
	global := t.Global.empiricalQual()
	out := t.ByQual[q].empiricalQual()
	if c := t.ByCycle[cycleBin(cycle)]; c.Obs > 0 {
		out += c.empiricalQual() - global
	}
	if ctx := contextBin(prev, cur); ctx >= 0 && t.ByCtx[ctx].Obs > 0 {
		out += t.ByCtx[ctx].empiricalQual() - global
	}
	qi := int(out + 0.5)
	if qi < 2 {
		qi = 2
	}
	if qi > 60 {
		qi = 60
	}
	return qi
}

// ApplyRecalibration runs BQSR pass 2 over one partition, rewriting base
// qualities in place using the merged table.
func ApplyRecalibration(records []sam.Record, t *RecalTable) error {
	if t == nil {
		return fmt.Errorf("cleaner: nil recalibration table")
	}
	for i := range records {
		r := &records[i]
		if r.Unmapped() || len(r.Qual) != len(r.Seq) {
			continue
		}
		newQual := make([]byte, len(r.Qual))
		for j := range r.Qual {
			reported := int(r.Qual[j]) - 33
			var prev byte = 'N'
			if j > 0 {
				prev = r.Seq[j-1]
			}
			newQual[j] = byte(t.recalibratedQual(reported, j, prev, r.Seq[j]) + 33)
		}
		r.Qual = newQual
	}
	return nil
}
