// Package cleaner implements the Cleaner stage of the WGS pipeline (§2.1):
// duplicate marking (Picard-style), indel realignment and base quality score
// recalibration (GATK-style). Each function operates on a slice of SAM
// records — one engine partition — so the GPF Processes can run them in
// parallel over position-partitioned data.
package cleaner

import (
	"sort"

	"github.com/gpf-go/gpf/internal/sam"
)

// dupKey identifies reads that are PCR/optical duplicates of each other: the
// library, the 5'-unclipped alignment coordinates and strands of both ends
// of the sequenced fragment (Picard's signature; §2.1: "reads with identical
// position and orientation").
type dupKey struct {
	lib        string
	ref1, pos1 int32
	rev1       bool
	ref2, pos2 int32
	rev2       bool
	paired     bool
}

// fivePrime returns the strand-aware unclipped 5' coordinate of the read:
// the unclipped start for forward reads, the unclipped end for reverse ones.
func fivePrime(r *sam.Record) int32 {
	if r.Reverse() {
		return r.UnclippedEnd()
	}
	return r.UnclippedStart()
}

func library(r *sam.Record) string {
	if r.Tags != nil {
		if lb, ok := r.Tags["LB"]; ok {
			return lb
		}
	}
	return ""
}

// signature computes the duplicate key for a record. Mate coordinates come
// from the record's mate fields; for unpaired (or mate-unmapped) reads only
// this end participates.
func signature(r *sam.Record) dupKey {
	k := dupKey{
		lib:  library(r),
		ref1: r.RefID, pos1: fivePrime(r), rev1: r.Reverse(),
	}
	if r.Paired() && r.Flag&sam.FlagMateUnmapped == 0 && r.MateRef >= 0 {
		k.paired = true
		k.ref2 = r.MateRef
		// The mate's exact unclipped 5' needs the mate's CIGAR; MatePos is
		// the standard approximation used when mates live in other
		// partitions.
		k.pos2 = r.MatePos
		k.rev2 = r.Flag&sam.FlagMateReverse != 0
		// Canonicalize end order so both mates produce the same key.
		if k.ref2 < k.ref1 || (k.ref2 == k.ref1 && k.pos2 < k.pos1) {
			k.ref1, k.ref2 = k.ref2, k.ref1
			k.pos1, k.pos2 = k.pos2, k.pos1
			k.rev1, k.rev2 = k.rev2, k.rev1
		}
	}
	return k
}

// MarkDuplicates flags duplicate records in place and returns the number
// marked. Within each signature group the read with the highest base-quality
// sum survives (ties broken by name for determinism); secondary and unmapped
// records are ignored.
func MarkDuplicates(records []sam.Record) int {
	groups := map[dupKey][]int{}
	for i := range records {
		r := &records[i]
		if r.Unmapped() || r.Secondary() {
			continue
		}
		k := signature(r)
		groups[k] = append(groups[k], i)
	}
	marked := 0
	for _, idxs := range groups {
		if len(idxs) < 2 {
			if len(idxs) == 1 {
				records[idxs[0]].SetDuplicate(false)
			}
			continue
		}
		best := idxs[0]
		for _, i := range idxs[1:] {
			bi, bb := &records[i], &records[best]
			si, sb := bi.BaseQualitySum(), bb.BaseQualitySum()
			if si > sb || (si == sb && bi.Name < bb.Name) {
				best = i
			}
		}
		for _, i := range idxs {
			records[i].SetDuplicate(i != best)
			if i != best {
				marked++
			}
		}
	}
	return marked
}

// GroupKey returns a partitioning key under which all duplicates of a
// fragment land in the same partition: a hash of the canonical duplicate
// signature. The MarkDuplicateProcess shuffles on this before marking.
func GroupKey(r *sam.Record) int {
	k := signature(r)
	h := int64(1469598103934665603) // FNV-ish mix over the signature fields
	mix := func(v int64) {
		h ^= v
		h *= 1099511628211
	}
	mix(int64(k.ref1))
	mix(int64(k.pos1))
	if k.rev1 {
		mix(1)
	}
	mix(int64(k.ref2))
	mix(int64(k.pos2))
	if k.rev2 {
		mix(2)
	}
	for _, c := range k.lib {
		mix(int64(c))
	}
	if h < 0 {
		h = -h
	}
	return int(h)
}

// SortByCoordinate sorts records in place by genomic coordinate (the
// Cleaner's sort step).
func SortByCoordinate(records []sam.Record) {
	sort.SliceStable(records, func(i, j int) bool {
		return sam.CoordinateLess(&records[i], &records[j])
	})
}
