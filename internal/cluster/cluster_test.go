package cluster

import (
	"testing"
	"time"

	"github.com/gpf-go/gpf/internal/engine"
)

func uniformTrace(stages, tasksPerStage int, cpu time.Duration, bytes int64) Trace {
	var tr Trace
	for s := 0; s < stages; s++ {
		sw := StageWork{Name: "s", Kind: engine.StageNarrow}
		for t := 0; t < tasksPerStage; t++ {
			sw.Tasks = append(sw.Tasks, TaskWork{CPU: cpu, ReadBytes: bytes, WriteBytes: bytes})
		}
		tr.Stages = append(tr.Stages, sw)
	}
	return tr
}

func TestSimulateScalesWithCores(t *testing.T) {
	tr := uniformTrace(3, 1024, 100*time.Millisecond, 0)
	cfg := PaperCluster()
	t128 := Simulate(tr, cfg, 128, Options{}).Makespan
	t256 := Simulate(tr, cfg, 256, Options{}).Makespan
	t1024 := Simulate(tr, cfg, 1024, Options{}).Makespan
	if !(t128 > t256 && t256 > t1024) {
		t.Fatalf("makespans not decreasing: %v %v %v", t128, t256, t1024)
	}
	// Perfectly divisible uniform tasks: near-ideal speedup.
	ratio := float64(t128) / float64(t1024)
	if ratio < 7 || ratio > 9 {
		t.Fatalf("128->1024 speedup = %.2f, want ~8", ratio)
	}
}

func TestSimulateSkewLimitsScaling(t *testing.T) {
	// One giant task caps speedup at the straggler.
	var tr Trace
	sw := StageWork{Name: "skew"}
	sw.Tasks = append(sw.Tasks, TaskWork{CPU: 10 * time.Second})
	for i := 0; i < 1000; i++ {
		sw.Tasks = append(sw.Tasks, TaskWork{CPU: 10 * time.Millisecond})
	}
	tr.Stages = []StageWork{sw}
	cfg := PaperCluster()
	t2048 := Simulate(tr, cfg, 2048, Options{}).Makespan
	if t2048 < 10*time.Second {
		t.Fatalf("makespan %v below straggler task time", t2048)
	}
}

func TestSimulateDriverSerial(t *testing.T) {
	tr := Trace{Stages: []StageWork{{Name: "a", Driver: 5 * time.Second}}}
	cfg := PaperCluster()
	r := Simulate(tr, cfg, 2048, Options{})
	if r.Makespan < 5*time.Second {
		t.Fatalf("driver time not serialized: %v", r.Makespan)
	}
	if r.Driver != 5*time.Second {
		t.Fatalf("driver accounting = %v", r.Driver)
	}
}

func TestSimulateIOOptions(t *testing.T) {
	tr := uniformTrace(1, 256, 10*time.Millisecond, 100<<20)
	cfg := PaperCluster()
	base := Simulate(tr, cfg, 256, Options{})
	noDisk := Simulate(tr, cfg, 256, Options{NoDisk: true})
	noNet := Simulate(tr, cfg, 256, Options{NoNet: true})
	if base.DiskTime == 0 || base.NetTime == 0 {
		t.Fatal("I/O time not accounted")
	}
	if noDisk.DiskTime != 0 {
		t.Fatal("NoDisk did not zero disk time")
	}
	if noNet.NetTime != 0 {
		t.Fatal("NoNet did not zero network time")
	}
	if noDisk.Makespan >= base.Makespan || noNet.Makespan >= base.Makespan {
		t.Fatal("removing I/O should reduce makespan")
	}
}

func TestSimulateCoreClamping(t *testing.T) {
	tr := uniformTrace(1, 10, time.Second, 0)
	cfg := Config{Nodes: 2, CoresPerNode: 4, Disk: DiskModel{BandwidthMBps: 100}, Net: NetworkModel{BandwidthMBpsPerNode: 1000}}
	over := Simulate(tr, cfg, 100, Options{})
	if over.Cores != 8 {
		t.Fatalf("cores clamped to %d, want 8", over.Cores)
	}
	under := Simulate(tr, cfg, 0, Options{})
	if under.Cores != 1 {
		t.Fatalf("cores floor = %d, want 1", under.Cores)
	}
}

func TestLPTMakespan(t *testing.T) {
	durs := []time.Duration{4, 3, 3, 2, 2, 2} // LPT on 2 cores: 8 each
	if got := lptMakespan(durs, 2); got != 8 {
		t.Fatalf("makespan = %v, want 8", got)
	}
	if got := lptMakespan(nil, 4); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	if got := lptMakespan([]time.Duration{5}, 8); got != 5 {
		t.Fatalf("single = %v", got)
	}
}

func TestTraceFromMetrics(t *testing.T) {
	m := engine.Metrics{Stages: []engine.StageMetrics{{
		Name: "s1", Kind: engine.StageShuffle,
		Tasks: []engine.TaskMetrics{{Wall: time.Second, ShuffleReadBytes: 100, ShuffleWriteBytes: 200}},
	}}}
	tr := TraceFromMetrics(m, 2, 10)
	if len(tr.Stages) != 1 || len(tr.Stages[0].Tasks) != 1 {
		t.Fatalf("trace shape: %+v", tr)
	}
	task := tr.Stages[0].Tasks[0]
	if task.CPU != 2*time.Second || task.ReadBytes != 1000 || task.WriteBytes != 2000 {
		t.Fatalf("scaling broken: %+v", task)
	}
	// Zero scales default to 1.
	tr = TraceFromMetrics(m, 0, 0)
	if tr.Stages[0].Tasks[0].CPU != time.Second {
		t.Fatal("zero cpuScale should default to 1")
	}
}

func TestSplitTasks(t *testing.T) {
	tr := uniformTrace(1, 4, 8*time.Second, 800)
	split := tr.SplitTasks(4)
	if len(split.Stages[0].Tasks) != 16 {
		t.Fatalf("tasks = %d, want 16", len(split.Stages[0].Tasks))
	}
	if split.Stages[0].Tasks[0].CPU != 2*time.Second {
		t.Fatalf("split CPU = %v", split.Stages[0].Tasks[0].CPU)
	}
	if same := tr.SplitTasks(1); len(same.Stages[0].Tasks) != 4 {
		t.Fatal("factor 1 should be identity")
	}
}

func TestEfficiency(t *testing.T) {
	// Perfect scaling: 2x cores, half time -> efficiency 1.
	if e := Efficiency(100*time.Second, 128, 50*time.Second, 256); e != 1 {
		t.Fatalf("efficiency = %v", e)
	}
	// Half-perfect: 2x cores, same time -> 0.5.
	if e := Efficiency(100*time.Second, 128, 100*time.Second, 256); e != 0.5 {
		t.Fatalf("efficiency = %v", e)
	}
	if Efficiency(time.Second, 1, 0, 1) != 0 {
		t.Fatal("zero time should yield 0")
	}
}

func TestSharedFSContention(t *testing.T) {
	lustre := Lustre()
	nfs := NFS()
	// Per-client bandwidth collapses with client count.
	if lustre.PerClientMBps(1) <= lustre.PerClientMBps(30) {
		t.Fatal("contention should reduce per-client bandwidth")
	}
	// NFS saturates harder than Lustre at high client counts.
	if nfs.PerClientMBps(30) >= lustre.PerClientMBps(30) {
		t.Fatal("NFS should be slower than Lustre under load")
	}
	// Transfer time grows with contention.
	t1 := lustre.TransferTime(1<<30, 1)
	t30 := lustre.TransferTime(1<<30, 30)
	if t30 <= t1 {
		t.Fatalf("transfer under contention %v should exceed solo %v", t30, t1)
	}
}

func TestSimulateFilePipelineIOShare(t *testing.T) {
	// The Table 1 shape: with more concurrent samples, the I/O share climbs.
	stages := []FileStage{
		{Name: "align", CPU: 60 * time.Minute, ReadBytes: 500 << 30 / 30, WriteBytes: 600 << 30 / 30},
		{Name: "sort", CPU: 20 * time.Minute, ReadBytes: 600 << 30 / 30, WriteBytes: 600 << 30 / 30},
		{Name: "call", CPU: 60 * time.Minute, ReadBytes: 600 << 30 / 30, WriteBytes: 1 << 30},
	}
	one := SimulateFilePipeline(stages, 1, Lustre())
	thirty := SimulateFilePipeline(stages, 30, Lustre())
	if thirty.IOPercent <= one.IOPercent {
		t.Fatalf("I/O share should grow with samples: %v vs %v", one.IOPercent, thirty.IOPercent)
	}
	if one.WallTime != one.IOTime+one.CPUTime {
		t.Fatal("wall time accounting broken")
	}
}

func TestStageTimelineMonotonic(t *testing.T) {
	tr := uniformTrace(4, 64, 50*time.Millisecond, 1<<20)
	r := Simulate(tr, PaperCluster(), 128, Options{})
	var prev time.Duration
	for i, s := range r.Stages {
		if s.Start < prev {
			t.Fatalf("stage %d starts at %v before previous end %v", i, s.Start, prev)
		}
		prev = s.Start + s.Makespan
	}
	if r.Makespan != prev {
		t.Fatalf("makespan %v != last stage end %v", r.Makespan, prev)
	}
}

func TestBlockFractions(t *testing.T) {
	tr := uniformTrace(1, 128, 10*time.Millisecond, 100<<20)
	cfg := PaperCluster()
	full := Simulate(tr, cfg, 128, Options{})
	spark := Simulate(tr, cfg, 128, SparkOptions())
	if spark.DiskTime >= full.DiskTime {
		t.Fatalf("Spark disk blocked time %v should be below fully-blocking %v", spark.DiskTime, full.DiskTime)
	}
	if spark.NetTime >= full.NetTime {
		t.Fatalf("Spark net blocked time %v should be below fully-blocking %v", spark.NetTime, full.NetTime)
	}
	if spark.Makespan >= full.Makespan {
		t.Fatal("page-cache model should shorten the run")
	}
	// Out-of-range fractions fall back to fully blocking.
	weird := Simulate(tr, cfg, 128, Options{DiskBlockFraction: 7, NetBlockFraction: -2})
	if weird.DiskTime != full.DiskTime || weird.NetTime != full.NetTime {
		t.Fatal("invalid fractions should default to 1.0")
	}
}

func TestSparkOptionsPreservedThroughNoDisk(t *testing.T) {
	tr := uniformTrace(1, 64, 10*time.Millisecond, 50<<20)
	cfg := PaperCluster()
	opts := SparkOptions()
	opts.NoDisk = true
	r := Simulate(tr, cfg, 64, opts)
	if r.DiskTime != 0 {
		t.Fatal("NoDisk must win over block fractions")
	}
	if r.NetTime == 0 {
		t.Fatal("network time should remain")
	}
}
