// Package cluster provides a discrete-event simulator of the paper's
// evaluation platform: a multi-node cluster (240 nodes × Xeon cores, SATA
// disks, InfiniBand FDR) plus shared-filesystem models (Lustre, NFS). Tasks
// execute for real on the local machine through the engine, which records
// per-task CPU time and shuffle byte volumes; this package replays those
// traces over N simulated cores to produce the scaling curves of §5 —
// preserving task-count, task skew, serial fractions and I/O volume, which
// are the quantities that determine the shape of the paper's figures.
package cluster

import (
	"container/heap"
	"sort"
	"time"

	"github.com/gpf-go/gpf/internal/engine"
)

// DiskModel is a node-local disk (the paper: 1 TB 7200 RPM SATA).
type DiskModel struct {
	BandwidthMBps float64
	LatencyMs     float64
}

// NetworkModel is the interconnect (the paper: InfiniBand FDR).
type NetworkModel struct {
	BandwidthMBpsPerNode float64
	LatencyUs            float64
}

// Config describes the simulated cluster.
type Config struct {
	Nodes        int
	CoresPerNode int
	Disk         DiskModel
	Net          NetworkModel
}

// PaperCluster returns the evaluation platform of §5.1: 240 nodes, up to 10
// usable cores per node (memory-capped), SATA disk ~120 MB/s, FDR ~6 GB/s
// line rate of which a conservative share is usable per node.
func PaperCluster() Config {
	return Config{
		Nodes:        240,
		CoresPerNode: 10,
		Disk:         DiskModel{BandwidthMBps: 120, LatencyMs: 8},
		Net:          NetworkModel{BandwidthMBpsPerNode: 3000, LatencyUs: 2},
	}
}

// TaskWork is the replayable cost of one task.
type TaskWork struct {
	CPU        time.Duration
	ReadBytes  int64 // shuffle read (crosses network + remote disk)
	WriteBytes int64 // shuffle write (local disk)
}

// StageWork is the replayable cost of one stage.
type StageWork struct {
	Name   string
	Kind   engine.StageKind
	Tasks  []TaskWork
	Driver time.Duration // serial driver time (actions, broadcasts)
}

// Trace is an ordered list of stages (stages execute sequentially, as the
// pipeline DAG schedules them).
type Trace struct {
	Stages []StageWork
}

// TraceFromMetrics converts engine metrics into a replayable trace.
// cpuScale multiplies task CPU time and byteScale multiplies byte volumes —
// the knobs that scale a laptop-size run up to the paper's 146.9 Gbase
// dataset (scale factors cancel in speedup/efficiency curves).
func TraceFromMetrics(m engine.Metrics, cpuScale, byteScale float64) Trace {
	if cpuScale <= 0 {
		cpuScale = 1
	}
	if byteScale <= 0 {
		byteScale = 1
	}
	var tr Trace
	for _, s := range m.Stages {
		sw := StageWork{Name: s.Name, Kind: s.Kind, Driver: time.Duration(float64(s.DriverTime) * cpuScale)}
		for _, t := range s.Tasks {
			sw.Tasks = append(sw.Tasks, TaskWork{
				CPU:        time.Duration(float64(t.Wall) * cpuScale),
				ReadBytes:  int64(float64(t.ShuffleReadBytes) * byteScale),
				WriteBytes: int64(float64(t.ShuffleWriteBytes) * byteScale),
			})
		}
		tr.Stages = append(tr.Stages, sw)
	}
	return tr
}

// SplitTasks re-splits each stage's tasks into roughly factor× as many tasks,
// dividing work evenly — used to model datasets partitioned for larger
// clusters without re-running the pipeline at that partition count.
func (tr Trace) SplitTasks(factor int) Trace {
	if factor <= 1 {
		return tr
	}
	out := Trace{Stages: make([]StageWork, len(tr.Stages))}
	for i, s := range tr.Stages {
		ns := StageWork{Name: s.Name, Kind: s.Kind, Driver: s.Driver}
		for _, t := range s.Tasks {
			for j := 0; j < factor; j++ {
				ns.Tasks = append(ns.Tasks, TaskWork{
					CPU:        t.CPU / time.Duration(factor),
					ReadBytes:  t.ReadBytes / int64(factor),
					WriteBytes: t.WriteBytes / int64(factor),
				})
			}
		}
		out.Stages[i] = ns
	}
	return out
}

// StageSim is the simulated outcome of one stage.
type StageSim struct {
	Name     string
	Kind     engine.StageKind
	Start    time.Duration
	Makespan time.Duration
	CPUTime  time.Duration // summed busy core time
	DiskTime time.Duration // summed per-task disk blocked time
	NetTime  time.Duration // summed per-task network blocked time
	Bytes    int64         // total bytes moved
}

// Result is the simulated outcome of a whole trace.
type Result struct {
	Makespan time.Duration
	CPUTime  time.Duration
	DiskTime time.Duration
	NetTime  time.Duration
	Driver   time.Duration
	Stages   []StageSim
	Cores    int
}

// Options tune a simulation run.
type Options struct {
	// NoDisk zeroes disk blocked time (the "without disk" bound of the
	// blocked-time analysis, §5.3.1). NoNet likewise for the network.
	NoDisk bool
	NoNet  bool
	// DiskBlockFraction is the fraction of a task's disk transfer time that
	// actually blocks the task. Spark shuffle writes land in the OS page
	// cache and overlap with compute, so only a small fraction blocks
	// (§5.3.1 finds ≤2.7% JCT impact despite all shuffle data touching
	// disk); synchronous file-handoff pipelines (Churchill's tool chain)
	// block fully. Zero means 1.0 (fully blocking).
	DiskBlockFraction float64
	// NetBlockFraction is the analogous fraction for network transfers
	// (shuffle fetches overlap with task compute).
	NetBlockFraction float64
}

// blockFractions resolves the configured fractions with their defaults.
func (o Options) blockFractions() (disk, net float64) {
	disk, net = o.DiskBlockFraction, o.NetBlockFraction
	if disk <= 0 || disk > 1 {
		disk = 1
	}
	if net <= 0 || net > 1 {
		net = 1
	}
	return disk, net
}

// SparkOptions returns the option set modeling an in-memory engine whose
// shuffle I/O is page-cache buffered and overlapped with compute.
func SparkOptions() Options {
	return Options{DiskBlockFraction: 0.15, NetBlockFraction: 0.5}
}

// coreHeap is a min-heap of core completion times for LPT scheduling.
type coreHeap []time.Duration

func (h coreHeap) Len() int            { return len(h) }
func (h coreHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h coreHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *coreHeap) Push(x interface{}) { *h = append(*h, x.(time.Duration)) }
func (h *coreHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Simulate replays the trace on `cores` simulated cores of cfg, returning
// the makespan and resource breakdown. Task durations are CPU time plus
// disk/network blocked time derived from byte volumes and the bandwidth each
// concurrent task receives (bandwidth is shared evenly among cores per node).
func Simulate(tr Trace, cfg Config, cores int, opt Options) Result {
	if cores < 1 {
		cores = 1
	}
	maxCores := cfg.Nodes * cfg.CoresPerNode
	if cores > maxCores {
		cores = maxCores
	}
	// Nodes engaged: tasks pack densely, so the number of nodes in play is
	// ceil(cores / coresPerNode).
	nodes := (cores + cfg.CoresPerNode - 1) / cfg.CoresPerNode
	coresPerNode := float64(cores) / float64(nodes)

	// Per-task bandwidth share: a node's disk and NIC are split across its
	// active cores.
	diskBW := cfg.Disk.BandwidthMBps / coresPerNode * 1e6 // bytes/sec per task
	netBW := cfg.Net.BandwidthMBpsPerNode / coresPerNode * 1e6

	diskFrac, netFrac := opt.blockFractions()
	res := Result{Cores: cores}
	var clock time.Duration
	for _, s := range tr.Stages {
		ss := StageSim{Name: s.Name, Kind: s.Kind, Start: clock}
		durs := make([]time.Duration, len(s.Tasks))
		for i, t := range s.Tasks {
			disk := time.Duration(0)
			if !opt.NoDisk && t.WriteBytes > 0 {
				disk = time.Duration(float64(t.WriteBytes)/diskBW*diskFrac*float64(time.Second)) +
					time.Duration(cfg.Disk.LatencyMs*float64(time.Millisecond))
			}
			// Reading shuffle data touches both the network and remote disks;
			// following §5.3.1 we attribute the transfer to the network and
			// the remote read to disk at half weight (disk and network are
			// interlaced and hard to measure separately, as the paper notes).
			net := time.Duration(0)
			if t.ReadBytes > 0 {
				if !opt.NoNet {
					net = time.Duration(float64(t.ReadBytes)/netBW*netFrac*float64(time.Second)) +
						time.Duration(cfg.Net.LatencyUs*float64(time.Microsecond))
				}
				if !opt.NoDisk {
					disk += time.Duration(float64(t.ReadBytes) / diskBW * float64(time.Second) * diskFrac / 2)
				}
			}
			durs[i] = t.CPU + disk + net
			ss.CPUTime += t.CPU
			ss.DiskTime += disk
			ss.NetTime += net
			ss.Bytes += t.ReadBytes + t.WriteBytes
		}
		ss.Makespan = lptMakespan(durs, cores) + s.Driver
		clock += ss.Makespan
		res.CPUTime += ss.CPUTime
		res.DiskTime += ss.DiskTime
		res.NetTime += ss.NetTime
		res.Driver += s.Driver
		res.Stages = append(res.Stages, ss)
	}
	res.Makespan = clock
	return res
}

// lptMakespan schedules task durations onto n cores with longest-processing-
// time-first greedy assignment and returns the makespan.
func lptMakespan(durs []time.Duration, n int) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	h := make(coreHeap, n)
	heap.Init(&h)
	for _, d := range sorted {
		h[0] += d
		heap.Fix(&h, 0)
	}
	var mk time.Duration
	for _, c := range h {
		if c > mk {
			mk = c
		}
	}
	return mk
}

// Efficiency returns parallel efficiency of timeN at coresN against a
// baseline (timeBase at coresBase): (timeBase*coresBase)/(timeN*coresN).
func Efficiency(timeBase time.Duration, coresBase int, timeN time.Duration, coresN int) float64 {
	if timeN <= 0 || coresN <= 0 {
		return 0
	}
	return float64(timeBase) * float64(coresBase) / (float64(timeN) * float64(coresN))
}
