package cluster

import "time"

// SharedFS models a shared cluster filesystem serving many concurrent
// clients. Aggregate server bandwidth saturates, so per-client bandwidth
// collapses as the number of concurrently streaming clients grows — the
// effect behind Table 1 of the paper, where I/O share climbs from ~25-29% at
// 1 sample to 60-74% at 30 samples.
type SharedFS struct {
	Name string
	// AggregateMBps is the total server-side bandwidth.
	AggregateMBps float64
	// PerClientCapMBps bounds a single client regardless of load.
	PerClientCapMBps float64
	// MetadataPenalty multiplies effective time for small-file metadata
	// traffic (NFS suffers more than Lustre).
	MetadataPenalty float64
}

// Lustre returns a Lustre-like shared FS: high aggregate bandwidth, striped.
func Lustre() SharedFS {
	return SharedFS{Name: "Lustre", AggregateMBps: 8000, PerClientCapMBps: 1200, MetadataPenalty: 1.0}
}

// NFS returns an NFS-like shared FS: a single server, saturating early.
func NFS() SharedFS {
	return SharedFS{Name: "NFS", AggregateMBps: 3000, PerClientCapMBps: 1000, MetadataPenalty: 1.25}
}

// PerClientMBps returns the bandwidth one of `clients` concurrently
// streaming clients receives.
func (fs SharedFS) PerClientMBps(clients int) float64 {
	if clients < 1 {
		clients = 1
	}
	bw := fs.AggregateMBps / float64(clients)
	if bw > fs.PerClientCapMBps {
		bw = fs.PerClientCapMBps
	}
	return bw
}

// TransferTime returns the wall time for one client among `clients` to move
// `bytes` through the shared FS.
func (fs SharedFS) TransferTime(bytes int64, clients int) time.Duration {
	bw := fs.PerClientMBps(clients) * 1e6 // bytes/sec
	return time.Duration(float64(bytes) / bw * fs.MetadataPenalty * float64(time.Second))
}

// FileStage is one step of a disk-based (file-handoff) pipeline: read the
// previous step's files, compute, write this step's files. This models the
// conventional tool chains (bwa | samtools | picard | GATK) whose
// intermediate SAM/BAM files land on the shared FS.
type FileStage struct {
	Name       string
	CPU        time.Duration // per-sample compute time at the given core count
	ReadBytes  int64         // per sample
	WriteBytes int64         // per sample
}

// FilePipelineResult decomposes a disk-based pipeline run.
type FilePipelineResult struct {
	IOTime    time.Duration
	CPUTime   time.Duration
	WallTime  time.Duration
	IOPercent float64
}

// SimulateFilePipeline runs `samples` identical file-handoff pipelines
// concurrently against fs and returns the per-sample I/O versus CPU
// breakdown. All samples stream concurrently, so each sees
// fs.PerClientMBps(samples); compute times are unaffected by FS contention.
func SimulateFilePipeline(stages []FileStage, samples int, fs SharedFS) FilePipelineResult {
	var res FilePipelineResult
	for _, s := range stages {
		io := fs.TransferTime(s.ReadBytes, samples) + fs.TransferTime(s.WriteBytes, samples)
		res.IOTime += io
		res.CPUTime += s.CPU
	}
	res.WallTime = res.IOTime + res.CPUTime
	if res.WallTime > 0 {
		res.IOPercent = float64(res.IOTime) / float64(res.WallTime)
	}
	return res
}
