package bufpool

import "sync"

// Slice pools for the hot-kernel scratch arrays: the pair-HMM's rolling DP
// rows ([]float64) and the banded aligner's score and traceback matrices
// ([]int32 / []byte). These are requested once per kernel invocation — once
// per (read, haplotype) pair in the caller, once per re-fit read in the
// cleaner — so an unpooled make() shows up directly in the per-call
// allocation profile (see DESIGN.md, "Hot kernels").
//
// Pooled slices are returned with the requested length but UNCLEARED: every
// kernel fully initializes its scratch before reading it, and skipping the
// memclr is part of the win. Callers that need zeroed memory must clear it
// themselves.

// maxRetainElems caps the element count of slices kept by the pools, so one
// pathological window does not pin its worst-case slab forever (the []byte
// analogue of maxRetain above).
const maxRetainElems = 1 << 20

// slabPool pools slices of one element type. The pool stores *[]T to avoid
// allocating an interface box per Put (staticcheck SA6002's advice).
type slabPool[T any] struct{ pool sync.Pool }

func (p *slabPool[T]) get(n int) []T {
	if v := p.pool.Get(); v != nil {
		if s := *(v.(*[]T)); cap(s) >= n {
			return s[:n]
		}
	}
	return make([]T, n)
}

func (p *slabPool[T]) put(s []T) {
	if cap(s) == 0 || cap(s) > maxRetainElems {
		return
	}
	s = s[:0]
	p.pool.Put(&s)
}

var (
	f64Pool slabPool[float64]
	i32Pool slabPool[int32]
	u8Pool  slabPool[byte]
)

// GetF64 returns a length-n float64 slice with arbitrary contents.
func GetF64(n int) []float64 { return f64Pool.get(n) }

// PutF64 returns a slice obtained from GetF64 to the pool.
func PutF64(s []float64) { f64Pool.put(s) }

// GetI32 returns a length-n int32 slice with arbitrary contents.
func GetI32(n int) []int32 { return i32Pool.get(n) }

// PutI32 returns a slice obtained from GetI32 to the pool.
func PutI32(s []int32) { i32Pool.put(s) }

// GetU8 returns a length-n byte slice with arbitrary contents.
func GetU8(n int) []byte { return u8Pool.get(n) }

// PutU8 returns a slice obtained from GetU8 to the pool.
func PutU8(s []byte) { u8Pool.put(s) }
