// Package bufpool pools bytes.Buffers for serialization hot paths. The
// engine's shuffle map side and serialized partition storage marshal every
// bucket through a codec; without pooling each call grows a fresh buffer
// through several doublings. Callers Get a reset buffer, encode into it, copy
// the bytes out, and Put it back.
package bufpool

import (
	"bytes"
	"sync"
)

// maxRetain caps the capacity of buffers returned to the pool; occasional
// giant partitions should not pin their worst-case buffer forever.
const maxRetain = 4 << 20

var pool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Get returns an empty buffer from the pool.
func Get() *bytes.Buffer {
	b := pool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// Put returns a buffer to the pool, dropping oversized ones.
func Put(b *bytes.Buffer) {
	if b == nil || b.Cap() > maxRetain {
		return
	}
	pool.Put(b)
}

// Bytes copies the buffer's contents into an exact-size slice, safe to
// retain after the buffer is Put back.
func Bytes(b *bytes.Buffer) []byte {
	if b.Len() == 0 {
		return nil
	}
	return append(make([]byte, 0, b.Len()), b.Bytes()...)
}
