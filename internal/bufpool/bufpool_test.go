package bufpool

import (
	"bytes"
	"testing"
)

func TestGetReturnsResetBuffer(t *testing.T) {
	b := Get()
	b.WriteString("hello")
	Put(b)
	b2 := Get()
	if b2.Len() != 0 {
		t.Fatalf("pooled buffer not reset: %d bytes", b2.Len())
	}
	Put(b2)
}

func TestBytesCopiesOut(t *testing.T) {
	b := Get()
	b.WriteString("payload")
	out := Bytes(b)
	Put(b)
	// Mutating or reusing the pooled buffer must not alias the returned slice.
	b3 := Get()
	b3.WriteString("XXXXXXX")
	if !bytes.Equal(out, []byte("payload")) {
		t.Fatalf("Bytes aliases pooled storage: %q", out)
	}
	Put(b3)
}

func TestBytesEmpty(t *testing.T) {
	b := Get()
	if got := Bytes(b); got != nil {
		t.Fatalf("Bytes of empty buffer = %v, want nil", got)
	}
	Put(b)
}

func TestPutDropsOversized(t *testing.T) {
	b := Get()
	b.Grow(maxRetain + 1)
	Put(b) // must not panic; oversized buffers are dropped
	Put(nil)
}
