package bufpool

import "testing"

func TestSlicePoolReuse(t *testing.T) {
	s := GetF64(128)
	if len(s) != 128 {
		t.Fatalf("GetF64(128) len = %d", len(s))
	}
	for i := range s {
		s[i] = float64(i)
	}
	PutF64(s)
	// A smaller request may reuse the slab; the pool never clears, so the
	// caller owns initialization.
	r := GetF64(64)
	if len(r) != 64 {
		t.Fatalf("GetF64(64) len = %d", len(r))
	}
	PutF64(r)
}

func TestSlicePoolOversizedNotRetained(t *testing.T) {
	huge := GetU8(maxRetainElems + 1)
	PutU8(huge) // must not panic; slab is dropped
	if got := GetU8(8); len(got) != 8 {
		t.Fatalf("GetU8(8) len = %d", len(got))
	}
}

func TestSlicePoolTypes(t *testing.T) {
	i := GetI32(16)
	if len(i) != 16 {
		t.Fatalf("GetI32(16) len = %d", len(i))
	}
	PutI32(i)
	b := GetU8(16)
	if len(b) != 16 {
		t.Fatalf("GetU8(16) len = %d", len(b))
	}
	PutU8(b)
	// Zero-capacity slices are rejected rather than pooled.
	PutF64(nil)
	PutI32(nil)
	PutU8(nil)
}
