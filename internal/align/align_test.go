package align

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/gpf-go/gpf/internal/fastq"
	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/sam"
)

func TestSuffixArraySmall(t *testing.T) {
	// "banana" analog in coded bases plus sentinel.
	text := []byte{2, 1, 3, 1, 3, 1, 0} // symbolic
	sa := buildSuffixArray(text)
	// Verify sorted suffix property directly.
	for i := 1; i < len(sa); i++ {
		a, b := text[sa[i-1]:], text[sa[i]:]
		if bytes.Compare(a, b) >= 0 {
			t.Fatalf("suffixes out of order at %d: %v >= %v", i, a, b)
		}
	}
}

// Property: suffix array is a permutation producing sorted suffixes.
func TestSuffixArrayProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		text := make([]byte, len(data)+1)
		for i, b := range data {
			text[i] = b%4 + 1
		}
		text[len(data)] = 0
		sa := buildSuffixArray(text)
		seen := make([]bool, len(text))
		for _, p := range sa {
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		for i := 1; i < len(sa); i++ {
			if bytes.Compare(text[sa[i-1]:], text[sa[i]:]) >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func testIndex(t *testing.T, size int, seed int64) *FMIndex {
	t.Helper()
	ref := genome.Synthesize(genome.DefaultSynthConfig(seed, size, 2))
	idx, err := BuildFMIndex(ref)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestBackwardSearchFindsAllOccurrences(t *testing.T) {
	idx := testIndex(t, 20000, 101)
	ref := idx.Reference()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		c := rng.Intn(ref.NumContigs())
		seq := ref.Contigs[c].Seq
		pos := rng.Intn(len(seq) - 25)
		pattern := seq[pos : pos+25]
		if genome.ValidateSeq(pattern) != -1 || bytes.ContainsAny(pattern, "N") {
			continue
		}
		iv := idx.BackwardSearch(pattern)
		if iv.Size() == 0 {
			t.Fatalf("pattern from reference not found: %q", pattern)
		}
		hits := idx.Locate(iv, 1000)
		// Verify every hit is a real occurrence and our source position is
		// among them.
		found := false
		for _, h := range hits {
			p, ok := idx.Resolve(h)
			if !ok {
				t.Fatalf("unresolvable hit %d", h)
			}
			got := ref.Slice(p.Contig, p.Pos, p.Pos+len(pattern))
			if !bytes.Equal(got, pattern) {
				// Occurrences may span contig boundaries in concatenated
				// space; those resolve to short slices.
				if len(got) == len(pattern) {
					t.Fatalf("hit %v is not an occurrence: %q", p, got)
				}
				continue
			}
			if p.Contig == c && p.Pos == pos {
				found = true
			}
		}
		if !found {
			t.Fatalf("true position %d:%d missing from hits", c, pos)
		}
	}
}

func TestBackwardSearchVersusNaive(t *testing.T) {
	idx := testIndex(t, 5000, 103)
	ref := idx.Reference()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		// Random pattern: mostly absent, sometimes present.
		pat := make([]byte, 12)
		for i := range pat {
			pat[i] = genome.Alphabet[rng.Intn(4)]
		}
		naive := 0
		for c := range ref.Contigs {
			naive += bytes.Count(ref.Contigs[c].Seq, pat)
		}
		iv := idx.BackwardSearch(pat)
		// FM-index counts occurrences in the concatenated text, which may
		// include cross-boundary matches the per-contig count misses; allow
		// got >= naive with small slack, exact when no boundary effects.
		if iv.Size() < naive {
			t.Fatalf("pattern %q: fm=%d < naive=%d", pat, iv.Size(), naive)
		}
		if iv.Size() > naive+2 {
			t.Fatalf("pattern %q: fm=%d >> naive=%d", pat, iv.Size(), naive)
		}
	}
}

func TestBackwardSearchRejectsN(t *testing.T) {
	idx := testIndex(t, 2000, 105)
	if iv := idx.BackwardSearch([]byte("ACGNACG")); iv.Size() != 0 {
		t.Fatal("patterns with N must not match")
	}
}

func TestResolveBoundaries(t *testing.T) {
	idx := testIndex(t, 10000, 107)
	if _, ok := idx.Resolve(-1); ok {
		t.Fatal("negative offset must not resolve")
	}
	if _, ok := idx.Resolve(int64(idx.n)); ok {
		t.Fatal("sentinel offset must not resolve")
	}
	p, ok := idx.Resolve(0)
	if !ok || p.Contig != 0 || p.Pos != 0 {
		t.Fatalf("Resolve(0) = %v %v", p, ok)
	}
}

func TestFitAlignExactMatch(t *testing.T) {
	read := []byte("ACGTACGTAC")
	window := []byte("TTTACGTACGTACTTT")
	fit := fitAlign(read, window, DefaultScoring())
	if fit.Score != len(read) {
		t.Fatalf("score = %d, want %d", fit.Score, len(read))
	}
	if fit.RefStart != 3 {
		t.Fatalf("refStart = %d, want 3", fit.RefStart)
	}
	if fit.Cigar.String() != "10M" {
		t.Fatalf("cigar = %s", fit.Cigar)
	}
}

func TestFitAlignMismatch(t *testing.T) {
	read := []byte("ACGTACGTAC")
	window := []byte("ACGTTCGTAC") // one mismatch at index 4
	fit := fitAlign(read, window, DefaultScoring())
	if fit.Cigar.String() != "10M" {
		t.Fatalf("cigar = %s", fit.Cigar)
	}
	if fit.Score != 9*1-4 {
		t.Fatalf("score = %d, want 5", fit.Score)
	}
}

func TestFitAlignDeletion(t *testing.T) {
	// Read skips 2 reference bases: ref = AAAACC GG TTTT, read = AAAACCTTTT
	window := []byte("AAAACCGGTTTT")
	read := []byte("AAAACCTTTT")
	fit := fitAlign(read, window, DefaultScoring())
	if fit.Cigar.String() != "6M2D4M" {
		t.Fatalf("cigar = %s", fit.Cigar)
	}
	if fit.Cigar.RefLen() != 12 {
		t.Fatalf("reflen = %d", fit.Cigar.RefLen())
	}
}

func TestFitAlignInsertion(t *testing.T) {
	window := []byte("AAAACCTTTT")
	read := []byte("AAAACCGGTTTT")
	fit := fitAlign(read, window, DefaultScoring())
	if fit.Cigar.String() != "6M2I4M" {
		t.Fatalf("cigar = %s", fit.Cigar)
	}
	if fit.Cigar.QueryLen() != len(read) {
		t.Fatalf("querylen = %d", fit.Cigar.QueryLen())
	}
}

func TestFitAlignEmptyRead(t *testing.T) {
	fit := fitAlign(nil, []byte("ACGT"), DefaultScoring())
	if fit.Score != 0 || len(fit.Cigar) != 0 {
		t.Fatalf("empty read: %+v", fit)
	}
}

// Property: fitAlign's CIGAR always consumes the whole read.
func TestFitAlignConsumesReadProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		m := rng.Intn(40) + 5
		n := m + rng.Intn(20)
		read := make([]byte, m)
		window := make([]byte, n)
		for i := range read {
			read[i] = genome.Alphabet[rng.Intn(4)]
		}
		for i := range window {
			window[i] = genome.Alphabet[rng.Intn(4)]
		}
		fit := fitAlign(read, window, DefaultScoring())
		if fit.Cigar.QueryLen() != m {
			t.Fatalf("cigar %s consumes %d read bases, want %d", fit.Cigar, fit.Cigar.QueryLen(), m)
		}
		if fit.RefStart < 0 || fit.RefStart+fit.Cigar.RefLen() > n {
			t.Fatalf("alignment out of window: start %d reflen %d window %d", fit.RefStart, fit.Cigar.RefLen(), n)
		}
	}
}

func TestAlignSeqRecoverPosition(t *testing.T) {
	idx := testIndex(t, 50000, 109)
	ref := idx.Reference()
	aligner := NewAligner(idx, Config{})
	rng := rand.New(rand.NewSource(13))
	recovered := 0
	trials := 40
	for trial := 0; trial < trials; trial++ {
		c := rng.Intn(ref.NumContigs())
		seq := ref.Contigs[c].Seq
		pos := rng.Intn(len(seq) - 110)
		read := append([]byte(nil), seq[pos:pos+100]...)
		if containsN(read) {
			trials--
			continue
		}
		// Inject 2 errors.
		for k := 0; k < 2; k++ {
			i := rng.Intn(len(read))
			read[i] = genome.Alphabet[rng.Intn(4)]
		}
		qual := bytes.Repeat([]byte("I"), 100)
		als := aligner.AlignSeq(read, qual)
		if len(als) == 0 {
			continue
		}
		if als[0].Pos.Contig == c && abs(als[0].Pos.Pos-pos) <= 3 && !als[0].Reverse {
			recovered++
		}
	}
	if recovered < trials*8/10 {
		t.Fatalf("recovered %d/%d forward reads; want >= 80%%", recovered, trials)
	}
}

func TestAlignSeqReverseStrand(t *testing.T) {
	idx := testIndex(t, 50000, 111)
	ref := idx.Reference()
	aligner := NewAligner(idx, Config{})
	seq := ref.Contigs[0].Seq
	pos := 5000
	read := genome.ReverseComplement(seq[pos : pos+100])
	if containsN(read) {
		t.Skip("N in test window")
	}
	qual := bytes.Repeat([]byte("I"), 100)
	als := aligner.AlignSeq(read, qual)
	if len(als) == 0 {
		t.Fatal("reverse read not aligned")
	}
	if !als[0].Reverse {
		t.Fatal("alignment should be reverse strand")
	}
	if als[0].Pos.Contig != 0 || abs(als[0].Pos.Pos-pos) > 3 {
		t.Fatalf("position %v, want ~0:%d", als[0].Pos, pos)
	}
	// Stored sequence must be in reference orientation.
	if !bytes.Equal(als[0].Seq, seq[pos:pos+100]) {
		t.Fatal("reverse alignment must store reference-oriented sequence")
	}
}

func TestAlignSeqGarbageUnmapped(t *testing.T) {
	idx := testIndex(t, 30000, 113)
	aligner := NewAligner(idx, Config{})
	// Random read unlikely to match anywhere with seeds.
	rng := rand.New(rand.NewSource(17))
	read := make([]byte, 100)
	for i := range read {
		read[i] = genome.Alphabet[rng.Intn(4)]
	}
	als := aligner.AlignSeq(read, bytes.Repeat([]byte("I"), 100))
	// Either no alignment or a low-score one; no high-confidence mapping.
	if len(als) > 0 && als[0].Score > 80 {
		t.Fatalf("garbage read aligned with score %d", als[0].Score)
	}
}

func TestAlignPairEndToEnd(t *testing.T) {
	ref := genome.Synthesize(genome.DefaultSynthConfig(115, 60000, 1))
	donor := genome.Mutate(ref, genome.DefaultMutateConfig(116))
	pairs := fastq.Simulate(donor, fastq.DefaultSimConfig(117, 3))
	idx, err := BuildFMIndex(ref)
	if err != nil {
		t.Fatal(err)
	}
	aligner := NewAligner(idx, Config{})
	if len(pairs) > 60 {
		pairs = pairs[:60]
	}
	mapped, proper := 0, 0
	for i := range pairs {
		r1, r2 := aligner.AlignPair(&pairs[i])
		if !r1.Unmapped() {
			mapped++
		}
		if !r2.Unmapped() {
			mapped++
		}
		if r1.Flag&sam.FlagProperPair != 0 {
			proper++
			// Proper pairs must agree on TLEN magnitude.
			if r1.TempLen+r2.TempLen != 0 || r1.TempLen == 0 {
				t.Fatalf("TLEN broken: %d %d", r1.TempLen, r2.TempLen)
			}
		}
		if r1.Name != r2.Name {
			t.Fatalf("mate names differ: %s %s", r1.Name, r2.Name)
		}
		if !r1.FirstOfPair() || r2.FirstOfPair() {
			t.Fatal("mate flags broken")
		}
	}
	if mapped < len(pairs)*2*85/100 {
		t.Fatalf("mapped %d/%d mates; want >= 85%%", mapped, 2*len(pairs))
	}
	if proper < len(pairs)*6/10 {
		t.Fatalf("proper pairs %d/%d; want >= 60%%", proper, len(pairs))
	}
}

func TestTrimMateSuffix(t *testing.T) {
	if trimMateSuffix("read/1") != "read" || trimMateSuffix("read/2") != "read" {
		t.Fatal("suffix trim broken")
	}
	if trimMateSuffix("read") != "read" || trimMateSuffix("r/3") != "r/3" {
		t.Fatal("non-mate names must pass through")
	}
}

func TestProperOrientation(t *testing.T) {
	fwd := &Alignment{Pos: genome.Position{Contig: 0, Pos: 100}, Cigar: mustCigar(t, "100M")}
	rev := &Alignment{Pos: genome.Position{Contig: 0, Pos: 300}, Reverse: true, Cigar: mustCigar(t, "100M")}
	if !properOrientation(fwd, rev, 50, 1000) {
		t.Fatal("FR pair at 300 insert should be proper")
	}
	// Same strand: never proper.
	rev2 := &Alignment{Pos: genome.Position{Contig: 0, Pos: 300}, Cigar: mustCigar(t, "100M")}
	if properOrientation(fwd, rev2, 50, 1000) {
		t.Fatal("FF pair must not be proper")
	}
	// Too far.
	far := &Alignment{Pos: genome.Position{Contig: 0, Pos: 5000}, Reverse: true, Cigar: mustCigar(t, "100M")}
	if properOrientation(fwd, far, 50, 1000) {
		t.Fatal("distant pair must not be proper")
	}
	// Different contig.
	other := &Alignment{Pos: genome.Position{Contig: 1, Pos: 300}, Reverse: true, Cigar: mustCigar(t, "100M")}
	if properOrientation(fwd, other, 50, 1000) {
		t.Fatal("cross-contig pair must not be proper")
	}
}

func mustCigar(t *testing.T, s string) sam.Cigar {
	t.Helper()
	c, err := sam.ParseCigar(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMapQOrdering(t *testing.T) {
	idx := testIndex(t, 50000, 121)
	ref := idx.Reference()
	aligner := NewAligner(idx, Config{})
	// A unique read should get higher MapQ than one from a repeat. Find a
	// repeat by querying seeds until one has many hits.
	rng := rand.New(rand.NewSource(19))
	var uniqueQ, repeatQ uint8
	haveUnique, haveRepeat := false, false
	for trial := 0; trial < 300 && (!haveUnique || !haveRepeat); trial++ {
		pos := rng.Intn(ref.Contigs[0].Len() - 110)
		read := ref.Slice(0, pos, pos+100)
		if containsN(read) {
			continue
		}
		iv := idx.BackwardSearch(read[:30])
		als := aligner.AlignSeq(read, bytes.Repeat([]byte("I"), 100))
		if len(als) == 0 {
			continue
		}
		if iv.Size() == 1 && !haveUnique {
			uniqueQ, haveUnique = als[0].MapQ, true
		}
		if iv.Size() > 3 && len(als) > 1 && als[0].Score == als[1].Score && !haveRepeat {
			repeatQ, haveRepeat = als[0].MapQ, true
		}
	}
	if haveUnique && haveRepeat && uniqueQ <= repeatQ {
		t.Fatalf("unique MapQ %d should exceed repeat MapQ %d", uniqueQ, repeatQ)
	}
	if !haveUnique {
		t.Fatal("no unique read found in genome")
	}
}

func TestBuildFMIndexEmpty(t *testing.T) {
	if _, err := BuildFMIndex(genome.NewReference(nil)); err == nil {
		t.Fatal("empty reference must error")
	}
}

func TestAlignmentsSortedByScore(t *testing.T) {
	idx := testIndex(t, 40000, 123)
	ref := idx.Reference()
	aligner := NewAligner(idx, Config{})
	read := ref.Slice(0, 2000, 2100)
	if containsN(read) {
		t.Skip("N in window")
	}
	als := aligner.AlignSeq(append([]byte(nil), read...), bytes.Repeat([]byte("I"), 100))
	if !sort.SliceIsSorted(als, func(i, j int) bool { return als[i].Score >= als[j].Score }) {
		t.Fatal("alignments not sorted by score")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Regression: when the indexed text length is an exact multiple of the occ
// checkpoint stride, rank(c, n) must still see the final checkpoint. A
// reference of 64k-1 bases gives text length 64k exactly.
func TestFMIndexCheckpointBoundary(t *testing.T) {
	for _, refLen := range []int{occCheckpoint*100 - 1, occCheckpoint * 100, occCheckpoint*100 + 1} {
		ref := genome.Synthesize(genome.SynthConfig{Seed: 77, ContigLengths: []int{refLen}})
		idx, err := BuildFMIndex(ref)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, b := range []byte(genome.Alphabet) {
			total += idx.BackwardSearch([]byte{b}).Size()
		}
		// Every non-N base matches exactly once.
		nCount := 0
		for _, b := range ref.Contigs[0].Seq {
			if b == 'N' {
				nCount++
			}
		}
		if total != refLen { // Ns are indexed as A, so the sum covers them too
			if total != refLen-nCount+nCount { // defensive; Ns code to A
				t.Fatalf("refLen=%d: single-base intervals sum to %d", refLen, total)
			}
		}
		if total == 0 {
			t.Fatalf("refLen=%d: empty intervals (missing final checkpoint)", refLen)
		}
	}
}

func BenchmarkBuildFMIndex(b *testing.B) {
	ref := genome.Synthesize(genome.DefaultSynthConfig(201, 100000, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildFMIndex(ref); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlignPair(b *testing.B) {
	ref := genome.Synthesize(genome.DefaultSynthConfig(203, 100000, 2))
	donor := genome.Mutate(ref, genome.DefaultMutateConfig(204))
	pairs := fastq.Simulate(donor, fastq.DefaultSimConfig(205, 2))
	idx, err := BuildFMIndex(ref)
	if err != nil {
		b.Fatal(err)
	}
	aligner := NewAligner(idx, Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aligner.AlignPair(&pairs[i%len(pairs)])
	}
}

func BenchmarkBackwardSearch(b *testing.B) {
	ref := genome.Synthesize(genome.DefaultSynthConfig(207, 200000, 1))
	idx, err := BuildFMIndex(ref)
	if err != nil {
		b.Fatal(err)
	}
	pattern := ref.Contigs[0].Seq[5000:5025]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.BackwardSearch(pattern)
	}
}
