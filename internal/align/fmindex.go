package align

import (
	"fmt"

	"github.com/gpf-go/gpf/internal/genome"
)

// Alphabet for the FM-index: 0 is the sentinel, 1..4 are A,C,G,T.
const (
	sentinel   = 0
	numSymbols = 5
	// occCheckpoint is the stride of occurrence-count checkpoints; rank
	// queries scan at most occCheckpoint-1 BWT bytes past a checkpoint.
	occCheckpoint = 64
	// saSampleRate is the suffix-array sampling stride for locate queries.
	saSampleRate = 4
)

// FMIndex is a BWT-based full-text index over the concatenated reference,
// supporting backward search (exact-match intervals) and locate.
type FMIndex struct {
	ref *genome.Reference

	bwt []byte // BWT of coded text (values 0..4)
	// counts[c] = number of symbols < c in the text (the C array).
	counts [numSymbols + 1]int32
	// occ checkpoints: occ[(i/occCheckpoint)*numSymbols + c] = occurrences
	// of c in bwt[:i rounded down to checkpoint].
	occ []int32
	// sa holds sampled suffix array entries: saSample[i] = SA[i*saSampleRate].
	saSample []int32
	n        int // text length including sentinel

	// contig boundary offsets in the concatenated text: contig i spans
	// [starts[i], starts[i]+len).
	starts []int64
}

// code converts a base to the index alphabet, mapping non-ACGT to 'A'
// (index-side normalization; alignment scoring against the true reference
// still penalizes such positions).
func code(b byte) byte {
	c := genome.BaseCode(b)
	if c < 0 {
		c = 0
	}
	return byte(c + 1)
}

// BuildFMIndex indexes the reference genome (forward strand; reads are
// searched in both orientations by the aligner).
func BuildFMIndex(ref *genome.Reference) (*FMIndex, error) {
	var total int64
	for i := range ref.Contigs {
		total += int64(ref.Contigs[i].Len())
	}
	if total == 0 {
		return nil, fmt.Errorf("align: empty reference")
	}
	text := make([]byte, total+1)
	starts := make([]int64, ref.NumContigs())
	var off int64
	for i := range ref.Contigs {
		starts[i] = off
		for _, b := range ref.Contigs[i].Seq {
			text[off] = code(b)
			off++
		}
	}
	text[off] = sentinel

	sa := buildSuffixArray(text)
	n := len(text)
	idx := &FMIndex{ref: ref, n: n, starts: starts}

	// BWT and sampled SA.
	idx.bwt = make([]byte, n)
	idx.saSample = make([]int32, (n+saSampleRate-1)/saSampleRate)
	for i, p := range sa {
		if p == 0 {
			idx.bwt[i] = text[n-1]
		} else {
			idx.bwt[i] = text[p-1]
		}
		if i%saSampleRate == 0 {
			idx.saSample[i/saSampleRate] = p
		}
	}
	// To locate unsampled rows we need LF-mapping walks; store full SA rows
	// mod sample via walking — but walking needs occ, built next.

	// C array.
	var freq [numSymbols]int32
	for _, c := range text {
		freq[c]++
	}
	var cum int32
	for c := 0; c < numSymbols; c++ {
		idx.counts[c] = cum
		cum += freq[c]
	}
	idx.counts[numSymbols] = cum

	// Occ checkpoints. The loop runs to i == n inclusive so the final
	// checkpoint is written even when n is an exact multiple of the stride
	// (rank(c, n) reads it).
	nCheck := n/occCheckpoint + 1
	idx.occ = make([]int32, nCheck*numSymbols)
	var running [numSymbols]int32
	for i := 0; i <= n; i++ {
		if i%occCheckpoint == 0 {
			copy(idx.occ[(i/occCheckpoint)*numSymbols:], running[:])
		}
		if i < n {
			running[idx.bwt[i]]++
		}
	}
	// We intentionally drop the full SA; locate walks LF to a sampled row.
	return idx, nil
}

// rank returns the number of occurrences of symbol c in bwt[:i].
func (x *FMIndex) rank(c byte, i int32) int32 {
	cp := int(i) / occCheckpoint
	count := x.occ[cp*numSymbols+int(c)]
	for j := cp * occCheckpoint; j < int(i); j++ {
		if x.bwt[j] == c {
			count++
		}
	}
	return count
}

// lf is the last-to-first mapping of BWT row i.
func (x *FMIndex) lf(i int32) int32 {
	c := x.bwt[i]
	return x.counts[c] + x.rank(c, i)
}

// Interval is a BWT row range [Lo, Hi) matching some query suffix.
type Interval struct {
	Lo, Hi int32
}

// Size returns the number of matches in the interval.
func (iv Interval) Size() int { return int(iv.Hi - iv.Lo) }

// BackwardSearch returns the BWT interval of exact occurrences of pattern
// (ACGT bytes). An empty interval means no match.
func (x *FMIndex) BackwardSearch(pattern []byte) Interval {
	lo, hi := int32(0), int32(x.n)
	for i := len(pattern) - 1; i >= 0; i-- {
		bc := genome.BaseCode(pattern[i])
		if bc < 0 {
			return Interval{}
		}
		c := byte(bc + 1)
		lo = x.counts[c] + x.rank(c, lo)
		hi = x.counts[c] + x.rank(c, hi)
		if lo >= hi {
			return Interval{}
		}
	}
	return Interval{Lo: lo, Hi: hi}
}

// Locate resolves up to maxHits text positions for an interval by LF-walking
// to sampled suffix-array rows.
func (x *FMIndex) Locate(iv Interval, maxHits int) []int64 {
	var out []int64
	for r := iv.Lo; r < iv.Hi && len(out) < maxHits; r++ {
		row := r
		steps := int32(0)
		for row%saSampleRate != 0 {
			row = x.lf(row)
			steps++
		}
		pos := int64(x.saSample[row/saSampleRate]) + int64(steps)
		if pos >= int64(x.n) {
			pos -= int64(x.n)
		}
		out = append(out, pos)
	}
	return out
}

// Resolve converts a concatenated-text offset into (contig, position). The
// second result is false for offsets past the last contig (the sentinel).
func (x *FMIndex) Resolve(off int64) (genome.Position, bool) {
	if off >= int64(x.n-1) || off < 0 {
		return genome.Position{}, false
	}
	// Binary search over starts.
	lo, hi := 0, len(x.starts)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if x.starts[mid] <= off {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	c := lo
	pos := int(off - x.starts[c])
	if pos >= x.ref.Contigs[c].Len() {
		return genome.Position{}, false
	}
	return genome.Position{Contig: c, Pos: pos}, true
}

// Reference returns the indexed reference.
func (x *FMIndex) Reference() *genome.Reference { return x.ref }
