package align

import (
	"math/rand"
	"testing"

	"github.com/gpf-go/gpf/internal/kernels"
)

// mutateRead copies a window slice and applies substitutions plus indels of
// the given maximum run length.
func mutateRead(rng *rand.Rand, src []byte, subRate float64, indels, maxIndel int) []byte {
	bases := []byte("ACGT")
	read := append([]byte(nil), src...)
	for i := range read {
		if rng.Float64() < subRate {
			read[i] = bases[rng.Intn(4)]
		}
	}
	for e := 0; e < indels && len(read) > 2*maxIndel+2; e++ {
		l := 1 + rng.Intn(maxIndel)
		at := 1 + rng.Intn(len(read)-l-1)
		if rng.Intn(2) == 0 {
			// Deletion from the read.
			read = append(read[:at], read[at+l:]...)
		} else {
			// Insertion of random bases.
			ins := make([]byte, l)
			for i := range ins {
				ins[i] = bases[rng.Intn(4)]
			}
			read = append(read[:at], append(ins, read[at:]...)...) //nolint
		}
	}
	return read
}

func checkFitEqual(t *testing.T, tag string, read, window []byte, sc Scoring) {
	t.Helper()
	want := fitAlignFull(read, window, sc)
	if !bandedEligible(len(read), len(window), sc) {
		return
	}
	got, ok := fitAlignBanded(read, window, sc)
	if !ok {
		return // certificate failed: dispatcher re-runs the full DP
	}
	if got.Score != want.Score || got.RefStart != want.RefStart || got.Cigar.String() != want.Cigar.String() {
		t.Fatalf("%s (m=%d n=%d):\nbanded score=%d start=%d cigar=%s\nfull   score=%d start=%d cigar=%s",
			tag, len(read), len(window),
			got.Score, got.RefStart, got.Cigar, want.Score, want.RefStart, want.Cigar)
	}
}

// TestKernelFitAlignBandedEquivalence: on random reads carved from random
// windows, the banded DP must reproduce the full DP exactly — score,
// RefStart and CIGAR — whenever its certificate accepts.
func TestKernelFitAlignBandedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	bases := []byte("ACGT")
	for c := 0; c < 600; c++ {
		n := 30 + rng.Intn(300)
		window := make([]byte, n)
		for i := range window {
			window[i] = bases[rng.Intn(4)]
		}
		rl := 10 + rng.Intn(n-10)
		off := rng.Intn(n - rl + 1)
		read := mutateRead(rng, window[off:off+rl], 0.06, rng.Intn(3), 4)
		checkFitEqual(t, "random", read, window, DefaultScoring())
	}
}

// TestKernelFitAlignBandedAdversarial drives indel-heavy cases: long indels
// at and beyond the band slack, where the certificate must either still
// prove equality or refuse (never silently differ).
func TestKernelFitAlignBandedAdversarial(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	bases := []byte("ACGT")
	for c := 0; c < 300; c++ {
		n := 60 + rng.Intn(200)
		window := make([]byte, n)
		for i := range window {
			window[i] = bases[rng.Intn(4)]
		}
		rl := 40 + rng.Intn(n-40)
		off := rng.Intn(n - rl + 1)
		// Indel lengths straddle bandSlack: up to 1.5× the slack.
		read := mutateRead(rng, window[off:off+rl], 0.03, 1+rng.Intn(3), bandSlack+bandSlack/2)
		checkFitEqual(t, "adversarial", read, window, DefaultScoring())
	}
	// Hand-built extremes.
	window := []byte("ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT")
	cases := [][]byte{
		window[:5], // tiny read, long window
		append(append([]byte{}, window...), window[:20]...), // read longer than window
		[]byte("TTTTTTTTTTTTTTTTTTTT"),                      // nothing matches
		[]byte("ACGTNNNNNNNNNNNNACGT"),                      // N runs never match
	}
	for _, read := range cases {
		checkFitEqual(t, "extreme", read, window, DefaultScoring())
	}
}

// TestKernelFitAlignDispatch: the public dispatcher must return full-DP
// results with kernels disabled and identical results with them enabled.
func TestKernelFitAlignDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	bases := []byte("ACGT")
	for c := 0; c < 100; c++ {
		n := 50 + rng.Intn(200)
		window := make([]byte, n)
		for i := range window {
			window[i] = bases[rng.Intn(4)]
		}
		rl := 20 + rng.Intn(n-20)
		off := rng.Intn(n - rl + 1)
		read := mutateRead(rng, window[off:off+rl], 0.05, rng.Intn(2), 6)

		prev := kernels.SetEnabled(false)
		slow := fitAlign(read, window, DefaultScoring())
		kernels.SetEnabled(true)
		fast := fitAlign(read, window, DefaultScoring())
		kernels.SetEnabled(prev)
		if fast.Score != slow.Score || fast.RefStart != slow.RefStart || fast.Cigar.String() != slow.Cigar.String() {
			t.Fatalf("dispatch mismatch (m=%d n=%d): fast=%+v slow=%+v", len(read), n, fast, slow)
		}
	}
}

// TestKernelFitAlignBandedCertificateRefusal constructs a read whose only
// good alignment needs an indel far beyond the band; the banded kernel must
// refuse rather than return a worse in-band alignment.
func TestKernelFitAlignBandedCertificateRefusal(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	bases := []byte("ACGT")
	window := make([]byte, 200)
	for i := range window {
		window[i] = bases[rng.Intn(4)]
	}
	// Read = window with a 3*bandSlack deletion in the middle: the true
	// optimum needs diagonals far outside the band.
	read := append([]byte{}, window[:80]...)
	read = append(read, window[80+3*bandSlack:]...)
	if !bandedEligible(len(read), len(window), DefaultScoring()) {
		t.Fatal("case unexpectedly ineligible")
	}
	got, ok := fitAlignBanded(read, window, DefaultScoring())
	want := fitAlignFull(read, window, DefaultScoring())
	if ok && (got.Score != want.Score || got.Cigar.String() != want.Cigar.String()) {
		t.Fatalf("banded accepted a wrong answer: banded=%+v full=%+v", got, want)
	}
	// And the dispatcher must still land on the full answer.
	fit := fitAlign(read, window, DefaultScoring())
	if fit.Score != want.Score || fit.Cigar.String() != want.Cigar.String() {
		t.Fatalf("dispatcher diverged: %+v vs %+v", fit, want)
	}
}

func benchFitInputs() (read, window []byte) {
	rng := rand.New(rand.NewSource(33))
	bases := []byte("ACGT")
	window = make([]byte, 400)
	for i := range window {
		window[i] = bases[rng.Intn(4)]
	}
	// Typical short-read error profile: ~1% substitutions, one small indel.
	read = mutateRead(rng, window[100:250], 0.01, 1, 3)
	return
}

func BenchmarkKernelFitAlignFull(b *testing.B) {
	read, window := benchFitInputs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fitAlignFull(read, window, DefaultScoring())
	}
}

func BenchmarkKernelFitAlignBanded(b *testing.B) {
	read, window := benchFitInputs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := fitAlignBanded(read, window, DefaultScoring()); !ok {
			b.Fatal("certificate refused benchmark input")
		}
	}
}
