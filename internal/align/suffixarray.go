// Package align implements the Aligner stage substrate: a Burrows-Wheeler
// transform / FM-index over the reference genome, exact-match backward
// search, seed-and-extend alignment with banded Smith-Waterman, and a
// paired-end aligner in the style of BWA-MEM (§2.1: the Aligner employs a
// BWT algorithm to index the genome and maps reads against it).
package align

import "sort"

// buildSuffixArray constructs the suffix array of s by prefix doubling
// (O(n log² n)), adequate for the laptop-scale genomes of this reproduction.
// The input must not contain the value 0 except as an implicit terminator;
// callers pass 2-bit-coded text with values ≥ 1.
func buildSuffixArray(s []byte) []int32 {
	n := len(s)
	sa := make([]int32, n)
	rank := make([]int32, n)
	tmp := make([]int32, n)
	for i := 0; i < n; i++ {
		sa[i] = int32(i)
		rank[i] = int32(s[i])
	}
	for k := 1; ; k *= 2 {
		key := func(i int32) (int32, int32) {
			second := int32(-1)
			if int(i)+k < n {
				second = rank[int(i)+k]
			}
			return rank[i], second
		}
		sort.Slice(sa, func(a, b int) bool {
			r1a, r2a := key(sa[a])
			r1b, r2b := key(sa[b])
			if r1a != r1b {
				return r1a < r1b
			}
			return r2a < r2b
		})
		tmp[sa[0]] = 0
		for i := 1; i < n; i++ {
			r1a, r2a := key(sa[i-1])
			r1b, r2b := key(sa[i])
			tmp[sa[i]] = tmp[sa[i-1]]
			if r1a != r1b || r2a != r2b {
				tmp[sa[i]]++
			}
		}
		copy(rank, tmp)
		if int(rank[sa[n-1]]) == n-1 {
			break
		}
	}
	return sa
}
