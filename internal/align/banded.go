package align

import (
	"github.com/gpf-go/gpf/internal/bufpool"
	"github.com/gpf-go/gpf/internal/sam"
)

// Banded fit alignment (see DESIGN.md, "Hot kernels"). The full Gotoh DP
// fills (m+1)×(n+1) cells, but for realignment and haplotype fitting the
// read and window are close in length and the optimal path hugs the main
// diagonal: almost all of that work scores paths with absurd gap counts.
// The banded kernel fills only diagonals d = j−i in [lo, hi], where
//
//	lo = min(0, n−m) − bandSlack
//	hi = max(0, n−m) + bandSlack
//
// i.e. every start offset the length difference allows, plus bandSlack
// diagonals of indel headroom on each side.
//
// Soundness certificate — why the result is exactly the full DP's, CIGAR
// included, whenever ok is returned:
//
// A path's diagonal starts at j_start ≥ 0, ends at j_end − m ≤ n−m, and only
// insertions move it down. So any path that ever touches a diagonal below lo
// or above hi must contain at least
//
//	G = bandSlack + 1 + max(0, m−n)
//
// insertions (to dip below lo from a start ≥ 0, or to return from above hi
// to an end ≤ n−m). Such a path matches at most m−G read bases and pays for
// G insertions, so its score is at most
//
//	S_out = (m−G)·Match + bestGapCost(G)
//
// (deletions and mismatches only lower it, given the sign constraints
// checked by bandedEligible). If the banded optimum strictly beats S_out,
// every optimal path lies inside the band; the banded matrix then agrees
// with the full matrix along every optimal path (a traceback prefix achieves
// its cell's value, and in-band values never exceed full values), so the
// deterministic traceback — same tie-break order, same end-cell scan — picks
// the identical path. Any discrepancy would imply an out-of-band optimum,
// contradicting the certificate. If G > m an out-of-band path is outright
// impossible (insertions consume read bases). When the certificate fails the
// kernel reports !ok and the caller re-runs the full DP.
//
// The property test TestKernelFitAlignBandedEquivalence checks
// score+RefStart+CIGAR equality against the full DP on random and
// adversarial indel-heavy inputs.

// bandSlack is the indel headroom on each side of the diagonal band. 16
// covers every indel the assembler or realigner produces at default configs
// while keeping the band ~33 diagonals wide.
const bandSlack = 16

// bandedEligible reports whether the banded kernel applies: the certificate
// arithmetic requires the usual score-sign shape, and the band must actually
// be narrower than the full matrix rows for the work to be worth it.
func bandedEligible(m, n int, sc Scoring) bool {
	if m == 0 || n == 0 {
		return false
	}
	if sc.Match < 0 || sc.Mismatch > 0 || sc.GapOpen > 0 || sc.GapExtend > 0 {
		return false
	}
	lo, hi := bandBounds(m, n)
	return hi-lo+1 < n+1
}

// bandBounds returns the band [lo, hi] over diagonals d = j−i, clipped to
// the reachable range [−m, n].
func bandBounds(m, n int) (lo, hi int) {
	lo, hi = -bandSlack, bandSlack
	if n-m < 0 {
		lo = n - m - bandSlack
	} else if n-m > 0 {
		hi = n - m + bandSlack
	}
	if lo < -m {
		lo = -m
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// fitAlignBanded runs the banded Gotoh DP. ok is false when the banded
// optimum cannot certify that no out-of-band path beats it; the caller must
// then fall back to fitAlignFull. Requires bandedEligible(m, n, sc).
func fitAlignBanded(read, window []byte, sc Scoring) (fit fitResult, ok bool) {
	m, n := len(read), len(window)
	lo, hi := bandBounds(m, n)
	// Diagonal-indexed storage: cell (i, j) lives at row i, slot
	// k = (j−i) − lo + 1. The diagonal predecessor (i−1, j−1) keeps the same
	// k; the insertion predecessor (i−1, j) is k+1; the deletion predecessor
	// (i, j−1) is k−1. Slots 0 and W+1 are pads held at negInf so band-edge
	// cells read −∞ neighbors without branching.
	W := hi - lo + 1
	stride := W + 2
	size := (m + 1) * stride
	scores := bufpool.GetI32(3 * size)
	ptrs := bufpool.GetU8(3 * size)
	defer bufpool.PutI32(scores)
	defer bufpool.PutU8(ptrs)
	M, X, Y := scores[0:size], scores[size:2*size], scores[2*size:3*size]
	ptrM, ptrX, ptrY := ptrs[0:size], ptrs[size:2*size], ptrs[2*size:3*size]
	for i := range scores {
		scores[i] = negInf
	}
	clear(ptrs)
	const (
		fromM = 1
		fromX = 2
		fromY = 3
	)

	// Row 0: free leading reference flank on every in-band start column.
	for d := max(lo, 0); d <= hi; d++ {
		M[d-lo+1] = 0
	}
	// Column 0: leading insertions, as far down as the band reaches.
	for i := 1; i <= m && -i >= lo; i++ {
		k := i*stride + (-i - lo + 1)
		X[k] = int32(sc.GapOpen + (i-1)*sc.GapExtend)
		ptrX[k] = fromX
	}

	for i := 1; i <= m; i++ {
		row := i * stride
		prow := row - stride
		dStart := max(lo, 1-i) // j = i+d ≥ 1
		dEnd := min(hi, n-i)   // j ≤ n
		rb := read[i-1]
		for d := dStart; d <= dEnd; d++ {
			k := d - lo + 1
			j := i + d
			sub := sc.Mismatch
			if rb == window[j-1] && rb != 'N' {
				sub = sc.Match
			}
			// M: diagonal move from best of three.
			dM, dX, dY := M[prow+k], X[prow+k], Y[prow+k]
			best, from := dM, uint8(fromM)
			if dX > best {
				best, from = dX, fromX
			}
			if dY > best {
				best, from = dY, fromY
			}
			M[row+k] = best + int32(sub)
			ptrM[row+k] = from

			// X: consume read base (insertion relative to reference).
			openX := M[prow+k+1] + int32(sc.GapOpen)
			extX := X[prow+k+1] + int32(sc.GapExtend)
			if openX >= extX {
				X[row+k] = openX
				ptrX[row+k] = fromM
			} else {
				X[row+k] = extX
				ptrX[row+k] = fromX
			}

			// Y: consume window base (deletion).
			openY := M[row+k-1] + int32(sc.GapOpen)
			extY := Y[row+k-1] + int32(sc.GapExtend)
			if openY >= extY {
				Y[row+k] = openY
				ptrY[row+k] = fromM
			} else {
				Y[row+k] = extY
				ptrY[row+k] = fromY
			}
		}
	}

	// Best end on the last row, in the full DP's scan order: columns
	// ascending (d ascending here), M before X per column, strict >.
	bestScore, bestK, bestLayer := int32(negInf), 0, uint8(fromM)
	mrow := m * stride
	for d := lo; d <= min(hi, n-m); d++ {
		k := d - lo + 1
		if M[mrow+k] > bestScore {
			bestScore, bestK, bestLayer = M[mrow+k], k, fromM
		}
		if X[mrow+k] > bestScore {
			bestScore, bestK, bestLayer = X[mrow+k], k, fromX
		}
	}

	// Certificate: does the banded optimum rule out every out-of-band path?
	G := bandSlack + 1 + max(0, m-n)
	if G <= m {
		gapBest := sc.GapOpen + (G-1)*sc.GapExtend
		if g := G * sc.GapOpen; g > gapBest {
			gapBest = g
		}
		sOut := (m-G)*sc.Match + gapBest
		if int(bestScore) <= sOut {
			return fitResult{}, false
		}
	}

	// Traceback, identical to the full DP's but stepping in (row, slot)
	// space: M keeps k, I moves to k+1 in the previous row, D moves to k−1.
	var rev sam.Cigar
	i, k, layer := m, bestK, bestLayer
	appendOp := func(op byte) {
		if len(rev) > 0 && rev[len(rev)-1].Op == op {
			rev[len(rev)-1].Len++
			return
		}
		rev = append(rev, sam.CigarOp{Len: 1, Op: op})
	}
	for i > 0 {
		switch layer {
		case fromM:
			appendOp('M')
			layer = ptrM[i*stride+k]
			i--
		case fromX:
			appendOp('I')
			layer = ptrX[i*stride+k]
			i--
			k++
		case fromY:
			appendOp('D')
			layer = ptrY[i*stride+k]
			k--
		}
	}
	cigar := make(sam.Cigar, len(rev))
	for c := range rev {
		cigar[c] = rev[len(rev)-1-c]
	}
	// i = 0, so the start column is just the slot's diagonal.
	return fitResult{Score: int(bestScore), RefStart: k - 1 + lo, Cigar: cigar.Normalize()}, true
}
