package align

import (
	"sort"

	"github.com/gpf-go/gpf/internal/fastq"
	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/sam"
)

// Config tunes the seed-and-extend aligner.
type Config struct {
	SeedLen       int     // exact-match seed length (default 19, as BWA-MEM)
	SeedStride    int     // distance between seed start positions (default 10)
	MaxSeedHits   int     // seeds with more hits are skipped as repetitive
	MaxCandidates int     // candidate loci extended per strand
	Flank         int     // reference window flank around a candidate locus
	MinScoreFrac  float64 // minimum score as a fraction of read length
	Scoring       Scoring
	// Pairing parameters.
	MinInsert, MaxInsert int
	ProperPairBonus      int
}

// DefaultConfig returns BWA-MEM-like parameters for 100 bp paired reads.
func DefaultConfig() Config {
	return Config{
		SeedLen:         19,
		SeedStride:      10,
		MaxSeedHits:     64,
		MaxCandidates:   8,
		Flank:           16,
		MinScoreFrac:    0.5,
		Scoring:         DefaultScoring(),
		MinInsert:       50,
		MaxInsert:       1000,
		ProperPairBonus: 20,
	}
}

// Alignment is one placement of a read.
type Alignment struct {
	Pos     genome.Position
	Reverse bool
	Score   int
	MapQ    uint8
	Cigar   sam.Cigar
	// Seq and Qual are in reference orientation (reverse-complemented for
	// reverse-strand alignments), as SAM requires.
	Seq, Qual []byte
}

// Aligner maps reads against an FM-indexed reference.
type Aligner struct {
	idx *FMIndex
	cfg Config
}

// NewAligner creates an aligner over idx with cfg (zero fields take
// defaults).
func NewAligner(idx *FMIndex, cfg Config) *Aligner {
	def := DefaultConfig()
	if cfg.SeedLen <= 0 {
		cfg.SeedLen = def.SeedLen
	}
	if cfg.SeedStride <= 0 {
		cfg.SeedStride = def.SeedStride
	}
	if cfg.MaxSeedHits <= 0 {
		cfg.MaxSeedHits = def.MaxSeedHits
	}
	if cfg.MaxCandidates <= 0 {
		cfg.MaxCandidates = def.MaxCandidates
	}
	if cfg.Flank <= 0 {
		cfg.Flank = def.Flank
	}
	if cfg.MinScoreFrac <= 0 {
		cfg.MinScoreFrac = def.MinScoreFrac
	}
	if cfg.Scoring == (Scoring{}) {
		cfg.Scoring = def.Scoring
	}
	if cfg.MaxInsert <= 0 {
		cfg.MinInsert, cfg.MaxInsert = def.MinInsert, def.MaxInsert
	}
	if cfg.ProperPairBonus <= 0 {
		cfg.ProperPairBonus = def.ProperPairBonus
	}
	return &Aligner{idx: idx, cfg: cfg}
}

// candidate is a clustered seed locus in concatenated-text coordinates.
type candidate struct {
	start int64
	votes int
}

// seedCandidates finds candidate alignment start offsets for seq via exact
// seed matches.
func (a *Aligner) seedCandidates(seq []byte) []candidate {
	var positions []int64
	for off := 0; off+a.cfg.SeedLen <= len(seq); off += a.cfg.SeedStride {
		seed := seq[off : off+a.cfg.SeedLen]
		if genome.ValidateSeq(seed) != -1 || containsN(seed) {
			continue
		}
		iv := a.idx.BackwardSearch(seed)
		if iv.Size() == 0 || iv.Size() > a.cfg.MaxSeedHits {
			continue
		}
		for _, hit := range a.idx.Locate(iv, a.cfg.MaxSeedHits) {
			positions = append(positions, hit-int64(off))
		}
	}
	if len(positions) == 0 {
		return nil
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
	// Cluster within a small tolerance (indels shift candidate starts).
	const tol = 12
	var out []candidate
	cur := candidate{start: positions[0], votes: 1}
	for _, p := range positions[1:] {
		if p-cur.start <= tol {
			cur.votes++
			continue
		}
		out = append(out, cur)
		cur = candidate{start: p, votes: 1}
	}
	out = append(out, cur)
	sort.Slice(out, func(i, j int) bool { return out[i].votes > out[j].votes })
	if len(out) > a.cfg.MaxCandidates {
		out = out[:a.cfg.MaxCandidates]
	}
	return out
}

func containsN(seq []byte) bool {
	for _, b := range seq {
		if b == 'N' {
			return true
		}
	}
	return false
}

// alignOriented aligns one orientation of the read, returning scored
// placements (unsorted).
func (a *Aligner) alignOriented(seq []byte, reverse bool) []Alignment {
	cands := a.seedCandidates(seq)
	var out []Alignment
	minScore := int(a.cfg.MinScoreFrac * float64(len(seq)))
	for _, c := range cands {
		pos, ok := a.idx.Resolve(c.start)
		if !ok {
			// Candidate begins before contig 0 or inside the sentinel; try
			// clamping to the window logic anyway via contig resolution of a
			// nearby offset.
			continue
		}
		winStart := pos.Pos - a.cfg.Flank
		winEnd := pos.Pos + len(seq) + a.cfg.Flank
		window := a.idx.ref.Slice(pos.Contig, winStart, winEnd)
		if len(window) < len(seq)/2 {
			continue
		}
		clampedStart := winStart
		if clampedStart < 0 {
			clampedStart = 0
		}
		fit := fitAlign(seq, window, a.cfg.Scoring)
		if fit.Score < minScore {
			continue
		}
		out = append(out, Alignment{
			Pos:     genome.Position{Contig: pos.Contig, Pos: clampedStart + fit.RefStart},
			Reverse: reverse,
			Score:   fit.Score,
			Cigar:   fit.Cigar,
		})
	}
	return out
}

// AlignSeq aligns a single read sequence (with quality), returning all
// plausible placements sorted by descending score; MapQ is assigned from the
// best-versus-second-best score gap. The first element (when present) is the
// primary alignment.
func (a *Aligner) AlignSeq(seq, qual []byte) []Alignment {
	fwd := a.alignOriented(seq, false)
	rc := genome.ReverseComplement(seq)
	rev := a.alignOriented(rc, true)
	all := append(fwd, rev...)
	if len(all) == 0 {
		return nil
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		if all[i].Pos.Contig != all[j].Pos.Contig {
			return all[i].Pos.Contig < all[j].Pos.Contig
		}
		return all[i].Pos.Pos < all[j].Pos.Pos
	})
	// Deduplicate identical placements.
	dedup := all[:1]
	for _, al := range all[1:] {
		last := dedup[len(dedup)-1]
		if al.Pos == last.Pos && al.Reverse == last.Reverse {
			continue
		}
		dedup = append(dedup, al)
	}
	all = dedup
	// MAPQ: BWA-MEM-like heuristic on the score gap.
	best := all[0].Score
	second := 0
	if len(all) > 1 {
		second = all[1].Score
	}
	mapq := 6 * (best - second)
	if len(all) == 1 {
		mapq = 60
	}
	if mapq > 60 {
		mapq = 60
	}
	if mapq < 0 {
		mapq = 0
	}
	all[0].MapQ = uint8(mapq)
	for i := range all {
		if all[i].Reverse {
			all[i].Seq = rc
			all[i].Qual = reverseBytes(qual)
		} else {
			all[i].Seq = seq
			all[i].Qual = qual
		}
	}
	return all
}

func reverseBytes(b []byte) []byte {
	out := make([]byte, len(b))
	for i := range b {
		out[len(b)-1-i] = b[i]
	}
	return out
}

// AlignPair aligns both mates of a paired-end read and scores pair
// combinations, preferring properly oriented pairs within the insert-size
// range. It returns a SAM record per mate (unmapped records when a mate
// fails to align).
func (a *Aligner) AlignPair(p *fastq.Pair) (sam.Record, sam.Record) {
	als1 := a.AlignSeq(p.R1.Seq, p.R1.Qual)
	als2 := a.AlignSeq(p.R2.Seq, p.R2.Qual)

	best1, best2, proper := a.pickPair(als1, als2)
	r1 := a.toRecord(&p.R1, best1, sam.FlagFirstOfPair)
	r2 := a.toRecord(&p.R2, best2, sam.FlagSecondOfPair)
	crossLink(&r1, &r2, proper)
	return r1, r2
}

// pickPair selects the mate placements maximizing combined score with a
// proper-pair bonus.
func (a *Aligner) pickPair(als1, als2 []Alignment) (*Alignment, *Alignment, bool) {
	var best1, best2 *Alignment
	proper := false
	bestScore := -1 << 30
	if len(als1) > 0 {
		best1 = &als1[0]
		bestScore = als1[0].Score
	}
	if len(als2) > 0 {
		best2 = &als2[0]
		if best1 != nil {
			bestScore = best1.Score + best2.Score
		} else {
			bestScore = best2.Score
		}
	}
	if len(als1) == 0 || len(als2) == 0 {
		return best1, best2, false
	}
	// Bounded search over top placements for a proper pair.
	lim := func(n int) int {
		if n > 4 {
			return 4
		}
		return n
	}
	for i := 0; i < lim(len(als1)); i++ {
		for j := 0; j < lim(len(als2)); j++ {
			a1, a2 := &als1[i], &als2[j]
			if !properOrientation(a1, a2, a.cfg.MinInsert, a.cfg.MaxInsert) {
				continue
			}
			score := a1.Score + a2.Score + a.cfg.ProperPairBonus
			if score > bestScore {
				bestScore, best1, best2, proper = score, a1, a2, true
			}
		}
	}
	if !proper && best1 != nil && best2 != nil &&
		properOrientation(best1, best2, a.cfg.MinInsert, a.cfg.MaxInsert) {
		proper = true
	}
	return best1, best2, proper
}

// properOrientation reports whether two placements form a forward-reverse
// pair on one contig within the insert range.
func properOrientation(a1, a2 *Alignment, minIns, maxIns int) bool {
	if a1.Pos.Contig != a2.Pos.Contig || a1.Reverse == a2.Reverse {
		return false
	}
	fwd, rev := a1, a2
	if fwd.Reverse {
		fwd, rev = rev, fwd
	}
	insert := rev.Pos.Pos + rev.Cigar.RefLen() - fwd.Pos.Pos
	return insert >= minIns && insert <= maxIns
}

// toRecord converts an alignment (possibly nil = unmapped) to a SAM record.
func (a *Aligner) toRecord(read *fastq.Record, al *Alignment, mateFlag uint16) sam.Record {
	rec := sam.Record{
		Name: trimMateSuffix(read.Name),
		Flag: sam.FlagPaired | mateFlag,
		Seq:  read.Seq,
		Qual: read.Qual,
	}
	if al == nil {
		rec.Flag |= sam.FlagUnmapped
		rec.RefID, rec.Pos = -1, -1
		rec.MateRef, rec.MatePos = -1, -1
		return rec
	}
	rec.RefID = int32(al.Pos.Contig)
	rec.Pos = int32(al.Pos.Pos)
	rec.MapQ = al.MapQ
	rec.Cigar = al.Cigar
	rec.Seq = al.Seq
	rec.Qual = al.Qual
	if al.Reverse {
		rec.Flag |= sam.FlagReverse
	}
	return rec
}

// crossLink fills mate fields and TLEN on a record pair.
func crossLink(r1, r2 *sam.Record, proper bool) {
	link := func(r, mate *sam.Record) {
		if mate.Unmapped() {
			r.Flag |= sam.FlagMateUnmapped
			r.MateRef, r.MatePos = -1, -1
			return
		}
		r.MateRef, r.MatePos = mate.RefID, mate.Pos
		if mate.Reverse() {
			r.Flag |= sam.FlagMateReverse
		}
	}
	link(r1, r2)
	link(r2, r1)
	if proper && !r1.Unmapped() && !r2.Unmapped() {
		r1.Flag |= sam.FlagProperPair
		r2.Flag |= sam.FlagProperPair
		lo, hi := r1, r2
		if lo.Pos > hi.Pos {
			lo, hi = hi, lo
		}
		tlen := hi.Pos + int32(hi.Cigar.RefLen()) - lo.Pos
		lo.TempLen = tlen
		hi.TempLen = -tlen
	}
}

func trimMateSuffix(name string) string {
	if n := len(name); n > 2 && name[n-2] == '/' && (name[n-1] == '1' || name[n-1] == '2') {
		return name[:n-2]
	}
	return name
}
