package align

import (
	"github.com/gpf-go/gpf/internal/kernels"
	"github.com/gpf-go/gpf/internal/sam"
)

// Scoring follows BWA-MEM's defaults: match +1, mismatch -4, gap open -6,
// gap extend -1.
type Scoring struct {
	Match     int
	Mismatch  int
	GapOpen   int
	GapExtend int
}

// DefaultScoring returns the BWA-MEM default scheme.
func DefaultScoring() Scoring {
	return Scoring{Match: 1, Mismatch: -4, GapOpen: -6, GapExtend: -1}
}

const negInf = -1 << 29

// fitResult is the outcome of fitting a read into a reference window.
type fitResult struct {
	Score    int
	RefStart int // offset of the first consumed reference base in the window
	Cigar    sam.Cigar
}

// fitAlign performs semi-global affine-gap alignment: the read aligns
// end-to-end while the reference window has free flanks (Gotoh DP with full
// traceback). It returns the best score, the window offset where the
// alignment begins, and an M/I/D CIGAR covering the whole read.
//
// When the fast kernels are enabled it dispatches to the banded DP
// (banded.go), which fills only a diagonal band of the matrix and proves its
// own answer identical via the out-of-band score certificate — falling back
// to the full DP on the rare reads whose banded optimum cannot rule out an
// out-of-band path.
func fitAlign(read, window []byte, sc Scoring) fitResult {
	if kernels.Enabled() && bandedEligible(len(read), len(window), sc) {
		if fit, ok := fitAlignBanded(read, window, sc); ok {
			return fit
		}
	}
	return fitAlignFull(read, window, sc)
}

// fitAlignFull is the reference implementation: the complete (m+1)×(n+1)
// Gotoh matrix. It is the oracle for the banded kernel's equivalence
// property tests and the DisableFastKernels ablation path, and the fallback
// when the banded certificate fails.
func fitAlignFull(read, window []byte, sc Scoring) fitResult {
	m, n := len(read), len(window)
	if m == 0 {
		return fitResult{}
	}
	// Three layers: M (diagonal), X (gap in reference = insertion in read,
	// consumes read), Y (gap in read = deletion, consumes reference).
	// Rows: read index 0..m. Cols: window index 0..n.
	idx := func(i, j int) int { return i*(n+1) + j }
	M := make([]int32, (m+1)*(n+1))
	X := make([]int32, (m+1)*(n+1))
	Y := make([]int32, (m+1)*(n+1))
	// ptr encodes traceback: 2 bits per layer.
	ptrM := make([]uint8, (m+1)*(n+1))
	ptrX := make([]uint8, (m+1)*(n+1))
	ptrY := make([]uint8, (m+1)*(n+1))
	const (
		fromM = 1
		fromX = 2
		fromY = 3
	)

	for j := 0; j <= n; j++ {
		M[idx(0, j)] = 0 // free leading reference flank
		X[idx(0, j)] = negInf
		Y[idx(0, j)] = negInf
	}
	for i := 1; i <= m; i++ {
		M[idx(i, 0)] = negInf
		Y[idx(i, 0)] = negInf
		X[idx(i, 0)] = int32(sc.GapOpen + (i-1)*sc.GapExtend)
		ptrX[idx(i, 0)] = fromX
	}

	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			sub := sc.Mismatch
			if read[i-1] == window[j-1] && read[i-1] != 'N' {
				sub = sc.Match
			}
			// M: diagonal move from best of three.
			dM, dX, dY := M[idx(i-1, j-1)], X[idx(i-1, j-1)], Y[idx(i-1, j-1)]
			best, from := dM, uint8(fromM)
			if dX > best {
				best, from = dX, fromX
			}
			if dY > best {
				best, from = dY, fromY
			}
			M[idx(i, j)] = best + int32(sub)
			ptrM[idx(i, j)] = from

			// X: consume read base (insertion relative to reference).
			openX := M[idx(i-1, j)] + int32(sc.GapOpen)
			extX := X[idx(i-1, j)] + int32(sc.GapExtend)
			if openX >= extX {
				X[idx(i, j)] = openX
				ptrX[idx(i, j)] = fromM
			} else {
				X[idx(i, j)] = extX
				ptrX[idx(i, j)] = fromX
			}

			// Y: consume window base (deletion).
			openY := M[idx(i, j-1)] + int32(sc.GapOpen)
			extY := Y[idx(i, j-1)] + int32(sc.GapExtend)
			if openY >= extY {
				Y[idx(i, j)] = openY
				ptrY[idx(i, j)] = fromM
			} else {
				Y[idx(i, j)] = extY
				ptrY[idx(i, j)] = fromY
			}
		}
	}

	// Best end: any column of the last row (free trailing reference flank),
	// best layer among M and X (ending in a deletion is never optimal).
	bestScore, bestJ, bestLayer := int32(negInf), 0, uint8(fromM)
	for j := 0; j <= n; j++ {
		if M[idx(m, j)] > bestScore {
			bestScore, bestJ, bestLayer = M[idx(m, j)], j, fromM
		}
		if X[idx(m, j)] > bestScore {
			bestScore, bestJ, bestLayer = X[idx(m, j)], j, fromX
		}
	}

	// Traceback.
	var rev sam.Cigar
	i, j, layer := m, bestJ, bestLayer
	appendOp := func(op byte) {
		if len(rev) > 0 && rev[len(rev)-1].Op == op {
			rev[len(rev)-1].Len++
			return
		}
		rev = append(rev, sam.CigarOp{Len: 1, Op: op})
	}
	for i > 0 {
		switch layer {
		case fromM:
			appendOp('M')
			layer = ptrM[idx(i, j)]
			i--
			j--
		case fromX:
			appendOp('I')
			layer = ptrX[idx(i, j)]
			i--
		case fromY:
			appendOp('D')
			layer = ptrY[idx(i, j)]
			j--
		}
	}
	// Reverse into forward order.
	cigar := make(sam.Cigar, len(rev))
	for k := range rev {
		cigar[k] = rev[len(rev)-1-k]
	}
	return fitResult{Score: int(bestScore), RefStart: j, Cigar: cigar.Normalize()}
}
