package align

import "github.com/gpf-go/gpf/internal/sam"

// FitAlign fits read end-to-end into a reference window with free reference
// flanks, returning the score, the window offset where the alignment starts
// and an M/I/D CIGAR over the whole read. The indel realigner (Cleaner
// stage) uses it to re-place reads around candidate indels.
func FitAlign(read, window []byte, sc Scoring) (score, refStart int, cigar sam.Cigar) {
	fit := fitAlign(read, window, sc)
	return fit.Score, fit.RefStart, fit.Cigar
}
