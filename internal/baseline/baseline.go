// Package baseline implements the comparator systems of the paper's
// evaluation (§5.1): Churchill's static-region, file-handoff pipeline
// parallelization; ADAM-like and GATK4-Spark-like per-stage implementations
// (in-memory but with generic serialization, per-stage format conversion and
// no Process-level fusion); and the Persona dataflow model with its AGD
// format-conversion costs. Each baseline runs the same underlying genomics
// algorithms, differing exactly in the engineering dimensions the paper
// credits for GPF's advantage — so measured gaps reflect those dimensions.
package baseline

import (
	"time"

	"github.com/gpf-go/gpf/internal/cluster"
	"github.com/gpf-go/gpf/internal/core"
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/fastq"
)

// System identifies a comparator.
type System int

// The evaluated systems.
const (
	GPF System = iota
	Churchill
	ADAM
	GATK4
	Persona
)

// String names the system.
func (s System) String() string {
	switch s {
	case Churchill:
		return "Churchill"
	case ADAM:
		return "ADAM"
	case GATK4:
		return "GATK4"
	case Persona:
		return "Persona"
	default:
		return "GPF"
	}
}

// WGSOptions configure a full-pipeline run for Fig 10 comparisons.
type WGSOptions struct {
	// DynamicRepartition enables §4.4's load balancing; Churchill fixes
	// regions at the start of the analysis.
	DynamicRepartition bool
	// Fuse enables Process-level redundancy elimination.
	Fuse bool
	// Codec selects the serializer tier.
	Codec core.CodecTier
	// FileHandoff charges per-stage intermediate file I/O (Churchill-style
	// workflow managers spill between tools).
	FileHandoff bool
	// BarrierShuffle disables the pipelined push-based shuffle, restoring
	// the global map barrier (the pipelined-shuffle ablation).
	BarrierShuffle bool
	// NoMapSideCombine disables pre-aggregation in the census and other
	// combine-based ops (the map-side-combine ablation).
	NoMapSideCombine bool
	// NoFastKernels reverts the hot kernels (scaled pair-HMM, banded
	// alignment, table/word-parallel base ops) to their reference
	// implementations (the fast-kernel ablation).
	NoFastKernels bool
}

// GPFOptions is the paper's system: dynamic repartition, fusion, genomic
// codec, no file handoff.
func GPFOptions() WGSOptions {
	return WGSOptions{DynamicRepartition: true, Fuse: true, Codec: core.TierGPF}
}

// ChurchillOptions: static regions decided up front, tool handoff through
// files, no in-memory fusion.
func ChurchillOptions() WGSOptions {
	return WGSOptions{DynamicRepartition: false, Fuse: false, Codec: core.TierField, FileHandoff: true}
}

// WGSRun is the outcome of a full-pipeline baseline run.
type WGSRun struct {
	Metrics  engine.Metrics
	NumCalls int
}

// RunWGS executes the WGS pipeline under the given options and returns the
// engine metrics (the raw material for trace replay at cluster scale).
func RunWGS(rt *core.Runtime, pairs []fastq.Pair, opts WGSOptions) (*WGSRun, error) {
	rt.Codec = opts.Codec
	rt.Engine.DisablePipelinedShuffle = opts.BarrierShuffle
	rt.Engine.DisableMapSideCombine = opts.NoMapSideCombine
	rt.Engine.DisableFastKernels = opts.NoFastKernels
	if !opts.DynamicRepartition {
		// Disable splitting: the threshold can never be exceeded.
		rt.SplitThresholdFactor = 1e18
	}
	ds := core.PairsToRDD(rt, pairs, rt.NumPartitions)
	wgs := core.BuildWGSPipeline(rt, ds, false)
	wgs.Pipeline.Optimize = opts.Fuse
	if err := wgs.Pipeline.Run(); err != nil {
		return nil, err
	}
	calls, err := core.CollectVCF(rt, wgs.VCF)
	if err != nil {
		return nil, err
	}
	return &WGSRun{Metrics: rt.Engine.Metrics(), NumCalls: len(calls)}, nil
}

// AddFileHandoff rewrites a trace to the file-handoff execution style: after
// every stage, the stage's output bytes are written to the shared FS and
// read back by the next stage. bytesPerTask approximates each task's
// intermediate file size (SAM/BAM intermediates are often larger than the
// input, per §1).
func AddFileHandoff(tr cluster.Trace, bytesPerTask int64) cluster.Trace {
	out := cluster.Trace{Stages: make([]cluster.StageWork, len(tr.Stages))}
	for i, s := range tr.Stages {
		ns := cluster.StageWork{Name: s.Name, Kind: s.Kind, Driver: s.Driver}
		for _, t := range s.Tasks {
			t.WriteBytes += bytesPerTask
			t.ReadBytes += bytesPerTask
			ns.Tasks = append(ns.Tasks, t)
		}
		out.Stages[i] = ns
	}
	return out
}

// SerialScatterGather models Churchill's per-stage scatter/gather barrier: a
// serial driver step proportional to the region count is charged per stage
// (Churchill's deterministic merge of region outputs).
func SerialScatterGather(tr cluster.Trace, perStage time.Duration) cluster.Trace {
	out := cluster.Trace{Stages: make([]cluster.StageWork, len(tr.Stages))}
	for i, s := range tr.Stages {
		s.Driver += perStage
		out.Stages[i] = s
	}
	return out
}
