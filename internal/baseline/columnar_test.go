package baseline

import (
	"bytes"
	"encoding/gob"
	"testing"

	"github.com/gpf-go/gpf/internal/core"
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/fastq"
	"github.com/gpf-go/gpf/internal/vcf"
)

// runWGSCalls runs the full WGS pipeline under the GPF tier with serialized
// caching and returns the final call set plus the engine metrics. The
// disableColumnar flag is the columnar-storage ablation: same pipeline, gob
// blocks instead of per-field columns.
func runWGSCalls(t *testing.T, rt *core.Runtime, pairs []fastq.Pair, disableColumnar bool) ([]vcf.Record, engine.Metrics) {
	t.Helper()
	rt.Codec = core.TierGPF
	rt.Engine.StoreSerialized = true
	rt.Engine.DisableColumnar = disableColumnar
	ds := core.PairsToRDD(rt, pairs, rt.NumPartitions)
	wgs := core.BuildWGSPipeline(rt, ds, false)
	wgs.Pipeline.Optimize = true
	if err := wgs.Pipeline.Run(); err != nil {
		t.Fatal(err)
	}
	calls, err := core.CollectVCF(rt, wgs.VCF)
	if err != nil {
		t.Fatal(err)
	}
	return calls, rt.Engine.Metrics()
}

func gobCalls(t *testing.T, calls []vcf.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(calls); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestColumnarPipelineByteIdentical is the ablation property test: the full
// pipeline must produce byte-identical output whether partitions are stored
// and shuffled columnar or through the generic gob fallback — projection
// pushdown is an optimization, never a semantics change. It also pins the
// optimization down: only the columnar run may report pruned bytes, and it
// must actually prune some.
func TestColumnarPipelineByteIdentical(t *testing.T) {
	rt, pairs := testSetup(t, 8)
	colCalls, colM := runWGSCalls(t, rt, pairs, false)

	rt2 := core.NewRuntime(engine.NewContext(2), rt.Ref)
	rt2.PartitionLen = 5000
	gobCallsOut, gobM := runWGSCalls(t, rt2, pairs, true)

	if len(colCalls) == 0 {
		t.Fatal("columnar run called nothing")
	}
	if a, b := gobCalls(t, colCalls), gobCalls(t, gobCallsOut); !bytes.Equal(a, b) {
		t.Fatalf("pipeline output differs: columnar %d calls (%d bytes) vs gob %d calls (%d bytes)",
			len(colCalls), len(a), len(gobCallsOut), len(b))
	}
	if colM.TotalPrunedBytes() == 0 {
		t.Fatal("columnar run should prune bytes in the coordinate census")
	}
	if gobM.TotalPrunedBytes() != 0 {
		t.Fatalf("gob ablation pruned %d bytes, want 0", gobM.TotalPrunedBytes())
	}
	if r := colM.PruningRatio(); r <= 0 || r >= 1 {
		t.Fatalf("columnar pruning ratio = %v, want in (0,1)", r)
	}
}
