package baseline

import (
	"time"

	"github.com/gpf-go/gpf/internal/align"
	"github.com/gpf-go/gpf/internal/core"
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/fastq"
	"github.com/gpf-go/gpf/internal/sam"
)

// PersonaModel captures the published behaviour of Persona's AGD format
// pipeline (§5.2.3): FASTQ imports to AGD at 360 MB/s and alignment results
// export from AGD to BAM at 82 MB/s — a serial conversion the paper charges
// against Persona's headline alignment throughput.
type PersonaModel struct {
	ConvertInMBps  float64
	ConvertOutMBps float64
}

// DefaultPersonaModel returns the rates reported by the Persona paper and
// quoted in §5.2.3.
func DefaultPersonaModel() PersonaModel {
	return PersonaModel{ConvertInMBps: 360, ConvertOutMBps: 82}
}

// ConversionTime returns the serial AGD conversion time for a dataset with
// the given FASTQ input size and BAM output size.
func (m PersonaModel) ConversionTime(fastqBytes, bamBytes int64) time.Duration {
	in := float64(fastqBytes) / (m.ConvertInMBps * 1e6)
	out := float64(bamBytes) / (m.ConvertOutMBps * 1e6)
	return time.Duration((in + out) * float64(time.Second))
}

// RunPersonaAlign aligns reads single-end (Persona integrates SNAP and uses
// single-end reads; §5.2.3), returning engine metrics for the alignment
// compute itself. Conversion time is charged separately via ConversionTime.
func RunPersonaAlign(rt *core.Runtime, pairs []fastq.Pair) (engine.Metrics, int64, error) {
	rt.Engine.ResetMetrics()
	var fastqBytes int64
	reads := make([]fastq.Record, 0, 2*len(pairs))
	for i := range pairs {
		fastqBytes += int64(pairs[i].Bytes())
		reads = append(reads, pairs[i].R1, pairs[i].R2)
	}
	idx, err := rt.Index()
	if err != nil {
		return engine.Metrics{}, 0, err
	}
	aligner := align.NewAligner(idx, rt.AlignerConfig)
	ds := engine.Parallelize(rt.Engine, reads, rt.NumPartitions)
	aligned, err := engine.MapPartitions("persona/align-single-end", ds, nil,
		func(_ int, rs []fastq.Record) ([]sam.Record, error) {
			out := make([]sam.Record, 0, len(rs))
			for i := range rs {
				als := aligner.AlignSeq(rs[i].Seq, rs[i].Qual)
				rec := sam.Record{Name: rs[i].Name, Seq: rs[i].Seq, Qual: rs[i].Qual, RefID: -1, Pos: -1, MateRef: -1, MatePos: -1}
				if len(als) == 0 {
					rec.Flag = sam.FlagUnmapped
				} else {
					a := als[0]
					rec.RefID = int32(a.Pos.Contig)
					rec.Pos = int32(a.Pos.Pos)
					rec.MapQ = a.MapQ
					rec.Cigar = a.Cigar
					rec.Seq, rec.Qual = a.Seq, a.Qual
					if a.Reverse {
						rec.Flag |= sam.FlagReverse
					}
				}
				out = append(out, rec)
			}
			return out, nil
		})
	if err != nil {
		return engine.Metrics{}, 0, err
	}
	if _, err := engine.Count("persona/materialize", aligned); err != nil {
		return engine.Metrics{}, 0, err
	}
	return rt.Engine.Metrics(), fastqBytes, nil
}

// AlignmentThroughput converts an aligned-base count and a wall time into
// gigabases per second — the y-axis of Fig 11(d).
func AlignmentThroughput(bases int64, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(bases) / 1e9 / wall.Seconds()
}
