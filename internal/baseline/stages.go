package baseline

import (
	"github.com/gpf-go/gpf/internal/cleaner"
	"github.com/gpf-go/gpf/internal/compress"
	"github.com/gpf-go/gpf/internal/core"
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/sam"
)

// readsWhole declares that a baseline stage touches every record field.
// The comparators model whole-record systems — projection pushdown is the
// GPF-side optimization they lack — so every stage here opts out of pruning
// explicitly rather than relying on the planner's silent AllFields default.
// FieldsAll (not colfmt.AllFields) keeps materialized masks saturated, so
// stage caches satisfy any later sink demand.
var readsWhole = engine.ReadsOnly(engine.FieldsAll)

// StageStyle captures how a comparator executes one pipeline stage: which
// serializer tier it shuffles through, and whether it converts records
// into its own storage format before and after the stage (ADAM's
// SAM→columnar conversion; Persona's SAM→AGD).
type StageStyle struct {
	System  System
	Codec   core.CodecTier
	Convert bool
}

// StyleGPF runs the stage the GPF way: genomic codec, no conversion.
func StyleGPF() StageStyle { return StageStyle{System: GPF, Codec: core.TierGPF} }

// StyleADAM runs the stage ADAM-style: generic serialization plus format
// conversion on entry and exit.
func StyleADAM() StageStyle { return StageStyle{System: ADAM, Codec: core.TierGob, Convert: true} }

// StyleGATK4 runs the stage GATK4-Spark-style: generic serialization, no
// extra conversion.
func StyleGATK4() StageStyle { return StageStyle{System: GATK4, Codec: core.TierGob} }

// StylePersona runs the stage Persona-style: field packing into the AGD-like
// layout with conversion on entry and exit.
func StylePersona() StageStyle {
	return StageStyle{System: Persona, Codec: core.TierField, Convert: true}
}

// convertStage round-trips every partition through the generic serializer —
// the cost of materializing another framework's on-memory format.
func convertStage(name string, ds *engine.Dataset[sam.Record], codec engine.Serializer[sam.Record]) (*engine.Dataset[sam.Record], error) {
	gob := compress.GobCodec[sam.Record]{}
	return engine.MapPartitions(name, ds, codec, func(_ int, recs []sam.Record) ([]sam.Record, error) {
		blob, err := gob.Marshal(recs)
		if err != nil {
			return nil, err
		}
		return gob.Unmarshal(blob)
	}, readsWhole)
}

// stageCodec picks the serializer for a style.
func stageCodec(rt *core.Runtime, style StageStyle) engine.Serializer[sam.Record] {
	saved := rt.Codec
	rt.Codec = style.Codec
	c := rt.SAMCodec()
	rt.Codec = saved
	return c
}

// positionKey partitions mapped records by coarse genomic position.
func positionKey(r sam.Record) int {
	if r.RefID < 0 {
		return 0
	}
	return int(r.RefID)<<16 | int(r.Pos)>>16
}

// RunMarkDupStage executes the duplicate-marking stage under the style and
// returns the engine metrics of just this stage (the Fig 11(a) measurement).
func RunMarkDupStage(rt *core.Runtime, records []sam.Record, style StageStyle) (engine.Metrics, error) {
	rt.Engine.ResetMetrics()
	codec := stageCodec(rt, style)
	ds := engine.WithCodec(engine.Parallelize(rt.Engine, records, rt.NumPartitions), codec)
	var err error
	if style.Convert {
		if ds, err = convertStage(style.System.String()+"/convert-in", ds, codec); err != nil {
			return engine.Metrics{}, err
		}
	}
	grouped, err := engine.PartitionBy(style.System.String()+"/group", ds, rt.NumPartitions,
		func(r sam.Record) int { return cleaner.GroupKey(&r) }, readsWhole)
	if err != nil {
		return engine.Metrics{}, err
	}
	marked, err := engine.MapPartitions(style.System.String()+"/mark", grouped, codec,
		func(_ int, recs []sam.Record) ([]sam.Record, error) {
			out := append([]sam.Record(nil), recs...)
			cleaner.SortByCoordinate(out)
			cleaner.MarkDuplicates(out)
			return out, nil
		}, readsWhole)
	if err != nil {
		return engine.Metrics{}, err
	}
	if style.Convert {
		if marked, err = convertStage(style.System.String()+"/convert-out", marked, codec); err != nil {
			return engine.Metrics{}, err
		}
	}
	if _, err := engine.Count(style.System.String()+"/materialize", marked); err != nil {
		return engine.Metrics{}, err
	}
	return rt.Engine.Metrics(), nil
}

// RunRealignStage executes indel realignment under the style (Fig 11(c)).
func RunRealignStage(rt *core.Runtime, records []sam.Record, style StageStyle) (engine.Metrics, error) {
	rt.Engine.ResetMetrics()
	codec := stageCodec(rt, style)
	ds := engine.WithCodec(engine.Parallelize(rt.Engine, records, rt.NumPartitions), codec)
	var err error
	if style.Convert {
		if ds, err = convertStage(style.System.String()+"/convert-in", ds, codec); err != nil {
			return engine.Metrics{}, err
		}
	}
	grouped, err := engine.PartitionBy(style.System.String()+"/partition", ds, rt.NumPartitions, positionKey, readsWhole)
	if err != nil {
		return engine.Metrics{}, err
	}
	sc := rt.AlignerConfig.Scoring
	realigned, err := engine.MapPartitions(style.System.String()+"/realign", grouped, codec,
		func(_ int, recs []sam.Record) ([]sam.Record, error) {
			out := append([]sam.Record(nil), recs...)
			cleaner.RealignIndels(out, rt.Ref, sc)
			return out, nil
		}, readsWhole)
	if err != nil {
		return engine.Metrics{}, err
	}
	if style.Convert {
		if realigned, err = convertStage(style.System.String()+"/convert-out", realigned, codec); err != nil {
			return engine.Metrics{}, err
		}
	}
	if _, err := engine.Count(style.System.String()+"/materialize", realigned); err != nil {
		return engine.Metrics{}, err
	}
	return rt.Engine.Metrics(), nil
}

// RunBQSRStage executes base recalibration under the style (Fig 11(b)),
// including the serial collect+broadcast step.
func RunBQSRStage(rt *core.Runtime, records []sam.Record, style StageStyle) (engine.Metrics, error) {
	rt.Engine.ResetMetrics()
	codec := stageCodec(rt, style)
	ds := engine.WithCodec(engine.Parallelize(rt.Engine, records, rt.NumPartitions), codec)
	var err error
	if style.Convert {
		if ds, err = convertStage(style.System.String()+"/convert-in", ds, codec); err != nil {
			return engine.Metrics{}, err
		}
	}
	grouped, err := engine.PartitionBy(style.System.String()+"/partition", ds, rt.NumPartitions, positionKey, readsWhole)
	if err != nil {
		return engine.Metrics{}, err
	}
	tables, err := engine.MapPartitions(style.System.String()+"/count-covariates", grouped, nil,
		func(_ int, recs []sam.Record) ([]*cleaner.RecalTable, error) {
			return []*cleaner.RecalTable{cleaner.BuildRecalTable(recs, rt.Ref, nil)}, nil
		}, readsWhole)
	if err != nil {
		return engine.Metrics{}, err
	}
	merged, found, err := engine.Reduce(style.System.String()+"/collect", tables,
		func(a, b *cleaner.RecalTable) *cleaner.RecalTable { return a.Merge(b) })
	if err != nil {
		return engine.Metrics{}, err
	}
	if !found {
		merged = &cleaner.RecalTable{}
	}
	bc := engine.NewBroadcast(rt.Engine, style.System.String()+"/broadcast-mask", merged, merged.SizeBytes())
	recaled, err := engine.MapPartitions(style.System.String()+"/apply", grouped, codec,
		func(_ int, recs []sam.Record) ([]sam.Record, error) {
			out := append([]sam.Record(nil), recs...)
			if err := cleaner.ApplyRecalibration(out, bc.Value); err != nil {
				return nil, err
			}
			return out, nil
		}, readsWhole)
	if err != nil {
		return engine.Metrics{}, err
	}
	if style.Convert {
		if recaled, err = convertStage(style.System.String()+"/convert-out", recaled, codec); err != nil {
			return engine.Metrics{}, err
		}
	}
	if _, err := engine.Count(style.System.String()+"/materialize", recaled); err != nil {
		return engine.Metrics{}, err
	}
	return rt.Engine.Metrics(), nil
}
