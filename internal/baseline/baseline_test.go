package baseline

import (
	"testing"
	"time"

	"github.com/gpf-go/gpf/internal/align"
	"github.com/gpf-go/gpf/internal/cluster"
	"github.com/gpf-go/gpf/internal/core"
	"github.com/gpf-go/gpf/internal/engine"
	"github.com/gpf-go/gpf/internal/fastq"
	"github.com/gpf-go/gpf/internal/genome"
	"github.com/gpf-go/gpf/internal/sam"
)

func testSetup(t *testing.T, coverage float64) (*core.Runtime, []fastq.Pair) {
	t.Helper()
	ref := genome.Synthesize(genome.DefaultSynthConfig(1000, 30000, 1))
	rt := core.NewRuntime(engine.NewContext(2), ref)
	rt.PartitionLen = 5000
	donor := genome.Mutate(ref, genome.DefaultMutateConfig(1001))
	pairs := fastq.Simulate(donor, fastq.DefaultSimConfig(1002, coverage))
	return rt, pairs
}

func alignedRecords(t *testing.T, rt *core.Runtime, pairs []fastq.Pair) []sam.Record {
	t.Helper()
	idx, err := rt.Index()
	if err != nil {
		t.Fatal(err)
	}
	aligner := align.NewAligner(idx, rt.AlignerConfig)
	var out []sam.Record
	for i := range pairs {
		r1, r2 := aligner.AlignPair(&pairs[i])
		out = append(out, r1, r2)
	}
	return out
}

func TestSystemNames(t *testing.T) {
	names := map[System]string{GPF: "GPF", Churchill: "Churchill", ADAM: "ADAM", GATK4: "GATK4", Persona: "Persona"}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestRunWGSBothConfigs(t *testing.T) {
	rt, pairs := testSetup(t, 8)
	gpf, err := RunWGS(rt, pairs, GPFOptions())
	if err != nil {
		t.Fatal(err)
	}
	if gpf.NumCalls == 0 {
		t.Fatal("GPF run called nothing")
	}
	rt2 := core.NewRuntime(engine.NewContext(2), rt.Ref)
	rt2.PartitionLen = 5000
	chl, err := RunWGS(rt2, pairs, ChurchillOptions())
	if err != nil {
		t.Fatal(err)
	}
	if chl.NumCalls == 0 {
		t.Fatal("Churchill run called nothing")
	}
	// Unfused pipeline must execute more stages.
	if gpf.Metrics.NumStages() >= chl.Metrics.NumStages() {
		t.Fatalf("GPF stages %d should be < Churchill stages %d",
			gpf.Metrics.NumStages(), chl.Metrics.NumStages())
	}
}

func TestAddFileHandoff(t *testing.T) {
	tr := cluster.Trace{Stages: []cluster.StageWork{{
		Name:  "s",
		Tasks: []cluster.TaskWork{{CPU: time.Second, ReadBytes: 10, WriteBytes: 20}},
	}}}
	out := AddFileHandoff(tr, 1000)
	task := out.Stages[0].Tasks[0]
	if task.ReadBytes != 1010 || task.WriteBytes != 1020 {
		t.Fatalf("handoff bytes: %+v", task)
	}
	// Original unchanged.
	if tr.Stages[0].Tasks[0].ReadBytes != 10 {
		t.Fatal("input trace mutated")
	}
}

func TestSerialScatterGather(t *testing.T) {
	tr := cluster.Trace{Stages: []cluster.StageWork{{Name: "a"}, {Name: "b"}}}
	out := SerialScatterGather(tr, 3*time.Second)
	if out.Stages[0].Driver != 3*time.Second || out.Stages[1].Driver != 3*time.Second {
		t.Fatalf("driver time not added: %+v", out.Stages)
	}
}

func TestStageStylesOrdering(t *testing.T) {
	// The Fig 11 shape: GPF's stage must move fewer shuffle bytes and spend
	// less serialize+task time than ADAM's and GATK4's for the same input.
	rt, pairs := testSetup(t, 6)
	if len(pairs) > 400 {
		pairs = pairs[:400]
	}
	records := alignedRecords(t, rt, pairs)

	gpfM, err := RunMarkDupStage(rt, records, StyleGPF())
	if err != nil {
		t.Fatal(err)
	}
	adamM, err := RunMarkDupStage(rt, records, StyleADAM())
	if err != nil {
		t.Fatal(err)
	}
	gatkM, err := RunMarkDupStage(rt, records, StyleGATK4())
	if err != nil {
		t.Fatal(err)
	}
	if gpfM.TotalShuffleBytes() >= adamM.TotalShuffleBytes() {
		t.Fatalf("GPF shuffle %d should be < ADAM %d",
			gpfM.TotalShuffleBytes(), adamM.TotalShuffleBytes())
	}
	if gpfM.TotalShuffleBytes() >= gatkM.TotalShuffleBytes() {
		t.Fatalf("GPF shuffle %d should be < GATK4 %d",
			gpfM.TotalShuffleBytes(), gatkM.TotalShuffleBytes())
	}
	// ADAM pays conversion stages GATK4 does not.
	if adamM.NumStages() <= gatkM.NumStages() {
		t.Fatalf("ADAM stages %d should exceed GATK4 %d", adamM.NumStages(), gatkM.NumStages())
	}
}

func TestBQSRStageHasSerialCollect(t *testing.T) {
	rt, pairs := testSetup(t, 6)
	if len(pairs) > 300 {
		pairs = pairs[:300]
	}
	records := alignedRecords(t, rt, pairs)
	m, err := RunBQSRStage(rt, records, StyleGPF())
	if err != nil {
		t.Fatal(err)
	}
	// A reduce (collect) and a broadcast must appear as action stages.
	actions := 0
	for _, s := range m.Stages {
		if s.Kind == engine.StageAction {
			actions++
		}
	}
	if actions < 2 {
		t.Fatalf("BQSR should have collect+broadcast actions, found %d", actions)
	}
}

func TestRealignStageRuns(t *testing.T) {
	rt, pairs := testSetup(t, 6)
	if len(pairs) > 300 {
		pairs = pairs[:300]
	}
	records := alignedRecords(t, rt, pairs)
	m, err := RunRealignStage(rt, records, StyleGATK4())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStages() == 0 || m.TotalTaskTime() <= 0 {
		t.Fatal("realign stage produced no metrics")
	}
}

func TestPersonaModel(t *testing.T) {
	m := DefaultPersonaModel()
	// 360 MB at 360 MB/s = 1s in; 82 MB at 82 MB/s = 1s out.
	got := m.ConversionTime(360e6, 82e6)
	if got < 1900*time.Millisecond || got > 2100*time.Millisecond {
		t.Fatalf("conversion time = %v, want ~2s", got)
	}
}

func TestRunPersonaAlign(t *testing.T) {
	rt, pairs := testSetup(t, 4)
	if len(pairs) > 100 {
		pairs = pairs[:100]
	}
	m, fastqBytes, err := RunPersonaAlign(rt, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if fastqBytes == 0 {
		t.Fatal("fastq bytes not accounted")
	}
	if m.TotalTaskTime() <= 0 {
		t.Fatal("no alignment work recorded")
	}
}

func TestAlignmentThroughput(t *testing.T) {
	if got := AlignmentThroughput(2e9, 2*time.Second); got != 1 {
		t.Fatalf("throughput = %v, want 1 Gb/s", got)
	}
	if AlignmentThroughput(1, 0) != 0 {
		t.Fatal("zero wall should yield 0")
	}
}
