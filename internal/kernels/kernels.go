// Package kernels holds the process-wide switch for the profile-driven hot
// kernels (PR 7): the scaled pair-HMM forward pass, the banded affine-gap
// aligner, the table-driven reverse complement and the word-parallel 2-bit
// pack/unpack. Each optimized kernel keeps its reference implementation in
// its home package; the packages dispatch on Enabled() so the ablation can
// flip every kernel at once, mirroring the per-Context engine ablations
// (DisableFusion, DisablePipelinedShuffle, ...).
//
// The flag is process-global rather than per-Context because the kernels
// live far below the engine (per-base loops inside caller, align, compress
// and genome) where threading a context through every call would put a
// dependency edge from leaf packages to the engine. core.Pipeline.Run syncs
// it from engine.Context.DisableFastKernels before executing, so pipeline
// runs behave as if the flag were per-context; running two pipelines with
// opposite settings concurrently in one process is unsupported (the loads
// and stores are atomic, so the only hazard is which kernel a given call
// picks — never a data race or a wrong result, since both paths agree to
// the equivalence bounds asserted by the kernel property tests).
package kernels

import "sync/atomic"

// disabled is the ablation state: zero value means fast kernels ON, so the
// optimized paths are the default exactly like the engine's other
// optimizations.
var disabled atomic.Bool

// Enabled reports whether the optimized kernels are active.
func Enabled() bool { return !disabled.Load() }

// SetEnabled turns the optimized kernels on or off and returns the previous
// state, so tests can restore it with defer kernels.SetEnabled(prev).
func SetEnabled(on bool) (prev bool) {
	return !disabled.Swap(!on)
}
