// Package stats provides the measurement machinery of §5.3: blocked-time
// analysis (after Ousterhout et al., NSDI'15 — the method the paper uses to
// bound the benefit of removing disk/network time), resource-utilization
// timelines (Fig 13), histograms (Fig 5) and parallel-efficiency helpers.
package stats

import (
	"time"

	"github.com/gpf-go/gpf/internal/cluster"
)

// BlockedTimeResult is the outcome of a blocked-time analysis at one scale.
type BlockedTimeResult struct {
	Base      time.Duration
	NoDisk    time.Duration
	NoNetwork time.Duration
	// DiskImprovement is the fractional JCT reduction from eliminating all
	// time blocked on disk ((base-noDisk)/base); NetImprovement likewise.
	DiskImprovement float64
	NetImprovement  float64
	// ShuffleFraction is the fraction of task time spent moving shuffle
	// data; GCFraction the fraction spent in GC pauses (reported alongside
	// in Fig 12's source analysis).
	ShuffleFraction float64
	GCFraction      float64
}

// BlockedTime runs the trace three times through the simulator — as-is,
// without disk time, without network time — and reports the improvement
// bounds of §5.3.1. opts carries the execution model (e.g. the page-cache
// block fractions of cluster.SparkOptions); its NoDisk/NoNet fields are
// overridden per run.
func BlockedTime(tr cluster.Trace, cfg cluster.Config, cores int, opts cluster.Options) BlockedTimeResult {
	baseOpts, noDiskOpts, noNetOpts := opts, opts, opts
	baseOpts.NoDisk, baseOpts.NoNet = false, false
	noDiskOpts.NoDisk, noDiskOpts.NoNet = true, false
	noNetOpts.NoDisk, noNetOpts.NoNet = false, true
	base := cluster.Simulate(tr, cfg, cores, baseOpts)
	noDisk := cluster.Simulate(tr, cfg, cores, noDiskOpts)
	noNet := cluster.Simulate(tr, cfg, cores, noNetOpts)
	res := BlockedTimeResult{
		Base:      base.Makespan,
		NoDisk:    noDisk.Makespan,
		NoNetwork: noNet.Makespan,
	}
	if base.Makespan > 0 {
		res.DiskImprovement = float64(base.Makespan-noDisk.Makespan) / float64(base.Makespan)
		res.NetImprovement = float64(base.Makespan-noNet.Makespan) / float64(base.Makespan)
	}
	busy := base.CPUTime + base.DiskTime + base.NetTime
	if busy > 0 {
		res.ShuffleFraction = float64(base.DiskTime+base.NetTime) / float64(busy)
	}
	return res
}

// UtilPoint is one sample of the Fig 13 resource-utilization timeline.
type UtilPoint struct {
	T        time.Duration
	Stage    string
	CPUUtil  float64 // busy cores / total cores in [0,1]
	DiskMBps float64 // aggregate disk throughput
	NetMBps  float64 // aggregate network throughput
}

// Timeline samples a simulated run into n utilization points. Within each
// stage, utilization is the stage's busy time spread over its makespan —
// the same aggregate view as the paper's cluster monitoring plots.
func Timeline(res cluster.Result, cores int, n int) []UtilPoint {
	if n <= 0 || res.Makespan <= 0 {
		return nil
	}
	points := make([]UtilPoint, 0, n)
	step := res.Makespan / time.Duration(n)
	if step <= 0 {
		step = 1
	}
	for i := 0; i < n; i++ {
		t := step * time.Duration(i)
		// Find the stage active at t.
		var active *cluster.StageSim
		for s := range res.Stages {
			st := &res.Stages[s]
			if t >= st.Start && t < st.Start+st.Makespan {
				active = st
				break
			}
		}
		p := UtilPoint{T: t}
		if active != nil && active.Makespan > 0 {
			p.Stage = active.Name
			span := active.Makespan.Seconds()
			p.CPUUtil = active.CPUTime.Seconds() / (span * float64(cores))
			if p.CPUUtil > 1 {
				p.CPUUtil = 1
			}
			ioBytes := float64(active.Bytes)
			p.DiskMBps = ioBytes / span / 1e6
			p.NetMBps = ioBytes / 2 / span / 1e6
		}
		points = append(points, p)
	}
	return points
}

// Histogram counts integer-valued observations into unit bins over
// [min, max]; out-of-range values clamp to the edge bins.
type Histogram struct {
	Min, Max int
	Counts   []int64
	Total    int64
}

// NewHistogram allocates a histogram over [min, max].
func NewHistogram(min, max int) *Histogram {
	if max < min {
		min, max = max, min
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int64, max-min+1)}
}

// Add records one observation.
func (h *Histogram) Add(v int) {
	if v < h.Min {
		v = h.Min
	}
	if v > h.Max {
		v = h.Max
	}
	h.Counts[v-h.Min]++
	h.Total++
}

// Percent returns the share of observations in bin v (0 when empty).
func (h *Histogram) Percent(v int) float64 {
	if h.Total == 0 || v < h.Min || v > h.Max {
		return 0
	}
	return float64(h.Counts[v-h.Min]) / float64(h.Total) * 100
}

// Mode returns the bin with the highest count.
func (h *Histogram) Mode() int {
	best, bestCount := h.Min, int64(-1)
	for i, c := range h.Counts {
		if c > bestCount {
			best, bestCount = h.Min+i, c
		}
	}
	return best
}

// MassWithin returns the fraction of observations with |v| <= radius of
// center.
func (h *Histogram) MassWithin(center, radius int) float64 {
	if h.Total == 0 {
		return 0
	}
	var n int64
	for i, c := range h.Counts {
		v := h.Min + i
		if v >= center-radius && v <= center+radius {
			n += c
		}
	}
	return float64(n) / float64(h.Total)
}
