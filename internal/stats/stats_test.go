package stats

import (
	"testing"
	"time"

	"github.com/gpf-go/gpf/internal/cluster"
	"github.com/gpf-go/gpf/internal/engine"
)

func ioTrace() cluster.Trace {
	var sw cluster.StageWork
	sw.Name = "io-stage"
	for i := 0; i < 128; i++ {
		sw.Tasks = append(sw.Tasks, cluster.TaskWork{
			CPU: 100 * time.Millisecond, ReadBytes: 50 << 20, WriteBytes: 50 << 20,
		})
	}
	return cluster.Trace{Stages: []cluster.StageWork{sw}}
}

func TestBlockedTime(t *testing.T) {
	res := BlockedTime(ioTrace(), cluster.PaperCluster(), 128, cluster.Options{})
	if res.Base <= 0 {
		t.Fatal("no base makespan")
	}
	if res.NoDisk >= res.Base || res.NoNetwork >= res.Base {
		t.Fatal("removing I/O should shorten the run")
	}
	if res.DiskImprovement <= 0 || res.DiskImprovement >= 1 {
		t.Fatalf("disk improvement %v out of (0,1)", res.DiskImprovement)
	}
	if res.NetImprovement <= 0 || res.NetImprovement >= 1 {
		t.Fatalf("net improvement %v out of (0,1)", res.NetImprovement)
	}
	if res.ShuffleFraction <= 0 || res.ShuffleFraction >= 1 {
		t.Fatalf("shuffle fraction %v out of (0,1)", res.ShuffleFraction)
	}
}

func TestBlockedTimeCPUBound(t *testing.T) {
	// Pure-CPU trace: eliminating I/O changes nothing — the §5.3.2
	// conclusion that GPF jobs are CPU bound.
	var sw cluster.StageWork
	for i := 0; i < 64; i++ {
		sw.Tasks = append(sw.Tasks, cluster.TaskWork{CPU: time.Second})
	}
	tr := cluster.Trace{Stages: []cluster.StageWork{sw}}
	res := BlockedTime(tr, cluster.PaperCluster(), 64, cluster.Options{})
	if res.DiskImprovement != 0 || res.NetImprovement != 0 {
		t.Fatalf("CPU-bound trace should show zero I/O improvement: %+v", res)
	}
}

func TestTimeline(t *testing.T) {
	sim := cluster.Simulate(ioTrace(), cluster.PaperCluster(), 128, cluster.Options{})
	points := Timeline(sim, 128, 20)
	if len(points) != 20 {
		t.Fatalf("points = %d", len(points))
	}
	sawBusy := false
	for i, p := range points {
		if p.CPUUtil < 0 || p.CPUUtil > 1 {
			t.Fatalf("point %d CPU util %v out of range", i, p.CPUUtil)
		}
		if p.CPUUtil > 0 {
			sawBusy = true
		}
		if i > 0 && p.T <= points[i-1].T {
			t.Fatal("timeline not monotone")
		}
	}
	if !sawBusy {
		t.Fatal("no busy samples")
	}
	if Timeline(cluster.Result{}, 10, 5) != nil {
		t.Fatal("empty result should yield nil timeline")
	}
}

func TestTimelineStageAttribution(t *testing.T) {
	tr := cluster.Trace{Stages: []cluster.StageWork{
		{Name: "first", Kind: engine.StageNarrow, Tasks: []cluster.TaskWork{{CPU: time.Second}}},
		{Name: "second", Kind: engine.StageNarrow, Tasks: []cluster.TaskWork{{CPU: time.Second}}},
	}}
	sim := cluster.Simulate(tr, cluster.PaperCluster(), 1, cluster.Options{})
	points := Timeline(sim, 1, 10)
	if points[0].Stage != "first" {
		t.Fatalf("first sample stage = %q", points[0].Stage)
	}
	if points[9].Stage != "second" {
		t.Fatalf("last sample stage = %q", points[9].Stage)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10)
	for _, v := range []int{5, 5, 5, 3, -2, 99} {
		h.Add(v)
	}
	if h.Total != 6 {
		t.Fatalf("total = %d", h.Total)
	}
	if h.Mode() != 5 {
		t.Fatalf("mode = %d", h.Mode())
	}
	if got := h.Percent(5); got != 50 {
		t.Fatalf("percent(5) = %v", got)
	}
	// Clamping.
	if h.Counts[0] != 1 || h.Counts[10] != 1 {
		t.Fatal("out-of-range values must clamp to edges")
	}
	if got := h.MassWithin(5, 2); got != 4.0/6 {
		t.Fatalf("mass within = %v", got)
	}
	// Reversed bounds normalize.
	h2 := NewHistogram(10, 0)
	if h2.Min != 0 || h2.Max != 10 {
		t.Fatal("reversed bounds not normalized")
	}
	if h2.Percent(3) != 0 {
		t.Fatal("empty histogram percent should be 0")
	}
}
