package leakcheck

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// recorder satisfies TB and captures the failure instead of aborting.
type recorder struct {
	failed bool
	msg    string
}

func (r *recorder) Helper() {}
func (r *recorder) Fatalf(format string, args ...any) {
	r.failed = true
	r.msg = fmt.Sprintf(format, args...)
}

func TestCleanPasses(t *testing.T) {
	base := Snapshot()
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	base.Check(t, Timeout(2*time.Second))
}

func TestDetectsLeakWithStack(t *testing.T) {
	base := Snapshot()
	stop := make(chan struct{})
	go parked(stop)

	var rec recorder
	base.Check(&rec, Timeout(100*time.Millisecond))
	if !rec.failed {
		t.Fatal("leaked goroutine not detected")
	}
	if !strings.Contains(rec.msg, "parked") {
		t.Fatalf("failure does not carry the leaked stack:\n%s", rec.msg)
	}

	close(stop)
	base.Check(t, Timeout(2*time.Second)) // drains once released
}

func TestIgnoreContaining(t *testing.T) {
	base := Snapshot()
	stop := make(chan struct{})
	defer close(stop)
	go parked(stop)

	var rec recorder
	base.Check(&rec, Timeout(100*time.Millisecond), IgnoreContaining("leakcheck.parked"))
	if rec.failed {
		t.Fatalf("ignored goroutine still reported:\n%s", rec.msg)
	}
}

func parked(stop chan struct{}) {
	<-stop
}
