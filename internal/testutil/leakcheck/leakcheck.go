// Package leakcheck verifies that a test leaves no goroutines behind. It
// snapshots the running goroutines before the work under test, then polls
// until every goroutine created since has exited — failing with the leaked
// goroutines' stacks, not just a count.
//
// Identity-based diffing beats the NumGoroutine comparison it replaces: a
// test that leaks one goroutine while an unrelated one exits keeps the count
// level and slips through, and on failure a bare count says nothing about
// what leaked. The gpflint/goleak analyzer proves lifecycle ties statically;
// this is its runtime companion for the paths the analyzer cannot see.
//
//	base := leakcheck.Snapshot()
//	runWorkUnderTest()
//	base.Check(t)
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB leakcheck needs; tests of leakcheck itself
// substitute a recorder.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
}

// Baseline is the set of goroutines alive at Snapshot time.
type Baseline struct {
	ids map[int64]bool
}

// Snapshot records the identity of every currently running goroutine.
func Snapshot() Baseline {
	ids := make(map[int64]bool)
	for id := range stacks() {
		ids[id] = true
	}
	return Baseline{ids: ids}
}

type config struct {
	timeout time.Duration
	ignores []string
}

// Option adjusts a Check call.
type Option func(*config)

// Timeout sets how long Check waits for goroutines to drain before failing
// (default 5s — teardown paths legitimately take grace periods).
func Timeout(d time.Duration) Option {
	return func(c *config) { c.timeout = d }
}

// IgnoreContaining excludes goroutines whose stack contains substr —
// long-lived infrastructure the test knowingly starts (pollers, pools) that
// is not owned by the code under test.
func IgnoreContaining(substr string) Option {
	return func(c *config) { c.ignores = append(c.ignores, substr) }
}

// Check polls until every goroutine started after the Snapshot has exited,
// then returns. On timeout it fails the test with the full stack of each
// leaked goroutine.
func (b Baseline) Check(t TB, opts ...Option) {
	t.Helper()
	cfg := config{timeout: 5 * time.Second}
	for _, opt := range opts {
		opt(&cfg)
	}
	deadline := time.Now().Add(cfg.timeout)
	var leaked []string
	for {
		leaked = leaked[:0]
		for id, stack := range stacks() {
			if b.ids[id] || ignored(stack, cfg.ignores) {
				continue
			}
			leaked = append(leaked, stack)
		}
		if len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("leakcheck: %d goroutine(s) leaked after %v:\n\n%s",
		len(leaked), cfg.timeout, strings.Join(leaked, "\n\n"))
}

func ignored(stack string, ignores []string) bool {
	for _, s := range ignores {
		if strings.Contains(stack, s) {
			return true
		}
	}
	return false
}

// stacks captures all goroutine stacks, keyed by goroutine ID.
func stacks() map[int64]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	out := make(map[int64]string)
	for _, blk := range strings.Split(strings.TrimSpace(string(buf)), "\n\n") {
		var id int64
		if _, err := fmt.Sscanf(blk, "goroutine %d ", &id); err == nil {
			out[id] = blk
		}
	}
	return out
}
