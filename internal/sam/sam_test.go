package sam

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"
)

func TestFlagHelpers(t *testing.T) {
	r := Record{Flag: FlagPaired | FlagReverse | FlagFirstOfPair}
	if !r.Paired() || !r.Reverse() || !r.FirstOfPair() {
		t.Fatal("flag getters broken")
	}
	if r.Unmapped() || r.Duplicate() || r.Secondary() {
		t.Fatal("unset flags reported set")
	}
	r.SetDuplicate(true)
	if !r.Duplicate() {
		t.Fatal("SetDuplicate(true) failed")
	}
	r.SetDuplicate(false)
	if r.Duplicate() {
		t.Fatal("SetDuplicate(false) failed")
	}
}

func TestParseCigar(t *testing.T) {
	c, err := ParseCigar("5M2I3D10M")
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 4 || c[1].Op != 'I' || c[1].Len != 2 {
		t.Fatalf("parsed %v", c)
	}
	if c.String() != "5M2I3D10M" {
		t.Fatalf("String = %q", c.String())
	}
	if c.RefLen() != 18 {
		t.Fatalf("RefLen = %d, want 18", c.RefLen())
	}
	if c.QueryLen() != 17 {
		t.Fatalf("QueryLen = %d, want 17", c.QueryLen())
	}
	if !c.HasIndel() {
		t.Fatal("HasIndel should be true")
	}
	if star, err := ParseCigar("*"); err != nil || star != nil {
		t.Fatalf("* should parse to nil, got %v %v", star, err)
	}
	for _, bad := range []string{"5", "M", "0M", "5Z", "3M4"} {
		if _, err := ParseCigar(bad); err == nil {
			t.Fatalf("ParseCigar(%q) should fail", bad)
		}
	}
}

func TestCigarNormalize(t *testing.T) {
	c := Cigar{{3, 'M'}, {0, 'I'}, {2, 'M'}, {1, 'D'}}
	n := c.Normalize()
	if n.String() != "5M1D" {
		t.Fatalf("Normalize = %q", n.String())
	}
}

func TestCigarStringEmpty(t *testing.T) {
	if Cigar(nil).String() != "*" {
		t.Fatal("empty CIGAR should render as *")
	}
	if (Cigar{}).HasIndel() {
		t.Fatal("empty CIGAR has no indel")
	}
}

func TestUnclippedCoordinates(t *testing.T) {
	c, _ := ParseCigar("5S10M3S")
	r := Record{Pos: 100, Cigar: c}
	if got := r.UnclippedStart(); got != 95 {
		t.Fatalf("UnclippedStart = %d, want 95", got)
	}
	if got := r.End(); got != 110 {
		t.Fatalf("End = %d, want 110", got)
	}
	if got := r.UnclippedEnd(); got != 113 {
		t.Fatalf("UnclippedEnd = %d, want 113", got)
	}
}

func TestBaseQualitySum(t *testing.T) {
	// Phred 30 ('?') counts; phred 10 ('+') does not (threshold 15).
	r := Record{Qual: []byte{33 + 30, 33 + 10, 33 + 20}}
	if got := r.BaseQualitySum(); got != 50 {
		t.Fatalf("BaseQualitySum = %d, want 50", got)
	}
}

func TestCoordinateLess(t *testing.T) {
	a := &Record{RefID: 0, Pos: 100, Name: "a"}
	b := &Record{RefID: 0, Pos: 200, Name: "b"}
	c := &Record{RefID: 1, Pos: 0, Name: "c"}
	un := &Record{RefID: -1, Pos: 0, Name: "u", Flag: FlagUnmapped}
	if !CoordinateLess(a, b) || !CoordinateLess(b, c) || !CoordinateLess(c, un) {
		t.Fatal("coordinate ordering broken")
	}
	if CoordinateLess(un, a) {
		t.Fatal("unmapped should sort last")
	}
	fwd := &Record{RefID: 0, Pos: 100, Name: "f"}
	rev := &Record{RefID: 0, Pos: 100, Name: "r", Flag: FlagReverse}
	if !CoordinateLess(fwd, rev) {
		t.Fatal("forward strand should sort before reverse at equal pos")
	}
}

func TestHeaderNewAndClone(t *testing.T) {
	h, err := NewHeader(Unsorted, []string{"chr1"}, []int{1000})
	if err != nil {
		t.Fatal(err)
	}
	c := h.Clone(Coordinate)
	if c.Sort != Coordinate || h.Sort != Unsorted {
		t.Fatal("Clone must not mutate original sort order")
	}
	c.RefNames[0] = "x"
	if h.RefNames[0] != "chr1" {
		t.Fatal("Clone must deep-copy slices")
	}
	if _, err := NewHeader(Unsorted, []string{"a"}, []int{1, 2}); err == nil {
		t.Fatal("mismatched name/length must error")
	}
}

func sampleRecords() (*Header, []Record) {
	h := &Header{Sort: Coordinate, RefNames: []string{"chr1", "chr2"}, RefLengths: []int{10000, 5000}, ReadGroups: []string{"rg1"}}
	c1, _ := ParseCigar("50M")
	c2, _ := ParseCigar("20M2D30M")
	return h, []Record{
		{Name: "r1", Flag: FlagPaired | FlagFirstOfPair, RefID: 0, Pos: 99, MapQ: 60, Cigar: c1,
			MateRef: 0, MatePos: 299, TempLen: 250, Seq: bytes.Repeat([]byte("A"), 50), Qual: bytes.Repeat([]byte("I"), 50),
			Tags: map[string]string{"RG": "rg1"}},
		{Name: "r2", Flag: FlagPaired | FlagSecondOfPair | FlagReverse, RefID: 1, Pos: 0, MapQ: 30, Cigar: c2,
			MateRef: 0, MatePos: 99, TempLen: -250, Seq: bytes.Repeat([]byte("C"), 50), Qual: bytes.Repeat([]byte("H"), 50)},
		{Name: "r3", Flag: FlagUnmapped, RefID: -1, Pos: -1, MateRef: -1, MatePos: -1},
	}
}

func TestTextRoundTrip(t *testing.T) {
	h, recs := sampleRecords()
	var buf bytes.Buffer
	if err := WriteText(&buf, h, recs); err != nil {
		t.Fatal(err)
	}
	h2, recs2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Sort != Coordinate || len(h2.RefNames) != 2 || h2.RefLengths[1] != 5000 {
		t.Fatalf("header mismatch: %+v", h2)
	}
	if len(h2.ReadGroups) != 1 || h2.ReadGroups[0] != "rg1" {
		t.Fatalf("read groups: %v", h2.ReadGroups)
	}
	if len(recs2) != len(recs) {
		t.Fatalf("records = %d, want %d", len(recs2), len(recs))
	}
	for i := range recs {
		a, b := recs[i], recs2[i]
		if a.Name != b.Name || a.Flag != b.Flag || a.RefID != b.RefID || a.Pos != b.Pos ||
			a.MapQ != b.MapQ || a.Cigar.String() != b.Cigar.String() ||
			a.MateRef != b.MateRef || a.MatePos != b.MatePos || a.TempLen != b.TempLen ||
			!bytes.Equal(a.Seq, b.Seq) || !bytes.Equal(a.Qual, b.Qual) {
			t.Fatalf("record %d mismatch:\n%+v\n%+v", i, a, b)
		}
	}
	if recs2[0].Tags["RG"] != "rg1" {
		t.Fatalf("tags lost: %v", recs2[0].Tags)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"short line": "r1\t0\tchr1\t1\n",
		"bad flag":   "r1\tx\tchr1\t1\t60\t5M\t*\t0\t0\tACGTA\tIIIII\n",
		"bad pos":    "r1\t0\tchr1\tx\t60\t5M\t*\t0\t0\tACGTA\tIIIII\n",
		"bad cigar":  "r1\t0\tchr1\t1\t60\t5Q\t*\t0\t0\tACGTA\tIIIII\n",
		"bad mapq":   "r1\t0\tchr1\t1\t999\t5M\t*\t0\t0\tACGTA\tIIIII\n",
	}
	for name, in := range cases {
		if _, _, err := ReadText(bytes.NewBufferString(in)); err == nil {
			t.Fatalf("%s: expected parse error", name)
		}
	}
}

func TestSortStability(t *testing.T) {
	_, recs := sampleRecords()
	// Shuffle deterministically then sort.
	recs[0], recs[2] = recs[2], recs[0]
	sort.Slice(recs, func(i, j int) bool { return CoordinateLess(&recs[i], &recs[j]) })
	if recs[0].Name != "r1" || recs[2].Name != "r3" {
		t.Fatalf("sorted order: %s %s %s", recs[0].Name, recs[1].Name, recs[2].Name)
	}
}

// Property: for any generated CIGAR, text round-trip is the identity on the
// normalized form.
func TestCigarRoundTripProperty(t *testing.T) {
	ops := []byte("MIDNSHP=X")
	f := func(lens []uint8, opIdx []uint8) bool {
		n := len(lens)
		if len(opIdx) < n {
			n = len(opIdx)
		}
		var c Cigar
		for i := 0; i < n; i++ {
			c = append(c, CigarOp{Len: int(lens[i]%50) + 1, Op: ops[int(opIdx[i])%len(ops)]})
		}
		c = c.Normalize()
		back, err := ParseCigar(c.String())
		if err != nil {
			return false
		}
		return back.String() == c.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: RefLen + insertions/clips relation — QueryLen counts M,I,S,=,X
// and RefLen counts M,D,N,=,X; they must agree on the M,=,X overlap.
func TestCigarLenConsistencyProperty(t *testing.T) {
	f := func(lens []uint8) bool {
		var c Cigar
		ops := []byte{'M', 'I', 'D', 'S'}
		for i, l := range lens {
			c = append(c, CigarOp{Len: int(l%20) + 1, Op: ops[i%len(ops)]})
		}
		m, ins, del, s := 0, 0, 0, 0
		for _, op := range c {
			switch op.Op {
			case 'M':
				m += op.Len
			case 'I':
				ins += op.Len
			case 'D':
				del += op.Len
			case 'S':
				s += op.Len
			}
		}
		return c.QueryLen() == m+ins+s && c.RefLen() == m+del
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
