package sam

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteText serializes header and records in SAM text format.
func WriteText(w io.Writer, h *Header, records []Record) error {
	bw := bufio.NewWriter(w)
	if h != nil {
		fmt.Fprintf(bw, "@HD\tVN:1.6\tSO:%s\n", h.Sort)
		for i, name := range h.RefNames {
			fmt.Fprintf(bw, "@SQ\tSN:%s\tLN:%d\n", name, h.RefLengths[i])
		}
		for _, rg := range h.ReadGroups {
			fmt.Fprintf(bw, "@RG\tID:%s\n", rg)
		}
	}
	for i := range records {
		if err := writeRecord(bw, h, &records[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func refName(h *Header, id int32) string {
	if h == nil || id < 0 || int(id) >= len(h.RefNames) {
		return "*"
	}
	return h.RefNames[id]
}

func writeRecord(bw *bufio.Writer, h *Header, r *Record) error {
	seq := "*"
	if len(r.Seq) > 0 {
		seq = string(r.Seq)
	}
	qual := "*"
	if len(r.Qual) > 0 {
		qual = string(r.Qual)
	}
	_, err := fmt.Fprintf(bw, "%s\t%d\t%s\t%d\t%d\t%s\t%s\t%d\t%d\t%s\t%s",
		r.Name, r.Flag, refName(h, r.RefID), r.Pos+1, r.MapQ, r.Cigar.String(),
		mateRefName(h, r), r.MatePos+1, r.TempLen, seq, qual)
	if err != nil {
		return err
	}
	if len(r.Tags) > 0 {
		keys := make([]string, 0, len(r.Tags))
		for k := range r.Tags {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if _, err := fmt.Fprintf(bw, "\t%s:Z:%s", k, r.Tags[k]); err != nil {
				return err
			}
		}
	}
	return bw.WriteByte('\n')
}

func mateRefName(h *Header, r *Record) string {
	if r.MateRef < 0 {
		return "*"
	}
	if r.MateRef == r.RefID {
		return "="
	}
	return refName(h, r.MateRef)
}

// ReadText parses SAM text into a header and records.
func ReadText(rd io.Reader) (*Header, []Record, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<24)
	h := &Header{Sort: Unsorted}
	refIndex := map[string]int32{}
	var records []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if line[0] == '@' {
			if err := parseHeaderLine(h, refIndex, line); err != nil {
				return nil, nil, fmt.Errorf("sam: line %d: %w", lineNo, err)
			}
			continue
		}
		rec, err := parseRecordLine(refIndex, line)
		if err != nil {
			return nil, nil, fmt.Errorf("sam: line %d: %w", lineNo, err)
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("sam: scanning: %w", err)
	}
	return h, records, nil
}

func parseHeaderLine(h *Header, refIndex map[string]int32, line string) error {
	fields := strings.Split(line, "\t")
	switch fields[0] {
	case "@HD":
		for _, f := range fields[1:] {
			if strings.HasPrefix(f, "SO:") {
				h.Sort = SortOrder(f[3:])
			}
		}
	case "@SQ":
		var name string
		var length int
		for _, f := range fields[1:] {
			switch {
			case strings.HasPrefix(f, "SN:"):
				name = f[3:]
			case strings.HasPrefix(f, "LN:"):
				n, err := strconv.Atoi(f[3:])
				if err != nil {
					return fmt.Errorf("bad LN in %q", line)
				}
				length = n
			}
		}
		if name == "" {
			return fmt.Errorf("@SQ without SN in %q", line)
		}
		refIndex[name] = int32(len(h.RefNames))
		h.RefNames = append(h.RefNames, name)
		h.RefLengths = append(h.RefLengths, length)
	case "@RG":
		for _, f := range fields[1:] {
			if strings.HasPrefix(f, "ID:") {
				h.ReadGroups = append(h.ReadGroups, f[3:])
			}
		}
	}
	return nil
}

func parseRecordLine(refIndex map[string]int32, line string) (Record, error) {
	fields := strings.Split(line, "\t")
	if len(fields) < 11 {
		return Record{}, fmt.Errorf("only %d fields", len(fields))
	}
	flag, err := strconv.ParseUint(fields[1], 10, 16)
	if err != nil {
		return Record{}, fmt.Errorf("bad flag %q", fields[1])
	}
	pos, err := strconv.Atoi(fields[3])
	if err != nil {
		return Record{}, fmt.Errorf("bad pos %q", fields[3])
	}
	mapq, err := strconv.Atoi(fields[4])
	if err != nil || mapq < 0 || mapq > 255 {
		return Record{}, fmt.Errorf("bad mapq %q", fields[4])
	}
	cigar, err := ParseCigar(fields[5])
	if err != nil {
		return Record{}, err
	}
	matePos, err := strconv.Atoi(fields[7])
	if err != nil {
		return Record{}, fmt.Errorf("bad mate pos %q", fields[7])
	}
	tlen, err := strconv.Atoi(fields[8])
	if err != nil {
		return Record{}, fmt.Errorf("bad tlen %q", fields[8])
	}
	rec := Record{
		Name:    fields[0],
		Flag:    uint16(flag),
		RefID:   lookupRef(refIndex, fields[2]),
		Pos:     int32(pos - 1),
		MapQ:    uint8(mapq),
		Cigar:   cigar,
		MatePos: int32(matePos - 1),
		TempLen: int32(tlen),
	}
	switch fields[6] {
	case "*":
		rec.MateRef = -1
	case "=":
		rec.MateRef = rec.RefID
	default:
		rec.MateRef = lookupRef(refIndex, fields[6])
	}
	if fields[9] != "*" {
		rec.Seq = []byte(fields[9])
	}
	if fields[10] != "*" {
		rec.Qual = []byte(fields[10])
	}
	for _, f := range fields[11:] {
		parts := strings.SplitN(f, ":", 3)
		if len(parts) == 3 {
			if rec.Tags == nil {
				rec.Tags = map[string]string{}
			}
			rec.Tags[parts[0]] = parts[2]
		}
	}
	return rec, nil
}

func lookupRef(refIndex map[string]int32, name string) int32 {
	if name == "*" {
		return -1
	}
	if id, ok := refIndex[name]; ok {
		return id
	}
	return -1
}
